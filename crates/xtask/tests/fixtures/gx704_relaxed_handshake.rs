// GX704 triggering fixture: `ready` is published with Release but polled
// with Relaxed — the poller has no happens-before edge to the data the
// publisher wrote before the store.

fn publish(s: &Shared) {
    s.payload.set(42);
    s.ready.store(true, Ordering::Release);
}

fn poll(s: &Shared) -> bool {
    s.ready.load(Ordering::Relaxed)
}
