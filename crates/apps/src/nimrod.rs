//! NIMROD (fusion-plasma MHD, spectral elements) simulator.
//!
//! Like [`M3D_C1`](crate::m3dc1), NIMROD marches a stiff MHD system in time
//! and solves nonsymmetric sparse systems with SuperLU_DIST as a block-
//! Jacobi preconditioner for GMRES. The task is again the number of time
//! steps; tuning adds the matrix-assembly block sizes
//! `x = [ROWPERM, COLPERM, p_r, NSUP, NREL, nxbl, nybl]` (`β = 7`, paper
//! Sec. 6.2). Each paper simulation uses 6 Cori nodes.

use crate::m3dc1::{COLPERM_CHOICES, ROWPERM_CHOICES};
use crate::{noise, HpcApp, MachineModel};
use gptune_space::{Config, Param, Space, Value};

/// NIMROD simulator bound to a machine (paper: 6 Cori nodes).
pub struct NimrodApp {
    machine: MachineModel,
    task_space: Space,
    tuning_space: Space,
    /// Spectral-element plane dimension.
    n_plane: f64,
    /// Nonzeros of the plane system.
    nnz_plane: f64,
}

impl NimrodApp {
    /// Creates the app with the paper's fixed geometry.
    pub fn new(machine: MachineModel) -> NimrodApp {
        let p_max = machine.total_cores() as i64;
        let task_space = Space::builder().param(Param::int("steps", 1, 200)).build();
        let tuning_space = Space::builder()
            .param(Param::categorical("ROWPERM", &ROWPERM_CHOICES)) // 0
            .param(Param::categorical("COLPERM", &COLPERM_CHOICES)) // 1
            .param(Param::int_log("p_r", 1, p_max)) // 2
            .param(Param::int_log("NSUP", 16, 512)) // 3
            .param(Param::int("NREL", 4, 64)) // 4
            .param(Param::int_log("nxbl", 1, 64)) // 5
            .param(Param::int_log("nybl", 1, 64)) // 6
            .constraint("NREL<=NSUP", |c| c[4].as_int() <= c[3].as_int())
            .build();
        NimrodApp {
            machine,
            task_space,
            tuning_space,
            n_plane: 900_000.0,
            nnz_plane: 52_000_000.0,
        }
    }

    /// Noise-free cost of one run.
    #[allow(clippy::too_many_arguments)]
    pub fn runtime_model(
        &self,
        steps: f64,
        rowperm: usize,
        colperm: usize,
        p_r: f64,
        nsup: f64,
        nrel: f64,
        nxbl: f64,
        nybl: f64,
    ) -> f64 {
        let p = self.machine.total_cores() as f64;
        let p_c = (p / p_r).floor().max(1.0);
        let p_used = p_r * p_c;

        let fill = match colperm {
            0 => 10.0,
            1 => 2.2,
            2 => 1.6,
            3 => 1.9,
            _ => 1.4,
        };
        let pad = 1.0 + 0.0022 * nsup + 0.004 * nrel;
        let nnz_lu = self.nnz_plane * fill * pad;

        // MC64 is a serial per-factorization cost (per step), traded
        // against GMRES iteration count — same structure as M3D_C1.
        let (rowperm_step, gmres_iters) = match rowperm {
            0 => (0.0, 40.0),
            _ => (2.0e-8 * self.nnz_plane, 26.0),
        };

        let flops_fact = 2.0 * nnz_lu * (nnz_lu / self.n_plane) * 0.35;
        let eff = self.machine.block_efficiency(nsup) * 0.55;
        let p_eff = p_used.powf(0.70);
        let ideal_pr = (p_used.sqrt() * 0.8).max(1.0);
        let aspect = 1.0 + 0.07 * ((p_r / ideal_pr).ln()).powi(2);
        let t_fact = flops_fact / (self.machine.flop_rate * eff * p_eff) * aspect;

        let t_iter = (4.0 * nnz_lu / (self.machine.flop_rate * 0.03 * p_used.powf(0.5)))
            + 60.0 * self.machine.latency * (p_used.max(2.0)).log2();
        let t_gmres = gmres_iters * t_iter;

        // Spectral-element assembly: decomposed into nxbl × nybl blocks.
        // Too few blocks starve cache; too many pay loop/indexing
        // overhead — an interior optimum in each direction.
        let blocks = nxbl * nybl;
        let cache_eff = (blocks / (blocks + 24.0)).max(0.1);
        let overhead = 1.0 + 0.004 * blocks;
        let t_assembly = 30.0 * self.nnz_plane * overhead
            / (self.machine.flop_rate * 0.05 * cache_eff * p_used.powf(0.9));

        steps * (rowperm_step + t_fact + t_gmres + t_assembly)
    }
}

impl HpcApp for NimrodApp {
    fn name(&self) -> &str {
        "nimrod"
    }

    fn task_space(&self) -> &Space {
        &self.task_space
    }

    fn tuning_space(&self) -> &Space {
        &self.tuning_space
    }

    fn evaluate(&self, task: &[Value], config: &[Value], seed: u64) -> Vec<f64> {
        if !self.tuning_space.is_valid(config) {
            return vec![f64::INFINITY];
        }
        let steps = task[0].as_int() as f64;
        let y = self.runtime_model(
            steps,
            config[0].as_cat(),
            config[1].as_cat(),
            config[2].as_int() as f64,
            config[3].as_int() as f64,
            config[4].as_int() as f64,
            config[5].as_int() as f64,
            config[6].as_int() as f64,
        );
        let f = noise::lognormal_factor(
            noise::hash_point(task, config, seed),
            self.machine.noise_sigma,
        );
        vec![y * f]
    }

    fn default_config(&self) -> Option<Config> {
        let p = self.machine.total_cores() as i64;
        Some(vec![
            Value::Cat(1),
            Value::Cat(4),
            Value::Int(((p as f64).sqrt() as i64).max(1)),
            Value::Int(128),
            Value::Int(20),
            Value::Int(4),
            Value::Int(4),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app() -> NimrodApp {
        NimrodApp::new(MachineModel::cori_noiseless(6))
    }

    fn cfg(rp: usize, cp: usize, p_r: i64, nsup: i64, nrel: i64, nx: i64, ny: i64) -> Vec<Value> {
        vec![
            Value::Cat(rp),
            Value::Cat(cp),
            Value::Int(p_r),
            Value::Int(nsup),
            Value::Int(nrel),
            Value::Int(nx),
            Value::Int(ny),
        ]
    }

    #[test]
    fn seven_tuning_parameters() {
        assert_eq!(app().tuning_space().dim(), 7);
    }

    #[test]
    fn cost_linear_in_steps() {
        let a = app();
        let c = cfg(1, 4, 8, 128, 20, 8, 8);
        let t3 = a.evaluate(&[Value::Int(3)], &c, 0)[0];
        let t15 = a.evaluate(&[Value::Int(15)], &c, 0)[0];
        let ratio = t15 / t3;
        assert!(ratio > 4.2 && ratio < 5.3, "ratio {ratio}");
    }

    #[test]
    fn assembly_blocks_have_interior_optimum() {
        let a = app();
        let t = [Value::Int(10)];
        let tiny = a.evaluate(&t, &cfg(1, 4, 8, 128, 20, 1, 1), 0)[0];
        let mid = a.evaluate(&t, &cfg(1, 4, 8, 128, 20, 8, 8), 0)[0];
        let huge = a.evaluate(&t, &cfg(1, 4, 8, 128, 20, 64, 64), 0)[0];
        assert!(mid < tiny, "mid {mid} vs tiny {tiny}");
        assert!(mid < huge, "mid {mid} vs huge {huge}");
    }

    #[test]
    fn optimum_transfers_across_step_counts() {
        let a = app();
        let probes = [
            cfg(0, 0, 1, 16, 4, 1, 1),
            cfg(1, 4, 8, 128, 20, 8, 8),
            cfg(1, 2, 16, 256, 32, 16, 4),
            cfg(0, 4, 64, 64, 8, 2, 32),
        ];
        let best_at = |steps: i64| {
            probes
                .iter()
                .enumerate()
                .min_by(|(_, x), (_, y)| {
                    let tx = a.evaluate(&[Value::Int(steps)], x, 0)[0];
                    let ty = a.evaluate(&[Value::Int(steps)], y, 0)[0];
                    tx.partial_cmp(&ty).unwrap()
                })
                .unwrap()
                .0
        };
        assert_eq!(best_at(3), best_at(15));
    }

    #[test]
    fn default_valid() {
        let a = app();
        let d = a.default_config().unwrap();
        assert!(a.tuning_space().is_valid(&d));
        assert!(a.evaluate(&[Value::Int(15)], &d, 0)[0].is_finite());
    }
}
