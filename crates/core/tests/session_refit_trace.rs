//! Refit accounting for [`gptune_core::TunerSession`], asserted through
//! the trace metrics registry: the `gptune.gp.refit.{full,incremental,
//! capped}` counters are the ground truth for how many surrogate fits a
//! session actually paid for.
//!
//! One `#[test]` on purpose: the counters live in the process-global
//! tracer, so a second concurrent test would race the deltas.

use gptune_core::{MlaOptions, RefitSchedule, TunerSession, TuningProblem};
use gptune_space::{Config, Param, Space, Value};

fn toy() -> TuningProblem {
    let ts = Space::builder().param(Param::real("t", 0.0, 4.0)).build();
    let ps = Space::builder().param(Param::real("x", 0.0, 1.0)).build();
    TuningProblem::new(
        "refit-trace-toy",
        ts,
        ps,
        vec![vec![Value::Real(1.0)]],
        |t, x, _| vec![(x[0].as_real() - 0.1 * t[0].as_real() - 0.2).powi(2)],
    )
}

fn fast_opts() -> MlaOptions {
    let mut o = MlaOptions::default().with_budget(64).with_seed(11);
    o.n_initial = Some(3);
    o.lcm.n_starts = 1;
    o.lcm.lbfgs.max_iters = 10;
    o.pso.particles = 10;
    o.pso.iters = 8;
    o.log_objective = false;
    o
}

fn step(p: &TuningProblem, s: &mut TunerSession) -> Config {
    let cfg = s.suggest(0).expect("task 0 in range");
    let y = p.evaluate(0, &cfg, 0);
    s.report(0, cfg.clone(), y).expect("fresh suggestion");
    cfg
}

#[test]
fn refit_counters_track_session_laziness_and_modes() {
    let _prev = gptune_trace::install(gptune_trace::Tracer::ring(4096));
    let counts = || {
        let m = gptune_trace::global().metrics();
        (
            m.counter("gptune.gp.refit.full").unwrap_or(0),
            m.counter("gptune.gp.refit.incremental").unwrap_or(0),
            m.counter("gptune.gp.refit.capped").unwrap_or(0),
        )
    };
    let p = toy();

    // --- Default (always-full) schedule: refits are lazy and all full.
    let base = counts();
    let mut s = TunerSession::new(p.clone(), fast_opts());
    for _ in 0..3 {
        step(&p, &mut s); // initial design: no surrogate work at all
    }
    assert_eq!(counts(), base, "initial design never touches the model");
    step(&p, &mut s); // first model-guided suggest → one full fit
    let after_first = counts();
    assert_eq!(after_first.0, base.0 + 1);
    assert_eq!((after_first.1, after_first.2), (base.1, base.2));

    // step() reported the measured outcome, so one more suggest absorbs
    // that report with a single refit — and after it, suggests with no
    // new reports must not refit at all: the surrogate is current.
    let _ = s.suggest(0).expect("task 0 in range");
    let settled = counts();
    assert_eq!(settled.0, after_first.0 + 1);
    let _ = s.suggest(0).expect("task 0 in range");
    let _ = s.suggest(0).expect("task 0 in range");
    assert_eq!(
        counts(),
        settled,
        "suggest without new reports reuses the cached surrogate"
    );
    assert_eq!(s.n_refits(), 2);

    // A burst of reports costs one refit at the next suggest, not one per
    // report — and under the default schedule it is a *full* refit.
    for x in [0.31, 0.57, 0.83] {
        let cfg = vec![Value::Real(x)];
        let y = p.evaluate(0, &cfg, 0);
        s.report(0, cfg, y).expect("unique config");
    }
    assert_eq!(counts(), settled);
    let _ = s.suggest(0).expect("task 0 in range");
    let burst = counts();
    assert_eq!(burst.0, settled.0 + 1);
    assert_eq!(burst.1, settled.1, "default schedule never extends");

    // --- Incremental schedule: one full fit, then rank-1 extensions.
    let base = counts();
    let mut o = fast_opts();
    o.refit = RefitSchedule {
        full_every: 100,
        nll_drift: 0.0,
    };
    let mut s = TunerSession::new(p.clone(), o);
    for _ in 0..3 {
        step(&p, &mut s);
    }
    step(&p, &mut s); // first model-guided suggest → full
    for _ in 0..3 {
        step(&p, &mut s); // each later suggest extends the factor
    }
    let inc = counts();
    assert_eq!(
        inc.0,
        base.0 + 1,
        "exactly one full fit under full_every=100"
    );
    assert_eq!(inc.1, base.1 + 3, "three rank-1 extension updates");
    assert_eq!(s.n_refits(), 4, "every surrogate update counts as a refit");

    // --- Active-set cap: once the history outgrows the cap, updates are
    // recorded as capped instead of incremental.
    let base = counts();
    let mut o = fast_opts();
    o.refit = RefitSchedule {
        full_every: 100,
        nll_drift: 0.0,
    };
    o.lcm.max_active_set = Some(5);
    let mut s = TunerSession::new(p.clone(), o);
    for _ in 0..9 {
        step(&p, &mut s);
    }
    let capped = counts();
    assert_eq!(capped.0, base.0 + 1, "one full fit under the cap");
    assert!(
        capped.2 > base.2,
        "growth past max_active_set shows up as capped updates"
    );
}
