#!/usr/bin/env bash
# Records the hot-path speedups of the distance-cached LCM refactor into
# BENCH_lcm.json: cached vs reference likelihood+gradient (n ∈ {64, 256}),
# a full n=256 two-task fit, and batched vs per-point candidate scoring
# (m = 512). Numbers are medians over repeated runs; see
# crates/bench/src/bin/lcm_perf.rs for the methodology.
#
# Also records the gptune-trace overhead guard into
# BENCH_trace_overhead.json: a paired-median enabled-vs-disabled tracing
# comparison on the same LCM fit workload (must stay <= 3%) plus the
# disabled-path span cost; see crates/bench/src/bin/trace_overhead.rs.
#
# Usage: scripts/bench_perf.sh [lcm_output.json] [trace_output.json]
set -euo pipefail
cd "$(dirname "$0")/.."
cargo run --release -p gptune-bench --bin lcm_perf -- "${1:-BENCH_lcm.json}"
cargo run --release -p gptune-bench --bin trace_overhead -- "${2:-BENCH_trace_overhead.json}"
