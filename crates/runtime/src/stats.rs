//! Tuner phase statistics — the "stats:" breakdown of GPTune runlogs.
//!
//! Table 3 of the paper reports, per tuning run, the wall time spent in the
//! objective function, the modeling phase, and the search phase. Our
//! objective functions are simulators that return *virtual* application
//! seconds, so the objective phase is tracked in virtual seconds while
//! modeling/search are real wall-clock measurements of this implementation.
//!
//! [`PhaseTimer`] is the single time authority for phase walls: each timed
//! closure is measured once and the measurement is published twice — into
//! the mutex-guarded [`PhaseStats`] accumulator (the authoritative
//! checkpoint-restorable totals) and into the process-global
//! [`gptune_trace`] tracer as a `gptune.core.<phase>` span plus
//! `gptune.core.*` metrics. Because both views share one measurement,
//! summing the phase spans of a trace reproduces the `stats:` line
//! exactly; [`PhaseStats::from_metrics`] rebuilds the same totals from a
//! metrics snapshot.

use crate::fault::FailureKind;
use gptune_trace::{CounterHandle, Field, GaugeHandle, HistogramHandle, MetricsSnapshot, Tracer};
use parking_lot::Mutex;
use std::time::{Duration, Instant};

/// The three phases of an MLA iteration (paper Algorithm 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Black-box function evaluation (application runs).
    Objective,
    /// LCM hyperparameter optimization.
    Modeling,
    /// Acquisition-function maximization.
    Search,
}

impl Phase {
    /// The span/metric name for this phase (`gptune.core.<phase>`).
    pub fn span_name(self) -> &'static str {
        match self {
            Phase::Objective => "gptune.core.objective",
            Phase::Modeling => "gptune.core.modeling",
            Phase::Search => "gptune.core.search",
        }
    }

    fn histogram_name(self) -> &'static str {
        match self {
            Phase::Objective => "gptune.core.phase.objective",
            Phase::Modeling => "gptune.core.phase.modeling",
            Phase::Search => "gptune.core.phase.search",
        }
    }
}

/// Immutable snapshot of accumulated statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseStats {
    /// Virtual seconds spent inside simulated application runs.
    pub objective_virtual_secs: f64,
    /// Wall-clock spent dispatching/evaluating the objective.
    pub objective_wall: Duration,
    /// Wall-clock spent in the modeling phase.
    pub modeling_wall: Duration,
    /// Wall-clock spent in the search phase.
    pub search_wall: Duration,
    /// Number of objective evaluations.
    pub n_evals: usize,
    /// Evaluations whose objective panicked.
    pub n_crashed: usize,
    /// Evaluations expired by the watchdog deadline.
    pub n_timed_out: usize,
    /// Evaluations that completed with an unusable measurement.
    pub n_invalid: usize,
    /// Evaluations that exhausted their transient retries.
    pub n_transient: usize,
    /// Total retry executions across all evaluations.
    pub n_retries: usize,
}

impl PhaseStats {
    /// Total tuner time: virtual objective seconds plus real
    /// modeling/search seconds — the "total" column of Table 3.
    pub fn total_secs(&self) -> f64 {
        self.objective_virtual_secs
            + self.modeling_wall.as_secs_f64()
            + self.search_wall.as_secs_f64()
    }

    /// Total failed evaluations across all classifications.
    pub fn n_failed(&self) -> usize {
        self.n_crashed + self.n_timed_out + self.n_invalid + self.n_transient
    }

    /// Rebuilds the stats as a view over the tracer's `gptune.core.*`
    /// metrics, the inverse of [`PhaseTimer`]'s dual publishing. For a
    /// single timer recording into a fresh tracer this equals
    /// [`PhaseTimer::snapshot`] exactly (same measurements, same
    /// arithmetic); after a checkpoint resume only the snapshot carries
    /// the pre-resume totals (metrics cover the current process).
    pub fn from_metrics(m: &MetricsSnapshot) -> PhaseStats {
        let count = |name: &str| m.counter(name).unwrap_or(0) as usize;
        let wall = |phase: Phase| {
            Duration::from_nanos(m.histogram(phase.histogram_name()).map_or(0, |h| h.sum))
        };
        PhaseStats {
            objective_virtual_secs: m.gauge("gptune.core.objective_virtual_secs").unwrap_or(0.0),
            objective_wall: wall(Phase::Objective),
            modeling_wall: wall(Phase::Modeling),
            search_wall: wall(Phase::Search),
            n_evals: count("gptune.core.evals"),
            n_crashed: count("gptune.core.failures.crashed"),
            n_timed_out: count("gptune.core.failures.timed_out"),
            n_invalid: count("gptune.core.failures.invalid"),
            n_transient: count("gptune.core.failures.transient"),
            n_retries: count("gptune.core.retries"),
        }
    }

    /// One-line report in the GPTune runlog style. Runs that saw
    /// failures or retries append their failure profile.
    pub fn report(&self) -> String {
        let mut line = format!(
            "stats: total {:.1}s | objective {:.1}s ({} evals) | modeling {:.3}s | search {:.3}s",
            self.total_secs(),
            self.objective_virtual_secs,
            self.n_evals,
            self.modeling_wall.as_secs_f64(),
            self.search_wall.as_secs_f64()
        );
        if self.n_failed() + self.n_retries > 0 {
            line.push_str(&format!(
                " | faults: {} crashed, {} timed-out, {} invalid, {} transient, {} retries",
                self.n_crashed, self.n_timed_out, self.n_invalid, self.n_transient, self.n_retries
            ));
        }
        line
    }
}

/// Per-phase metric handles, fetched once at timer construction.
#[derive(Debug)]
struct PhaseMetrics {
    evals: CounterHandle,
    retries: CounterHandle,
    crashed: CounterHandle,
    timed_out: CounterHandle,
    invalid: CounterHandle,
    transient: CounterHandle,
    virtual_secs: GaugeHandle,
    objective_wall: HistogramHandle,
    modeling_wall: HistogramHandle,
    search_wall: HistogramHandle,
}

impl PhaseMetrics {
    fn new(tracer: &Tracer) -> Self {
        PhaseMetrics {
            evals: tracer.counter("gptune.core.evals"),
            retries: tracer.counter("gptune.core.retries"),
            crashed: tracer.counter("gptune.core.failures.crashed"),
            timed_out: tracer.counter("gptune.core.failures.timed_out"),
            invalid: tracer.counter("gptune.core.failures.invalid"),
            transient: tracer.counter("gptune.core.failures.transient"),
            virtual_secs: tracer.gauge("gptune.core.objective_virtual_secs"),
            objective_wall: tracer.histogram(Phase::Objective.histogram_name()),
            modeling_wall: tracer.histogram(Phase::Modeling.histogram_name()),
            search_wall: tracer.histogram(Phase::Search.histogram_name()),
        }
    }

    fn wall(&self, phase: Phase) -> &HistogramHandle {
        match phase {
            Phase::Objective => &self.objective_wall,
            Phase::Modeling => &self.modeling_wall,
            Phase::Search => &self.search_wall,
        }
    }
}

/// Thread-safe accumulator for [`PhaseStats`], dual-publishing every
/// measurement to the tracer (phase spans + metrics).
#[derive(Debug)]
pub struct PhaseTimer {
    inner: Mutex<PhaseStats>,
    tracer: Tracer,
    metrics: PhaseMetrics,
}

impl Default for PhaseTimer {
    fn default() -> Self {
        Self::new()
    }
}

impl PhaseTimer {
    /// Fresh timer with all counters at zero, publishing spans/metrics to
    /// the process-global tracer (a no-op while tracing is disabled).
    pub fn new() -> Self {
        Self::with_tracer(gptune_trace::global())
    }

    /// Fresh timer recording into a specific tracer (tests).
    pub fn with_tracer(tracer: Tracer) -> Self {
        let metrics = PhaseMetrics::new(&tracer);
        PhaseTimer {
            inner: Mutex::new(PhaseStats::default()),
            tracer,
            metrics,
        }
    }

    /// Times a closure under the given phase (wall clock).
    pub fn time<R>(&self, phase: Phase, f: impl FnOnce() -> R) -> R {
        self.time_inner(phase, None, f).0
    }

    /// Like [`PhaseTimer::time`] but also returns the measured duration —
    /// the per-iteration breakdown rows are built from these.
    pub fn time_measured<R>(&self, phase: Phase, f: impl FnOnce() -> R) -> (R, Duration) {
        self.time_inner(phase, None, f)
    }

    /// Times one iteration's phase: the emitted `gptune.core.<phase>`
    /// span carries `iteration` as a field, so traces can be grouped per
    /// MLA iteration.
    pub fn time_iter<R>(
        &self,
        phase: Phase,
        iteration: u64,
        f: impl FnOnce() -> R,
    ) -> (R, Duration) {
        self.time_inner(phase, Some(iteration), f)
    }

    fn time_inner<R>(
        &self,
        phase: Phase,
        iteration: Option<u64>,
        f: impl FnOnce() -> R,
    ) -> (R, Duration) {
        let start_ns = self.tracer.now_ns();
        let t0 = Instant::now();
        let r = f();
        let dt = t0.elapsed();
        {
            let mut s = self.inner.lock();
            match phase {
                Phase::Objective => s.objective_wall += dt,
                Phase::Modeling => s.modeling_wall += dt,
                Phase::Search => s.search_wall += dt,
            }
        }
        self.metrics.wall(phase).record_duration(dt);
        let fields = iteration
            .map(|it| vec![("iteration".into(), Field::U64(it))])
            .unwrap_or_default();
        self.tracer
            .record_span(phase.span_name(), start_ns, dt, fields);
        (r, dt)
    }

    /// Records a simulated application run of `virtual_secs` seconds.
    pub fn add_objective_run(&self, virtual_secs: f64) {
        let v = virtual_secs.max(0.0);
        {
            let mut s = self.inner.lock();
            s.objective_virtual_secs += v;
            s.n_evals += 1;
        }
        self.metrics.evals.inc();
        self.metrics.virtual_secs.add(v);
    }

    /// Records a classified evaluation failure.
    pub fn add_failure(&self, kind: FailureKind) {
        {
            let mut s = self.inner.lock();
            match kind {
                FailureKind::Crashed => s.n_crashed += 1,
                FailureKind::TimedOut => s.n_timed_out += 1,
                FailureKind::Invalid => s.n_invalid += 1,
                FailureKind::Transient => s.n_transient += 1,
            }
        }
        match kind {
            FailureKind::Crashed => self.metrics.crashed.inc(),
            FailureKind::TimedOut => self.metrics.timed_out.inc(),
            FailureKind::Invalid => self.metrics.invalid.inc(),
            FailureKind::Transient => self.metrics.transient.inc(),
        }
    }

    /// Records `n` retry executions (attempts beyond the first).
    pub fn add_retries(&self, n: usize) {
        self.inner.lock().n_retries += n;
        self.metrics.retries.add(n as u64);
    }

    /// Consistent point-in-time snapshot: one lock acquisition copies the
    /// whole [`PhaseStats`], so counters and durations can never be read
    /// torn across concurrently accumulating phases.
    pub fn snapshot(&self) -> PhaseStats {
        *self.inner.lock()
    }

    /// Resets every counter (the authoritative stats only — tracer
    /// metrics are cumulative process-wide observability and keep
    /// counting).
    pub fn reset(&self) {
        *self.inner.lock() = PhaseStats::default();
    }

    /// Overwrites the accumulated counters — used when resuming an
    /// interrupted run from a checkpoint, so the final `stats:` line
    /// covers the whole run rather than only the post-resume portion.
    /// Tracer metrics are not rewound: they describe this process.
    pub fn restore(&self, s: PhaseStats) {
        *self.inner.lock() = s;
    }

    /// The tracer this timer publishes to.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_virtual_objective_time() {
        let t = PhaseTimer::new();
        t.add_objective_run(1.5);
        t.add_objective_run(2.5);
        let s = t.snapshot();
        assert_eq!(s.objective_virtual_secs, 4.0);
        assert_eq!(s.n_evals, 2);
    }

    #[test]
    fn negative_virtual_time_clamped() {
        let t = PhaseTimer::new();
        t.add_objective_run(-1.0);
        assert_eq!(t.snapshot().objective_virtual_secs, 0.0);
        assert_eq!(t.snapshot().n_evals, 1);
    }

    #[test]
    fn time_measures_wall_clock() {
        let t = PhaseTimer::new();
        let out = t.time(Phase::Modeling, || {
            std::thread::sleep(Duration::from_millis(20));
            42
        });
        assert_eq!(out, 42);
        let s = t.snapshot();
        assert!(s.modeling_wall >= Duration::from_millis(15));
        assert_eq!(s.search_wall, Duration::ZERO);
    }

    #[test]
    fn time_measured_returns_the_recorded_duration() {
        let t = PhaseTimer::new();
        let (out, dt) = t.time_measured(Phase::Search, || {
            std::thread::sleep(Duration::from_millis(10));
            7
        });
        assert_eq!(out, 7);
        assert_eq!(dt, t.snapshot().search_wall);
    }

    #[test]
    fn total_combines_phases() {
        let t = PhaseTimer::new();
        t.add_objective_run(10.0);
        t.time(Phase::Search, || {
            std::thread::sleep(Duration::from_millis(10))
        });
        let s = t.snapshot();
        assert!(s.total_secs() >= 10.0);
        assert!(s.total_secs() < 10.5);
    }

    #[test]
    fn reset_clears_everything() {
        let t = PhaseTimer::new();
        t.add_objective_run(3.0);
        t.time(Phase::Objective, || ());
        t.reset();
        assert_eq!(t.snapshot(), PhaseStats::default());
    }

    #[test]
    fn restore_overwrites_counters() {
        let t = PhaseTimer::new();
        t.add_objective_run(1.0);
        let saved = PhaseStats {
            objective_virtual_secs: 42.0,
            n_evals: 7,
            ..Default::default()
        };
        t.restore(saved);
        assert_eq!(t.snapshot(), saved);
        // Accumulation continues on top of the restored state.
        t.add_objective_run(1.0);
        assert_eq!(t.snapshot().n_evals, 8);
    }

    #[test]
    fn report_mentions_all_phases() {
        let t = PhaseTimer::new();
        t.add_objective_run(1.0);
        let r = t.snapshot().report();
        assert!(r.contains("objective"));
        assert!(r.contains("modeling"));
        assert!(r.contains("search"));
        assert!(r.contains("1 evals"));
    }

    #[test]
    fn failure_profile_appears_only_when_faults_happened() {
        let t = PhaseTimer::new();
        t.add_objective_run(1.0);
        assert!(!t.snapshot().report().contains("faults:"));
        t.add_failure(FailureKind::Crashed);
        t.add_failure(FailureKind::TimedOut);
        t.add_failure(FailureKind::TimedOut);
        t.add_retries(3);
        let s = t.snapshot();
        assert_eq!(s.n_crashed, 1);
        assert_eq!(s.n_timed_out, 2);
        assert_eq!(s.n_retries, 3);
        assert_eq!(s.n_failed(), 3);
        let r = s.report();
        assert!(
            r.contains("faults: 1 crashed, 2 timed-out, 0 invalid, 0 transient, 3 retries"),
            "{r}"
        );
    }

    #[test]
    fn concurrent_accumulation() {
        let t = std::sync::Arc::new(PhaseTimer::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let t = std::sync::Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    t.add_objective_run(0.01);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = t.snapshot();
        assert_eq!(s.n_evals, 800);
        assert!((s.objective_virtual_secs - 8.0).abs() < 1e-9);
    }

    #[test]
    fn snapshot_is_never_torn_under_concurrent_accumulation() {
        // add_objective_run updates two fields under one lock; a snapshot
        // taken concurrently must always see them in step (0.5 virtual
        // seconds per eval is exact in binary floating point).
        let t = std::sync::Arc::new(PhaseTimer::new());
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut writers = Vec::new();
        for _ in 0..4 {
            let t = std::sync::Arc::clone(&t);
            writers.push(std::thread::spawn(move || {
                for _ in 0..2000 {
                    t.add_objective_run(0.5);
                }
            }));
        }
        let reader = {
            let t = std::sync::Arc::clone(&t);
            let stop = std::sync::Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut checks = 0usize;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let s = t.snapshot();
                    assert_eq!(
                        s.objective_virtual_secs,
                        s.n_evals as f64 * 0.5,
                        "snapshot tore across paired fields"
                    );
                    checks += 1;
                }
                checks
            })
        };
        for w in writers {
            w.join().unwrap();
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let checks = reader.join().unwrap();
        assert!(checks > 0, "reader must observe in-flight snapshots");
        assert_eq!(t.snapshot().n_evals, 8000);
    }

    #[test]
    fn dual_published_metrics_reproduce_the_snapshot() {
        let tracer = Tracer::ring(64);
        let t = PhaseTimer::with_tracer(tracer.clone());
        t.add_objective_run(1.5);
        t.add_objective_run(0.5);
        t.add_failure(FailureKind::TimedOut);
        t.add_retries(2);
        t.time(Phase::Modeling, || {
            std::thread::sleep(Duration::from_millis(5))
        });
        let (_, dt) = t.time_iter(Phase::Search, 3, || ());
        assert!(dt < Duration::from_secs(1));
        // The metrics view rebuilds the exact same stats.
        let view = PhaseStats::from_metrics(&tracer.metrics());
        assert_eq!(view, t.snapshot());
        // Phase spans landed on the trace, tagged with the iteration.
        let data = tracer.drain();
        let search = data
            .events
            .iter()
            .find(|e| e.name == "gptune.core.search")
            .expect("search phase span recorded");
        assert_eq!(
            search.field("iteration").and_then(Field::as_u64),
            Some(3),
            "iteration tag on phase span"
        );
        assert!(data.events.iter().any(|e| e.name == "gptune.core.modeling"));
    }

    #[test]
    fn disabled_tracer_timer_still_counts() {
        let t = PhaseTimer::with_tracer(Tracer::disabled());
        t.add_objective_run(2.0);
        let out = t.time(Phase::Modeling, || 5);
        assert_eq!(out, 5);
        let s = t.snapshot();
        assert_eq!(s.n_evals, 1);
        assert_eq!(s.objective_virtual_secs, 2.0);
    }
}
