//! Checkpoint files: the full in-flight state of an MLA run.
//!
//! A checkpoint captures everything the tuner loop needs to continue
//! mid-budget: the evaluation archive so far (points + outputs), the
//! iteration counters, and the accumulated phase statistics. All later
//! randomness in the MLA loop is derived deterministically from
//! `(seed, iteration, task)` — no raw RNG state needs to be serialized —
//! so a resumed run replays the remaining iterations exactly as the
//! uninterrupted run would have executed them.
//!
//! Checkpoints are snapshots: written atomically (temp + rename), loaded
//! strictly (a checkpoint that fails to parse is reported, not silently
//! truncated — unlike journals, half a checkpoint is useless).

use crate::fsio;
use crate::json::{self, Json};
use crate::record::{DbValue, FailKind, RunStats};
use std::io;
use std::path::Path;

/// Which tuner loop wrote the checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointKind {
    /// Single-objective MLA (Algorithm 1).
    Mla,
    /// Multi-objective MLA (Algorithm 2).
    MlaMo,
    /// Transfer tuning (TLA-2, `transfer_tune`).
    Tla,
}

impl CheckpointKind {
    fn as_str(&self) -> &'static str {
        match self {
            CheckpointKind::Mla => "mla",
            CheckpointKind::MlaMo => "mla_mo",
            CheckpointKind::Tla => "tla",
        }
    }

    fn parse(s: &str) -> Option<CheckpointKind> {
        match s {
            "mla" => Some(CheckpointKind::Mla),
            "mla_mo" => Some(CheckpointKind::MlaMo),
            "tla" => Some(CheckpointKind::Tla),
            _ => None,
        }
    }
}

/// Serialized in-flight MLA state.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Which loop wrote this.
    pub kind: CheckpointKind,
    /// Problem signature the state belongs to.
    pub sig: u64,
    /// Base RNG seed of the run (resume requires an exact match).
    pub seed: u64,
    /// Total evaluation budget `ε_tot` of the run.
    pub eps_total: usize,
    /// Completed MLA iterations.
    pub iteration: usize,
    /// Per-task evaluations consumed so far (`ε`).
    pub eps: usize,
    /// Archived records preloaded before the run's own sampling (warm
    /// start / TLA); excluded from results on resume exactly as they were
    /// in the original run.
    pub n_preloaded: usize,
    /// `(task_idx, config)` of every evaluation, in order.
    pub points: Vec<(usize, Vec<DbValue>)>,
    /// Objective vectors aligned with `points`.
    pub outputs: Vec<Vec<f64>>,
    /// Classified failures among `points` (indices into `points`), so a
    /// resumed run carries its failure set forward and archives it on
    /// completion without re-evaluating known-failing configurations.
    pub fails: Vec<CkptFail>,
    /// Accumulated phase statistics at checkpoint time.
    pub stats: RunStats,
}

/// One classified failure recorded in a checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct CkptFail {
    /// Index into [`Checkpoint::points`].
    pub index: usize,
    /// Failure classification.
    pub kind: FailKind,
    /// Number of execution attempts.
    pub attempts: u64,
    /// Wall-clock seconds from first dispatch to final failure.
    pub elapsed_secs: f64,
}

impl Checkpoint {
    /// Serializes to pretty-stable single-line JSON.
    pub fn to_json_string(&self) -> String {
        let points = Json::Arr(
            self.points
                .iter()
                .map(|(t, cfg)| {
                    Json::Arr(vec![
                        Json::Int(*t as i64),
                        Json::Arr(cfg.iter().map(dbvalue_to_json).collect()),
                    ])
                })
                .collect(),
        );
        let outputs = Json::Arr(
            self.outputs
                .iter()
                .map(|o| Json::Arr(o.iter().map(|x| Json::from_f64(*x)).collect()))
                .collect(),
        );
        Json::Obj(vec![
            ("v".into(), Json::Int(crate::record::FORMAT_VERSION)),
            ("kind".into(), Json::Str(self.kind.as_str().into())),
            ("sig".into(), Json::Str(format!("{:016x}", self.sig))),
            ("seed".into(), Json::from_u64(self.seed)),
            ("eps_total".into(), Json::Int(self.eps_total as i64)),
            ("iteration".into(), Json::Int(self.iteration as i64)),
            ("eps".into(), Json::Int(self.eps as i64)),
            ("n_preloaded".into(), Json::Int(self.n_preloaded as i64)),
            ("points".into(), points),
            ("outputs".into(), outputs),
            (
                "fails".into(),
                Json::Arr(
                    self.fails
                        .iter()
                        .map(|f| {
                            Json::Arr(vec![
                                Json::Int(f.index as i64),
                                Json::Str(f.kind.as_str().into()),
                                Json::from_u64(f.attempts),
                                Json::from_f64(f.elapsed_secs),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("stats".into(), stats_to_json(&self.stats)),
        ])
        .to_string()
    }

    /// Parses a checkpoint document.
    pub fn from_json_str(s: &str) -> Result<Checkpoint, String> {
        let j = json::parse(s).map_err(|e| e.to_string())?;
        let kind = j
            .get("kind")
            .and_then(Json::as_str)
            .and_then(CheckpointKind::parse)
            .ok_or("bad 'kind'")?;
        let sig = j
            .get("sig")
            .and_then(Json::as_str)
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .ok_or("bad 'sig'")?;
        let seed = j.get("seed").and_then(Json::as_u64).ok_or("bad 'seed'")?;
        let usize_field = |k: &str| -> Result<usize, String> {
            j.get(k)
                .and_then(Json::as_i64)
                .and_then(|x| usize::try_from(x).ok())
                .ok_or_else(|| format!("bad '{k}'"))
        };
        let eps_total = usize_field("eps_total")?;
        let iteration = usize_field("iteration")?;
        let eps = usize_field("eps")?;
        let n_preloaded = usize_field("n_preloaded")?;
        let points = j
            .get("points")
            .and_then(Json::as_arr)
            .ok_or("bad 'points'")?
            .iter()
            .map(|p| {
                let pair = p.as_arr()?;
                if pair.len() != 2 {
                    return None;
                }
                let t = usize::try_from(pair.first()?.as_i64()?).ok()?;
                let cfg: Option<Vec<DbValue>> = pair
                    .get(1)?
                    .as_arr()?
                    .iter()
                    .map(dbvalue_from_json)
                    .collect();
                Some((t, cfg?))
            })
            .collect::<Option<Vec<_>>>()
            .ok_or("bad 'points'")?;
        let outputs = j
            .get("outputs")
            .and_then(Json::as_arr)
            .ok_or("bad 'outputs'")?
            .iter()
            .map(|o| o.as_arr()?.iter().map(Json::as_f64).collect())
            .collect::<Option<Vec<Vec<f64>>>>()
            .ok_or("bad 'outputs'")?;
        if points.len() != outputs.len() {
            return Err("points/outputs length mismatch".into());
        }
        // Absent in checkpoints written before the fault-tolerant
        // runtime: default to no recorded failures.
        let fails = match j.get("fails") {
            None => Vec::new(),
            Some(arr) => arr
                .as_arr()
                .ok_or("bad 'fails'")?
                .iter()
                .map(|f| {
                    let parts = f.as_arr()?;
                    if parts.len() != 4 {
                        return None;
                    }
                    Some(CkptFail {
                        index: usize::try_from(parts.first()?.as_i64()?).ok()?,
                        kind: FailKind::parse(parts.get(1)?.as_str()?)?,
                        attempts: parts.get(2)?.as_u64()?,
                        elapsed_secs: parts.get(3)?.as_f64()?,
                    })
                })
                .collect::<Option<Vec<_>>>()
                .ok_or("bad 'fails'")?,
        };
        if fails.iter().any(|f| f.index >= points.len()) {
            return Err("fail index out of range".into());
        }
        let stats = j.get("stats").map(stats_from_json).unwrap_or_default();
        Ok(Checkpoint {
            kind,
            sig,
            seed,
            eps_total,
            iteration,
            eps,
            n_preloaded,
            points,
            outputs,
            fails,
            stats,
        })
    }

    /// Atomically writes the checkpoint to `path`.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let mut doc = self.to_json_string();
        doc.push('\n');
        fsio::atomic_write(path, doc.as_bytes())
    }

    /// Loads a checkpoint. `Ok(None)` when the file does not exist;
    /// `Err` when it exists but cannot be parsed (corrupt snapshot —
    /// surfaced to the caller, who decides whether to start fresh).
    pub fn load(path: &Path) -> io::Result<Option<Checkpoint>> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        Checkpoint::from_json_str(&text)
            .map(Some)
            .map_err(|m| io::Error::new(io::ErrorKind::InvalidData, m))
    }

    /// Removes the checkpoint file (run completed). Missing is fine.
    pub fn remove(path: &Path) -> io::Result<()> {
        match std::fs::remove_file(path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }
}

fn dbvalue_to_json(v: &DbValue) -> Json {
    match v {
        DbValue::Real(x) => Json::Obj(vec![("r".into(), Json::from_f64(*x))]),
        DbValue::Int(x) => Json::Obj(vec![("i".into(), Json::Int(*x))]),
        DbValue::Cat(i) => Json::Obj(vec![("c".into(), Json::Int(*i as i64))]),
    }
}

fn dbvalue_from_json(j: &Json) -> Option<DbValue> {
    if let Some(r) = j.get("r") {
        return Some(DbValue::Real(r.as_f64()?));
    }
    if let Some(i) = j.get("i") {
        return Some(DbValue::Int(i.as_i64()?));
    }
    if let Some(c) = j.get("c") {
        return usize::try_from(c.as_i64()?).ok().map(DbValue::Cat);
    }
    None
}

fn stats_to_json(s: &RunStats) -> Json {
    s.to_json()
}

fn stats_from_json(j: &Json) -> RunStats {
    RunStats::from_json(j)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("gptune_db_ckpt_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn sample() -> Checkpoint {
        Checkpoint {
            kind: CheckpointKind::Mla,
            sig: 0x1234_5678_9abc_def0,
            seed: 3,
            eps_total: 20,
            iteration: 4,
            eps: 14,
            n_preloaded: 2,
            points: vec![
                (0, vec![DbValue::Real(0.25), DbValue::Int(32)]),
                (1, vec![DbValue::Real(0.75), DbValue::Int(64)]),
                (0, vec![DbValue::Cat(1), DbValue::Int(16)]),
            ],
            outputs: vec![vec![1.5], vec![f64::INFINITY], vec![2.25]],
            fails: vec![CkptFail {
                index: 1,
                kind: FailKind::Crashed,
                attempts: 2,
                elapsed_secs: 0.5,
            }],
            stats: RunStats {
                objective_virtual_secs: 55.5,
                objective_wall_secs: 0.25,
                modeling_wall_secs: 1.5,
                search_wall_secs: 0.75,
                n_evals: 14,
                n_crashed: 1,
                ..RunStats::default()
            },
        }
    }

    #[test]
    fn roundtrip_in_memory() {
        let c = sample();
        let back = Checkpoint::from_json_str(&c.to_json_string()).unwrap();
        assert_eq!(back.kind, c.kind);
        assert_eq!(back.sig, c.sig);
        assert_eq!(back.points, c.points);
        assert_eq!(back.outputs[0], c.outputs[0]);
        assert_eq!(back.outputs[1], c.outputs[1]);
        assert_eq!(back.stats, c.stats);
        assert_eq!(back, c);
    }

    #[test]
    fn roundtrip_on_disk_and_remove() {
        let d = tmpdir("disk");
        let p = d.join("ckpt.json");
        assert_eq!(Checkpoint::load(&p).unwrap(), None);
        let c = sample();
        c.save(&p).unwrap();
        assert_eq!(Checkpoint::load(&p).unwrap(), Some(c.clone()));
        // Overwrite is atomic and replaces fully.
        let mut c2 = c.clone();
        c2.iteration = 5;
        c2.save(&p).unwrap();
        assert_eq!(Checkpoint::load(&p).unwrap().unwrap().iteration, 5);
        Checkpoint::remove(&p).unwrap();
        assert_eq!(Checkpoint::load(&p).unwrap(), None);
        Checkpoint::remove(&p).unwrap(); // idempotent
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn corrupt_checkpoint_is_loud() {
        let d = tmpdir("corrupt");
        let p = d.join("ckpt.json");
        std::fs::write(&p, "{\"kind\":\"mla\",\"sig\":").unwrap();
        let e = Checkpoint::load(&p).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn mismatched_lengths_rejected() {
        let mut c = sample();
        c.outputs.pop();
        assert!(Checkpoint::from_json_str(&c.to_json_string()).is_err());
    }

    #[test]
    fn fails_roundtrip_and_validate() {
        let c = sample();
        let back = Checkpoint::from_json_str(&c.to_json_string()).unwrap();
        assert_eq!(back.fails, c.fails);
        // A failure index past the archive is a corrupt snapshot.
        let mut bad = sample();
        bad.fails[0].index = bad.points.len();
        assert!(Checkpoint::from_json_str(&bad.to_json_string()).is_err());
    }

    #[test]
    fn checkpoint_without_fails_field_parses_empty() {
        // Snapshots written before the fault-tolerant runtime have no
        // "fails" key; they must load with an empty failure set.
        let mut c = sample();
        c.fails.clear();
        let doc = c.to_json_string().replace(",\"fails\":[]", "");
        assert!(!doc.contains("fails"));
        let back = Checkpoint::from_json_str(&doc).unwrap();
        assert_eq!(back.fails, Vec::new());
        assert_eq!(back.points, c.points);
    }

    #[test]
    fn mo_kind_roundtrips() {
        let mut c = sample();
        c.kind = CheckpointKind::MlaMo;
        let back = Checkpoint::from_json_str(&c.to_json_string()).unwrap();
        assert_eq!(back.kind, CheckpointKind::MlaMo);
    }
}
