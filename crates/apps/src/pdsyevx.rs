//! ScaLAPACK PDSYEVX (symmetric eigensolver) simulator.
//!
//! Task `t = [m]` (the paper enforces `m = n`), tuning `x = [b, p, p_r]`
//! (with `b_r = b_c = b`, Sec. 6.2). The dominant cost is Householder
//! tridiagonalization (`4m³/3` flops, only half BLAS-3-able), followed by
//! bisection + inverse iteration and back-transformation (`2m³` flops for
//! all eigenvectors). The best runtime scales as `O(m³)` — visible in
//! Fig. 5 (right).

use crate::{noise, HpcApp, MachineModel};
use gptune_space::{Config, Param, Space, Value};

/// PDSYEVX simulator bound to a machine.
pub struct PdsyevxApp {
    machine: MachineModel,
    task_space: Space,
    tuning_space: Space,
}

impl PdsyevxApp {
    /// Creates the app; matrix dimension up to `max_dim` (paper: `m ≤ 7000`
    /// on 1 Cori node).
    pub fn new(machine: MachineModel, max_dim: i64) -> PdsyevxApp {
        let p_max = machine.total_cores() as i64;
        let task_space = Space::builder()
            .param(Param::int("m", 128, max_dim))
            .build();
        let tuning_space = Space::builder()
            .param(Param::int_log("b", 4, 512))
            .param(Param::int_log("p", 1, p_max))
            .param(Param::int_log("p_r", 1, p_max))
            .constraint("p_r<=p", |c| c[2].as_int() <= c[1].as_int())
            .build();
        PdsyevxApp {
            machine,
            task_space,
            tuning_space,
        }
    }

    /// Noise-free runtime model.
    pub fn runtime_model(&self, m: f64, b: f64, p: f64, p_r: f64) -> f64 {
        let p_max = self.machine.total_cores() as f64;
        let p_c = (p / p_r).floor().max(1.0);
        let nthreads = (p_max / p).floor().max(1.0);

        // Tridiagonalization: 4m³/3 flops, half of which are BLAS-2
        // (memory bound, insensitive to b), half BLAS-3 via blocking.
        let flops_trd = 4.0 * m * m * m / 3.0;
        let eff_b = self.machine.block_efficiency(b);
        let eff_t = self.machine.thread_efficiency(nthreads as usize);
        let rate3 = self.machine.flop_rate * eff_b * eff_t;
        let rate2 = self.machine.flop_rate * 0.08 * eff_t.sqrt(); // BLAS-2 memory-bound
        let t_trd = 0.5 * flops_trd / (rate3 * p) + 0.5 * flops_trd / (rate2 * p);

        // Eigenvector back-transformation: 2m³ flops, BLAS-3 friendly.
        let t_back = 2.0 * m * m * m / (rate3 * p);

        // Tridiagonal eigensolve: O(m²) per process group, poorly parallel.
        let t_tri = 30.0 * m * m / (self.machine.flop_rate * 0.02 * p.sqrt());

        // Communication: panel broadcasts along rows/columns.
        let log_pr = p_r.max(2.0).log2();
        let log_pc = p_c.max(2.0).log2();
        let c_msg = (m / b) * 4.0 * (log_pr + log_pc);
        let c_vol = m * m / p_r * log_pc + m * m / p_c * log_pr + 2.0 * b * m;
        let imbalance = (1.0 + b * p_r / m) * (1.0 + b * p_c / m);
        let aspect = 1.0 + 0.03 * ((p_r / p_c).ln()).abs();

        (t_trd + t_back) * imbalance
            + t_tri
            + (c_msg * self.machine.latency + c_vol * 8.0 * self.machine.time_per_word) * aspect
    }
}

impl HpcApp for PdsyevxApp {
    fn name(&self) -> &str {
        "pdsyevx"
    }

    fn task_space(&self) -> &Space {
        &self.task_space
    }

    fn tuning_space(&self) -> &Space {
        &self.tuning_space
    }

    fn evaluate(&self, task: &[Value], config: &[Value], seed: u64) -> Vec<f64> {
        if !self.tuning_space.is_valid(config) {
            return vec![f64::INFINITY];
        }
        let m = task[0].as_int() as f64;
        let b = config[0].as_int() as f64;
        let p = config[1].as_int() as f64;
        let p_r = config[2].as_int() as f64;
        let t = self.runtime_model(m, b, p, p_r);
        let f = noise::lognormal_factor(
            noise::hash_point(task, config, seed),
            self.machine.noise_sigma,
        );
        vec![t * f]
    }

    fn default_config(&self) -> Option<Config> {
        // A naive but common configuration: all ranks in a single process
        // row (`p_r = 1`) — what an untuned launch script produces. The
        // grid shape is precisely what the paper tunes.
        let p = self.machine.total_cores() as i64;
        Some(vec![Value::Int(32), Value::Int(p), Value::Int(1)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app() -> PdsyevxApp {
        PdsyevxApp::new(MachineModel::cori_noiseless(1), 8000)
    }

    fn cfg(b: i64, p: i64, p_r: i64) -> Vec<Value> {
        vec![Value::Int(b), Value::Int(p), Value::Int(p_r)]
    }

    #[test]
    fn cubic_scaling_in_m() {
        let a = app();
        let c = cfg(32, 32, 4);
        let t1 = a.evaluate(&[Value::Int(2000)], &c, 0)[0];
        let t2 = a.evaluate(&[Value::Int(4000)], &c, 0)[0];
        // Doubling m should multiply runtime by roughly 4–8 (m²–m³ mix).
        assert!(t2 / t1 > 3.5 && t2 / t1 < 9.0, "ratio {}", t2 / t1);
    }

    #[test]
    fn interior_block_optimum() {
        let a = app();
        let t = vec![Value::Int(7000)];
        let tiny = a.evaluate(&t, &cfg(4, 32, 4), 0)[0];
        let mid = a.evaluate(&t, &cfg(48, 32, 4), 0)[0];
        let huge = a.evaluate(&t, &cfg(512, 32, 4), 0)[0];
        assert!(
            mid < tiny && mid < huge,
            "tiny {tiny} mid {mid} huge {huge}"
        );
    }

    #[test]
    fn constraint_checked() {
        let a = app();
        assert!(a.evaluate(&[Value::Int(4000)], &cfg(32, 4, 8), 0)[0].is_infinite());
    }

    #[test]
    fn default_valid_and_finite() {
        let a = app();
        let d = a.default_config().unwrap();
        assert!(a.tuning_space().is_valid(&d));
        assert!(a.evaluate(&[Value::Int(5000)], &d, 0)[0].is_finite());
    }

    #[test]
    fn process_count_tradeoff_exists() {
        // Using every core is not automatically optimal (threads help the
        // memory-bound BLAS-2 phase less than more ranks hurt the
        // tridiagonal solve) — there must be real structure to tune.
        let a = app();
        let t = vec![Value::Int(7000)];
        let vals: Vec<f64> = [1i64, 4, 8, 16, 32]
            .iter()
            .map(|&p| a.evaluate(&t, &cfg(48, p, (p as f64).sqrt() as i64), 0)[0])
            .collect();
        let best = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        let worst = vals.iter().cloned().fold(0.0, f64::max);
        assert!(worst / best > 1.3, "p sweep too flat: {vals:?}");
    }
}
