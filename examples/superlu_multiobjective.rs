//! Multi-objective tuning of SuperLU_DIST (simulated): factorization time
//! vs memory, as in paper Sec. 6.7 / Fig. 7 / Table 5.
//!
//! Runs Algorithm 2 on the matrix Si2, prints the discovered Pareto front,
//! and compares it against the library's default configuration and the two
//! single-objective optima.
//!
//! Run with:
//! ```text
//! cargo run --release --example superlu_multiobjective
//! ```

use gptune::apps::{HpcApp, MachineModel, SuperluApp};
use gptune::core::{mla, mla_mo, MlaOptions};
use gptune::{problem_from_app, problem_from_app_objective};
use std::sync::Arc;

fn main() {
    let app: Arc<dyn HpcApp> = Arc::new(SuperluApp::new(MachineModel::cori(8)));
    let tasks = SuperluApp::tasks(1); // Si2

    let budget = 40;
    let mut opts = MlaOptions::default().with_budget(budget).with_seed(5);
    opts.k_per_iter = 4;
    opts.lcm.n_starts = 3;

    println!("SuperLU_DIST multi-objective tuning (time, memory) on Si2, ε_tot = {budget}\n");

    // Default configuration (Table 5's first row).
    let default_cfg = app.default_config().unwrap();
    let default_out = app.evaluate(&tasks[0], &default_cfg, 0);
    println!(
        "default     : time {:>9.4}s  memory {:>9.2} MB   {}",
        default_out[0],
        default_out[1],
        app.tuning_space().format_config(&default_cfg)
    );

    // Single-objective optima (time-only and memory-only tuning).
    for (idx, label) in [(0usize, "time-only"), (1usize, "memory-only")] {
        let so = problem_from_app_objective(Arc::clone(&app), tasks.clone(), idx);
        let r = mla::tune(&so, &opts);
        let best_cfg = &r.per_task[0].best_config;
        let out = app.evaluate(&tasks[0], best_cfg, 0);
        println!(
            "{label:<12}: time {:>9.4}s  memory {:>9.2} MB   {}",
            out[0],
            out[1],
            app.tuning_space().format_config(best_cfg)
        );
    }

    // Multi-objective Pareto front.
    let mo = problem_from_app(Arc::clone(&app), tasks.clone());
    let r = mla_mo::tune_multiobjective(&mo, &opts);
    let mut front = r.per_task[0].pareto_front.clone();
    front.sort_by(|a, b| a.objectives[0].partial_cmp(&b.objectives[0]).unwrap());

    println!("\nPareto front ({} points):", front.len());
    println!("{:>12} {:>12}   configuration", "time (s)", "memory (MB)");
    for p in &front {
        println!(
            "{:>12.4} {:>12.2}   {}",
            p.objectives[0],
            p.objectives[1],
            mo.tuning_space.format_config(&p.config)
        );
    }

    // Improvement vs default at the extremes (paper: "83% improvement in
    // time or 93% in memory compared to default").
    if let (Some(fastest), Some(smallest)) = (
        front.first(),
        front
            .iter()
            .min_by(|a, b| a.objectives[1].partial_cmp(&b.objectives[1]).unwrap()),
    ) {
        println!(
            "\nvs default: time improved {:.0}%  |  memory improved {:.0}%",
            100.0 * (1.0 - fastest.objectives[0] / default_out[0]),
            100.0 * (1.0 - smallest.objectives[1] / default_out[1])
        );
    }
    println!("\n{}", r.stats.report());
}
