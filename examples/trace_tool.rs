//! trace_tool — summarize and export `gptune-trace` JSONL dumps.
//!
//! ```text
//! trace_tool demo <out.jsonl>                  # run a tiny fault-injected
//!                                              # traced MLA, dump its trace
//! trace_tool summarize <in.jsonl> [--chrome out.json]
//! ```
//!
//! `summarize` prints the top spans by *self time* (span duration minus
//! the time spent in spans nested inside it on the same track), the
//! utilization of every evaluation worker, the fault instant-events, and
//! the phase wall totals recomputed from the `gptune.core.*` spans — the
//! latter match the `stats:` line of the runlog because [`PhaseTimer`]
//! publishes one measurement to both. With `--chrome` the trace is also
//! re-exported to the Chrome trace-event format (open in Perfetto or
//! `chrome://tracing`).
//!
//! [`PhaseTimer`]: gptune::runtime::PhaseTimer

use gptune::apps::{AnalyticalApp, FaultSpec, FaultyApp};
use gptune::core::{mla, runlog, MlaOptions};
use gptune::problem_from_app;
use gptune::space::Value as SpaceValue;
use gptune::trace::tracer::{Event, EventKind, Field, TraceData};
use gptune::trace::Tracer;
use serde_json::Value;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let code = match args.get(1).map(String::as_str) {
        Some("demo") => demo(args.get(2).map(String::as_str).unwrap_or("trace.jsonl")),
        Some("summarize") if args.len() >= 3 => {
            let chrome_out = args
                .iter()
                .position(|a| a == "--chrome")
                .and_then(|i| args.get(i + 1))
                .map(String::as_str);
            summarize(&args[2], chrome_out)
        }
        Some("correlate") if args.len() >= 4 => correlate_dumps(&args[2], &args[3]),
        _ => {
            eprintln!("usage: trace_tool demo <out.jsonl>");
            eprintln!("       trace_tool summarize <in.jsonl> [--chrome out.json]");
            eprintln!("       trace_tool correlate <client.jsonl> <server.jsonl>");
            2
        }
    };
    std::process::exit(code);
}

/// Runs a tiny fault-injected two-task MLA with tracing enabled and dumps
/// the trace as JSONL — a self-contained way to produce input for
/// `summarize`.
fn demo(out_path: &str) -> i32 {
    let tracer = gptune::trace::install(Tracer::ring(1 << 16));
    drop(tracer); // previous global (disabled) tracer

    let spec = FaultSpec {
        crash_rate: 0.10,
        hang_rate: 0.05,
        transient_rate: 0.15,
        hang: Duration::from_millis(400),
        chaos_seed: 11,
    };
    let app = Arc::new(FaultyApp::new(AnalyticalApp::new(0.0), spec));
    let tasks = vec![vec![SpaceValue::Real(1.0)], vec![SpaceValue::Real(4.0)]];
    let problem = problem_from_app(app, tasks);
    let mut opts = MlaOptions::default()
        .with_budget(10)
        .with_seed(3)
        .with_eval_deadline(Duration::from_millis(120));
    opts.lcm.n_starts = 2;
    opts.lcm.lbfgs.max_iters = 15;
    opts.pso.particles = 15;
    opts.pso.iters = 10;
    opts.log_objective = false;

    let result = mla::tune(&problem, &opts);
    print!("{}", runlog::format_mla(&problem, &result));

    let data = gptune::trace::global().drain();
    let jsonl = gptune::trace::jsonl::to_string(&data);
    if let Err(e) = std::fs::write(out_path, jsonl) {
        eprintln!("trace_tool: cannot write {out_path}: {e}");
        return 1;
    }
    println!(
        "\ntrace: {} events on {} tracks -> {out_path}",
        data.events.len(),
        data.tracks.len()
    );
    0
}

/// One span reconstructed from a JSONL line.
struct SpanRow {
    name: String,
    ts: u64,
    dur: u64,
    track: u64,
}

fn summarize(path: &str, chrome_out: Option<&str>) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace_tool: cannot read {path}: {e}");
            return 1;
        }
    };

    let mut tracks: Vec<(u64, String)> = Vec::new();
    let mut events: Vec<Event> = Vec::new();
    let mut counters: Vec<(String, u64)> = Vec::new();
    let mut dropped = 0u64;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v: Value = match line.parse() {
            Ok(v) => v,
            Err(e) => {
                eprintln!("trace_tool: {path}:{}: bad JSON: {e:?}", lineno + 1);
                return 1;
            }
        };
        match v["type"].as_str() {
            Some("track") => {
                let id = v["id"].as_u64().unwrap_or(0);
                let name = v["name"].as_str().unwrap_or("?").to_string();
                tracks.push((id, name));
            }
            Some("event") => {
                let kind = match v["ph"].as_str() {
                    Some("span") => EventKind::Span {
                        dur_ns: v["dur_ns"].as_u64().unwrap_or(0),
                    },
                    _ => EventKind::Instant,
                };
                let mut fields: Vec<(gptune::trace::Name, Field)> = Vec::new();
                if let Some(obj) = v["args"].as_object() {
                    for (k, fv) in obj.iter() {
                        fields.push((k.clone().into(), json_to_field(fv)));
                    }
                }
                events.push(Event {
                    name: v["name"].as_str().unwrap_or("?").to_string().into(),
                    kind,
                    ts_ns: v["ts_ns"].as_u64().unwrap_or(0),
                    track: v["track"].as_u64().unwrap_or(0),
                    fields,
                });
            }
            Some("metric") => {
                if v["metric"].as_str() == Some("counter") {
                    counters.push((
                        v["name"].as_str().unwrap_or("?").to_string(),
                        v["value"].as_u64().unwrap_or(0),
                    ));
                }
            }
            Some("meta") => dropped = v["dropped"].as_u64().unwrap_or(0),
            _ => {}
        }
    }

    let track_name = |id: u64| -> String {
        tracks
            .iter()
            .find(|(t, _)| *t == id)
            .map(|(_, n)| n.clone())
            .unwrap_or_else(|| format!("track-{id}"))
    };

    let spans: Vec<SpanRow> = events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::Span { dur_ns } => Some(SpanRow {
                name: e.name.to_string(),
                ts: e.ts_ns,
                dur: dur_ns,
                track: e.track,
            }),
            EventKind::Instant => None,
        })
        .collect();

    // --- Top spans by self time (duration minus directly nested spans) ---
    let self_ns = self_times(&spans);
    let mut by_name: BTreeMap<&str, (u64, u64, u64)> = BTreeMap::new(); // count, total, self
    for (s, &selft) in spans.iter().zip(&self_ns) {
        let e = by_name.entry(&s.name).or_insert((0, 0, 0));
        e.0 += 1;
        e.1 += s.dur;
        e.2 += selft;
    }
    let mut ranked: Vec<(&str, (u64, u64, u64))> = by_name.into_iter().collect();
    ranked.sort_by(|a, b| b.1 .2.cmp(&a.1 .2));
    println!("top spans by self time:");
    println!(
        "  {:<32} {:>7} {:>12} {:>12}",
        "span", "count", "total", "self"
    );
    for (name, (count, total, selft)) in ranked.iter().take(10) {
        println!(
            "  {:<32} {:>7} {:>11.3}s {:>11.3}s",
            name,
            count,
            *total as f64 / 1e9,
            *selft as f64 / 1e9
        );
    }

    // --- Phase walls recomputed from the gptune.core.* spans ---
    let wall = |n: &str| -> f64 {
        spans
            .iter()
            .filter(|s| s.name == n)
            .map(|s| s.dur as f64 / 1e9)
            .sum()
    };
    println!(
        "phase walls from spans: modeling {:.3}s | search {:.3}s | objective {:.3}s",
        wall("gptune.core.modeling"),
        wall("gptune.core.search"),
        wall("gptune.core.objective")
    );

    // --- Per-worker utilization ---
    let t0 = events.iter().map(|e| e.ts_ns).min().unwrap_or(0);
    let t1 = events
        .iter()
        .map(|e| e.ts_ns + e.dur_ns().unwrap_or(0))
        .max()
        .unwrap_or(0);
    let horizon = (t1.saturating_sub(t0)).max(1) as f64;
    let mut worker_busy: BTreeMap<String, u64> = BTreeMap::new();
    for s in &spans {
        if s.name == "gptune.runtime.job" {
            *worker_busy.entry(track_name(s.track)).or_insert(0) += s.dur;
        }
    }
    if !worker_busy.is_empty() {
        println!("worker utilization (job spans / trace horizon):");
        for (worker, busy) in &worker_busy {
            println!(
                "  {:<24} {:>11.3}s  {:>5.1}%",
                worker,
                *busy as f64 / 1e9,
                100.0 * *busy as f64 / horizon
            );
        }
    }

    // --- Surrogate refit mix ---
    // The per-mode counters from `gptune.gp.refit` spans: how often the
    // tuner paid a full hyperparameter re-optimization vs. an O(n²)
    // incremental factor extension vs. a capped active-set update.
    let refit_total: u64 = counters
        .iter()
        .filter(|(n, _)| n.starts_with("gptune.gp.refit."))
        .map(|(_, v)| *v)
        .sum();
    if refit_total > 0 {
        println!("surrogate refits:");
        for mode in ["full", "incremental", "capped"] {
            let name = format!("gptune.gp.refit.{mode}");
            let v = counters
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, v)| *v)
                .unwrap_or(0);
            println!(
                "  {mode:<12} {v:>7}  {:>5.1}%",
                100.0 * v as f64 / refit_total as f64
            );
        }
    }

    // --- Fault instant-events and runtime counters ---
    let mut faults: BTreeMap<&str, u64> = BTreeMap::new();
    for e in &events {
        if matches!(e.kind, EventKind::Instant) {
            *faults.entry(&e.name).or_insert(0) += 1;
        }
    }
    println!("fault events:");
    if faults.is_empty() {
        println!("  (none)");
    }
    for (name, n) in &faults {
        println!("  {name:<32} {n:>7}");
    }
    for (name, v) in &counters {
        if name.starts_with("gptune.runtime.") || name.starts_with("gptune.core.failures") {
            println!("  counter {name:<24} {v:>7}");
        }
    }
    if dropped > 0 {
        println!("note: {dropped} events dropped by the ring buffer");
    }

    if let Some(out) = chrome_out {
        let data = TraceData {
            events,
            tracks,
            dropped,
            metrics: Default::default(),
        };
        let json = gptune::trace::chrome::export(&data);
        if let Err(e) = std::fs::write(out, json) {
            eprintln!("trace_tool: cannot write {out}: {e}");
            return 1;
        }
        println!("chrome trace -> {out} (open in Perfetto or chrome://tracing)");
    }
    0
}

fn json_to_field(v: &Value) -> Field {
    if let Some(b) = v.as_bool() {
        Field::Bool(b)
    } else if let Some(u) = v.as_u64() {
        Field::U64(u)
    } else if let Some(i) = v.as_i64() {
        Field::I64(i)
    } else if let Some(f) = v.as_f64() {
        Field::F64(f)
    } else if let Some(s) = v.as_str() {
        Field::from(s.to_string())
    } else {
        Field::F64(f64::NAN) // null: a non-finite float round-trips to null
    }
}

/// Self time per span: duration minus the duration of spans *directly*
/// nested inside it on the same track. Spans on one track nest by
/// interval containment (start within the parent's [ts, ts+dur)).
fn self_times(spans: &[SpanRow]) -> Vec<u64> {
    let mut order: Vec<usize> = (0..spans.len()).collect();
    // Parents sort before children: earlier start first, longer span first
    // on equal starts.
    order.sort_by(|&a, &b| {
        (spans[a].track, spans[a].ts, spans[b].dur).cmp(&(
            spans[b].track,
            spans[b].ts,
            spans[a].dur,
        ))
    });
    let mut child_time = vec![0u64; spans.len()];
    let mut stack: Vec<usize> = Vec::new(); // indices of open ancestor spans
    let mut cur_track = u64::MAX;
    for &i in &order {
        let s = &spans[i];
        if s.track != cur_track {
            stack.clear();
            cur_track = s.track;
        }
        while let Some(&top) = stack.last() {
            if spans[top].ts + spans[top].dur <= s.ts {
                stack.pop();
            } else {
                break;
            }
        }
        if let Some(&parent) = stack.last() {
            child_time[parent] += s.dur;
        }
        stack.push(i);
    }
    spans
        .iter()
        .zip(&child_time)
        .map(|(s, &c)| s.dur.saturating_sub(c))
        .collect()
}

/// `correlate <client.jsonl> <server.jsonl>` — merge a client-side and a
/// server-side trace dump into one causal timeline per request id: when
/// the client issued the call, whether it journaled a WAL entry first,
/// how many wire attempts it took, and which server-side spans (request
/// handling, session suggest/report/refit work) carried the same id.
/// Timestamps are per-dump (each tracer has its own epoch), so ordering
/// is only meaningful within one side; the id is the causal link.
fn correlate_dumps(client_path: &str, server_path: &str) -> i32 {
    let load = |path: &str| -> Result<gptune::trace::tracer::TraceData, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        gptune::serve::parse_jsonl(&text).map_err(|e| format!("{path}: {e}"))
    };
    let (client, server) = match (load(client_path), load(server_path)) {
        (Ok(c), Ok(s)) => (c, s),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("trace_tool: {e}");
            return 1;
        }
    };
    let report = gptune::serve::correlate(&client, &server);
    if report.requests.is_empty() {
        println!("no client rpc spans with request ids found in {client_path}");
        return 0;
    }
    for r in &report.requests {
        let ack = if r.acked { "acked" } else { "FAILED" };
        let mut chain = Vec::new();
        if r.wal_appended {
            chain.push("wal append".to_string());
        }
        chain.push(if r.attempts > 1 {
            format!("sent x{}", r.attempts)
        } else {
            "sent".to_string()
        });
        if r.server_spans.is_empty() {
            chain.push("(no server trace)".to_string());
        } else {
            chain.extend(r.server_spans.iter().map(|s| format!("server {s}")));
        }
        chain.push(ack.to_string());
        println!("{}  {:<12} {}", r.rid, r.op, chain.join(" -> "));
    }
    println!(
        "\n{} requests, {} acked, {} linked to server spans ({:.1}% of acked)",
        report.requests.len(),
        report.acked,
        report.linked,
        100.0 * report.link_rate()
    );
    0
}
