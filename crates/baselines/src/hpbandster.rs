//! HpBandSter-style TPE tuner.
//!
//! Per paper Sec. 6.6, the comparison disables HpBandSter's multi-armed
//! bandit (hyperband) feature "since it requires running applications with
//! varying fidelity/budgets", leaving its Bayesian-optimization core: a
//! Tree Parzen Estimator that models good/bad configuration densities and
//! proposes the candidate maximizing `l(x)/g(x)` (Sec. 5: "faster, but
//! less accurate" than GPTune's direct EI optimization).

use crate::{initial_design, repair, Tuner, TunerRun};
use gptune_core::TuningProblem;
use gptune_opt::tpe::{self, TpeOptions};
use gptune_space::Config;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// HpBandSter-like tuner (TPE, no hyperband).
#[derive(Debug)]
pub struct HpBandSterLike {
    /// TPE configuration.
    pub tpe: TpeOptions,
    /// Fraction of proposals that are uniform random (HpBandSter's
    /// `random_fraction`, default 1/3).
    pub random_fraction: f64,
    /// Initial design size before the model activates.
    pub n_initial: usize,
}

impl Default for HpBandSterLike {
    fn default() -> Self {
        HpBandSterLike {
            tpe: TpeOptions::default(),
            random_fraction: 1.0 / 3.0,
            n_initial: 5,
        }
    }
}

impl Tuner for HpBandSterLike {
    fn name(&self) -> &str {
        "hpbandster"
    }

    fn tune_task(
        &self,
        problem: &TuningProblem,
        task_idx: usize,
        budget: usize,
        seed: u64,
    ) -> TunerRun {
        assert!(budget > 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let space = &problem.tuning_space;
        let dim = space.dim();
        let mut samples: Vec<(Config, f64)> = Vec::with_capacity(budget);

        // Initial design.
        for cfg in initial_design(space, self.n_initial.min(budget), &mut rng) {
            let y =
                problem.evaluate(task_idx, &cfg, seed.wrapping_add(samples.len() as u64 * 13))[0];
            samples.push((cfg, y));
        }

        while samples.len() < budget {
            let u = if rng.gen::<f64>() < self.random_fraction {
                (0..dim).map(|_| rng.gen::<f64>()).collect()
            } else {
                let xs: Vec<Vec<f64>> = samples.iter().map(|(c, _)| space.normalize(c)).collect();
                let ys: Vec<f64> = samples.iter().map(|(_, y)| *y).collect();
                tpe::propose(&xs, &ys, dim, &self.tpe, &mut rng)
            };
            let cfg = repair(space, &u, &samples, &mut rng);
            let y =
                problem.evaluate(task_idx, &cfg, seed.wrapping_add(samples.len() as u64 * 13))[0];
            samples.push((cfg, y));
        }
        TunerRun::from_samples(samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gptune_space::{Param, Space, Value};

    fn problem() -> TuningProblem {
        let ts = Space::builder().param(Param::real("t", 0.0, 1.0)).build();
        let ps = Space::builder()
            .param(Param::real("x", 0.0, 1.0))
            .param(Param::real("y", 0.0, 1.0))
            .build();
        TuningProblem::new("hb", ts, ps, vec![vec![Value::Real(0.0)]], |_, x, _| {
            vec![(x[0].as_real() - 0.6).powi(2) + (x[1].as_real() - 0.4).powi(2) + 0.2]
        })
    }

    #[test]
    fn converges_on_smooth_problem() {
        let run = HpBandSterLike::default().tune_task(&problem(), 0, 60, 2);
        assert_eq!(run.samples.len(), 60);
        assert!(run.best_value < 0.23, "best {}", run.best_value);
    }

    #[test]
    fn better_than_random_on_average() {
        let p = problem();
        let mut hb = 0.0;
        let mut rd = 0.0;
        for s in 0..5 {
            hb += HpBandSterLike::default().tune_task(&p, 0, 40, s).best_value;
            rd += crate::RandomTuner.tune_task(&p, 0, 40, s).best_value;
        }
        assert!(hb <= rd * 1.05, "tpe {hb} vs random {rd}");
    }

    #[test]
    fn handles_failed_evaluations() {
        let ts = Space::builder().param(Param::real("t", 0.0, 1.0)).build();
        let ps = Space::builder().param(Param::real("x", 0.0, 1.0)).build();
        let p = TuningProblem::new("f", ts, ps, vec![vec![Value::Real(0.0)]], |_, x, _| {
            let v = x[0].as_real();
            if v < 0.3 {
                vec![f64::INFINITY]
            } else {
                vec![v]
            }
        });
        let run = HpBandSterLike::default().tune_task(&p, 0, 30, 4);
        assert!(run.best_value.is_finite());
        assert!(run.best_config[0].as_real() >= 0.3);
    }

    #[test]
    fn small_budget_short_circuit() {
        let run = HpBandSterLike::default().tune_task(&problem(), 0, 3, 1);
        assert_eq!(run.samples.len(), 3);
    }
}
