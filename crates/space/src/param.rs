//! Typed tuning/task parameters.

use serde::{Deserialize, Serialize};

/// The kind (domain) of a parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ParamKind {
    /// A real parameter on `[low, high]`. With `log = true` the parameter is
    /// normalized on a logarithmic scale (requires `low > 0`).
    Real { low: f64, high: f64, log: bool },
    /// An integer parameter on `[low, high]` inclusive. With `log = true`
    /// normalization is logarithmic (requires `low > 0`).
    Int { low: i64, high: i64, log: bool },
    /// A categorical parameter: an ordered list of discrete choices
    /// (algorithm names, permutation types, …).
    Categorical { choices: Vec<String> },
}

/// A named parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Param {
    /// Human-readable name (e.g. `"b_r"`, `"COLPERM"`).
    pub name: String,
    /// Domain of the parameter.
    pub kind: ParamKind,
}

impl Param {
    /// A real parameter on `[low, high]`.
    pub fn real(name: impl Into<String>, low: f64, high: f64) -> Param {
        assert!(low < high, "Param::real: low must be < high");
        Param {
            name: name.into(),
            kind: ParamKind::Real {
                low,
                high,
                log: false,
            },
        }
    }

    /// A log-scaled real parameter on `[low, high]`, `low > 0`.
    pub fn real_log(name: impl Into<String>, low: f64, high: f64) -> Param {
        assert!(
            0.0 < low && low < high,
            "Param::real_log: need 0 < low < high"
        );
        Param {
            name: name.into(),
            kind: ParamKind::Real {
                low,
                high,
                log: true,
            },
        }
    }

    /// An integer parameter on `[low, high]` inclusive.
    pub fn int(name: impl Into<String>, low: i64, high: i64) -> Param {
        assert!(low <= high, "Param::int: low must be <= high");
        Param {
            name: name.into(),
            kind: ParamKind::Int {
                low,
                high,
                log: false,
            },
        }
    }

    /// A log-scaled integer parameter on `[low, high]`, `low > 0`.
    pub fn int_log(name: impl Into<String>, low: i64, high: i64) -> Param {
        assert!(
            0 < low && low <= high,
            "Param::int_log: need 0 < low <= high"
        );
        Param {
            name: name.into(),
            kind: ParamKind::Int {
                low,
                high,
                log: true,
            },
        }
    }

    /// A categorical parameter over the given choices.
    pub fn categorical(name: impl Into<String>, choices: &[&str]) -> Param {
        assert!(!choices.is_empty(), "Param::categorical: empty choices");
        Param {
            name: name.into(),
            kind: ParamKind::Categorical {
                choices: choices.iter().map(|s| s.to_string()).collect(),
            },
        }
    }

    /// Maps a concrete value into `[0, 1]`.
    ///
    /// Integer and categorical values map to the midpoint of their cell so
    /// every integer/choice owns an equal-width interval; this makes
    /// denormalize∘normalize the identity on valid values.
    pub fn normalize(&self, v: &Value) -> f64 {
        match (&self.kind, v) {
            (ParamKind::Real { low, high, log }, Value::Real(x)) => {
                if *log {
                    (x.ln() - low.ln()) / (high.ln() - low.ln())
                } else {
                    (x - low) / (high - low)
                }
            }
            (ParamKind::Int { low, high, log }, Value::Int(x)) => {
                let cells = (high - low + 1) as f64;
                if *log {
                    // Midpoint in log cell space.
                    let lo = *low as f64;
                    let hi = *high as f64;
                    ((*x as f64).ln() - lo.ln())
                        / (hi.ln() - lo.ln() + f64::MIN_POSITIVE).max(f64::MIN_POSITIVE)
                } else {
                    ((x - low) as f64 + 0.5) / cells
                }
            }
            (ParamKind::Categorical { choices }, Value::Cat(i)) => {
                (*i as f64 + 0.5) / choices.len() as f64
            }
            _ => panic!(
                "Param::normalize: value kind mismatch for parameter '{}'",
                self.name
            ),
        }
        .clamp(0.0, 1.0)
    }

    /// Maps a normalized coordinate in `[0, 1]` back to a concrete value.
    pub fn denormalize(&self, u: f64) -> Value {
        let u = u.clamp(0.0, 1.0);
        match &self.kind {
            ParamKind::Real { low, high, log } => {
                let x = if *log {
                    (low.ln() + u * (high.ln() - low.ln())).exp()
                } else {
                    low + u * (high - low)
                };
                Value::Real(x.clamp(*low, *high))
            }
            ParamKind::Int { low, high, log } => {
                let x = if *log {
                    let lo = *low as f64;
                    let hi = *high as f64;
                    (lo.ln() + u * (hi.ln() - lo.ln())).exp().round() as i64
                } else {
                    let cells = (high - low + 1) as f64;
                    low + (u * cells).floor().min(cells - 1.0) as i64
                };
                Value::Int(x.clamp(*low, *high))
            }
            ParamKind::Categorical { choices } => {
                let k = choices.len() as f64;
                let i = ((u * k).floor() as usize).min(choices.len() - 1);
                Value::Cat(i)
            }
        }
    }

    /// `true` iff `v` is a member of this parameter's domain.
    pub fn contains(&self, v: &Value) -> bool {
        match (&self.kind, v) {
            (ParamKind::Real { low, high, .. }, Value::Real(x)) => {
                x.is_finite() && *x >= *low && *x <= *high
            }
            (ParamKind::Int { low, high, .. }, Value::Int(x)) => x >= low && x <= high,
            (ParamKind::Categorical { choices }, Value::Cat(i)) => *i < choices.len(),
            _ => false,
        }
    }

    /// Number of distinct values for discrete parameters (`None` for real).
    pub fn cardinality(&self) -> Option<usize> {
        match &self.kind {
            ParamKind::Real { .. } => None,
            ParamKind::Int { low, high, .. } => Some((high - low + 1) as usize),
            ParamKind::Categorical { choices } => Some(choices.len()),
        }
    }
}

/// A concrete value of one parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Value of a real parameter.
    Real(f64),
    /// Value of an integer parameter.
    Int(i64),
    /// Index into a categorical parameter's choice list.
    Cat(usize),
}

impl Value {
    /// Real value, panicking on kind mismatch.
    pub fn as_real(&self) -> f64 {
        match self {
            Value::Real(x) => *x,
            other => panic!("Value::as_real on {other:?}"),
        }
    }

    /// Integer value, panicking on kind mismatch.
    pub fn as_int(&self) -> i64 {
        match self {
            Value::Int(x) => *x,
            other => panic!("Value::as_int on {other:?}"),
        }
    }

    /// Categorical index, panicking on kind mismatch.
    pub fn as_cat(&self) -> usize {
        match self {
            Value::Cat(i) => *i,
            other => panic!("Value::as_cat on {other:?}"),
        }
    }

    /// Numeric view used for distance computations and display: real value,
    /// integer as f64, categorical index as f64.
    pub fn as_f64(&self) -> f64 {
        match self {
            Value::Real(x) => *x,
            Value::Int(x) => *x as f64,
            Value::Cat(i) => *i as f64,
        }
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Real(x) => write!(f, "{x:.6}"),
            Value::Int(x) => write!(f, "{x}"),
            Value::Cat(i) => write!(f, "#{i}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_roundtrip() {
        let p = Param::real("x", -2.0, 6.0);
        let v = Value::Real(1.0);
        let u = p.normalize(&v);
        assert!((u - 0.375).abs() < 1e-15);
        assert_eq!(p.denormalize(u), v);
    }

    #[test]
    fn real_log_roundtrip() {
        let p = Param::real_log("x", 1.0, 100.0);
        let u = p.normalize(&Value::Real(10.0));
        assert!((u - 0.5).abs() < 1e-12);
        let back = p.denormalize(0.5).as_real();
        assert!((back - 10.0).abs() < 1e-9);
    }

    #[test]
    fn int_roundtrip_all_values() {
        let p = Param::int("b", 1, 16);
        for v in 1..=16 {
            let u = p.normalize(&Value::Int(v));
            assert_eq!(p.denormalize(u), Value::Int(v), "v={v}");
            assert!((0.0..=1.0).contains(&u));
        }
    }

    #[test]
    fn int_denormalize_edges() {
        let p = Param::int("b", 0, 3);
        assert_eq!(p.denormalize(0.0), Value::Int(0));
        assert_eq!(p.denormalize(1.0), Value::Int(3));
        assert_eq!(p.denormalize(0.999999), Value::Int(3));
    }

    #[test]
    fn categorical_roundtrip() {
        let p = Param::categorical("alg", &["a", "b", "c"]);
        for i in 0..3 {
            let u = p.normalize(&Value::Cat(i));
            assert_eq!(p.denormalize(u), Value::Cat(i));
        }
        assert_eq!(p.denormalize(1.0), Value::Cat(2));
    }

    #[test]
    fn contains_checks_domain() {
        let p = Param::int("b", 2, 5);
        assert!(p.contains(&Value::Int(2)));
        assert!(p.contains(&Value::Int(5)));
        assert!(!p.contains(&Value::Int(6)));
        assert!(!p.contains(&Value::Real(3.0)));
        let r = Param::real("x", 0.0, 1.0);
        assert!(!r.contains(&Value::Real(f64::NAN)));
    }

    #[test]
    fn cardinality() {
        assert_eq!(Param::real("x", 0.0, 1.0).cardinality(), None);
        assert_eq!(Param::int("b", 3, 7).cardinality(), Some(5));
        assert_eq!(Param::categorical("c", &["x", "y"]).cardinality(), Some(2));
    }

    #[test]
    #[should_panic]
    fn normalize_kind_mismatch_panics() {
        let p = Param::real("x", 0.0, 1.0);
        p.normalize(&Value::Int(1));
    }

    #[test]
    fn denormalize_clamps_out_of_range() {
        let p = Param::real("x", 0.0, 1.0);
        assert_eq!(p.denormalize(-0.5), Value::Real(0.0));
        assert_eq!(p.denormalize(1.5), Value::Real(1.0));
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Real(2.5).as_f64(), 2.5);
        assert_eq!(Value::Int(-3).as_f64(), -3.0);
        assert_eq!(Value::Cat(2).as_f64(), 2.0);
        assert_eq!(Value::Int(4).as_int(), 4);
        assert_eq!(Value::Cat(1).as_cat(), 1);
    }
}
