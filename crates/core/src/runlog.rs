//! GPTune-style runlog formatting.
//!
//! The reference implementation prints, per task, the optimal tuning
//! parameters after `Popt`, the optimal objective values after `Oopt`, and
//! the tuner time breakdown after `stats:` (paper Appendix A.4: "The
//! optimal tuning parameters and objective function values are printed
//! after 'Popt' and 'Oopt' for each task. The tuner time breakdown is
//! printed after 'stats:'."). This module renders our results in the same
//! shape so run outputs are comparable side by side with GPTune's.

use crate::mla::{IterationStat, MlaResult};
use crate::mla_mo::MoMlaResult;
use crate::problem::TuningProblem;
use std::fmt::Write as _;
use std::path::Path;

/// Renders a single-objective MLA result as a GPTune-style runlog: the
/// `Popt`/`Oopt` block per task, the one-line `stats:` summary (unchanged
/// from earlier releases), then the per-iteration phase breakdown table.
pub fn format_mla(problem: &TuningProblem, result: &MlaResult) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "tuner: GPTune-rs MLA  problem: {}", problem.name);
    for (i, tr) in result.per_task.iter().enumerate() {
        let _ = writeln!(
            out,
            "tid: {i}    t: {}",
            problem.task_space.format_config(&tr.task)
        );
        let _ = writeln!(
            out,
            "    Popt: {}",
            problem.tuning_space.format_config(&tr.best_config)
        );
        let _ = writeln!(out, "    Oopt: {:.6}", tr.best_value);
        let _ = writeln!(out, "    nth : {}", best_sample_index(tr) + 1);
    }
    let _ = writeln!(out, "{}", result.stats.report());
    out.push_str(&format_iteration_table(&result.iterations));
    out
}

/// Per-iteration phase breakdown: one row per MLA iteration run by this
/// process, matching the `gptune.core.modeling`/`gptune.core.search`
/// spans on the trace. Empty input renders nothing, so runlogs of runs
/// that never left the sampling phase are unchanged.
pub fn format_iteration_table(iterations: &[IterationStat]) -> String {
    if iterations.is_empty() {
        return String::new();
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "iter:  {:>4}  {:>7}  {:>12}  {:>12}  {:>12}",
        "it", "n_evals", "modeling", "search", "incumbent"
    );
    for it in iterations {
        let incumbent = if it.incumbent.is_finite() {
            format!("{:.6}", it.incumbent)
        } else {
            "-".to_string()
        };
        let _ = writeln!(
            out,
            "iter:  {:>4}  {:>7}  {:>11.3}s  {:>11.3}s  {:>12}",
            it.iteration,
            it.n_evals,
            it.modeling_wall.as_secs_f64(),
            it.search_wall.as_secs_f64(),
            incumbent
        );
    }
    out
}

/// Renders a multi-objective MLA result (one `Popt`/`Oopt` pair per Pareto
/// point, matching GPTune's multi-objective runlogs).
pub fn format_mla_mo(problem: &TuningProblem, result: &MoMlaResult) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "tuner: GPTune-rs MLA (multi-objective)  problem: {}",
        problem.name
    );
    for (i, tr) in result.per_task.iter().enumerate() {
        let _ = writeln!(
            out,
            "tid: {i}    t: {}    |Pareto| = {}",
            problem.task_space.format_config(&tr.task),
            tr.pareto_front.len()
        );
        for p in &tr.pareto_front {
            let objs: Vec<String> = p.objectives.iter().map(|v| format!("{v:.6}")).collect();
            let _ = writeln!(
                out,
                "    Popt: {}    Oopt: [{}]",
                problem.tuning_space.format_config(&p.config),
                objs.join(", ")
            );
        }
    }
    let _ = writeln!(out, "{}", result.stats.report());
    out.push_str(&format_iteration_table(&result.iterations));
    out
}

/// Renders the archived run summaries of a problem from a `gptune-db`
/// archive: one `run:` header plus `stats:` phase-breakdown line per
/// archived tuner execution, so historical runs read side by side in the
/// same shape as live runlogs.
pub fn format_archived_runs(problem: &TuningProblem, db_path: &Path) -> std::io::Result<String> {
    let db = gptune_db::Db::open(db_path)?;
    let sig = crate::db_bridge::problem_signature(problem);
    let summaries = db.run_summaries(&problem.name, sig)?;
    let n_archived = db
        .query(&problem.name, sig, &gptune_db::Query::default())?
        .len();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "archive: {}  problem: {}  sig: {sig:016x}  archived evals: {n_archived}",
        db_path.display(),
        problem.name
    );
    if summaries.is_empty() {
        let _ = writeln!(out, "    (no archived runs)");
    }
    for s in &summaries {
        let _ = writeln!(
            out,
            "run: {}  seed: {}  machine: {}",
            s.prov.run,
            s.prov.seed,
            s.prov.machine.as_deref().unwrap_or("-")
        );
        let _ = writeln!(out, "    {}", s.stats.report());
    }
    Ok(out)
}

/// Index (0-based) of the evaluation that achieved the best value —
/// useful for anytime-performance inspection.
fn best_sample_index(tr: &crate::mla::TaskResult) -> usize {
    let mut best = f64::INFINITY;
    let mut idx = 0;
    for (k, (_, y)) in tr.samples.iter().enumerate() {
        if *y < best {
            best = *y;
            idx = k;
        }
    }
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mla;
    use crate::mla_mo;
    use crate::options::MlaOptions;
    use gptune_space::{Param, Space, Value};

    fn fast_opts(budget: usize) -> MlaOptions {
        let mut o = MlaOptions::default().with_budget(budget).with_seed(1);
        o.lcm.n_starts = 1;
        o.lcm.lbfgs.max_iters = 10;
        o.log_objective = false;
        o
    }

    fn toy() -> TuningProblem {
        let ts = Space::builder().param(Param::real("t", 0.0, 1.0)).build();
        let ps = Space::builder().param(Param::real("x", 0.0, 1.0)).build();
        TuningProblem::new("toy", ts, ps, vec![vec![Value::Real(0.5)]], |_, x, _| {
            vec![1.0 + (x[0].as_real() - 0.4).powi(2)]
        })
    }

    #[test]
    fn mla_runlog_has_popt_oopt_stats() {
        let p = toy();
        let r = mla::tune(&p, &fast_opts(6));
        let log = format_mla(&p, &r);
        assert!(log.contains("Popt:"), "{log}");
        assert!(log.contains("Oopt:"), "{log}");
        assert!(log.contains("stats:"), "{log}");
        assert!(log.contains("tid: 0"), "{log}");
    }

    #[test]
    fn mla_runlog_appends_iteration_table_after_unchanged_stats_line() {
        let p = toy();
        let r = mla::tune(&p, &fast_opts(8));
        assert!(!r.iterations.is_empty());
        let log = format_mla(&p, &r);
        // The summary line is byte-identical to PhaseStats::report().
        assert!(
            log.contains(&format!("{}\n", r.stats.report())),
            "stats line changed: {log}"
        );
        // The per-iteration table follows it: a header plus one row per
        // iteration, each carrying the incumbent column.
        let stats_pos = log.find("stats:").unwrap();
        let table_pos = log.find("iter:").unwrap();
        assert!(stats_pos < table_pos, "table must follow the summary");
        assert_eq!(log.matches("iter:").count(), r.iterations.len() + 1);
        assert!(log.contains("incumbent"), "{log}");
        assert!(log.contains("modeling"), "{log}");
        assert!(log.contains("search"), "{log}");
    }

    #[test]
    fn iteration_table_empty_for_no_iterations() {
        assert_eq!(format_iteration_table(&[]), "");
    }

    #[test]
    fn mo_runlog_prints_every_front_point() {
        let p = {
            let ts = Space::builder().param(Param::real("t", 0.0, 1.0)).build();
            let ps = Space::builder().param(Param::real("x", 0.0, 1.0)).build();
            TuningProblem::new("mo", ts, ps, vec![vec![Value::Real(0.0)]], |_, x, _| {
                let v = x[0].as_real();
                vec![1.0 + (v - 0.2).powi(2), 1.0 + (v - 0.8).powi(2)]
            })
            .with_objectives(2)
        };
        let mut o = fast_opts(10);
        o.k_per_iter = 2;
        let r = mla_mo::tune_multiobjective(&p, &o);
        let log = format_mla_mo(&p, &r);
        let popt_count = log.matches("Popt:").count();
        assert_eq!(popt_count, r.per_task[0].pareto_front.len());
        assert!(log.contains("|Pareto| ="));
    }

    #[test]
    fn archived_runs_render_stats_breakdown() {
        let dir = std::env::temp_dir().join(format!("gptune_runlog_db_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let p = toy();
        let empty = format_archived_runs(&p, &dir).unwrap();
        assert!(empty.contains("(no archived runs)"), "{empty}");
        let o = fast_opts(6).with_db(&dir);
        let r = mla::tune(&p, &o);
        assert!(r.completed);
        let log = format_archived_runs(&p, &dir).unwrap();
        assert!(log.contains("run: seed1-eps6-d1"), "{log}");
        assert!(log.contains("stats:"), "{log}");
        assert!(log.contains("(6 evals)"), "{log}");
        assert!(log.contains("archived evals: 6"), "{log}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn runlog_reports_failure_profile() {
        // Left half of the domain yields unusable measurements; the live
        // runlog and the archived-run rendering must both carry the
        // failure profile on their stats lines.
        let dir = std::env::temp_dir().join(format!("gptune_runlog_faults_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let ts = Space::builder().param(Param::real("t", 0.0, 1.0)).build();
        let ps = Space::builder().param(Param::real("x", 0.0, 1.0)).build();
        let p = TuningProblem::new("faulty", ts, ps, vec![vec![Value::Real(0.5)]], |_, x, _| {
            let xv = x[0].as_real();
            if xv < 0.5 {
                vec![f64::INFINITY]
            } else {
                vec![1.0 + (xv - 0.7).powi(2)]
            }
        });
        let o = fast_opts(8).with_db(&dir);
        let r = mla::tune(&p, &o);
        assert!(r.stats.n_invalid >= 1, "stats: {:?}", r.stats);
        let log = format_mla(&p, &r);
        assert!(log.contains("faults:"), "{log}");
        assert!(log.contains("invalid"), "{log}");
        let archived = format_archived_runs(&p, &dir).unwrap();
        assert!(archived.contains("faults:"), "{archived}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn best_sample_index_found() {
        let p = toy();
        let r = mla::tune(&p, &fast_opts(8));
        let idx = best_sample_index(&r.per_task[0]);
        assert_eq!(r.per_task[0].samples[idx].1, r.per_task[0].best_value);
    }
}
