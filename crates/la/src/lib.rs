//! Dense linear algebra substrate for GPTune-rs.
//!
//! GPTune's modeling phase factorizes the LCM covariance matrix (size
//! `δε × δε`) on every L-BFGS iteration, and its performance-model update
//! phase solves small least-squares problems. The reference implementation
//! delegates to LAPACK/ScaLAPACK; this crate provides the equivalent kernels
//! from scratch:
//!
//! * [`Matrix`] — a row-major dense matrix with the usual constructors and
//!   element accessors.
//! * [`blas`] — level-1/2/3 kernels (`dot`, `axpy`, `gemv`, `gemm`), with a
//!   rayon-parallel blocked `gemm`.
//! * [`cholesky`] — sequential and blocked-parallel Cholesky factorization
//!   (the parallel variant stands in for the ScaLAPACK-parallelised
//!   covariance factorization of the paper's Sec. 4.3), with solves,
//!   log-determinant, inverse, and jittered retry for nearly-singular
//!   covariances.
//! * [`lu`] — partial-pivoting LU with solves.
//! * [`qr`] — Householder QR and least-squares solves (used to fit the
//!   coarse performance-model hyperparameters of the paper's Eq. 7).
//! * [`triangular`] — forward/backward substitution on vectors and matrices.
//! * [`eigen`] — symmetric Jacobi eigendecomposition (conditioning
//!   diagnostics for the LCM covariance).
//!
//! All kernels are deterministic and panic on dimension mismatches (these are
//! programming errors); numerical failure (non-SPD, singular) is reported via
//! [`LaError`].

// Index-based loops are the natural idiom for the BLAS-like kernels below,
// and `!(x > 0.0)` deliberately treats NaN as failure in factorizations.
#![allow(clippy::needless_range_loop)]
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod blas;
pub mod cholesky;
pub mod eigen;
pub mod lu;
pub mod matrix;
pub mod ord;
pub mod qr;
pub mod triangular;

pub use cholesky::{Cholesky, CholeskyOptions};
pub use eigen::SymmetricEigen;
pub use lu::Lu;
pub use matrix::Matrix;
pub use ord::{argmax, argmin, cmp_f64, feq, max_f64, min_f64, sort_floats};
pub use qr::Qr;

/// Errors reported by factorization routines.
#[derive(Debug, Clone, PartialEq)]
pub enum LaError {
    /// The matrix is not (numerically) symmetric positive definite.
    /// Carries the pivot index at which the factorization broke down.
    NotPositiveDefinite { pivot: usize },
    /// The matrix is singular to working precision.
    Singular { pivot: usize },
    /// The system is rank deficient (least squares).
    RankDeficient { rank: usize },
}

impl std::fmt::Display for LaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix not positive definite (pivot {pivot})")
            }
            LaError::Singular { pivot } => write!(f, "matrix singular (pivot {pivot})"),
            LaError::RankDeficient { rank } => write!(f, "rank deficient (rank {rank})"),
        }
    }
}

impl std::error::Error for LaError {}

/// Convenience alias for results of factorization routines.
pub type Result<T> = std::result::Result<T, LaError>;
