//! Ablation study of MLA design choices (called out in DESIGN.md §5).
//!
//! Not a paper figure — this quantifies, on a fixed PDGEQRF workload, the
//! sensitivity of final tuning quality to the knobs the paper fixes by
//! design:
//!
//! 1. number of latent functions `Q` of the LCM (paper: `Q ≤ δ`);
//! 2. acquisition function (paper: EI, "directly optimizing EI …
//!    is slower, but more accurate" than density alternatives);
//! 3. fraction of the budget spent on the initial random design
//!    (paper: `ε_tot/2`);
//! 4. latent kernel family (paper: Gaussian/Eq. 3; Matérn 5/2 here).
//!
//! Reported value: sum over tasks of the best simulated runtime (lower is
//! better), averaged over 3 seeds.

use gptune::apps::{HpcApp, MachineModel, PdgeqrfApp};
use gptune::core::{mla, Acquisition, MlaOptions, SearchMethod};
use gptune::gp::KernelKind;
use gptune::problem_from_app;
use gptune_bench::{banner, random_qr_tasks};
use std::sync::Arc;

fn base_opts(budget: usize, seed: u64) -> MlaOptions {
    let mut o = MlaOptions::default().with_budget(budget).with_seed(seed);
    o.lcm.n_starts = 2;
    o.lcm.lbfgs.max_iters = 20;
    o
}

fn score(problem: &gptune::core::TuningProblem, make: impl Fn(u64) -> MlaOptions) -> f64 {
    let mut total = 0.0;
    for seed in 0..3u64 {
        let r = mla::tune(problem, &make(seed * 31 + 5));
        total += r
            .per_task
            .iter()
            .map(|t| {
                if t.best_value.is_finite() {
                    t.best_value
                } else {
                    1e3
                }
            })
            .sum::<f64>();
    }
    total / 3.0
}

fn main() {
    banner(
        "Ablation — MLA design choices (Q, acquisition, init fraction, kernel)",
        "(not in the paper; quantifies choices the paper fixes)",
        "PDGEQRF δ=5, ε_tot=12, mean over 3 seeds of Σ_task best runtime",
    );

    let app: Arc<dyn HpcApp> = Arc::new(PdgeqrfApp::new(MachineModel::cori(4), 20_000));
    let tasks = random_qr_tasks(5, 20_000, 99);
    let problem = problem_from_app(Arc::clone(&app), tasks);
    let budget = 12;

    println!("\n[1] latent-function count Q:");
    for q in [1usize, 2, 3, 5] {
        let s = score(&problem, |seed| {
            let mut o = base_opts(budget, seed);
            o.lcm.q = q;
            o
        });
        println!("  Q = {q}: Σ best = {s:.4}s");
    }

    println!("\n[2] acquisition function:");
    for (name, acq) in [
        ("EI (paper)", Acquisition::ExpectedImprovement),
        ("LCB κ=2", Acquisition::LowerConfidenceBound { kappa: 2.0 }),
        ("PI", Acquisition::ProbabilityOfImprovement),
    ] {
        let s = score(&problem, |seed| {
            let mut o = base_opts(budget, seed);
            o.acquisition = acq;
            o
        });
        println!("  {name:<12}: Σ best = {s:.4}s");
    }

    println!("\n[3] initial-design fraction of ε_tot:");
    for (label, init) in [
        ("1/4", budget / 4),
        ("1/2 (paper)", budget / 2),
        ("3/4", 3 * budget / 4),
        ("all-random", budget),
    ] {
        let s = score(&problem, |seed| {
            let mut o = base_opts(budget, seed);
            o.n_initial = Some(init.max(2));
            o
        });
        println!("  {label:<12}: Σ best = {s:.4}s");
    }

    println!("\n[4] acquisition-search optimizer (equal acquisition budget):");
    for (name, m) in [
        ("PSO (paper)", SearchMethod::Pso),
        ("DE", SearchMethod::DifferentialEvolution),
        ("CMA-ES", SearchMethod::Cmaes),
    ] {
        let s = score(&problem, |seed| {
            let mut o = base_opts(budget, seed);
            o.search_method = m;
            o
        });
        println!("  {name:<12}: Σ best = {s:.4}s");
    }

    println!("\n[5] latent kernel family:");
    for (name, k) in [
        ("SE (paper)", KernelKind::SquaredExponential),
        ("Matern 5/2", KernelKind::Matern52),
    ] {
        let s = score(&problem, |seed| {
            let mut o = base_opts(budget, seed);
            o.lcm.kernel = k;
            o
        });
        println!("  {name:<12}: Σ best = {s:.4}s");
    }

    println!("\nReading: the paper's defaults (EI, ε_tot/2 init, SE kernel, small Q) should be");
    println!("at or near the best cell of each sweep; all-random and PI typically trail.");
}
