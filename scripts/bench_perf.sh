#!/usr/bin/env bash
# Runs every BENCH_*.json perf emitter in the workspace and fails loudly
# if any of them is skipped or dies:
#
#   * lcm_perf        -> BENCH_lcm.json             distance-cached LCM vs
#                        reference likelihood/fit/prediction speedups
#   * trace_overhead  -> BENCH_trace_overhead.json  tracing-enabled vs
#                        disabled overhead guard (<= 3%), plus the
#                        rolling-window metrics arm (windowed vs plain
#                        tracer on the live serve request path, same
#                        <= 3% bar)
#   * serve_bench     -> BENCH_serve.json           >= 1000 concurrent
#                        suggest/report sessions, p50/p99 request latency
#                        from the gptune-trace histograms, and the
#                        kill-the-server WAL-replay drill (0 lost reports)
#
# Each emitter validates its own acceptance bars and exits non-zero on a
# regression; this wrapper additionally verifies that every expected
# output file actually appeared, so a silently-skipped emitter cannot
# masquerade as a green run. New emitters must be registered in the
# EMITTERS table below — the final count check makes forgetting that a
# loud failure too.
#
# Usage: scripts/bench_perf.sh [output-dir]   (default: repo root)
set -uo pipefail
cd "$(dirname "$0")/.."

out_dir="${1:-.}"
mkdir -p "$out_dir"

# name | binary | output file (one emitter per line).
EMITTERS=(
  "lcm_perf|lcm_perf|BENCH_lcm.json"
  "lcm_scale|lcm_scale|BENCH_lcm_scale.json"
  "trace_overhead|trace_overhead|BENCH_trace_overhead.json"
  "serve_bench|serve_bench|BENCH_serve.json"
)

failures=0
produced=0
for spec in "${EMITTERS[@]}"; do
  IFS='|' read -r name bin out <<<"$spec"
  out_path="$out_dir/$out"
  rm -f "$out_path"
  echo "=== $name -> $out_path"
  if ! cargo run -q --release -p gptune-bench --bin "$bin" -- "$out_path"; then
    echo "bench_perf: FAIL: emitter $name exited non-zero" >&2
    failures=$((failures + 1))
    continue
  fi
  if [ ! -s "$out_path" ]; then
    echo "bench_perf: FAIL: emitter $name did not write $out_path" >&2
    failures=$((failures + 1))
    continue
  fi
  produced=$((produced + 1))
done

# Belt-and-braces: every emitter in the table must have produced output.
if [ "$produced" -ne "${#EMITTERS[@]}" ]; then
  echo "bench_perf: FAIL: $produced/${#EMITTERS[@]} emitters produced output" >&2
  failures=$((failures + 1))
fi

if [ "$failures" -gt 0 ]; then
  echo "bench_perf: $failures failure(s)" >&2
  exit 1
fi
echo "bench_perf: all ${#EMITTERS[@]} emitters OK"
