//! Fixture: GX102 (`partial_cmp().unwrap()`) and GX103 (raw partial_cmp
//! comparator inside a sort/min/max combinator). `total_cmp` is clean.

pub fn gx102(values: &[f64]) -> std::cmp::Ordering {
    values[0].partial_cmp(&values[1]).unwrap() // GX102
}

pub fn gx103(values: &mut [f64]) {
    values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal)); // GX103
}

pub fn clean(values: &mut [f64]) -> Option<f64> {
    values.sort_by(f64::total_cmp);
    values.iter().copied().min_by(|a, b| a.total_cmp(b))
}
