//! Integration tests for multi-objective MLA on the SuperLU_DIST simulator
//! (the Fig. 7 / Table 5 code path).

use gptune::apps::{HpcApp, MachineModel, SuperluApp};
use gptune::core::{mla, mla_mo, MlaOptions};
use gptune::opt::nsga2::dominates;
use gptune::{problem_from_app, problem_from_app_objective};
use std::sync::Arc;

fn fast_opts(budget: usize, seed: u64) -> MlaOptions {
    let mut o = MlaOptions::default().with_budget(budget).with_seed(seed);
    o.lcm.n_starts = 2;
    o.lcm.lbfgs.max_iters = 20;
    o.k_per_iter = 4;
    o.nsga.population = 30;
    o.nsga.generations = 20;
    o
}

#[test]
fn pareto_front_dominates_default() {
    let app: Arc<dyn HpcApp> = Arc::new(SuperluApp::new(MachineModel::cori_noiseless(8)));
    let tasks = SuperluApp::tasks(1); // Si2
    let problem = problem_from_app(Arc::clone(&app), tasks.clone());
    let r = mla_mo::tune_multiobjective(&problem, &fast_opts(40, 4));

    let front = &r.per_task[0].pareto_front;
    assert!(!front.is_empty());

    // Front points must be mutually non-dominated and all finite.
    for a in front {
        assert!(a.objectives.iter().all(|v| v.is_finite()));
        for b in front {
            if !std::ptr::eq(a, b) {
                assert!(!dominates(&a.objectives, &b.objectives));
            }
        }
    }

    // The default configuration should be dominated by at least one front
    // point (paper: "the default objective values are far from optimal").
    let default_cfg = app.default_config().unwrap();
    let default_out = app.evaluate(&tasks[0], &default_cfg, 0);
    assert!(
        front.iter().any(|p| dominates(&p.objectives, &default_out)),
        "no front point dominates the default {default_out:?}"
    );
}

#[test]
fn front_exposes_time_memory_tradeoff() {
    let app: Arc<dyn HpcApp> = Arc::new(SuperluApp::new(MachineModel::cori_noiseless(8)));
    let tasks = SuperluApp::tasks(1);
    let problem = problem_from_app(Arc::clone(&app), tasks);
    let r = mla_mo::tune_multiobjective(&problem, &fast_opts(40, 6));
    let front = &r.per_task[0].pareto_front;
    if front.len() >= 2 {
        // The fastest point must use more memory than the smallest point.
        let fastest = front
            .iter()
            .min_by(|a, b| a.objectives[0].partial_cmp(&b.objectives[0]).unwrap())
            .unwrap();
        let smallest = front
            .iter()
            .min_by(|a, b| a.objectives[1].partial_cmp(&b.objectives[1]).unwrap())
            .unwrap();
        assert!(fastest.objectives[1] >= smallest.objectives[1]);
        assert!(smallest.objectives[0] >= fastest.objectives[0]);
    }
}

#[test]
fn single_objective_optimum_consistent_with_front() {
    // The time-only tuned point must not strictly dominate every front
    // point in *both* objectives (it optimizes only one) — and its time
    // should be competitive with the front's best time.
    let app: Arc<dyn HpcApp> = Arc::new(SuperluApp::new(MachineModel::cori_noiseless(8)));
    let tasks = SuperluApp::tasks(1);
    let mo = problem_from_app(Arc::clone(&app), tasks.clone());
    let so = problem_from_app_objective(Arc::clone(&app), tasks.clone(), 0);

    let rmo = mla_mo::tune_multiobjective(&mo, &fast_opts(40, 8));
    let rso = mla::tune(&so, &fast_opts(40, 8));

    let front = &rmo.per_task[0].pareto_front;
    let best_front_time = front
        .iter()
        .map(|p| p.objectives[0])
        .fold(f64::INFINITY, f64::min);
    let so_time = rso.per_task[0].best_value;
    // Within 2x of each other (both are stochastic searches).
    assert!(
        so_time < best_front_time * 2.0 && best_front_time < so_time * 2.0,
        "single-objective time {so_time} vs front best {best_front_time}"
    );
}

#[test]
fn multitask_multiobjective_runs_all_tasks() {
    let app: Arc<dyn HpcApp> = Arc::new(SuperluApp::new(MachineModel::cori_noiseless(8)));
    let tasks = SuperluApp::tasks(4);
    let problem = problem_from_app(Arc::clone(&app), tasks);
    let r = mla_mo::tune_multiobjective(&problem, &fast_opts(16, 10));
    assert_eq!(r.per_task.len(), 4);
    for tr in &r.per_task {
        assert!(!tr.pareto_front.is_empty());
        assert!(tr.samples.len() >= 16);
    }
}
