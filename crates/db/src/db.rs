//! The archive database: a directory of per-problem JSONL journals plus
//! checkpoint snapshots.
//!
//! Layout under the root directory:
//!
//! ```text
//! <root>/
//!   <problem>-<sig:016x>.jsonl        one journal per problem signature
//!   <problem>-<sig:016x>.jsonl.lock   advisory lockfile (transient)
//!   ckpt-<sig:016x>-<seed>.json       in-flight checkpoint (removed on
//!                                     completion)
//! ```
//!
//! Journal names embed the problem *signature* (a stable hash of the
//! problem name, spaces, and objective count), so two problems that share
//! a name but differ structurally never mix records.

use crate::checkpoint::Checkpoint;
use crate::journal::{self, RecoveryReport};
use crate::lock::LockOptions;
use crate::record::{DbEntry, DbRecord, DbValue, FailRecord, RunSummary};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A handle on an archive directory.
#[derive(Debug, Clone)]
pub struct Db {
    root: PathBuf,
    lock: LockOptions,
}

/// Query filter for [`Db::query`].
#[derive(Debug, Clone, Default)]
pub struct Query {
    /// Keep only records whose task equals this exactly.
    pub task: Option<Vec<DbValue>>,
    /// Keep only records with this many objective outputs.
    pub n_outputs: Option<usize>,
    /// Keep only records whose outputs are all finite.
    pub finite_only: bool,
}

impl Db {
    /// Opens (creating if needed) an archive rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Db> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(Db {
            root,
            lock: LockOptions::default(),
        })
    }

    /// Overrides the locking discipline (tests use short timeouts).
    pub fn with_lock_options(mut self, lock: LockOptions) -> Db {
        self.lock = lock;
        self
    }

    /// The archive root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Journal path for a problem signature.
    pub fn journal_path(&self, problem: &str, sig: u64) -> PathBuf {
        self.root
            .join(format!("{}-{sig:016x}.jsonl", sanitize(problem)))
    }

    /// Checkpoint path for a (signature, seed) pair.
    pub fn checkpoint_path(&self, sig: u64, seed: u64) -> PathBuf {
        self.root.join(format!("ckpt-{sig:016x}-{seed}.json"))
    }

    /// Appends entries to the appropriate journal (all entries must share
    /// one `(problem, sig)`); durable and lock-protected.
    pub fn append(&self, entries: &[DbEntry]) -> io::Result<usize> {
        let Some(first) = entries.first() else {
            return Ok(0);
        };
        let (problem, sig) = match first {
            DbEntry::Eval(r) => (r.problem.as_str(), r.sig),
            DbEntry::Run(r) => (r.problem.as_str(), r.sig),
            DbEntry::Fail(r) => (r.problem.as_str(), r.sig),
        };
        journal::append(&self.journal_path(problem, sig), entries, &self.lock)
    }

    /// Loads every recoverable entry of a problem's history: archive
    /// shards (when a manifest exists) followed by the live journal,
    /// deduplicated.
    pub fn load(&self, problem: &str, sig: u64) -> io::Result<(Vec<DbEntry>, RecoveryReport)> {
        crate::shard::load_all(&self.root, problem, sig)
    }

    /// Archived evaluations matching a filter, in journal (append) order.
    pub fn query(&self, problem: &str, sig: u64, q: &Query) -> io::Result<Vec<DbRecord>> {
        let (entries, _) = self.load(problem, sig)?;
        Ok(entries
            .into_iter()
            .filter_map(|e| match e {
                DbEntry::Eval(r) => Some(r),
                _ => None,
            })
            .filter(|r| q.task.as_ref().is_none_or(|t| &r.task == t))
            .filter(|r| q.n_outputs.is_none_or(|n| r.outputs.len() == n))
            .filter(|r| !q.finite_only || r.outputs.iter().all(|x| x.is_finite()))
            .collect())
    }

    /// Run summaries of a problem, in append order.
    pub fn run_summaries(&self, problem: &str, sig: u64) -> io::Result<Vec<RunSummary>> {
        let (entries, _) = self.load(problem, sig)?;
        Ok(entries
            .into_iter()
            .filter_map(|e| match e {
                DbEntry::Run(r) => Some(r),
                _ => None,
            })
            .collect())
    }

    /// Archived failure records of a problem, in append order — the
    /// "known to fail" set consulted before re-evaluating configurations.
    pub fn failures(&self, problem: &str, sig: u64) -> io::Result<Vec<FailRecord>> {
        let (entries, _) = self.load(problem, sig)?;
        Ok(entries
            .into_iter()
            .filter_map(|e| match e {
                DbEntry::Fail(r) => Some(r),
                _ => None,
            })
            .collect())
    }

    /// Deduplicates and heals a journal in place. Returns
    /// `(entries_kept, entries_dropped)`.
    pub fn compact(&self, problem: &str, sig: u64) -> io::Result<(usize, usize)> {
        journal::compact(&self.journal_path(problem, sig), &self.lock)
    }

    /// Merges a foreign journal file into this archive's journal for the
    /// same problem. Returns the number of new entries. Deduplication is
    /// shard-aware: entries already present in this archive's shards are
    /// not re-added to the live journal.
    pub fn merge_from(&self, problem: &str, sig: u64, src: &Path) -> io::Result<usize> {
        let (entries, _) = if crate::journal_v2::is_v2(src) {
            crate::journal_v2::load(src)?
        } else {
            journal::load(src)?
        };
        self.merge_entries(problem, sig, &entries)
    }

    /// Appends the subset of `entries` not already present anywhere in
    /// this archive (shards or live journal) to the live journal.
    /// Returns the number of entries added.
    pub fn merge_entries(&self, problem: &str, sig: u64, entries: &[DbEntry]) -> io::Result<usize> {
        let (existing, _) = self.load(problem, sig)?;
        let mut seen: std::collections::BTreeSet<String> =
            existing.iter().map(DbEntry::dedup_key).collect();
        let fresh: Vec<DbEntry> = entries
            .iter()
            .filter(|e| seen.insert(e.dedup_key()))
            .cloned()
            .collect();
        if fresh.is_empty() {
            return Ok(0);
        }
        journal::append(&self.journal_path(problem, sig), &fresh, &self.lock)
    }

    /// Splits this problem's history into v2 archive shards (see
    /// [`crate::shard::split`]).
    pub fn split_shards(
        &self,
        problem: &str,
        sig: u64,
        policy: crate::shard::ShardPolicy,
    ) -> io::Result<crate::shard::ShardManifest> {
        crate::shard::split(&self.root, problem, sig, policy, &self.lock)
    }

    /// The shard manifest for `(problem, sig)`, when the problem has been
    /// sharded.
    pub fn shard_manifest(
        &self,
        problem: &str,
        sig: u64,
    ) -> io::Result<Option<crate::shard::ShardManifest>> {
        crate::shard::ShardManifest::load(&self.root, problem, sig)
    }

    /// Lists `(file_name, n_entries)` for every journal in the archive.
    pub fn journals(&self) -> io::Result<Vec<(String, usize)>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if !name.ends_with(".jsonl") {
                continue;
            }
            let (entries, _) = journal::load(&entry.path())?;
            out.push((name, entries.len()));
        }
        out.sort();
        Ok(out)
    }

    /// Saves an MLA checkpoint for `(sig, seed)`.
    pub fn save_checkpoint(&self, ckpt: &Checkpoint) -> io::Result<()> {
        ckpt.save(&self.checkpoint_path(ckpt.sig, ckpt.seed))
    }

    /// Loads the checkpoint for `(sig, seed)` when present.
    pub fn load_checkpoint(&self, sig: u64, seed: u64) -> io::Result<Option<Checkpoint>> {
        Checkpoint::load(&self.checkpoint_path(sig, seed))
    }

    /// Removes the checkpoint for `(sig, seed)` (idempotent).
    pub fn clear_checkpoint(&self, sig: u64, seed: u64) -> io::Result<()> {
        Checkpoint::remove(&self.checkpoint_path(sig, seed))
    }
}

/// Filesystem-safe slug of a problem name (`pdgeqrf[0]` → `pdgeqrf_0_`).
/// Public so other archive writers (the serve session store) derive
/// file names the same way.
pub fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Provenance;

    fn tmp_root(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("gptune_db_db_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn rec(task: i64, cfg: i64, y: f64) -> DbEntry {
        DbEntry::Eval(DbRecord {
            problem: "toy[0]".into(),
            sig: 0xfeed,
            task: vec![DbValue::Int(task)],
            config: vec![DbValue::Int(cfg)],
            outputs: vec![y],
            prov: Provenance {
                seed: 1,
                run: "r".into(),
                machine: None,
            },
        })
    }

    #[test]
    fn append_query_filters() {
        let root = tmp_root("query");
        let db = Db::open(&root).unwrap();
        db.append(&[rec(1, 10, 1.0), rec(1, 20, f64::INFINITY), rec(2, 10, 3.0)])
            .unwrap();
        let all = db.query("toy[0]", 0xfeed, &Query::default()).unwrap();
        assert_eq!(all.len(), 3);
        let t1 = db
            .query(
                "toy[0]",
                0xfeed,
                &Query {
                    task: Some(vec![DbValue::Int(1)]),
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(t1.len(), 2);
        let finite = db
            .query(
                "toy[0]",
                0xfeed,
                &Query {
                    task: Some(vec![DbValue::Int(1)]),
                    finite_only: true,
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(finite.len(), 1);
        assert_eq!(finite[0].config, vec![DbValue::Int(10)]);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn sanitized_journal_name() {
        let root = tmp_root("sanitize");
        let db = Db::open(&root).unwrap();
        let p = db.journal_path("toy[0]", 0xfeed);
        let name = p.file_name().unwrap().to_string_lossy().into_owned();
        assert_eq!(name, "toy_0_-000000000000feed.jsonl");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn journals_listing_and_compact() {
        let root = tmp_root("list");
        let db = Db::open(&root).unwrap();
        db.append(&[rec(1, 10, 1.0), rec(1, 10, 1.0)]).unwrap();
        let js = db.journals().unwrap();
        assert_eq!(js.len(), 1);
        assert_eq!(js[0].1, 2);
        let (kept, dropped) = db.compact("toy[0]", 0xfeed).unwrap();
        assert_eq!((kept, dropped), (1, 1));
        assert_eq!(db.journals().unwrap()[0].1, 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn merge_between_archives() {
        let root_a = tmp_root("merge_a");
        let root_b = tmp_root("merge_b");
        let a = Db::open(&root_a).unwrap();
        let b = Db::open(&root_b).unwrap();
        a.append(&[rec(1, 10, 1.0)]).unwrap();
        b.append(&[rec(1, 10, 1.0), rec(1, 20, 2.0)]).unwrap();
        let added = a
            .merge_from("toy[0]", 0xfeed, &b.journal_path("toy[0]", 0xfeed))
            .unwrap();
        assert_eq!(added, 1);
        assert_eq!(
            a.query("toy[0]", 0xfeed, &Query::default()).unwrap().len(),
            2
        );
        let _ = fs::remove_dir_all(&root_a);
        let _ = fs::remove_dir_all(&root_b);
    }

    #[test]
    fn failures_query_filters_fail_entries() {
        use crate::record::{FailKind, FailRecord};
        let root = tmp_root("fails");
        let db = Db::open(&root).unwrap();
        let fail = DbEntry::Fail(FailRecord {
            problem: "toy[0]".into(),
            sig: 0xfeed,
            task: vec![DbValue::Int(1)],
            config: vec![DbValue::Int(20)],
            kind: FailKind::TimedOut,
            attempts: 1,
            elapsed_secs: 0.2,
            prov: Provenance::default(),
        });
        db.append(&[rec(1, 10, 1.0), fail.clone(), rec(1, 30, 2.0)])
            .unwrap();
        let fails = db.failures("toy[0]", 0xfeed).unwrap();
        assert_eq!(fails.len(), 1);
        assert_eq!(fails[0].kind, FailKind::TimedOut);
        assert_eq!(fails[0].config, vec![DbValue::Int(20)]);
        // Fail entries do not leak into eval queries or run summaries.
        assert_eq!(
            db.query("toy[0]", 0xfeed, &Query::default()).unwrap().len(),
            2
        );
        assert_eq!(db.run_summaries("toy[0]", 0xfeed).unwrap().len(), 0);
        // And they dedup like any other entry under compaction.
        db.append(&[fail]).unwrap();
        let (kept, dropped) = db.compact("toy[0]", 0xfeed).unwrap();
        assert_eq!((kept, dropped), (3, 1));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn checkpoint_lifecycle_via_db() {
        use crate::checkpoint::CheckpointKind;
        use crate::record::RunStats;
        let root = tmp_root("ckpt");
        let db = Db::open(&root).unwrap();
        assert_eq!(db.load_checkpoint(9, 3).unwrap(), None);
        let c = Checkpoint {
            kind: CheckpointKind::Mla,
            sig: 9,
            seed: 3,
            eps_total: 10,
            iteration: 2,
            eps: 7,
            n_preloaded: 0,
            points: vec![(0, vec![DbValue::Real(0.5)])],
            outputs: vec![vec![1.0]],
            fails: Vec::new(),
            stats: RunStats::default(),
        };
        db.save_checkpoint(&c).unwrap();
        assert_eq!(db.load_checkpoint(9, 3).unwrap(), Some(c));
        assert_eq!(db.load_checkpoint(9, 4).unwrap(), None, "seed-scoped");
        db.clear_checkpoint(9, 3).unwrap();
        assert_eq!(db.load_checkpoint(9, 3).unwrap(), None);
        let _ = fs::remove_dir_all(&root);
    }
}
