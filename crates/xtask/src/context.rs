//! Per-file analysis context shared by all rules: which lines are test
//! code, which lines sit under an `#[allow(clippy::…)]` escape hatch, and
//! where the comments are (for `// SAFETY:` / `// PANIC-SAFETY:`
//! justification checks).

use crate::lexer::{Comment, Lexed, Tok, Token};

/// Clippy lint names whose `#[allow(…)]` the suite recognises as escape
/// hatches — and therefore requires a justification comment for.
pub const MONITORED_ALLOWS: &[&str] = &[
    "unwrap_used",
    "expect_used",
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "indexing_slicing",
];

/// Marker prefixes accepted as justification comments next to an
/// `#[allow]` attribute or an `unsafe` block.
pub const JUSTIFICATION_MARKERS: &[&str] = &["PANIC-SAFETY:", "SAFETY:"];

/// One `#[allow(clippy::…)]` attribute and the item lines it covers.
#[derive(Debug)]
pub struct AllowSpan {
    /// Final path segments of the allowed lints (`unwrap_used`, `panic`, …),
    /// filtered to [`MONITORED_ALLOWS`].
    pub lints: Vec<String>,
    /// Line of the attribute itself.
    pub attr_line: u32,
    /// Inclusive line range of the attribute plus the item it covers.
    pub start: u32,
    pub end: u32,
    /// True when a justification comment sits on/adjacent to the attribute.
    pub justified: bool,
}

/// Everything the rules need about one source file.
pub struct FileCtx<'a> {
    /// Repo-relative path with forward slashes.
    pub path: &'a str,
    pub tokens: &'a [Token],
    pub comments: &'a [Comment],
    /// Whole file is test/bench/example code (by directory convention).
    pub test_file: bool,
    test_spans: Vec<(u32, u32)>,
    allow_spans: Vec<AllowSpan>,
}

impl<'a> FileCtx<'a> {
    pub fn new(path: &'a str, lexed: &'a Lexed) -> FileCtx<'a> {
        let test_file = is_test_path(path);
        let (test_spans, allow_spans) = scan_spans(&lexed.tokens, &lexed.comments);
        FileCtx {
            path,
            tokens: &lexed.tokens,
            comments: &lexed.comments,
            test_file,
            test_spans,
            allow_spans,
        }
    }

    /// Name of the workspace crate this file belongs to (`la`, `db`, …);
    /// the root package maps to `gptune`.
    pub fn crate_name(&self) -> &str {
        if let Some(rest) = self.path.strip_prefix("crates/") {
            rest.split('/').next().unwrap_or("")
        } else {
            "gptune"
        }
    }

    /// True when `line` lies in test code (test file, `#[cfg(test)]`
    /// module, or `#[test]` function).
    pub fn in_test(&self, line: u32) -> bool {
        self.test_file || self.test_spans.iter().any(|&(a, b)| a <= line && line <= b)
    }

    /// The allow span covering `line` for clippy lint `lint`, if any.
    pub fn allow_for(&self, line: u32, lint: &str) -> Option<&AllowSpan> {
        self.allow_spans
            .iter()
            .find(|s| s.start <= line && line <= s.end && s.lints.iter().any(|l| l == lint))
    }

    /// All allow spans (GX290 walks them to verify justifications).
    pub fn allow_spans(&self) -> &[AllowSpan] {
        &self.allow_spans
    }

    /// True when a comment containing one of [`JUSTIFICATION_MARKERS`]
    /// touches the line window `[lo, hi]`, or appears anywhere in the
    /// contiguous comment block ending directly above `lo` (a multi-line
    /// justification puts the marker on its first line).
    pub fn justification_near(&self, lo: u32, hi: u32) -> bool {
        let has_marker = |c: &Comment| JUSTIFICATION_MARKERS.iter().any(|m| c.text.contains(m));
        if self.comments.iter().any(|c| {
            let c_end = c.line + c.lines_spanned() - 1;
            c.line <= hi && c_end >= lo && has_marker(c)
        }) {
            return true;
        }
        let mut line = lo.saturating_sub(1);
        while line > 0 {
            let Some(c) = self
                .comments
                .iter()
                .find(|c| c.line <= line && line <= c.line + c.lines_spanned() - 1)
            else {
                break;
            };
            if has_marker(c) {
                return true;
            }
            line = c.line.saturating_sub(1);
        }
        false
    }
}

/// Directory conventions for whole-file test code.
fn is_test_path(path: &str) -> bool {
    let p = path;
    p.starts_with("tests/")
        || p.contains("/tests/")
        || p.contains("/benches/")
        || p.contains("/examples/")
        || p.starts_with("examples/")
        || p.contains("/fixtures/")
}

/// Single pass over the token stream collecting `#[cfg(test)]` / `#[test]`
/// item spans and `#[allow(clippy::…)]` spans.
fn scan_spans(tokens: &[Token], comments: &[Comment]) -> (Vec<(u32, u32)>, Vec<AllowSpan>) {
    let mut test_spans = Vec::new();
    let mut allow_spans = Vec::new();
    let last_line = tokens.last().map_or(1, |t| t.line);
    let mut i = 0usize;
    while i < tokens.len() {
        if !tokens[i].is_punct('#') {
            i += 1;
            continue;
        }
        // Inner attribute `#![…]`: applies to the enclosing scope, not the
        // next item. A file-level `#![allow(clippy::…)]` covers the whole
        // file; nothing else matters here (`#![cfg_attr(not(test), …)]`
        // must NOT mark the following item as test code).
        if i + 1 < tokens.len() && tokens[i + 1].is_punct('!') {
            let Some(end) = match_delim(tokens, i + 2, '[', ']') else {
                break;
            };
            let lints = monitored_allow_lints(&tokens[i + 3..end]);
            if !lints.is_empty() {
                let attr_line = tokens[i].line;
                allow_spans.push(AllowSpan {
                    lints,
                    attr_line,
                    start: 1,
                    end: last_line,
                    justified: justification_window(comments, attr_line),
                });
            }
            i = end + 1;
            continue;
        }
        if i + 1 >= tokens.len() || !tokens[i + 1].is_punct('[') {
            i += 1;
            continue;
        }

        // Accumulate across the run of outer attributes on one item, then
        // measure the item's extent once.
        let mut any_test = false;
        let mut lints: Vec<String> = Vec::new();
        let mut first_attr_line = tokens[i].line;
        let mut attr_lines: Vec<u32> = Vec::new();
        let mut k = i;
        while k + 1 < tokens.len() && tokens[k].is_punct('#') && tokens[k + 1].is_punct('[') {
            let Some(e) = match_delim(tokens, k + 1, '[', ']') else {
                return (test_spans, allow_spans);
            };
            let attr = &tokens[k + 2..e];
            // `#[cfg(test)]` (or cfg(all/any containing test, un-negated))
            // gates the item out of production builds; `#[cfg_attr]` does
            // not, and `#[cfg(not(test))]` is production code.
            any_test |= attr.first().map(|t| t.is_ident("cfg")) == Some(true)
                && attr.iter().any(|t| t.is_ident("test"))
                && !attr.iter().any(|t| t.is_ident("not"));
            any_test |= attr.len() == 1 && attr[0].is_ident("test");
            lints.extend(monitored_allow_lints(attr));
            first_attr_line = first_attr_line.min(tokens[k].line);
            attr_lines.push(tokens[k].line);
            k = e + 1;
        }

        let item_end_line = item_extent(tokens, k);
        if any_test {
            test_spans.push((first_attr_line, item_end_line));
        }
        if !lints.is_empty() {
            let justified = attr_lines
                .iter()
                .any(|&l| justification_window(comments, l));
            allow_spans.push(AllowSpan {
                lints,
                attr_line: first_attr_line,
                start: first_attr_line,
                end: item_end_line,
                justified,
            });
        }
        i = k.max(i + 1);
    }
    (test_spans, allow_spans)
}

/// True when a justification comment touches lines `[attr_line-2,
/// attr_line+1]` — directly above, on, or immediately below the attribute.
fn justification_window(comments: &[Comment], attr_line: u32) -> bool {
    // Accept a marker anywhere in the contiguous comment block that ends
    // directly above the attribute (multi-line justifications push the
    // marker several lines up), or on the attribute's own line / the line
    // below (trailing-comment style).
    let has_marker = |c: &Comment| JUSTIFICATION_MARKERS.iter().any(|m| c.text.contains(m));
    let covers = |c: &Comment, line: u32| {
        let c_end = c.line + c.lines_spanned() - 1;
        c.line <= line && line <= c_end
    };
    if comments
        .iter()
        .any(|c| (covers(c, attr_line) || covers(c, attr_line + 1)) && has_marker(c))
    {
        return true;
    }
    let mut line = attr_line.saturating_sub(1);
    while line > 0 {
        let Some(c) = comments.iter().find(|c| covers(c, line)) else {
            break;
        };
        if has_marker(c) {
            return true;
        }
        line = c.line.saturating_sub(1);
    }
    false
}

/// Final path segments of `allow(...)` lint lists inside one attribute's
/// tokens, filtered to the monitored set. Handles both `#[allow(…)]` and
/// `#[cfg_attr(cond, allow(…))]`.
fn monitored_allow_lints(attr: &[Token]) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < attr.len() {
        if attr[i].is_ident("allow") && i + 1 < attr.len() && attr[i + 1].is_punct('(') {
            if let Some(end) = match_delim(attr, i + 1, '(', ')') {
                // Lint paths separated by commas; keep each path's last
                // identifier segment.
                let mut last: Option<&str> = None;
                for t in &attr[i + 2..end] {
                    match &t.kind {
                        Tok::Ident(s) => last = Some(s),
                        Tok::Punct(',') => {
                            if let Some(l) = last.take() {
                                if MONITORED_ALLOWS.contains(&l) {
                                    out.push(l.to_string());
                                }
                            }
                        }
                        _ => {}
                    }
                }
                if let Some(l) = last {
                    if MONITORED_ALLOWS.contains(&l) {
                        out.push(l.to_string());
                    }
                }
                i = end;
            }
        }
        i += 1;
    }
    out
}

/// Index of the closing delimiter matching `tokens[open]` (which must be
/// `open_c`). Counts only this delimiter kind — contents were already
/// string/comment-stripped by the lexer, so counting is sound.
pub fn match_delim(tokens: &[Token], open: usize, open_c: char, close_c: char) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct(open_c) {
            depth += 1;
        } else if t.is_punct(close_c) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Last line of the item starting at token `start`: the first `;` or `,`
/// at zero delimiter depth ends it, or the brace block that opens at zero
/// depth does.
fn item_extent(tokens: &[Token], start: usize) -> u32 {
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut k = start;
    while k < tokens.len() {
        let t = &tokens[k];
        match t.kind {
            Tok::Punct('(') => paren += 1,
            Tok::Punct(')') => paren -= 1,
            Tok::Punct('[') => bracket += 1,
            Tok::Punct(']') => bracket -= 1,
            Tok::Punct('{') if paren == 0 && bracket == 0 => {
                return match match_delim(tokens, k, '{', '}') {
                    Some(e) => tokens[e].line,
                    None => tokens.last().map_or(t.line, |l| l.line),
                };
            }
            Tok::Punct(';') | Tok::Punct(',') if paren == 0 && bracket == 0 => return t.line,
            _ => {}
        }
        k += 1;
    }
    tokens.last().map_or(0, |l| l.line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn cfg_test_mod_span() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\nfn b() {}\n";
        let lexed = lex(src);
        let ctx = FileCtx::new("crates/la/src/x.rs", &lexed);
        assert!(!ctx.in_test(1));
        assert!(ctx.in_test(4));
        assert!(!ctx.in_test(6));
    }

    #[test]
    fn test_attr_fn_span() {
        let src = "#[test]\nfn t() {\n  boom();\n}\nfn prod() {}\n";
        let lexed = lex(src);
        let ctx = FileCtx::new("crates/la/src/x.rs", &lexed);
        assert!(ctx.in_test(3));
        assert!(!ctx.in_test(5));
    }

    #[test]
    fn allow_span_with_justification() {
        let src = "// PANIC-SAFETY: spawn failure is unrecoverable at startup.\n#[allow(clippy::expect_used)]\nfn f() {\n  g().expect(\"x\");\n}\n";
        let lexed = lex(src);
        let ctx = FileCtx::new("crates/runtime/src/x.rs", &lexed);
        let span = ctx.allow_for(4, "expect_used").expect("span covers body");
        assert!(span.justified);
        assert!(ctx.allow_for(4, "unwrap_used").is_none());
    }

    #[test]
    fn allow_span_without_justification() {
        let src = "#[allow(clippy::unwrap_used)]\nfn f() {\n  g().unwrap();\n}\n";
        let lexed = lex(src);
        let ctx = FileCtx::new("crates/db/src/x.rs", &lexed);
        let span = ctx.allow_for(3, "unwrap_used").expect("span covers body");
        assert!(!span.justified);
    }

    #[test]
    fn unmonitored_allow_is_ignored() {
        let src = "#[allow(dead_code)]\nfn f() {}\n";
        let lexed = lex(src);
        let ctx = FileCtx::new("crates/db/src/x.rs", &lexed);
        assert!(ctx.allow_spans().is_empty());
    }

    #[test]
    fn crate_names() {
        let lexed = lex("");
        assert_eq!(
            FileCtx::new("crates/gp/src/lcm.rs", &lexed).crate_name(),
            "gp"
        );
        assert_eq!(FileCtx::new("src/cli.rs", &lexed).crate_name(), "gptune");
    }

    #[test]
    fn fixture_dirs_are_test_files() {
        let lexed = lex("");
        assert!(FileCtx::new("crates/xtask/tests/fixtures/a.rs", &lexed).test_file);
        assert!(FileCtx::new("crates/db/tests/x.rs", &lexed).test_file);
        assert!(!FileCtx::new("crates/db/src/x.rs", &lexed).test_file);
    }
}
