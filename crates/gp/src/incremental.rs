//! Incremental LCM refits: rank-1 factor extension + refit scheduling.
//!
//! The MLA loop refits the LCM surrogate every iteration; from scratch
//! that is O(n³) per restart and grows cubically with history size. This
//! module makes refits incremental and bounded:
//!
//! * **Extension** — while hyperparameters are held fixed, each new
//!   observation extends the stored Cholesky factor with one
//!   cross-covariance column in O(n²) ([`LcmModel::extend`]), and the
//!   pairwise distance cache grows in place instead of being rebuilt.
//! * **Schedule** — hyperparameters are re-optimized (a *full* refit,
//!   warm-started from the previous optimum) every `full_every`-th update
//!   or when the per-point NLL drifts past `nll_drift`, whichever first.
//! * **Cap** — with [`LcmFitOptions::max_active_set`] set, the active
//!   training set stops growing past the cap: full refits fit a
//!   farthest-point subset, and incremental updates evict the nearest
//!   non-incumbent point before admitting a new one, so per-update cost
//!   is O(cap²) no matter how long the history gets.
//!
//! Every update is traced as a `gptune.gp.refit` span with a
//! `mode=full|incremental|capped` field and a per-mode counter, so
//! utilization reports show the refit mix.
//!
//! The default schedule (`full_every = 1`) reproduces today's
//! refit-from-scratch behavior bit for bit — no warm starts, no factor
//! extension — so existing determinism and resume guarantees hold unless
//! a caller opts in.

use crate::lcm::{sqdist, DistanceCache, LcmFitOptions, LcmModel};
use gptune_la::ord::feq;

/// When hyperparameters are re-optimized, vs. extended incrementally.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefitSchedule {
    /// Run a full (hyperparameter re-optimizing) refit every `k`-th
    /// update; the `k−1` updates in between extend the factor at fixed
    /// hyperparameters. `1` (the default) refits fully every time —
    /// bit-identical to the pre-incremental behavior.
    pub full_every: u64,
    /// NLL-drift trigger: force a full refit when the model's per-point
    /// NLL (standardized outputs) has moved more than this from its value
    /// right after the last full fit. `0.0` disables the trigger.
    pub nll_drift: f64,
}

impl Default for RefitSchedule {
    fn default() -> Self {
        RefitSchedule {
            full_every: 1,
            nll_drift: 0.25,
        }
    }
}

impl RefitSchedule {
    /// A schedule that re-optimizes hyperparameters every `full_every`-th
    /// update and extends incrementally in between.
    pub fn every(full_every: u64) -> Self {
        RefitSchedule {
            full_every: full_every.max(1),
            ..Default::default()
        }
    }

    /// Whether this schedule ever takes the incremental path.
    pub fn is_incremental(&self) -> bool {
        self.full_every > 1
    }
}

/// How one [`IncrementalLcm::update`] call refreshed the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefitMode {
    /// Hyperparameters re-optimized; covariance factored from scratch.
    Full,
    /// New points appended to the existing factor at fixed hyperparameters.
    Incremental,
    /// Active set at the cap: evict-nearest + append at fixed
    /// hyperparameters.
    Capped,
}

impl RefitMode {
    /// The `mode` field value recorded on `gptune.gp.refit` spans.
    pub fn as_str(self) -> &'static str {
        match self {
            RefitMode::Full => "full",
            RefitMode::Incremental => "incremental",
            RefitMode::Capped => "capped",
        }
    }
}

/// Snapshot of the incremental bookkeeping, sufficient to rebuild the
/// surrogate *bit-identically* on restore: replay the last full fit
/// (same prefix, seed, and warm start), then replay the tail extensions
/// with the outputs exactly as the model saw them.
///
/// Only uncapped models are snapshotted ([`IncrementalLcm::state`]
/// returns `None` when the active-set cap has engaged, and sessions fall
/// back to a fresh full refit on restore).
#[derive(Debug, Clone, PartialEq)]
pub struct ModelState {
    /// Data length at the last full fit.
    pub n_full: usize,
    /// `LcmFitOptions::seed` used by the last full fit.
    pub full_seed: u64,
    /// Incremental updates applied since the last full fit.
    pub updates_since_full: u64,
    /// Packed warm-start hyperparameters the last full fit was given.
    pub warm: Option<Vec<f64>>,
    /// Outputs exactly as passed to each update (prefix: at the last full
    /// fit; tail: as appended) — stored because failure censoring can
    /// rewrite history values between updates.
    pub y: Vec<f64>,
}

/// A surrogate that persists across tuner iterations and decides, per
/// update, between a full hyperparameter refit and an O(n²) incremental
/// factor extension. See the module docs for the policy.
#[derive(Clone)]
pub struct IncrementalLcm {
    schedule: RefitSchedule,
    model: Option<LcmModel>,
    /// Pairwise distance cache grown in place across full refits. `None`
    /// until the first fit and whenever the active-set cap engaged (the
    /// subset fit indexes differently).
    cache: Option<DistanceCache>,
    /// Outputs exactly as seen by each update, for prefix-consistency
    /// checks (failure censoring may rewrite old values, which demands a
    /// full refit) and for snapshotting.
    y_seen: Vec<f64>,
    n_full: usize,
    full_seed: u64,
    warm_used: Option<Vec<f64>>,
    updates_since_full: u64,
    /// Per-point NLL right after the last full fit (drift reference).
    nll_ref: f64,
}

impl IncrementalLcm {
    /// An empty surrogate; the first [`update`](Self::update) fits fully.
    pub fn new(schedule: RefitSchedule) -> Self {
        IncrementalLcm {
            schedule,
            model: None,
            cache: None,
            y_seen: Vec::new(),
            n_full: 0,
            full_seed: 0,
            warm_used: None,
            updates_since_full: 0,
            nll_ref: 0.0,
        }
    }

    /// The current model, once at least one update has run.
    pub fn model(&self) -> Option<&LcmModel> {
        self.model.as_ref()
    }

    /// The schedule this surrogate runs under.
    pub fn schedule(&self) -> RefitSchedule {
        self.schedule
    }

    /// Incremental updates applied since the last full fit.
    pub fn updates_since_full(&self) -> u64 {
        self.updates_since_full
    }

    /// Refreshes the model against the complete current training set
    /// (`xs`/`task_of`/`y` are the *full* history, of which the already
    /// seen prefix must be unchanged for the incremental path to engage).
    /// Returns how the model was refreshed.
    pub fn update(
        &mut self,
        xs: &[Vec<f64>],
        task_of: &[usize],
        y: &[f64],
        n_tasks: usize,
        opts: &LcmFitOptions,
    ) -> RefitMode {
        let tracer = gptune_trace::global();
        let planned = self.decide(xs, task_of, y, n_tasks, opts);
        let mut span = tracer
            .span("gptune.gp.refit")
            .with("n", xs.len())
            .with("mode", planned.as_str());
        let prev = self.y_seen.len();
        let mode = match planned {
            RefitMode::Full => {
                self.full_fit(xs, task_of, y, n_tasks, opts);
                RefitMode::Full
            }
            RefitMode::Incremental => {
                let ok = {
                    let model = self.model.as_mut().expect("incremental without model");
                    model
                        .extend(&xs[prev..], &task_of[prev..], &y[prev..])
                        .is_ok()
                };
                if ok {
                    if let Some(c) = self.cache.as_mut() {
                        c.append(xs);
                    }
                    self.commit_incremental(y);
                    RefitMode::Incremental
                } else {
                    // Numerically non-PSD extension (e.g. duplicate point
                    // under a tiny noise term): fall back to a full refit.
                    self.full_fit(xs, task_of, y, n_tasks, opts);
                    RefitMode::Full
                }
            }
            RefitMode::Capped => {
                let cap = opts.max_active_set.expect("capped without a cap");
                if self.apply_capped(xs, task_of, y, cap).is_ok() {
                    self.cache = None;
                    self.commit_incremental(y);
                    RefitMode::Capped
                } else {
                    self.full_fit(xs, task_of, y, n_tasks, opts);
                    RefitMode::Full
                }
            }
        };
        if mode != planned {
            span.add("fallback", mode.as_str());
        }
        drop(span);
        match mode {
            RefitMode::Full => tracer.counter("gptune.gp.refit.full"),
            RefitMode::Incremental => tracer.counter("gptune.gp.refit.incremental"),
            RefitMode::Capped => tracer.counter("gptune.gp.refit.capped"),
        }
        .add(1);
        mode
    }

    /// Snapshot of the incremental state, when one can be restored
    /// bit-identically (incremental schedule, model present, cap never
    /// engaged since the last full fit).
    pub fn state(&self) -> Option<ModelState> {
        if !self.schedule.is_incremental() || self.model.is_none() || self.cache.is_none() {
            return None;
        }
        Some(ModelState {
            n_full: self.n_full,
            full_seed: self.full_seed,
            updates_since_full: self.updates_since_full,
            warm: self.warm_used.clone(),
            y: self.y_seen.clone(),
        })
    }

    /// Rebuilds the surrogate from a [`ModelState`] snapshot by replaying
    /// the last full fit (same prefix, seed, warm start) and the tail
    /// extensions — the factor, alpha, and every downstream suggestion
    /// come out bit-identical to the session that wrote the snapshot.
    pub fn restore(
        &mut self,
        xs: &[Vec<f64>],
        task_of: &[usize],
        n_tasks: usize,
        opts: &LcmFitOptions,
        state: &ModelState,
    ) -> Result<(), String> {
        let n = xs.len();
        if state.n_full == 0 || state.n_full > n || state.y.len() != n || task_of.len() != n {
            return Err("incremental restore: inconsistent model state".into());
        }
        if opts.max_active_set.is_some_and(|c| c > 0 && n > c) {
            return Err("incremental restore: capped models are not snapshotted".into());
        }
        if state.y[state.n_full..].iter().any(|v| !v.is_finite()) {
            return Err("incremental restore: non-finite appended output".into());
        }
        let mut replay_opts = opts.clone();
        replay_opts.seed = state.full_seed;
        let mut cache = DistanceCache::build(&xs[..state.n_full]);
        let mut model = LcmModel::fit_impl(
            &xs[..state.n_full],
            &task_of[..state.n_full],
            &state.y[..state.n_full],
            n_tasks,
            &replay_opts,
            state.warm.as_deref(),
            Some(&cache),
        );
        let nll_ref = model.nll() / model.n_samples() as f64;
        // Replay the tail one point at a time — the same operation order
        // the original session applied, whatever its batching was.
        for p in state.n_full..n {
            model
                .extend(&xs[p..p + 1], &task_of[p..p + 1], &state.y[p..p + 1])
                .map_err(|e| format!("incremental restore: replay failed: {e}"))?;
        }
        cache.append(xs);
        self.model = Some(model);
        self.cache = Some(cache);
        self.y_seen = state.y.clone();
        self.n_full = state.n_full;
        self.full_seed = state.full_seed;
        self.warm_used = state.warm.clone();
        self.updates_since_full = state.updates_since_full;
        self.nll_ref = nll_ref;
        Ok(())
    }

    /// Picks the refit mode for this update. Anything that invalidates
    /// the fixed-hyperparameter extension — shape changes, rewritten
    /// prefix outputs (censor drift), non-finite new outputs, the
    /// schedule or drift trigger — routes to a full refit.
    fn decide(
        &self,
        xs: &[Vec<f64>],
        task_of: &[usize],
        y: &[f64],
        n_tasks: usize,
        opts: &LcmFitOptions,
    ) -> RefitMode {
        if !self.schedule.is_incremental() {
            return RefitMode::Full;
        }
        let Some(model) = self.model.as_ref() else {
            return RefitMode::Full;
        };
        let n = xs.len();
        let prev = self.y_seen.len();
        if n < prev || task_of.len() != n || y.len() != n || n == 0 {
            return RefitMode::Full;
        }
        let hp = model.hyperparams();
        if hp.n_tasks != n_tasks
            || xs[0].len() != hp.dim
            || opts.kernel != model.kernel_kind()
            || opts.q.clamp(1, n_tasks) != hp.q
        {
            return RefitMode::Full;
        }
        if self.updates_since_full.saturating_add(1) >= self.schedule.full_every {
            return RefitMode::Full;
        }
        if y[prev..].iter().any(|v| !v.is_finite()) {
            return RefitMode::Full;
        }
        if y[..prev]
            .iter()
            .zip(&self.y_seen)
            .any(|(a, b)| !feq(*a, *b))
        {
            return RefitMode::Full;
        }
        // Per-point NLL drift since the last full fit. Each trip is a
        // model-health signal (the surrogate disagrees with its own
        // reference fit), so it gets its own counter for dashboards.
        let per_point = model.nll() / model.n_samples() as f64;
        if self.schedule.nll_drift > 0.0
            && (per_point - self.nll_ref).abs() > self.schedule.nll_drift
        {
            gptune_trace::global()
                .counter("gptune.gp.nll_drift_events")
                .add(1);
            return RefitMode::Full;
        }
        if let Some(cap) = opts.max_active_set {
            if cap > 0 && model.n_samples() + (n - prev) > cap {
                return RefitMode::Capped;
            }
        }
        // Uncapped (or under the cap): the model must hold exactly the
        // seen prefix for a plain extension to be valid.
        if model.n_samples() != prev || model.training_tasks() != &task_of[..prev] {
            return RefitMode::Full;
        }
        let xs_match = model
            .training_xs()
            .iter()
            .zip(xs)
            .all(|(a, b)| a.len() == b.len() && a.iter().zip(b).all(|(u, v)| feq(*u, *v)));
        if !xs_match {
            return RefitMode::Full;
        }
        RefitMode::Incremental
    }

    /// Full refit: warm-started when the schedule is incremental, reusing
    /// the grown distance cache when it verifiably covers the data prefix.
    fn full_fit(
        &mut self,
        xs: &[Vec<f64>],
        task_of: &[usize],
        y: &[f64],
        n_tasks: usize,
        opts: &LcmFitOptions,
    ) {
        let warm: Option<Vec<f64>> = if self.schedule.is_incremental() {
            self.model.as_ref().map(|m| m.hyperparams().pack())
        } else {
            None
        };
        let capped = opts.max_active_set.is_some_and(|c| c > 0 && xs.len() > c);
        let model = if capped {
            self.cache = None;
            LcmModel::fit_impl(xs, task_of, y, n_tasks, opts, warm.as_deref(), None)
        } else {
            let reusable = match (&self.model, &self.cache) {
                (Some(m), Some(c)) => {
                    c.n() == m.n_samples()
                        && c.n() <= xs.len()
                        && m.training_xs().iter().zip(xs).all(|(a, b)| {
                            a.len() == b.len() && a.iter().zip(b).all(|(u, v)| feq(*u, *v))
                        })
                }
                _ => false,
            };
            let cache = if reusable {
                let mut c = self.cache.take().expect("verified above");
                c.append(xs);
                c
            } else {
                DistanceCache::build(xs)
            };
            let model =
                LcmModel::fit_impl(xs, task_of, y, n_tasks, opts, warm.as_deref(), Some(&cache));
            debug_assert_eq!(cache.n(), xs.len());
            self.cache = Some(cache);
            model
        };
        self.nll_ref = model.nll() / model.n_samples() as f64;
        self.model = Some(model);
        self.y_seen = y.to_vec();
        self.n_full = xs.len();
        self.full_seed = opts.seed;
        self.warm_used = warm;
        self.updates_since_full = 0;
    }

    /// Capped extension: admit each new point, evicting the nearest
    /// non-incumbent active point first whenever the set is at the cap.
    fn apply_capped(
        &mut self,
        xs: &[Vec<f64>],
        task_of: &[usize],
        y: &[f64],
        cap: usize,
    ) -> Result<(), gptune_la::LaError> {
        let prev = self.y_seen.len();
        let model = self.model.as_mut().expect("capped without model");
        for p in prev..xs.len() {
            if model.n_samples() >= cap.max(2) {
                let victim = evict_candidate(model, &xs[p]);
                model.remove(victim);
            }
            model.extend(&xs[p..p + 1], &task_of[p..p + 1], &y[p..p + 1])?;
        }
        Ok(())
    }

    fn commit_incremental(&mut self, y: &[f64]) {
        self.y_seen = y.to_vec();
        self.updates_since_full += 1;
    }
}

/// The active point to evict for a new point at `x`: the nearest one in
/// input space, never a per-task incumbent (best standardized output).
/// Deterministic; ties break toward the lowest index.
fn evict_candidate(model: &LcmModel, x: &[f64]) -> usize {
    let tasks = model.training_tasks();
    let ys = model.y_standardized();
    let n_tasks = model.hyperparams().n_tasks;
    let mut incumbent = vec![usize::MAX; n_tasks];
    for (i, (&t, &yv)) in tasks.iter().zip(ys).enumerate() {
        if incumbent[t] == usize::MAX || yv < ys[incumbent[t]] {
            incumbent[t] = i;
        }
    }
    let mut protected = vec![false; model.n_samples()];
    for &i in &incumbent {
        if i != usize::MAX {
            protected[i] = true;
        }
    }
    let mut pick = 0;
    let mut best_d = f64::INFINITY;
    for (i, xi) in model.training_xs().iter().enumerate() {
        if protected[i] {
            continue;
        }
        let d = sqdist(xi, x);
        if d < best_d {
            best_d = d;
            pick = i;
        }
    }
    pick
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(per_task: usize) -> (Vec<Vec<f64>>, Vec<usize>, Vec<f64>) {
        let mut xs = Vec::new();
        let mut tasks = Vec::new();
        let mut ys = Vec::new();
        for t in 0..2usize {
            for j in 0..per_task {
                let x = (j as f64 + 0.5) / per_task as f64;
                xs.push(vec![x]);
                tasks.push(t);
                ys.push((2.0 * std::f64::consts::PI * x).sin() + t as f64 * 0.5);
            }
        }
        (xs, tasks, ys)
    }

    fn fast_opts() -> LcmFitOptions {
        LcmFitOptions {
            n_starts: 1,
            seed: 7,
            ..Default::default()
        }
    }

    #[test]
    fn default_schedule_always_refits_fully() {
        let (xs, tasks, ys) = toy(6);
        let mut inc = IncrementalLcm::new(RefitSchedule::default());
        let opts = fast_opts();
        assert_eq!(inc.update(&xs, &tasks, &ys, 2, &opts), RefitMode::Full);
        assert_eq!(inc.update(&xs, &tasks, &ys, 2, &opts), RefitMode::Full);
        // Bit-identical to a direct fit.
        let direct = LcmModel::fit(&xs, &tasks, &ys, 2, &opts);
        let a = inc.model().unwrap().predict(0, &[0.37]);
        let b = direct.predict(0, &[0.37]);
        assert!(feq(a.mean, b.mean) && feq(a.variance, b.variance));
        assert!(inc.state().is_none());
    }

    #[test]
    fn incremental_schedule_extends_between_full_fits() {
        let (xs, tasks, ys) = toy(8);
        let mut inc = IncrementalLcm::new(RefitSchedule {
            full_every: 4,
            nll_drift: 0.0,
        });
        let opts = fast_opts();
        let n0 = xs.len() - 4;
        assert_eq!(
            inc.update(&xs[..n0], &tasks[..n0], &ys[..n0], 2, &opts),
            RefitMode::Full
        );
        for k in 0..3 {
            let n = n0 + k + 1;
            assert_eq!(
                inc.update(&xs[..n], &tasks[..n], &ys[..n], 2, &opts),
                RefitMode::Incremental
            );
        }
        assert_eq!(inc.updates_since_full(), 3);
        // Fourth update hits the schedule: full again.
        assert_eq!(inc.update(&xs, &tasks, &ys, 2, &opts), RefitMode::Full);
        assert_eq!(inc.updates_since_full(), 0);
    }

    #[test]
    fn rewritten_prefix_forces_full_refit() {
        let (xs, tasks, mut ys) = toy(8);
        let mut inc = IncrementalLcm::new(RefitSchedule {
            full_every: 100,
            nll_drift: 0.0,
        });
        let opts = fast_opts();
        let n0 = xs.len() - 1;
        inc.update(&xs[..n0], &tasks[..n0], &ys[..n0], 2, &opts);
        // Censor drift: an old output changes value.
        ys[0] += 1.0;
        assert_eq!(inc.update(&xs, &tasks, &ys, 2, &opts), RefitMode::Full);
    }

    #[test]
    fn non_finite_new_output_forces_full_refit() {
        let (xs, tasks, mut ys) = toy(8);
        let mut inc = IncrementalLcm::new(RefitSchedule::every(100));
        let opts = fast_opts();
        let n0 = xs.len() - 1;
        inc.update(&xs[..n0], &tasks[..n0], &ys[..n0], 2, &opts);
        ys[xs.len() - 1] = f64::NAN;
        assert_eq!(inc.update(&xs, &tasks, &ys, 2, &opts), RefitMode::Full);
    }

    #[test]
    fn capped_updates_hold_the_active_set_at_the_cap() {
        let (xs, tasks, ys) = toy(12);
        let cap = 10;
        let opts = LcmFitOptions {
            max_active_set: Some(cap),
            ..fast_opts()
        };
        let mut inc = IncrementalLcm::new(RefitSchedule {
            full_every: 100,
            nll_drift: 0.0,
        });
        let n0 = 8;
        assert_eq!(
            inc.update(&xs[..n0], &tasks[..n0], &ys[..n0], 2, &opts),
            RefitMode::Full
        );
        for n in (n0 + 1)..=xs.len() {
            let mode = inc.update(&xs[..n], &tasks[..n], &ys[..n], 2, &opts);
            assert_ne!(mode, RefitMode::Full, "n={n}");
            assert!(inc.model().unwrap().n_samples() <= cap);
        }
        assert_eq!(inc.model().unwrap().n_samples(), cap);
        // Capped state is not snapshotted.
        assert!(inc.state().is_none());
    }

    #[test]
    fn state_roundtrips_bit_identically() {
        let (xs, tasks, ys) = toy(10);
        let mut inc = IncrementalLcm::new(RefitSchedule {
            full_every: 50,
            nll_drift: 0.0,
        });
        let opts = fast_opts();
        let n0 = xs.len() - 4;
        inc.update(&xs[..n0], &tasks[..n0], &ys[..n0], 2, &opts);
        for n in (n0 + 1)..=xs.len() {
            inc.update(&xs[..n], &tasks[..n], &ys[..n], 2, &opts);
        }
        let state = inc.state().expect("uncapped incremental state");
        assert_eq!(state.n_full, n0);
        assert_eq!(state.updates_since_full, 4);

        let mut back = IncrementalLcm::new(RefitSchedule::every(50));
        back.restore(&xs, &tasks, 2, &opts, &state).unwrap();
        let (a, b) = (inc.model().unwrap(), back.model().unwrap());
        assert!(feq(a.nll_from_factor(), b.nll_from_factor()));
        for x in [0.05, 0.31, 0.77] {
            for t in 0..2 {
                let pa = a.predict(t, &[x]);
                let pb = b.predict(t, &[x]);
                assert!(feq(pa.mean, pb.mean), "mean {} vs {}", pa.mean, pb.mean);
                assert!(feq(pa.variance, pb.variance));
            }
        }
        assert_eq!(back.state().unwrap(), state);
    }
}
