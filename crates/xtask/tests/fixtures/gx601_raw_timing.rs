//! GX601 fixture: raw `Instant::now()` in a traced crate.
use std::time::Instant;

pub fn ad_hoc_phase_timing() -> Instant {
    Instant::now() // GX601 when linted under crates/runtime/src/
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_inside_tests_is_exempt() {
        let _t0 = std::time::Instant::now();
    }
}
