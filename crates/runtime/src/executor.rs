//! Master/worker executor mirroring GPTune's MPI spawning.
//!
//! Fault tolerance: every job runs inside `catch_unwind`, a master-side
//! watchdog enforces the [`FaultPolicy`] deadline (retiring hung workers
//! and spawning replacements), and transient faults are retried with
//! exponential backoff — see [`WorkerGroup::try_map`] and the
//! [`fault`](crate::fault) module.

use crate::fault::{EvalOutcome, FaultPolicy, GroupClosed, JobStatus, TransientSignal};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use std::cell::Cell;
use std::collections::{BTreeMap, HashSet};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

type Job = Box<dyn FnOnce() + Send + 'static>;

thread_local! {
    /// Id of the worker running on this thread (`u64::MAX` off-worker).
    static WORKER_ID: Cell<u64> = const { Cell::new(u64::MAX) };
}

/// State shared between the master handle and the worker threads.
struct GroupShared {
    /// Workers retired by the watchdog after a deadline expiry. A hung
    /// worker cannot be killed, so it is abandoned: if it ever returns
    /// from the stuck job it sees its id here while *idle* and exits
    /// instead of taking more work.
    abandoned: Mutex<HashSet<u64>>,
    /// Monotonic worker-id source (replacements get fresh ids).
    next_worker_id: AtomicU64,
}

/// Messages flowing from the job wrapper back to the collecting master.
enum Msg<R> {
    /// Attempt `attempt` of job `job` started on worker `worker` — arms
    /// the watchdog deadline for this job.
    Started {
        job: usize,
        worker: u64,
        attempt: u32,
    },
    /// Job `job` is backing off before a retry — disarms its deadline
    /// so the sleep does not count as objective runtime.
    Retrying { job: usize },
    /// Job `job` finished with a classified outcome.
    Done { job: usize, outcome: EvalOutcome<R> },
}

/// A spawned group of workers connected to the master by a channel pair.
///
/// The master (the thread that called [`WorkerGroup::spawn`]) submits jobs
/// through its end of the job channel; workers execute them and the results
/// flow back through per-batch return channels — the thread analogue of the
/// `SpawnedComm` / `ParentComm` inter-communicators in the paper's Fig. 1.
///
/// ```
/// use gptune_runtime::WorkerGroup;
///
/// let group = WorkerGroup::spawn(4);
/// let squares = group.map((0..10).collect(), |i: i64| i * i);
/// assert_eq!(squares[3], 9);
/// group.shutdown();
/// ```
pub struct WorkerGroup {
    /// `None` once the group has been closed; submitting then is the
    /// typed [`GroupClosed`] error.
    job_tx: Mutex<Option<Sender<Job>>>,
    /// Kept so replacement workers can be attached to the same queue
    /// (and so the channel never disconnects while the group is open).
    job_rx: Receiver<Job>,
    handles: Mutex<Vec<(u64, JoinHandle<()>)>>,
    shared: Arc<GroupShared>,
    size: usize,
}

impl WorkerGroup {
    /// Spawns `n_workers` workers (at least 1).
    pub fn spawn(n_workers: usize) -> WorkerGroup {
        let n = n_workers.max(1);
        let (job_tx, job_rx) = unbounded::<Job>();
        let shared = Arc::new(GroupShared {
            abandoned: Mutex::new(HashSet::new()),
            next_worker_id: AtomicU64::new(0),
        });
        let group = WorkerGroup {
            job_tx: Mutex::new(Some(job_tx)),
            job_rx,
            handles: Mutex::new(Vec::with_capacity(n)),
            shared,
            size: n,
        };
        for _ in 0..n {
            group.spawn_worker();
        }
        group
    }

    /// Attaches one more worker to the job queue (initial spawn and
    /// watchdog replacement of a hung worker). Returns the new worker id.
    fn spawn_worker(&self) -> u64 {
        let id = self.shared.next_worker_id.fetch_add(1, Ordering::Relaxed);
        let rx = self.job_rx.clone();
        let shared = Arc::clone(&self.shared);
        // PANIC-SAFETY: OS thread spawn fails only on resource
        // exhaustion; the executor cannot make progress without its
        // workers, so failing fast is the only sound option.
        #[allow(clippy::expect_used)]
        let handle = std::thread::Builder::new()
            .name(format!("gptune-worker-{id}"))
            .spawn(move || {
                WORKER_ID.with(|w| w.set(id));
                loop {
                    // Retirement is only checked while idle: a worker
                    // that already took a job always runs it, so no job
                    // is ever silently dropped.
                    if shared.abandoned.lock().remove(&id) {
                        break;
                    }
                    // Workers block on the job channel until the master
                    // drops its sender (≈ MPI_Finalize on the parent).
                    match rx.recv() {
                        Ok(job) => job(),
                        Err(_) => break,
                    }
                }
            })
            .expect("failed to spawn worker thread");
        self.handles.lock().push((id, handle));
        id
    }

    /// Number of workers in the group.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Evaluates `f` over `items` on the worker group with full fault
    /// isolation, preserving input order. Each job runs under
    /// `catch_unwind`; the master enforces `policy.deadline` and retires
    /// hung workers (spawning replacements); transient faults — signalled
    /// by [`JobStatus::Transient`] or a [`TransientSignal`] panic — are
    /// retried with exponential backoff. `f` receives the item and the
    /// 0-based attempt number.
    ///
    /// Returns [`GroupClosed`] if the group has been shut down.
    pub fn try_map<T, R, F>(
        &self,
        items: Vec<T>,
        policy: &FaultPolicy,
        f: F,
    ) -> Result<Vec<EvalOutcome<R>>, GroupClosed>
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(&T, u32) -> JobStatus<R> + Send + Sync + 'static,
    {
        let n = items.len();
        if n == 0 {
            let guard = self.job_tx.lock();
            return if guard.is_some() {
                Ok(Vec::new())
            } else {
                Err(GroupClosed)
            };
        }
        let f = Arc::new(f);
        let (res_tx, res_rx) = unbounded::<Msg<R>>();
        // Clone the sender out of the lock rather than sending under it:
        // an unbounded crossbeam send never blocks, but holding a guard
        // across a channel op is the executor's one deadlock shape, so the
        // lock scope covers exactly the open/closed check.
        let job_tx = {
            let guard = self.job_tx.lock();
            guard.as_ref().cloned().ok_or(GroupClosed)?
        };
        // One global-tracer read per batch; each job gets a cheap clone so
        // worker-side spans keep recording even if the global is swapped
        // mid-batch.
        let tracer = gptune_trace::global();
        for (i, item) in items.into_iter().enumerate() {
            let f = Arc::clone(&f);
            let tx = res_tx.clone();
            let pol = policy.clone();
            let tr = tracer.clone();
            let job: Job = Box::new(move || run_job(i, &item, &*f, &pol, &tx, &tr));
            // The group holds `job_rx`, so send only fails if the
            // channel is poisoned beyond repair — surface it typed.
            job_tx.send(job).map_err(|_| GroupClosed)?;
        }
        drop(job_tx);
        drop(res_tx);
        Ok(self.collect(n, policy, res_rx))
    }

    /// Master-side collection loop: gathers `Done` messages, arms the
    /// watchdog from `Started`/`Retrying`, expires overdue jobs, and
    /// replaces their workers.
    fn collect<R>(
        &self,
        n: usize,
        policy: &FaultPolicy,
        res_rx: Receiver<Msg<R>>,
    ) -> Vec<EvalOutcome<R>> {
        let mut slots: Vec<Option<EvalOutcome<R>>> = (0..n).map(|_| None).collect();
        let mut done = 0usize;
        let tracer = gptune_trace::global();
        let timeouts = tracer.counter("gptune.runtime.timeouts");
        let replaced = tracer.counter("gptune.runtime.workers_replaced");
        // job index -> (armed-at, worker id, attempt) for running jobs.
        // BTreeMap, not HashMap: expiry scans iterate this map, and the
        // watchdog's replacement order must not depend on hash order.
        let mut running: BTreeMap<usize, (Instant, u64, u32)> = BTreeMap::new();
        while done < n {
            if let Some(deadline) = policy.deadline {
                let now = Instant::now();
                let expired: Vec<usize> = running
                    .iter()
                    .filter(|(_, (t0, _, _))| now.duration_since(*t0) >= deadline)
                    .map(|(j, _)| *j)
                    .collect();
                for j in expired {
                    if let Some((t0, worker, attempt)) = running.remove(&j) {
                        if let Some(slot @ None) = slots.get_mut(j) {
                            *slot = Some(EvalOutcome::TimedOut {
                                elapsed: now.duration_since(t0),
                                attempts: attempt + 1,
                            });
                            done += 1;
                        }
                        // The hung worker cannot be killed: retire it
                        // (it exits if it ever comes back) and restore
                        // capacity with a fresh worker.
                        self.shared.abandoned.lock().insert(worker);
                        let replacement = self.spawn_worker();
                        tracer
                            .instant("gptune.runtime.timeout")
                            .with("job", j)
                            .with("worker", worker)
                            .with("attempt", attempt)
                            .with("elapsed_ms", now.duration_since(t0).as_millis() as u64)
                            .emit();
                        timeouts.inc();
                        tracer
                            .instant("gptune.runtime.worker_replaced")
                            .with("retired", worker)
                            .with("replacement", replacement)
                            .emit();
                        replaced.inc();
                    }
                }
                if done >= n {
                    break;
                }
                let wait = running
                    .values()
                    .map(|(t0, _, _)| (*t0 + deadline).saturating_duration_since(now))
                    .min()
                    .unwrap_or(deadline)
                    .max(Duration::from_millis(1));
                match res_rx.recv_timeout(wait) {
                    Ok(msg) => self.handle_msg(msg, &mut slots, &mut done, &mut running),
                    Err(RecvTimeoutError::Timeout) => continue,
                    Err(RecvTimeoutError::Disconnected) => {
                        fill_lost(&mut slots, &mut done);
                    }
                }
            } else {
                match res_rx.recv() {
                    Ok(msg) => self.handle_msg(msg, &mut slots, &mut done, &mut running),
                    Err(_) => fill_lost(&mut slots, &mut done),
                }
            }
        }
        slots
            .into_iter()
            .map(|s| {
                s.unwrap_or(EvalOutcome::Crashed {
                    message: "job result lost".into(),
                    attempts: 1,
                    elapsed: Duration::ZERO,
                })
            })
            .collect()
    }

    fn handle_msg<R>(
        &self,
        msg: Msg<R>,
        slots: &mut [Option<EvalOutcome<R>>],
        done: &mut usize,
        running: &mut BTreeMap<usize, (Instant, u64, u32)>,
    ) {
        match msg {
            Msg::Started {
                job,
                worker,
                attempt,
            } => {
                // Ignore late starts of jobs the watchdog already expired
                // (and any out-of-range index from a confused worker).
                if slots.get(job).is_some_and(Option::is_none) {
                    running.insert(job, (Instant::now(), worker, attempt));
                }
            }
            Msg::Retrying { job } => {
                running.remove(&job);
            }
            Msg::Done { job, outcome } => {
                running.remove(&job);
                if let Some(slot @ None) = slots.get_mut(job) {
                    *slot = Some(outcome);
                    *done += 1;
                }
            }
        }
    }

    /// Evaluates `f` over `items` on the worker group, preserving input
    /// order in the returned vector. Blocks the master until the whole
    /// batch has been returned (the paper's "collect the returning values
    /// from the workers").
    ///
    /// Thin infallible wrapper over [`WorkerGroup::try_map`] with
    /// [`FaultPolicy::none`]: a panicking job re-raises the panic on the
    /// master (with the original message), but the worker group itself
    /// stays usable for subsequent batches.
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(T) -> R + Send + Sync + 'static,
    {
        // `try_map` passes items by reference so retries can re-run
        // them; `map`'s `f` consumes its item, so stage each in a
        // take-once cell (no retries under `FaultPolicy::none`).
        let cells: Vec<Mutex<Option<T>>> = items.into_iter().map(|x| Mutex::new(Some(x))).collect();
        // PANIC-SAFETY: `map` is the documented panic-propagating wrapper
        // (its contract above): a failed job or a closed group re-raises
        // on the master. Fault-tolerant callers use `try_map` instead.
        #[allow(clippy::expect_used, clippy::panic)]
        {
            let outcomes = self
                .try_map(cells, &FaultPolicy::none(), move |cell, _attempt| {
                    let item = cell.lock().take().expect("map job dispatched twice");
                    JobStatus::Ok(f(item))
                })
                .expect("worker group has shut down");
            outcomes
                .into_iter()
                .map(|o| match o {
                    EvalOutcome::Ok { value, .. } => value,
                    failed => panic!("worker job failed: {}", failed.describe()),
                })
                .collect()
        }
    }

    /// Closes the job queue: subsequent [`WorkerGroup::try_map`] calls
    /// return [`GroupClosed`] and idle workers exit once the queue
    /// drains. Idempotent.
    pub fn close(&self) {
        self.job_tx.lock().take();
    }

    /// Shuts the group down, joining all live workers. Workers retired
    /// by the watchdog (hung in an objective) are detached rather than
    /// joined, so shutdown never blocks on a hung evaluation.
    pub fn shutdown(self) {
        self.close();
        let abandoned = self.shared.abandoned.lock().clone();
        let handles = std::mem::take(&mut *self.handles.lock());
        for (id, h) in handles {
            if abandoned.contains(&id) {
                continue;
            }
            let _ = h.join();
        }
    }
}

/// Fills every unfinished slot after a result-channel disconnect — jobs
/// were dropped unrun (the queue was torn down mid-batch), which must
/// not deadlock or panic the master.
fn fill_lost<R>(slots: &mut [Option<EvalOutcome<R>>], done: &mut usize) {
    for s in slots.iter_mut() {
        if s.is_none() {
            *s = Some(EvalOutcome::Crashed {
                message: "worker channel closed before the job returned".into(),
                attempts: 1,
                elapsed: Duration::ZERO,
            });
            *done += 1;
        }
    }
}

/// Worker-side wrapper around one job: panic isolation, transient-retry
/// loop with backoff, and watchdog bookkeeping messages.
fn run_job<T, R>(
    job: usize,
    item: &T,
    f: &(dyn Fn(&T, u32) -> JobStatus<R> + Send + Sync),
    policy: &FaultPolicy,
    tx: &Sender<Msg<R>>,
    tracer: &gptune_trace::Tracer,
) {
    let worker = WORKER_ID.with(|w| w.get());
    let jobs_metric = tracer.counter("gptune.runtime.jobs");
    let retries_metric = tracer.counter("gptune.runtime.retries");
    let crashes_metric = tracer.counter("gptune.runtime.crashes");
    let duration_metric = tracer.histogram("gptune.runtime.job_duration_us");
    let t0 = Instant::now();
    let mut attempt: u32 = 0;
    loop {
        // The master may have given up (deadline expiry); sends to a
        // closed result channel are ignored, never panics.
        let _ = tx.send(Msg::Started {
            job,
            worker,
            attempt,
        });
        jobs_metric.inc();
        // One span per attempt, on this worker's track: the timeline
        // shows each execution separately, with backoff gaps between.
        let span = tracer
            .span("gptune.runtime.job")
            .with("job", job)
            .with("worker", worker)
            .with("attempt", attempt);
        let a0 = Instant::now();
        let caught = panic::catch_unwind(AssertUnwindSafe(|| f(item, attempt)));
        drop(span);
        // Per-attempt latency histogram: spans give the timeline, this
        // feeds the windowed p50/p99 the live dashboard reads.
        duration_metric.record(a0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
        let attempts = attempt + 1;
        let elapsed = t0.elapsed();
        let transient: Option<String> = match &caught {
            Ok(JobStatus::Transient(msg)) => Some(msg.clone()),
            Err(payload) => payload
                .downcast_ref::<TransientSignal>()
                .map(|sig| sig.0.clone()),
            Ok(_) => None,
        };
        let outcome = if let Some(message) = transient {
            if attempt < policy.max_retries {
                let _ = tx.send(Msg::Retrying { job });
                tracer
                    .instant("gptune.runtime.retry")
                    .with("job", job)
                    .with("worker", worker)
                    .with("attempt", attempt)
                    .emit();
                retries_metric.inc();
                std::thread::sleep(policy.backoff_for(attempt));
                attempt += 1;
                continue;
            }
            EvalOutcome::Transient {
                message,
                attempts,
                elapsed,
            }
        } else {
            match caught {
                Ok(JobStatus::Ok(value)) => EvalOutcome::Ok { value, attempts },
                Ok(JobStatus::Invalid(value)) => EvalOutcome::Invalid { value, attempts },
                // Defensive: the transient pre-check above intercepts
                // this variant, but mapping it to Transient keeps run_job
                // total without an unreachable! in a panic-free tier.
                Ok(JobStatus::Transient(message)) => EvalOutcome::Transient {
                    message,
                    attempts,
                    elapsed,
                },
                Err(payload) => {
                    tracer
                        .instant("gptune.runtime.crash")
                        .with("job", job)
                        .with("worker", worker)
                        .with("attempt", attempt)
                        .emit();
                    crashes_metric.inc();
                    EvalOutcome::Crashed {
                        message: panic_message(payload.as_ref()),
                        attempts,
                        elapsed,
                    }
                }
            }
        };
        let _ = tx.send(Msg::Done { job, outcome });
        return;
    }
}

/// Renders a panic payload as a message string.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `f` inside a dedicated rayon pool of `n_threads` workers.
///
/// Everything `f` does with rayon (parallel Cholesky trailing updates,
/// `par_iter` over L-BFGS restarts) is confined to that pool, so worker
/// counts are controlled exactly as GPTune controls its spawned MPI group
/// sizes. Panics from `f` propagate.
pub fn with_pool<R: Send>(n_threads: usize, f: impl FnOnce() -> R + Send) -> R {
    // PANIC-SAFETY: pool construction fails only on thread-spawn resource
    // exhaustion; there is no degraded mode that honors the caller's
    // requested parallelism, so fail fast (documented: panics propagate).
    #[allow(clippy::expect_used)]
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(n_threads.max(1))
        .build()
        .expect("failed to build rayon pool");
    pool.install(f)
}

/// A monotonically increasing counter shared across workers — convenience
/// for tests and for capping concurrent evaluations.
#[derive(Debug, Default)]
pub struct SharedCounter(AtomicUsize);

impl SharedCounter {
    /// New counter at zero.
    pub fn new() -> Self {
        SharedCounter(AtomicUsize::new(0))
    }

    /// Increments and returns the previous value.
    pub fn bump(&self) -> usize {
        self.0.fetch_add(1, Ordering::Relaxed)
    }

    /// Current value.
    pub fn get(&self) -> usize {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FailureKind;
    use std::collections::HashSet;
    use std::sync::Mutex as StdMutex;

    #[test]
    fn map_preserves_order() {
        let g = WorkerGroup::spawn(4);
        let out = g.map((0..100).collect(), |i: i32| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        g.shutdown();
    }

    #[test]
    fn map_actually_uses_multiple_workers() {
        let g = WorkerGroup::spawn(4);
        let names = Arc::new(StdMutex::new(HashSet::new()));
        let names2 = Arc::clone(&names);
        let _ = g.map((0..64).collect::<Vec<i32>>(), move |_| {
            names2
                .lock()
                .unwrap()
                .insert(std::thread::current().name().unwrap_or("?").to_string());
            std::thread::sleep(std::time::Duration::from_millis(1));
        });
        let used = names.lock().unwrap().len();
        assert!(used >= 2, "only {used} workers used");
        g.shutdown();
    }

    #[test]
    fn empty_batch() {
        let g = WorkerGroup::spawn(2);
        let out: Vec<i32> = g.map(Vec::<i32>::new(), |x| x);
        assert!(out.is_empty());
        g.shutdown();
    }

    #[test]
    fn multiple_batches_sequentially() {
        let g = WorkerGroup::spawn(3);
        for batch in 0..5 {
            let out = g.map(vec![batch; 10], |x: i32| x + 1);
            assert!(out.iter().all(|&v| v == batch + 1));
        }
        g.shutdown();
    }

    #[test]
    fn try_map_classifies_panics_without_killing_the_group() {
        let g = WorkerGroup::spawn(2);
        let outcomes = g
            .try_map(
                (0..6i32).collect(),
                &FaultPolicy::none(),
                |&i: &i32, _attempt| {
                    if i == 3 {
                        panic!("injected crash on {i}");
                    }
                    JobStatus::Ok(i * 10)
                },
            )
            .unwrap();
        assert_eq!(outcomes.len(), 6);
        for (i, o) in outcomes.iter().enumerate() {
            if i == 3 {
                assert_eq!(o.failure_kind(), Some(FailureKind::Crashed));
                match o {
                    EvalOutcome::Crashed { message, .. } => {
                        assert!(message.contains("injected crash"), "{message}");
                    }
                    other => panic!("expected crash, got {}", other.describe()),
                }
            } else {
                assert_eq!(o.value(), Some(&((i as i32) * 10)));
            }
        }
        // Regression: the group stays fully usable after a crash.
        let out = g.map((0..10).collect(), |i: i32| i + 1);
        assert_eq!(out, (1..11).collect::<Vec<_>>());
        g.shutdown();
    }

    #[test]
    fn map_panics_on_master_but_group_survives() {
        // Regression for the old `expect("worker died before returning")`
        // master panic: the panic now carries the job's message and the
        // group remains usable for the next batch.
        let g = WorkerGroup::spawn(2);
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
            g.map(vec![1i32], |_| -> i32 { panic!("objective exploded") })
        }))
        .expect_err("map must propagate the job panic");
        let msg = panic_message(err.as_ref());
        assert!(msg.contains("objective exploded"), "{msg}");
        let out = g.map(vec![5i32, 6], |x| x * 2);
        assert_eq!(out, vec![10, 12]);
        g.shutdown();
    }

    #[test]
    fn try_map_after_close_is_typed_error() {
        let g = WorkerGroup::spawn(2);
        g.close();
        let res = g.try_map(vec![1i32], &FaultPolicy::none(), |&i, _| JobStatus::Ok(i));
        assert_eq!(res.unwrap_err(), GroupClosed);
        // Empty batches also report the closed group.
        let res = g.try_map(Vec::<i32>::new(), &FaultPolicy::none(), |&i, _| {
            JobStatus::Ok(i)
        });
        assert_eq!(res.unwrap_err(), GroupClosed);
        g.shutdown();
    }

    #[test]
    fn watchdog_times_out_hung_job_and_replaces_worker() {
        let g = WorkerGroup::spawn(2);
        let policy = FaultPolicy {
            deadline: Some(Duration::from_millis(100)),
            ..FaultPolicy::default()
        };
        let outcomes = g
            .try_map((0..4i32).collect(), &policy, |&i: &i32, _| {
                if i == 1 {
                    // Hang well past the deadline; the sleeping thread is
                    // retired, not joined, so the test does not wait it out.
                    std::thread::sleep(Duration::from_secs(2));
                }
                JobStatus::Ok(i)
            })
            .unwrap();
        assert_eq!(outcomes[1].failure_kind(), Some(FailureKind::TimedOut));
        for i in [0usize, 2, 3] {
            assert_eq!(
                outcomes[i].value(),
                Some(&(i as i32)),
                "job {i} must finish"
            );
        }
        // A replacement worker keeps the group at full strength.
        let out = g.map((0..8).collect(), |i: i32| i);
        assert_eq!(out.len(), 8);
        g.shutdown();
    }

    #[test]
    fn all_workers_hung_still_completes_batch() {
        // Both workers hang on their first job; replacements must pick up
        // the remaining queued jobs — no deadlock, no starvation.
        let g = WorkerGroup::spawn(2);
        let policy = FaultPolicy {
            deadline: Some(Duration::from_millis(80)),
            ..FaultPolicy::default()
        };
        let outcomes = g
            .try_map((0..6i32).collect(), &policy, |&i: &i32, _| {
                if i < 2 {
                    std::thread::sleep(Duration::from_secs(2));
                }
                JobStatus::Ok(i)
            })
            .unwrap();
        let timed_out = outcomes
            .iter()
            .filter(|o| o.failure_kind() == Some(FailureKind::TimedOut))
            .count();
        assert_eq!(timed_out, 2);
        for (i, o) in outcomes.iter().enumerate().skip(2) {
            assert_eq!(o.value(), Some(&(i as i32)));
        }
        g.shutdown();
    }

    #[test]
    fn transient_faults_retry_until_success() {
        let g = WorkerGroup::spawn(1);
        let policy = FaultPolicy {
            max_retries: 3,
            backoff_base: Duration::from_millis(1),
            ..FaultPolicy::default()
        };
        let outcomes = g
            .try_map(vec![0i32], &policy, |_, attempt| {
                if attempt < 2 {
                    JobStatus::Transient(format!("flaky attempt {attempt}"))
                } else {
                    JobStatus::Ok(attempt)
                }
            })
            .unwrap();
        match &outcomes[0] {
            EvalOutcome::Ok { value, attempts } => {
                assert_eq!(*value, 2);
                assert_eq!(*attempts, 3);
            }
            other => panic!("expected retried success, got {}", other.describe()),
        }
        g.shutdown();
    }

    #[test]
    fn transient_signal_panic_retries_then_exhausts() {
        let g = WorkerGroup::spawn(1);
        let policy = FaultPolicy {
            max_retries: 2,
            backoff_base: Duration::from_millis(1),
            ..FaultPolicy::default()
        };
        let outcomes = g
            .try_map(vec![0i32], &policy, |_, _attempt| -> JobStatus<i32> {
                panic::panic_any(TransientSignal("node glitch".into()));
            })
            .unwrap();
        match &outcomes[0] {
            EvalOutcome::Transient {
                message, attempts, ..
            } => {
                assert_eq!(message, "node glitch");
                assert_eq!(*attempts, 3, "1 run + 2 retries");
            }
            other => panic!("expected exhausted transient, got {}", other.describe()),
        }
        g.shutdown();
    }

    #[test]
    fn invalid_is_not_retried_and_keeps_value() {
        let g = WorkerGroup::spawn(1);
        let runs = Arc::new(SharedCounter::new());
        let runs2 = Arc::clone(&runs);
        let policy = FaultPolicy {
            max_retries: 5,
            backoff_base: Duration::from_millis(1),
            ..FaultPolicy::default()
        };
        let outcomes = g
            .try_map(vec![0i32], &policy, move |_, _| {
                runs2.bump();
                JobStatus::Invalid(f64::INFINITY)
            })
            .unwrap();
        match &outcomes[0] {
            EvalOutcome::Invalid { value, attempts } => {
                assert!(value.is_infinite());
                assert_eq!(*attempts, 1);
            }
            other => panic!("expected invalid, got {}", other.describe()),
        }
        assert_eq!(runs.get(), 1, "invalid measurements are never retried");
        g.shutdown();
    }

    #[test]
    fn shutdown_after_hang_does_not_block() {
        let g = WorkerGroup::spawn(1);
        let policy = FaultPolicy {
            deadline: Some(Duration::from_millis(50)),
            ..FaultPolicy::default()
        };
        let t0 = Instant::now();
        let _ = g
            .try_map(vec![0i32], &policy, |_, _| {
                std::thread::sleep(Duration::from_secs(5));
                JobStatus::Ok(0)
            })
            .unwrap();
        g.shutdown();
        assert!(
            t0.elapsed() < Duration::from_secs(3),
            "shutdown must not join the hung worker"
        );
    }

    #[test]
    fn with_pool_bounds_parallelism() {
        let threads = with_pool(3, rayon::current_num_threads);
        assert_eq!(threads, 3);
        let one = with_pool(1, rayon::current_num_threads);
        assert_eq!(one, 1);
    }

    #[test]
    fn with_pool_runs_parallel_work() {
        let sum: i64 = with_pool(4, || {
            use rayon::prelude::*;
            (0..1000i64).into_par_iter().sum()
        });
        assert_eq!(sum, 499_500);
    }

    #[test]
    fn shared_counter() {
        let c = Arc::new(SharedCounter::new());
        let g = WorkerGroup::spawn(4);
        let c2 = Arc::clone(&c);
        let _ = g.map((0..50).collect::<Vec<i32>>(), move |_| {
            c2.bump();
        });
        assert_eq!(c.get(), 50);
        g.shutdown();
    }
}
