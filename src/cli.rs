//! Command-line interface: tune any built-in application from the shell.
//!
//! The reference GPTune is driven by Python scripts per application; this
//! CLI plays that role for the simulated suite:
//!
//! ```text
//! gptune-cli apps
//! gptune-cli tune --app pdgeqrf --nodes 4 --budget 10 \
//!                 --tasks 8000x8000,12000x6000 --seed 1 --model
//! gptune-cli tune --app superlu_dist --tasks Si2,SiH4 --multi-objective
//! gptune-cli tune --app hypre --tasks 50x50x50 --history hypre.json
//! ```
//!
//! Argument parsing is hand-rolled (no extra dependency) and lives here so
//! it is unit-testable; the `gptune-cli` binary is a thin wrapper.

use crate::apps::{
    AnalyticalApp, HpcApp, HypreApp, M3dc1App, MachineModel, NimrodApp, PdgeqrfApp, PdsyevxApp,
    SuperluApp, PARSEC_MATRICES,
};
use crate::core::{mla, mla_mo, runlog, History, MlaOptions};
use crate::space::Value;
use crate::{problem_from_app, problem_from_app_objective};
use std::sync::Arc;

/// Names of the built-in applications.
pub const APP_NAMES: [&str; 7] = [
    "analytical",
    "pdgeqrf",
    "pdsyevx",
    "superlu_dist",
    "hypre",
    "m3d_c1",
    "nimrod",
];

/// Parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneArgs {
    /// Application name (one of [`APP_NAMES`]).
    pub app: String,
    /// Cori-like node count for the machine model.
    pub nodes: usize,
    /// Per-task evaluation budget `ε_tot`.
    pub budget: usize,
    /// Raw task strings (app-specific syntax, comma separated).
    pub tasks: Vec<String>,
    /// RNG seed.
    pub seed: u64,
    /// Enable performance-model features (Sec. 3.3) when available.
    pub model: bool,
    /// Run the multi-objective tuner (Algorithm 2) for γ > 1 apps.
    pub multi_objective: bool,
    /// Optional path to save the tuning history as JSON.
    pub history: Option<String>,
}

impl Default for TuneArgs {
    fn default() -> Self {
        TuneArgs {
            app: String::new(),
            nodes: 1,
            budget: 10,
            tasks: Vec::new(),
            seed: 0,
            model: false,
            multi_objective: false,
            history: None,
        }
    }
}

/// Parses `tune` subcommand arguments. Returns an error message on any
/// malformed input (never panics on user input).
pub fn parse_tune_args(args: &[String]) -> Result<TuneArgs, String> {
    let mut out = TuneArgs::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--app" => out.app = value("--app")?,
            "--nodes" => {
                out.nodes = value("--nodes")?
                    .parse()
                    .map_err(|_| "--nodes expects a positive integer".to_string())?
            }
            "--budget" => {
                out.budget = value("--budget")?
                    .parse()
                    .map_err(|_| "--budget expects a positive integer".to_string())?
            }
            "--seed" => {
                out.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed expects an integer".to_string())?
            }
            "--tasks" => {
                out.tasks = value("--tasks")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect()
            }
            "--model" => out.model = true,
            "--multi-objective" => out.multi_objective = true,
            "--history" => out.history = Some(value("--history")?),
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    if out.app.is_empty() {
        return Err("--app is required".into());
    }
    if !APP_NAMES.contains(&out.app.as_str()) {
        return Err(format!(
            "unknown app '{}'; available: {}",
            out.app,
            APP_NAMES.join(", ")
        ));
    }
    if out.tasks.is_empty() {
        return Err("--tasks is required (comma separated, app-specific syntax)".into());
    }
    if out.budget < 2 {
        return Err("--budget must be at least 2".into());
    }
    Ok(out)
}

/// Builds the application named by `args.app` on the requested machine.
pub fn build_app(name: &str, nodes: usize) -> Arc<dyn HpcApp> {
    let machine = MachineModel::cori(nodes);
    match name {
        "analytical" => Arc::new(AnalyticalApp::new(0.0)),
        "pdgeqrf" => Arc::new(PdgeqrfApp::new(machine, 40_000)),
        "pdsyevx" => Arc::new(PdsyevxApp::new(machine, 10_000)),
        "superlu_dist" => Arc::new(SuperluApp::new(machine)),
        "hypre" => Arc::new(HypreApp::new(machine)),
        "m3d_c1" => Arc::new(M3dc1App::new(machine)),
        "nimrod" => Arc::new(NimrodApp::new(machine)),
        other => unreachable!("validated app name: {other}"),
    }
}

/// Parses one task string for the given app.
///
/// Syntax: `analytical` — a real `t`; `pdgeqrf` — `MxN`; `pdsyevx` — `M`;
/// `superlu_dist` — a PARSEC matrix name; `hypre` — `N1xN2xN3`;
/// `m3d_c1`/`nimrod` — a step count.
pub fn parse_task(app: &str, s: &str) -> Result<Vec<Value>, String> {
    let int = |v: &str| -> Result<i64, String> {
        v.parse()
            .map_err(|_| format!("'{v}' is not an integer (task '{s}')"))
    };
    match app {
        "analytical" => {
            let t: f64 = s
                .parse()
                .map_err(|_| format!("'{s}' is not a real task parameter"))?;
            Ok(vec![Value::Real(t)])
        }
        "pdgeqrf" => {
            let (m, n) = s
                .split_once(['x', 'X'])
                .ok_or_else(|| format!("pdgeqrf task must be MxN, got '{s}'"))?;
            Ok(vec![Value::Int(int(m)?), Value::Int(int(n)?)])
        }
        "pdsyevx" | "m3d_c1" | "nimrod" => Ok(vec![Value::Int(int(s)?)]),
        "superlu_dist" => {
            let idx = PARSEC_MATRICES
                .iter()
                .position(|m| m.name.eq_ignore_ascii_case(s))
                .ok_or_else(|| {
                    format!(
                        "unknown matrix '{s}'; available: {}",
                        PARSEC_MATRICES
                            .iter()
                            .map(|m| m.name)
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                })?;
            Ok(vec![Value::Cat(idx)])
        }
        "hypre" => {
            let parts: Vec<&str> = s.split(['x', 'X']).collect();
            if parts.len() != 3 {
                return Err(format!("hypre task must be N1xN2xN3, got '{s}'"));
            }
            Ok(vec![
                Value::Int(int(parts[0])?),
                Value::Int(int(parts[1])?),
                Value::Int(int(parts[2])?),
            ])
        }
        other => Err(format!("unknown app '{other}'")),
    }
}

/// Runs a parsed `tune` invocation, returning the rendered runlog.
pub fn run_tune(args: &TuneArgs) -> Result<String, String> {
    let app = build_app(&args.app, args.nodes);
    let tasks: Result<Vec<Vec<Value>>, String> = args
        .tasks
        .iter()
        .map(|s| parse_task(&args.app, s))
        .collect();
    let tasks = tasks?;
    for t in &tasks {
        if !app.task_space().is_valid(t) {
            return Err(format!("task {t:?} is outside the app's task space"));
        }
    }

    let mut opts = MlaOptions::default()
        .with_budget(args.budget)
        .with_seed(args.seed);
    opts.use_model_features = args.model;
    opts.fit_model_coefficients = args.model;
    if args.app == "analytical" {
        opts.log_objective = false;
    }

    let (log, history) = if args.multi_objective && app.n_objectives() > 1 {
        let problem = problem_from_app(Arc::clone(&app), tasks);
        let result = mla_mo::tune_multiobjective(&problem, &opts);
        let mut h = History::new(&problem.name);
        for tr in &result.per_task {
            for (cfg, outs) in &tr.samples {
                h.push(tr.task.clone(), cfg.clone(), outs.clone());
            }
        }
        (runlog::format_mla_mo(&problem, &result), h)
    } else {
        let problem = if app.n_objectives() > 1 {
            problem_from_app_objective(Arc::clone(&app), tasks, 0)
        } else {
            problem_from_app(Arc::clone(&app), tasks)
        };
        let result = mla::tune(&problem, &opts);
        let h = History::from_mla(&problem.name, &result);
        (runlog::format_mla(&problem, &result), h)
    };

    if let Some(path) = &args.history {
        history
            .save(std::path::Path::new(path))
            .map_err(|e| format!("failed to save history to {path}: {e}"))?;
    }
    Ok(log)
}

/// Usage text for the binary.
pub fn usage() -> String {
    format!(
        "GPTune-rs CLI — multitask autotuning of the simulated HPC suite\n\
         \n\
         USAGE:\n\
         \u{20}   gptune-cli apps\n\
         \u{20}   gptune-cli tune --app <name> --tasks <t1,t2,…> [options]\n\
         \n\
         OPTIONS:\n\
         \u{20}   --app <name>        one of: {}\n\
         \u{20}   --tasks <list>      app-specific: pdgeqrf MxN | pdsyevx M | hypre N1xN2xN3 |\n\
         \u{20}                       superlu_dist <matrix> | m3d_c1/nimrod <steps> | analytical <t>\n\
         \u{20}   --nodes <k>         Cori-like nodes for the machine model (default 1)\n\
         \u{20}   --budget <ε>        evaluations per task (default 10)\n\
         \u{20}   --seed <s>          RNG seed (default 0)\n\
         \u{20}   --model             use the app's coarse performance model (Sec. 3.3)\n\
         \u{20}   --multi-objective   Pareto tuning for multi-output apps (Algorithm 2)\n\
         \u{20}   --history <file>    archive the samples as JSON (reusable by TLA)\n",
        APP_NAMES.join(", ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_full_invocation() {
        let a = parse_tune_args(&strs(&[
            "--app",
            "pdgeqrf",
            "--nodes",
            "4",
            "--budget",
            "12",
            "--tasks",
            "8000x8000, 12000x6000",
            "--seed",
            "7",
            "--model",
        ]))
        .unwrap();
        assert_eq!(a.app, "pdgeqrf");
        assert_eq!(a.nodes, 4);
        assert_eq!(a.budget, 12);
        assert_eq!(a.tasks, vec!["8000x8000", "12000x6000"]);
        assert_eq!(a.seed, 7);
        assert!(a.model);
        assert!(!a.multi_objective);
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(parse_tune_args(&strs(&["--tasks", "1"])).is_err()); // no app
        assert!(parse_tune_args(&strs(&["--app", "nope", "--tasks", "1"])).is_err());
        assert!(parse_tune_args(&strs(&["--app", "pdsyevx"])).is_err()); // no tasks
        assert!(parse_tune_args(&strs(&[
            "--app", "pdsyevx", "--tasks", "1", "--budget", "x"
        ]))
        .is_err());
        assert!(parse_tune_args(&strs(&["--app", "pdsyevx", "--tasks", "1", "--wat"])).is_err());
        assert!(parse_tune_args(&strs(&["--app", "pdsyevx", "--tasks", "1", "--budget"])).is_err());
    }

    #[test]
    fn parse_tasks_per_app() {
        assert_eq!(
            parse_task("pdgeqrf", "100x200").unwrap(),
            vec![Value::Int(100), Value::Int(200)]
        );
        assert_eq!(
            parse_task("pdsyevx", "4096").unwrap(),
            vec![Value::Int(4096)]
        );
        assert_eq!(
            parse_task("superlu_dist", "si2").unwrap(),
            vec![Value::Cat(0)]
        );
        assert_eq!(
            parse_task("hypre", "10x20x30").unwrap(),
            vec![Value::Int(10), Value::Int(20), Value::Int(30)]
        );
        assert_eq!(
            parse_task("analytical", "2.5").unwrap(),
            vec![Value::Real(2.5)]
        );
        assert!(parse_task("pdgeqrf", "100").is_err());
        assert!(parse_task("superlu_dist", "NoSuchMatrix").is_err());
        assert!(parse_task("hypre", "10x20").is_err());
    }

    #[test]
    fn run_tune_end_to_end_small() {
        let args = TuneArgs {
            app: "pdsyevx".into(),
            nodes: 1,
            budget: 6,
            tasks: vec!["3000".into(), "5000".into()],
            seed: 3,
            ..Default::default()
        };
        let log = run_tune(&args).unwrap();
        assert!(log.contains("Popt:"), "{log}");
        assert!(log.contains("tid: 1"), "{log}");
        assert!(log.contains("stats:"), "{log}");
    }

    #[test]
    fn run_tune_multiobjective_and_history() {
        let dir = std::env::temp_dir().join("gptune_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("h.json");
        let args = TuneArgs {
            app: "superlu_dist".into(),
            nodes: 2,
            budget: 8,
            tasks: vec!["Si2".into()],
            seed: 1,
            multi_objective: true,
            history: Some(path.to_string_lossy().into_owned()),
            ..Default::default()
        };
        let log = run_tune(&args).unwrap();
        assert!(log.contains("Pareto"), "{log}");
        let h = History::load(&path).unwrap();
        assert!(h.len() >= 8);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn run_tune_rejects_out_of_range_task() {
        let args = TuneArgs {
            app: "pdsyevx".into(),
            tasks: vec!["999999999".into()],
            budget: 4,
            ..Default::default()
        };
        assert!(run_tune(&args).is_err());
    }

    #[test]
    fn usage_mentions_all_apps() {
        let u = usage();
        for name in APP_NAMES {
            assert!(u.contains(name), "usage missing {name}");
        }
    }
}
