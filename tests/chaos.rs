//! Chaos integration tests: full MLA runs against applications that
//! crash, hang, and fail transiently — injected deterministically by
//! [`FaultyApp`] — must complete every iteration, keep a finite best per
//! task, survive a kill-and-resume, and skip configurations the failure
//! journal already knows to be fatal.

use gptune::apps::{AnalyticalApp, FaultSpec, FaultyApp, MachineModel, PdgeqrfApp};
use gptune::core::{mla, problem_signature, MlaOptions, TuningProblem};
use gptune::db::Db;
use gptune::problem_from_app;
use gptune::space::{Config, Param, Space, Value};
use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn tmp_root(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("gptune_it_chaos_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn fast_opts(budget: usize, seed: u64) -> MlaOptions {
    let mut o = MlaOptions::default().with_budget(budget).with_seed(seed);
    o.lcm.n_starts = 2;
    o.lcm.lbfgs.max_iters = 15;
    o.pso.particles = 15;
    o.pso.iters = 10;
    o.log_objective = false;
    o
}

/// The headline chaos property: with ~15% of the points crashing or
/// hanging (plus transient faults on top), MLA completes its full budget
/// on every task, never panics or deadlocks the master, and still finds a
/// finite best configuration.
#[test]
fn chaos_mla_on_analytical_completes_with_finite_best() {
    let spec = FaultSpec {
        crash_rate: 0.10,
        hang_rate: 0.05,
        transient_rate: 0.15,
        hang: Duration::from_millis(600),
        chaos_seed: 11,
    };
    let app = Arc::new(FaultyApp::new(AnalyticalApp::new(0.0), spec));
    let tasks = vec![vec![Value::Real(1.0)], vec![Value::Real(4.0)]];
    let p = problem_from_app(app, tasks);

    let budget = 16;
    let o = fast_opts(budget, 3).with_eval_deadline(Duration::from_millis(150));
    let r = mla::tune(&p, &o);

    assert!(r.completed, "chaos run must finish its budget");
    for tr in &r.per_task {
        assert_eq!(tr.samples.len(), budget, "every iteration must complete");
        assert!(tr.best_value.is_finite(), "best must come from a survivor");
    }
    // With 32 distinct points at 15% persistent fault rate the chance of a
    // fault-free run is < 1e-2; a fault-free pass here means injection is
    // broken, not that we got lucky.
    assert!(
        r.stats.n_failed() >= 1,
        "faults must actually fire: {:?}",
        r.stats
    );
}

/// Same property on a second application (ScaLAPACK QR simulator) with a
/// mixed int space and feasibility constraints.
#[test]
fn chaos_mla_on_pdgeqrf_completes_with_finite_best() {
    let spec = FaultSpec {
        crash_rate: 0.20,
        hang_rate: 0.0,
        transient_rate: 0.10,
        hang: Duration::from_millis(600),
        chaos_seed: 5,
    };
    let app = Arc::new(FaultyApp::new(
        PdgeqrfApp::new(MachineModel::cori_noiseless(1), 8000),
        spec,
    ));
    let tasks = vec![
        vec![Value::Int(1000), Value::Int(1000)],
        vec![Value::Int(2000), Value::Int(2000)],
    ];
    let p = problem_from_app(app, tasks);

    let budget = 8;
    let o = fast_opts(budget, 9).with_eval_deadline(Duration::from_secs(5));
    let r = mla::tune(&p, &o);

    assert!(r.completed);
    for tr in &r.per_task {
        assert_eq!(tr.samples.len(), budget);
        assert!(tr.best_value.is_finite());
    }
}

/// Kill-and-resume under chaos: with the SAME chaos seed the fault
/// pattern is reproducible, so a run killed every two iterations and
/// resumed from its checkpoint must converge to the identical result as
/// the same-seed run that was never interrupted.
#[test]
fn interrupted_chaos_mla_resumes_to_identical_result() {
    let root = tmp_root("resume");
    let spec = FaultSpec {
        crash_rate: 0.15,
        hang_rate: 0.0,
        transient_rate: 0.10,
        hang: Duration::from_millis(600),
        chaos_seed: 21,
    };
    let mk_problem = || {
        let app = Arc::new(FaultyApp::new(AnalyticalApp::new(0.0), spec));
        let tasks = vec![vec![Value::Real(2.0)], vec![Value::Real(5.0)]];
        problem_from_app(app, tasks)
    };
    let budget = 10;

    // Ground truth: uninterrupted, no database involved.
    let p = mk_problem();
    let full = mla::tune(&p, &fast_opts(budget, 7));
    assert!(full.completed);

    // Interrupted: kill after every 2 iterations, resume until done.
    let p2 = mk_problem();
    let mut o = fast_opts(budget, 7).with_db(&root).checkpoint_every(1);
    o.stop_after_iterations = Some(2);
    let mut last = mla::tune(&p2, &o);
    assert!(!last.completed, "budget too small to need a resume");
    let mut resumes = 0;
    while !last.completed {
        last = mla::tune(&p2, &o);
        resumes += 1;
        assert!(resumes < 20, "resume loop did not converge");
    }

    for (a, b) in last.per_task.iter().zip(&full.per_task) {
        assert_eq!(a.best_config, b.best_config, "Popt differs after resume");
        assert_eq!(a.best_value, b.best_value, "Oopt differs after resume");
        assert_eq!(a.samples, b.samples, "trajectory differs after resume");
    }
    assert_eq!(last.stats.n_evals, full.stats.n_evals);
    assert_eq!(
        last.stats.n_crashed, full.stats.n_crashed,
        "fault pattern must be reproducible across resumes"
    );
    let _ = std::fs::remove_dir_all(&root);
}

/// The failure journal closes the loop: a completed run archives its
/// failures, and a warm-started successor loads them and never spends an
/// objective call on a configuration known to crash.
#[test]
fn warm_start_skips_configs_the_journal_knows_to_crash() {
    let root = tmp_root("skip");
    let ts = Space::builder().param(Param::int("t", 0, 1)).build();
    let ps = Space::builder().param(Param::int("x", 0, 7)).build();
    let tasks: Vec<Config> = vec![vec![Value::Int(0)]];
    // Only x = 3 and x = 5 survive; the remaining six configurations of
    // the 8-point space panic on every call, so any run is guaranteed to
    // discover (and journal) crashers.
    let calls: Arc<Mutex<Vec<i64>>> = Arc::new(Mutex::new(Vec::new()));
    let calls2 = Arc::clone(&calls);
    let p = TuningProblem::new("chaos-skip", ts, ps, tasks, move |_, c, _| {
        let x = c[0].as_int();
        calls2.lock().unwrap().push(x);
        if x != 3 && x != 5 {
            panic!("injected crash at x={x}");
        }
        vec![1.0 + 0.1 * (x as f64 - 3.0).powi(2)]
    });
    let budget = 8;

    let r1 = mla::tune(&p, &fast_opts(budget, 1).with_db(&root));
    assert!(r1.completed);
    assert!(r1.stats.n_crashed >= 1, "run 1 must hit crashers");

    let db = Db::open(&root).unwrap();
    let sig = problem_signature(&p);
    let failed: HashSet<i64> = db
        .failures(&p.name, sig)
        .unwrap()
        .iter()
        .map(|f| match f.config[0] {
            gptune::db::DbValue::Int(x) => x,
            ref v => panic!("unexpected config value {v:?}"),
        })
        .collect();
    assert!(!failed.is_empty(), "failures must be archived");
    assert!(!failed.contains(&3) && !failed.contains(&5));

    calls.lock().unwrap().clear();
    let mut o2 = fast_opts(budget, 2).with_db(&root);
    o2.warm_start_from_db = true;
    let r2 = mla::tune(&p, &o2);
    assert!(r2.completed);
    assert_eq!(r2.per_task[0].samples.len(), budget);
    assert!(r2.per_task[0].best_value.is_finite());

    let second_run_calls = calls.lock().unwrap().clone();
    for x in &second_run_calls {
        assert!(
            !failed.contains(x),
            "run 2 re-evaluated known-crashing config x={x}"
        );
    }
    let _ = std::fs::remove_dir_all(&root);
}
