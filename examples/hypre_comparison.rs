//! GPTune vs OpenTuner vs HpBandSter on the hypre AMG simulator — a
//! laptop-scale version of the paper's Table 4 comparison.
//!
//! Runs all three tuners on the same random 3-D grid tasks at the same
//! per-task budget, and reports the paper's two metrics: `WinTask` (final
//! performance) and mean `stability` (anytime performance).
//!
//! Run with:
//! ```text
//! cargo run --release --example hypre_comparison
//! ```

use gptune::apps::{HpcApp, HypreApp, MachineModel};
use gptune::baselines::{HpBandSterLike, OpenTunerLike, SurfLike, Tuner};
use gptune::core::{metrics, mla, MlaOptions};
use gptune::problem_from_app;
use gptune::space::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn main() {
    let app: Arc<dyn HpcApp> = Arc::new(HypreApp::new(MachineModel::cori(1)));

    // Random tasks 10 ≤ n1,n2,n3 ≤ 100 (a reduced δ for example runtime).
    let mut rng = StdRng::seed_from_u64(2);
    let delta = 8;
    let tasks: Vec<Vec<Value>> = (0..delta)
        .map(|_| {
            (0..3)
                .map(|_| Value::Int(rng.gen_range(10..=100)))
                .collect()
        })
        .collect();
    let budget = 10;

    println!("hypre comparison: δ = {delta} tasks, ε_tot = {budget}, 12 tuning parameters\n");

    let problem = problem_from_app(Arc::clone(&app), tasks.clone());

    // GPTune multitask MLA.
    let mut opts = MlaOptions::default().with_budget(budget).with_seed(3);
    opts.lcm.n_starts = 3;
    let gptune = mla::tune(&problem, &opts);
    let gp_best: Vec<f64> = gptune.per_task.iter().map(|t| t.best_value).collect();
    let gp_traj: Vec<Vec<f64>> = gptune
        .per_task
        .iter()
        .map(|t| t.samples.iter().map(|(_, y)| *y).collect())
        .collect();

    // Baselines run per task (they do not support multitask learning).
    let run_baseline = |tuner: &dyn Tuner| -> (Vec<f64>, Vec<Vec<f64>>) {
        let mut best = Vec::with_capacity(delta);
        let mut traj = Vec::with_capacity(delta);
        for i in 0..delta {
            let run = tuner.tune_task(&problem, i, budget, 1000 + i as u64);
            best.push(run.best_value);
            traj.push(run.trajectory());
        }
        (best, traj)
    };
    let (ot_best, ot_traj) = run_baseline(&OpenTunerLike::default());
    let (hb_best, hb_traj) = run_baseline(&HpBandSterLike::default());
    let (sf_best, sf_traj) = run_baseline(&SurfLike::default());

    // Per-task global best over all tuners (the y*(t) of the stability
    // definition).
    let y_star: Vec<f64> = (0..delta)
        .map(|i| gp_best[i].min(ot_best[i]).min(hb_best[i]).min(sf_best[i]))
        .collect();

    println!(
        "{:>4} {:>12} {:>12} {:>12} {:>12}",
        "task", "GPTune", "OpenTuner", "HpBandSter", "SuRf"
    );
    for i in 0..delta {
        println!(
            "{:>4} {:>11.4}s {:>11.4}s {:>11.4}s {:>11.4}s",
            i, gp_best[i], ot_best[i], hb_best[i], sf_best[i]
        );
    }

    println!(
        "\nWinTask : vs OpenTuner {:>5.1}%   vs HpBandSter {:>5.1}%   vs SuRf {:>5.1}%",
        metrics::win_task(&gp_best, &ot_best),
        metrics::win_task(&gp_best, &hb_best),
        metrics::win_task(&gp_best, &sf_best),
    );
    println!(
        "stability: GPTune {:.3}   OpenTuner {:.3}   HpBandSter {:.3}   SuRf {:.3}  (lower is better)",
        metrics::mean_stability(&gp_traj, &y_star),
        metrics::mean_stability(&ot_traj, &y_star),
        metrics::mean_stability(&hb_traj, &y_star),
        metrics::mean_stability(&sf_traj, &y_star),
    );
    println!("\nGPTune {}", gptune.stats.report());
}
