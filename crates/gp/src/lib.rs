//! Gaussian-process surrogate models for GPTune-rs.
//!
//! The modeling phase of the paper (Sec. 3.1) builds a *Linear
//! Coregionalization Model* (LCM): a multitask Gaussian process whose
//! cross-task covariance is a sum of `Q` independent latent GPs,
//!
//! ```text
//! Σ(x_{i,j}, x_{i',j'}) = Σ_q (a_{i,q} a_{i',q} + b_{i,q} δ_{i,i'}) k_q(x, x')
//!                         + d_i δ_{i,i'} δ_{j,j'}                    (Eq. 4)
//! ```
//!
//! with Gaussian (ARD squared-exponential) latent kernels `k_q` (Eq. 3,
//! `σ_q` fixed to 1 as the paper notes). Hyperparameters are found by
//! maximizing the log marginal likelihood with multi-start L-BFGS; the
//! gradient is computed analytically.
//!
//! * [`kernel`] — ARD squared-exponential kernel and its gradients;
//! * [`lcm`] — LCM covariance assembly, likelihood + gradient, prediction
//!   (paper Eqs. 5–6), and multi-start fitting;
//! * [`gp`] — single-task convenience wrapper (the `δ = 1` degenerate case
//!   used by single-task-learning comparisons).

// Index-based loops over covariance entries mirror the paper's equations.
#![allow(clippy::needless_range_loop)]

pub mod gp;
pub mod incremental;
pub mod kernel;
pub mod lcm;

pub use gp::SingleTaskGp;
pub use incremental::{IncrementalLcm, ModelState, RefitMode, RefitSchedule};
pub use kernel::{ArdKernel, KernelKind, SeArdKernel};
pub use lcm::{LcmFitOptions, LcmHyperparams, LcmModel, Prediction};
