//! Fig. 5 — efficiency of multitask learning vs single-task learning at a
//! fixed total budget (paper Sec. 6.5).
//!
//! **Left (PDGEQRF, 2048 cores)**: total budget δ·ε_tot = 100. Single-task
//! spends all 100 evaluations on the task (m=23324, n=26545); multitask
//! spends ε_tot = 10 on each of 10 tasks (the big one + 9 random with
//! m,n < 40000). Paper: multitask reaches a very similar minimum on the
//! big task *and* also tunes the other 9.
//!
//! **Right (PDSYEVX, 1 node)**: single-task m = 7000 with ε_tot ∈
//! {90, 180} vs multitask δ = 9 tasks (3000 ≤ m ≤ 7000) with ε_tot ∈
//! {10, 20}. Paper: best runtime scales O(m³); single and multi attain
//! similar minima at m = 7000; the halves-vs-full-budget comparison shows
//! Bayesian optimization beats its own initial random sample.
//!
//! This harness matches those settings exactly (evaluations are simulated).

use gptune::apps::{HpcApp, MachineModel, PdgeqrfApp, PdsyevxApp};
use gptune::baselines::{SingleTaskGpTuner, Tuner};
use gptune::core::{mla, MlaOptions};
use gptune::problem_from_app;
use gptune::space::Value;
use gptune_bench::banner;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn opts(budget: usize, seed: u64) -> MlaOptions {
    let mut o = MlaOptions::default().with_budget(budget).with_seed(seed);
    o.lcm.n_starts = 3;
    o.lcm.lbfgs.max_iters = 25;
    o.runs_per_eval = 3;
    o
}

fn main() {
    banner(
        "Fig. 5 — multitask vs single-task at equal total budget",
        "left: PDGEQRF δ=10, δ·ε_tot=100, 2048 cores; right: PDSYEVX δ=9, 1 node",
        "identical settings on the simulated applications",
    );

    // ---------------- Left: PDGEQRF ----------------
    let machine = MachineModel::cori(64); // 2048 cores
    let app: Arc<dyn HpcApp> = Arc::new(PdgeqrfApp::new(machine, 40_000));
    let big = vec![Value::Int(23_324), Value::Int(26_545)];
    let mut rng = StdRng::seed_from_u64(13);
    let mut tasks = vec![big.clone()];
    for _ in 0..9 {
        tasks.push(vec![
            Value::Int(rng.gen_range(1000..40_000)),
            Value::Int(rng.gen_range(1000..40_000)),
        ]);
    }
    let problem = problem_from_app(Arc::clone(&app), tasks.clone());

    // Single-task: all 100 evals on the big task.
    let st = SingleTaskGpTuner {
        options: opts(100, 31),
    };
    let single = st.tune_task(&problem, 0, 100, 31);

    // Multitask: 10 evals on each of the 10 tasks.
    let multi = mla::tune(&problem, &opts(10, 31));

    println!("\n[left] PDGEQRF, sorted by task flop count (best / worst simulated runtime, s):");
    let mut order: Vec<usize> = (0..tasks.len()).collect();
    let flops: Vec<f64> = tasks
        .iter()
        .map(|t| PdgeqrfApp::flops(t[0].as_int() as f64, t[1].as_int() as f64))
        .collect();
    order.sort_by(|&a, &b| flops[a].partial_cmp(&flops[b]).unwrap());
    println!(
        "{:>10} {:>10} {:>12} {:>12} {:>12}",
        "m", "n", "Tflop", "best", "worst"
    );
    for &i in &order {
        let tr = &multi.per_task[i];
        let worst = tr
            .samples
            .iter()
            .map(|(_, y)| *y)
            .filter(|y| y.is_finite())
            .fold(0.0, f64::max);
        println!(
            "{:>10} {:>10} {:>12.2} {:>11.3}s {:>11.3}s{}",
            tasks[i][0].as_int(),
            tasks[i][1].as_int(),
            flops[i] / 1e12,
            tr.best_value,
            worst,
            if i == 0 {
                "   <- the single-task target"
            } else {
                ""
            }
        );
    }
    println!(
        "\n  big task (m=23324, n=26545): single-task best {:.3}s (100 evals) vs multitask best {:.3}s (10 evals)",
        single.best_value, multi.per_task[0].best_value
    );
    println!(
        "  multitask/single-task ratio: {:.3} (paper: \"very similar minimum\")",
        multi.per_task[0].best_value / single.best_value
    );

    // ---------------- Right: PDSYEVX ----------------
    let machine1 = MachineModel::cori(1);
    let eig_app: Arc<dyn HpcApp> = Arc::new(PdsyevxApp::new(machine1, 8000));
    let ms: Vec<i64> = vec![3000, 3500, 4000, 4500, 5000, 5500, 6000, 6500, 7000];
    let eig_tasks: Vec<Vec<Value>> = ms.iter().map(|&m| vec![Value::Int(m)]).collect();
    let eig_problem = problem_from_app(Arc::clone(&eig_app), eig_tasks.clone());

    println!("\n[right] PDSYEVX single-task (m=7000):");
    for &budget in &[90usize, 180] {
        let stt = SingleTaskGpTuner {
            options: opts(budget, 47),
        };
        let run = stt.tune_task(&eig_problem, ms.len() - 1, budget, 47);
        // Best from the initial half vs the full budget (paper's
        // "usefulness of Bayesian optimization" observation).
        let half_best = run.samples[..budget / 2]
            .iter()
            .map(|(_, y)| *y)
            .fold(f64::INFINITY, f64::min);
        println!(
            "  ε_tot={budget:<4} best after ε_tot/2 random: {half_best:.3}s | best after all: {:.3}s",
            run.best_value
        );
    }

    println!("\n[right] PDSYEVX multitask (δ=9, 3000 ≤ m ≤ 7000):");
    for &budget in &[10usize, 20] {
        let r = mla::tune(&eig_problem, &opts(budget, 53));
        print!("  ε_tot={budget:<3} best runtime by m: ");
        for (i, &m) in ms.iter().enumerate() {
            print!("({m},{:.2}s) ", r.per_task[i].best_value);
        }
        println!();
        // O(m³) shape check.
        let r7000 = r.per_task[ms.len() - 1].best_value;
        let r3000 = r.per_task[0].best_value;
        println!(
            "    scaling check: best(7000)/best(3000) = {:.1} (m³ ratio would be {:.1})",
            r7000 / r3000,
            (7000.0f64 / 3000.0).powi(3)
        );
    }

    println!("\nShape check vs paper: multitask matches single-task on the shared task while");
    println!("also tuning every other task; best runtime grows ~O(m³); the second (BO) half");
    println!("of the budget improves on the random half.");
}
