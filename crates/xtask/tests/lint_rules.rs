//! Fixture-driven tests for the lint suite: each fixture under
//! `tests/fixtures/` is linted under a synthetic *production* path (the
//! fixtures directory itself is test code by the lint's own path rules,
//! so the real path must not be used), and the emitted rule IDs are
//! asserted exactly.

use gptune_xtask::config::Config;
use gptune_xtask::lint_source;

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read fixture {}: {e}", path.display()))
}

/// Lints a fixture as if it lived at `path_rel` and returns the rule IDs
/// in emission order.
fn rules_at(name: &str, path_rel: &str) -> Vec<String> {
    let cfg = Config::default();
    lint_source(path_rel, &fixture(name), &cfg)
        .into_iter()
        .map(|d| d.rule.to_string())
        .collect()
}

#[test]
fn gx101_flags_float_equality_only_outside_tests() {
    let rules = rules_at("gx101_float_eq.rs", "crates/gp/src/fixture.rs");
    assert_eq!(rules, vec!["GX101", "GX101", "GX101"]);
}

#[test]
fn gx102_gx103_flag_partial_cmp_shapes() {
    let rules = rules_at("gx102_gx103_partial_cmp.rs", "crates/opt/src/fixture.rs");
    assert_eq!(rules, vec!["GX102", "GX103"]);
}

#[test]
fn gx1xx_covers_rank1_cholesky_kernel_shapes() {
    // The naive rank-1 downdate shapes — IEEE pivot equality and an
    // unwrap'd partial_cmp eviction comparator — must all fire under the
    // la production path...
    let rules = rules_at("gx1xx_rank1_cholesky.rs", "crates/la/src/cholesky.rs");
    assert_eq!(rules, vec!["GX101", "GX101", "GX103"]);
    // ...while the shipped kernel idiom — the NaN-robust `!(r2 > 0.0)`
    // guard returning a typed NotPositiveDefinite error (never an
    // unwrap), total_cmp victim selection — lints completely clean. This
    // is the exact shape `rank1_downdate`/`evict_candidate` use.
    let rules = rules_at("gx1xx_rank1_cholesky_clean.rs", "crates/la/src/cholesky.rs");
    assert!(rules.is_empty(), "clean kernel idiom fired: {rules:?}");
}

#[test]
fn gx2xx_panic_tier_applies_in_strict_crates() {
    let rules = rules_at("gx2xx_panic_tier.rs", "crates/runtime/src/fixture.rs");
    assert_eq!(
        rules,
        vec!["GX201", "GX202", "GX203", "GX203", "GX204", "GX290"]
    );
}

#[test]
fn gx2xx_panic_tier_silent_outside_strict_code() {
    // The same source under a non-strict crate only reports the
    // tier-independent GX290 (unjustified allow).
    let rules = rules_at("gx2xx_panic_tier.rs", "crates/gp/src/fixture.rs");
    assert_eq!(rules, vec!["GX290"]);
}

#[test]
fn gx301_flags_guard_held_across_send() {
    let rules = rules_at("gx301_lock.rs", "crates/gp/src/fixture.rs");
    assert_eq!(rules, vec!["GX301"]);
}

#[test]
fn gx4xx_flags_entropy_time_seeds_and_hash_iteration() {
    let rules = rules_at("gx4xx_determinism.rs", "crates/core/src/sampler.rs");
    assert_eq!(rules, vec!["GX401", "GX402", "GX403"]);
}

#[test]
fn gx501_flags_unsafe_without_safety_comment() {
    let rules = rules_at("gx501_unsafe.rs", "crates/sparse/src/fixture.rs");
    assert_eq!(rules, vec!["GX501"]);
}

#[test]
fn gx601_flags_raw_instant_now_in_traced_crates_only() {
    let rules = rules_at("gx601_raw_timing.rs", "crates/runtime/src/fixture.rs");
    assert_eq!(rules, vec!["GX601"]);
    let rules = rules_at("gx601_raw_timing.rs", "crates/core/src/fixture.rs");
    assert_eq!(rules, vec!["GX601"]);
    // Untimed crates and the instrumentation layer itself are exempt.
    assert!(rules_at("gx601_raw_timing.rs", "crates/gp/src/fixture.rs").is_empty());
    assert!(rules_at("gx601_raw_timing.rs", "crates/runtime/src/stats.rs").is_empty());
    // The allowlist covers the executor's watchdog clocks.
    let cfg = Config::parse(
        "[[allow]]\nrule = \"GX601\"\npath = \"crates/runtime/src/executor.rs\"\nreason = \"watchdog\"\n",
    )
    .expect("valid config");
    let diags = lint_source(
        "crates/runtime/src/executor.rs",
        &fixture("gx601_raw_timing.rs"),
        &cfg,
    );
    assert!(
        diags.is_empty(),
        "allowlisted GX601 must not fire: {diags:?}"
    );
}

#[test]
fn gx602_flags_computed_and_off_taxonomy_metric_names() {
    let rules = rules_at("gx602_metric_names.rs", "crates/serve/src/fixture.rs");
    assert_eq!(rules, vec!["GX602"; 5]);
    // The closed-match idiom and snapshot lookups by literal lint clean.
    let rules = rules_at("gx602_metric_names_clean.rs", "crates/serve/src/fixture.rs");
    assert!(rules.is_empty(), "clean metric idiom fired: {rules:?}");
    // The instrumentation layer is exempt wholesale.
    let rules = rules_at("gx602_metric_names.rs", "crates/trace/src/fixture.rs");
    assert!(rules.is_empty(), "trace crate must be exempt: {rules:?}");
    // The quarantine path: a lint.toml entry silences a deliberate
    // dynamic family.
    let cfg = Config::parse(
        "[[allow]]\nrule = \"GX602\"\npath = \"crates/serve/src/tenant_metrics.rs\"\nreason = \"bounded per-tenant ledger\"\n",
    )
    .expect("valid config");
    let diags = lint_source(
        "crates/serve/src/tenant_metrics.rs",
        &fixture("gx602_metric_names.rs"),
        &cfg,
    );
    assert!(
        diags.is_empty(),
        "allowlisted GX602 must not fire: {diags:?}"
    );
}

#[test]
fn allowlist_suppresses_by_rule_and_path_prefix() {
    let cfg = Config::parse(
        "[[allow]]\nrule = \"GX1*\"\npath = \"crates/gp/src/\"\nreason = \"fixture\"\n",
    )
    .expect("valid config");
    let diags = lint_source(
        "crates/gp/src/fixture.rs",
        &fixture("gx101_float_eq.rs"),
        &cfg,
    );
    assert!(
        diags.is_empty(),
        "allowlisted rules must not fire: {diags:?}"
    );
    // Same config must not suppress a different path.
    let diags = lint_source(
        "crates/la/src/fixture.rs",
        &fixture("gx101_float_eq.rs"),
        &cfg,
    );
    assert_eq!(diags.len(), 3);
}

#[test]
fn diagnostics_carry_path_line_and_rule() {
    let cfg = Config::default();
    let diags = lint_source(
        "crates/sparse/src/fixture.rs",
        &fixture("gx501_unsafe.rs"),
        &cfg,
    );
    assert_eq!(diags.len(), 1);
    let rendered = diags[0].to_string();
    assert!(
        rendered.starts_with("crates/sparse/src/fixture.rs:6: [GX501]"),
        "unexpected rendering: {rendered}"
    );
}

#[test]
fn fixtures_dir_itself_is_test_code() {
    // Linted under its real path, a violation-laden fixture is silent for
    // every path-scoped tier (the fixtures dir is test code)...
    let rules = rules_at(
        "gx2xx_panic_tier.rs",
        "crates/xtask/tests/fixtures/gx2xx_panic_tier.rs",
    );
    assert!(
        rules.is_empty(),
        "fixtures must lint clean in place: {rules:?}"
    );
    // ...but GX401/GX402 (ambient entropy, time-derived seeds) fire even
    // in test code: a test drawing from the OS or the clock is flaky.
    let rules = rules_at(
        "gx4xx_determinism.rs",
        "crates/xtask/tests/fixtures/gx4xx_determinism.rs",
    );
    assert_eq!(rules, vec!["GX401", "GX402"]);
}

#[test]
fn workspace_lints_clean_end_to_end() {
    // The repo itself must satisfy its own lints: run the full workspace
    // walk exactly as the CLI does.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("workspace root");
    let cfg = gptune_xtask::load_config(root).expect("lint.toml parses");
    let report = gptune_xtask::lint_workspace(root, &cfg).expect("workspace walk");
    assert!(report.files_scanned > 50, "workspace walk looks truncated");
    let rendered: Vec<String> = report.diagnostics.iter().map(|d| d.to_string()).collect();
    assert!(
        report.diagnostics.is_empty(),
        "workspace must lint clean:\n{}",
        rendered.join("\n")
    );
}
