//! Fixture: GX501 — every `unsafe` block needs an adjacent safety
//! justification comment. (The marker string is deliberately not spelled
//! out here: this doc comment sits within range of the first block.)

pub fn violation(xs: &[u8]) -> u8 {
    unsafe { *xs.as_ptr() } // GX501: no SAFETY comment
}

pub fn clean(xs: &[u8]) -> u8 {
    assert!(!xs.is_empty());
    // SAFETY: the assert above guarantees at least one element, so the
    // pointer read is in bounds.
    unsafe { *xs.as_ptr() }
}
