//! Symbolic Cholesky analysis: elimination trees and exact fill counts.
//!
//! Given a symmetric pattern (already permuted by the candidate ordering),
//! computes the number of nonzeros the Cholesky factor `L` would have —
//! the quantity that drives a sparse direct solver's time *and* memory,
//! and therefore the quantity the `COLPERM` tuning parameter controls.
//!
//! Row counts are computed by the classic row-subtree traversal (Liu):
//! the pattern of row `i` of `L` is the union of paths in the elimination
//! tree from each `j ∈ A(i, 0..i)` up toward `i`. Using an `O(n)` visited
//! stamp this costs `O(|L|)` time and `O(n)` space — large fills are
//! *counted* without being materialised, so even the natural ordering of
//! a big matrix can be analysed.

use crate::pattern::SparsePattern;

/// Summary of a symbolic factorization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SymbolicStats {
    /// Nonzeros of `L` including the diagonal.
    pub nnz_l: usize,
    /// Fill ratio `nnz(L+Lᵀ) / nnz(A)` (≥ 1).
    pub fill_ratio: f64,
    /// Σ over columns of `count²` — proportional to factorization flops
    /// (`Σ_j nnz(L_{:,j})²`).
    pub flops: f64,
}

/// Computes the elimination tree of the (permuted) pattern: `parent[v]`
/// is the etree parent of `v`, or `usize::MAX` for roots.
///
/// Standard Liu algorithm with path compression via `ancestor`.
pub fn elimination_tree(pattern: &SparsePattern) -> Vec<usize> {
    let n = pattern.n();
    let none = usize::MAX;
    let mut parent = vec![none; n];
    let mut ancestor = vec![none; n];
    for i in 0..n {
        for &k in pattern.neighbors(i) {
            if k >= i {
                continue;
            }
            // Walk from k up to the root, compressing toward i.
            let mut j = k;
            while ancestor[j] != none && ancestor[j] != i {
                let next = ancestor[j];
                ancestor[j] = i;
                j = next;
            }
            if ancestor[j] == none {
                ancestor[j] = i;
                parent[j] = i;
            }
        }
    }
    parent
}

/// Exact Cholesky fill statistics for the (permuted) pattern.
///
/// ```
/// use gptune_sparse::{fill_count, minimum_degree, SparsePattern};
///
/// let grid = SparsePattern::grid2d(8, 8);
/// let natural = fill_count(&grid);
/// let ordered = fill_count(&grid.permute(&minimum_degree(&grid)));
/// assert!(ordered.nnz_l < natural.nnz_l); // fill-reducing ordering wins
/// ```
pub fn fill_count(pattern: &SparsePattern) -> SymbolicStats {
    let n = pattern.n();
    let parent = elimination_tree(pattern);
    let none = usize::MAX;

    // Row-subtree traversal: for row i, walk from each lower neighbor up
    // the etree until hitting a vertex already marked for this row.
    let mut mark = vec![none; n];
    let mut row_counts = vec![1usize; n]; // diagonal
    let mut col_counts = vec![1usize; n]; // diagonal
    for i in 0..n {
        mark[i] = i;
        for &k in pattern.neighbors(i) {
            if k >= i {
                continue;
            }
            let mut j = k;
            while mark[j] != i {
                mark[j] = i;
                row_counts[i] += 1;
                col_counts[j] += 1;
                j = parent[j];
                if j == none {
                    break;
                }
            }
        }
    }

    let nnz_l: usize = row_counts.iter().sum();
    let flops: f64 = col_counts.iter().map(|&c| (c as f64) * (c as f64)).sum();
    // nnz(L + Lᵀ) counts the diagonal once.
    let nnz_lu = 2 * nnz_l - n;
    SymbolicStats {
        nnz_l,
        fill_ratio: nnz_lu as f64 / pattern.nnz() as f64,
        flops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ordering::{minimum_degree, natural_order, reverse_cuthill_mckee};

    /// Brute-force symbolic factorization by explicit elimination (small n).
    fn brute_force_nnz_l(pattern: &SparsePattern) -> usize {
        let n = pattern.n();
        let mut adj: Vec<std::collections::BTreeSet<usize>> = (0..n)
            .map(|i| pattern.neighbors(i).iter().copied().collect())
            .collect();
        let mut nnz_l = n; // diagonal
        for v in 0..n {
            let later: Vec<usize> = adj[v].iter().copied().filter(|&u| u > v).collect();
            nnz_l += later.len();
            for (ai, &a) in later.iter().enumerate() {
                for &b in &later[ai + 1..] {
                    adj[a].insert(b);
                    adj[b].insert(a);
                }
            }
        }
        nnz_l
    }

    #[test]
    fn tridiagonal_has_no_fill() {
        let edges: Vec<(usize, usize)> = (0..9).map(|i| (i, i + 1)).collect();
        let p = SparsePattern::from_edges(10, &edges);
        let s = fill_count(&p);
        assert_eq!(s.nnz_l, 10 + 9); // diagonal + one subdiagonal
        assert!((s.fill_ratio - 1.0).abs() < 1e-12);
    }

    #[test]
    fn etree_of_path_is_a_path() {
        let edges: Vec<(usize, usize)> = (0..4).map(|i| (i, i + 1)).collect();
        let p = SparsePattern::from_edges(5, &edges);
        let t = elimination_tree(&p);
        assert_eq!(t, vec![1, 2, 3, 4, usize::MAX]);
    }

    #[test]
    fn arrow_matrix_fill_depends_on_orientation() {
        // Arrow pointing the wrong way (hub first) fills completely;
        // hub last has no fill at all. The classic ordering example.
        let n = 12;
        let edges: Vec<(usize, usize)> = (1..n).map(|i| (0, i)).collect();
        let hub_first = SparsePattern::from_edges(n, &edges);
        let bad = fill_count(&hub_first);
        assert_eq!(bad.nnz_l, n * (n + 1) / 2, "hub-first must fill densely");

        let hub_last_perm: Vec<usize> = (1..n).chain(std::iter::once(0)).collect();
        let good = fill_count(&hub_first.permute(&hub_last_perm));
        assert_eq!(good.nnz_l, n + (n - 1), "hub-last has zero fill");
    }

    #[test]
    fn fill_matches_brute_force_on_grids() {
        for (nx, ny) in [(4usize, 4usize), (5, 3), (6, 6)] {
            let p = SparsePattern::grid2d(nx, ny);
            let fast = fill_count(&p).nnz_l;
            let slow = brute_force_nnz_l(&p);
            assert_eq!(fast, slow, "{nx}x{ny}");
        }
    }

    #[test]
    fn fill_matches_brute_force_on_geometric() {
        let p = SparsePattern::geometric(80, 0.25, 11);
        assert_eq!(fill_count(&p).nnz_l, brute_force_nnz_l(&p));
    }

    #[test]
    fn orderings_rank_as_expected_on_grid() {
        // On a 2-D grid: minimum degree < RCM ≤ natural in fill.
        let p = SparsePattern::grid2d(16, 16);
        let fill_of = |perm: &[usize]| fill_count(&p.permute(perm)).nnz_l;
        let nat = fill_of(&natural_order(p.n()));
        let rcm = fill_of(&reverse_cuthill_mckee(&p));
        let md = fill_of(&minimum_degree(&p));
        assert!(md < nat, "md {md} vs natural {nat}");
        assert!(md < rcm, "md {md} vs rcm {rcm}");
    }

    #[test]
    fn flops_superlinear_in_fill() {
        let p = SparsePattern::grid2d(12, 12);
        let nat = fill_count(&p.permute(&natural_order(p.n())));
        let md = fill_count(&p.permute(&minimum_degree(&p)));
        // Flop ratio should exceed the fill ratio (flops ~ Σ count²).
        assert!(nat.flops / md.flops > nat.nnz_l as f64 / md.nnz_l as f64);
    }
}
