//! LU factorization with partial pivoting.
//!
//! Used for general (non-symmetric) linear systems — e.g. the normal
//! equations fallback in the performance-model fit and a few app-simulator
//! internals. `PA = LU` with unit lower-triangular `L` stored below the
//! diagonal of the packed factor.

use crate::ord::feq;
use crate::{LaError, Matrix, Result};

/// Packed LU factorization `PA = LU`.
#[derive(Debug, Clone)]
pub struct Lu {
    /// Packed factors: strictly-lower part holds `L` (unit diagonal
    /// implied), upper part holds `U`.
    lu: Matrix,
    /// Row permutation: row `i` of `U` came from row `perm[i]` of `A`.
    perm: Vec<usize>,
    /// Sign of the permutation (+1/-1), for determinants.
    sign: f64,
}

impl Lu {
    /// Factorizes a square matrix with partial (row) pivoting.
    pub fn factor(a: &Matrix) -> Result<Lu> {
        assert!(a.is_square(), "Lu: matrix must be square");
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        for k in 0..n {
            // Pivot: largest |value| in column k at or below the diagonal.
            let mut p = k;
            let mut pmax = lu.get(k, k).abs();
            for i in (k + 1)..n {
                let v = lu.get(i, k).abs();
                if v > pmax {
                    pmax = v;
                    p = i;
                }
            }
            if feq(pmax, 0.0) || !pmax.is_finite() {
                return Err(LaError::Singular { pivot: k });
            }
            if p != k {
                lu.swap_rows(p, k);
                perm.swap(p, k);
                sign = -sign;
            }
            let pivot = lu.get(k, k);
            for i in (k + 1)..n {
                let m = lu.get(i, k) / pivot;
                lu.set(i, k, m);
                if feq(m, 0.0) {
                    continue;
                }
                let (ri, rk) = lu.rows_mut_pair(i, k);
                for j in (k + 1)..n {
                    ri[j] -= m * rk[j];
                }
            }
        }
        Ok(Lu { lu, perm, sign })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A x = b` into a fresh vector.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(b.len(), n, "Lu::solve: dims");
        // Apply permutation.
        let mut x: Vec<f64> = (0..n).map(|i| b[self.perm[i]]).collect();
        // Forward: L y = Pb (unit diagonal).
        for i in 0..n {
            let row = self.lu.row(i);
            let mut s = x[i];
            for (j, xj) in x[..i].iter().enumerate() {
                s -= row[j] * xj;
            }
            x[i] = s;
        }
        // Backward: U x = y.
        for i in (0..n).rev() {
            let row = self.lu.row(i);
            let mut s = x[i];
            for j in (i + 1)..n {
                s -= row[j] * x[j];
            }
            x[i] = s / row[i];
        }
        x
    }

    /// Determinant of `A`.
    pub fn det(&self) -> f64 {
        let mut d = self.sign;
        for i in 0..self.dim() {
            d *= self.lu.get(i, i);
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_known_3x3() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, 1.0], &[4.0, -6.0, 0.0], &[-2.0, 7.0, 2.0]]);
        let lu = Lu::factor(&a).unwrap();
        let x = lu.solve(&[5.0, -2.0, 9.0]);
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
        assert!((x[2] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let lu = Lu::factor(&a).unwrap();
        let x = lu.solve(&[3.0, 4.0]);
        assert!((x[0] - 4.0).abs() < 1e-14);
        assert!((x[1] - 3.0).abs() < 1e-14);
        assert!((lu.det() + 1.0).abs() < 1e-14);
    }

    #[test]
    fn det_matches_manual() {
        let a = Matrix::from_rows(&[&[3.0, 1.0], &[2.0, 4.0]]);
        let lu = Lu::factor(&a).unwrap();
        assert!((lu.det() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn singular_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(Lu::factor(&a), Err(LaError::Singular { .. })));
    }

    #[test]
    fn random_system_roundtrip() {
        let n = 20;
        let a = Matrix::from_fn(n, n, |i, j| {
            let v = ((i * 37 + j * 13 + 5) % 19) as f64 - 9.0;
            if i == j {
                v + 25.0
            } else {
                v
            }
        });
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64) * 0.5 - 3.0).collect();
        let mut b = vec![0.0; n];
        for i in 0..n {
            b[i] = (0..n).map(|j| a.get(i, j) * x_true[j]).sum();
        }
        let lu = Lu::factor(&a).unwrap();
        let x = lu.solve(&b);
        for i in 0..n {
            assert!((x[i] - x_true[i]).abs() < 1e-9);
        }
    }
}
