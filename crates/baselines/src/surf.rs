//! SuRf-style random-forest tuner.
//!
//! SuRf ("Search using Random Forest", Balaprakash — paper Sec. 5) models
//! application performance with a random forest and searches the model for
//! its optimum; "one of its main strengths is its ability to handle
//! categorical parameters in an elegant way" — axis-aligned tree splits
//! treat the encoded categorical cells natively. This stand-in:
//!
//! 1. evaluates an initial Latin-hypercube design;
//! 2. fits a [`RandomForest`] on the archive each iteration;
//! 3. scores a large candidate pool by a lower-confidence-bound on the
//!    ensemble (`mean − κ·std`, the across-tree std as exploration) and
//!    evaluates the best unseen candidate.

use crate::{initial_design, repair, Tuner, TunerRun};
use gptune_core::TuningProblem;
use gptune_opt::forest::{ForestOptions, RandomForest};
use gptune_space::Config;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// SuRf-like tuner.
#[derive(Debug)]
pub struct SurfLike {
    /// Forest configuration.
    pub forest: ForestOptions,
    /// Candidate-pool size per iteration.
    pub candidates: usize,
    /// Exploration weight on the across-tree standard deviation.
    pub kappa: f64,
    /// Initial design size.
    pub n_initial: usize,
}

impl Default for SurfLike {
    fn default() -> Self {
        SurfLike {
            forest: ForestOptions::default(),
            candidates: 200,
            kappa: 1.5,
            n_initial: 5,
        }
    }
}

impl Tuner for SurfLike {
    fn name(&self) -> &str {
        "surf"
    }

    fn tune_task(
        &self,
        problem: &TuningProblem,
        task_idx: usize,
        budget: usize,
        seed: u64,
    ) -> TunerRun {
        assert!(budget > 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let space = &problem.tuning_space;
        let dim = space.dim();
        let mut samples: Vec<(Config, f64)> = Vec::with_capacity(budget);

        for cfg in initial_design(space, self.n_initial.min(budget), &mut rng) {
            let y =
                problem.evaluate(task_idx, &cfg, seed.wrapping_add(samples.len() as u64 * 13))[0];
            samples.push((cfg, y));
        }

        while samples.len() < budget {
            // Need at least two finite observations for a useful model.
            let finite = samples.iter().filter(|(_, y)| y.is_finite()).count();
            let proposal: Vec<f64> = if finite < 2 {
                (0..dim).map(|_| rng.gen::<f64>()).collect()
            } else {
                let xs: Vec<Vec<f64>> = samples.iter().map(|(c, _)| space.normalize(c)).collect();
                let ys: Vec<f64> = samples.iter().map(|(_, y)| *y).collect();
                let forest = RandomForest::fit(&xs, &ys, &self.forest, &mut rng);
                // Score a candidate pool: half uniform, half jitters of the
                // incumbent best (local refinement).
                let best_u = {
                    let (bc, _) = samples
                        .iter()
                        .filter(|(_, y)| y.is_finite())
                        .min_by(|a, b| a.1.total_cmp(&b.1))
                        .unwrap();
                    space.normalize(bc)
                };
                let mut best_score = f64::INFINITY;
                let mut best_cand: Vec<f64> = best_u.clone();
                for k in 0..self.candidates {
                    let cand: Vec<f64> = if k % 2 == 0 {
                        (0..dim).map(|_| rng.gen::<f64>()).collect()
                    } else {
                        best_u
                            .iter()
                            .map(|v| (v + rng.gen_range(-0.1..0.1)).clamp(0.0, 1.0))
                            .collect()
                    };
                    let (mean, var) = forest.predict(&cand);
                    let score = mean - self.kappa * var.sqrt();
                    if score < best_score {
                        best_score = score;
                        best_cand = cand;
                    }
                }
                best_cand
            };
            let cfg = repair(space, &proposal, &samples, &mut rng);
            let y =
                problem.evaluate(task_idx, &cfg, seed.wrapping_add(samples.len() as u64 * 13))[0];
            samples.push((cfg, y));
        }
        TunerRun::from_samples(samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gptune_space::{Param, Space, Value};

    fn problem() -> TuningProblem {
        let ts = Space::builder().param(Param::real("t", 0.0, 1.0)).build();
        let ps = Space::builder()
            .param(Param::real("x", 0.0, 1.0))
            .param(Param::categorical("alg", &["a", "b", "c"]))
            .build();
        TuningProblem::new("sf", ts, ps, vec![vec![Value::Real(0.0)]], |_, x, _| {
            // Categorical "b" is the good branch; x optimum depends on it.
            let penalty = match x[1].as_cat() {
                1 => 0.0,
                _ => 0.5,
            };
            vec![(x[0].as_real() - 0.4).powi(2) + penalty + 0.1]
        })
    }

    #[test]
    fn finds_categorical_plus_continuous_optimum() {
        let run = SurfLike::default().tune_task(&problem(), 0, 50, 5);
        assert_eq!(run.samples.len(), 50);
        assert!(run.best_value < 0.15, "best {}", run.best_value);
        assert_eq!(run.best_config[1].as_cat(), 1, "should pick branch b");
    }

    #[test]
    fn better_than_random_on_average() {
        let p = problem();
        let mut sf = 0.0;
        let mut rd = 0.0;
        for s in 0..5 {
            sf += SurfLike::default().tune_task(&p, 0, 30, s).best_value;
            rd += crate::RandomTuner.tune_task(&p, 0, 30, s).best_value;
        }
        assert!(sf <= rd * 1.05, "surf {sf} vs random {rd}");
    }

    #[test]
    fn survives_failed_evaluations() {
        let ts = Space::builder().param(Param::real("t", 0.0, 1.0)).build();
        let ps = Space::builder().param(Param::real("x", 0.0, 1.0)).build();
        let p = TuningProblem::new("ff", ts, ps, vec![vec![Value::Real(0.0)]], |_, x, _| {
            let v = x[0].as_real();
            if v < 0.4 {
                vec![f64::INFINITY]
            } else {
                vec![v]
            }
        });
        let run = SurfLike::default().tune_task(&p, 0, 25, 2);
        assert!(run.best_value.is_finite());
        assert!(run.best_config[0].as_real() >= 0.4);
    }

    #[test]
    fn deterministic_per_seed() {
        let p = problem();
        let a = SurfLike::default().tune_task(&p, 0, 15, 9);
        let b = SurfLike::default().tune_task(&p, 0, 15, 9);
        assert_eq!(a.best_value, b.best_value);
    }
}
