//! Single-task GP Bayesian optimization — GPTune with `δ = 1`.
//!
//! The single-task-learning reference of Fig. 5 / Table 3: the same
//! surrogate-model machinery (GP fit by multi-start L-BFGS, EI maximized by
//! PSO), but with no cross-task information sharing. Implemented as a thin
//! driver over [`gptune_core::mla::tune`] with one task, so the comparison
//! isolates exactly the multitask ingredient.

use crate::{Tuner, TunerRun};
use gptune_core::{mla, MlaOptions, TuningProblem};

/// Single-task GP tuner (GPTune `δ = 1`).
#[derive(Debug, Clone)]
pub struct SingleTaskGpTuner {
    /// MLA options used for the inner run (budget/seed are overridden per
    /// call).
    pub options: MlaOptions,
}

impl Default for SingleTaskGpTuner {
    fn default() -> Self {
        let mut options = MlaOptions::default();
        options.lcm.q = 1;
        options.lcm.n_starts = 3;
        SingleTaskGpTuner { options }
    }
}

impl Tuner for SingleTaskGpTuner {
    fn name(&self) -> &str {
        "gp-single-task"
    }

    fn tune_task(
        &self,
        problem: &TuningProblem,
        task_idx: usize,
        budget: usize,
        seed: u64,
    ) -> TunerRun {
        // Restrict the problem to the one task.
        let single = TuningProblem {
            tasks: vec![problem.tasks[task_idx].clone()],
            ..problem.clone()
        };
        let opts = self.options.clone().with_budget(budget).with_seed(seed);
        let result = mla::tune(&single, &opts);
        let tr = &result.per_task[0];
        TunerRun::from_samples(tr.samples.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gptune_space::{Param, Space, Value};

    fn problem() -> TuningProblem {
        let ts = Space::builder().param(Param::real("t", 0.0, 2.0)).build();
        let ps = Space::builder().param(Param::real("x", 0.0, 1.0)).build();
        TuningProblem::new(
            "st",
            ts,
            ps,
            vec![vec![Value::Real(0.0)], vec![Value::Real(1.0)]],
            |t, x, _| vec![1.0 + (x[0].as_real() - 0.3 - 0.2 * t[0].as_real()).powi(2)],
        )
    }

    fn fast() -> SingleTaskGpTuner {
        let mut t = SingleTaskGpTuner::default();
        t.options.lcm.n_starts = 2;
        t.options.lcm.lbfgs.max_iters = 25;
        t.options.pso.particles = 20;
        t.options.pso.iters = 15;
        t.options.log_objective = false;
        t
    }

    #[test]
    fn tunes_selected_task_only() {
        let p = problem();
        // Task 1's optimum is x = 0.5.
        let run = fast().tune_task(&p, 1, 14, 3);
        assert_eq!(run.samples.len(), 14);
        assert!(
            (run.best_config[0].as_real() - 0.5).abs() < 0.1,
            "best x {}",
            run.best_config[0].as_real()
        );
    }

    #[test]
    fn beats_random_on_average() {
        let p = problem();
        let mut gp = 0.0;
        let mut rd = 0.0;
        for s in 0..3 {
            gp += fast().tune_task(&p, 0, 14, s).best_value;
            rd += crate::RandomTuner.tune_task(&p, 0, 14, s).best_value;
        }
        assert!(gp <= rd * 1.02, "gp {gp} vs random {rd}");
    }
}
