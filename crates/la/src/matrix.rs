//! Row-major dense matrix type.

/// A dense, row-major, heap-allocated `f64` matrix.
///
/// Storage is a single contiguous `Vec<f64>` of length `rows * cols`;
/// element `(i, j)` lives at index `i * cols + j`. Row-major layout keeps
/// kernel inner loops stride-1 over the second index, which is the access
/// pattern of every kernel in this crate.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows × cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: data length {} != {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Builds a matrix from nested row slices (convenient in tests).
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = if r == 0 { 0 } else { rows[0].len() };
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "Matrix::from_rows: ragged rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Builds a matrix by evaluating `f(i, j)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` iff the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Immutable element access.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Mutable element access.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Adds `v` to element `(i, j)`.
    #[inline]
    pub fn add_at(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] += v;
    }

    /// Immutable view of row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of row `i` as a slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self.get(i, j)).collect()
    }

    /// Copies the main diagonal into a new vector (square matrices; used by
    /// the GP gradient hot path to read `W_ii` without per-element `get`).
    pub fn diagonal(&self) -> Vec<f64> {
        debug_assert!(self.is_square());
        let n = self.rows.min(self.cols);
        (0..n).map(|i| self.data[i * self.cols + i]).collect()
    }

    /// Underlying row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable underlying row-major data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Two disjoint mutable row views `(i, k)`, `i != k` (used by pivoting).
    pub fn rows_mut_pair(&mut self, i: usize, k: usize) -> (&mut [f64], &mut [f64]) {
        assert_ne!(i, k, "rows_mut_pair requires distinct rows");
        let c = self.cols;
        let (lo, hi) = if i < k { (i, k) } else { (k, i) };
        let (a, b) = self.data.split_at_mut(hi * c);
        let lo_row = &mut a[lo * c..(lo + 1) * c];
        let hi_row = &mut b[..c];
        if i < k {
            (lo_row, hi_row)
        } else {
            (hi_row, lo_row)
        }
    }

    /// Swaps rows `i` and `k` in place.
    pub fn swap_rows(&mut self, i: usize, k: usize) {
        if i == k {
            return;
        }
        let (a, b) = self.rows_mut_pair(i, k);
        a.swap_with_slice(b);
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        t
    }

    /// Extracts the contiguous submatrix with rows `r0..r1` and columns `c0..c1`.
    pub fn submatrix(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> Matrix {
        assert!(r0 <= r1 && r1 <= self.rows && c0 <= c1 && c1 <= self.cols);
        let mut out = Matrix::zeros(r1 - r0, c1 - c0);
        for (oi, i) in (r0..r1).enumerate() {
            out.row_mut(oi).copy_from_slice(&self.row(i)[c0..c1]);
        }
        out
    }

    /// Elementwise in-place scaling.
    pub fn scale(&mut self, alpha: f64) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// In-place `self += alpha * other`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f64, other: &Matrix) {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Sum of diagonal entries.
    pub fn trace(&self) -> f64 {
        assert!(self.is_square());
        (0..self.rows).map(|i| self.get(i, i)).sum()
    }

    /// Frobenius norm.
    pub fn norm_fro(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry (∞-norm of the vectorised matrix).
    pub fn norm_max(&self) -> f64 {
        self.data.iter().fold(0.0, |m, v| m.max(v.abs()))
    }

    /// `true` iff `|A - Aᵀ|` entries are all within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self.get(i, j) - self.get(j, i)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Symmetrizes in place: `A ← (A + Aᵀ)/2`.
    pub fn symmetrize(&mut self) {
        assert!(self.is_square());
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                let v = 0.5 * (self.get(i, j) + self.get(j, i));
                self.set(i, j, v);
                self.set(j, i, v);
            }
        }
    }

    /// Adds `value` to every diagonal entry (covariance jitter).
    pub fn add_diagonal(&mut self, value: f64) {
        assert!(self.is_square());
        let n = self.rows;
        for i in 0..n {
            self.data[i * n + i] += value;
        }
    }

    /// `true` iff any entry is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }
}

impl std::fmt::Debug for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show = self.rows.min(8);
        for i in 0..show {
            write!(f, "  [")?;
            let cshow = self.cols.min(8);
            for j in 0..cshow {
                write!(f, "{:10.4}", self.get(i, j))?;
                if j + 1 < cshow {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 8 {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i.trace(), 3.0);
        assert_eq!(i.get(0, 1), 0.0);
        assert_eq!(i.get(2, 2), 1.0);
    }

    #[test]
    fn from_rows_and_get_set() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.get(1, 0), 3.0);
        m.set(1, 0, 7.0);
        assert_eq!(m.get(1, 0), 7.0);
        m.add_at(1, 0, 1.0);
        assert_eq!(m.get(1, 0), 8.0);
    }

    #[test]
    #[should_panic]
    fn from_vec_bad_len_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_fn(3, 5, |i, j| (i * 10 + j) as f64);
        let t = m.transpose();
        assert_eq!(t.rows(), 5);
        assert_eq!(t.get(4, 2), m.get(2, 4));
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn submatrix_extracts_block() {
        let m = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let s = m.submatrix(1, 3, 2, 4);
        assert_eq!(s.rows(), 2);
        assert_eq!(s.cols(), 2);
        assert_eq!(s.get(0, 0), m.get(1, 2));
        assert_eq!(s.get(1, 1), m.get(2, 3));
    }

    #[test]
    fn swap_rows_and_pair_views() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        m.swap_rows(0, 2);
        assert_eq!(m.row(0), &[5.0, 6.0]);
        assert_eq!(m.row(2), &[1.0, 2.0]);
        let (a, b) = m.rows_mut_pair(2, 1);
        a[0] = -1.0;
        b[1] = -2.0;
        assert_eq!(m.get(2, 0), -1.0);
        assert_eq!(m.get(1, 1), -2.0);
    }

    #[test]
    fn symmetry_helpers() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0], &[2.5, 1.0]]);
        assert!(!m.is_symmetric(1e-12));
        assert!(m.is_symmetric(1.0));
        m.symmetrize();
        assert!(m.is_symmetric(1e-15));
        assert_eq!(m.get(0, 1), 2.25);
    }

    #[test]
    fn norms_and_scale() {
        let mut m = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert!((m.norm_fro() - 5.0).abs() < 1e-15);
        assert_eq!(m.norm_max(), 4.0);
        m.scale(2.0);
        assert_eq!(m.get(1, 1), 8.0);
    }

    #[test]
    fn axpy_matrix() {
        let mut a = Matrix::identity(2);
        let b = Matrix::filled(2, 2, 1.0);
        a.axpy(2.0, &b);
        assert_eq!(a.get(0, 0), 3.0);
        assert_eq!(a.get(0, 1), 2.0);
    }

    #[test]
    fn add_diagonal_jitter() {
        let mut m = Matrix::zeros(3, 3);
        m.add_diagonal(0.5);
        assert_eq!(m.trace(), 1.5);
        assert_eq!(m.get(0, 1), 0.0);
    }

    #[test]
    fn non_finite_detection() {
        let mut m = Matrix::zeros(2, 2);
        assert!(!m.has_non_finite());
        m.set(0, 1, f64::NAN);
        assert!(m.has_non_finite());
    }
}
