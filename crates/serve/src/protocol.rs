//! The wire protocol: length-prefixed JSON frames over a byte stream.
//!
//! Every message is a 4-byte big-endian payload length followed by that
//! many bytes of compact JSON. Requests and responses alternate strictly
//! (no pipelining), so one `TcpStream` carries one conversation. The
//! framing is transport-agnostic — anything `Read + Write` works, which is
//! what the loopback tests exploit.
//!
//! Responses are JSON objects with an `"ok"` boolean: `{"ok":true,...}`
//! carries the op-specific payload inline; `{"ok":false,"error":"..."}`
//! reports a protocol- or session-level failure. Transport errors surface
//! as `io::Error` instead.
//!
//! Failures a client should *retry* carry a machine-readable `"code"`
//! ([`CODE_DRAINING`], [`CODE_OVERLOADED`]) and a `"retry_after_ms"` hint;
//! everything else (bad request, unknown session, spec mismatch) is a
//! terminal error with no code.

use crate::spec::{config_from_json, config_to_json, ProblemSpec};
use gptune_db::json::{self, Json};
use gptune_space::Config;
use std::io::{self, Read, Write};

/// Hard cap on one frame's payload (16 MiB) — large enough for any
/// realistic history dump, small enough to bound a malicious length word.
pub const MAX_FRAME: usize = 1 << 24;

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame exceeds MAX_FRAME",
        ));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame. `Ok(None)` is a clean end-of-stream (the peer closed
/// between messages); a stream cut mid-frame is an error.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    // A clean EOF before any length byte is a normal close.
    let mut got = 0;
    while got < 4 {
        match r.read(&mut len_buf[got..])? {
            0 if got == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream cut inside frame header",
                ))
            }
            n => got += n,
        }
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame length exceeds MAX_FRAME",
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    Ok(Some(buf))
}

/// Writes a `Json` document as one frame.
pub fn write_json(w: &mut impl Write, j: &Json) -> io::Result<()> {
    write_frame(w, j.to_string().as_bytes())
}

/// Reads and parses one JSON frame (`Ok(None)` on clean EOF).
pub fn read_json(r: &mut impl Read) -> io::Result<Option<Json>> {
    let Some(buf) = read_frame(r)? else {
        return Ok(None);
    };
    let text =
        std::str::from_utf8(&buf).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    json::parse(text)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Tuning knobs a client passes when opening a session. Deliberately a
/// small, forward-compatible subset of [`gptune_core::MlaOptions`]: the
/// server chooses serving-appropriate surrogate settings itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionOptions {
    /// Base RNG seed for the session's sampling and search.
    pub seed: u64,
    /// Initial-design size per task (None → server default).
    pub n_initial: Option<usize>,
}

impl Default for SessionOptions {
    fn default() -> Self {
        SessionOptions {
            seed: 0,
            n_initial: None,
        }
    }
}

impl SessionOptions {
    /// Wire form.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![("seed".into(), Json::from_u64(self.seed))];
        if let Some(n) = self.n_initial {
            fields.push(("n_initial".into(), Json::from_u64(n as u64)));
        }
        Json::Obj(fields)
    }

    /// Parses the wire form (missing fields take defaults).
    pub fn from_json(j: &Json) -> SessionOptions {
        SessionOptions {
            seed: j.get("seed").and_then(|v| v.as_u64()).unwrap_or(0),
            n_initial: j
                .get("n_initial")
                .and_then(|v| v.as_u64())
                .map(|n| n as usize),
        }
    }
}

/// One client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Opens (or re-attaches to) a tenant's session for a problem.
    OpenSession {
        /// Tenant identifier (isolates sessions between clients).
        tenant: String,
        /// Structural problem description.
        spec: ProblemSpec,
        /// Session tuning knobs.
        opts: SessionOptions,
    },
    /// Asks for a configuration to evaluate.
    Suggest {
        /// Session key returned by `OpenSession`.
        session: String,
        /// Task index.
        task: usize,
    },
    /// Reports a measured outcome.
    Report {
        /// Session key.
        session: String,
        /// Task index.
        task: usize,
        /// The evaluated configuration.
        config: Config,
        /// Measured objective outputs.
        outputs: Vec<f64>,
    },
    /// Fetches the session's full evaluation history.
    History {
        /// Session key.
        session: String,
    },
    /// Closes a session, dropping its server-side state.
    Close {
        /// Session key.
        session: String,
    },
    /// Readiness and session-table-pressure probe.
    Health,
    /// Scrapes the server's metrics as deterministic Prometheus-style
    /// text (see `gptune_trace::expo`).
    Metrics,
    /// Begins a graceful drain: the server flushes every session to its
    /// archive and answers subsequent requests with a `draining` error.
    Drain,
}

impl Request {
    /// Stable op name (metric/span label).
    pub fn op(&self) -> &'static str {
        match self {
            Request::Ping => "ping",
            Request::OpenSession { .. } => "open_session",
            Request::Suggest { .. } => "suggest",
            Request::Report { .. } => "report",
            Request::History { .. } => "history",
            Request::Close { .. } => "close",
            Request::Health => "health",
            Request::Metrics => "metrics",
            Request::Drain => "drain",
        }
    }

    /// Wire form.
    pub fn to_json(&self) -> Json {
        match self {
            Request::Ping => Json::Obj(vec![("op".into(), Json::Str("ping".into()))]),
            Request::OpenSession { tenant, spec, opts } => Json::Obj(vec![
                ("op".into(), Json::Str("open_session".into())),
                ("tenant".into(), Json::Str(tenant.clone())),
                ("problem".into(), spec.to_json()),
                ("opts".into(), opts.to_json()),
            ]),
            Request::Suggest { session, task } => Json::Obj(vec![
                ("op".into(), Json::Str("suggest".into())),
                ("session".into(), Json::Str(session.clone())),
                ("task".into(), Json::from_u64(*task as u64)),
            ]),
            Request::Report {
                session,
                task,
                config,
                outputs,
            } => Json::Obj(vec![
                ("op".into(), Json::Str("report".into())),
                ("session".into(), Json::Str(session.clone())),
                ("task".into(), Json::from_u64(*task as u64)),
                ("config".into(), config_to_json(config)),
                (
                    "outputs".into(),
                    Json::Arr(outputs.iter().map(|y| Json::from_f64(*y)).collect()),
                ),
            ]),
            Request::History { session } => Json::Obj(vec![
                ("op".into(), Json::Str("history".into())),
                ("session".into(), Json::Str(session.clone())),
            ]),
            Request::Close { session } => Json::Obj(vec![
                ("op".into(), Json::Str("close".into())),
                ("session".into(), Json::Str(session.clone())),
            ]),
            Request::Health => Json::Obj(vec![("op".into(), Json::Str("health".into()))]),
            Request::Metrics => Json::Obj(vec![("op".into(), Json::Str("metrics".into()))]),
            Request::Drain => Json::Obj(vec![("op".into(), Json::Str("drain".into()))]),
        }
    }

    /// Parses a request frame.
    pub fn from_json(j: &Json) -> Result<Request, String> {
        let op = j
            .get("op")
            .and_then(|v| v.as_str())
            .ok_or("request: missing op")?;
        let session = || -> Result<String, String> {
            Ok(j.get("session")
                .and_then(|v| v.as_str())
                .ok_or("request: missing session")?
                .to_string())
        };
        let task = || -> Result<usize, String> {
            Ok(j.get("task")
                .and_then(|v| v.as_u64())
                .ok_or("request: missing task")? as usize)
        };
        match op {
            "ping" => Ok(Request::Ping),
            "open_session" => {
                let tenant = j
                    .get("tenant")
                    .and_then(|v| v.as_str())
                    .ok_or("request: missing tenant")?
                    .to_string();
                let spec_json = j.get("problem").ok_or("request: missing problem")?;
                let spec = ProblemSpec::from_json(spec_json)?;
                let opts = j
                    .get("opts")
                    .map(SessionOptions::from_json)
                    .unwrap_or_default();
                Ok(Request::OpenSession { tenant, spec, opts })
            }
            "suggest" => Ok(Request::Suggest {
                session: session()?,
                task: task()?,
            }),
            "report" => {
                let config = config_from_json(j.get("config").ok_or("request: missing config")?)?;
                let outputs = j
                    .get("outputs")
                    .and_then(|v| v.as_arr())
                    .ok_or("request: missing outputs")?
                    .iter()
                    .map(|y| y.as_f64().ok_or("bad output".to_string()))
                    .collect::<Result<Vec<f64>, String>>()?;
                Ok(Request::Report {
                    session: session()?,
                    task: task()?,
                    config,
                    outputs,
                })
            }
            "history" => Ok(Request::History {
                session: session()?,
            }),
            "close" => Ok(Request::Close {
                session: session()?,
            }),
            "health" => Ok(Request::Health),
            "metrics" => Ok(Request::Metrics),
            "drain" => Ok(Request::Drain),
            other => Err(format!("unknown op {other:?}")),
        }
    }
}

/// Attaches a client-generated request id to a request frame. The id is
/// a *frame header*, not part of [`Request`]: servers that predate it
/// parse requests field-by-field and ignore it, so propagation is
/// forward- and backward-compatible.
pub fn with_rid(j: Json, rid: &str) -> Json {
    match j {
        Json::Obj(mut fields) => {
            fields.retain(|(k, _)| k != "rid");
            fields.push(("rid".into(), Json::Str(rid.to_string())));
            Json::Obj(fields)
        }
        other => other,
    }
}

/// The request id carried by a frame, if any.
pub fn rid_of(j: &Json) -> Option<&str> {
    j.get("rid").and_then(|v| v.as_str())
}

/// Builds a success response with extra payload fields.
pub fn ok_response(fields: Vec<(String, Json)>) -> Json {
    let mut all = vec![("ok".into(), Json::Bool(true))];
    all.extend(fields);
    Json::Obj(all)
}

/// Builds an error response.
pub fn err_response(msg: impl Into<String>) -> Json {
    Json::Obj(vec![
        ("ok".into(), Json::Bool(false)),
        ("error".into(), Json::Str(msg.into())),
    ])
}

/// Error code of a server that is gracefully draining: reconnect with
/// backoff once `retry_after_ms` has passed.
pub const CODE_DRAINING: &str = "draining";

/// Error code of a load-shedding server (per-tenant in-flight cap or a
/// full session table): retry the same server after `retry_after_ms`.
pub const CODE_OVERLOADED: &str = "overloaded";

/// Builds a *coded* (retryable) error response with a retry hint.
pub fn err_with_code(code: &str, msg: impl Into<String>, retry_after_ms: u64) -> Json {
    Json::Obj(vec![
        ("ok".into(), Json::Bool(false)),
        ("error".into(), Json::Str(msg.into())),
        ("code".into(), Json::Str(code.into())),
        ("retry_after_ms".into(), Json::from_u64(retry_after_ms)),
    ])
}

/// The machine-readable code of a failed response, if it carries one.
pub fn error_code(j: &Json) -> Option<String> {
    j.get("code").and_then(|v| v.as_str()).map(str::to_string)
}

/// The retry hint of a coded error response, if present.
pub fn retry_after_of(j: &Json) -> Option<u64> {
    j.get("retry_after_ms").and_then(|v| v.as_u64())
}

/// `true` when a failed response is retryable (drain / load shed) rather
/// than a terminal protocol or session error.
pub fn is_retryable_error(j: &Json) -> bool {
    matches!(
        error_code(j).as_deref(),
        Some(CODE_DRAINING) | Some(CODE_OVERLOADED)
    )
}

/// `true` when a response reports success.
pub fn is_ok(j: &Json) -> bool {
    j.get("ok").and_then(|v| v.as_bool()).unwrap_or(false)
}

/// The error text of a failed response.
pub fn error_of(j: &Json) -> String {
    j.get("error")
        .and_then(|v| v.as_str())
        .unwrap_or("unknown error")
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gptune_space::{Param, Value};

    fn spec() -> ProblemSpec {
        ProblemSpec {
            name: "toy".into(),
            task_params: vec![Param::real("t", 0.0, 1.0)],
            tuning_params: vec![Param::real("x", 0.0, 1.0)],
            tasks: vec![vec![Value::Real(0.5)]],
            n_objectives: 1,
        }
    }

    #[test]
    fn frames_roundtrip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn torn_frame_is_an_error_not_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        let cut = &buf[..buf.len() - 2];
        let mut r = cut;
        assert!(read_frame(&mut r).is_err());
        // Cut inside the header too.
        let mut r2 = &buf[..2];
        assert!(read_frame(&mut r2).is_err());
    }

    #[test]
    fn oversized_length_word_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME as u32 + 1).to_be_bytes());
        let mut r = &buf[..];
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn requests_roundtrip_through_wire_text() {
        let reqs = vec![
            Request::Ping,
            Request::OpenSession {
                tenant: "acme".into(),
                spec: spec(),
                opts: SessionOptions {
                    seed: u64::MAX,
                    n_initial: Some(4),
                },
            },
            Request::Suggest {
                session: "acme/toy".into(),
                task: 0,
            },
            Request::Report {
                session: "acme/toy".into(),
                task: 0,
                config: vec![Value::Real(0.25)],
                outputs: vec![1.5, f64::INFINITY],
            },
            Request::History {
                session: "acme/toy".into(),
            },
            Request::Close {
                session: "acme/toy".into(),
            },
            Request::Health,
            Request::Metrics,
            Request::Drain,
        ];
        for req in reqs {
            let text = req.to_json().to_string();
            let parsed = gptune_db::json::parse(&text).unwrap();
            assert_eq!(Request::from_json(&parsed).unwrap(), req, "{text}");
        }
    }

    #[test]
    fn request_ids_ride_the_frame_header() {
        let framed = with_rid(
            Request::Suggest {
                session: "s".into(),
                task: 1,
            }
            .to_json(),
            "r01",
        );
        assert_eq!(rid_of(&framed), Some("r01"));
        // The id is invisible to request parsing (old servers ignore it).
        let req = Request::from_json(&framed).unwrap();
        assert_eq!(
            req,
            Request::Suggest {
                session: "s".into(),
                task: 1
            }
        );
        // Re-tagging replaces, never duplicates.
        let retagged = with_rid(framed, "r02");
        assert_eq!(rid_of(&retagged), Some("r02"));
        let text = retagged.to_string();
        assert_eq!(text.matches("\"rid\"").count(), 1, "{text}");
        // Survives the wire text.
        let reparsed = gptune_db::json::parse(&text).unwrap();
        assert_eq!(rid_of(&reparsed), Some("r02"));
        assert_eq!(rid_of(&Request::Ping.to_json()), None);
    }

    #[test]
    fn responses_report_status() {
        let ok = ok_response(vec![("x".into(), Json::Int(1))]);
        assert!(is_ok(&ok));
        let err = err_response("nope");
        assert!(!is_ok(&err));
        assert_eq!(error_of(&err), "nope");
        assert!(!is_ok(&Json::Null));
    }

    #[test]
    fn coded_errors_carry_retry_hints() {
        let shed = err_with_code(CODE_OVERLOADED, "tenant over in-flight cap", 250);
        assert!(!is_ok(&shed));
        assert_eq!(error_code(&shed).as_deref(), Some(CODE_OVERLOADED));
        assert_eq!(retry_after_of(&shed), Some(250));
        assert!(is_retryable_error(&shed));
        let drain = err_with_code(CODE_DRAINING, "server draining", 100);
        assert!(is_retryable_error(&drain));
        // Plain errors are terminal: no code, not retryable.
        let plain = err_response("no such session");
        assert_eq!(error_code(&plain), None);
        assert_eq!(retry_after_of(&plain), None);
        assert!(!is_retryable_error(&plain));
        // Codes survive the wire text.
        let reparsed = crate::spec::reparse(&shed).unwrap();
        assert!(is_retryable_error(&reparsed));
        assert_eq!(retry_after_of(&reparsed), Some(250));
    }

    #[test]
    fn frame_exactly_at_the_cap_roundtrips() {
        let payload = vec![0x5au8; MAX_FRAME];
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), payload);
        // One byte over is rejected on the write side too.
        let over = vec![0u8; MAX_FRAME + 1];
        assert_eq!(
            write_frame(&mut Vec::new(), &over).unwrap_err().kind(),
            io::ErrorKind::InvalidInput
        );
    }

    #[test]
    fn zero_length_frame_roundtrips() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"").unwrap();
        assert_eq!(buf, [0, 0, 0, 0]);
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn torn_length_prefix_is_unexpected_eof() {
        // Every strict prefix of the 4-byte header is a mid-header cut.
        for cut in 1..4usize {
            let mut buf = Vec::new();
            write_frame(&mut buf, b"payload").unwrap();
            let mut r = &buf[..cut];
            let err = read_frame(&mut r).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut at {cut}");
        }
    }

    #[test]
    fn mid_frame_eof_is_an_error_on_any_cut() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"abcdefgh").unwrap();
        // Cut anywhere inside the body: header promises more bytes.
        for cut in 4..buf.len() - 1 {
            let mut r = &buf[..cut];
            assert!(read_frame(&mut r).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn json_frames_roundtrip() {
        let mut buf = Vec::new();
        write_json(&mut buf, &Request::Ping.to_json()).unwrap();
        let mut r = &buf[..];
        let j = read_json(&mut r).unwrap().unwrap();
        assert_eq!(Request::from_json(&j).unwrap(), Request::Ping);
        assert!(read_json(&mut r).unwrap().is_none());
    }
}
