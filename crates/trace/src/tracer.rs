//! The lock-sharded tracer: spans, instant events, and the event ring.
//!
//! Recording is designed for the tuner's hot path: a span records one
//! `Instant` reading at creation and one at drop, then pushes a single
//! [`Event`] into one of [`N_SHARDS`] mutex-guarded bounded rings chosen
//! by the recording thread's track id — concurrent workers almost never
//! contend on the same shard. When a ring is full the oldest event is
//! dropped and counted, never blocking the recorder.

use crate::metrics::{CounterHandle, GaugeHandle, HistogramHandle, MetricsSnapshot, Registry};
use crate::window::WindowSpec;
use parking_lot::Mutex;
use std::borrow::Cow;
use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Number of independent event rings; events hash to a shard by track id.
pub const N_SHARDS: usize = 16;

/// Event names and field keys: `&'static str` on the recording path (no
/// allocation), owned strings when a trace is reloaded from JSONL.
pub type Name = Cow<'static, str>;

/// A typed span/instant field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Field {
    I64(i64),
    U64(u64),
    F64(f64),
    Bool(bool),
    Str(String),
}

impl Field {
    /// The value as u64 if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Field::U64(v) => Some(v),
            Field::I64(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }
}

impl From<i64> for Field {
    fn from(v: i64) -> Self {
        Field::I64(v)
    }
}
impl From<u64> for Field {
    fn from(v: u64) -> Self {
        Field::U64(v)
    }
}
impl From<u32> for Field {
    fn from(v: u32) -> Self {
        Field::U64(u64::from(v))
    }
}
impl From<usize> for Field {
    fn from(v: usize) -> Self {
        Field::U64(v as u64)
    }
}
impl From<f64> for Field {
    fn from(v: f64) -> Self {
        Field::F64(v)
    }
}
impl From<bool> for Field {
    fn from(v: bool) -> Self {
        Field::Bool(v)
    }
}
impl From<&str> for Field {
    fn from(v: &str) -> Self {
        Field::Str(v.to_string())
    }
}
impl From<String> for Field {
    fn from(v: String) -> Self {
        Field::Str(v)
    }
}

/// Whether an event is a completed span or a zero-duration marker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A completed span with a measured duration.
    Span { dur_ns: u64 },
    /// A point-in-time marker (fault events, phase boundaries).
    Instant,
}

/// One recorded trace event. Timestamps are nanoseconds since the
/// tracer's creation epoch; `track` identifies the recording thread.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    pub name: Name,
    pub kind: EventKind,
    pub ts_ns: u64,
    pub track: u64,
    pub fields: Vec<(Name, Field)>,
}

impl Event {
    /// Span duration in nanoseconds; `None` for instant events.
    pub fn dur_ns(&self) -> Option<u64> {
        match self.kind {
            EventKind::Span { dur_ns } => Some(dur_ns),
            EventKind::Instant => None,
        }
    }

    /// Looks up a field by key.
    pub fn field(&self, key: &str) -> Option<&Field> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// Everything a drain yields: events (sorted by start time), the
/// track-id → thread-name table, the count of events lost to ring
/// overflow, and a snapshot of the metrics registry.
#[derive(Debug, Clone, Default)]
pub struct TraceData {
    pub events: Vec<Event>,
    pub tracks: Vec<(u64, String)>,
    pub dropped: u64,
    pub metrics: MetricsSnapshot,
}

impl TraceData {
    /// The registered name for `track`, if any.
    pub fn track_name(&self, track: u64) -> Option<&str> {
        self.tracks
            .iter()
            .find(|(id, _)| *id == track)
            .map(|(_, n)| n.as_str())
    }
}

struct Shard {
    ring: VecDeque<Event>,
    dropped: u64,
}

struct Inner {
    /// Unique id for per-thread track registration (never reused, so a
    /// freed tracer's registration can't alias a new one's).
    id: u64,
    epoch: Instant,
    shard_cap: usize,
    shards: Vec<Mutex<Shard>>,
    tracks: Mutex<BTreeMap<u64, String>>,
    metrics: Registry,
}

static NEXT_TRACER_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_TRACK_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// This thread's process-wide track id (0 = not yet assigned).
    static TRACK: Cell<u64> = const { Cell::new(0) };
    /// Tracer ids this thread has already registered its track name with.
    static REGISTERED: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

fn current_track(inner: &Inner) -> u64 {
    let tid = TRACK.with(|c| {
        let v = c.get();
        if v != 0 {
            v
        } else {
            let v = NEXT_TRACK_ID.fetch_add(1, Ordering::Relaxed);
            c.set(v);
            v
        }
    });
    REGISTERED.with(|r| {
        let mut seen = r.borrow_mut();
        if !seen.contains(&inner.id) {
            seen.push(inner.id);
            let name = std::thread::current()
                .name()
                .map(str::to_string)
                .unwrap_or_else(|| format!("thread-{tid}"));
            inner.tracks.lock().insert(tid, name);
        }
    });
    tid
}

fn push_event(inner: &Inner, ev: Event) {
    let idx = (ev.track as usize) % inner.shards.len();
    if let Some(shard) = inner.shards.get(idx) {
        let mut s = shard.lock();
        if s.ring.len() >= inner.shard_cap {
            s.ring.pop_front();
            s.dropped += 1;
        }
        s.ring.push_back(ev);
    }
}

/// Cheap handle to a shared trace collector; `Clone` bumps an `Arc`.
/// [`Tracer::disabled`] is a `None` — every operation on it is a no-op
/// that takes no clock readings and allocates nothing.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl Tracer {
    /// The no-op tracer: no allocation, no clock reads, nothing recorded.
    pub const fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// An enabled tracer whose per-shard ring holds `shard_capacity`
    /// events (total capacity `shard_capacity * N_SHARDS`); on overflow
    /// the oldest events in the hot shard are dropped and counted.
    /// Metrics keep rolling-window deltas with the default
    /// [`WindowSpec`] (12 × 10s).
    pub fn ring(shard_capacity: usize) -> Self {
        Tracer::ring_with_windows(shard_capacity, WindowSpec::default())
    }

    /// Like [`Tracer::ring`] with an explicit rolling-window geometry;
    /// pass [`WindowSpec::disabled`] to keep lifetime metrics only.
    pub fn ring_with_windows(shard_capacity: usize, windows: WindowSpec) -> Self {
        let shards = (0..N_SHARDS)
            .map(|_| {
                Mutex::new(Shard {
                    ring: VecDeque::new(),
                    dropped: 0,
                })
            })
            .collect();
        let epoch = Instant::now();
        Tracer {
            inner: Some(Arc::new(Inner {
                id: NEXT_TRACER_ID.fetch_add(1, Ordering::Relaxed),
                epoch,
                shard_cap: shard_capacity.max(1),
                shards,
                tracks: Mutex::new(BTreeMap::new()),
                metrics: Registry::new(epoch, windows),
            })),
        }
    }

    /// Whether this tracer records anything.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Nanoseconds since the tracer's epoch (0 when disabled).
    pub fn now_ns(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.epoch.elapsed().as_nanos() as u64,
            None => 0,
        }
    }

    /// Starts an RAII span; it records when dropped or [`Span::finish`]ed.
    pub fn span(&self, name: &'static str) -> Span {
        Span {
            data: self.inner.as_ref().map(|inner| SpanData {
                inner: Arc::clone(inner),
                name,
                start_ns: inner.epoch.elapsed().as_nanos() as u64,
                t0: Instant::now(),
                fields: Vec::new(),
            }),
        }
    }

    /// Builds an instant event; it records when dropped or
    /// [`InstantEvent::emit`]ted.
    pub fn instant(&self, name: &'static str) -> InstantEvent {
        InstantEvent {
            data: self.inner.as_ref().map(|inner| InstantData {
                inner: Arc::clone(inner),
                name,
                fields: Vec::new(),
            }),
        }
    }

    /// Records an externally measured span (used by `PhaseTimer`, which
    /// owns the authoritative clock for phase walls): start time was
    /// `start_ns` (as returned by [`Tracer::now_ns`]) and it lasted `dur`.
    pub fn record_span(
        &self,
        name: &'static str,
        start_ns: u64,
        dur: Duration,
        fields: Vec<(Name, Field)>,
    ) {
        if let Some(inner) = &self.inner {
            push_event(
                inner,
                Event {
                    name: Cow::Borrowed(name),
                    kind: EventKind::Span {
                        dur_ns: dur.as_nanos() as u64,
                    },
                    ts_ns: start_ns,
                    track: current_track(inner),
                    fields,
                },
            );
        }
    }

    /// A counter handle (no-op when disabled). Handles are cheap clones
    /// of the registered atomic; fetch once and reuse in loops.
    pub fn counter(&self, name: &str) -> CounterHandle {
        match &self.inner {
            Some(inner) => inner.metrics.counter(name),
            None => CounterHandle::default(),
        }
    }

    /// A gauge handle (no-op when disabled).
    pub fn gauge(&self, name: &str) -> GaugeHandle {
        match &self.inner {
            Some(inner) => inner.metrics.gauge(name),
            None => GaugeHandle::default(),
        }
    }

    /// A log2-bucketed histogram handle (no-op when disabled).
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        match &self.inner {
            Some(inner) => inner.metrics.histogram(name),
            None => HistogramHandle::default(),
        }
    }

    /// Snapshot of every registered metric (empty when disabled).
    pub fn metrics(&self) -> MetricsSnapshot {
        match &self.inner {
            Some(inner) => inner.metrics.snapshot(),
            None => MetricsSnapshot::default(),
        }
    }

    /// Removes and returns all buffered events (sorted by start time,
    /// longer spans first on ties so parents precede children), plus the
    /// track table and a metrics snapshot. Tracks and metrics are
    /// cumulative — they survive the drain.
    pub fn drain(&self) -> TraceData {
        let Some(inner) = &self.inner else {
            return TraceData::default();
        };
        let mut events = Vec::new();
        let mut dropped = 0;
        for shard in &inner.shards {
            let mut s = shard.lock();
            events.extend(std::mem::take(&mut s.ring));
            dropped += s.dropped;
        }
        events.sort_by(|a, b| {
            a.ts_ns
                .cmp(&b.ts_ns)
                .then_with(|| b.dur_ns().unwrap_or(0).cmp(&a.dur_ns().unwrap_or(0)))
        });
        let tracks = inner
            .tracks
            .lock()
            .iter()
            .map(|(id, name)| (*id, name.clone()))
            .collect();
        TraceData {
            events,
            tracks,
            dropped,
            metrics: inner.metrics.snapshot(),
        }
    }
}

struct SpanData {
    inner: Arc<Inner>,
    name: &'static str,
    start_ns: u64,
    t0: Instant,
    fields: Vec<(Name, Field)>,
}

/// RAII span guard. Records a [`EventKind::Span`] event on drop (or
/// explicit [`Span::finish`]); disabled spans do nothing at all.
#[must_use = "binding a span to `_` drops it immediately; use `let _span = ...`"]
pub struct Span {
    data: Option<SpanData>,
}

impl Span {
    /// Attaches a field (builder style).
    pub fn with(mut self, key: &'static str, value: impl Into<Field>) -> Self {
        self.add(key, value);
        self
    }

    /// Attaches a field after creation (e.g. an outcome known at the end).
    pub fn add(&mut self, key: &'static str, value: impl Into<Field>) {
        if let Some(d) = self.data.as_mut() {
            d.fields.push((Cow::Borrowed(key), value.into()));
        }
    }

    /// Ends the span now and returns the measured duration
    /// ([`Duration::ZERO`] when disabled).
    pub fn finish(mut self) -> Duration {
        match self.data.take() {
            Some(d) => record_span_data(d),
            None => Duration::ZERO,
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(d) = self.data.take() {
            record_span_data(d);
        }
    }
}

fn record_span_data(d: SpanData) -> Duration {
    let dur = d.t0.elapsed();
    let track = current_track(&d.inner);
    push_event(
        &d.inner,
        Event {
            name: Cow::Borrowed(d.name),
            kind: EventKind::Span {
                dur_ns: dur.as_nanos() as u64,
            },
            ts_ns: d.start_ns,
            track,
            fields: d.fields,
        },
    );
    dur
}

struct InstantData {
    inner: Arc<Inner>,
    name: &'static str,
    fields: Vec<(Name, Field)>,
}

/// Builder for a zero-duration marker; records on drop or
/// [`InstantEvent::emit`].
#[must_use = "an instant event records when dropped; call .emit() to record now"]
pub struct InstantEvent {
    data: Option<InstantData>,
}

impl InstantEvent {
    /// Attaches a field (builder style).
    pub fn with(mut self, key: &'static str, value: impl Into<Field>) -> Self {
        if let Some(d) = self.data.as_mut() {
            d.fields.push((Cow::Borrowed(key), value.into()));
        }
        self
    }

    /// Records the event now.
    pub fn emit(self) {
        drop(self);
    }
}

impl Drop for InstantEvent {
    fn drop(&mut self) {
        if let Some(d) = self.data.take() {
            let ts_ns = d.inner.epoch.elapsed().as_nanos() as u64;
            let track = current_track(&d.inner);
            push_event(
                &d.inner,
                Event {
                    name: Cow::Borrowed(d.name),
                    kind: EventKind::Instant,
                    ts_ns,
                    track,
                    fields: d.fields,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        {
            let _span = t.span("x").with("k", 1u64);
            t.instant("i").with("k", 2u64).emit();
        }
        t.counter("c").inc();
        let data = t.drain();
        assert!(data.events.is_empty());
        assert!(data.tracks.is_empty());
        assert_eq!(t.now_ns(), 0);
        assert_eq!(t.span("y").finish(), Duration::ZERO);
    }

    #[test]
    fn span_records_name_fields_and_duration() {
        let t = Tracer::ring(64);
        {
            let _span = t
                .span("gptune.test.op")
                .with("n", 256usize)
                .with("ok", true)
                .with("what", "fit");
            std::thread::sleep(Duration::from_millis(5));
        }
        let data = t.drain();
        assert_eq!(data.events.len(), 1);
        let ev = &data.events[0];
        assert_eq!(ev.name, "gptune.test.op");
        assert!(ev.dur_ns().unwrap() >= 1_000_000);
        assert_eq!(ev.field("n"), Some(&Field::U64(256)));
        assert_eq!(ev.field("ok"), Some(&Field::Bool(true)));
        assert_eq!(ev.field("what"), Some(&Field::Str("fit".into())));
        // Track registered with this thread's name or a fallback.
        assert!(data.track_name(ev.track).is_some());
    }

    #[test]
    fn instant_and_record_span_land_on_timeline() {
        let t = Tracer::ring(64);
        let start = t.now_ns();
        t.instant("gptune.test.fault").with("job", 3u64).emit();
        t.record_span(
            "gptune.test.phase",
            start,
            Duration::from_micros(1500),
            vec![(Cow::Borrowed("iteration"), Field::U64(2))],
        );
        let data = t.drain();
        assert_eq!(data.events.len(), 2);
        let phase = data
            .events
            .iter()
            .find(|e| e.name == "gptune.test.phase")
            .unwrap();
        assert_eq!(phase.dur_ns(), Some(1_500_000));
        assert_eq!(phase.ts_ns, start);
        let fault = data
            .events
            .iter()
            .find(|e| e.name == "gptune.test.fault")
            .unwrap();
        assert_eq!(fault.kind, EventKind::Instant);
    }

    #[test]
    fn ring_overflow_drops_oldest_and_counts() {
        // All events from one thread land in one shard, so shard_cap
        // bounds what we keep.
        let t = Tracer::ring(4);
        for i in 0..10u64 {
            t.span("e").with("i", i).finish();
        }
        let data = t.drain();
        assert_eq!(data.events.len(), 4, "ring keeps only the newest 4");
        assert_eq!(data.dropped, 6, "six oldest events dropped");
        let kept: Vec<u64> = data
            .events
            .iter()
            .map(|e| e.field("i").and_then(Field::as_u64).unwrap())
            .collect();
        assert_eq!(kept, vec![6, 7, 8, 9], "wraparound keeps newest events");
        // A second drain starts empty but keeps the drop count history.
        let again = t.drain();
        assert!(again.events.is_empty());
    }

    #[test]
    fn worker_threads_get_their_own_named_tracks() {
        let t = Tracer::ring(64);
        t.span("on-main").finish();
        let t2 = t.clone();
        std::thread::Builder::new()
            .name("gptune-worker-0".into())
            .spawn(move || {
                t2.span("on-worker").finish();
            })
            .unwrap()
            .join()
            .unwrap();
        let data = t.drain();
        assert_eq!(data.events.len(), 2);
        let worker = data.events.iter().find(|e| e.name == "on-worker").unwrap();
        let main = data.events.iter().find(|e| e.name == "on-main").unwrap();
        assert_ne!(worker.track, main.track);
        assert_eq!(data.track_name(worker.track), Some("gptune-worker-0"));
    }

    #[test]
    fn drain_sorts_by_start_time_parents_first() {
        let t = Tracer::ring(64);
        t.record_span("child", 100, Duration::from_nanos(10), Vec::new());
        t.record_span("parent", 100, Duration::from_nanos(50), Vec::new());
        t.record_span("earlier", 20, Duration::from_nanos(5), Vec::new());
        let data = t.drain();
        let names: Vec<&str> = data.events.iter().map(|e| e.name.as_ref()).collect();
        assert_eq!(names, vec!["earlier", "parent", "child"]);
    }
}
