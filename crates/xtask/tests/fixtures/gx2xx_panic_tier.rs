//! Fixture: the GX2xx panic-freedom tier. Linted under a synthetic
//! `crates/runtime/src/` path, so the strict rules (including GX204
//! indexing) all apply.

pub fn gx201(x: Option<u32>) -> u32 {
    x.unwrap() // GX201
}

pub fn gx202(x: Result<u32, String>) -> u32 {
    x.expect("boom") // GX202
}

pub fn gx203(flag: bool) {
    if flag {
        panic!("deliberate"); // GX203
    }
    unreachable!() // GX203
}

pub fn gx204(xs: &[u32], i: usize) -> u32 {
    xs[i] // GX204
}

// PANIC-SAFETY: fixture for the justified escape hatch — the allow below
// must NOT fire GX201/GX290.
#[allow(clippy::unwrap_used)]
pub fn justified(x: Option<u32>) -> u32 {
    x.unwrap()
}

#[allow(clippy::expect_used)] // GX290: no justification comment anywhere near
pub fn unjustified(x: Result<u32, String>) -> u32 {
    x.expect("no reason given")
}

pub fn clean(xs: &[u32], i: usize) -> u32 {
    xs.get(i).copied().unwrap_or_default()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwraps_are_fine_in_tests() {
        assert_eq!(Some(3).unwrap(), 3);
        let xs = [1, 2];
        assert_eq!(xs[1], 2);
    }
}
