//! Fixture (clean): the shipped rank-1 Cholesky kernel idiom. The
//! non-PSD downdate check is the NaN-robust `!(r2 > 0.0)` negation form
//! and the failure is a *typed* error — never an unwrap or a poisoned
//! factor — and victim selection uses `total_cmp`. Linted under the la
//! production path, this file must produce zero diagnostics.

/// Typed stand-in for `gptune_la::LaError::NotPositiveDefinite`.
pub enum DowndateError {
    NotPositiveDefinite { pivot: usize },
}

pub fn downdate_diag(diag: &mut [f64], w: &[f64]) -> Result<(), DowndateError> {
    for (j, d) in diag.iter_mut().enumerate() {
        let r2 = *d * *d - w[j] * w[j];
        // NaN-robust pivot guard: a NaN `r2` fails `r2 > 0.0` and lands
        // in the typed error instead of a panic mid-factor.
        if !(r2 > 0.0) || !r2.is_finite() {
            return Err(DowndateError::NotPositiveDefinite { pivot: j });
        }
        *d = r2.sqrt();
    }
    Ok(())
}

pub fn pick_victim(dist: &[f64]) -> usize {
    dist.iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0)
}
