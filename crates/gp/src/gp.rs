//! Single-task GP — the `δ = 1` special case of the LCM.
//!
//! The paper's single-task-learning comparisons (Fig. 5, Table 3) run the
//! same machinery with one task; this wrapper provides the ergonomic API for
//! that case and for the single-task GP baseline tuner.

use crate::lcm::{LcmFitOptions, LcmModel, Prediction};

/// A single-task Gaussian-process surrogate backed by a one-task [`LcmModel`].
///
/// ```
/// use gptune_gp::{LcmFitOptions, SingleTaskGp};
///
/// let xs: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64 / 7.0]).collect();
/// let ys: Vec<f64> = xs.iter().map(|x| (x[0] - 0.5_f64).powi(2)).collect();
/// let gp = SingleTaskGp::fit(&xs, &ys, &LcmFitOptions::default());
/// let p = gp.predict(&[0.5]);
/// assert!(p.mean.abs() < 0.1);          // near the true minimum value 0
/// assert!(p.variance >= 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct SingleTaskGp {
    inner: LcmModel,
}

impl SingleTaskGp {
    /// Fits a GP to `(x, y)` pairs with inputs in the unit cube.
    pub fn fit(xs: &[Vec<f64>], y: &[f64], opts: &LcmFitOptions) -> SingleTaskGp {
        let task_of = vec![0usize; xs.len()];
        let mut o = opts.clone();
        o.q = 1;
        SingleTaskGp {
            inner: LcmModel::fit(xs, &task_of, y, 1, &o),
        }
    }

    /// Posterior mean and variance at `x`.
    pub fn predict(&self, x: &[f64]) -> Prediction {
        self.inner.predict(0, x)
    }

    /// Batched posterior prediction at many points — one blocked multi-RHS
    /// solve instead of per-point triangular solves; results are identical
    /// to per-point [`predict`](Self::predict).
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<Prediction> {
        self.inner.predict_batch(0, xs)
    }

    /// Best observed output.
    pub fn best_observed(&self) -> f64 {
        self.inner.best_observed(0).expect("fit guarantees data")
    }

    /// Number of training samples.
    pub fn n_samples(&self) -> usize {
        self.inner.n_samples()
    }

    /// Access to the underlying LCM (hyperparameters, NLL).
    pub fn inner(&self) -> &LcmModel {
        &self.inner
    }
}

/// Expected Improvement for minimization at a predicted point:
///
/// ```text
/// EI(x) = (y_best − μ) Φ(z) + σ φ(z),   z = (y_best − μ)/σ
/// ```
///
/// This is the acquisition function GPTune maximizes in the search phase
/// (Sec. 3.1); it is non-negative and zero where the model is certain of no
/// improvement.
pub fn expected_improvement(pred: &Prediction, y_best: f64) -> f64 {
    let sigma = pred.variance.sqrt();
    if !sigma.is_finite() || sigma < 1e-12 {
        return (y_best - pred.mean).max(0.0);
    }
    let z = (y_best - pred.mean) / sigma;
    let ei = (y_best - pred.mean) * norm_cdf(z) + sigma * norm_pdf(z);
    ei.max(0.0)
}

/// Lower Confidence Bound acquisition for minimization, returned as a
/// *score to maximize* (`−(μ − κσ)`): favours points whose optimistic
/// estimate is lowest. `κ` trades exploration against exploitation
/// (typical values 1–3).
pub fn lower_confidence_bound(pred: &Prediction, kappa: f64) -> f64 {
    -(pred.mean - kappa * pred.variance.sqrt())
}

/// Probability of Improvement over `y_best` for minimization:
/// `PI(x) = Φ((y_best − μ)/σ)`.
pub fn probability_of_improvement(pred: &Prediction, y_best: f64) -> f64 {
    let sigma = pred.variance.sqrt();
    if !sigma.is_finite() || sigma < 1e-12 {
        return if pred.mean < y_best { 1.0 } else { 0.0 };
    }
    norm_cdf((y_best - pred.mean) / sigma)
}

/// Standard normal PDF.
pub fn norm_pdf(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal CDF via the complementary error function
/// (Abramowitz–Stegun 7.1.26 rational approximation, |err| < 1.5e-7 —
/// ample for acquisition optimization).
pub fn norm_cdf(z: f64) -> f64 {
    0.5 * erfc(-z / std::f64::consts::SQRT_2)
}

/// Complementary error function.
pub fn erfc(x: f64) -> f64 {
    let ax = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * ax);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let v = poly * (-ax * ax).exp();
    if x >= 0.0 {
        v
    } else {
        2.0 - v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lcm::LcmFitOptions;

    #[test]
    fn gp_fits_quadratic() {
        let xs: Vec<Vec<f64>> = (0..9).map(|i| vec![(i as f64 + 0.5) / 9.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x[0] - 0.4).powi(2)).collect();
        let gp = SingleTaskGp::fit(&xs, &ys, &LcmFitOptions::default());
        let p = gp.predict(&[0.4]);
        assert!(p.mean.abs() < 0.05, "mean at optimum {}", p.mean);
        assert!(
            (gp.best_observed() - ys.iter().cloned().fold(f64::INFINITY, f64::min)).abs() < 1e-12
        );
    }

    #[test]
    fn ei_nonnegative_and_zero_without_hope() {
        // Certain model (σ→0) predicting worse than best: EI = 0.
        let p = Prediction {
            mean: 5.0,
            variance: 1e-18,
        };
        assert_eq!(expected_improvement(&p, 1.0), 0.0);
        // Certain improvement.
        let p2 = Prediction {
            mean: 0.0,
            variance: 1e-18,
        };
        assert!((expected_improvement(&p2, 1.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ei_grows_with_variance_at_equal_mean() {
        let lo = Prediction {
            mean: 1.0,
            variance: 0.01,
        };
        let hi = Prediction {
            mean: 1.0,
            variance: 1.0,
        };
        assert!(expected_improvement(&hi, 1.0) > expected_improvement(&lo, 1.0));
    }

    #[test]
    fn norm_cdf_reference_values() {
        assert!((norm_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((norm_cdf(1.0) - 0.841344746).abs() < 1e-6);
        assert!((norm_cdf(-1.0) - 0.158655254).abs() < 1e-6);
        assert!((norm_cdf(3.0) - 0.998650102).abs() < 1e-6);
        assert!(norm_cdf(-8.0) < 1e-14);
        assert!(norm_cdf(8.0) > 1.0 - 1e-14);
    }

    #[test]
    fn erfc_symmetry() {
        for &x in &[0.0, 0.3, 1.0, 2.5] {
            assert!((erfc(x) + erfc(-x) - 2.0).abs() < 1e-7);
        }
    }

    #[test]
    fn lcb_prefers_low_mean_and_high_variance() {
        let a = Prediction {
            mean: 1.0,
            variance: 0.01,
        };
        let b = Prediction {
            mean: 1.0,
            variance: 1.0,
        };
        assert!(lower_confidence_bound(&b, 2.0) > lower_confidence_bound(&a, 2.0));
        let c = Prediction {
            mean: 0.5,
            variance: 0.01,
        };
        assert!(lower_confidence_bound(&c, 2.0) > lower_confidence_bound(&a, 2.0));
        // κ = 0 reduces to pure exploitation (negated mean).
        assert_eq!(lower_confidence_bound(&a, 0.0), -1.0);
    }

    #[test]
    fn pi_bounded_and_sensible() {
        let p = Prediction {
            mean: 0.0,
            variance: 1.0,
        };
        let at_best = probability_of_improvement(&p, 0.0);
        assert!((at_best - 0.5).abs() < 1e-7);
        assert!(probability_of_improvement(&p, 10.0) > 0.99);
        assert!(probability_of_improvement(&p, -10.0) < 0.01);
        // Deterministic predictions degenerate to a step function.
        let d = Prediction {
            mean: 1.0,
            variance: 0.0,
        };
        assert_eq!(probability_of_improvement(&d, 2.0), 1.0);
        assert_eq!(probability_of_improvement(&d, 0.5), 0.0);
    }

    #[test]
    fn ei_closed_form_spot_check() {
        // μ=0, σ=1, best=0 → EI = φ(0) = 1/sqrt(2π).
        let p = Prediction {
            mean: 0.0,
            variance: 1.0,
        };
        let expect = 1.0 / (2.0 * std::f64::consts::PI).sqrt();
        assert!((expected_improvement(&p, 0.0) - expect).abs() < 1e-7);
    }
}
