//! MLA configuration.

use gptune_gp::{LcmFitOptions, RefitSchedule};

use gptune_opt::nsga2::Nsga2Options;
use gptune_opt::pso::PsoOptions;
use gptune_runtime::FaultPolicy;
use std::time::Duration;

/// Global optimizer used to maximize the acquisition function in the
/// search phase. The paper uses PSO ("global, evolutionary algorithms
/// such as the Particle Swarm Optimization algorithm"); DE and CMA-ES are
/// drop-in alternatives for ablations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchMethod {
    /// Particle swarm optimization (the paper's choice).
    Pso,
    /// Differential evolution.
    DifferentialEvolution,
    /// CMA-ES.
    Cmaes,
}

/// Acquisition function for the single-objective search phase. The paper
/// uses Expected Improvement (Sec. 3.1); the alternatives support
/// ablation studies of this design choice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Acquisition {
    /// Expected Improvement (the paper's choice).
    ExpectedImprovement,
    /// Lower Confidence Bound with exploration weight `κ`.
    LowerConfidenceBound {
        /// Exploration weight (typical values 1–3).
        kappa: f64,
    },
    /// Probability of Improvement.
    ProbabilityOfImprovement,
}

/// Options controlling the MLA tuners (Algorithms 1 & 2).
#[derive(Debug, Clone)]
pub struct MlaOptions {
    /// Total function evaluations per task `ε_tot`.
    pub eps_total: usize,
    /// Initial random sample count per task; defaults to `ε_tot / 2`
    /// (paper Sec. 3.1) when `None`.
    pub n_initial: Option<usize>,
    /// LCM fitting configuration (latent count `Q`, multi-start count
    /// `n_start`, inner L-BFGS budget, base seed, active-set cap).
    pub lcm: LcmFitOptions,
    /// When the surrogate re-optimizes hyperparameters vs. extends the
    /// existing factor incrementally in O(n²). The default refits fully
    /// every iteration — bit-identical to the pre-incremental behavior
    /// (and required for bit-identical checkpoint resume); long runs and
    /// long-lived serve sessions should raise `full_every`.
    pub refit: RefitSchedule,
    /// Acquisition function maximized in the search phase.
    pub acquisition: Acquisition,
    /// Global optimizer for the acquisition search.
    pub search_method: SearchMethod,
    /// PSO configuration for the single-objective acquisition search.
    pub pso: PsoOptions,
    /// NSGA-II configuration for the multi-objective search.
    pub nsga: Nsga2Options,
    /// Points evaluated per multi-objective iteration (`k` in Algorithm 2).
    pub k_per_iter: usize,
    /// Repeated runs per evaluation with the elementwise minimum kept
    /// (the paper uses 3 for PDGEQRF/PDSYEVX).
    pub runs_per_eval: usize,
    /// Model `log(y)` instead of `y` — appropriate for runtimes, which are
    /// positive and often span decades.
    pub log_objective: bool,
    /// Use the problem's coarse performance model as extra LCM features
    /// (paper Sec. 3.3), when the problem provides one.
    pub use_model_features: bool,
    /// Fit linear coefficients of the performance-model features against
    /// observed outputs before each modeling phase and enrich with the
    /// fitted scalar prediction (the Eq. 7 hyperparameter update) instead
    /// of the raw features.
    pub fit_model_coefficients: bool,
    /// Worker threads for parallel objective evaluation (the spawned
    /// "function evaluation" group of Sec. 4.2).
    pub eval_workers: usize,
    /// Worker threads for the modeling phase (L-BFGS restarts + parallel
    /// covariance factorization; Sec. 4.3).
    pub model_workers: usize,
    /// Worker threads for the per-task search phase (Sec. 4.3).
    pub search_workers: usize,
    /// Base RNG seed for sampling/search/noise.
    pub seed: u64,
    /// Archive directory of the shared history database (`gptune-db`).
    /// When set, every completed run appends its evaluations and a
    /// run-summary (`stats:`) line to the problem's journal, and
    /// checkpoint/resume becomes available.
    pub db_path: Option<std::path::PathBuf>,
    /// Write a checkpoint every `n` MLA iterations (0 disables periodic
    /// checkpoints). Requires `db_path`. The sampling phase always
    /// checkpoints once when enabled, so even a run killed in its first
    /// iteration resumes without re-evaluating the initial design.
    pub checkpoint_every: usize,
    /// Cooperative preemption for walltime-limited jobs: stop after this
    /// many MLA iterations *in this process*, writing a final checkpoint
    /// (when checkpointing is enabled) and returning the partial result
    /// with `completed = false`. `None` runs to budget exhaustion.
    pub stop_after_iterations: Option<usize>,
    /// Preload matching archived evaluations from the database as free
    /// extra observations before the sampling phase (the MLA warm start;
    /// archived data does not count against `eps_total`).
    pub warm_start_from_db: bool,
    /// Machine identifier recorded in archive provenance (GPTune archives
    /// are keyed by machine so cross-machine records stay comparable).
    pub machine_id: Option<String>,
    /// Per-evaluation wall-clock deadline enforced by the evaluation
    /// worker group's watchdog. An evaluation still running past the
    /// deadline is abandoned (its worker is replaced) and recorded as
    /// timed out with a censored objective. `None` disables the watchdog
    /// — appropriate when the objective is trusted never to hang.
    pub eval_deadline: Option<Duration>,
    /// Retry budget for *transient* evaluation failures (spurious node
    /// faults, recoverable launcher errors). Crashes and invalid
    /// measurements are never retried — they are assumed deterministic.
    pub eval_max_retries: u32,
    /// Base delay of the exponential backoff between transient retries
    /// (doubles per attempt, capped at 100× the base).
    pub eval_backoff: Duration,
}

impl Default for MlaOptions {
    fn default() -> Self {
        MlaOptions {
            eps_total: 20,
            n_initial: None,
            lcm: LcmFitOptions::default(),
            refit: RefitSchedule::default(),
            acquisition: Acquisition::ExpectedImprovement,
            search_method: SearchMethod::Pso,
            pso: PsoOptions {
                particles: 30,
                iters: 30,
                ..Default::default()
            },
            nsga: Nsga2Options {
                population: 40,
                generations: 40,
                ..Default::default()
            },
            k_per_iter: 4,
            runs_per_eval: 1,
            log_objective: true,
            use_model_features: false,
            fit_model_coefficients: false,
            eval_workers: 4,
            model_workers: 1,
            search_workers: 1,
            seed: 0,
            db_path: None,
            checkpoint_every: 0,
            stop_after_iterations: None,
            warm_start_from_db: false,
            machine_id: None,
            eval_deadline: None,
            eval_max_retries: 2,
            eval_backoff: Duration::from_millis(5),
        }
    }
}

impl MlaOptions {
    /// Resolved initial sample count (`ε_tot / 2`, at least 2).
    pub fn initial_samples(&self) -> usize {
        self.n_initial
            .unwrap_or(self.eps_total / 2)
            .clamp(2, self.eps_total.max(2))
    }

    /// Convenience: sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.lcm.seed = seed.wrapping_mul(0x9e37_79b9).wrapping_add(17);
        self
    }

    /// Convenience: sets the evaluation budget.
    pub fn with_budget(mut self, eps_total: usize) -> Self {
        self.eps_total = eps_total;
        self
    }

    /// Convenience: attaches a shared history database (archive root
    /// directory). Completed runs archive their evaluations there;
    /// checkpoint/resume and warm starts read from it.
    pub fn with_db(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.db_path = Some(path.into());
        self
    }

    /// Convenience: checkpoints the in-flight run state every `n` MLA
    /// iterations (0 disables). Requires [`MlaOptions::with_db`].
    pub fn checkpoint_every(mut self, n: usize) -> Self {
        self.checkpoint_every = n;
        self
    }

    /// `true` when this options set can read/write checkpoints.
    pub fn checkpointing(&self) -> bool {
        self.db_path.is_some() && self.checkpoint_every > 0
    }

    /// Convenience: arms the evaluation watchdog with a per-evaluation
    /// wall-clock deadline.
    pub fn with_eval_deadline(mut self, deadline: Duration) -> Self {
        self.eval_deadline = Some(deadline);
        self
    }

    /// The [`FaultPolicy`] the evaluation worker group runs under.
    pub fn fault_policy(&self) -> FaultPolicy {
        FaultPolicy {
            deadline: self.eval_deadline,
            max_retries: self.eval_max_retries,
            backoff_base: self.eval_backoff,
            backoff_cap: self.eval_backoff.saturating_mul(100),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_defaults_to_half_budget() {
        let o = MlaOptions::default().with_budget(40);
        assert_eq!(o.initial_samples(), 20);
    }

    #[test]
    fn initial_floor_of_two() {
        let o = MlaOptions::default().with_budget(3);
        assert_eq!(o.initial_samples(), 2);
    }

    #[test]
    fn explicit_initial_respected() {
        let mut o = MlaOptions::default().with_budget(20);
        o.n_initial = Some(15);
        assert_eq!(o.initial_samples(), 15);
    }

    #[test]
    fn with_seed_propagates_to_lcm() {
        let a = MlaOptions::default().with_seed(1);
        let b = MlaOptions::default().with_seed(2);
        assert_ne!(a.lcm.seed, b.lcm.seed);
    }

    #[test]
    fn db_and_checkpoint_builders() {
        let o = MlaOptions::default();
        assert!(!o.checkpointing());
        let o = o.with_db("/tmp/archive").checkpoint_every(2);
        assert_eq!(
            o.db_path.as_deref(),
            Some(std::path::Path::new("/tmp/archive"))
        );
        assert_eq!(o.checkpoint_every, 2);
        assert!(o.checkpointing());
        // checkpoint_every without a db is not checkpointing.
        let mut o2 = MlaOptions::default().checkpoint_every(3);
        assert!(!o2.checkpointing());
        o2.checkpoint_every = 0;
        assert!(!o2.checkpointing());
    }

    #[test]
    fn fault_policy_reflects_eval_knobs() {
        let o = MlaOptions::default();
        let p = o.fault_policy();
        assert_eq!(p.deadline, None);
        assert_eq!(p.max_retries, 2);

        let o = MlaOptions::default().with_eval_deadline(Duration::from_millis(250));
        let mut o = o;
        o.eval_max_retries = 5;
        o.eval_backoff = Duration::from_millis(2);
        let p = o.fault_policy();
        assert_eq!(p.deadline, Some(Duration::from_millis(250)));
        assert_eq!(p.max_retries, 5);
        assert_eq!(p.backoff_base, Duration::from_millis(2));
        assert_eq!(p.backoff_cap, Duration::from_millis(200));
    }
}
