//! Tuning-history database (paper goal 3: archive and reuse tuning data
//! across executions so tuning improves over time).
//!
//! The history stores `(task, config, outputs)` triples in a
//! JSON-serializable form keyed by problem name. A new MLA run can seed its
//! sampling phase from matching archived records, exactly like GPTune's
//! shared-database workflow.

use gptune_space::{Config, Value};
use serde::{Deserialize, Serialize};
use std::io::Read;
use std::path::Path;

/// One archived evaluation.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct Record {
    /// Task parameters.
    pub task: Config,
    /// Tuning configuration.
    pub config: Config,
    /// Objective outputs (`γ` values).
    pub outputs: Vec<f64>,
}

/// A tuning-history archive for one problem.
#[derive(Debug, Clone, Serialize, Deserialize, Default, PartialEq)]
pub struct History {
    /// Problem name the records belong to.
    pub problem: String,
    /// Archived evaluations.
    pub records: Vec<Record>,
}

impl History {
    /// Empty history for a problem.
    pub fn new(problem: impl Into<String>) -> History {
        History {
            problem: problem.into(),
            records: Vec::new(),
        }
    }

    /// Appends one evaluation.
    pub fn push(&mut self, task: Config, config: Config, outputs: Vec<f64>) {
        self.records.push(Record {
            task,
            config,
            outputs,
        });
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when no records are stored.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records whose task equals `task` exactly.
    pub fn for_task(&self, task: &[Value]) -> Vec<&Record> {
        self.records
            .iter()
            .filter(|r| r.task.as_slice() == task)
            .collect()
    }

    /// Best (minimum) first-output record for a task, if any is finite.
    pub fn best_for_task(&self, task: &[Value]) -> Option<&Record> {
        self.for_task(task)
            .into_iter()
            .filter(|r| r.outputs.first().is_some_and(|v| v.is_finite()))
            .min_by(|a, b| a.outputs[0].total_cmp(&b.outputs[0]))
    }

    /// Merges another history (same problem) into this one, skipping exact
    /// duplicates.
    pub fn merge(&mut self, other: &History) {
        assert_eq!(
            self.problem, other.problem,
            "History::merge: different problems"
        );
        for r in &other.records {
            if !self.records.contains(r) {
                self.records.push(r.clone());
            }
        }
    }

    /// Serializes to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("history serialization cannot fail")
    }

    /// Deserializes from JSON.
    pub fn from_json(s: &str) -> serde_json::Result<History> {
        serde_json::from_str(s)
    }

    /// Saves to a file, atomically: the JSON is written to a temp sibling,
    /// fsynced, and renamed over `path`, so a crash mid-save can never
    /// leave a torn archive (the previous version survives intact).
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        gptune_db::atomic_write(path, self.to_json().as_bytes())
    }

    /// Loads from a file.
    pub fn load(path: &Path) -> std::io::Result<History> {
        let mut s = String::new();
        std::fs::File::open(path)?.read_to_string(&mut s)?;
        History::from_json(&s).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Builds a history from an MLA result.
    pub fn from_mla(problem_name: &str, result: &crate::mla::MlaResult) -> History {
        let mut h = History::new(problem_name);
        for tr in &result.per_task {
            for (cfg, y) in &tr.samples {
                h.push(tr.task.clone(), cfg.clone(), vec![*y]);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_history() -> History {
        let mut h = History::new("pdgeqrf");
        h.push(
            vec![Value::Int(1000), Value::Int(1000)],
            vec![Value::Int(32), Value::Int(32)],
            vec![1.5],
        );
        h.push(
            vec![Value::Int(1000), Value::Int(1000)],
            vec![Value::Int(64), Value::Int(64)],
            vec![1.2],
        );
        h.push(
            vec![Value::Int(2000), Value::Int(2000)],
            vec![Value::Int(64), Value::Int(64)],
            vec![4.0],
        );
        h
    }

    #[test]
    fn push_and_query() {
        let h = sample_history();
        assert_eq!(h.len(), 3);
        let t1 = vec![Value::Int(1000), Value::Int(1000)];
        assert_eq!(h.for_task(&t1).len(), 2);
        let best = h.best_for_task(&t1).unwrap();
        assert_eq!(best.outputs[0], 1.2);
    }

    #[test]
    fn best_skips_non_finite() {
        let mut h = History::new("x");
        h.push(
            vec![Value::Int(1)],
            vec![Value::Int(1)],
            vec![f64::INFINITY],
        );
        h.push(vec![Value::Int(1)], vec![Value::Int(2)], vec![3.0]);
        assert_eq!(h.best_for_task(&[Value::Int(1)]).unwrap().outputs[0], 3.0);
        let mut h2 = History::new("y");
        h2.push(vec![Value::Int(1)], vec![Value::Int(1)], vec![f64::NAN]);
        assert!(h2.best_for_task(&[Value::Int(1)]).is_none());
    }

    #[test]
    fn json_roundtrip() {
        let h = sample_history();
        let s = h.to_json();
        let back = History::from_json(&s).unwrap();
        assert_eq!(h, back);
    }

    #[test]
    fn file_roundtrip() {
        let h = sample_history();
        let dir = std::env::temp_dir().join("gptune_history_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("h.json");
        h.save(&path).unwrap();
        let back = History::load(&path).unwrap();
        assert_eq!(h, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_replaces_atomically_without_litter() {
        let dir =
            std::env::temp_dir().join(format!("gptune_history_atomic_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("h.json");
        sample_history().save(&path).unwrap();
        let mut h2 = sample_history();
        h2.push(vec![Value::Int(5)], vec![Value::Int(5)], vec![5.0]);
        h2.save(&path).unwrap();
        assert_eq!(History::load(&path).unwrap(), h2);
        // The temp sibling used for the atomic rename must be gone.
        let leftovers: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n != "h.json")
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_dedups() {
        let mut a = sample_history();
        let b = sample_history();
        a.merge(&b);
        assert_eq!(a.len(), 3);
        let mut c = History::new("pdgeqrf");
        c.push(vec![Value::Int(9)], vec![Value::Int(9)], vec![9.0]);
        a.merge(&c);
        assert_eq!(a.len(), 4);
    }

    #[test]
    #[should_panic]
    fn merge_different_problems_panics() {
        let mut a = History::new("a");
        let b = History::new("b");
        a.merge(&b);
    }

    #[test]
    fn corrupt_json_is_error() {
        assert!(History::from_json("not json").is_err());
    }
}
