//! Random and grid search — the baseline black-box methods the paper lists
//! first (Sec. 5): cheap, embarrassingly parallel, and the floor any smarter
//! tuner must beat.

use crate::OptResult;
use rand::Rng;

/// Minimizes `f` over `[0,1]^dim` with `n` i.i.d. uniform samples.
pub fn random_search(
    f: &mut dyn FnMut(&[f64]) -> f64,
    dim: usize,
    n: usize,
    rng: &mut impl Rng,
) -> OptResult {
    assert!(n > 0, "random_search: need at least one sample");
    let mut best_x = vec![0.0; dim];
    let mut best_v = f64::INFINITY;
    for _ in 0..n {
        let x: Vec<f64> = (0..dim).map(|_| rng.gen::<f64>()).collect();
        let v = f(&x);
        let v = if v.is_nan() { f64::INFINITY } else { v };
        if v < best_v {
            best_v = v;
            best_x = x;
        }
    }
    OptResult {
        x: best_x,
        value: best_v,
        evals: n,
    }
}

/// Minimizes `f` over a full factorial grid with `points_per_dim` levels per
/// dimension (cell midpoints). Evaluation count is `points_per_dim^dim` —
/// the curse of dimensionality the paper warns about; callers must keep
/// `dim` small.
pub fn grid_search(
    f: &mut dyn FnMut(&[f64]) -> f64,
    dim: usize,
    points_per_dim: usize,
) -> OptResult {
    assert!(points_per_dim > 0 && dim > 0);
    let total = points_per_dim.pow(dim as u32);
    let mut best_x = vec![0.0; dim];
    let mut best_v = f64::INFINITY;
    let mut idx = vec![0usize; dim];
    for _ in 0..total {
        let x: Vec<f64> = idx
            .iter()
            .map(|&i| (i as f64 + 0.5) / points_per_dim as f64)
            .collect();
        let v = f(&x);
        let v = if v.is_nan() { f64::INFINITY } else { v };
        if v < best_v {
            best_v = v;
            best_x = x;
        }
        // Odometer increment.
        for d in 0..dim {
            idx[d] += 1;
            if idx[d] < points_per_dim {
                break;
            }
            idx[d] = 0;
        }
    }
    OptResult {
        x: best_x,
        value: best_v,
        evals: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_finds_decent_point() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut f = |x: &[f64]| (x[0] - 0.5).powi(2);
        let r = random_search(&mut f, 1, 200, &mut rng);
        assert!(r.value < 1e-3);
        assert_eq!(r.evals, 200);
    }

    #[test]
    fn grid_covers_all_cells() {
        let mut seen = Vec::new();
        let mut f = |x: &[f64]| {
            seen.push((x[0], x[1]));
            (x[0] - 0.5).powi(2) + (x[1] - 0.5).powi(2)
        };
        let r = grid_search(&mut f, 2, 4);
        assert_eq!(r.evals, 16);
        assert_eq!(seen.len(), 16);
        // All 16 midpoints distinct.
        seen.sort_by(|a, b| a.partial_cmp(b).unwrap());
        seen.dedup();
        assert_eq!(seen.len(), 16);
    }

    #[test]
    fn grid_hits_exact_midpoint_optimum() {
        let mut f = |x: &[f64]| (x[0] - 0.125).abs();
        let r = grid_search(&mut f, 1, 4);
        assert_eq!(r.x[0], 0.125);
        assert_eq!(r.value, 0.0);
    }

    #[test]
    fn nan_skipped() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut f = |x: &[f64]| if x[0] < 0.9 { f64::NAN } else { x[0] };
        let r = random_search(&mut f, 1, 500, &mut rng);
        assert!(r.value.is_finite());
    }
}
