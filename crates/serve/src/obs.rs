//! Observability post-processing: JSONL trace parsing and client/server
//! correlation by request id.
//!
//! The serve wire protocol stamps a client-minted request id on every
//! frame (see [`crate::protocol::with_rid`]); the client tags its
//! `gptune.serve.client.*` spans with it and the server tags
//! `gptune.serve.request` plus the session-level spans the request
//! triggers. Given the two JSONL dumps — one drained client-side, one
//! server-side — [`correlate`] reconstructs one causal record per
//! request: intent (rpc span), local durability (WAL append), wire
//! attempts (retry instants), and the server-side processing spans, all
//! keyed by the shared id. `trace_tool correlate` renders the result.
//!
//! Timestamps are nanoseconds since each tracer's *own* epoch, so they
//! order events within one dump but are not comparable across the two;
//! causality across the boundary comes from the id, not the clock.

use gptune_db::json::{self, Json};
use gptune_trace::{Event, EventKind, Field, HistogramSnapshot, TraceData};

/// Parses a `gptune_trace::jsonl` dump back into a [`TraceData`].
///
/// Inverse of [`gptune_trace::jsonl::to_string`] up to numeric field
/// representation: a non-negative integer field parses as `U64` whatever
/// it was emitted from, and a `null` (non-finite float) comes back as
/// NaN — both re-serialize to the identical JSONL text, so
/// `to_string ∘ parse_jsonl` is the identity on emitted dumps. The
/// windowed metrics view is not part of the JSONL format (dumps are
/// lifetime views); it parses back empty.
pub fn parse_jsonl(text: &str) -> Result<TraceData, String> {
    let mut data = TraceData::default();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let bad = |what: &str| format!("line {}: {what}", lineno + 1);
        let v = json::parse(line).map_err(|e| bad(&format!("bad JSON: {e}")))?;
        let name = || {
            v.get("name")
                .and_then(Json::as_str)
                .unwrap_or("?")
                .to_string()
        };
        match v.get("type").and_then(Json::as_str) {
            Some("track") => data
                .tracks
                .push((v.get("id").and_then(Json::as_u64).unwrap_or(0), name())),
            Some("event") => {
                let kind = match v.get("ph").and_then(Json::as_str) {
                    Some("span") => EventKind::Span {
                        dur_ns: v.get("dur_ns").and_then(Json::as_u64).unwrap_or(0),
                    },
                    _ => EventKind::Instant,
                };
                let mut fields = Vec::new();
                if let Some(Json::Obj(kvs)) = v.get("args") {
                    for (k, fv) in kvs {
                        fields.push((k.clone().into(), json_field(fv)));
                    }
                }
                data.events.push(Event {
                    name: name().into(),
                    kind,
                    ts_ns: v.get("ts_ns").and_then(Json::as_u64).unwrap_or(0),
                    track: v.get("track").and_then(Json::as_u64).unwrap_or(0),
                    fields,
                });
            }
            Some("metric") => {
                let value = v.get("value");
                match v.get("metric").and_then(Json::as_str) {
                    Some("counter") => data
                        .metrics
                        .counters
                        .push((name(), value.and_then(Json::as_u64).unwrap_or(0))),
                    Some("gauge") => data
                        .metrics
                        .gauges
                        .push((name(), value.and_then(Json::as_f64).unwrap_or(f64::NAN))),
                    Some("histogram") => {
                        let buckets = v
                            .get("buckets")
                            .and_then(Json::as_arr)
                            .unwrap_or(&[])
                            .iter()
                            .filter_map(|pair| {
                                let pair = pair.as_arr()?;
                                Some((pair.first()?.as_u64()? as u32, pair.get(1)?.as_u64()?))
                            })
                            .collect();
                        data.metrics.histograms.push((
                            name(),
                            HistogramSnapshot {
                                count: v.get("count").and_then(Json::as_u64).unwrap_or(0),
                                sum: v.get("sum").and_then(Json::as_u64).unwrap_or(0),
                                buckets,
                            },
                        ));
                    }
                    _ => return Err(bad("unknown metric kind")),
                }
            }
            Some("meta") => {
                data.dropped = v.get("dropped").and_then(Json::as_u64).unwrap_or(0);
            }
            _ => return Err(bad("unknown record type")),
        }
    }
    Ok(data)
}

fn json_field(v: &Json) -> Field {
    match v {
        Json::Bool(b) => Field::Bool(*b),
        Json::Str(s) => Field::Str(s.clone()),
        Json::Null => Field::F64(f64::NAN),
        _ => {
            if let Some(u) = v.as_u64() {
                Field::U64(u)
            } else if let Some(i) = v.as_i64() {
                Field::I64(i)
            } else {
                Field::F64(v.as_f64().unwrap_or(f64::NAN))
            }
        }
    }
}

/// One client request correlated (or not) with its server-side trace.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkedRequest {
    /// The shared request id.
    pub rid: String,
    /// Wire op (`suggest`, `report`, …) from the client rpc span.
    pub op: String,
    /// Client-side start of the rpc span (client epoch).
    pub client_ts_ns: u64,
    /// Wire attempts the client made under this id (1 = no retries).
    pub attempts: u64,
    /// Whether the client acknowledged success (`ok` field on the span).
    pub acked: bool,
    /// Whether a WAL append under this id precedes the send.
    pub wal_appended: bool,
    /// Names of server-side spans carrying the id, in server time order
    /// (e.g. `gptune.core.session.report`, `gptune.serve.request`).
    pub server_spans: Vec<String>,
}

impl LinkedRequest {
    /// Whether the server trace shows this request at all.
    pub fn linked(&self) -> bool {
        !self.server_spans.is_empty()
    }
}

/// Outcome of [`correlate`]: per-request links plus the acked/linked
/// tallies the acceptance gate reads.
#[derive(Debug, Clone, Default)]
pub struct CorrelationReport {
    /// Requests the client saw acknowledged (rpc spans with `ok:true`).
    pub acked: usize,
    /// Acknowledged requests whose id appears in the server dump.
    pub linked: usize,
    /// Every client request with a rid, in client time order.
    pub requests: Vec<LinkedRequest>,
}

impl CorrelationReport {
    /// Fraction of acknowledged requests found in the server trace
    /// (1.0 when nothing was acknowledged).
    pub fn link_rate(&self) -> f64 {
        if self.acked == 0 {
            1.0
        } else {
            self.linked as f64 / self.acked as f64
        }
    }
}

fn str_field<'e>(ev: &'e Event, key: &str) -> Option<&'e str> {
    match ev.field(key) {
        Some(Field::Str(s)) => Some(s.as_str()),
        _ => None,
    }
}

/// Correlates a client-side trace with a server-side trace by request id.
///
/// Walks the client's `gptune.serve.client.rpc` spans (one per logical
/// call) and looks each id up among the server's rid-tagged events. An
/// acknowledged call with no server-side match means the server dump is
/// incomplete — dropped ring events, or a scrape that missed a restart.
pub fn correlate(client: &TraceData, server: &TraceData) -> CorrelationReport {
    // Index the server dump: rid -> events carrying it, server time order.
    let mut by_rid: std::collections::BTreeMap<&str, Vec<&Event>> = Default::default();
    for ev in &server.events {
        if let Some(rid) = str_field(ev, "rid") {
            by_rid.entry(rid).or_default().push(ev);
        }
    }
    for evs in by_rid.values_mut() {
        evs.sort_by_key(|e| e.ts_ns);
    }

    let mut report = CorrelationReport::default();
    let mut rpcs: Vec<&Event> = client
        .events
        .iter()
        .filter(|e| e.name.as_ref() == "gptune.serve.client.rpc")
        .collect();
    rpcs.sort_by_key(|e| e.ts_ns);
    for rpc in rpcs {
        let Some(rid) = str_field(rpc, "rid") else {
            continue;
        };
        let acked = rpc.field("ok") == Some(&Field::Bool(true));
        let wal_appended = client.events.iter().any(|e| {
            e.name.as_ref() == "gptune.serve.client.wal_append" && str_field(e, "rid") == Some(rid)
        });
        let server_spans: Vec<String> = by_rid
            .get(rid)
            .map(|evs| evs.iter().map(|e| e.name.to_string()).collect())
            .unwrap_or_default();
        if acked {
            report.acked += 1;
            if !server_spans.is_empty() {
                report.linked += 1;
            }
        }
        report.requests.push(LinkedRequest {
            rid: rid.to_string(),
            op: str_field(rpc, "op").unwrap_or("?").to_string(),
            client_ts_ns: rpc.ts_ns,
            attempts: rpc.field("attempts").and_then(Field::as_u64).unwrap_or(1),
            acked,
            wal_appended,
            server_spans,
        });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use gptune_trace::{jsonl, Tracer};
    use std::time::Duration;

    #[test]
    fn jsonl_roundtrips_through_parse_including_hostile_names() {
        let t = Tracer::ring(64);
        t.record_span(
            "gptune.test.op",
            10,
            Duration::from_nanos(500),
            vec![
                ("n".into(), Field::U64(3)),
                ("neg".into(), Field::I64(-7)),
                ("rid".into(), Field::Str("he said \"hi\"\\n".into())),
                ("ok".into(), Field::Bool(true)),
                ("ratio".into(), Field::F64(0.25)),
            ],
        );
        t.instant("gptune.test.mark").emit();
        // Hostile metric names: quotes, backslashes, newlines, non-ASCII.
        t.counter("he said \"hi\"").add(2);
        t.counter("back\\slash\\").add(1);
        t.counter("smörgås.δέλτα.метрика").add(5);
        t.gauge("new\nline").set(1.5);
        t.histogram("tab\there").record(7);
        let data = t.drain();
        let text = jsonl::to_string(&data);
        let parsed = parse_jsonl(&text).expect("emitted JSONL parses");
        // Event and metric payloads survive exactly…
        assert_eq!(parsed.events, data.events);
        assert_eq!(parsed.metrics.counters, data.metrics.counters);
        assert_eq!(parsed.metrics.gauges, data.metrics.gauges);
        assert_eq!(parsed.metrics.histograms, data.metrics.histograms);
        assert_eq!(parsed.dropped, data.dropped);
        // …and re-emitting reproduces the identical text (deterministic
        // escaping both ways).
        assert_eq!(jsonl::to_string(&parsed), text);
    }

    #[test]
    fn parse_rejects_garbage_and_unknown_records() {
        assert!(parse_jsonl("not json").is_err());
        assert!(parse_jsonl("{\"type\":\"elephant\"}").is_err());
        assert!(parse_jsonl("").unwrap().events.is_empty());
    }

    fn span(tracer: &Tracer, name: &'static str, ts: u64, fields: Vec<(&str, Field)>) {
        tracer.record_span(
            name,
            ts,
            Duration::from_nanos(100),
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string().into(), v))
                .collect(),
        );
    }

    #[test]
    fn correlate_links_acked_calls_to_server_spans_by_rid() {
        let client = Tracer::ring(64);
        let server = Tracer::ring(64);
        let rid = |s: &str| Field::Str(s.to_string());
        // Two acked reports, one with a WAL append; one failed call.
        span(
            &client,
            "gptune.serve.client.wal_append",
            5,
            vec![("rid", rid("aa"))],
        );
        span(
            &client,
            "gptune.serve.client.rpc",
            10,
            vec![
                ("op", Field::Str("report".into())),
                ("rid", rid("aa")),
                ("attempts", Field::U64(2)),
                ("ok", Field::Bool(true)),
            ],
        );
        span(
            &client,
            "gptune.serve.client.rpc",
            20,
            vec![
                ("op", Field::Str("suggest".into())),
                ("rid", rid("bb")),
                ("attempts", Field::U64(1)),
                ("ok", Field::Bool(true)),
            ],
        );
        span(
            &client,
            "gptune.serve.client.rpc",
            30,
            vec![
                ("op", Field::Str("report".into())),
                ("rid", rid("cc")),
                ("ok", Field::Bool(false)),
            ],
        );
        // Server saw "aa" (request + session work) but never "bb" or "cc".
        span(
            &server,
            "gptune.core.session.report",
            100,
            vec![("rid", rid("aa"))],
        );
        span(
            &server,
            "gptune.serve.request",
            110,
            vec![("op", Field::Str("report".into())), ("rid", rid("aa"))],
        );
        let report = correlate(&client.drain(), &server.drain());
        assert_eq!(report.acked, 2);
        assert_eq!(report.linked, 1);
        assert!((report.link_rate() - 0.5).abs() < 1e-12);
        assert_eq!(report.requests.len(), 3);
        let aa = &report.requests[0];
        assert_eq!(aa.rid, "aa");
        assert_eq!(aa.op, "report");
        assert_eq!(aa.attempts, 2);
        assert!(aa.acked && aa.wal_appended && aa.linked());
        assert_eq!(
            aa.server_spans,
            vec![
                "gptune.core.session.report".to_string(),
                "gptune.serve.request".to_string()
            ]
        );
        let bb = &report.requests[1];
        assert!(bb.acked && !bb.linked() && !bb.wal_appended);
        let cc = &report.requests[2];
        assert!(!cc.acked && !cc.linked());
        assert_eq!(cc.attempts, 1, "missing attempts field defaults to 1");
    }

    #[test]
    fn empty_traces_correlate_vacuously() {
        let r = correlate(&TraceData::default(), &TraceData::default());
        assert_eq!(r.acked, 0);
        assert_eq!(r.linked, 0);
        assert!((r.link_rate() - 1.0).abs() < 1e-12);
    }
}
