//! Random-forest regression — the surrogate behind the SuRf baseline.
//!
//! SuRf (Balaprakash, cited in paper Sec. 5) "uses random forests to model
//! the performance of an application and find its optimum", with a
//! particular strength on categorical parameters. This module implements
//! the substrate from scratch: CART regression trees (variance-reduction
//! splits), bootstrap aggregation with per-split feature subsampling, and
//! ensemble mean/variance prediction (the variance across trees serves as
//! the exploration signal).

use rand::Rng;

/// Configuration of a [`RandomForest`].
#[derive(Debug, Clone)]
pub struct ForestOptions {
    /// Number of trees.
    pub n_trees: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples required to split a node.
    pub min_split: usize,
    /// Features considered per split (`None` = ⌈dim/3⌉, the regression
    /// default).
    pub max_features: Option<usize>,
}

impl Default for ForestOptions {
    fn default() -> Self {
        ForestOptions {
            n_trees: 30,
            max_depth: 10,
            min_split: 4,
            max_features: None,
        }
    }
}

/// A node of a regression tree, stored in a flat arena.
#[derive(Debug, Clone)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        /// Arena index of the `< threshold` child.
        left: usize,
        /// Arena index of the `≥ threshold` child.
        right: usize,
    },
}

/// A single CART regression tree.
#[derive(Debug, Clone)]
pub struct RegressionTree {
    nodes: Vec<Node>,
}

impl RegressionTree {
    /// Fits a tree on the rows indexed by `idx`.
    fn fit(
        xs: &[Vec<f64>],
        ys: &[f64],
        idx: &[usize],
        opts: &ForestOptions,
        rng: &mut impl Rng,
    ) -> RegressionTree {
        let mut nodes = Vec::new();
        let mut tree = RegressionTree { nodes: Vec::new() };
        let root = Self::build(xs, ys, idx.to_vec(), 0, opts, rng, &mut nodes);
        debug_assert_eq!(root, 0);
        tree.nodes = nodes;
        tree
    }

    fn build(
        xs: &[Vec<f64>],
        ys: &[f64],
        idx: Vec<usize>,
        depth: usize,
        opts: &ForestOptions,
        rng: &mut impl Rng,
        nodes: &mut Vec<Node>,
    ) -> usize {
        let mean = idx.iter().map(|&i| ys[i]).sum::<f64>() / idx.len() as f64;
        let me = nodes.len();
        nodes.push(Node::Leaf { value: mean }); // placeholder

        if depth >= opts.max_depth || idx.len() < opts.min_split {
            return me;
        }

        let dim = xs[0].len();
        let k = opts
            .max_features
            .unwrap_or_else(|| dim.div_ceil(3))
            .clamp(1, dim);
        // Sample k distinct candidate features.
        let mut feats: Vec<usize> = (0..dim).collect();
        for i in 0..k {
            let j = rng.gen_range(i..dim);
            feats.swap(i, j);
        }
        let feats = &feats[..k];

        // Best split by weighted-variance (SSE) reduction.
        let parent_sse = sse(ys, &idx, mean);
        let mut best: Option<(f64, usize, f64)> = None; // (gain, feature, threshold)
        for &f in feats {
            let mut vals: Vec<f64> = idx.iter().map(|&i| xs[i][f]).collect();
            vals.sort_by(|a, b| a.total_cmp(b));
            vals.dedup();
            if vals.len() < 2 {
                continue;
            }
            // Candidate thresholds at midpoints (cap to 16 evenly spread).
            let step = (vals.len() - 1).div_ceil(16).max(1);
            for w in (0..vals.len() - 1).step_by(step) {
                let thr = 0.5 * (vals[w] + vals[w + 1]);
                let (mut nl, mut sl, mut nr, mut sr) = (0usize, 0.0, 0usize, 0.0);
                for &i in &idx {
                    if xs[i][f] < thr {
                        nl += 1;
                        sl += ys[i];
                    } else {
                        nr += 1;
                        sr += ys[i];
                    }
                }
                if nl == 0 || nr == 0 {
                    continue;
                }
                let ml = sl / nl as f64;
                let mr = sr / nr as f64;
                let child_sse: f64 = idx
                    .iter()
                    .map(|&i| {
                        let m = if xs[i][f] < thr { ml } else { mr };
                        (ys[i] - m) * (ys[i] - m)
                    })
                    .sum();
                let gain = parent_sse - child_sse;
                if gain > 1e-12 && best.as_ref().is_none_or(|(g, _, _)| gain > *g) {
                    best = Some((gain, f, thr));
                }
            }
        }

        let Some((_, feature, threshold)) = best else {
            return me;
        };
        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
            idx.iter().partition(|&&i| xs[i][feature] < threshold);
        let left = Self::build(xs, ys, left_idx, depth + 1, opts, rng, nodes);
        let right = Self::build(xs, ys, right_idx, depth + 1, opts, rng, nodes);
        nodes[me] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        me
    }

    /// Predicts the leaf mean for `x`.
    pub fn predict(&self, x: &[f64]) -> f64 {
        let mut cur = 0usize;
        loop {
            match &self.nodes[cur] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    cur = if x[*feature] < *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Number of nodes (diagnostics).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }
}

fn sse(ys: &[f64], idx: &[usize], mean: f64) -> f64 {
    idx.iter().map(|&i| (ys[i] - mean) * (ys[i] - mean)).sum()
}

/// A bagged ensemble of regression trees.
#[derive(Debug, Clone)]
pub struct RandomForest {
    trees: Vec<RegressionTree>,
}

impl RandomForest {
    /// Fits the forest. Non-finite targets are clamped to the worst finite
    /// value (failed application runs are "very slow", as in the tuners).
    ///
    /// # Panics
    /// Panics on empty or mismatched data, or when every target is
    /// non-finite.
    pub fn fit(
        xs: &[Vec<f64>],
        ys: &[f64],
        opts: &ForestOptions,
        rng: &mut impl Rng,
    ) -> RandomForest {
        assert!(!xs.is_empty(), "RandomForest::fit: empty data");
        assert_eq!(xs.len(), ys.len());
        let worst = ys
            .iter()
            .copied()
            .filter(|v| v.is_finite())
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            worst.is_finite(),
            "RandomForest::fit: all targets non-finite"
        );
        let cleaned: Vec<f64> = ys
            .iter()
            .map(|&v| if v.is_finite() { v } else { worst })
            .collect();

        let n = xs.len();
        let trees = (0..opts.n_trees.max(1))
            .map(|_| {
                // Bootstrap sample.
                let idx: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
                RegressionTree::fit(xs, &cleaned, &idx, opts, rng)
            })
            .collect();
        RandomForest { trees }
    }

    /// Ensemble mean and across-tree variance at `x`.
    pub fn predict(&self, x: &[f64]) -> (f64, f64) {
        let preds: Vec<f64> = self.trees.iter().map(|t| t.predict(x)).collect();
        let n = preds.len() as f64;
        let mean = preds.iter().sum::<f64>() / n;
        let var = preds.iter().map(|p| (p - mean) * (p - mean)).sum::<f64>() / n;
        (mean, var)
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn grid_data(f: impl Fn(f64, f64) -> f64, n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..n {
            for j in 0..n {
                let a = (i as f64 + 0.5) / n as f64;
                let b = (j as f64 + 0.5) / n as f64;
                xs.push(vec![a, b]);
                ys.push(f(a, b));
            }
        }
        (xs, ys)
    }

    #[test]
    fn fits_step_function_exactly() {
        // Trees excel at axis-aligned steps.
        let (xs, ys) = grid_data(|a, _| if a < 0.5 { 1.0 } else { 5.0 }, 8);
        let mut rng = StdRng::seed_from_u64(1);
        let forest = RandomForest::fit(&xs, &ys, &ForestOptions::default(), &mut rng);
        let (lo, _) = forest.predict(&[0.2, 0.5]);
        let (hi, _) = forest.predict(&[0.8, 0.5]);
        assert!((lo - 1.0).abs() < 0.3, "lo {lo}");
        assert!((hi - 5.0).abs() < 0.3, "hi {hi}");
    }

    #[test]
    fn approximates_smooth_function() {
        let (xs, ys) = grid_data(|a, b| (a - 0.3).powi(2) + (b - 0.7).powi(2), 10);
        let mut rng = StdRng::seed_from_u64(2);
        let forest = RandomForest::fit(&xs, &ys, &ForestOptions::default(), &mut rng);
        let mut err = 0.0;
        for i in 0..20 {
            let a = (i as f64 + 0.5) / 20.0;
            let (p, _) = forest.predict(&[a, a]);
            let truth = (a - 0.3).powi(2) + (a - 0.7).powi(2);
            err += (p - truth).abs();
        }
        assert!(err / 20.0 < 0.05, "mean abs err {}", err / 20.0);
    }

    #[test]
    fn variance_higher_near_decision_boundary() {
        // Bootstrap resampling moves each tree's split threshold slightly,
        // so ensemble disagreement concentrates near the discontinuity and
        // vanishes deep inside the flat regions.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..60 {
            let a = (i as f64 + 0.5) / 60.0;
            xs.push(vec![a]);
            ys.push(if a < 0.5 { 0.0 } else { 10.0 });
        }
        let mut rng = StdRng::seed_from_u64(3);
        let forest = RandomForest::fit(&xs, &ys, &ForestOptions::default(), &mut rng);
        let (_, v_boundary) = forest.predict(&[0.5]);
        let (_, v_flat) = forest.predict(&[0.1]);
        assert!(v_boundary >= v_flat, "boundary {v_boundary} flat {v_flat}");
        assert!(v_flat < 1.0, "flat region should be near-certain: {v_flat}");
    }

    #[test]
    fn handles_constant_targets() {
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 / 10.0]).collect();
        let ys = vec![2.5; 10];
        let mut rng = StdRng::seed_from_u64(4);
        let forest = RandomForest::fit(&xs, &ys, &ForestOptions::default(), &mut rng);
        let (m, v) = forest.predict(&[0.5]);
        assert_eq!(m, 2.5);
        assert_eq!(v, 0.0);
    }

    #[test]
    fn non_finite_targets_clamped() {
        let xs: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64 / 8.0]).collect();
        let mut ys: Vec<f64> = (0..8).map(|i| i as f64).collect();
        ys[3] = f64::INFINITY;
        let mut rng = StdRng::seed_from_u64(5);
        let forest = RandomForest::fit(&xs, &ys, &ForestOptions::default(), &mut rng);
        let (m, _) = forest.predict(&[0.99]);
        assert!(m.is_finite());
    }

    #[test]
    #[should_panic]
    fn all_non_finite_rejected() {
        let mut rng = StdRng::seed_from_u64(6);
        let _ = RandomForest::fit(
            &[vec![0.1]],
            &[f64::NAN],
            &ForestOptions::default(),
            &mut rng,
        );
    }

    #[test]
    fn depth_limit_respected() {
        let (xs, ys) = grid_data(|a, b| a * 7.0 + b, 8);
        let mut rng = StdRng::seed_from_u64(7);
        let opts = ForestOptions {
            n_trees: 1,
            max_depth: 2,
            min_split: 2,
            max_features: Some(2),
        };
        let forest = RandomForest::fit(&xs, &ys, &opts, &mut rng);
        // Depth-2 binary tree has at most 7 nodes.
        assert!(forest.trees[0].n_nodes() <= 7);
    }
}
