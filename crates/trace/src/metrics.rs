//! The metrics registry: counters, gauges, log2-bucketed histograms.
//!
//! All updates are relaxed atomics; registration (name → handle lookup)
//! takes a registry mutex, so callers fetch a handle once and reuse it in
//! loops. Names follow the `gptune.<crate>.<name>` scheme documented in
//! DESIGN.md §9. Maps are `BTreeMap` so snapshots are deterministically
//! ordered.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Number of log2 histogram buckets; bucket `i` covers values with `i`
/// significant bits (`[2^(i-1), 2^i)`), bucket 0 holds zeros, the last
/// bucket absorbs everything larger.
pub const N_BUCKETS: usize = 64;

/// A log2-bucketed histogram of u64 samples (typically nanoseconds).
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; N_BUCKETS],
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn record(&self, v: u64) {
        let bits = (u64::BITS - v.leading_zeros()) as usize;
        let idx = bits.min(N_BUCKETS - 1);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        if let Some(b) = self.buckets.get(idx) {
            b.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then_some((i as u32, n))
                })
                .collect(),
        }
    }
}

/// Point-in-time view of one histogram: total count/sum plus the
/// non-empty `(bucket_index, count)` pairs. Bucket `i > 0` covers
/// `[2^(i-1), 2^i)`; bucket 0 holds exact zeros.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Arithmetic mean of the recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate `q`-quantile (`q ∈ [0, 1]`) from the log2 buckets:
    /// the upper bound of the bucket holding the `⌈q·count⌉`-th smallest
    /// sample. Exact for zeros; otherwise conservative by at most 2×
    /// (the bucket width). Returns 0 when the histogram is empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(i, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return match i as usize {
                    0 => 0,
                    b if b >= N_BUCKETS - 1 => u64::MAX,
                    b => (1u64 << b) - 1,
                };
            }
        }
        u64::MAX
    }

    /// Median (`quantile(0.5)`).
    pub fn p50(&self) -> u64 {
        self.quantile(0.5)
    }

    /// 99th percentile (`quantile(0.99)`).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

/// Point-in-time view of every registered metric, deterministically
/// ordered by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, f64)>,
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Value of a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Value of a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Histogram snapshot by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }
}

pub(crate) struct Registry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    pub(crate) fn new() -> Self {
        Registry {
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
        }
    }

    pub(crate) fn counter(&self, name: &str) -> CounterHandle {
        let mut map = self.counters.lock();
        let cell = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)));
        CounterHandle(Some(Arc::clone(cell)))
    }

    pub(crate) fn gauge(&self, name: &str) -> GaugeHandle {
        let mut map = self.gauges.lock();
        let cell = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0f64.to_bits())));
        GaugeHandle(Some(Arc::clone(cell)))
    }

    pub(crate) fn histogram(&self, name: &str) -> HistogramHandle {
        let mut map = self.histograms.lock();
        let cell = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::new()));
        HistogramHandle(Some(Arc::clone(cell)))
    }

    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .iter()
                .map(|(n, v)| (n.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .iter()
                .map(|(n, v)| (n.clone(), f64::from_bits(v.load(Ordering::Relaxed))))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .iter()
                .map(|(n, h)| (n.clone(), h.snapshot()))
                .collect(),
        }
    }
}

/// Monotonic counter handle; a disabled handle (from a disabled tracer)
/// is a no-op.
#[derive(Debug, Clone, Default)]
pub struct CounterHandle(pub(crate) Option<Arc<AtomicU64>>);

impl CounterHandle {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }
}

/// f64 gauge handle (value stored as bits in an atomic); disabled handles
/// are no-ops.
#[derive(Debug, Clone, Default)]
pub struct GaugeHandle(pub(crate) Option<Arc<AtomicU64>>);

impl GaugeHandle {
    /// Overwrites the gauge value.
    pub fn set(&self, v: f64) {
        if let Some(g) = &self.0 {
            g.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Adds `delta` (CAS loop; lock-free).
    pub fn add(&self, delta: f64) {
        if let Some(g) = &self.0 {
            let mut cur = g.load(Ordering::Relaxed);
            loop {
                let next = (f64::from_bits(cur) + delta).to_bits();
                match g.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                    Ok(_) => break,
                    Err(actual) => cur = actual,
                }
            }
        }
    }
}

/// Histogram handle; disabled handles are no-ops.
#[derive(Debug, Clone, Default)]
pub struct HistogramHandle(pub(crate) Option<Arc<Histogram>>);

impl HistogramHandle {
    /// Records one sample.
    pub fn record(&self, v: u64) {
        if let Some(h) = &self.0 {
            h.record(v);
        }
    }

    /// Records a duration as nanoseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let r = Registry::new();
        let c = r.counter("gptune.test.jobs");
        c.inc();
        c.add(4);
        // Second lookup hits the same atomic.
        r.counter("gptune.test.jobs").inc();
        let g = r.gauge("gptune.test.level");
        g.set(1.5);
        g.add(0.25);
        let s = r.snapshot();
        assert_eq!(s.counter("gptune.test.jobs"), Some(6));
        assert!((s.gauge("gptune.test.level").unwrap() - 1.75).abs() < 1e-12);
        assert_eq!(s.counter("missing"), None);
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let r = Registry::new();
        let h = r.histogram("gptune.test.latency");
        h.record(0); // bucket 0
        h.record(1); // bucket 1: [1,2)
        h.record(3); // bucket 2: [2,4)
        h.record(3);
        h.record(1000); // bucket 10: [512,1024)
        let s = r.snapshot();
        let hs = s.histogram("gptune.test.latency").unwrap();
        assert_eq!(hs.count, 5);
        assert_eq!(hs.sum, 1007);
        assert_eq!(hs.buckets, vec![(0, 1), (1, 1), (2, 2), (10, 1)]);
        assert!((hs.mean() - 201.4).abs() < 1e-9);
    }

    #[test]
    fn quantiles_from_log2_buckets() {
        let r = Registry::new();
        let h = r.histogram("q");
        // 90 small samples in bucket 3 ([4,8)), 10 big in bucket 10.
        for _ in 0..90 {
            h.record(5);
        }
        for _ in 0..10 {
            h.record(1000);
        }
        let s = r.snapshot();
        let hs = s.histogram("q").unwrap();
        assert_eq!(hs.p50(), 7, "median falls in the [4,8) bucket");
        assert_eq!(hs.quantile(0.9), 7);
        assert_eq!(hs.p99(), 1023, "tail falls in the [512,1024) bucket");
        assert_eq!(hs.quantile(1.0), 1023);
        assert_eq!(hs.quantile(0.0), 7, "rank clamps to the first sample");
    }

    #[test]
    fn quantile_edge_cases() {
        let empty = HistogramSnapshot::default();
        assert_eq!(empty.quantile(0.5), 0);
        let r = Registry::new();
        let h = r.histogram("z");
        h.record(0);
        h.record(u64::MAX);
        let s = r.snapshot();
        let hs = s.histogram("z").unwrap();
        assert_eq!(hs.p50(), 0, "zeros are exact");
        assert_eq!(hs.quantile(1.0), u64::MAX, "overflow bucket saturates");
    }

    #[test]
    fn histogram_extreme_values_stay_in_range() {
        let r = Registry::new();
        let h = r.histogram("x");
        h.record(u64::MAX);
        let s = r.snapshot();
        let hs = s.histogram("x").unwrap();
        assert_eq!(hs.count, 1);
        assert_eq!(hs.buckets.len(), 1);
        assert_eq!(hs.buckets[0].0, (N_BUCKETS - 1) as u32);
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        let r = std::sync::Arc::new(Registry::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let r = std::sync::Arc::clone(&r);
            handles.push(std::thread::spawn(move || {
                let c = r.counter("n");
                let g = r.gauge("sum");
                let h = r.histogram("lat");
                for i in 0..1000u64 {
                    c.inc();
                    g.add(0.5);
                    h.record(i);
                }
            }));
        }
        for t in handles {
            t.join().unwrap();
        }
        let s = r.snapshot();
        assert_eq!(s.counter("n"), Some(8000));
        assert!((s.gauge("sum").unwrap() - 4000.0).abs() < 1e-9);
        assert_eq!(s.histogram("lat").unwrap().count, 8000);
    }
}
