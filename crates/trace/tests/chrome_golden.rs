//! Chrome exporter coverage: a byte-exact golden test over a synthetic
//! deterministic trace, and a live-tracer round-trip validated as
//! trace-event JSON (ph/ts/dur/pid/tid fields on every event).

use gptune_trace::tracer::{Event, EventKind, Field, TraceData, Tracer};
use std::time::Duration;

fn span(
    name: &'static str,
    ts_ns: u64,
    dur_ns: u64,
    track: u64,
    fields: Vec<(&'static str, Field)>,
) -> Event {
    Event {
        name: name.into(),
        kind: EventKind::Span { dur_ns },
        ts_ns,
        track,
        fields: fields.into_iter().map(|(k, v)| (k.into(), v)).collect(),
    }
}

fn instant(name: &'static str, ts_ns: u64, track: u64) -> Event {
    Event {
        name: name.into(),
        kind: EventKind::Instant,
        ts_ns,
        track,
        fields: Vec::new(),
    }
}

/// A synthetic two-track trace exercising spans, instants, args, and the
/// synthetic master-phase tracks. Fully deterministic.
fn synthetic() -> TraceData {
    TraceData {
        events: vec![
            span(
                "gptune.core.modeling",
                1_000,
                500_000,
                1,
                vec![("iteration", Field::U64(0))],
            ),
            span(
                "gptune.runtime.job",
                2_500,
                300_000,
                2,
                vec![("job", Field::U64(0)), ("attempt", Field::U64(0))],
            ),
            instant("gptune.runtime.retry", 150_000, 2),
            span(
                "gptune.core.search",
                600_000,
                200_123,
                1,
                vec![("iteration", Field::U64(0))],
            ),
        ],
        tracks: vec![
            (1, "master".to_string()),
            (2, "gptune-worker-0".to_string()),
        ],
        dropped: 0,
        metrics: Default::default(),
    }
}

#[test]
fn golden_chrome_export() {
    let json = gptune_trace::chrome::export(&synthetic());
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/chrome_synthetic.json"
    );
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(golden_path, &json).unwrap();
    }
    let golden = std::fs::read_to_string(golden_path)
        .expect("golden file missing; regenerate with UPDATE_GOLDEN=1 cargo test -p gptune-trace");
    assert_eq!(json, golden, "Chrome export drifted from golden file");
    // The golden output must itself be valid JSON of the expected shape.
    let v: serde_json::Value = json.parse().unwrap();
    let events = v["traceEvents"].as_array().unwrap();
    // 2 thread_name + 2 phase-track metadata + 4 events.
    assert_eq!(events.len(), 8);
}

#[test]
fn live_trace_round_trips_to_valid_trace_event_json() {
    let t = Tracer::ring(256);
    {
        let _outer = t.span("gptune.test.outer").with("n", 2usize);
        t.instant("gptune.test.fault").with("job", 1u64).emit();
        std::thread::sleep(Duration::from_millis(2));
    }
    let t2 = t.clone();
    std::thread::Builder::new()
        .name("gptune-worker-7".into())
        .spawn(move || {
            let _s = t2.span("gptune.test.job").with("attempt", 0u64);
            std::thread::sleep(Duration::from_millis(1));
        })
        .unwrap()
        .join()
        .unwrap();

    let data = t.drain();
    let json = gptune_trace::chrome::export(&data);
    let v: serde_json::Value = json.parse().expect("exporter must emit valid JSON");
    let events = v["traceEvents"].as_array().unwrap();
    assert!(!events.is_empty());

    let mut named_tids = Vec::new();
    for ev in events {
        let ph = ev["ph"].as_str().unwrap();
        assert!(ev["pid"].is_u64(), "every event carries pid: {ev}");
        assert!(ev["tid"].is_u64(), "every event carries tid: {ev}");
        match ph {
            "M" => {
                assert_eq!(ev["name"], "thread_name");
                named_tids.push(ev["tid"].as_u64().unwrap());
            }
            "X" => {
                assert!(ev["ts"].is_number(), "complete event has ts: {ev}");
                assert!(ev["dur"].is_number(), "complete event has dur: {ev}");
            }
            "i" => {
                assert!(ev["ts"].is_number());
                assert_eq!(ev["s"], "t");
            }
            other => panic!("unexpected phase {other}"),
        }
    }
    // Every tid that carries events has thread_name metadata.
    for ev in events {
        if ev["ph"] != "M" {
            let tid = ev["tid"].as_u64().unwrap();
            assert!(named_tids.contains(&tid), "tid {tid} missing thread_name");
        }
    }
    // The worker thread shows up as its own named track.
    let has_worker = events
        .iter()
        .any(|ev| ev["ph"] == "M" && ev["args"]["name"].as_str() == Some("gptune-worker-7"));
    assert!(has_worker, "worker thread must be a named track");
}
