//! The tuning-problem abstraction (paper Sec. 2).

use gptune_space::{Config, Space, Value};
use std::sync::Arc;

/// Type of the black-box objective: `(task, config, seed) → γ outputs`.
pub type ObjectiveFn = Arc<dyn Fn(&[Value], &[Value], u64) -> Vec<f64> + Send + Sync>;

/// Type of the optional coarse performance model: `(task, config) → ỹ(t,x)`
/// feature vector of dimension `γ̃` (paper Sec. 3.3).
pub type ModelFn = Arc<dyn Fn(&[Value], &[Value]) -> Vec<f64> + Send + Sync>;

/// A complete tuning problem: the spaces `IS`/`PS`/`OS`, the selected tasks
/// `T ∈ IS^δ`, the objective, and the optional performance model `MS`.
#[derive(Clone)]
pub struct TuningProblem {
    /// Problem name (used in logs and the history DB).
    pub name: String,
    /// Task parameter space `IS`.
    pub task_space: Space,
    /// Tuning parameter space `PS` (with constraints).
    pub tuning_space: Space,
    /// The `δ` tasks under consideration.
    pub tasks: Vec<Config>,
    /// Output-space dimension `γ`.
    pub n_objectives: usize,
    /// Black-box objective.
    pub objective: ObjectiveFn,
    /// Optional coarse performance model (`γ̃`-dimensional features).
    pub model: Option<ModelFn>,
}

impl TuningProblem {
    /// Builds a single-objective problem from closures.
    pub fn new(
        name: impl Into<String>,
        task_space: Space,
        tuning_space: Space,
        tasks: Vec<Config>,
        objective: impl Fn(&[Value], &[Value], u64) -> Vec<f64> + Send + Sync + 'static,
    ) -> TuningProblem {
        let tasks_ok = tasks.iter().all(|t| t.len() == task_space.dim());
        assert!(tasks_ok, "TuningProblem: task arity mismatch");
        assert!(!tasks.is_empty(), "TuningProblem: need at least one task");
        TuningProblem {
            name: name.into(),
            task_space,
            tuning_space,
            tasks,
            n_objectives: 1,
            objective: Arc::new(objective),
            model: None,
        }
    }

    /// Sets the number of objectives `γ`.
    pub fn with_objectives(mut self, n: usize) -> Self {
        assert!(n >= 1);
        self.n_objectives = n;
        self
    }

    /// Attaches a coarse performance model.
    pub fn with_model(
        mut self,
        model: impl Fn(&[Value], &[Value]) -> Vec<f64> + Send + Sync + 'static,
    ) -> Self {
        self.model = Some(Arc::new(model));
        self
    }

    /// Number of tasks `δ`.
    pub fn n_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Tuning-space dimension `β`.
    pub fn beta(&self) -> usize {
        self.tuning_space.dim()
    }

    /// Evaluates the objective for task index `i`.
    pub fn evaluate(&self, task_idx: usize, config: &[Value], seed: u64) -> Vec<f64> {
        let out = (self.objective)(&self.tasks[task_idx], config, seed);
        assert_eq!(
            out.len(),
            self.n_objectives,
            "objective returned {} values, expected {}",
            out.len(),
            self.n_objectives
        );
        out
    }

    /// Evaluates the performance model for task index `i`, if present.
    pub fn model_features(&self, task_idx: usize, config: &[Value]) -> Option<Vec<f64>> {
        self.model
            .as_ref()
            .map(|m| m(&self.tasks[task_idx], config))
    }

    /// Normalized coordinates of a task (used when the surrogate needs task
    /// features; MLA itself indexes tasks discretely).
    pub fn normalize_task(&self, task_idx: usize) -> Vec<f64> {
        self.task_space.normalize(&self.tasks[task_idx])
    }
}

impl std::fmt::Debug for TuningProblem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TuningProblem")
            .field("name", &self.name)
            .field("n_tasks", &self.n_tasks())
            .field("beta", &self.beta())
            .field("n_objectives", &self.n_objectives)
            .field("has_model", &self.model.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gptune_space::Param;

    fn toy() -> TuningProblem {
        let ts = Space::builder().param(Param::real("t", 0.0, 1.0)).build();
        let ps = Space::builder().param(Param::real("x", 0.0, 1.0)).build();
        TuningProblem::new(
            "toy",
            ts,
            ps,
            vec![vec![Value::Real(0.0)], vec![Value::Real(1.0)]],
            |t, x, _| vec![(t[0].as_real() - x[0].as_real()).abs()],
        )
    }

    #[test]
    fn basic_accessors() {
        let p = toy();
        assert_eq!(p.n_tasks(), 2);
        assert_eq!(p.beta(), 1);
        assert_eq!(p.n_objectives, 1);
        assert!(p.model.is_none());
    }

    #[test]
    fn evaluate_routes_task() {
        let p = toy();
        let y0 = p.evaluate(0, &[Value::Real(0.25)], 0);
        let y1 = p.evaluate(1, &[Value::Real(0.25)], 0);
        assert!((y0[0] - 0.25).abs() < 1e-15);
        assert!((y1[0] - 0.75).abs() < 1e-15);
    }

    #[test]
    fn with_model_attaches_features() {
        let p = toy().with_model(|_, x| vec![x[0].as_real() * 2.0]);
        let f = p.model_features(0, &[Value::Real(0.3)]).unwrap();
        assert!((f[0] - 0.6).abs() < 1e-15);
    }

    #[test]
    #[should_panic]
    fn wrong_objective_arity_panics() {
        let p = toy().with_objectives(2);
        let _ = p.evaluate(0, &[Value::Real(0.5)], 0);
    }

    #[test]
    #[should_panic]
    fn task_arity_mismatch_panics() {
        let ts = Space::builder().param(Param::real("t", 0.0, 1.0)).build();
        let ps = Space::builder().param(Param::real("x", 0.0, 1.0)).build();
        let _ = TuningProblem::new("bad", ts, ps, vec![vec![]], |_, _, _| vec![0.0]);
    }
}
