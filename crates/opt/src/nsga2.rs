//! NSGA-II: the non-dominated sorting genetic algorithm of Deb et al.,
//! used by GPTune's multi-objective search phase (paper Sec. 3.2).
//!
//! Operates on the unit hypercube with real-coded individuals, simulated
//! binary crossover (SBX), polynomial mutation, fast non-dominated sorting,
//! and crowding-distance selection — the standard configuration the paper
//! cites ([5] Deb et al. 2002).

use rand::Rng;

/// NSGA-II configuration.
#[derive(Debug, Clone)]
pub struct Nsga2Options {
    /// Population size (kept even).
    pub population: usize,
    /// Number of generations.
    pub generations: usize,
    /// SBX crossover probability.
    pub crossover_prob: f64,
    /// SBX distribution index η_c.
    pub eta_crossover: f64,
    /// Per-gene mutation probability (defaults to 1/dim when `None`).
    pub mutation_prob: Option<f64>,
    /// Polynomial-mutation distribution index η_m.
    pub eta_mutation: f64,
}

impl Default for Nsga2Options {
    fn default() -> Self {
        Nsga2Options {
            population: 60,
            generations: 60,
            crossover_prob: 0.9,
            eta_crossover: 15.0,
            mutation_prob: None,
            eta_mutation: 20.0,
        }
    }
}

/// One individual of the final population.
#[derive(Debug, Clone)]
pub struct MoSolution {
    /// Decision vector in `[0,1]^dim`.
    pub x: Vec<f64>,
    /// Objective vector (all minimized).
    pub objectives: Vec<f64>,
}

/// `true` iff `a` Pareto-dominates `b` (all objectives ≤, at least one <).
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut strictly = false;
    for (x, y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strictly = true;
        }
    }
    strictly
}

/// Fast non-dominated sort: returns fronts of indices, best (rank 0) first.
pub fn non_dominated_sort(objs: &[Vec<f64>]) -> Vec<Vec<usize>> {
    let n = objs.len();
    let mut domination_count = vec![0usize; n];
    let mut dominated: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut fronts: Vec<Vec<usize>> = vec![Vec::new()];
    for i in 0..n {
        for j in (i + 1)..n {
            if dominates(&objs[i], &objs[j]) {
                dominated[i].push(j);
                domination_count[j] += 1;
            } else if dominates(&objs[j], &objs[i]) {
                dominated[j].push(i);
                domination_count[i] += 1;
            }
        }
        if domination_count[i] == 0 {
            fronts[0].push(i);
        }
    }
    let mut k = 0;
    while !fronts[k].is_empty() {
        let mut next = Vec::new();
        for &i in &fronts[k] {
            for &j in &dominated[i] {
                domination_count[j] -= 1;
                if domination_count[j] == 0 {
                    next.push(j);
                }
            }
        }
        fronts.push(next);
        k += 1;
    }
    fronts.pop(); // last front is empty
    fronts
}

/// Crowding distance of each member of a front (index-aligned with `front`).
pub fn crowding_distance(objs: &[Vec<f64>], front: &[usize]) -> Vec<f64> {
    let nf = front.len();
    let mut dist = vec![0.0_f64; nf];
    if nf == 0 {
        return dist;
    }
    let m = objs[front[0]].len();
    for obj in 0..m {
        let mut order: Vec<usize> = (0..nf).collect();
        order.sort_by(|&a, &b| objs[front[a]][obj].total_cmp(&objs[front[b]][obj]));
        let fmin = objs[front[order[0]]][obj];
        let fmax = objs[front[order[nf - 1]]][obj];
        dist[order[0]] = f64::INFINITY;
        dist[order[nf - 1]] = f64::INFINITY;
        let span = fmax - fmin;
        if span <= 0.0 {
            continue;
        }
        for w in 1..nf - 1 {
            let lo = objs[front[order[w - 1]]][obj];
            let hi = objs[front[order[w + 1]]][obj];
            dist[order[w]] += (hi - lo) / span;
        }
    }
    dist
}

/// Extracts the non-dominated subset of a set of objective vectors,
/// returning indices into the input.
pub fn pareto_front_indices(objs: &[Vec<f64>]) -> Vec<usize> {
    if objs.is_empty() {
        return Vec::new();
    }
    non_dominated_sort(objs).remove(0)
}

/// Minimizes a vector objective over `[0,1]^dim`; returns the final
/// first-front (the approximated Pareto set).
///
/// `seeds` injects known points into the initial population (GPTune seeds
/// the multi-objective search with the evaluated samples).
pub fn minimize(
    f: &mut dyn FnMut(&[f64]) -> Vec<f64>,
    dim: usize,
    n_obj: usize,
    seeds: &[Vec<f64>],
    opts: &Nsga2Options,
    rng: &mut impl Rng,
) -> Vec<MoSolution> {
    let mut batch = |xs: &[Vec<f64>]| -> Vec<Vec<f64>> { xs.iter().map(|x| f(x)).collect() };
    minimize_batch(&mut batch, dim, n_obj, seeds, opts, rng)
}

/// Batched-evaluation variant of [`minimize`]: `f` receives a whole
/// population and returns one objective vector per member, in order.
///
/// NSGA-II already evaluates population-at-a-time, so the evolutionary
/// trajectory is *identical* to [`minimize`] — the batch signature just
/// lets the caller score each generation through one blocked batched GP
/// prediction instead of per-individual solves.
pub fn minimize_batch(
    f: &mut dyn FnMut(&[Vec<f64>]) -> Vec<Vec<f64>>,
    dim: usize,
    n_obj: usize,
    seeds: &[Vec<f64>],
    opts: &Nsga2Options,
    rng: &mut impl Rng,
) -> Vec<MoSolution> {
    assert!(dim > 0 && n_obj > 0);
    let pop_size = (opts.population.max(4) + 1) & !1; // even, ≥ 4
    let pm = opts.mutation_prob.unwrap_or(1.0 / dim as f64);

    let mut eval_pop = |xs: &[Vec<f64>]| -> Vec<Vec<f64>> {
        let objs = f(xs);
        assert_eq!(objs.len(), xs.len(), "nsga2: batch arity mismatch");
        objs.into_iter()
            .map(|mut o| {
                assert_eq!(o.len(), n_obj, "nsga2: objective arity mismatch");
                for v in &mut o {
                    if v.is_nan() {
                        *v = f64::INFINITY;
                    }
                }
                o
            })
            .collect()
    };

    // Initial population: seeds first, then uniform random.
    let mut pop: Vec<Vec<f64>> = seeds
        .iter()
        .take(pop_size)
        .map(|s| {
            let mut p = s.clone();
            crate::clamp_unit(&mut p);
            p
        })
        .collect();
    while pop.len() < pop_size {
        pop.push((0..dim).map(|_| rng.gen::<f64>()).collect());
    }
    let mut objs: Vec<Vec<f64>> = eval_pop(&pop);

    for _gen in 0..opts.generations {
        // Rank + crowding for parent selection.
        let fronts = non_dominated_sort(&objs);
        let mut rank = vec![0usize; pop.len()];
        let mut crowd = vec![0.0f64; pop.len()];
        for (r, front) in fronts.iter().enumerate() {
            let cd = crowding_distance(&objs, front);
            for (k, &i) in front.iter().enumerate() {
                rank[i] = r;
                crowd[i] = cd[k];
            }
        }
        let tournament = |rng: &mut dyn rand::RngCore, rank: &[usize], crowd: &[f64]| -> usize {
            let a = (rng.next_u64() % pop_size as u64) as usize;
            let b = (rng.next_u64() % pop_size as u64) as usize;
            if rank[a] < rank[b] || (rank[a] == rank[b] && crowd[a] > crowd[b]) {
                a
            } else {
                b
            }
        };

        // Offspring.
        let mut children: Vec<Vec<f64>> = Vec::with_capacity(pop_size);
        while children.len() < pop_size {
            let pa = tournament(rng, &rank, &crowd);
            let pb = tournament(rng, &rank, &crowd);
            let (mut c1, mut c2) = sbx_crossover(
                &pop[pa],
                &pop[pb],
                opts.crossover_prob,
                opts.eta_crossover,
                rng,
            );
            polynomial_mutation(&mut c1, pm, opts.eta_mutation, rng);
            polynomial_mutation(&mut c2, pm, opts.eta_mutation, rng);
            children.push(c1);
            if children.len() < pop_size {
                children.push(c2);
            }
        }
        let child_objs: Vec<Vec<f64>> = eval_pop(&children);

        // Environmental selection on the combined population.
        pop.extend(children);
        objs.extend(child_objs);
        let fronts = non_dominated_sort(&objs);
        let mut keep: Vec<usize> = Vec::with_capacity(pop_size);
        for front in &fronts {
            if keep.len() + front.len() <= pop_size {
                keep.extend_from_slice(front);
            } else {
                let cd = crowding_distance(&objs, front);
                let mut order: Vec<usize> = (0..front.len()).collect();
                order.sort_by(|&a, &b| cd[b].total_cmp(&cd[a]));
                for &k in order.iter().take(pop_size - keep.len()) {
                    keep.push(front[k]);
                }
                break;
            }
        }
        let mut new_pop = Vec::with_capacity(pop_size);
        let mut new_objs = Vec::with_capacity(pop_size);
        for &i in &keep {
            new_pop.push(pop[i].clone());
            new_objs.push(objs[i].clone());
        }
        pop = new_pop;
        objs = new_objs;
    }

    // Return the first front of the final population.
    let first = non_dominated_sort(&objs).remove(0);
    first
        .into_iter()
        .map(|i| MoSolution {
            x: pop[i].clone(),
            objectives: objs[i].clone(),
        })
        .collect()
}

/// Simulated binary crossover producing two children clipped to `[0,1]`.
fn sbx_crossover(
    a: &[f64],
    b: &[f64],
    prob: f64,
    eta: f64,
    rng: &mut impl Rng,
) -> (Vec<f64>, Vec<f64>) {
    let mut c1 = a.to_vec();
    let mut c2 = b.to_vec();
    if rng.gen::<f64>() > prob {
        return (c1, c2);
    }
    for d in 0..a.len() {
        if rng.gen::<f64>() > 0.5 {
            continue;
        }
        let (x1, x2) = (a[d], b[d]);
        if (x1 - x2).abs() < 1e-14 {
            continue;
        }
        let u: f64 = rng.gen();
        let beta = if u <= 0.5 {
            (2.0 * u).powf(1.0 / (eta + 1.0))
        } else {
            (1.0 / (2.0 * (1.0 - u))).powf(1.0 / (eta + 1.0))
        };
        c1[d] = (0.5 * ((1.0 + beta) * x1 + (1.0 - beta) * x2)).clamp(0.0, 1.0);
        c2[d] = (0.5 * ((1.0 - beta) * x1 + (1.0 + beta) * x2)).clamp(0.0, 1.0);
    }
    (c1, c2)
}

/// Polynomial mutation on `[0,1]` genes.
fn polynomial_mutation(x: &mut [f64], prob: f64, eta: f64, rng: &mut impl Rng) {
    for v in x.iter_mut() {
        if rng.gen::<f64>() > prob {
            continue;
        }
        let u: f64 = rng.gen();
        let delta = if u < 0.5 {
            (2.0 * u).powf(1.0 / (eta + 1.0)) - 1.0
        } else {
            1.0 - (2.0 * (1.0 - u)).powf(1.0 / (eta + 1.0))
        };
        *v = (*v + delta).clamp(0.0, 1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dominance_relation() {
        assert!(dominates(&[1.0, 2.0], &[2.0, 3.0]));
        assert!(dominates(&[1.0, 3.0], &[2.0, 3.0]));
        assert!(!dominates(&[1.0, 4.0], &[2.0, 3.0]));
        assert!(!dominates(&[1.0, 2.0], &[1.0, 2.0])); // equal: no strict improvement
        assert!(!dominates(&[2.0, 3.0], &[1.0, 2.0]));
    }

    #[test]
    fn sort_produces_correct_fronts() {
        let objs = vec![
            vec![1.0, 1.0], // front 0
            vec![2.0, 2.0], // front 1 (dominated by 0)
            vec![0.5, 3.0], // front 0 (trade-off with 0)
            vec![3.0, 3.0], // front 2
        ];
        let fronts = non_dominated_sort(&objs);
        assert_eq!(fronts.len(), 3);
        let mut f0 = fronts[0].clone();
        f0.sort_unstable();
        assert_eq!(f0, vec![0, 2]);
        assert_eq!(fronts[1], vec![1]);
        assert_eq!(fronts[2], vec![3]);
    }

    #[test]
    fn sort_is_partition() {
        // Fronts partition the index set.
        let objs: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![(i % 5) as f64, (i / 5) as f64, ((i * 7) % 3) as f64])
            .collect();
        let fronts = non_dominated_sort(&objs);
        let mut all: Vec<usize> = fronts.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn crowding_boundary_infinite() {
        let objs = vec![
            vec![0.0, 4.0],
            vec![1.0, 2.0],
            vec![2.0, 1.0],
            vec![4.0, 0.0],
        ];
        let front = vec![0, 1, 2, 3];
        let cd = crowding_distance(&objs, &front);
        assert!(cd[0].is_infinite());
        assert!(cd[3].is_infinite());
        assert!(cd[1].is_finite() && cd[1] > 0.0);
        assert!(cd[2].is_finite() && cd[2] > 0.0);
    }

    #[test]
    fn crowding_constant_objective_no_nan() {
        let objs = vec![vec![1.0, 5.0], vec![1.0, 5.0], vec![1.0, 5.0]];
        let cd = crowding_distance(&objs, &[0, 1, 2]);
        assert!(cd.iter().all(|v| !v.is_nan()));
    }

    /// The classic ZDT1-like convex bi-objective problem on [0,1]^d:
    /// f1 = x0, f2 = g(x) * (1 − sqrt(x0 / g)), Pareto front at x1..=0.
    fn zdt1(x: &[f64]) -> Vec<f64> {
        let f1 = x[0];
        let g = 1.0 + 9.0 * x[1..].iter().sum::<f64>() / (x.len() - 1) as f64;
        let f2 = g * (1.0 - (f1 / g).sqrt());
        vec![f1, f2]
    }

    #[test]
    fn zdt1_front_approximated() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut f = zdt1;
        let front = minimize(
            &mut f,
            6,
            2,
            &[],
            &Nsga2Options {
                population: 80,
                generations: 120,
                ..Default::default()
            },
            &mut rng,
        );
        assert!(front.len() >= 10, "front size {}", front.len());
        // On the true front f2 = 1 − sqrt(f1); check mean deviation is small.
        let mean_dev: f64 = front
            .iter()
            .map(|s| (s.objectives[1] - (1.0 - s.objectives[0].sqrt())).abs())
            .sum::<f64>()
            / front.len() as f64;
        assert!(mean_dev < 0.08, "mean deviation {mean_dev}");
        // Front must be mutually non-dominated.
        for i in 0..front.len() {
            for j in 0..front.len() {
                if i != j {
                    assert!(!dominates(&front[i].objectives, &front[j].objectives));
                }
            }
        }
    }

    #[test]
    fn seeds_are_used() {
        let mut rng = StdRng::seed_from_u64(12);
        // Single-objective-as-multi: unique optimum x = (0.5, 0.5) with a
        // needle; only reachable from the seed.
        let mut f = |x: &[f64]| {
            let d: f64 = x.iter().map(|v| (v - 0.5).abs()).sum();
            if d < 1e-9 {
                vec![-1.0, -1.0]
            } else {
                vec![d, d]
            }
        };
        let front = minimize(
            &mut f,
            2,
            2,
            &[vec![0.5, 0.5]],
            &Nsga2Options {
                population: 16,
                generations: 5,
                ..Default::default()
            },
            &mut rng,
        );
        assert!(front.iter().any(|s| s.objectives[0] == -1.0));
    }

    #[test]
    fn pareto_front_indices_simple() {
        let objs = vec![
            vec![2.0, 2.0],
            vec![1.0, 3.0],
            vec![3.0, 1.0],
            vec![3.0, 3.0],
        ];
        let mut idx = pareto_front_indices(&objs);
        idx.sort_unstable();
        assert_eq!(idx, vec![0, 1, 2]);
        assert!(pareto_front_indices(&[]).is_empty());
    }
}
