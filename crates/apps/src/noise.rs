//! Deterministic run-to-run noise.
//!
//! Real application timings fluctuate (OS jitter, network contention); the
//! paper mitigates this with min-of-3 runs. The simulators multiply their
//! modelled runtime by a log-normal factor whose randomness is a pure
//! function of `(task, config, seed)`, so the same "run" always reproduces
//! the same measurement while different seeds model repeated runs.

use gptune_space::Value;

/// 64-bit mix (splitmix64 finalizer) — cheap, well-distributed.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Hashes a task/config pair and a seed into a single noise state.
pub fn hash_point(task: &[Value], config: &[Value], seed: u64) -> u64 {
    let mut h = mix(seed ^ 0xa076_1d64_78bd_642f);
    let mut feed = |bits: u64| {
        h = mix(h ^ bits);
    };
    for v in task.iter().chain(config) {
        match v {
            Value::Real(x) => feed(x.to_bits()),
            Value::Int(x) => feed(*x as u64 ^ 0x5151_5151_5151_5151),
            Value::Cat(i) => feed(*i as u64 ^ 0xc2c2_c2c2_c2c2_c2c2),
        }
    }
    h
}

/// Uniform in `[0, 1)` from a hash state.
pub fn uniform01(state: u64) -> f64 {
    (mix(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Standard normal from a hash state (Box–Muller on two derived uniforms).
pub fn standard_normal(state: u64) -> f64 {
    let u1 = uniform01(state).max(1e-300);
    let u2 = uniform01(mix(state ^ 0x1234_5678_9abc_def0));
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Log-normal noise factor `exp(σ·Z + σ²·|Z'|·tail)` with occasional slow
/// outliers — multiplies a modelled runtime. `σ = 0` returns exactly 1.
pub fn lognormal_factor(state: u64, sigma: f64) -> f64 {
    if sigma <= 0.0 {
        return 1.0;
    }
    let z = standard_normal(state);
    let mut f = (sigma * z).exp();
    // Rare system-noise spikes: ~3% of runs get up to +3σ extra slowdown,
    // as on shared interconnects. Only ever slows down (never speeds up),
    // which is why min-of-k sampling helps.
    let spike = uniform01(mix(state ^ 0x0f0f_0f0f_0f0f_0f0f));
    if spike > 0.97 {
        f *= 1.0 + 3.0 * sigma;
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic_and_sensitive() {
        let t = vec![Value::Int(100)];
        let c = vec![Value::Real(0.5), Value::Cat(1)];
        assert_eq!(hash_point(&t, &c, 7), hash_point(&t, &c, 7));
        assert_ne!(hash_point(&t, &c, 7), hash_point(&t, &c, 8));
        let c2 = vec![Value::Real(0.5), Value::Cat(2)];
        assert_ne!(hash_point(&t, &c, 7), hash_point(&t, &c2, 7));
    }

    #[test]
    fn uniform_bounds_and_spread() {
        let xs: Vec<f64> = (0..10_000u64).map(|i| uniform01(mix(i))).collect();
        assert!(xs.iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let xs: Vec<f64> = (0..20_000u64).map(|i| standard_normal(mix(i))).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn zero_sigma_is_exact() {
        assert_eq!(lognormal_factor(12345, 0.0), 1.0);
    }

    #[test]
    fn noise_factor_positive_and_near_one() {
        let mut worst = 0.0f64;
        for i in 0..1000u64 {
            let f = lognormal_factor(mix(i), 0.05);
            assert!(f > 0.0);
            worst = worst.max((f - 1.0).abs());
        }
        assert!(worst < 0.5, "worst deviation {worst}");
        assert!(worst > 0.01, "noise should actually vary");
    }
}
