//! Uniform random search — the floor every tuner must beat (paper Sec. 5
//! lists it among the "simplest black-box optimization methods").

use crate::{random_valid, Tuner, TunerRun};
use gptune_core::TuningProblem;
use gptune_space::Config;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Uniform random tuner.
#[derive(Debug, Default)]
pub struct RandomTuner;

impl Tuner for RandomTuner {
    fn name(&self) -> &str {
        "random"
    }

    fn tune_task(
        &self,
        problem: &TuningProblem,
        task_idx: usize,
        budget: usize,
        seed: u64,
    ) -> TunerRun {
        assert!(budget > 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut samples: Vec<(Config, f64)> = Vec::with_capacity(budget);
        for k in 0..budget {
            let cfg = random_valid(&problem.tuning_space, &mut rng, 500)
                .expect("no feasible configuration found");
            let y = problem.evaluate(task_idx, &cfg, seed.wrapping_add(k as u64 * 13))[0];
            samples.push((cfg, y));
        }
        TunerRun::from_samples(samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gptune_space::{Param, Space, Value};

    fn problem() -> TuningProblem {
        let ts = Space::builder().param(Param::real("t", 0.0, 1.0)).build();
        let ps = Space::builder().param(Param::real("x", 0.0, 1.0)).build();
        TuningProblem::new("r", ts, ps, vec![vec![Value::Real(0.0)]], |_, x, _| {
            vec![(x[0].as_real() - 0.5).powi(2)]
        })
    }

    #[test]
    fn uses_exact_budget_and_improves() {
        let p = problem();
        let run = RandomTuner.tune_task(&p, 0, 50, 1);
        assert_eq!(run.samples.len(), 50);
        assert!(run.best_value < 0.01);
    }

    #[test]
    fn deterministic_per_seed() {
        let p = problem();
        let a = RandomTuner.tune_task(&p, 0, 10, 7);
        let b = RandomTuner.tune_task(&p, 0, 10, 7);
        assert_eq!(a.best_value, b.best_value);
        let c = RandomTuner.tune_task(&p, 0, 10, 8);
        assert_ne!(a.best_value, c.best_value);
    }
}
