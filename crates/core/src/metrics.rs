//! Evaluation metrics of paper Sec. 6.6.
//!
//! * `WinTask` — *final* performance: the percentage of tasks on which one
//!   tuner's best objective beats another's;
//! * `stability` — *anytime* performance: for one task,
//!   `mean_j( y*(t, x_1..j) ) / y*(t)` where `y*(t, x_1..j)` is the best
//!   value among the first `j` samples and `y*(t)` is the best value over
//!   all samples of all tuners. 1.0 is perfect (the very first sample was
//!   already optimal); larger is worse.

/// Percentage (0–100) of tasks where `ours[i] <= theirs[i]` (ties count as
/// wins, matching "finds a better or equal objective minimum").
pub fn win_task(ours: &[f64], theirs: &[f64]) -> f64 {
    assert_eq!(ours.len(), theirs.len(), "win_task: length mismatch");
    assert!(!ours.is_empty(), "win_task: empty");
    let wins = ours
        .iter()
        .zip(theirs)
        .filter(|(a, b)| a <= b || (!a.is_finite() && !b.is_finite()))
        .count();
    100.0 * wins as f64 / ours.len() as f64
}

/// Stability of one task's trajectory against the global best `y_star`.
///
/// `trajectory` is the sequence of observed objective values in evaluation
/// order (not the running minimum — that is computed here).
pub fn stability(trajectory: &[f64], y_star: f64) -> f64 {
    assert!(!trajectory.is_empty(), "stability: empty trajectory");
    assert!(
        y_star.is_finite() && y_star > 0.0,
        "stability: reference must be positive and finite"
    );
    let mut best = f64::INFINITY;
    let mut sum = 0.0;
    let mut count = 0usize;
    for &y in trajectory {
        if y < best {
            best = y;
        }
        // Until the first finite sample the tuner has nothing; charge the
        // worst finite value later samples achieve by skipping (GPTune's
        // runlogs simply have no entry before the first success).
        if best.is_finite() {
            sum += best / y_star;
            count += 1;
        }
    }
    if count == 0 {
        f64::INFINITY
    } else {
        sum / count as f64
    }
}

/// Mean stability across tasks: each row of `trajectories` is one task's
/// observation sequence; `y_stars` are the per-task global best values.
pub fn mean_stability(trajectories: &[Vec<f64>], y_stars: &[f64]) -> f64 {
    assert_eq!(trajectories.len(), y_stars.len());
    assert!(!trajectories.is_empty());
    trajectories
        .iter()
        .zip(y_stars)
        .map(|(t, &s)| stability(t, s))
        .sum::<f64>()
        / trajectories.len() as f64
}

/// Ratio `theirs/ours` per task — the y-axis of Fig. 6 (`≥ 1` means we win).
pub fn best_ratio(ours: &[f64], theirs: &[f64]) -> Vec<f64> {
    assert_eq!(ours.len(), theirs.len());
    ours.iter().zip(theirs).map(|(a, b)| b / a).collect()
}

/// 2-D hypervolume indicator for minimization: the area dominated by the
/// front within the box `[0, reference]²`. Larger is better; used to
/// compare the quality of Pareto fronts (Fig. 7's multitask-vs-single-task
/// comparison, quantified).
///
/// Points outside the reference box contribute only their clipped part;
/// dominated and non-finite points contribute nothing extra.
pub fn hypervolume_2d(front: &[Vec<f64>], reference: &[f64; 2]) -> f64 {
    assert!(reference.iter().all(|r| r.is_finite() && *r > 0.0));
    // Keep finite points clipped into the box.
    let mut pts: Vec<(f64, f64)> = front
        .iter()
        .filter(|p| p.len() == 2 && p.iter().all(|v| v.is_finite()))
        .map(|p| (p[0].max(0.0), p[1].max(0.0)))
        .filter(|(a, b)| *a < reference[0] && *b < reference[1])
        .collect();
    if pts.is_empty() {
        return 0.0;
    }
    // Sweep by ascending first objective; track the running minimum of the
    // second objective so dominated points add nothing.
    pts.sort_by(|x, y| x.0.total_cmp(&y.0).then(x.1.total_cmp(&y.1)));
    let mut hv = 0.0;
    let mut prev_x = pts[0].0;
    let mut best_y = pts[0].1;
    for &(x, y) in &pts[1..] {
        if y < best_y {
            hv += (x - prev_x) * (reference[1] - best_y);
            prev_x = x;
            best_y = y;
        }
    }
    hv += (reference[0] - prev_x) * (reference[1] - best_y);
    // Left strip from 0 to the first point is NOT dominated (minimization:
    // nothing dominates x < min_x). The sweep above already starts at the
    // first point, so nothing to add.
    hv
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn win_task_counts_ties_as_wins() {
        let ours = [1.0, 2.0, 3.0, 4.0];
        let theirs = [1.0, 3.0, 2.0, 5.0];
        assert_eq!(win_task(&ours, &theirs), 75.0);
    }

    #[test]
    fn win_task_all_and_none() {
        assert_eq!(win_task(&[1.0], &[2.0]), 100.0);
        assert_eq!(win_task(&[2.0], &[1.0]), 0.0);
    }

    #[test]
    fn win_task_handles_failures() {
        // Both failed: neither better — count as win (tie).
        assert_eq!(win_task(&[f64::INFINITY], &[f64::INFINITY]), 100.0);
        // We failed, they succeeded: loss.
        assert_eq!(win_task(&[f64::INFINITY], &[1.0]), 0.0);
        // We succeeded, they failed: win.
        assert_eq!(win_task(&[1.0], &[f64::INFINITY]), 100.0);
    }

    #[test]
    fn stability_perfect_tuner() {
        // First sample is already the global best: stability = 1.
        assert_eq!(stability(&[1.0, 5.0, 9.0], 1.0), 1.0);
    }

    #[test]
    fn stability_late_discovery_is_worse() {
        let early = stability(&[1.0, 1.0, 1.0, 1.0], 1.0);
        let late = stability(&[4.0, 4.0, 4.0, 1.0], 1.0);
        assert!(late > early);
        assert_eq!(early, 1.0);
        assert_eq!(late, (4.0 + 4.0 + 4.0 + 1.0) / 4.0);
    }

    #[test]
    fn stability_uses_running_minimum() {
        // A spike after a good value must not hurt.
        let s = stability(&[2.0, 10.0, 10.0], 1.0);
        assert_eq!(s, 2.0);
    }

    #[test]
    fn stability_initial_failures_skipped() {
        let s = stability(&[f64::INFINITY, 2.0, 1.0], 1.0);
        assert_eq!(s, (2.0 + 1.0) / 2.0);
        assert_eq!(stability(&[f64::INFINITY], 1.0), f64::INFINITY);
    }

    #[test]
    fn mean_stability_averages() {
        let t = vec![vec![1.0, 1.0], vec![2.0, 2.0]];
        let m = mean_stability(&t, &[1.0, 1.0]);
        assert_eq!(m, 1.5);
    }

    #[test]
    fn best_ratio_orientation() {
        let r = best_ratio(&[1.0, 4.0], &[2.0, 2.0]);
        assert_eq!(r, vec![2.0, 0.5]);
    }

    #[test]
    fn hypervolume_single_point() {
        // Point (1,1) in box [0,4]²: dominates a 3×3 area.
        let hv = hypervolume_2d(&[vec![1.0, 1.0]], &[4.0, 4.0]);
        assert!((hv - 9.0).abs() < 1e-12);
    }

    #[test]
    fn hypervolume_two_tradeoff_points() {
        // (1,3) dominates [1,4]×[3,4] (area 3), (3,1) dominates
        // [3,4]×[1,4] (area 3), overlap [3,4]² (area 1) → union = 5.
        let hv = hypervolume_2d(&[vec![1.0, 3.0], vec![3.0, 1.0]], &[4.0, 4.0]);
        assert!((hv - 5.0).abs() < 1e-12, "hv {hv}");
    }

    #[test]
    fn hypervolume_dominated_point_adds_nothing() {
        let base = hypervolume_2d(&[vec![1.0, 1.0]], &[4.0, 4.0]);
        let with_dominated = hypervolume_2d(&[vec![1.0, 1.0], vec![2.0, 2.0]], &[4.0, 4.0]);
        assert_eq!(base, with_dominated);
    }

    #[test]
    fn hypervolume_monotone_in_front_quality() {
        let worse = hypervolume_2d(&[vec![2.0, 2.0]], &[4.0, 4.0]);
        let better = hypervolume_2d(&[vec![1.0, 1.5]], &[4.0, 4.0]);
        assert!(better > worse);
    }

    #[test]
    fn hypervolume_ignores_outside_and_nonfinite() {
        let hv = hypervolume_2d(
            &[vec![5.0, 1.0], vec![f64::INFINITY, 0.1], vec![1.0, 1.0]],
            &[4.0, 4.0],
        );
        assert!((hv - 9.0).abs() < 1e-12);
        assert_eq!(hypervolume_2d(&[], &[4.0, 4.0]), 0.0);
    }
}
