//! Simulated HPC application suite for GPTune-rs.
//!
//! The paper evaluates GPTune on real MPI codes running on NERSC Cori
//! (Table 2): ScaLAPACK PDGEQRF/PDSYEVX, SuperLU_DIST, hypre, M3D_C1 and
//! NIMROD. We have none of those, so each application is replaced by a
//! *performance-model simulator*: an analytic response surface over the same
//! task and tuning parameters, built from the communication/computation cost
//! models the literature (and the paper itself, Eqs. 7–10) provides, plus
//! the effects real codes exhibit — block-size efficiency ramps, load
//! imbalance, process-grid aspect sensitivity, pivoting/fill interactions,
//! and seeded run-to-run noise. The tuner treats these exactly like the real
//! codes: opaque functions `y(t, x)` with constraints, mixed parameter
//! types, and noisy outputs.
//!
//! Every simulator implements [`HpcApp`]; the returned "runtime"/"memory"
//! values are *virtual* (simulated seconds/bytes) and are what the
//! experiment harnesses report.

// Index-based loops keep the cost-model formulas close to the paper's notation.
#![allow(clippy::needless_range_loop)]

pub mod analytical;
pub mod chaos;
pub mod hypre;
pub mod m3dc1;
pub mod machine;
pub mod nimrod;
pub mod noise;
pub mod pdgeqrf;
pub mod pdsyevx;
pub mod superlu;

pub use analytical::AnalyticalApp;
pub use chaos::{FaultSpec, FaultyApp, InjectedFault};
pub use hypre::HypreApp;
pub use m3dc1::M3dc1App;
pub use machine::MachineModel;
pub use nimrod::NimrodApp;
pub use pdgeqrf::PdgeqrfApp;
pub use pdsyevx::PdsyevxApp;
pub use superlu::{SuperluApp, PARSEC_MATRICES};

use gptune_space::{Config, Space, Value};

/// A (simulated) HPC application: the black box GPTune tunes.
///
/// Implementations expose the task space `IS`, the tuning space `PS`
/// (including constraints), the number of scalar objectives `γ`, and the
/// evaluation itself. [`HpcApp::model_features`] optionally supplies the
/// coarse performance-model outputs `ỹ(t, x)` of paper Sec. 3.3 (e.g. flop
/// count, message count, communication volume) that the tuner can fold into
/// the surrogate or fit hyperparameters against.
pub trait HpcApp: Send + Sync {
    /// Application name (e.g. `"pdgeqrf"`).
    fn name(&self) -> &str;

    /// Task parameter space `IS`.
    fn task_space(&self) -> &Space;

    /// Tuning parameter space `PS` with constraints.
    fn tuning_space(&self) -> &Space;

    /// Number of scalar objectives `γ` (1 unless multi-objective).
    fn n_objectives(&self) -> usize {
        1
    }

    /// Runs the application on `task` with configuration `config`.
    ///
    /// Returns the `γ` objective values (first is always the runtime in
    /// virtual seconds). `seed` controls the run-to-run noise so
    /// experiments are reproducible; distinct seeds model distinct runs.
    /// Infeasible configurations return `f64::INFINITY` objectives.
    fn evaluate(&self, task: &[Value], config: &[Value], seed: u64) -> Vec<f64>;

    /// Coarse performance-model features `ỹ(t, x)` (paper Sec. 3.3), when
    /// the application has an analytic model. Values are raw model terms
    /// (e.g. `[C_flop, C_msg, C_vol]` of Eqs. 8–10).
    fn model_features(&self, _task: &[Value], _config: &[Value]) -> Option<Vec<f64>> {
        None
    }

    /// The application's default configuration, when one exists (used by
    /// the Table 5 default-vs-tuned comparison).
    fn default_config(&self) -> Option<Config> {
        None
    }
}

/// Evaluates with `runs` different seeds and keeps the elementwise minimum —
/// the paper's noise-mitigation protocol ("all the runs of PDGEQRF and
/// PDSYEVX were performed 3 times, and the minimal runtime was selected").
pub fn evaluate_min_of_runs(
    app: &dyn HpcApp,
    task: &[Value],
    config: &[Value],
    base_seed: u64,
    runs: usize,
) -> Vec<f64> {
    let mut best = app.evaluate(task, config, base_seed);
    for r in 1..runs.max(1) {
        let v = app.evaluate(task, config, base_seed.wrapping_add(r as u64));
        for (b, x) in best.iter_mut().zip(v) {
            if x < *b {
                *b = x;
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_of_runs_is_no_worse_than_single() {
        let app = AnalyticalApp::new(0.05);
        let task = vec![Value::Real(2.0)];
        let cfg = vec![Value::Real(0.3)];
        let single = app.evaluate(&task, &cfg, 7)[0];
        let best = evaluate_min_of_runs(&app, &task, &cfg, 7, 3)[0];
        assert!(best <= single);
    }
}
