//! `db_tool` — command-line maintenance for `gptune-db` archives.
//!
//! ```text
//! cargo run --example db_tool -- inspect <archive>
//! cargo run --example db_tool -- merge   <dst-archive> <src-archive>
//! cargo run --example db_tool -- compact <archive>
//! cargo run --example db_tool -- export  <archive> <journal.jsonl>
//! ```
//!
//! * `inspect` — per-journal entry counts, recovery health (torn tails,
//!   corrupt lines), archived run summaries with their `stats:` phase
//!   breakdown, and any in-flight checkpoints;
//! * `merge` — folds every journal of a second archive into the first,
//!   matching journals by file name (names embed problem + signature, so
//!   structurally different problems never mix) and deduplicating records;
//! * `compact` — deduplicates and heals every journal in place;
//! * `export` — prints a journal's evaluation records as CSV on stdout.

use gptune::db::{journal, Db, DbEntry, DbValue, LockOptions};
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let strs: Vec<&str> = args.iter().map(String::as_str).collect();
    let result = match strs.as_slice() {
        ["inspect", archive] => inspect(Path::new(archive)),
        ["merge", dst, src] => merge(Path::new(dst), Path::new(src)),
        ["compact", archive] => compact(Path::new(archive)),
        ["export", archive, journal] => export(Path::new(archive), journal),
        _ => {
            eprintln!(
                "usage: db_tool inspect <archive>\n\
                 \u{20}      db_tool merge <dst-archive> <src-archive>\n\
                 \u{20}      db_tool compact <archive>\n\
                 \u{20}      db_tool export <archive> <journal.jsonl>"
            );
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("db_tool: {e}");
        std::process::exit(1);
    }
}

fn inspect(root: &Path) -> std::io::Result<()> {
    let db = Db::open(root)?;
    let journals = db.journals()?;
    println!("archive: {}  journals: {}", root.display(), journals.len());
    for (name, _) in &journals {
        let (entries, report) = journal::load(&root.join(name))?;
        let evals = entries
            .iter()
            .filter(|e| matches!(e, DbEntry::Eval(_)))
            .count();
        let fails = entries
            .iter()
            .filter(|e| matches!(e, DbEntry::Fail(_)))
            .count();
        let mut health = String::new();
        if report.dropped_torn_tail {
            health.push_str("  [torn tail dropped]");
        }
        if report.n_corrupt_interior > 0 {
            health.push_str(&format!(
                "  [{} corrupt lines skipped]",
                report.n_corrupt_interior
            ));
        }
        if report.n_unknown_kind > 0 {
            health.push_str(&format!(
                "  [{} unknown-kind lines skipped]",
                report.n_unknown_kind
            ));
        }
        println!(
            "  {name}: {} entries ({evals} evals, {fails} failures, {} runs){health}",
            entries.len(),
            entries.len() - evals - fails
        );
        for e in &entries {
            if let DbEntry::Run(r) = e {
                println!(
                    "    run: {}  seed: {}  machine: {}",
                    r.prov.run,
                    r.prov.seed,
                    r.prov.machine.as_deref().unwrap_or("-")
                );
                println!("        {}", r.stats.report());
            }
        }
    }
    let mut checkpoints: Vec<String> = std::fs::read_dir(root)?
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("ckpt-") && n.ends_with(".json"))
        .collect();
    checkpoints.sort();
    for c in &checkpoints {
        println!("  in-flight checkpoint: {c}");
    }
    Ok(())
}

fn merge(dst_root: &Path, src_root: &Path) -> std::io::Result<()> {
    let dst = Db::open(dst_root)?;
    let src = Db::open(src_root)?;
    let lock = LockOptions::default();
    let mut total = 0usize;
    // Journal file names embed problem + signature, so matching by name is
    // exactly matching by (problem, sig).
    for (name, _) in src.journals()? {
        let added = journal::merge(&dst.root().join(&name), &src_root.join(&name), &lock)?;
        println!("  {name}: +{added}");
        total += added;
    }
    println!("merged {total} new entries into {}", dst_root.display());
    Ok(())
}

fn compact(root: &Path) -> std::io::Result<()> {
    let db = Db::open(root)?;
    let lock = LockOptions::default();
    for (name, _) in db.journals()? {
        let (kept, dropped) = journal::compact(&root.join(&name), &lock)?;
        println!("  {name}: kept {kept}, dropped {dropped}");
    }
    Ok(())
}

fn export(root: &Path, journal_name: &str) -> std::io::Result<()> {
    let (entries, _) = journal::load(&root.join(journal_name))?;
    println!("task,config,outputs,run,seed");
    for e in &entries {
        if let DbEntry::Eval(r) = e {
            println!(
                "{},{},{},{},{}",
                csv_values(&r.task),
                csv_values(&r.config),
                r.outputs
                    .iter()
                    .map(|y| y.to_string())
                    .collect::<Vec<_>>()
                    .join(";"),
                r.prov.run,
                r.prov.seed
            );
        }
    }
    Ok(())
}

fn csv_values(vs: &[DbValue]) -> String {
    vs.iter()
        .map(|v| match v {
            DbValue::Real(x) => x.to_string(),
            DbValue::Int(i) => i.to_string(),
            DbValue::Cat(c) => format!("#{c}"),
        })
        .collect::<Vec<_>>()
        .join(";")
}
