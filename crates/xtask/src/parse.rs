//! Item/block recovery on top of the lexer — the substrate the GX7xx
//! concurrency tier runs on.
//!
//! A full AST stays out of scope (same rationale as the lexer: offline
//! build, no `syn`). What the concurrency analysis actually needs is much
//! smaller: for every `fn` in a file, the ordered sequence of
//! *concurrency-relevant events* in its body —
//!
//! * **named-lock acquisitions** (`state.sessions.lock()`,
//!   `shard.lock()`, `GLOBAL.read()`, `FileLock::acquire(..)`) together
//!   with the *scope* the resulting guard lives for (let-bound guards die
//!   at their block's `}` or at an explicit `drop(name)`; expression
//!   temporaries die at the end of their statement; `for`-header
//!   temporaries live for the whole loop body, exactly as the `match`
//!   desugaring keeps them alive);
//! * **call expressions** (last path segment, so `TcpStream::connect(..)`
//!   is a call named `connect`) with the set of locks held at the call;
//! * **atomic operations** carrying an explicit `Ordering` argument
//!   (`touch.load(Ordering::Relaxed)`), which are *not* calls into the
//!   workspace — `slot.touch.load(..)` must never resolve to
//!   `SessionStore::load`.
//!
//! Scope tracking under-approximates where Rust's real temporary rules
//! are longer-lived (a `match` scrutinee temporary lives to the end of
//! the `match`; here it dies at the `{`). Under-approximation can only
//! lose findings, never invent them.

use crate::context::{match_delim, FileCtx};
use crate::lexer::{Tok, Token};

/// Guard-producing method names: `m.lock()`, `rw.read()`, `rw.write()`
/// with *empty* argument lists (`stream.read(&mut buf)` is I/O, not an
/// acquisition).
const LOCK_METHODS: &[&str] = &["lock", "read", "write"];

/// Pseudo lock name for `FileLock::acquire(..)` — the db's cross-process
/// advisory lock participates in the lock-order graph like any mutex.
pub const DB_ADVISORY: &str = "db_advisory";

/// Atomic memory-op method names. Only treated as atomic when the
/// argument list names an `Ordering` variant.
const ATOMIC_OPS: &[&str] = &[
    "load",
    "store",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "fetch_nand",
];

const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Keywords that look like `ident (` but are not calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "fn", "let", "in", "as", "move", "ref", "mut",
    "else", "unsafe", "box", "break", "continue", "where", "impl", "use", "pub", "struct", "enum",
    "trait", "mod", "dyn",
];

/// One concurrency-relevant event in a function body, in source order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// Acquisition of the named lock (receiver identifier, or
    /// [`DB_ADVISORY`]).
    Acquire { lock: String },
    /// A call expression; `argless` distinguishes `h.join()` (thread
    /// join, blocking) from `path.join("x")` (string concatenation).
    Call { name: String, argless: bool },
    /// An atomic op with explicit ordering. `orderings` lists the
    /// `Ordering` variants in argument order (success ordering first for
    /// `compare_exchange*`).
    Atomic {
        field: String,
        op: String,
        orderings: Vec<String>,
    },
}

#[derive(Debug, Clone)]
pub struct Event {
    pub kind: EventKind,
    pub line: u32,
    /// Named locks held when the event executes (sorted, deduped; the
    /// lock being acquired by an `Acquire` event is *not* in its own
    /// held set).
    pub held: Vec<String>,
}

/// One `fn` item with its recovered event sequence.
#[derive(Debug)]
pub struct ParsedFn {
    pub name: String,
    pub line: u32,
    pub events: Vec<Event>,
}

/// All non-test functions of one file.
#[derive(Debug)]
pub struct ParsedFile {
    pub path: String,
    pub fns: Vec<ParsedFn>,
}

struct FnItem {
    fn_idx: usize,
    name: String,
    line: u32,
    body_open: usize,
    body_close: usize,
}

/// Parses every non-test `fn` in the file into its event sequence.
pub fn parse_file(ctx: &FileCtx<'_>) -> ParsedFile {
    let items = find_fns(ctx.tokens);
    let mut fns = Vec::new();
    for (n, item) in items.iter().enumerate() {
        if ctx.in_test(item.line) {
            continue;
        }
        // Token ranges of fns nested inside this one: their events belong
        // to them, not to us.
        let nested: Vec<(usize, usize)> = items
            .iter()
            .enumerate()
            .filter(|(m, it)| *m != n && it.fn_idx > item.fn_idx && it.body_close < item.body_close)
            .map(|(_, it)| (it.fn_idx, it.body_close))
            .collect();
        let events = walk_body(ctx.tokens, item, &nested);
        fns.push(ParsedFn {
            name: item.name.clone(),
            line: item.line,
            events,
        });
    }
    ParsedFile {
        path: ctx.path.to_string(),
        fns,
    }
}

/// Locates every `fn NAME … { body }` in the token stream (trait-method
/// signatures ending in `;` are skipped).
fn find_fns(toks: &[Token]) -> Vec<FnItem> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_ident("fn") {
            i += 1;
            continue;
        }
        let Some(name) = toks.get(i + 1).and_then(|t| t.ident()) else {
            i += 1;
            continue;
        };
        // Scan the signature for the body `{` at zero paren/bracket
        // depth; a `;` first means no body.
        let mut paren = 0i32;
        let mut bracket = 0i32;
        let mut k = i + 2;
        let mut body = None;
        while k < toks.len() {
            match toks[k].kind {
                Tok::Punct('(') => paren += 1,
                Tok::Punct(')') => paren -= 1,
                Tok::Punct('[') => bracket += 1,
                Tok::Punct(']') => bracket -= 1,
                Tok::Punct('{') if paren == 0 && bracket == 0 => {
                    body = Some(k);
                    break;
                }
                Tok::Punct(';') if paren == 0 && bracket == 0 => break,
                _ => {}
            }
            k += 1;
        }
        let Some(open) = body else {
            i = k.max(i + 1);
            continue;
        };
        let Some(close) = match_delim(toks, open, '{', '}') else {
            break;
        };
        out.push(FnItem {
            fn_idx: i,
            name: name.to_string(),
            line: toks[i].line,
            body_open: open,
            body_close: close,
        });
        // Continue *inside* the body so nested fns are found too.
        i += 2;
    }
    out
}

/// An active guard: the lock it holds, the binding that owns it (None
/// for expression temporaries), and the first token index at which it is
/// no longer held.
struct Guard {
    lock: String,
    binding: Option<String>,
    end: usize,
}

fn walk_body(toks: &[Token], item: &FnItem, nested: &[(usize, usize)]) -> Vec<Event> {
    let mut events = Vec::new();
    let mut guards: Vec<Guard> = Vec::new();
    // Tail acquisitions of `let g = ….lock()…;` statements, keyed by the
    // index of the acquisition's closing paren: (binding, block close).
    let mut pending: Vec<(usize, String, usize)> = Vec::new();
    // Block stack of close-brace indices; the fn body itself is the
    // outermost block.
    let mut blocks: Vec<usize> = vec![item.body_close];
    // `for`-header interval: temporaries acquired in [start, body_open)
    // live until the loop's close brace.
    let mut for_header: Option<(usize, usize, usize)> = None; // (start, body_open, body_close)

    let mut i = item.body_open + 1;
    while i < item.body_close {
        // Skip nested fn items entirely.
        if let Some(&(_, close)) = nested.iter().find(|&&(start, _)| start == i) {
            i = close + 1;
            continue;
        }
        guards.retain(|g| g.end > i);
        let t = &toks[i];
        match &t.kind {
            Tok::Punct('{') => {
                if let Some(close) = match_delim(toks, i, '{', '}') {
                    blocks.push(close);
                }
            }
            Tok::Punct('}') => {
                if blocks.last() == Some(&i) {
                    blocks.pop();
                }
            }
            Tok::Ident(id) => match id.as_str() {
                "let" => {
                    if let Some((close, binding)) = let_tail_acquisition(toks, i, item.body_close) {
                        let block_close = *blocks.last().unwrap_or(&item.body_close);
                        pending.push((close, binding, block_close));
                    }
                }
                "for" if !toks.get(i + 1).is_some_and(|t| t.is_punct('<')) => {
                    // Find the loop body; header temporaries live for it.
                    let mut paren = 0i32;
                    let mut k = i + 1;
                    while k < item.body_close {
                        match toks[k].kind {
                            Tok::Punct('(') | Tok::Punct('[') => paren += 1,
                            Tok::Punct(')') | Tok::Punct(']') => paren -= 1,
                            Tok::Punct('{') if paren == 0 => break,
                            _ => {}
                        }
                        k += 1;
                    }
                    if k < item.body_close {
                        if let Some(close) = match_delim(toks, k, '{', '}') {
                            for_header = Some((i, k, close));
                        }
                    }
                }
                "drop" if toks.get(i + 1).is_some_and(|t| t.is_punct('(')) => {
                    if let (Some(name), Some(cp)) = (
                        toks.get(i + 2).and_then(|t| t.ident()),
                        toks.get(i + 3).map(|t| t.is_punct(')')),
                    ) {
                        if cp {
                            guards.retain(|g| g.binding.as_deref() != Some(name));
                            i += 4;
                            continue;
                        }
                    }
                }
                _ if toks.get(i + 1).is_some_and(|t| t.is_punct('(')) => {
                    let held = held_locks(&guards);
                    if let Some((lock, close)) = acquisition_at(toks, i) {
                        events.push(Event {
                            kind: EventKind::Acquire { lock: lock.clone() },
                            line: t.line,
                            held,
                        });
                        let (binding, end) =
                            guard_scope(toks, close, item.body_close, &mut pending, &for_header, i);
                        guards.push(Guard { lock, binding, end });
                        i = close + 1;
                        continue;
                    }
                    if ATOMIC_OPS.contains(&id.as_str()) {
                        if let Some(close) = match_delim(toks, i + 1, '(', ')') {
                            let orderings: Vec<String> = toks[i + 2..close]
                                .iter()
                                .filter_map(|t| t.ident())
                                .filter(|s| ORDERINGS.contains(s))
                                .map(str::to_string)
                                .collect();
                            if !orderings.is_empty() {
                                let field = (i >= 2 && toks[i - 1].is_punct('.'))
                                    .then(|| toks[i - 2].ident())
                                    .flatten();
                                if let Some(field) = field {
                                    events.push(Event {
                                        kind: EventKind::Atomic {
                                            field: field.to_string(),
                                            op: id.clone(),
                                            orderings,
                                        },
                                        line: t.line,
                                        held,
                                    });
                                }
                                i = close + 1;
                                continue;
                            }
                        }
                    }
                    // A call whose whole argument list is one bool literal
                    // is a builder setter (`OpenOptions::new().append(true)`)
                    // — never a workspace fn worth resolving by name.
                    let bool_setter = toks
                        .get(i + 2)
                        .and_then(|t| t.ident())
                        .is_some_and(|a| a == "true" || a == "false")
                        && toks.get(i + 3).is_some_and(|t| t.is_punct(')'));
                    if !NON_CALL_KEYWORDS.contains(&id.as_str())
                        && !id.starts_with(char::is_uppercase)
                        && !id.starts_with('_')
                        && !bool_setter
                    {
                        let argless = toks.get(i + 2).is_some_and(|t| t.is_punct(')'));
                        events.push(Event {
                            kind: EventKind::Call {
                                name: id.clone(),
                                argless,
                            },
                            line: t.line,
                            held,
                        });
                    }
                }
                _ => {}
            },
            _ => {}
        }
        i += 1;
    }
    events
}

/// Currently held lock names, sorted and deduped.
fn held_locks(guards: &[Guard]) -> Vec<String> {
    let mut held: Vec<String> = guards.iter().map(|g| g.lock.clone()).collect();
    held.sort();
    held.dedup();
    held
}

/// At ident index `i` followed by `(`: is this a named-lock acquisition?
/// Returns the lock name and the closing-paren index.
fn acquisition_at(toks: &[Token], i: usize) -> Option<(String, usize)> {
    let id = toks[i].ident()?;
    if LOCK_METHODS.contains(&id)
        && i >= 2
        && toks[i - 1].is_punct('.')
        && toks.get(i + 2).is_some_and(|t| t.is_punct(')'))
    {
        let recv = toks[i - 2].ident()?;
        return Some((recv.to_string(), i + 2));
    }
    if id == "acquire"
        && i >= 3
        && toks[i - 1].is_punct(':')
        && toks[i - 2].is_punct(':')
        && toks[i - 3].is_ident("FileLock")
    {
        let close = match_delim(toks, i + 1, '(', ')')?;
        return Some((DB_ADVISORY.to_string(), close));
    }
    None
}

/// Scope for the guard created by the acquisition whose closing paren is
/// at `close`: a pending let-tail binding (block scope), a `for`-header
/// temporary (loop-body scope), or a statement temporary.
fn guard_scope(
    toks: &[Token],
    close: usize,
    body_close: usize,
    pending: &mut Vec<(usize, String, usize)>,
    for_header: &Option<(usize, usize, usize)>,
    acq_idx: usize,
) -> (Option<String>, usize) {
    if let Some(pos) = pending.iter().position(|(c, _, _)| *c == close) {
        let (_, binding, block_close) = pending.remove(pos);
        // `let _ = guard` drops immediately; anything else holds to the
        // end of the enclosing block.
        if binding == "_" {
            return (None, statement_end(toks, close, body_close));
        }
        return (Some(binding), block_close);
    }
    if let Some((start, body_open, loop_close)) = for_header {
        if acq_idx > *start && acq_idx < *body_open {
            return (None, *loop_close);
        }
    }
    (None, statement_end(toks, close, body_close))
}

/// First `;`, `{`, or `}` at zero paren/bracket depth after `from` — the
/// end of the statement the temporary lives for.
fn statement_end(toks: &[Token], from: usize, body_close: usize) -> usize {
    let mut depth = 0i32;
    let mut k = from + 1;
    while k < body_close {
        match toks[k].kind {
            Tok::Punct('(') | Tok::Punct('[') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
            Tok::Punct(';') | Tok::Punct('{') | Tok::Punct('}') if depth <= 0 => return k,
            _ => {}
        }
        k += 1;
    }
    body_close
}

/// For a `let` at index `i`: if the initializer's *tail* is a lock
/// acquisition (optionally followed by `?` / `.unwrap()` / `.expect(..)`),
/// returns (closing-paren index of the acquisition, binding name). A
/// tail acquisition means the binding *is* the guard; an embedded one
/// (`let n = m.lock().unwrap().len();`) leaves only a statement
/// temporary, which the generic walk handles.
fn let_tail_acquisition(toks: &[Token], i: usize, body_close: usize) -> Option<(usize, String)> {
    let mut j = i + 1;
    if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
        j += 1;
    }
    let binding = toks.get(j)?.ident()?.to_string();
    // Reject patterns (`let Some(g) = …`, `let (a, b) = …`).
    if binding.starts_with(char::is_uppercase) {
        return None;
    }
    // Find `=` at zero depth (skipping a `: Type` annotation; `==`, `>=`,
    // `<=`, `!=` never appear before the initializer).
    let mut depth = 0i32;
    let mut k = j + 1;
    let eq = loop {
        if k >= body_close {
            return None;
        }
        match toks[k].kind {
            Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('<') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('>') => depth -= 1,
            Tok::Punct('=') if depth <= 0 => break k,
            Tok::Punct(';') | Tok::Punct('{') if depth <= 0 => return None,
            _ => {}
        }
        k += 1;
    };
    let end = statement_end(toks, eq, body_close);
    // Walk the initializer for acquisitions; test whether the last one is
    // the tail.
    let mut last: Option<usize> = None; // closing paren idx
    let mut m = eq + 1;
    while m < end {
        if toks[m].ident().is_some() && toks.get(m + 1).is_some_and(|t| t.is_punct('(')) {
            if let Some((_, close)) = acquisition_at(toks, m) {
                last = Some(close);
                m = close + 1;
                continue;
            }
        }
        m += 1;
    }
    let close = last?;
    // Strip trailing `?`, `.unwrap()`, `.expect(..)`.
    let mut k = close + 1;
    while k < end {
        if toks[k].is_punct('?') {
            k += 1;
        } else if toks[k].is_punct('.')
            && toks
                .get(k + 1)
                .and_then(|t| t.ident())
                .is_some_and(|s| s == "unwrap" || s == "expect")
            && toks.get(k + 2).is_some_and(|t| t.is_punct('('))
        {
            match match_delim(toks, k + 2, '(', ')') {
                Some(c) => k = c + 1,
                None => return None,
            }
        } else {
            return None; // embedded acquisition, not the tail
        }
    }
    Some((close, binding))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> ParsedFile {
        let lexed = lex(src);
        let ctx = FileCtx::new("crates/serve/src/x.rs", &lexed);
        parse_file(&ctx)
    }

    fn events_of<'a>(pf: &'a ParsedFile, name: &str) -> &'a [Event] {
        &pf.fns.iter().find(|f| f.name == name).expect("fn").events
    }

    #[test]
    fn let_guard_scopes_to_block_and_drop() {
        let src = "fn f(state: &S) {\n\
                   let table = state.sessions.lock().unwrap();\n\
                   touch(1);\n\
                   drop(table);\n\
                   after(2);\n\
                   }\n";
        let pf = parse(src);
        let ev = events_of(&pf, "f");
        assert!(matches!(&ev[0].kind, EventKind::Acquire { lock } if lock == "sessions"));
        let touch = ev
            .iter()
            .find(|e| matches!(&e.kind, EventKind::Call { name, .. } if name == "touch"))
            .unwrap();
        assert_eq!(touch.held, vec!["sessions".to_string()]);
        let after = ev
            .iter()
            .find(|e| matches!(&e.kind, EventKind::Call { name, .. } if name == "after"))
            .unwrap();
        assert!(after.held.is_empty(), "drop() must release the guard");
    }

    #[test]
    fn statement_temporary_does_not_cover_next_statement() {
        let src = "fn f(s: &S) {\n\
                   let n = s.sessions.lock().unwrap().len();\n\
                   blocked(n);\n\
                   }\n";
        let pf = parse(src);
        let ev = events_of(&pf, "f");
        let call = ev
            .iter()
            .find(|e| matches!(&e.kind, EventKind::Call { name, .. } if name == "blocked"))
            .unwrap();
        assert!(call.held.is_empty());
    }

    #[test]
    fn for_header_temporary_covers_loop_body() {
        let src = "fn f(s: &S) {\n\
                   for c in s.conns.lock().unwrap().iter() {\n\
                   sever(c);\n\
                   }\n\
                   outside(1);\n\
                   }\n";
        let pf = parse(src);
        let ev = events_of(&pf, "f");
        let sever = ev
            .iter()
            .find(|e| matches!(&e.kind, EventKind::Call { name, .. } if name == "sever"))
            .unwrap();
        assert_eq!(sever.held, vec!["conns".to_string()]);
        let outside = ev
            .iter()
            .find(|e| matches!(&e.kind, EventKind::Call { name, .. } if name == "outside"))
            .unwrap();
        assert!(outside.held.is_empty());
    }

    #[test]
    fn block_scoped_guard_dies_at_close_brace() {
        let src = "fn f(s: &S) {\n\
                   let v = {\n\
                   let mut t = s.sessions.lock().unwrap();\n\
                   pick(1)\n\
                   };\n\
                   use_it(v);\n\
                   }\n";
        let pf = parse(src);
        let ev = events_of(&pf, "f");
        let pick = ev
            .iter()
            .find(|e| matches!(&e.kind, EventKind::Call { name, .. } if name == "pick"))
            .unwrap();
        assert_eq!(pick.held, vec!["sessions".to_string()]);
        let use_it = ev
            .iter()
            .find(|e| matches!(&e.kind, EventKind::Call { name, .. } if name == "use_it"))
            .unwrap();
        assert!(use_it.held.is_empty());
    }

    #[test]
    fn atomic_op_is_not_a_call() {
        let src = "fn f(s: &S) {\n\
                   let t = s.touch.load(Ordering::Relaxed);\n\
                   s.touch.store(t, Ordering::Relaxed);\n\
                   }\n";
        let pf = parse(src);
        let ev = events_of(&pf, "f");
        assert!(ev
            .iter()
            .all(|e| !matches!(&e.kind, EventKind::Call { name, .. } if name == "load" || name == "store")));
        let atomics: Vec<_> = ev
            .iter()
            .filter(|e| matches!(&e.kind, EventKind::Atomic { field, .. } if field == "touch"))
            .collect();
        assert_eq!(atomics.len(), 2);
    }

    #[test]
    fn file_lock_acquire_is_db_advisory() {
        let src = "fn f(p: &Path, o: &LockOptions) -> io::Result<()> {\n\
                   let _guard = FileLock::acquire(p, o)?;\n\
                   write_all_now(p)?;\n\
                   Ok(())\n\
                   }\n";
        let pf = parse(src);
        let ev = events_of(&pf, "f");
        assert!(matches!(&ev[0].kind, EventKind::Acquire { lock } if lock == DB_ADVISORY));
        let call = ev
            .iter()
            .find(|e| matches!(&e.kind, EventKind::Call { name, .. } if name == "write_all_now"))
            .unwrap();
        assert_eq!(call.held, vec![DB_ADVISORY.to_string()]);
    }

    #[test]
    fn rwlock_read_write_with_args_is_io_not_acquisition() {
        let src = "fn f(g: &RwLock<u8>, s: &mut TcpStream, buf: &mut [u8]) {\n\
                   let r = g.read();\n\
                   s.read(buf).ok();\n\
                   }\n";
        let pf = parse(src);
        let ev = events_of(&pf, "f");
        let acquires: Vec<_> = ev
            .iter()
            .filter(|e| matches!(&e.kind, EventKind::Acquire { .. }))
            .collect();
        assert_eq!(acquires.len(), 1, "only the empty-paren read() acquires");
    }

    #[test]
    fn nested_fn_events_stay_separate() {
        let src = "fn outer(s: &S) {\n\
                   fn inner(s: &S) { let g = s.conns.lock().unwrap(); body(g); }\n\
                   clean(1);\n\
                   }\n";
        let pf = parse(src);
        let outer = events_of(&pf, "outer");
        assert!(outer
            .iter()
            .all(|e| !matches!(&e.kind, EventKind::Acquire { .. })));
        let inner = events_of(&pf, "inner");
        assert!(inner
            .iter()
            .any(|e| matches!(&e.kind, EventKind::Acquire { lock } if lock == "conns")));
    }

    #[test]
    fn test_fns_are_skipped() {
        let src =
            "#[cfg(test)]\nmod tests {\n fn t(s: &S) { let g = s.conns.lock().unwrap(); }\n}\n";
        let pf = parse(src);
        assert!(pf.fns.is_empty());
    }

    #[test]
    fn call_names_are_last_path_segment() {
        let src = "fn f(addr: A) {\n\
                   let s = TcpStream::connect(addr);\n\
                   let x = Some(1);\n\
                   }\n";
        let pf = parse(src);
        let ev = events_of(&pf, "f");
        assert!(ev
            .iter()
            .any(|e| matches!(&e.kind, EventKind::Call { name, .. } if name == "connect")));
        assert!(ev
            .iter()
            .all(|e| !matches!(&e.kind, EventKind::Call { name, .. } if name == "Some")));
    }
}
