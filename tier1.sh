#!/usr/bin/env bash
# Tier-1 gate: everything must build, pass tests, and be lint-clean.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q
# Chaos gate: MLA under injected crashes/hangs/transients must complete,
# resume deterministically, and skip journaled crashers.
cargo test -q --test chaos
# Hot-path equivalence smoke in release mode: the distance-cached NLL,
# W ∘ K gradients, and batched prediction must match their retained
# pre-refactor references to ≤ 1e-12 under the optimizer's reassociations.
cargo test -q --release -p gptune-gp --test equivalence
cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings
# Domain-specific lint suite (NaN-safety, panic tiers, lock discipline,
# determinism, unsafe hygiene) -- see DESIGN.md "Static-analysis policy".
cargo run -q -p gptune-xtask -- lint
