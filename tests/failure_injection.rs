//! Failure-injection integration tests: the tuner must survive the ways
//! real HPC runs fail — crashed runs (∞), NaN measurements, tasks that
//! never succeed, and nearly-empty feasible regions.

use gptune::core::{mla, mla_mo, MlaOptions, TuningProblem};
use gptune::space::{Param, Space, Value};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn fast_opts(budget: usize, seed: u64) -> MlaOptions {
    let mut o = MlaOptions::default().with_budget(budget).with_seed(seed);
    o.lcm.n_starts = 2;
    o.lcm.lbfgs.max_iters = 15;
    o.pso.particles = 15;
    o.pso.iters = 10;
    o.log_objective = false;
    o
}

fn spaces() -> (Space, Space) {
    (
        Space::builder().param(Param::real("t", 0.0, 1.0)).build(),
        Space::builder().param(Param::real("x", 0.0, 1.0)).build(),
    )
}

#[test]
fn random_crashes_do_not_derail_tuning() {
    // ~30% of runs "crash" (∞), deterministically by config hash.
    let (ts, ps) = spaces();
    let p = TuningProblem::new("crashy", ts, ps, vec![vec![Value::Real(0.0)]], |_, x, _| {
        let v = x[0].as_real();
        let h = (v * 1e6) as u64;
        if h % 10 < 3 {
            vec![f64::INFINITY]
        } else {
            vec![1.0 + (v - 0.5).powi(2)]
        }
    });
    let r = mla::tune(&p, &fast_opts(16, 1));
    let tr = &r.per_task[0];
    assert_eq!(tr.samples.len(), 16);
    assert!(tr.best_value.is_finite());
    assert!((tr.best_config[0].as_real() - 0.5).abs() < 0.2);
}

#[test]
fn nan_measurements_treated_as_failures() {
    let (ts, ps) = spaces();
    let p = TuningProblem::new("nanny", ts, ps, vec![vec![Value::Real(0.0)]], |_, x, _| {
        let v = x[0].as_real();
        if v > 0.8 {
            vec![f64::NAN]
        } else {
            vec![2.0 - v]
        }
    });
    let r = mla::tune(&p, &fast_opts(12, 2));
    let tr = &r.per_task[0];
    assert!(tr.best_value.is_finite());
    // Best must come from the valid region, near its edge (x → 0.8).
    assert!(tr.best_config[0].as_real() <= 0.8 + 1e-9);
    assert!(tr.best_config[0].as_real() > 0.5);
}

#[test]
fn task_that_always_fails_does_not_poison_others() {
    let (ts, ps) = spaces();
    let p = TuningProblem::new(
        "half-broken",
        ts,
        ps,
        vec![vec![Value::Real(0.0)], vec![Value::Real(1.0)]],
        |t, x, _| {
            if t[0].as_real() > 0.5 {
                vec![f64::INFINITY] // task 1 never succeeds
            } else {
                vec![1.0 + (x[0].as_real() - 0.3).powi(2)]
            }
        },
    );
    let r = mla::tune(&p, &fast_opts(10, 3));
    assert!(r.per_task[0].best_value.is_finite());
    assert!((r.per_task[0].best_config[0].as_real() - 0.3).abs() < 0.15);
    assert!(r.per_task[1].best_value.is_infinite());
    assert_eq!(r.per_task[1].samples.len(), 10);
}

#[test]
fn tiny_feasible_region_still_tunes() {
    // Only x ∈ [0.45, 0.55] is feasible: rejection sampling must cope.
    let ts = Space::builder().param(Param::real("t", 0.0, 1.0)).build();
    let ps = Space::builder()
        .param(Param::real("x", 0.0, 1.0))
        .constraint("narrow", |c| (c[0].as_real() - 0.5).abs() <= 0.05)
        .build();
    let p = TuningProblem::new("narrow", ts, ps, vec![vec![Value::Real(0.0)]], |_, x, _| {
        vec![1.0 + (x[0].as_real() - 0.52).powi(2)]
    });
    let r = mla::tune(&p, &fast_opts(8, 4));
    let tr = &r.per_task[0];
    assert!(!tr.samples.is_empty());
    for (cfg, _) in &tr.samples {
        assert!((cfg[0].as_real() - 0.5).abs() <= 0.05 + 1e-12);
    }
    assert!(tr.best_value.is_finite());
}

#[test]
fn multiobjective_with_partial_failures() {
    let (ts, ps) = spaces();
    let p = TuningProblem::new(
        "mo-fail",
        ts,
        ps,
        vec![vec![Value::Real(0.0)]],
        |_, x, _| {
            let v = x[0].as_real();
            if v < 0.15 {
                vec![f64::INFINITY, f64::INFINITY]
            } else {
                vec![1.0 + (v - 0.3).powi(2), 1.0 + (v - 0.7).powi(2)]
            }
        },
    )
    .with_objectives(2);
    let mut o = fast_opts(16, 5);
    o.k_per_iter = 3;
    o.nsga.population = 16;
    o.nsga.generations = 8;
    let r = mla_mo::tune_multiobjective(&p, &o);
    let front = &r.per_task[0].pareto_front;
    assert!(!front.is_empty());
    for pt in front {
        assert!(pt.objectives.iter().all(|v| v.is_finite()));
        assert!(pt.config[0].as_real() >= 0.15);
    }
}

#[test]
fn objective_counts_every_call_even_on_failures() {
    // The eval counter must count failed runs too (they consume budget on
    // a real machine even when they crash).
    let (ts, ps) = spaces();
    let calls = Arc::new(AtomicUsize::new(0));
    let calls2 = Arc::clone(&calls);
    let p = TuningProblem::new(
        "count",
        ts,
        ps,
        vec![vec![Value::Real(0.0)]],
        move |_, x, _| {
            calls2.fetch_add(1, Ordering::Relaxed);
            if x[0].as_real() < 0.5 {
                vec![f64::INFINITY]
            } else {
                vec![1.0]
            }
        },
    );
    let r = mla::tune(&p, &fast_opts(10, 6));
    assert_eq!(r.per_task[0].samples.len(), 10);
    assert_eq!(calls.load(Ordering::Relaxed), 10);
    assert_eq!(r.stats.n_evals, 10);
}
