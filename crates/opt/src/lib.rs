//! Optimization substrate for GPTune-rs.
//!
//! GPTune leans on three distinct optimizer families (paper Secs. 3–5):
//!
//! 1. **Gradient-based** — [`lbfgs`] maximizes the LCM log-likelihood in the
//!    modeling phase (the paper uses L-BFGS with random multi-starts).
//! 2. **Evolutionary / swarm** — [`pso`] maximizes the Expected-Improvement
//!    acquisition in the search phase; [`nsga2`] performs the multi-objective
//!    search of Algorithm 2.
//! 3. **Model-free baselines** — [`de`], [`ga`], [`sa`], [`nelder_mead`],
//!    [`random_search`], and the [`bandit`] meta-technique reproduce the
//!    OpenTuner technique ensemble; [`tpe`] reproduces HpBandSter's Tree
//!    Parzen Estimator; [`forest`] provides the random-forest surrogate
//!    behind the SuRf baseline.
//!
//! Every derivative-free optimizer works on a box domain (by convention the
//! unit hypercube that `gptune-space` normalizes into) and **minimizes** its
//! objective; maximize by negating.

// Index-based loops are the natural idiom for the population/array math
// below, and `!(x < 0.0)` deliberately treats NaN as a failed descent check.
#![allow(clippy::needless_range_loop)]
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod bandit;
pub mod cmaes;
pub mod de;
pub mod forest;
pub mod ga;
pub mod lbfgs;
pub mod nelder_mead;
pub mod nsga2;
pub mod pso;
pub mod random_search;
pub mod sa;
pub mod tpe;

/// Outcome of a scalar box-constrained minimization.
#[derive(Debug, Clone)]
pub struct OptResult {
    /// Best point found.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub value: f64,
    /// Number of objective evaluations spent.
    pub evals: usize,
}

/// Clamps a point into `[0,1]^d` in place.
pub(crate) fn clamp_unit(x: &mut [f64]) {
    for v in x {
        *v = v.clamp(0.0, 1.0);
    }
}
