//! Trace acceptance test: a fault-injected two-task MLA run with the
//! global tracer installed must produce a trace whose Chrome export has
//! one track per evaluation worker plus fault instant-events, whose
//! modeling spans cover every iteration, and whose per-phase span sums
//! agree with the [`PhaseStats`] wall totals within 1% (they are exact by
//! construction — `PhaseTimer` publishes one measurement to both sinks).
//!
//! [`PhaseStats`]: gptune::runtime::PhaseStats

use gptune::apps::{AnalyticalApp, FaultSpec, FaultyApp};
use gptune::core::{mla, MlaOptions};
use gptune::problem_from_app;
use gptune::space::Value;
use gptune::trace::{EventKind, Tracer};
use std::sync::Arc;
use std::time::Duration;

/// One test drives the whole acceptance scenario: the tracer global is
/// process-wide, so the run and every assertion share a single `#[test]`.
#[test]
fn chaos_mla_trace_has_worker_tracks_fault_events_and_consistent_walls() {
    let prev = gptune::trace::install(Tracer::ring(1 << 16));

    let spec = FaultSpec {
        crash_rate: 0.10,
        hang_rate: 0.05,
        transient_rate: 0.15,
        hang: Duration::from_millis(600),
        chaos_seed: 11,
    };
    let app = Arc::new(FaultyApp::new(AnalyticalApp::new(0.0), spec));
    let tasks = vec![vec![Value::Real(1.0)], vec![Value::Real(4.0)]];
    let problem = problem_from_app(app, tasks);
    let mut opts = MlaOptions::default()
        .with_budget(16)
        .with_seed(3)
        .with_eval_deadline(Duration::from_millis(150));
    opts.lcm.n_starts = 2;
    opts.lcm.lbfgs.max_iters = 15;
    opts.pso.particles = 15;
    opts.pso.iters = 10;
    opts.log_objective = false;

    let result = mla::tune(&problem, &opts);
    let data = gptune::trace::global().drain();
    gptune::trace::install(prev);

    assert!(result.completed);
    assert!(
        result.stats.n_failed() + result.stats.n_retries >= 1,
        "faults must fire for this workload: {:?}",
        result.stats
    );
    assert_eq!(data.dropped, 0, "ring must be large enough for the run");

    // --- Per-worker tracks ------------------------------------------------
    let worker_tracks: Vec<u64> = data
        .tracks
        .iter()
        .filter(|(_, name)| name.starts_with("gptune-worker-"))
        .map(|(id, _)| *id)
        .collect();
    assert!(
        !worker_tracks.is_empty(),
        "evaluation workers must register named tracks: {:?}",
        data.tracks
    );
    assert!(
        data.events
            .iter()
            .any(|e| e.name == "gptune.runtime.job" && worker_tracks.contains(&e.track)),
        "job spans must land on worker tracks"
    );

    // --- Fault instant-events match the stats ----------------------------
    let instants = |name: &str| {
        data.events
            .iter()
            .filter(|e| e.kind == EventKind::Instant && e.name == name)
            .count()
    };
    let faults = instants("gptune.runtime.crash")
        + instants("gptune.runtime.timeout")
        + instants("gptune.runtime.retry");
    assert!(faults >= 1, "fault instant-events must be recorded");
    assert_eq!(instants("gptune.runtime.retry"), result.stats.n_retries);
    assert_eq!(instants("gptune.runtime.timeout"), result.stats.n_timed_out);

    // --- >= 1 modeling span per iteration, tagged with its index ----------
    let modeling: Vec<_> = data
        .events
        .iter()
        .filter(|e| e.name == "gptune.core.modeling")
        .collect();
    assert_eq!(modeling.len(), result.iterations.len());
    for (i, span) in modeling.iter().enumerate() {
        assert_eq!(
            span.field("iteration").and_then(|f| f.as_u64()),
            Some(i as u64),
            "modeling span {i} must carry its iteration index"
        );
    }

    // --- Span sums agree with PhaseStats walls within 1% -------------------
    let span_sum = |name: &str| -> f64 {
        data.events
            .iter()
            .filter(|e| e.name == name)
            .filter_map(|e| e.dur_ns())
            .map(|ns| ns as f64 / 1e9)
            .sum()
    };
    let close = |spans: f64, stats: f64| {
        let denom = stats.max(1e-9);
        ((spans - stats) / denom).abs() <= 0.01
    };
    assert!(
        close(
            span_sum("gptune.core.modeling"),
            result.stats.modeling_wall.as_secs_f64()
        ),
        "modeling: spans {} vs stats {:?}",
        span_sum("gptune.core.modeling"),
        result.stats.modeling_wall
    );
    assert!(
        close(
            span_sum("gptune.core.search"),
            result.stats.search_wall.as_secs_f64()
        ),
        "search: spans {} vs stats {:?}",
        span_sum("gptune.core.search"),
        result.stats.search_wall
    );
    assert!(
        close(
            span_sum("gptune.core.objective"),
            result.stats.objective_wall.as_secs_f64()
        ),
        "objective: spans {} vs stats {:?}",
        span_sum("gptune.core.objective"),
        result.stats.objective_wall
    );

    // --- Chrome export: worker thread metas, instants, phase tracks --------
    let chrome = gptune::trace::chrome::export(&data);
    assert!(chrome.contains("\"thread_name\""));
    assert!(chrome.contains("gptune-worker-"));
    assert!(chrome.contains("\"ph\":\"i\""), "instants must export");
    assert!(chrome.contains("\"ph\":\"X\""), "spans must export");
    assert!(
        chrome.contains("modeling (master)") && chrome.contains("search (master)"),
        "master phases must render as dedicated tracks"
    );
}
