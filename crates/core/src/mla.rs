//! Algorithm 1: single-objective multitask Bayesian optimization.
//!
//! The MLA loop of paper Sec. 3.1:
//!
//! 1. **Sampling phase** — `ε = ε_tot/2` initial configurations per task
//!    from a Latin-hypercube design, evaluated (in parallel) through the
//!    black box;
//! 2. **Modeling phase** — fit one LCM surrogate jointly over all `δ`
//!    tasks by multi-start L-BFGS on the log marginal likelihood;
//! 3. **Search phase** — per task, maximize Expected Improvement with PSO
//!    and evaluate the winner; repeat 2–3 until `ε = ε_tot`.
//!
//! Parallelism mirrors Sec. 4: objective evaluations fan out over a worker
//! group, the modeling phase runs inside a bounded pool (L-BFGS restarts ∥,
//! blocked-parallel Cholesky), and the search phase parallelizes over
//! tasks.

use crate::db_bridge;
use crate::options::{Acquisition, MlaOptions, SearchMethod};
use crate::perfmodel::{FeatureScaler, LinearPerfModel};
use crate::problem::TuningProblem;
use gptune_db::CheckpointKind;
use gptune_gp::gp::{expected_improvement, lower_confidence_bound, probability_of_improvement};
use gptune_gp::{IncrementalLcm, LcmFitOptions, LcmModel, Prediction};
use gptune_opt::{cmaes, de, pso};
use gptune_runtime::{
    with_pool, EvalOutcome, FailureKind, JobStatus, Phase, PhaseTimer, WorkerGroup,
};
use gptune_space::sampling;
use gptune_space::{Config, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Result for one task.
#[derive(Debug, Clone)]
pub struct TaskResult {
    /// The task parameters.
    pub task: Config,
    /// Best configuration found.
    pub best_config: Config,
    /// Best (finite) objective value found; `INFINITY` if every run failed.
    pub best_value: f64,
    /// All evaluated `(config, value)` pairs in evaluation order — the
    /// anytime trajectory used by the stability metric.
    pub samples: Vec<(Config, f64)>,
}

impl TaskResult {
    /// Best-so-far value after each evaluation (the anytime curve).
    pub fn best_so_far(&self) -> Vec<f64> {
        let mut best = f64::INFINITY;
        self.samples
            .iter()
            .map(|(_, y)| {
                if *y < best {
                    best = *y;
                }
                best
            })
            .collect()
    }
}

/// Result of a full MLA run.
#[derive(Debug, Clone)]
pub struct MlaResult {
    /// Per-task outcomes, index-aligned with `problem.tasks`.
    pub per_task: Vec<TaskResult>,
    /// Phase-time breakdown (objective / modeling / search).
    pub stats: gptune_runtime::PhaseStats,
    /// Per-iteration phase breakdown for the iterations run by *this*
    /// process (a resumed run reports only its post-resume iterations;
    /// the aggregate `stats` still covers the whole run).
    pub iterations: Vec<IterationStat>,
    /// `false` when the run was preempted by
    /// [`MlaOptions::stop_after_iterations`] before exhausting `ε_tot`
    /// (a checkpoint holds the in-flight state; rerunning with the same
    /// options resumes it).
    pub completed: bool,
}

/// Phase breakdown of a single MLA iteration — one row of the runlog's
/// per-iteration table, mirroring the `gptune.core.modeling` /
/// `gptune.core.search` spans the iteration emitted on the trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationStat {
    /// Iteration index (continues across a checkpoint resume).
    pub iteration: usize,
    /// Cumulative evaluations owned by this run after the iteration.
    pub n_evals: usize,
    /// Wall-clock of this iteration's modeling phase.
    pub modeling_wall: std::time::Duration,
    /// Wall-clock of this iteration's search phase.
    pub search_wall: std::time::Duration,
    /// Best finite objective value observed so far across all tasks
    /// (first objective), `INFINITY` while everything has failed.
    pub incumbent: f64,
}

/// Best finite first-objective value in the archive, skipping warm-start
/// preloads — the incumbent reported per iteration.
pub(crate) fn incumbent_of(evals: &Evaluations, n_preloaded: usize) -> f64 {
    evals
        .outputs
        .iter()
        .skip(n_preloaded)
        .map(|o| o[0])
        .filter(|y| y.is_finite())
        .fold(f64::INFINITY, f64::min)
}

/// A failed evaluation, classified by the fault-tolerant runtime and kept
/// alongside the (censored) output it produced.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct EvalFailure {
    /// Index into [`Evaluations::points`] of the evaluation that failed.
    pub index: usize,
    /// Failure classification.
    pub kind: FailureKind,
    /// Execution attempts behind the failure (0 = skipped because the
    /// archive already recorded this configuration as failing).
    pub attempts: u32,
    /// Seconds lost to the failure (wall-clock for crashes/timeouts,
    /// virtual objective seconds for invalid measurements).
    pub elapsed_secs: f64,
}

/// Internal bookkeeping shared with the multi-objective driver.
pub(crate) struct Evaluations {
    /// `(task_idx, config)` of every evaluation, in order.
    pub points: Vec<(usize, Config)>,
    /// Objective vectors, aligned with `points` (failed evaluations hold
    /// `INFINITY` in every component).
    pub outputs: Vec<Vec<f64>>,
    /// Classified failures, each pointing into `points`.
    pub failures: Vec<EvalFailure>,
}

impl Evaluations {
    pub(crate) fn new() -> Evaluations {
        Evaluations {
            points: Vec::new(),
            outputs: Vec::new(),
            failures: Vec::new(),
        }
    }

    /// Deduplication key for a configuration within a task.
    pub(crate) fn contains(&self, task_idx: usize, config: &[Value]) -> bool {
        self.points
            .iter()
            .any(|(t, c)| *t == task_idx && c.as_slice() == config)
    }
}

/// Evaluates a batch of `(task, config)` points in parallel over the
/// fault-tolerant evaluation worker group, honouring min-of-k runs and
/// recording virtual objective time (output 0 is the runtime; repeated
/// runs all cost time).
///
/// Runs under the [`gptune_runtime::FaultPolicy`] derived from `opts`: a
/// panicking objective is isolated, a hung one is expired by the watchdog
/// deadline, and transient faults are retried with backoff. Failed
/// evaluations come back censored (`INFINITY` in every output component)
/// plus a classified [`EvalFailure`] record. Points matching
/// `known_failed` — the failure set persisted by earlier runs — are not
/// re-executed at all: they return the censored output immediately with
/// an `attempts == 0` record.
///
/// Retry attempts perturb the objective seed (attempt 0 reproduces the
/// fault-free seed exactly), so a *transient* fault injected by seed is
/// actually survivable while deterministic behavior is unchanged.
pub(crate) fn evaluate_batch(
    problem: &TuningProblem,
    batch: Vec<(usize, Config)>,
    opts: &MlaOptions,
    timer: &PhaseTimer,
    eval_offset: usize,
    known_failed: &[(usize, Config, FailureKind)],
) -> (Vec<Vec<f64>>, Vec<EvalFailure>) {
    let gamma = problem.n_objectives;
    let mut outputs: Vec<Vec<f64>> = vec![Vec::new(); batch.len()];
    let mut failures: Vec<EvalFailure> = Vec::new();

    // Skip configurations the archive already recorded as failing.
    let mut live: Vec<(usize, (usize, Config))> = Vec::new();
    for (k, (task_idx, config)) in batch.into_iter().enumerate() {
        match known_failed
            .iter()
            .find(|(t, c, _)| *t == task_idx && *c == config)
        {
            Some((_, _, kind)) => {
                outputs[k] = vec![f64::INFINITY; gamma];
                failures.push(EvalFailure {
                    index: eval_offset + k,
                    kind: *kind,
                    attempts: 0,
                    elapsed_secs: 0.0,
                });
                timer.add_objective_run(0.0);
                timer.add_failure(*kind);
            }
            None => live.push((k, (task_idx, config))),
        }
    }

    if !live.is_empty() {
        let group = WorkerGroup::spawn(opts.eval_workers);
        let objective = problem.objective.clone();
        let tasks = problem.tasks.clone();
        let runs = opts.runs_per_eval.max(1);
        let seed = opts.seed;
        let policy = opts.fault_policy();
        let slots: Vec<usize> = live.iter().map(|(k, _)| *k).collect();
        // PANIC-SAFETY: `group` was spawned on the previous line and no
        // shutdown() has run, so try_map on it cannot observe a closed group.
        #[allow(clippy::expect_used)]
        let outcomes = group
            .try_map(live, &policy, move |(k, (task_idx, config)), attempt| {
                let base = seed
                    .wrapping_mul(0x100000001b3)
                    .wrapping_add((eval_offset + k) as u64 * 1000)
                    .wrapping_add((attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let mut best = vec![f64::INFINITY; gamma];
                let mut spent = 0.0;
                for r in 0..runs {
                    let out = objective(&tasks[*task_idx], config, base.wrapping_add(r as u64));
                    assert_eq!(out.len(), gamma, "objective arity mismatch");
                    if out[0].is_finite() {
                        spent += out[0].max(0.0);
                    }
                    for (b, v) in best.iter_mut().zip(&out) {
                        if *v < *b {
                            *b = *v;
                        }
                    }
                }
                if best[0].is_finite() {
                    JobStatus::Ok((best, spent))
                } else {
                    JobStatus::Invalid((best, spent))
                }
            })
            .expect("freshly spawned evaluation group is open");
        group.shutdown();

        for (k, outcome) in slots.into_iter().zip(outcomes) {
            let attempts = outcome.attempts();
            if attempts > 1 {
                timer.add_retries((attempts - 1) as usize);
            }
            match outcome {
                EvalOutcome::Ok {
                    value: (best, spent),
                    ..
                } => {
                    timer.add_objective_run(spent);
                    outputs[k] = best;
                }
                EvalOutcome::Invalid {
                    value: (best, spent),
                    attempts,
                } => {
                    timer.add_objective_run(spent);
                    timer.add_failure(FailureKind::Invalid);
                    failures.push(EvalFailure {
                        index: eval_offset + k,
                        kind: FailureKind::Invalid,
                        attempts,
                        elapsed_secs: spent,
                    });
                    outputs[k] = best;
                }
                failed => {
                    // PANIC-SAFETY: this match arm only sees non-Ok
                    // outcomes, and every non-Ok EvalOutcome variant
                    // carries a failure kind by construction.
                    #[allow(clippy::expect_used)]
                    let kind = failed
                        .failure_kind()
                        .expect("non-Ok outcome has a failure kind");
                    let elapsed_secs = match &failed {
                        EvalOutcome::Crashed { elapsed, .. }
                        | EvalOutcome::TimedOut { elapsed, .. }
                        | EvalOutcome::Transient { elapsed, .. } => elapsed.as_secs_f64(),
                        _ => 0.0,
                    };
                    timer.add_objective_run(0.0);
                    timer.add_failure(kind);
                    failures.push(EvalFailure {
                        index: eval_offset + k,
                        kind,
                        attempts,
                        elapsed_secs,
                    });
                    outputs[k] = vec![f64::INFINITY; gamma];
                }
            }
        }
    }

    failures.sort_by_key(|f| f.index);
    (outputs, failures)
}

/// Failure set persisted by earlier runs, loaded for runs that read from
/// the archive (warm starts and checkpointed runs) so known-crashing
/// configurations are never re-executed. Fresh runs without a database
/// skip nothing.
// PANIC-SAFETY: an unreadable archive on a run that was explicitly asked
// to use one is fatal by design (same policy as db_bridge::open_db).
#[allow(clippy::panic)]
pub(crate) fn load_known_failures(
    db: &Option<gptune_db::Db>,
    problem: &TuningProblem,
    sig: u64,
    opts: &MlaOptions,
) -> Vec<(usize, Config, FailureKind)> {
    if !(opts.warm_start_from_db || opts.checkpointing()) {
        return Vec::new();
    }
    match db {
        Some(db) => db_bridge::known_failures(db, problem, sig)
            .unwrap_or_else(|e| panic!("gptune-db: cannot read failure records: {e}")),
        None => Vec::new(),
    }
}

/// Draws the initial per-task designs (sampling phase).
pub(crate) fn initial_designs(
    problem: &TuningProblem,
    n_init: usize,
    rng: &mut StdRng,
) -> Vec<(usize, Config)> {
    let mut batch = Vec::with_capacity(n_init * problem.n_tasks());
    for task_idx in 0..problem.n_tasks() {
        let samples = sampling::sample_space(&problem.tuning_space, n_init, rng, 200);
        assert!(
            !samples.is_empty(),
            "no feasible configuration found for task {task_idx} — check constraints"
        );
        for s in samples {
            batch.push((task_idx, s));
        }
    }
    batch
}

/// The surrogate input representation: normalized tuning coordinates plus
/// (optionally) performance-model features.
pub(crate) struct SurrogateInputs {
    /// Normalized LCM inputs, one per evaluation.
    pub xs: Vec<Vec<f64>>,
    /// Task index per evaluation.
    pub task_of: Vec<usize>,
    /// Feature machinery to enrich *new* candidate points, when enabled.
    pub enrich: Option<Enricher>,
}

/// Enriches candidate configurations with scaled performance-model features.
pub(crate) struct Enricher {
    scaler: FeatureScaler,
    fitted: Option<LinearPerfModel>,
}

impl Enricher {
    /// Features for a candidate config of a given task.
    pub(crate) fn features(
        &self,
        problem: &TuningProblem,
        task_idx: usize,
        config: &[Value],
    ) -> Vec<f64> {
        // PANIC-SAFETY: an Enricher is only constructed (below) when
        // `problem.model.is_some()`, so model_features cannot return None.
        #[allow(clippy::expect_used)]
        let raw = problem
            .model_features(task_idx, config)
            .expect("enricher requires a model");
        let cooked = match &self.fitted {
            Some(m) => vec![m.predict(&raw)],
            None => raw,
        };
        self.scaler.transform(&cooked)
    }
}

/// Builds the LCM inputs from the evaluation archive (paper Sec. 3.3 when
/// model features are enabled).
pub(crate) fn build_inputs(
    problem: &TuningProblem,
    evals: &Evaluations,
    objective_idx: usize,
    opts: &MlaOptions,
) -> (SurrogateInputs, Vec<f64>) {
    let y: Vec<f64> = censor_failures(
        evals
            .outputs
            .iter()
            .map(|o| transform_objective(o[objective_idx], opts.log_objective))
            .collect(),
    );

    let base: Vec<Vec<f64>> = evals
        .points
        .iter()
        .map(|(_, c)| problem.tuning_space.normalize(c))
        .collect();
    let task_of: Vec<usize> = evals.points.iter().map(|(t, _)| *t).collect();

    let enrich = if opts.use_model_features && problem.model.is_some() {
        // PANIC-SAFETY: guarded by `problem.model.is_some()` on the line
        // above; model_features only returns None when the model is absent.
        #[allow(clippy::expect_used)]
        let raw: Vec<Vec<f64>> = evals
            .points
            .iter()
            .map(|(t, c)| problem.model_features(*t, c).expect("model present"))
            .collect();
        let fitted = if opts.fit_model_coefficients {
            // Fit against the raw (not log) runtime: Eq. 7 is additive in
            // machine time.
            let raw_y: Vec<f64> = evals.outputs.iter().map(|o| o[objective_idx]).collect();
            LinearPerfModel::fit(&raw, &raw_y)
        } else {
            None
        };
        let cooked: Vec<Vec<f64>> = match &fitted {
            Some(m) => raw.iter().map(|r| vec![m.predict(r)]).collect(),
            None => raw,
        };
        let scaler = FeatureScaler::fit(&cooked);
        Some(Enricher { scaler, fitted })
    } else {
        None
    };

    let xs: Vec<Vec<f64>> = match &enrich {
        Some(e) => evals
            .points
            .iter()
            .zip(&base)
            .map(|((t, c), b)| {
                let mut v = b.clone();
                v.extend(e.features(problem, *t, c));
                v
            })
            .collect(),
        None => base,
    };

    (
        SurrogateInputs {
            xs,
            task_of,
            enrich,
        },
        y,
    )
}

/// Objective transform for modeling (log for positive runtimes).
pub(crate) fn transform_objective(y: f64, log: bool) -> f64 {
    if !y.is_finite() {
        return f64::INFINITY; // censored by `censor_failures` before the fit
    }
    if log {
        y.max(1e-12).ln()
    } else {
        y
    }
}

/// Censors failed evaluations for the surrogate fit: every non-finite
/// target becomes a penalty one spread above the worst observed success —
/// GPTune's "large value" treatment of failed runs. The surrogate learns
/// that the region is bad without an infinity degenerating the fit (the
/// raw `INFINITY` would collapse onto the worst success, erasing the
/// failure signal), and a batch where *everything* failed still yields a
/// finite (constant) target vector instead of panicking the LCM.
pub(crate) fn censor_failures(mut y: Vec<f64>) -> Vec<f64> {
    if y.iter().all(|v| v.is_finite()) {
        return y;
    }
    let finite: Vec<f64> = y.iter().copied().filter(|v| v.is_finite()).collect();
    let penalty = if finite.is_empty() {
        0.0
    } else {
        let worst = finite.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let best = finite.iter().cloned().fold(f64::INFINITY, f64::min);
        worst + (worst - best).max(1.0)
    };
    for v in &mut y {
        if !v.is_finite() {
            *v = penalty;
        }
    }
    y
}

/// One EI/PSO search for a single task. Returns a feasible, non-duplicate
/// configuration.
#[allow(clippy::too_many_arguments)]
pub(crate) fn search_task(
    problem: &TuningProblem,
    model: &LcmModel,
    inputs: &SurrogateInputs,
    evals: &Evaluations,
    task_idx: usize,
    y_best_model: f64,
    opts: &MlaOptions,
    rng: &mut StdRng,
) -> Config {
    let beta = problem.beta();

    // Shared pieces of the acquisition: the model-input embedding of a
    // candidate (normalized coordinates plus optional enrichment features)
    // and the negated acquisition score of a posterior prediction (all
    // acquisition scores are maximized; the optimizers minimize).
    let to_x_model = |u: &[f64], config: &Config| -> Vec<f64> {
        match &inputs.enrich {
            Some(e) => {
                let mut v = u.to_vec();
                v.extend(e.features(problem, task_idx, config));
                v
            }
            None => u.to_vec(),
        }
    };
    let score = |pred: &Prediction| -> f64 {
        -match opts.acquisition {
            Acquisition::ExpectedImprovement => expected_improvement(pred, y_best_model),
            Acquisition::LowerConfidenceBound { kappa } => lower_confidence_bound(pred, kappa),
            Acquisition::ProbabilityOfImprovement => probability_of_improvement(pred, y_best_model),
        }
    };

    // Scalar acquisition for the per-point search methods (DE, CMA-ES).
    let mut acq = |u: &[f64]| -> f64 {
        let config = problem.tuning_space.denormalize(u);
        if !problem.tuning_space.is_valid(&config) {
            // Worst possible score outside the feasible region (EI would be
            // 0 but LCB can be negative, so +∞ is the safe barrier).
            return f64::INFINITY;
        }
        let pred = model.predict(task_idx, &to_x_model(u, &config));
        score(&pred)
    };

    // Batched acquisition for PSO: the whole swarm is scored through one
    // blocked multi-RHS posterior solve ([`LcmModel::predict_batch`])
    // instead of a triangular solve per particle. Infeasible candidates
    // keep the +∞ barrier and are excluded from the batch.
    let mut acq_batch = |us: &[Vec<f64>]| -> Vec<f64> {
        let mut scores = vec![f64::INFINITY; us.len()];
        let mut live: Vec<usize> = Vec::with_capacity(us.len());
        let mut xs_model: Vec<Vec<f64>> = Vec::with_capacity(us.len());
        for (i, u) in us.iter().enumerate() {
            let config = problem.tuning_space.denormalize(u);
            if problem.tuning_space.is_valid(&config) {
                live.push(i);
                xs_model.push(to_x_model(u, &config));
            }
        }
        let preds = model.predict_batch(task_idx, &xs_model);
        for (i, pred) in live.into_iter().zip(&preds) {
            scores[i] = score(pred);
        }
        scores
    };

    // Seed the swarm with the incumbent best of this task.
    let mut seeds: Vec<Vec<f64>> = Vec::new();
    let mut best_seen = f64::INFINITY;
    let mut best_cfg: Option<&Config> = None;
    for ((t, c), o) in evals.points.iter().zip(&evals.outputs) {
        if *t == task_idx && o[0] < best_seen {
            best_seen = o[0];
            best_cfg = Some(c);
        }
    }
    if let Some(c) = best_cfg {
        seeds.push(problem.tuning_space.normalize(c));
    }

    // The swarm/population budget is shared across methods so ablations
    // compare at equal acquisition-evaluation cost.
    let acq_budget = opts.pso.particles * (opts.pso.iters + 1);
    let result = match opts.search_method {
        SearchMethod::Pso => pso::minimize_batch(&mut acq_batch, beta, &seeds, &opts.pso, rng),
        SearchMethod::DifferentialEvolution => {
            let de_opts = de::DeOptions {
                population: opts.pso.particles.max(4),
                generations: opts.pso.iters,
                ..Default::default()
            };
            de::minimize(&mut acq, beta, &seeds, &de_opts, rng)
        }
        SearchMethod::Cmaes => {
            let cm_opts = cmaes::CmaesOptions {
                max_evals: acq_budget,
                ..Default::default()
            };
            cmaes::minimize(
                &mut acq,
                beta,
                seeds.first().map(|s| s.as_slice()),
                &cm_opts,
                rng,
            )
        }
    };
    let mut candidate = problem.tuning_space.denormalize(&result.x);

    // Repair: feasible and not a duplicate of an existing sample.
    let mut tries = 0;
    while (!problem.tuning_space.is_valid(&candidate) || evals.contains(task_idx, &candidate))
        && tries < 100
    {
        let jitter: Vec<f64> = result
            .x
            .iter()
            .map(|v| (v + rng.gen_range(-0.08..0.08)).clamp(0.0, 1.0))
            .collect();
        candidate = problem.tuning_space.denormalize(&jitter);
        tries += 1;
    }
    if !problem.tuning_space.is_valid(&candidate) || evals.contains(task_idx, &candidate) {
        // Full fallback: random feasible sample.
        let fresh = sampling::sample_space(&problem.tuning_space, 1, rng, 500);
        if let Some(f) = fresh.into_iter().next() {
            candidate = f;
        }
    }
    candidate
}

/// Runs single-objective multitask MLA (Algorithm 1).
///
/// With [`MlaOptions::with_db`] the run participates in the shared history
/// database: completed runs archive their evaluations, warm starts preload
/// matching archived records, and (with
/// [`MlaOptions::checkpoint_every`] > 0) the in-flight state is
/// periodically checkpointed. A rerun with identical options resumes a
/// matching checkpoint and — because all post-sampling randomness is
/// derived from `(seed, iteration, task)` — converges to the *identical*
/// result an uninterrupted run would have produced.
///
/// # Panics
/// Panics if the problem is multi-objective (`γ > 1`) — use
/// [`crate::mla_mo::tune_multiobjective`], or select one output with a
/// wrapper objective. Also panics when a configured archive cannot be
/// opened or written (durability was requested; losing it is loud).
pub fn tune(problem: &TuningProblem, opts: &MlaOptions) -> MlaResult {
    assert_eq!(
        problem.n_objectives, 1,
        "mla::tune is single-objective; γ = {} given",
        problem.n_objectives
    );
    let timer = PhaseTimer::new();
    let delta = problem.n_tasks();
    let n_init = opts.initial_samples();
    let db = db_bridge::open_db(opts);
    let sig = db_bridge::problem_signature(problem);
    let known_failed = load_known_failures(&db, problem, sig, opts);

    // --- Resume: adopt a checkpoint that matches this exact run ---
    let mut evals = Evaluations::new();
    let mut iteration = 0usize;
    let mut eps = 0usize;
    let mut n_preloaded = 0usize;
    let mut resumed = false;
    if opts.checkpointing() {
        // PANIC-SAFETY: MlaOptions::checkpointing() returns true only when
        // db_path is set, and open_db opened a Db for every set db_path.
        #[allow(clippy::expect_used)]
        let db = db.as_ref().expect("checkpointing() implies db_path");
        match db_bridge::load_checkpoint_traced(db, sig, opts.seed) {
            Ok(Some(ckpt))
                if db_bridge::checkpoint_matches(&ckpt, CheckpointKind::Mla, opts, delta) =>
            {
                evals = db_bridge::evals_from_checkpoint(&ckpt);
                iteration = ckpt.iteration;
                eps = ckpt.eps;
                n_preloaded = ckpt.n_preloaded;
                timer.restore(db_bridge::stats_from_db(&ckpt.stats));
                resumed = true;
            }
            Ok(_) => {} // no checkpoint, or one from a different run shape
            Err(e) => eprintln!("gptune-db: ignoring unreadable checkpoint: {e}"),
        }
    }

    if !resumed {
        // --- Warm start: preload matching archived evaluations (free
        // observations for the surrogate; excluded from budget/results) ---
        if opts.warm_start_from_db {
            if let Some(db) = &db {
                // PANIC-SAFETY: unreadable archive on an explicit
                // warm-start request is fatal by design.
                #[allow(clippy::panic)]
                let pre = db_bridge::preload_from_db(db, problem, sig)
                    .unwrap_or_else(|e| panic!("gptune-db: cannot read archive: {e}"));
                for (t, cfg, out) in pre {
                    if !evals.contains(t, &cfg) {
                        evals.points.push((t, cfg));
                        evals.outputs.push(out);
                    }
                }
                n_preloaded = evals.points.len();
            }
        }

        // --- Sampling phase ---
        let mut rng = StdRng::seed_from_u64(opts.seed);
        let batch = initial_designs(problem, n_init, &mut rng);
        let offset = evals.points.len();
        let (outputs, fails) = timer.time(Phase::Objective, || {
            evaluate_batch(problem, batch.clone(), opts, &timer, offset, &known_failed)
        });
        evals.points.extend(batch);
        evals.outputs.extend(outputs);
        evals.failures.extend(fails);
        eps = (evals.points.len() - n_preloaded) / delta.max(1);

        // Checkpoint the (expensive) initial design immediately: a run
        // killed in its first iteration then resumes without re-evaluating.
        if opts.checkpointing() {
            // PANIC-SAFETY: checkpointing() implies db_path is set, and
            // open_db opened a Db for every set db_path.
            #[allow(clippy::expect_used)]
            db_bridge::write_checkpoint(
                db.as_ref().expect("checkpointing() implies db_path"),
                CheckpointKind::Mla,
                sig,
                opts,
                &evals,
                iteration,
                eps,
                n_preloaded,
                &timer.snapshot(),
            );
        }
    }

    // --- MLA iterations ---
    let mut iters_this_process = 0usize;
    let mut iteration_stats: Vec<IterationStat> = Vec::new();
    let mut completed = true;
    // Persistent surrogate: under an incremental `opts.refit` schedule,
    // iterations between full refits extend the existing Cholesky factor
    // in O(n²) instead of re-optimizing hyperparameters from scratch.
    let mut surrogate = IncrementalLcm::new(opts.refit);
    while eps < opts.eps_total {
        if opts
            .stop_after_iterations
            .is_some_and(|n| iters_this_process >= n)
        {
            completed = false;
            break;
        }
        let iter_span = timer
            .tracer()
            .span("gptune.core.mla.iteration")
            .with("iteration", iteration as u64)
            .with("eps", eps as u64);
        // Modeling phase.
        let (inputs, y) = build_inputs(problem, &evals, 0, opts);
        let lcm_opts = LcmFitOptions {
            seed: opts.lcm.seed.wrapping_add(iteration as u64 * 7919),
            ..opts.lcm.clone()
        };
        let (_refit_mode, modeling_wall) =
            timer.time_iter(Phase::Modeling, iteration as u64, || {
                with_pool(opts.model_workers, || {
                    surrogate.update(&inputs.xs, &inputs.task_of, &y, delta, &lcm_opts)
                })
            });
        // PANIC-SAFETY: update always leaves a fitted model in place.
        #[allow(clippy::expect_used)]
        let model = surrogate.model().expect("surrogate updated this iteration");

        // Search phase: one new point per task, parallel over tasks.
        let (new_points, search_wall): (Vec<(usize, Config)>, _) =
            timer.time_iter(Phase::Search, iteration as u64, || {
                let seeds: Vec<u64> = (0..delta)
                    .map(|i| {
                        opts.seed
                            .wrapping_add(0x5bd1e995)
                            .wrapping_mul(iteration as u64 + 1)
                            .wrapping_add(i as u64 * 104729)
                    })
                    .collect();
                with_pool(opts.search_workers, || {
                    (0..delta)
                        .into_par_iter()
                        .map(|task_idx| {
                            let mut trng = StdRng::seed_from_u64(seeds[task_idx]);
                            let y_best_model = evals
                                .points
                                .iter()
                                .zip(&evals.outputs)
                                .filter(|((t, _), o)| *t == task_idx && o[0].is_finite())
                                .map(|(_, o)| transform_objective(o[0], opts.log_objective))
                                .fold(f64::INFINITY, f64::min);
                            let cfg = search_task(
                                problem,
                                model,
                                &inputs,
                                &evals,
                                task_idx,
                                y_best_model,
                                opts,
                                &mut trng,
                            );
                            (task_idx, cfg)
                        })
                        .collect()
                })
            });

        // Evaluate the δ new points.
        let offset = evals.points.len();
        let (outputs, fails) = timer.time(Phase::Objective, || {
            evaluate_batch(
                problem,
                new_points.clone(),
                opts,
                &timer,
                offset,
                &known_failed,
            )
        });
        evals.points.extend(new_points);
        evals.outputs.extend(outputs);
        evals.failures.extend(fails);
        iteration_stats.push(IterationStat {
            iteration,
            n_evals: evals.points.len() - n_preloaded,
            modeling_wall,
            search_wall,
            incumbent: incumbent_of(&evals, n_preloaded),
        });
        drop(iter_span);
        eps += 1;
        iteration += 1;
        iters_this_process += 1;

        if opts.checkpointing() && iteration % opts.checkpoint_every == 0 {
            // PANIC-SAFETY: checkpointing() implies db_path is set, and
            // open_db opened a Db for every set db_path.
            #[allow(clippy::expect_used)]
            db_bridge::write_checkpoint(
                db.as_ref().expect("checkpointing() implies db_path"),
                CheckpointKind::Mla,
                sig,
                opts,
                &evals,
                iteration,
                eps,
                n_preloaded,
                &timer.snapshot(),
            );
        }
    }

    // --- Archive / checkpoint the outcome ---
    if let Some(db) = &db {
        if completed {
            let prov = db_bridge::provenance(opts, delta);
            // PANIC-SAFETY: losing the final archive write would silently
            // discard the run's results; fail loudly instead.
            #[allow(clippy::panic)]
            db_bridge::archive_run(
                db,
                problem,
                sig,
                &evals,
                n_preloaded,
                &prov,
                &timer.snapshot(),
            )
            .unwrap_or_else(|e| panic!("gptune-db: cannot archive run: {e}"));
            if opts.checkpointing() {
                let _ = db.clear_checkpoint(sig, opts.seed);
            }
        } else if opts.checkpointing() {
            // Preempted: persist the final in-flight state for the resumer.
            db_bridge::write_checkpoint(
                db,
                CheckpointKind::Mla,
                sig,
                opts,
                &evals,
                iteration,
                eps,
                n_preloaded,
                &timer.snapshot(),
            );
        }
    }

    finalize(
        problem,
        evals,
        timer,
        iteration_stats,
        n_preloaded,
        completed,
    )
}

/// Assembles per-task results from the evaluation archive. The first
/// `n_preloaded` evaluations are archived warm-start records, not this
/// run's work — they informed the surrogate but are excluded from the
/// reported samples/best so budgeted runs stay comparable.
pub(crate) fn finalize(
    problem: &TuningProblem,
    evals: Evaluations,
    timer: PhaseTimer,
    iterations: Vec<IterationStat>,
    n_preloaded: usize,
    completed: bool,
) -> MlaResult {
    let per_task = (0..problem.n_tasks())
        .map(|task_idx| {
            let mut samples = Vec::new();
            let mut best_value = f64::INFINITY;
            let mut best_config: Option<Config> = None;
            for ((t, c), o) in evals.points.iter().zip(&evals.outputs).skip(n_preloaded) {
                if *t != task_idx {
                    continue;
                }
                samples.push((c.clone(), o[0]));
                if o[0] < best_value {
                    best_value = o[0];
                    best_config = Some(c.clone());
                }
            }
            TaskResult {
                task: problem.tasks[task_idx].clone(),
                best_config: best_config
                    .unwrap_or_else(|| samples.first().map(|(c, _)| c.clone()).unwrap_or_default()),
                best_value,
                samples,
            }
        })
        .collect();
    MlaResult {
        per_task,
        stats: timer.snapshot(),
        iterations,
        completed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gptune_space::{Param, Space};

    /// Smooth 1-D family: minimum at x = 0.2 + 0.06·t.
    fn toy_problem(delta: usize) -> TuningProblem {
        let ts = Space::builder().param(Param::real("t", 0.0, 10.0)).build();
        let ps = Space::builder().param(Param::real("x", 0.0, 1.0)).build();
        let tasks: Vec<Config> = (0..delta).map(|i| vec![Value::Real(i as f64)]).collect();
        TuningProblem::new("toy", ts, ps, tasks, |t, x, _| {
            let opt = 0.2 + 0.06 * t[0].as_real();
            vec![1.0 + (x[0].as_real() - opt).powi(2)]
        })
    }

    fn fast_opts(budget: usize) -> MlaOptions {
        let mut o = MlaOptions::default().with_budget(budget).with_seed(3);
        o.lcm.n_starts = 2;
        o.lcm.lbfgs.max_iters = 30;
        o.pso.particles = 20;
        o.pso.iters = 15;
        o.log_objective = false;
        o
    }

    #[test]
    fn single_task_finds_minimum() {
        let p = toy_problem(1);
        let r = tune(&p, &fast_opts(14));
        assert_eq!(r.per_task.len(), 1);
        let best_x = r.per_task[0].best_config[0].as_real();
        assert!((best_x - 0.2).abs() < 0.08, "best_x {best_x}");
        assert!(r.per_task[0].best_value < 1.01);
        assert_eq!(r.per_task[0].samples.len(), 14);
    }

    #[test]
    fn multitask_finds_all_minima() {
        let p = toy_problem(3);
        let r = tune(&p, &fast_opts(12));
        for (i, tr) in r.per_task.iter().enumerate() {
            let opt = 0.2 + 0.06 * i as f64;
            assert!(
                (tr.best_config[0].as_real() - opt).abs() < 0.12,
                "task {i}: {} vs {opt}",
                tr.best_config[0].as_real()
            );
        }
    }

    #[test]
    fn beats_random_sampling_at_equal_budget() {
        // The acquisition loop must add value over its own initial LHS.
        let p = toy_problem(2);
        let mut o = fast_opts(16);
        o.n_initial = Some(8);
        let r = tune(&p, &o);
        let mla_best: f64 = r.per_task.iter().map(|t| t.best_value).sum();
        // Pure random: same budget entirely random (n_initial = ε_tot).
        let mut o2 = fast_opts(16);
        o2.n_initial = Some(16);
        let r2 = tune(&p, &o2);
        let rand_best: f64 = r2.per_task.iter().map(|t| t.best_value).sum();
        assert!(
            mla_best <= rand_best + 1e-6,
            "MLA {mla_best} vs random {rand_best}"
        );
    }

    #[test]
    fn stats_track_phases_and_evals() {
        let p = toy_problem(2);
        let r = tune(&p, &fast_opts(10));
        assert_eq!(r.stats.n_evals, 2 * 10);
        assert!(r.stats.modeling_wall.as_nanos() > 0);
        assert!(r.stats.search_wall.as_nanos() > 0);
        assert!(r.stats.objective_virtual_secs > 0.0);
    }

    #[test]
    fn iteration_breakdown_rows_are_consistent() {
        let p = toy_problem(2);
        let r = tune(&p, &fast_opts(10));
        // Budget 10 → 5 initial samples, then one iteration per remaining ε.
        assert_eq!(r.iterations.len(), 5);
        for (k, it) in r.iterations.iter().enumerate() {
            assert_eq!(it.iteration, k);
            assert!(it.incumbent.is_finite());
        }
        // n_evals is cumulative and strictly increasing (δ per iteration).
        for w in r.iterations.windows(2) {
            assert_eq!(w[1].n_evals, w[0].n_evals + 2);
            assert!(w[1].incumbent <= w[0].incumbent, "incumbent must improve");
        }
        // PANIC-SAFETY: asserted non-empty above (len == 5).
        #[allow(clippy::unwrap_used)]
        let last = r.iterations.last().unwrap();
        assert_eq!(last.n_evals, r.stats.n_evals);
        // Per-iteration walls sum to at most the aggregate phase walls
        // (the aggregate also counts nothing else for modeling/search).
        let modeling: std::time::Duration = r.iterations.iter().map(|i| i.modeling_wall).sum();
        let search: std::time::Duration = r.iterations.iter().map(|i| i.search_wall).sum();
        assert_eq!(modeling, r.stats.modeling_wall);
        assert_eq!(search, r.stats.search_wall);
    }

    #[test]
    fn best_so_far_is_monotone() {
        let p = toy_problem(1);
        let r = tune(&p, &fast_opts(12));
        let curve = r.per_task[0].best_so_far();
        for w in curve.windows(2) {
            assert!(w[1] <= w[0]);
        }
        assert_eq!(curve.len(), 12);
    }

    #[test]
    fn respects_constraints_and_failures() {
        // Infeasible region below x = 0.5; objective fails (∞) for x > 0.9.
        let ts = Space::builder().param(Param::real("t", 0.0, 1.0)).build();
        let ps = Space::builder()
            .param(Param::real("x", 0.0, 1.0))
            .constraint("x>=0.5", |c| c[0].as_real() >= 0.5)
            .build();
        let p = TuningProblem::new(
            "constrained",
            ts,
            ps,
            vec![vec![Value::Real(0.0)]],
            |_, x, _| {
                let xv = x[0].as_real();
                if xv > 0.9 {
                    vec![f64::INFINITY]
                } else {
                    vec![(xv - 0.6).powi(2) + 0.5]
                }
            },
        );
        let r = tune(&p, &fast_opts(12));
        let tr = &r.per_task[0];
        for (c, _) in &tr.samples {
            assert!(c[0].as_real() >= 0.5, "sampled infeasible {c:?}");
        }
        assert!(tr.best_value.is_finite());
        assert!((tr.best_config[0].as_real() - 0.6).abs() < 0.1);
    }

    #[test]
    fn no_duplicate_samples_within_task() {
        let p = toy_problem(1);
        let r = tune(&p, &fast_opts(16));
        let s = &r.per_task[0].samples;
        for i in 0..s.len() {
            for j in (i + 1)..s.len() {
                assert_ne!(s[i].0, s[j].0, "duplicate at {i},{j}");
            }
        }
    }

    #[test]
    fn model_features_accepted() {
        let p = toy_problem(2).with_model(|t, x| {
            let opt = 0.2 + 0.06 * t[0].as_real();
            vec![(x[0].as_real() - opt).abs()]
        });
        let mut o = fast_opts(10);
        o.use_model_features = true;
        let r = tune(&p, &o);
        assert!(r.per_task.iter().all(|t| t.best_value.is_finite()));
    }

    #[test]
    fn alternative_acquisitions_also_converge() {
        let p = toy_problem(1);
        for acq in [
            Acquisition::LowerConfidenceBound { kappa: 2.0 },
            Acquisition::ProbabilityOfImprovement,
        ] {
            let mut o = fast_opts(14);
            o.acquisition = acq;
            let r = tune(&p, &o);
            let best_x = r.per_task[0].best_config[0].as_real();
            assert!((best_x - 0.2).abs() < 0.15, "{acq:?}: best_x {best_x}");
        }
    }

    #[test]
    fn alternative_search_methods_also_converge() {
        let p = toy_problem(1);
        for method in [SearchMethod::DifferentialEvolution, SearchMethod::Cmaes] {
            let mut o = fast_opts(14);
            o.search_method = method;
            let r = tune(&p, &o);
            let best_x = r.per_task[0].best_config[0].as_real();
            assert!((best_x - 0.2).abs() < 0.15, "{method:?}: best_x {best_x}");
        }
    }

    #[test]
    #[should_panic]
    fn multiobjective_rejected() {
        let p = toy_problem(1).with_objectives(2);
        let _ = tune(&p, &fast_opts(8));
    }

    #[test]
    fn censoring_penalizes_failures_above_worst_success() {
        let y = censor_failures(vec![1.0, f64::INFINITY, 3.0, f64::NAN]);
        assert_eq!(y[0], 1.0);
        assert_eq!(y[2], 3.0);
        // Penalty = worst + max(spread, 1) = 3 + 2 = 5.
        assert_eq!(y[1], 5.0);
        assert_eq!(y[3], 5.0);
        // All-failed batches become a finite constant (no LCM panic).
        let all = censor_failures(vec![f64::INFINITY, f64::NAN]);
        assert_eq!(all, vec![0.0, 0.0]);
        // Fully-finite input is untouched.
        assert_eq!(censor_failures(vec![2.0, 4.0]), vec![2.0, 4.0]);
    }

    #[test]
    fn crashing_objective_is_isolated_and_censored() {
        // The objective panics on the left half of the domain; LHS
        // stratification guarantees the sampling phase hits it, and the
        // tuner must survive, classify, and still find the right optimum.
        let ts = Space::builder().param(Param::real("t", 0.0, 1.0)).build();
        let ps = Space::builder().param(Param::real("x", 0.0, 1.0)).build();
        let p = TuningProblem::new("crashy", ts, ps, vec![vec![Value::Real(0.0)]], |_, x, _| {
            let xv = x[0].as_real();
            assert!(xv >= 0.5, "simulated application crash at x = {xv}");
            vec![1.0 + (xv - 0.7).powi(2)]
        });
        let r = tune(&p, &fast_opts(10));
        let tr = &r.per_task[0];
        assert_eq!(tr.samples.len(), 10);
        assert!(tr.best_value.is_finite());
        assert!((tr.best_config[0].as_real() - 0.7).abs() < 0.1);
        assert!(r.stats.n_crashed >= 1, "stats: {:?}", r.stats);
        // Crashed evaluations appear in the samples as censored INFINITY.
        assert!(tr.samples.iter().any(|(_, y)| y.is_infinite()));
        assert_eq!(r.stats.n_evals, 10);
    }

    #[test]
    fn evaluate_batch_skips_known_failed_configs() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let calls = Arc::new(AtomicUsize::new(0));
        let calls2 = Arc::clone(&calls);
        let ts = Space::builder().param(Param::real("t", 0.0, 1.0)).build();
        let ps = Space::builder().param(Param::real("x", 0.0, 1.0)).build();
        let p = TuningProblem::new(
            "skippy",
            ts,
            ps,
            vec![vec![Value::Real(0.0)]],
            move |_, x, _| {
                calls2.fetch_add(1, Ordering::SeqCst);
                vec![x[0].as_real()]
            },
        );
        let bad: Config = vec![Value::Real(0.25)];
        let good: Config = vec![Value::Real(0.75)];
        let known = vec![(0usize, bad.clone(), FailureKind::Crashed)];
        let timer = PhaseTimer::new();
        let (outputs, fails) = evaluate_batch(
            &p,
            vec![(0, bad), (0, good)],
            &MlaOptions::default(),
            &timer,
            5,
            &known,
        );
        assert_eq!(calls.load(Ordering::SeqCst), 1, "known-failed re-executed");
        assert!(outputs[0][0].is_infinite());
        assert_eq!(outputs[1], vec![0.75]);
        assert_eq!(fails.len(), 1);
        assert_eq!(fails[0].index, 5);
        assert_eq!(fails[0].kind, FailureKind::Crashed);
        assert_eq!(fails[0].attempts, 0);
        assert_eq!(timer.snapshot().n_crashed, 1);
        assert_eq!(timer.snapshot().n_evals, 2);
    }
}
