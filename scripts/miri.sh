#!/usr/bin/env bash
# Miri gate for the journal_v2 binary codec (optional, not part of tier1).
#
# journal_v2 is the one module that does byte-level encoding/decoding of
# untrusted on-disk data (varints, bit-packed frames, f64 bit patterns),
# so it is where undefined behaviour — out-of-bounds reads on truncated
# input, misaligned loads, uninitialised padding — would hide from normal
# tests. Miri interprets the codec round-trip tests and rejects any UB.
#
# Needs a nightly toolchain with the miri component:
#   rustup +nightly component add miri
# Miri runs ~100x slower than native and has no real filesystem, so this
# stays scoped to the in-memory codec tests (the `journal_v2::` unit
# filter) instead of the whole db suite.
#
# Usage:
#   scripts/miri.sh              # journal_v2 codec round-trip tests
#   scripts/miri.sh <filter...>  # extra args forwarded to `cargo miri test`
set -euo pipefail
cd "$(dirname "$0")/.."

if ! rustup toolchain list 2>/dev/null | grep -q nightly; then
    echo "miri.sh: a nightly toolchain is required (rustup toolchain install nightly)" >&2
    exit 1
fi
if ! rustup +nightly component list 2>/dev/null | grep -q "miri.*(installed)"; then
    echo "miri.sh: the miri component is required (rustup +nightly component add miri)" >&2
    exit 1
fi

# File accesses inside the codec tests (tempdir round-trips) need Miri's
# disabled-isolation mode; the codec logic itself is pure in-memory.
export MIRIFLAGS="${MIRIFLAGS:--Zmiri-disable-isolation}"

echo "== Miri: journal_v2 codec round-trip tests =="
cargo +nightly miri test -p gptune-db journal_v2:: "$@"

echo "miri.sh: clean"
