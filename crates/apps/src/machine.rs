//! Parameterised machine model — the stand-in for NERSC Cori.
//!
//! Cori's Haswell partition (paper Sec. 6.2): 2,388 nodes, two 16-core
//! Intel Xeon E5-2698v3 per node, 128 GB DDR4. The simulators charge
//! computation at an effective per-core flop rate and communication with a
//! latency/bandwidth (α-β) model, which is exactly the granularity of the
//! paper's own performance model (Eq. 7: `C_flop·t_flop + C_msg·t_msg +
//! C_vol·t_vol`).

/// Machine parameters used by all application simulators.
#[derive(Debug, Clone)]
pub struct MachineModel {
    /// Cores per node.
    pub cores_per_node: usize,
    /// Number of nodes allocated to the application.
    pub nodes: usize,
    /// Effective per-core flop rate for well-blocked BLAS-3 kernels
    /// (flops/s).
    pub flop_rate: f64,
    /// Per-message latency (s) — `t_msg` of Eq. 7.
    pub latency: f64,
    /// Inverse bandwidth per 8-byte word (s/word) — `t_vol` of Eq. 7.
    pub time_per_word: f64,
    /// Log-normal run-to-run noise σ (0 disables noise).
    pub noise_sigma: f64,
}

impl MachineModel {
    /// A Cori-Haswell-like machine with the given node count.
    ///
    /// 32 cores/node; ~36.8 Gflop/s/core peak derated to an effective
    /// 20 Gflop/s for blocked kernels; ~1 µs MPI latency; ~8 GB/s per-link
    /// bandwidth → 1e-9 s per 8-byte word; 5% run-to-run noise (the level
    /// at which min-of-3 sampling visibly helps, as on the real machine).
    pub fn cori(nodes: usize) -> MachineModel {
        MachineModel {
            cores_per_node: 32,
            nodes: nodes.max(1),
            flop_rate: 2.0e10,
            latency: 1.0e-6,
            time_per_word: 1.0e-9,
            noise_sigma: 0.05,
        }
    }

    /// Same machine without stochastic noise (for deterministic tests).
    pub fn cori_noiseless(nodes: usize) -> MachineModel {
        MachineModel {
            noise_sigma: 0.0,
            ..MachineModel::cori(nodes)
        }
    }

    /// Total core count available to the application (`p_max`).
    pub fn total_cores(&self) -> usize {
        self.cores_per_node * self.nodes
    }

    /// Effective parallel efficiency of `threads` BLAS threads within one
    /// process (sub-linear: memory-bandwidth bound).
    pub fn thread_efficiency(&self, threads: usize) -> f64 {
        (threads.max(1) as f64).powf(0.9)
    }

    /// Effective BLAS-3 efficiency of blocking factor `b` (small blocks are
    /// BLAS-2-like; the ramp saturates around b≈64).
    pub fn block_efficiency(&self, b: f64) -> f64 {
        let b = b.max(1.0);
        (b / (b + 16.0)).max(0.05)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cori_core_counts() {
        assert_eq!(MachineModel::cori(1).total_cores(), 32);
        assert_eq!(MachineModel::cori(64).total_cores(), 2048);
        assert_eq!(MachineModel::cori(0).total_cores(), 32); // clamped
    }

    #[test]
    fn block_efficiency_monotone_saturating() {
        let m = MachineModel::cori(1);
        assert!(m.block_efficiency(1.0) < m.block_efficiency(16.0));
        assert!(m.block_efficiency(16.0) < m.block_efficiency(128.0));
        assert!(m.block_efficiency(4096.0) <= 1.0);
    }

    #[test]
    fn thread_efficiency_sublinear() {
        let m = MachineModel::cori(1);
        assert_eq!(m.thread_efficiency(1), 1.0);
        let e32 = m.thread_efficiency(32);
        assert!(e32 > 16.0 && e32 < 32.0);
    }

    #[test]
    fn noiseless_variant() {
        assert_eq!(MachineModel::cori_noiseless(4).noise_sigma, 0.0);
        assert_eq!(MachineModel::cori(4).noise_sigma, 0.05);
    }
}
