//! Hot-path perf recorder for the distance-cached LCM refactor.
//!
//! Measures the two acceptance claims of the BLAS-3 PR and writes them to
//! `BENCH_lcm.json` (path overridable as the first CLI argument):
//!
//! * likelihood+gradient: distance-cached [`LcmModel::nll_at`] vs the
//!   retained pre-refactor [`LcmModel::nll_at_reference`] at n ∈ {64, 256}
//!   (dim 4, 2 tasks, Q = 2), plus a full multi-start fit at n = 256 —
//!   the fit must show ≥ 2× cached over `reference_impl`;
//! * candidate scoring: [`LcmModel::predict_batch`] vs per-point
//!   [`LcmModel::predict`] (and the retained `predict_reference`) over
//!   m = 512 candidates — the batch must score ≥ 4× faster per candidate.
//!
//! Each repetition times the optimized and baseline paths back-to-back and
//! the recorded speedup is the median of the per-pair ratios, so a
//! system-wide slowdown mid-run cannot skew the comparison; every timed
//! result is folded into a printed sink so the optimizer cannot elide the
//! work. Run via `scripts/bench_perf.sh`.

use gptune::gp::{LcmFitOptions, LcmHyperparams, LcmModel};
use gptune::opt::lbfgs::LbfgsOptions;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

const DIM: usize = 4;
const TASKS: usize = 2;
const Q: usize = 2;
const M_CANDS: usize = 512;

fn data(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<usize>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let xs: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..DIM).map(|_| rng.gen::<f64>()).collect())
        .collect();
    let task_of: Vec<usize> = (0..n).map(|i| i % TASKS).collect();
    let y: Vec<f64> = xs
        .iter()
        .zip(&task_of)
        .map(|(x, &t)| (x[0] * 5.0).sin() + x[1] + 0.2 * t as f64)
        .collect();
    (xs, task_of, y)
}

fn theta() -> Vec<f64> {
    LcmHyperparams {
        q: Q,
        n_tasks: TASKS,
        dim: DIM,
        lengthscales: vec![vec![0.4; DIM], vec![0.8; DIM]],
        a: vec![vec![0.6; TASKS], vec![0.3; TASKS]],
        b: vec![vec![0.02; TASKS]; Q],
        d: vec![0.05; TASKS],
    }
    .pack()
}

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn time_ns<F: FnMut() -> f64>(sink: &mut f64, f: &mut F) -> f64 {
    let t = Instant::now();
    *sink += f();
    t.elapsed().as_nanos() as f64
}

/// Paired before/after timing: each repetition times the cached path and
/// the reference path back-to-back, and the reported speedup is the
/// *median of per-pair ratios* — a system-wide slowdown mid-run hits both
/// sides of a pair equally instead of skewing whichever side happened to
/// be measured during it. Returns `(cached_ns, reference_ns, speedup)`
/// medians; results are accumulated into `sink` so the work cannot be
/// elided.
fn paired_ns<F, G>(reps: usize, sink: &mut f64, mut cached: F, mut reference: G) -> (f64, f64, f64)
where
    F: FnMut() -> f64,
    G: FnMut() -> f64,
{
    let mut tc = Vec::with_capacity(reps);
    let mut tr = Vec::with_capacity(reps);
    let mut ratio = Vec::with_capacity(reps);
    for _ in 0..reps {
        let c = time_ns(sink, &mut cached);
        let r = time_ns(sink, &mut reference);
        tc.push(c);
        tr.push(r);
        ratio.push(r / c);
    }
    (median(tc), median(tr), median(ratio))
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_lcm.json".to_string());
    let mut sink = 0.0;

    // --- nll_and_grad, cached vs retained reference -----------------------
    let th = theta();
    let mut grad = vec![0.0; th.len()];
    let mut grad_ref = vec![0.0; th.len()];
    let mut nll_rows = Vec::new();
    for &n in &[64usize, 256] {
        let (xs, task_of, y) = data(n, 9);
        // Warm both paths once before timing.
        sink += LcmModel::nll_at(&xs, &task_of, &y, TASKS, Q, &th, &mut grad);
        sink += LcmModel::nll_at_reference(&xs, &task_of, &y, TASKS, Q, &th, &mut grad);
        let (cached, reference, speedup) = paired_ns(
            9,
            &mut sink,
            || LcmModel::nll_at(&xs, &task_of, &y, TASKS, Q, &th, &mut grad),
            || LcmModel::nll_at_reference(&xs, &task_of, &y, TASKS, Q, &th, &mut grad_ref),
        );
        nll_rows.push((n, cached, reference, speedup));
    }

    // --- full fit at n = 256, cached vs `reference_impl` ------------------
    let (xs, task_of, y) = data(256, 9);
    let opts = LcmFitOptions {
        n_starts: 2,
        lbfgs: LbfgsOptions {
            max_iters: 20,
            ..Default::default()
        },
        ..Default::default()
    };
    let ref_opts = LcmFitOptions {
        reference_impl: true,
        ..opts.clone()
    };
    let (fit_cached, fit_reference, fit_speedup) = paired_ns(
        5,
        &mut sink,
        || LcmModel::fit(&xs, &task_of, &y, TASKS, &opts).nll(),
        || LcmModel::fit(&xs, &task_of, &y, TASKS, &ref_opts).nll(),
    );

    // --- candidate scoring: batch vs per-point ----------------------------
    let model = LcmModel::fit(&xs, &task_of, &y, TASKS, &opts);
    let mut rng = StdRng::seed_from_u64(17);
    let cands: Vec<Vec<f64>> = (0..M_CANDS)
        .map(|_| (0..DIM).map(|_| rng.gen::<f64>()).collect())
        .collect();
    sink += model.predict_batch(0, &cands)[0].mean;
    let m = M_CANDS as f64;
    let (batch, pt, pt_speedup) = paired_ns(
        7,
        &mut sink,
        || {
            model
                .predict_batch(0, &cands)
                .iter()
                .map(|p| p.mean + p.variance)
                .sum()
        },
        || cands.iter().map(|c| model.predict(0, c).mean).sum(),
    );
    let (_, pt_ref, ref_speedup) = paired_ns(
        7,
        &mut sink,
        || {
            model
                .predict_batch(0, &cands)
                .iter()
                .map(|p| p.mean + p.variance)
                .sum()
        },
        || {
            cands
                .iter()
                .map(|c| model.predict_reference(0, c).mean)
                .sum()
        },
    );
    let (batch, pt, pt_ref) = (batch / m, pt / m, pt_ref / m);

    // --- report -----------------------------------------------------------
    let mut json = String::from("{\n  \"config\": {");
    json.push_str(&format!(
        "\"dim\": {DIM}, \"n_tasks\": {TASKS}, \"q\": {Q}, \"m_candidates\": {M_CANDS}}},\n"
    ));
    json.push_str("  \"nll_and_grad\": {\n");
    for (idx, (n, cached, reference, speedup)) in nll_rows.iter().enumerate() {
        let comma = if idx + 1 < nll_rows.len() { "," } else { "" };
        json.push_str(&format!(
            "    \"n{n}\": {{\"cached_ns\": {cached:.0}, \"reference_ns\": {reference:.0}, \
             \"speedup\": {speedup:.2}}}{comma}\n",
        ));
    }
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"fit_n256_2tasks\": {{\"cached_ms\": {:.1}, \"reference_ms\": {:.1}, \
         \"speedup\": {:.2}}},\n",
        fit_cached / 1e6,
        fit_reference / 1e6,
        fit_speedup
    ));
    json.push_str(&format!(
        "  \"candidate_scoring_m512\": {{\"per_point_ns\": {pt:.0}, \
         \"per_point_reference_ns\": {pt_ref:.0}, \"batch_ns\": {batch:.0}, \
         \"speedup_batch_vs_point\": {pt_speedup:.2}, \
         \"speedup_batch_vs_reference\": {ref_speedup:.2}}}\n",
    ));
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_lcm.json");
    print!("{json}");
    eprintln!("sink {sink}");
    eprintln!("wrote {out_path}");
    assert!(
        fit_reference >= fit_cached,
        "cached fit slower than reference — hot path regressed"
    );
}
