//! Wire-form problem specification.
//!
//! A serve client describes its tuning problem structurally — parameter
//! spaces, task list, objective count — and the server reconstructs a
//! [`TuningProblem`] from that description. The objective function itself
//! never crosses the wire: the *client* owns evaluation (that is the whole
//! point of the suggest/report inversion), so the server-side problem
//! carries a placeholder objective that is never invoked.
//!
//! Constraint closures do not travel either; only box bounds survive
//! serialization. A client whose space has constraints must validate
//! suggested configurations itself and report failures as `inf` outputs.

use gptune_core::TuningProblem;
use gptune_db::json::{self, Json};
use gptune_space::{Config, Param, ParamKind, Space, Value};

/// Structural description of a tuning problem, serializable to the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct ProblemSpec {
    /// Problem name (journal/session key component).
    pub name: String,
    /// Task-space parameters (box bounds only).
    pub task_params: Vec<Param>,
    /// Tuning-space parameters (box bounds only).
    pub tuning_params: Vec<Param>,
    /// The task instances this spec tunes.
    pub tasks: Vec<Config>,
    /// Objective count `γ`.
    pub n_objectives: usize,
}

impl ProblemSpec {
    /// Extracts the structural spec of an existing problem.
    pub fn of(problem: &TuningProblem) -> ProblemSpec {
        ProblemSpec {
            name: problem.name.clone(),
            task_params: problem.task_space.params().to_vec(),
            tuning_params: problem.tuning_space.params().to_vec(),
            tasks: problem.tasks.clone(),
            n_objectives: problem.n_objectives,
        }
    }

    /// Reconstructs a server-side [`TuningProblem`]. The objective is a
    /// placeholder (the server never evaluates; clients do).
    pub fn to_problem(&self) -> Result<TuningProblem, String> {
        if self.tasks.is_empty() {
            return Err("spec has no tasks".into());
        }
        if self.n_objectives == 0 {
            return Err("spec has zero objectives".into());
        }
        let mut ts = Space::builder();
        for p in &self.task_params {
            ts = ts.param(p.clone());
        }
        let mut ps = Space::builder();
        for p in &self.tuning_params {
            ps = ps.param(p.clone());
        }
        let task_space = ts.build();
        let tuning_space = ps.build();
        for (i, t) in self.tasks.iter().enumerate() {
            if t.len() != task_space.dim() {
                return Err(format!("task {i} arity mismatch"));
            }
        }
        let gamma = self.n_objectives;
        Ok(TuningProblem::new(
            self.name.clone(),
            task_space,
            tuning_space,
            self.tasks.clone(),
            move |_, _, _| vec![f64::INFINITY; gamma],
        )
        .with_objectives(gamma))
    }

    /// Serializes to the wire JSON form.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("objectives".into(), Json::Int(self.n_objectives as i64)),
            (
                "task_space".into(),
                Json::Arr(self.task_params.iter().map(param_to_json).collect()),
            ),
            (
                "tuning_space".into(),
                Json::Arr(self.tuning_params.iter().map(param_to_json).collect()),
            ),
            (
                "tasks".into(),
                Json::Arr(self.tasks.iter().map(|t| config_to_json(t)).collect()),
            ),
        ])
    }

    /// Parses the wire JSON form.
    pub fn from_json(j: &Json) -> Result<ProblemSpec, String> {
        let name = j
            .get("name")
            .and_then(|v| v.as_str())
            .ok_or("spec: missing name")?
            .to_string();
        let n_objectives = j
            .get("objectives")
            .and_then(|v| v.as_u64())
            .ok_or("spec: missing objectives")? as usize;
        let params = |key: &str| -> Result<Vec<Param>, String> {
            j.get(key)
                .and_then(|v| v.as_arr())
                .ok_or_else(|| format!("spec: missing {key}"))?
                .iter()
                .map(param_from_json)
                .collect()
        };
        let task_params = params("task_space")?;
        let tuning_params = params("tuning_space")?;
        let tasks = j
            .get("tasks")
            .and_then(|v| v.as_arr())
            .ok_or("spec: missing tasks")?
            .iter()
            .map(config_from_json)
            .collect::<Result<Vec<Config>, String>>()?;
        Ok(ProblemSpec {
            name,
            task_params,
            tuning_params,
            tasks,
            n_objectives,
        })
    }
}

/// One space value in wire form: `{"r":x}`, `{"i":n}`, or `{"c":k}`
/// (matching the `gptune-db` journal's value tags).
pub fn value_to_json(v: &Value) -> Json {
    match v {
        Value::Real(x) => Json::Obj(vec![("r".into(), Json::from_f64(*x))]),
        Value::Int(x) => Json::Obj(vec![("i".into(), Json::Int(*x))]),
        Value::Cat(k) => Json::Obj(vec![("c".into(), Json::from_u64(*k as u64))]),
    }
}

/// Parses one wire-form space value.
pub fn value_from_json(j: &Json) -> Result<Value, String> {
    if let Some(x) = j.get("r").and_then(|v| v.as_f64()) {
        return Ok(Value::Real(x));
    }
    if let Some(x) = j.get("i").and_then(|v| v.as_i64()) {
        return Ok(Value::Int(x));
    }
    if let Some(x) = j.get("c").and_then(|v| v.as_u64()) {
        return Ok(Value::Cat(x as usize));
    }
    Err(format!("bad value: {j}"))
}

/// Serializes a configuration (array of wire values).
pub fn config_to_json(c: &[Value]) -> Json {
    Json::Arr(c.iter().map(value_to_json).collect())
}

/// Parses a configuration.
pub fn config_from_json(j: &Json) -> Result<Config, String> {
    j.as_arr()
        .ok_or("config is not an array")?
        .iter()
        .map(value_from_json)
        .collect()
}

fn param_to_json(p: &Param) -> Json {
    let mut fields = vec![("name".into(), Json::Str(p.name.clone()))];
    match &p.kind {
        ParamKind::Real { low, high, log } => {
            fields.push(("kind".into(), Json::Str("real".into())));
            fields.push(("low".into(), Json::from_f64(*low)));
            fields.push(("high".into(), Json::from_f64(*high)));
            fields.push(("log".into(), Json::Bool(*log)));
        }
        ParamKind::Int { low, high, log } => {
            fields.push(("kind".into(), Json::Str("int".into())));
            fields.push(("low".into(), Json::Int(*low)));
            fields.push(("high".into(), Json::Int(*high)));
            fields.push(("log".into(), Json::Bool(*log)));
        }
        ParamKind::Categorical { choices } => {
            fields.push(("kind".into(), Json::Str("cat".into())));
            fields.push((
                "choices".into(),
                Json::Arr(choices.iter().map(|c| Json::Str(c.clone())).collect()),
            ));
        }
    }
    Json::Obj(fields)
}

fn param_from_json(j: &Json) -> Result<Param, String> {
    let name = j
        .get("name")
        .and_then(|v| v.as_str())
        .ok_or("param: missing name")?;
    let kind = j
        .get("kind")
        .and_then(|v| v.as_str())
        .ok_or("param: missing kind")?;
    let log = j.get("log").and_then(|v| v.as_bool()).unwrap_or(false);
    match kind {
        "real" => {
            let low = j
                .get("low")
                .and_then(|v| v.as_f64())
                .ok_or("param: missing low")?;
            let high = j
                .get("high")
                .and_then(|v| v.as_f64())
                .ok_or("param: missing high")?;
            if !(low < high) {
                return Err(format!("param {name}: need low < high"));
            }
            if log && low <= 0.0 {
                return Err(format!("param {name}: log scale needs low > 0"));
            }
            Ok(if log {
                Param::real_log(name, low, high)
            } else {
                Param::real(name, low, high)
            })
        }
        "int" => {
            let low = j
                .get("low")
                .and_then(|v| v.as_i64())
                .ok_or("param: missing low")?;
            let high = j
                .get("high")
                .and_then(|v| v.as_i64())
                .ok_or("param: missing high")?;
            if low > high {
                return Err(format!("param {name}: need low <= high"));
            }
            if log && low <= 0 {
                return Err(format!("param {name}: log scale needs low > 0"));
            }
            Ok(if log {
                Param::int_log(name, low, high)
            } else {
                Param::int(name, low, high)
            })
        }
        "cat" => {
            let choices: Vec<String> = j
                .get("choices")
                .and_then(|v| v.as_arr())
                .ok_or("param: missing choices")?
                .iter()
                .map(|c| c.as_str().map(str::to_string))
                .collect::<Option<Vec<String>>>()
                .ok_or("param: non-string choice")?;
            if choices.is_empty() {
                return Err(format!("param {name}: empty choices"));
            }
            let refs: Vec<&str> = choices.iter().map(String::as_str).collect();
            Ok(Param::categorical(name, &refs))
        }
        other => Err(format!("param {name}: unknown kind {other:?}")),
    }
}

/// Round-trips a `Json` document through its compact text form (used by
/// tests; the protocol layer does this implicitly on every frame).
pub fn reparse(j: &Json) -> Result<Json, String> {
    json::parse(&j.to_string()).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ProblemSpec {
        ProblemSpec {
            name: "qr".into(),
            task_params: vec![Param::int("m", 100, 10_000), Param::int("n", 100, 10_000)],
            tuning_params: vec![
                Param::int("mb", 1, 16),
                Param::real_log("tol", 1e-8, 1e-2),
                Param::categorical("layout", &["row", "col"]),
            ],
            tasks: vec![
                vec![Value::Int(1000), Value::Int(1000)],
                vec![Value::Int(2000), Value::Int(500)],
            ],
            n_objectives: 1,
        }
    }

    #[test]
    fn spec_roundtrips_through_wire_text() {
        let s = spec();
        let j = reparse(&s.to_json()).unwrap();
        let back = ProblemSpec::from_json(&j).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn spec_builds_a_problem() {
        let p = spec().to_problem().unwrap();
        assert_eq!(p.n_tasks(), 2);
        assert_eq!(p.beta(), 3);
        assert_eq!(p.n_objectives, 1);
        // The placeholder objective is inert but callable.
        let cfg = p.tuning_space.denormalize(&[0.5, 0.5, 0.5]);
        assert!(p.evaluate(0, &cfg, 0)[0].is_infinite());
    }

    #[test]
    fn spec_of_problem_roundtrips() {
        let p = spec().to_problem().unwrap();
        assert_eq!(ProblemSpec::of(&p), spec());
    }

    #[test]
    fn values_roundtrip_including_nonfinite() {
        for v in [
            Value::Real(0.25),
            Value::Real(f64::INFINITY),
            Value::Int(-3),
            Value::Cat(2),
        ] {
            let j = reparse(&value_to_json(&v)).unwrap();
            assert_eq!(value_from_json(&j).unwrap(), v);
        }
    }

    #[test]
    fn bad_specs_are_rejected() {
        assert!(ProblemSpec::from_json(&Json::Null).is_err());
        let mut s = spec();
        s.tasks = vec![vec![Value::Int(1)]]; // wrong arity
        assert!(s.to_problem().is_err());
        let mut s2 = spec();
        s2.tasks.clear();
        assert!(s2.to_problem().is_err());
    }
}
