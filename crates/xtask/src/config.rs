//! `lint.toml` — the file-level allowlist for the lint suite.
//!
//! The format is a deliberately tiny TOML subset (parsed on std alone):
//!
//! ```toml
//! [[allow]]
//! rule = "GX403"
//! path = "crates/sparse/src/pattern.rs"
//! reason = "bucket map is sorted before any output is derived"
//! ```
//!
//! `rule` is a rule ID (`GX101`, …) or a tier glob (`GX4*`); `path` is a
//! repo-relative path prefix; `reason` is mandatory — an allowlist entry
//! without a reason is itself a lint error (GX291). The GX7xx/GX303
//! concurrency rules additionally accept an optional `fn = "dispatch"`
//! key scoping the entry to one function — path-wide suppression would
//! hide future real bugs in the same file.

/// One allowlist entry.
#[derive(Debug, Clone, Default)]
pub struct AllowEntry {
    pub rule: String,
    pub path: String,
    pub reason: String,
    /// Optional function scope (empty = whole path prefix). Only the
    /// fn-aware concurrency rules consult this; entries carrying it never
    /// match the per-file rules.
    pub func: String,
    /// Line in lint.toml where the entry starts (for diagnostics).
    pub line: u32,
}

/// Parsed allowlist.
#[derive(Debug, Default)]
pub struct Config {
    pub allows: Vec<AllowEntry>,
}

/// A malformed `lint.toml` (unknown key, bad syntax). The lint gate treats
/// this as a hard error: a typo must not silently widen the allowlist.
#[derive(Debug)]
pub struct ConfigError {
    pub line: u32,
    pub msg: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.msg)
    }
}

impl Config {
    /// True when `rule` at `path` is allowlisted. `rule` matches exactly
    /// or via a trailing-`*` glob; `path` matches by prefix. Fn-scoped
    /// entries never match here — they only apply through
    /// [`Config::allowed_fn`].
    pub fn allowed(&self, rule: &str, path: &str) -> Option<&AllowEntry> {
        self.allows
            .iter()
            .find(|e| e.func.is_empty() && entry_matches(e, rule, path))
    }

    /// Fn-aware variant used by the concurrency tier: entries without an
    /// `fn` key match any function, entries with one match only it.
    pub fn allowed_fn(&self, rule: &str, path: &str, func: &str) -> bool {
        self.allows
            .iter()
            .any(|e| (e.func.is_empty() || e.func == func) && entry_matches(e, rule, path))
    }

    /// Parses the subset format. Empty/missing content parses to an empty
    /// allowlist.
    pub fn parse(src: &str) -> Result<Config, ConfigError> {
        let mut cfg = Config::default();
        let mut current: Option<AllowEntry> = None;
        for (idx, raw) in src.lines().enumerate() {
            let lineno = idx as u32 + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[allow]]" {
                if let Some(e) = current.take() {
                    finish(e, &mut cfg)?;
                }
                current = Some(AllowEntry {
                    line: lineno,
                    ..AllowEntry::default()
                });
                continue;
            }
            if line.starts_with('[') {
                return Err(ConfigError {
                    line: lineno,
                    msg: format!("unknown table {line:?} (only [[allow]] is supported)"),
                });
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(ConfigError {
                    line: lineno,
                    msg: format!("expected `key = \"value\"`, got {line:?}"),
                });
            };
            let key = key.trim();
            let value = value.trim();
            let value = value
                .strip_prefix('"')
                .and_then(|v| v.strip_suffix('"'))
                .ok_or(ConfigError {
                    line: lineno,
                    msg: format!("value for {key:?} must be a double-quoted string"),
                })?;
            let Some(entry) = current.as_mut() else {
                return Err(ConfigError {
                    line: lineno,
                    msg: "key outside of an [[allow]] table".to_string(),
                });
            };
            match key {
                "rule" => entry.rule = value.to_string(),
                "path" => entry.path = value.to_string(),
                "reason" => entry.reason = value.to_string(),
                "fn" => entry.func = value.to_string(),
                other => {
                    return Err(ConfigError {
                        line: lineno,
                        msg: format!("unknown key {other:?} (expected rule/path/fn/reason)"),
                    })
                }
            }
        }
        if let Some(e) = current.take() {
            finish(e, &mut cfg)?;
        }
        Ok(cfg)
    }
}

fn entry_matches(e: &AllowEntry, rule: &str, path: &str) -> bool {
    let rule_ok = match e.rule.strip_suffix('*') {
        Some(prefix) => rule.starts_with(prefix),
        None => e.rule == rule,
    };
    rule_ok && path.starts_with(e.path.as_str())
}

/// Validates one completed entry: all three keys are mandatory (GX291's
/// "allowlist entries must carry a reason" is enforced at parse time).
fn finish(e: AllowEntry, cfg: &mut Config) -> Result<(), ConfigError> {
    for (field, val) in [("rule", &e.rule), ("path", &e.path), ("reason", &e.reason)] {
        if val.is_empty() {
            return Err(ConfigError {
                line: e.line,
                msg: format!("[[allow]] entry is missing required key {field:?}"),
            });
        }
    }
    cfg.allows.push(e);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_and_matches() {
        let cfg = Config::parse(
            "# comment\n\n[[allow]]\nrule = \"GX403\"\npath = \"crates/sparse/src/\"\nreason = \"sorted later\"\n\n[[allow]]\nrule = \"GX1*\"\npath = \"crates/la/src/ord.rs\"\nreason = \"comparator home\"\n",
        )
        .expect("parses");
        assert_eq!(cfg.allows.len(), 2);
        assert!(cfg
            .allowed("GX403", "crates/sparse/src/pattern.rs")
            .is_some());
        assert!(cfg.allowed("GX403", "crates/gp/src/lcm.rs").is_none());
        assert!(cfg.allowed("GX101", "crates/la/src/ord.rs").is_some());
        assert!(cfg.allowed("GX102", "crates/la/src/ord.rs").is_some());
        assert!(cfg.allowed("GX201", "crates/la/src/ord.rs").is_none());
    }

    #[test]
    fn fn_scoped_entries_match_only_that_fn() {
        let cfg = Config::parse(
            "[[allow]]\nrule = \"GX702\"\npath = \"crates/serve/src/server.rs\"\nfn = \"dispatch\"\nreason = \"journal-before-ack\"\n",
        )
        .expect("parses");
        assert!(cfg.allowed_fn("GX702", "crates/serve/src/server.rs", "dispatch"));
        assert!(!cfg.allowed_fn("GX702", "crates/serve/src/server.rs", "flush_slot"));
        // Fn-scoped entries are invisible to the per-file matcher.
        assert!(cfg.allowed("GX702", "crates/serve/src/server.rs").is_none());
    }

    #[test]
    fn missing_reason_is_an_error() {
        let err = Config::parse("[[allow]]\nrule = \"GX101\"\npath = \"x\"\n").unwrap_err();
        assert!(err.msg.contains("reason"), "{err}");
    }

    #[test]
    fn unknown_key_is_an_error() {
        let err = Config::parse("[[allow]]\nrule = \"GX101\"\npath = \"x\"\nreson = \"typo\"\n")
            .unwrap_err();
        assert!(err.msg.contains("reson"), "{err}");
    }

    #[test]
    fn empty_is_fine() {
        assert!(Config::parse("").expect("empty ok").allows.is_empty());
    }
}
