//! Integration tests for the history database and baseline tuners used in
//! the comparison experiments (Fig. 6, Table 4).

use gptune::apps::{HpcApp, HypreApp, MachineModel, PdgeqrfApp};
use gptune::baselines::{HpBandSterLike, OpenTunerLike, RandomTuner, Tuner};
use gptune::core::{metrics, mla, History, MlaOptions};
use gptune::problem_from_app;
use gptune::space::Value;
use std::sync::Arc;

fn fast_opts(budget: usize, seed: u64) -> MlaOptions {
    let mut o = MlaOptions::default().with_budget(budget).with_seed(seed);
    o.lcm.n_starts = 2;
    o.lcm.lbfgs.max_iters = 20;
    o
}

#[test]
fn history_roundtrips_an_mla_run() {
    let app: Arc<dyn HpcApp> = Arc::new(PdgeqrfApp::new(MachineModel::cori(2), 10_000));
    let problem = problem_from_app(
        Arc::clone(&app),
        vec![vec![Value::Int(4000), Value::Int(4000)]],
    );
    let r = mla::tune(&problem, &fast_opts(8, 1));
    let h = History::from_mla(&problem.name, &r);
    assert_eq!(h.len(), 8);

    let dir = std::env::temp_dir().join("gptune_it_history");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("run.json");
    h.save(&path).unwrap();
    let loaded = History::load(&path).unwrap();
    assert_eq!(h, loaded);
    // The archived best matches the run's best.
    let best = loaded
        .best_for_task(&[Value::Int(4000), Value::Int(4000)])
        .unwrap();
    assert_eq!(best.outputs[0], r.per_task[0].best_value);
    std::fs::remove_file(&path).ok();
}

#[test]
fn all_baselines_run_all_apps_budget_exactly() {
    let app: Arc<dyn HpcApp> = Arc::new(HypreApp::new(MachineModel::cori(1)));
    let problem = problem_from_app(
        Arc::clone(&app),
        vec![vec![Value::Int(30), Value::Int(30), Value::Int(30)]],
    );
    let tuners: Vec<Box<dyn Tuner>> = vec![
        Box::new(RandomTuner),
        Box::new(OpenTunerLike::default()),
        Box::new(HpBandSterLike::default()),
    ];
    for t in &tuners {
        let run = t.tune_task(&problem, 0, 12, 3);
        assert_eq!(run.samples.len(), 12, "{}", t.name());
        assert!(run.best_value.is_finite(), "{}", t.name());
        for (c, _) in &run.samples {
            assert!(problem.tuning_space.is_valid(c), "{}", t.name());
        }
    }
}

#[test]
fn gptune_competitive_with_baselines_on_qr() {
    // Aggregate over tasks: GPTune's summed best should not lose to either
    // baseline by more than 10% at a small budget (it typically wins).
    let app: Arc<dyn HpcApp> = Arc::new(PdgeqrfApp::new(MachineModel::cori(4), 16_000));
    let tasks: Vec<Vec<Value>> = [4000i64, 8000, 12_000]
        .iter()
        .map(|&n| vec![Value::Int(n), Value::Int(n)])
        .collect();
    let problem = problem_from_app(Arc::clone(&app), tasks.clone());

    let budget = 10;
    let gp = mla::tune(&problem, &fast_opts(budget, 7));
    let gp_best: Vec<f64> = gp.per_task.iter().map(|t| t.best_value).collect();

    for tuner in [
        &OpenTunerLike::default() as &dyn Tuner,
        &HpBandSterLike::default(),
    ] {
        let other: Vec<f64> = (0..tasks.len())
            .map(|i| {
                tuner
                    .tune_task(&problem, i, budget, 100 + i as u64)
                    .best_value
            })
            .collect();
        let gp_sum: f64 = gp_best.iter().sum();
        let other_sum: f64 = other.iter().sum();
        assert!(
            gp_sum <= other_sum * 1.10,
            "GPTune {gp_sum} vs {} {other_sum}",
            tuner.name()
        );
    }
}

#[test]
fn win_task_and_stability_pipeline() {
    // Exercise the metric pipeline on real tuner outputs.
    let app: Arc<dyn HpcApp> = Arc::new(PdgeqrfApp::new(MachineModel::cori(2), 8000));
    let tasks = vec![
        vec![Value::Int(3000), Value::Int(3000)],
        vec![Value::Int(6000), Value::Int(6000)],
    ];
    let problem = problem_from_app(Arc::clone(&app), tasks.clone());
    let budget = 8;

    let gp = mla::tune(&problem, &fast_opts(budget, 11));
    let gp_best: Vec<f64> = gp.per_task.iter().map(|t| t.best_value).collect();
    let gp_traj: Vec<Vec<f64>> = gp
        .per_task
        .iter()
        .map(|t| t.samples.iter().map(|(_, y)| *y).collect())
        .collect();

    let rnd: Vec<_> = (0..tasks.len())
        .map(|i| RandomTuner.tune_task(&problem, i, budget, 200 + i as u64))
        .collect();
    let rnd_best: Vec<f64> = rnd.iter().map(|r| r.best_value).collect();
    let rnd_traj: Vec<Vec<f64>> = rnd.iter().map(|r| r.trajectory()).collect();

    let wt = metrics::win_task(&gp_best, &rnd_best);
    assert!((0.0..=100.0).contains(&wt));

    let y_star: Vec<f64> = (0..tasks.len())
        .map(|i| gp_best[i].min(rnd_best[i]))
        .collect();
    let s_gp = metrics::mean_stability(&gp_traj, &y_star);
    let s_rnd = metrics::mean_stability(&rnd_traj, &y_star);
    assert!(s_gp >= 1.0 && s_rnd >= 1.0);
}
