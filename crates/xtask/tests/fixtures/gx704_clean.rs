// GX704 clean fixture: a pure Relaxed counter (no synchronizing op on
// the same field anywhere) and a correctly paired Release/Acquire flag.

fn bump(s: &Shared) {
    s.hits.fetch_add(1, Ordering::Relaxed);
}

fn read_hits(s: &Shared) -> u64 {
    s.hits.load(Ordering::Relaxed)
}

fn publish(s: &Shared) {
    s.ready.store(true, Ordering::Release);
}

fn poll(s: &Shared) -> bool {
    s.ready.load(Ordering::Acquire)
}
