//! hypre (BoomerAMG-preconditioned GMRES) simulator.
//!
//! Task `t = [n1, n2, n3]`: the structured 3-D Poisson grid (paper
//! Sec. 6.2). Tuning: the 3-D process grid `(p1, p2)` (with
//! `p3 = ⌊P/(p1·p2)⌋`) plus AMG algorithmic knobs — 12 parameters of
//! integer, real and categorical type, matching the paper's `β = 12`.
//!
//! The cost model is a textbook AMG complexity analysis: the coarsening and
//! interpolation choices set the operator complexity `C_op` and the
//! per-V-cycle convergence factor `ρ`; iterations to a fixed tolerance are
//! `ln(tol)/ln(ρ)`; per-iteration cost is `C_op · gridpoints / P_eff` plus
//! boundary-exchange communication that depends on the process-grid aspect
//! relative to the (possibly anisotropic) domain.

use crate::{noise, HpcApp, MachineModel};
use gptune_space::{Config, Param, Space, Value};

/// Coarsening algorithm choices (BoomerAMG's common set).
pub const COARSEN_CHOICES: [&str; 6] = ["CLJP", "Falgout", "PMIS", "HMIS", "RS", "CGC"];
/// Smoother choices.
pub const RELAX_CHOICES: [&str; 5] = ["Jacobi", "hybrid-GS", "l1-GS", "SOR", "Chebyshev"];
/// Interpolation operator choices.
pub const INTERP_CHOICES: [&str; 6] = [
    "classical",
    "direct",
    "multipass",
    "extended+i",
    "standard",
    "FF1",
];

/// hypre simulator bound to a machine.
pub struct HypreApp {
    machine: MachineModel,
    task_space: Space,
    tuning_space: Space,
}

impl HypreApp {
    /// Creates the app; grid sizes range over `[10, 100]` per dimension as
    /// in Table 4's task sampling.
    pub fn new(machine: MachineModel) -> HypreApp {
        let p_max = machine.total_cores() as i64;
        let task_space = Space::builder()
            .param(Param::int("n1", 10, 100))
            .param(Param::int("n2", 10, 100))
            .param(Param::int("n3", 10, 100))
            .build();
        let tuning_space = Space::builder()
            .param(Param::int_log("p1", 1, p_max)) // 0
            .param(Param::int_log("p2", 1, p_max)) // 1
            .param(Param::categorical("coarsen", &COARSEN_CHOICES)) // 2
            .param(Param::categorical("relax", &RELAX_CHOICES)) // 3
            .param(Param::categorical("interp", &INTERP_CHOICES)) // 4
            .param(Param::real("strong_threshold", 0.1, 0.9)) // 5
            .param(Param::real("trunc_factor", 0.0, 0.5)) // 6
            .param(Param::int("pmax_elmts", 2, 12)) // 7
            .param(Param::int("agg_levels", 0, 4)) // 8
            .param(Param::int("relax_sweeps", 1, 4)) // 9
            .param(Param::real("max_row_sum", 0.5, 1.0)) // 10
            .param(Param::int("smooth_levels", 0, 3)) // 11
            .constraint("p1*p2<=P", move |c| {
                c[0].as_int().saturating_mul(c[1].as_int()) <= p_max
            })
            .build();
        HypreApp {
            machine,
            task_space,
            tuning_space,
        }
    }

    /// Noise-free runtime model of GMRES+BoomerAMG to a fixed tolerance.
    pub fn runtime_model(&self, task: &[i64], x: &HypreConfig) -> f64 {
        let p_max = self.machine.total_cores() as f64;
        let (n1, n2, n3) = (task[0] as f64, task[1] as f64, task[2] as f64);
        let points = n1 * n2 * n3;
        let p1 = x.p1 as f64;
        let p2 = x.p2 as f64;
        let p3 = (p_max / (p1 * p2)).floor().max(1.0);
        let p = p1 * p2 * p3;

        // --- Operator complexity from coarsening/interpolation choices ---
        let coarsen_complexity = [1.9, 1.6, 1.25, 1.3, 1.7, 1.5][x.coarsen];
        let interp_growth = [1.15, 1.0, 1.05, 1.3, 1.2, 1.1][x.interp];
        // Truncation and pmax prune interpolation stencils (less memory /
        // work, slightly worse convergence).
        let prune = 1.0 - 0.35 * x.trunc_factor - 0.015 * (12 - x.pmax_elmts) as f64;
        let agg_reduction = 1.0 - 0.10 * x.agg_levels as f64;
        let c_op = (coarsen_complexity * interp_growth * prune.max(0.5) * agg_reduction.max(0.5))
            .max(1.05);

        // --- Convergence factor ρ ---
        let relax_rho = [0.62, 0.42, 0.45, 0.47, 0.40][x.relax];
        // Strong threshold: sweet spot depends on anisotropy of the grid.
        let aniso = (n1.max(n2).max(n3) / n1.min(n2).min(n3)).ln();
        let theta_opt = 0.25 + 0.35 * (aniso / (1.0 + aniso));
        let theta_penalty = 1.0 + 1.8 * (x.strong_threshold - theta_opt).powi(2);
        // Aggressive coarsening and truncation degrade convergence.
        let agg_penalty = 1.0 + 0.09 * x.agg_levels as f64 + 0.35 * x.trunc_factor;
        // Extra smoothing improves ρ with diminishing returns.
        let sweep_gain = 1.0 / (1.0 + 0.35 * (x.relax_sweeps - 1) as f64);
        let smooth_gain = 1.0 / (1.0 + 0.12 * x.smooth_levels as f64);
        let row_sum_penalty = 1.0 + 0.3 * (1.0 - x.max_row_sum).powi(2) * aniso;
        let rho =
            (relax_rho * theta_penalty * agg_penalty * sweep_gain * smooth_gain * row_sum_penalty)
                .clamp(0.05, 0.99);

        let iters = (1e-8f64.ln() / rho.ln()).ceil().max(1.0);

        // --- Per-iteration cost ---
        let flops_per_iter =
            points * c_op * (22.0 + 12.0 * x.relax_sweeps as f64 + 6.0 * x.smooth_levels as f64);
        // Stencil code runs memory-bound, far below peak.
        let rate = self.machine.flop_rate * 0.06;
        let p_eff = p.powf(0.85);
        let t_comp = iters * flops_per_iter / (rate * p_eff);

        // --- Communication: halo exchanges; mismatch between the process
        // grid aspect and the domain aspect inflates surface area. ---
        let local1 = n1 / p1;
        let local2 = n2 / p2;
        let local3 = n3 / p3;
        let surface = 2.0 * (local1 * local2 + local2 * local3 + local1 * local3).max(1.0);
        let levels = (points.ln() / 8.0f64.ln()).ceil();
        let msgs = iters * levels * 8.0;
        let t_comm = msgs * self.machine.latency * 40.0
            + iters * surface * levels * 8.0 * self.machine.time_per_word * 30.0;

        // --- Setup cost (coarsening + building P). ---
        let setup_weight =
            [1.6, 1.3, 0.9, 1.0, 1.2, 1.4][x.coarsen] * [1.0, 0.8, 1.1, 1.5, 1.2, 1.0][x.interp];
        let t_setup = points * c_op * 24.0 * setup_weight / (rate * p_eff);

        t_setup + t_comp + t_comm
    }
}

/// Decoded hypre tuning configuration.
#[derive(Debug, Clone)]
pub struct HypreConfig {
    /// First process-grid extent (the third is derived from `P/(p1·p2)`).
    pub p1: i64,
    /// Second process-grid extent.
    pub p2: i64,
    /// Coarsening algorithm index into [`COARSEN_CHOICES`].
    pub coarsen: usize,
    /// Smoother index into [`RELAX_CHOICES`].
    pub relax: usize,
    /// Interpolation operator index into [`INTERP_CHOICES`].
    pub interp: usize,
    /// Strength-of-connection threshold.
    pub strong_threshold: f64,
    /// Interpolation truncation factor.
    pub trunc_factor: f64,
    /// Max interpolation stencil size.
    pub pmax_elmts: i64,
    /// Aggressive-coarsening levels.
    pub agg_levels: i64,
    /// Smoother sweeps per level.
    pub relax_sweeps: i64,
    /// Max row sum for dependency filtering.
    pub max_row_sum: f64,
    /// Levels with complex smoothers.
    pub smooth_levels: i64,
}

impl HypreConfig {
    /// Decodes a raw configuration vector.
    pub fn from_values(c: &[Value]) -> HypreConfig {
        HypreConfig {
            p1: c[0].as_int(),
            p2: c[1].as_int(),
            coarsen: c[2].as_cat(),
            relax: c[3].as_cat(),
            interp: c[4].as_cat(),
            strong_threshold: c[5].as_real(),
            trunc_factor: c[6].as_real(),
            pmax_elmts: c[7].as_int(),
            agg_levels: c[8].as_int(),
            relax_sweeps: c[9].as_int(),
            max_row_sum: c[10].as_real(),
            smooth_levels: c[11].as_int(),
        }
    }
}

impl HpcApp for HypreApp {
    fn name(&self) -> &str {
        "hypre"
    }

    fn task_space(&self) -> &Space {
        &self.task_space
    }

    fn tuning_space(&self) -> &Space {
        &self.tuning_space
    }

    fn evaluate(&self, task: &[Value], config: &[Value], seed: u64) -> Vec<f64> {
        if !self.tuning_space.is_valid(config) {
            return vec![f64::INFINITY];
        }
        let t: Vec<i64> = task.iter().map(|v| v.as_int()).collect();
        let x = HypreConfig::from_values(config);
        let y = self.runtime_model(&t, &x);
        let f = noise::lognormal_factor(
            noise::hash_point(task, config, seed),
            self.machine.noise_sigma,
        );
        vec![y * f]
    }

    fn default_config(&self) -> Option<Config> {
        // hypre defaults: Falgout coarsening, hybrid-GS, classical
        // interpolation, θ = 0.25, near-cubic process grid.
        let p_max = self.machine.total_cores() as i64;
        let p1 = ((p_max as f64).cbrt().round() as i64).max(1);
        Some(vec![
            Value::Int(p1),
            Value::Int(p1),
            Value::Cat(1),
            Value::Cat(1),
            Value::Cat(0),
            Value::Real(0.25),
            Value::Real(0.0),
            Value::Int(4),
            Value::Int(0),
            Value::Int(1),
            Value::Real(0.9),
            Value::Int(0),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app() -> HypreApp {
        HypreApp::new(MachineModel::cori_noiseless(1))
    }

    fn task(n1: i64, n2: i64, n3: i64) -> Vec<Value> {
        vec![Value::Int(n1), Value::Int(n2), Value::Int(n3)]
    }

    #[test]
    fn default_is_valid_and_finite() {
        let a = app();
        let d = a.default_config().unwrap();
        assert!(a.tuning_space().is_valid(&d));
        let y = a.evaluate(&task(50, 50, 50), &d, 0);
        assert!(y[0].is_finite() && y[0] > 0.0);
    }

    #[test]
    fn larger_grids_cost_more() {
        let a = app();
        let d = a.default_config().unwrap();
        // Small grids are latency-bound (a fixed per-iteration message
        // cost), so the ratio is well below the 91× point-count ratio.
        let small = a.evaluate(&task(20, 20, 20), &d, 0)[0];
        let large = a.evaluate(&task(90, 90, 90), &d, 0)[0];
        assert!(large > small * 4.0, "{small} vs {large}");
    }

    #[test]
    fn anisotropy_shifts_optimal_threshold() {
        let a = app();
        let mut d = a.default_config().unwrap();
        // Isotropic grid: θ = 0.25 near-optimal.
        let iso = task(50, 50, 50);
        d[5] = Value::Real(0.25);
        let iso_low = a.evaluate(&iso, &d, 0)[0];
        d[5] = Value::Real(0.8);
        let iso_high = a.evaluate(&iso, &d, 0)[0];
        assert!(iso_low < iso_high);
        // Strongly anisotropic grid: larger θ wins.
        let aniso = task(100, 10, 10);
        d[5] = Value::Real(0.25);
        let an_low = a.evaluate(&aniso, &d, 0)[0];
        d[5] = Value::Real(0.55);
        let an_mid = a.evaluate(&aniso, &d, 0)[0];
        assert!(an_mid < an_low, "{an_mid} vs {an_low}");
    }

    #[test]
    fn process_grid_constraint() {
        let a = app();
        let mut d = a.default_config().unwrap();
        d[0] = Value::Int(32);
        d[1] = Value::Int(32); // 1024 ranks > 32 cores
        assert!(a.evaluate(&task(50, 50, 50), &d, 0)[0].is_infinite());
    }

    #[test]
    fn smoother_choice_matters() {
        let a = app();
        let mut d = a.default_config().unwrap();
        let t = task(60, 60, 60);
        let times: Vec<f64> = (0..RELAX_CHOICES.len())
            .map(|r| {
                d[3] = Value::Cat(r);
                a.evaluate(&t, &d, 0)[0]
            })
            .collect();
        let best = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let worst = times.iter().cloned().fold(0.0, f64::max);
        assert!(worst / best > 1.15, "smoother sweep too flat: {times:?}");
    }

    #[test]
    fn twelve_tunable_parameters() {
        assert_eq!(app().tuning_space().dim(), 12);
    }
}
