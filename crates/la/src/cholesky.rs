//! Cholesky factorization of symmetric positive-definite matrices.
//!
//! Two code paths:
//!
//! * [`Cholesky::factor`] — textbook unblocked right-looking factorization,
//!   optimal for the small-to-medium covariance matrices of single tasks;
//! * [`Cholesky::factor_parallel`] — blocked right-looking factorization
//!   whose trailing-matrix (SYRK) update is parallelised with rayon over row
//!   panels. This is the stand-in for GPTune's ScaLAPACK-parallelised
//!   factorization of the LCM covariance matrix (paper Sec. 4.3): the
//!   `O(ε³δ³)` trailing update dominates and scales with worker count.
//!
//! [`Cholesky::factor_with_jitter`] implements the standard GP trick of
//! retrying with exponentially increasing diagonal jitter when the kernel
//! matrix is numerically semi-definite (duplicated samples, tiny
//! lengthscales).

use crate::triangular;
use crate::{LaError, Matrix, Result};
use rayon::prelude::*;

/// Options controlling the blocked parallel factorization.
#[derive(Debug, Clone)]
pub struct CholeskyOptions {
    /// Block (panel) width for the blocked algorithm.
    pub block: usize,
}

impl Default for CholeskyOptions {
    fn default() -> Self {
        CholeskyOptions { block: 64 }
    }
}

/// The lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
///
/// ```
/// use gptune_la::{Cholesky, Matrix};
///
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
/// let chol = Cholesky::factor(&a).unwrap();
/// let x = chol.solve(&[8.0, 7.0]); // solves A x = b
/// assert!((x[0] - 1.25).abs() < 1e-12);
/// assert!((x[1] - 1.50).abs() < 1e-12);
/// assert!(chol.log_det() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
    /// Jitter that was added to the diagonal to achieve positive
    /// definiteness (0 when none was needed).
    jitter: f64,
}

impl Cholesky {
    /// Unblocked sequential factorization. Only the lower triangle of `a` is
    /// referenced.
    pub fn factor(a: &Matrix) -> Result<Cholesky> {
        assert!(a.is_square(), "Cholesky: matrix must be square");
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        // Copy lower triangle.
        for i in 0..n {
            l.row_mut(i)[..=i].copy_from_slice(&a.row(i)[..=i]);
        }
        factor_lower_in_place(&mut l, 0)?;
        Ok(Cholesky { l, jitter: 0.0 })
    }

    /// Pre-vectorization factorization: the per-element inner loops the
    /// workspace used before [`Cholesky::factor`] was restructured around
    /// row-slice dots. Retained verbatim as the baseline for the reference
    /// (pre-refactor) LCM likelihood path and the perf benchmarks.
    pub fn factor_reference(a: &Matrix) -> Result<Cholesky> {
        assert!(a.is_square(), "Cholesky: matrix must be square");
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            l.row_mut(i)[..=i].copy_from_slice(&a.row(i)[..=i]);
        }
        for j in 0..n {
            let mut d = l.get(j, j);
            {
                let row = l.row(j);
                for k in 0..j {
                    d -= row[k] * row[k];
                }
            }
            if !(d > 0.0) || !d.is_finite() {
                return Err(LaError::NotPositiveDefinite { pivot: j });
            }
            let d = d.sqrt();
            l.set(j, j, d);
            for i in (j + 1)..n {
                let mut s = l.get(i, j);
                for k in 0..j {
                    s -= l.get(i, k) * l.get(j, k);
                }
                l.set(i, j, s / d);
            }
        }
        Ok(Cholesky { l, jitter: 0.0 })
    }

    /// Blocked factorization with a rayon-parallel trailing update.
    ///
    /// Call inside a scoped rayon thread pool to control worker count (the
    /// runtime crate does exactly that to emulate `1` vs `32` MPI workers).
    pub fn factor_parallel(a: &Matrix, opts: &CholeskyOptions) -> Result<Cholesky> {
        assert!(a.is_square(), "Cholesky: matrix must be square");
        let n = a.rows();
        let nb = opts.block.max(8);
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            l.row_mut(i)[..=i].copy_from_slice(&a.row(i)[..=i]);
        }
        let mut k0 = 0;
        while k0 < n {
            let k1 = (k0 + nb).min(n);
            // Factor the diagonal block A[k0..k1, k0..k1] in place.
            factor_block(&mut l, k0, k1)?;
            if k1 < n {
                // Panel solve: L[k1.., k0..k1] ← A[k1.., k0..k1] * L11⁻ᵀ.
                panel_solve(&mut l, k0, k1, n);
                // Trailing SYRK: A22 ← A22 − L21 L21ᵀ (lower triangle only),
                // parallel over the rows of the trailing matrix.
                trailing_update(&mut l, k0, k1, n);
            }
            k0 = k1;
        }
        // Zero the strict upper triangle (was scratch).
        for i in 0..n {
            for j in (i + 1)..n {
                l.set(i, j, 0.0);
            }
        }
        Ok(Cholesky { l, jitter: 0.0 })
    }

    /// Factorizes `a + jitter·I`, starting from `initial_jitter` (or 0) and
    /// multiplying the jitter by 10 on each failure, up to `max_tries`
    /// attempts. Mirrors GPy's behaviour, which the reference GPTune relies
    /// on for ill-conditioned LCM covariances.
    pub fn factor_with_jitter(
        a: &Matrix,
        initial_jitter: f64,
        max_tries: usize,
    ) -> Result<Cholesky> {
        Cholesky::factor_with_jitter_impl(a, initial_jitter, max_tries, None)
    }

    /// Like [`Cholesky::factor_with_jitter`], but each factorization attempt
    /// uses the blocked rayon-parallel algorithm. Intended for the final
    /// single-threaded factorization of a large fitted covariance, where no
    /// parallel restarts are in flight to oversubscribe the pool.
    pub fn factor_with_jitter_parallel(
        a: &Matrix,
        initial_jitter: f64,
        max_tries: usize,
        opts: &CholeskyOptions,
    ) -> Result<Cholesky> {
        Cholesky::factor_with_jitter_impl(a, initial_jitter, max_tries, Some(opts))
    }

    fn factor_with_jitter_impl(
        a: &Matrix,
        initial_jitter: f64,
        max_tries: usize,
        popts: Option<&CholeskyOptions>,
    ) -> Result<Cholesky> {
        let factor = |m: &Matrix| match popts {
            Some(o) => Cholesky::factor_parallel(m, o),
            None => Cholesky::factor(m),
        };
        match factor(a) {
            Ok(c) => return Ok(c),
            Err(_) if max_tries > 0 => {}
            Err(e) => return Err(e),
        }
        let mean_diag = (0..a.rows()).map(|i| a.get(i, i)).sum::<f64>() / a.rows().max(1) as f64;
        let mut jitter = if initial_jitter > 0.0 {
            initial_jitter
        } else {
            1e-10 * mean_diag.abs().max(1e-300)
        };
        let mut last = LaError::NotPositiveDefinite { pivot: 0 };
        for _ in 0..max_tries {
            let mut aj = a.clone();
            aj.add_diagonal(jitter);
            match factor(&aj) {
                Ok(mut c) => {
                    c.jitter = jitter;
                    return Ok(c);
                }
                Err(e) => last = e,
            }
            jitter *= 10.0;
        }
        Err(last)
    }

    /// The lower-triangular factor.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Jitter added to the diagonal (0 if the matrix was SPD as given).
    pub fn jitter(&self) -> f64 {
        self.jitter
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Solves `A x = b`, overwriting `b` with `x`.
    pub fn solve_in_place(&self, b: &mut [f64]) {
        triangular::solve_lower(&self.l, b);
        triangular::solve_lower_transpose(&self.l, b);
    }

    /// Solves `A x = b` into a fresh vector.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = b.to_vec();
        self.solve_in_place(&mut x);
        x
    }

    /// Solves `A X = B`, overwriting `B`. Both halves are row-sweep
    /// multi-RHS solves whose inner loops are stride-1 combinations across
    /// all right-hand sides — the BLAS-3 shape the batched GP prediction
    /// relies on. Each column applies the same operation sequence as the
    /// corresponding [`Cholesky::solve`].
    pub fn solve_matrix_in_place(&self, b: &mut Matrix) {
        assert_eq!(b.rows(), self.dim());
        triangular::solve_lower_matrix(&self.l, b);
        triangular::solve_lower_transpose_matrix(&self.l, b);
    }

    /// Forward half-solve `L V = B`, overwriting `B` with `V`. Since
    /// `A = L Lᵀ`, the column norms of `V` give `bᵀ A⁻¹ b = ‖L⁻¹ b‖²`
    /// directly — the variance-reduction quadratic form of batched GP
    /// prediction — without ever running the backward substitution.
    pub fn forward_solve_matrix_in_place(&self, b: &mut Matrix) {
        assert_eq!(b.rows(), self.dim());
        triangular::solve_lower_matrix(&self.l, b);
    }

    /// `log |A| = 2 Σ log L_ii` — the log-determinant term of the GP
    /// marginal likelihood.
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l.get(i, i).ln()).sum::<f64>() * 2.0
    }

    /// Explicit inverse `A⁻¹` (needed for the trace terms of the LCM
    /// likelihood gradient, where every hyperparameter needs
    /// `tr(Σ⁻¹ ∂Σ/∂θ)`).
    pub fn inverse(&self) -> Matrix {
        let mut inv = self.inverse_lower();
        let n = self.dim();
        // Mirror the computed lower triangle.
        for i in 0..n {
            for j in 0..i {
                let v = inv.get(i, j);
                inv.set(j, i, v);
            }
        }
        inv
    }

    /// Lower triangle of `A⁻¹`; the strict upper triangle of the returned
    /// matrix is left zero. The distance-cached LCM gradient only reads the
    /// lower rows of `W = Σ⁻¹ − ααᵀ`, so the symmetric mirror done by
    /// [`Cholesky::inverse`] is wasted work on that path.
    pub fn inverse_lower(&self) -> Matrix {
        let linv = triangular::invert_lower(&self.l);
        // A⁻¹ = L⁻ᵀ L⁻¹ = Σ_k (row k of L⁻¹)ᵀ (row k of L⁻¹). Row i of the
        // lower triangle only receives contributions from source rows
        // k ≥ i; they are accumulated eight at a time so the stride-1 inner
        // update pipelines and the load/store traffic on the output row is
        // amortized over eight multiply-adds per element (a dot-per-entry
        // formulation spends more time in per-call overhead than in
        // multiply-adds for the short trailing slices near the bottom of
        // the triangle).
        let n = self.dim();
        let mut inv = Matrix::zeros(n, n);
        for i in 0..n {
            let out = &mut inv.row_mut(i)[..=i];
            let mut k = i;
            while k + 8 <= n {
                let r: [&[f64]; 8] = [
                    linv.row(k),
                    linv.row(k + 1),
                    linv.row(k + 2),
                    linv.row(k + 3),
                    linv.row(k + 4),
                    linv.row(k + 5),
                    linv.row(k + 6),
                    linv.row(k + 7),
                ];
                let c: [f64; 8] = [
                    r[0][i], r[1][i], r[2][i], r[3][i], r[4][i], r[5][i], r[6][i], r[7][i],
                ];
                for (j, x) in out.iter_mut().enumerate() {
                    *x += ((c[0] * r[0][j] + c[1] * r[1][j]) + (c[2] * r[2][j] + c[3] * r[3][j]))
                        + ((c[4] * r[4][j] + c[5] * r[5][j]) + (c[6] * r[6][j] + c[7] * r[7][j]));
                }
                k += 8;
            }
            while k < n {
                let r = linv.row(k);
                let c = r[i];
                for (x, &y) in out.iter_mut().zip(r) {
                    *x += c * y;
                }
                k += 1;
            }
        }
        inv
    }

    /// Rank-1 update: returns the factor of `A + v vᵀ` in O(n²).
    ///
    /// Uses the Givens-rotation sweep in a row-major friendly loop order:
    /// each row of `L` is rewritten once, left to right, carrying the
    /// partially rotated `x[i]` through the already-computed rotations. The
    /// update direction is unconditionally positive definite, so unlike
    /// [`Cholesky::rank1_downdate`] this cannot fail.
    pub fn rank1_update(&self, v: &[f64]) -> Cholesky {
        let n = self.dim();
        assert_eq!(v.len(), n, "rank1_update: vector length mismatch");
        let mut l = self.l.clone();
        let mut x = v.to_vec();
        rank1_update_lower(&mut l, 0, &mut x);
        Cholesky {
            l,
            jitter: self.jitter,
        }
    }

    /// Scalar column-sweep rank-1 update (classic LINPACK `cholupdate`
    /// ordering). Retained as the reference baseline for
    /// [`Cholesky::rank1_update`], matching the factor/inverse pattern.
    pub fn rank1_update_reference(&self, v: &[f64]) -> Cholesky {
        let n = self.dim();
        assert_eq!(v.len(), n, "rank1_update_reference: vector length mismatch");
        let mut l = self.l.clone();
        let mut x = v.to_vec();
        for k in 0..n {
            let d = l.get(k, k);
            let r = (d * d + x[k] * x[k]).sqrt();
            let c = r / d;
            let s = x[k] / d;
            l.set(k, k, r);
            for i in (k + 1)..n {
                let lik = (l.get(i, k) + s * x[i]) / c;
                x[i] = c * x[i] - s * lik;
                l.set(i, k, lik);
            }
        }
        Cholesky {
            l,
            jitter: self.jitter,
        }
    }

    /// Rank-1 downdate: returns the factor of `A − v vᵀ` in O(n²).
    ///
    /// The downdated matrix is only positive definite when `vᵀ A⁻¹ v < 1`;
    /// when the residual pivot goes non-positive (or non-finite — NaN input
    /// takes this path too) the error is the typed
    /// [`LaError::NotPositiveDefinite`] with the failing pivot, and `self`
    /// is untouched. Callers fall back to a from-scratch factorization.
    pub fn rank1_downdate(&self, v: &[f64]) -> Result<Cholesky> {
        let n = self.dim();
        assert_eq!(v.len(), n, "rank1_downdate: vector length mismatch");
        let mut l = self.l.clone();
        let mut x = v.to_vec();
        let mut c = vec![0.0; n];
        let mut s = vec![0.0; n];
        for i in 0..n {
            let row = l.row_mut(i);
            let mut xi = x[i];
            for j in 0..i {
                let lij = (row[j] - s[j] * xi) / c[j];
                xi = c[j] * xi - s[j] * lij;
                row[j] = lij;
            }
            let d = row[i];
            let r2 = d * d - xi * xi;
            if !(r2 > 0.0) || !r2.is_finite() {
                return Err(LaError::NotPositiveDefinite { pivot: i });
            }
            let r = r2.sqrt();
            c[i] = r / d;
            s[i] = xi / d;
            row[i] = r;
            x[i] = xi;
        }
        Ok(Cholesky {
            l,
            jitter: self.jitter,
        })
    }

    /// Scalar column-sweep rank-1 downdate. Reference baseline for
    /// [`Cholesky::rank1_downdate`]; the non-PSD failure path is typed the
    /// same way.
    pub fn rank1_downdate_reference(&self, v: &[f64]) -> Result<Cholesky> {
        let n = self.dim();
        assert_eq!(
            v.len(),
            n,
            "rank1_downdate_reference: vector length mismatch"
        );
        let mut l = self.l.clone();
        let mut x = v.to_vec();
        for k in 0..n {
            let d = l.get(k, k);
            let r2 = d * d - x[k] * x[k];
            if !(r2 > 0.0) || !r2.is_finite() {
                return Err(LaError::NotPositiveDefinite { pivot: k });
            }
            let r = r2.sqrt();
            let c = r / d;
            let s = x[k] / d;
            l.set(k, k, r);
            for i in (k + 1)..n {
                let lik = (l.get(i, k) - s * x[i]) / c;
                x[i] = c * x[i] - s * lik;
                l.set(i, k, lik);
            }
        }
        Ok(Cholesky {
            l,
            jitter: self.jitter,
        })
    }

    /// Row-append extension: given this factor of `K_n` and the new
    /// cross-covariance column `k` plus self-covariance `kappa`, returns the
    /// factor of the bordered matrix `[[K_n, k], [kᵀ, kappa]]` in O(n²)
    /// (one forward substitution) instead of O(n³) for a refactorization.
    ///
    /// The Schur complement `kappa − ‖L⁻¹k‖²` must be positive; when the new
    /// point is (numerically) a duplicate of an existing row it is not, and
    /// the typed [`LaError::NotPositiveDefinite`] (pivot = n) tells the
    /// caller to fall back to a jittered from-scratch factorization.
    /// `kappa` is used as-is: when the factor carries jitter, the caller is
    /// responsible for adding the same [`Cholesky::jitter`] to `kappa` so
    /// the extended factor stays consistent with `A + jitter·I`.
    pub fn extend_row(&self, k: &[f64], kappa: f64) -> Result<Cholesky> {
        let n = self.dim();
        assert_eq!(k.len(), n, "extend_row: column length mismatch");
        let mut c = k.to_vec();
        triangular::solve_lower(&self.l, &mut c);
        let d = kappa - crate::blas::dot(&c, &c);
        if !(d > 0.0) || !d.is_finite() {
            return Err(LaError::NotPositiveDefinite { pivot: n });
        }
        let mut l = Matrix::zeros(n + 1, n + 1);
        for i in 0..n {
            l.row_mut(i)[..=i].copy_from_slice(&self.l.row(i)[..=i]);
        }
        l.row_mut(n)[..n].copy_from_slice(&c);
        l.set(n, n, d.sqrt());
        Ok(Cholesky {
            l,
            jitter: self.jitter,
        })
    }

    /// Scalar reference for [`Cholesky::extend_row`]: plain forward
    /// substitution with sequential accumulation, no row-slice dots.
    pub fn extend_row_reference(&self, k: &[f64], kappa: f64) -> Result<Cholesky> {
        let n = self.dim();
        assert_eq!(k.len(), n, "extend_row_reference: column length mismatch");
        let mut c = k.to_vec();
        for i in 0..n {
            let mut s = c[i];
            for j in 0..i {
                s -= self.l.get(i, j) * c[j];
            }
            c[i] = s / self.l.get(i, i);
        }
        let mut d = kappa;
        for ci in &c {
            d -= ci * ci;
        }
        if !(d > 0.0) || !d.is_finite() {
            return Err(LaError::NotPositiveDefinite { pivot: n });
        }
        let mut l = Matrix::zeros(n + 1, n + 1);
        for i in 0..n {
            l.row_mut(i)[..=i].copy_from_slice(&self.l.row(i)[..=i]);
        }
        l.row_mut(n)[..n].copy_from_slice(&c);
        l.set(n, n, d.sqrt());
        Ok(Cholesky {
            l,
            jitter: self.jitter,
        })
    }

    /// Removes row/column `idx`, returning the factor of the principal
    /// submatrix of `A` with that index deleted, in O((n−idx)²).
    ///
    /// Rows above `idx` are unchanged; the trailing block absorbs the
    /// deleted column by a rank-1 *update* (`L₃₃'L₃₃'ᵀ = L₃₃L₃₃ᵀ + l₃₂l₃₂ᵀ`),
    /// which is unconditionally positive definite, so removal cannot fail.
    /// This is the eviction half of the capped active-set swap.
    pub fn remove_row(&self, idx: usize) -> Cholesky {
        let n = self.dim();
        assert!(idx < n, "remove_row: index out of bounds");
        let mut l = Matrix::zeros(n - 1, n - 1);
        for i in 0..idx {
            l.row_mut(i)[..=i].copy_from_slice(&self.l.row(i)[..=i]);
        }
        let mut x = vec![0.0; n - 1 - idx];
        for i in (idx + 1)..n {
            let src = self.l.row(i);
            let dst = l.row_mut(i - 1);
            dst[..idx].copy_from_slice(&src[..idx]);
            dst[idx..i].copy_from_slice(&src[idx + 1..=i]);
            x[i - 1 - idx] = src[idx];
        }
        rank1_update_lower(&mut l, idx, &mut x);
        Cholesky {
            l,
            jitter: self.jitter,
        }
    }

    /// Pre-vectorization explicit inverse: identical structure to
    /// [`Cholesky::inverse`] but reduced with the strict sequential
    /// [`crate::blas::dot_reference`] fold. Retained as the baseline for the
    /// reference LCM likelihood path and the perf benchmarks.
    pub fn inverse_reference(&self) -> Matrix {
        let linv = triangular::invert_lower_reference(&self.l);
        let lt = linv.transpose();
        let n = self.dim();
        let mut inv = Matrix::zeros(n, n);
        for i in 0..n {
            let ri = &lt.row(i)[i..];
            for j in 0..=i {
                let s = crate::blas::dot_reference(ri, &lt.row(j)[i..]);
                inv.set(i, j, s);
                inv.set(j, i, s);
            }
        }
        inv
    }
}

/// In-place rank-1 update of the trailing lower-triangular block
/// `l[k0.., k0..]` with `x` (length `n − k0`): after the call the block
/// factors `A₂₂ + x xᵀ`. Row-sweep loop order — each row is rewritten once,
/// stride-1, carrying the partially rotated `x[i]` through the rotations of
/// the columns to its left — so the access pattern matches the row-major
/// storage instead of striding down columns.
fn rank1_update_lower(l: &mut Matrix, k0: usize, x: &mut [f64]) {
    let n = l.rows();
    debug_assert_eq!(x.len(), n - k0);
    let m = n - k0;
    let mut c = vec![0.0; m];
    let mut s = vec![0.0; m];
    for i in k0..n {
        let row = &mut l.row_mut(i)[k0..];
        let mut xi = x[i - k0];
        for j in 0..(i - k0) {
            let lij = (row[j] + s[j] * xi) / c[j];
            xi = c[j] * xi - s[j] * lij;
            row[j] = lij;
        }
        let d = row[i - k0];
        let r = (d * d + xi * xi).sqrt();
        c[i - k0] = r / d;
        s[i - k0] = xi / d;
        row[i - k0] = r;
        x[i - k0] = xi;
    }
}

/// Left-looking in-place factorization of the lower triangle starting at the
/// given pivot offset (used both standalone and for diagonal blocks). The
/// pivot row is staged in a scratch buffer so the subdiagonal updates become
/// vectorizable row-slice dots (two live row borrows of the same matrix
/// would otherwise conflict); `rows_to` bounds the updated rows so the same
/// routine factors both the full triangle and a diagonal block.
fn factor_lower_bounded(l: &mut Matrix, offset: usize, rows_to: usize) -> Result<()> {
    let mut pivot = vec![0.0; rows_to];
    for j in offset..rows_to {
        pivot[offset..j].copy_from_slice(&l.row(j)[offset..j]);
        let pj = &pivot[offset..j];
        let d = l.get(j, j) - crate::blas::dot(pj, pj);
        if !(d > 0.0) || !d.is_finite() {
            return Err(LaError::NotPositiveDefinite { pivot: j });
        }
        let d = d.sqrt();
        l.set(j, j, d);
        for i in (j + 1)..rows_to {
            let s = l.get(i, j) - crate::blas::dot(&l.row(i)[offset..j], pj);
            l.set(i, j, s / d);
        }
    }
    Ok(())
}

/// Unblocked factorization of the whole lower triangle.
fn factor_lower_in_place(l: &mut Matrix, offset: usize) -> Result<()> {
    let rows = l.rows();
    factor_lower_bounded(l, offset, rows)
}

/// Factors the diagonal block `l[k0..k1, k0..k1]` in place (columns `k0..k1`
/// already hold the Schur-complement values from previous trailing updates).
fn factor_block(l: &mut Matrix, k0: usize, k1: usize) -> Result<()> {
    factor_lower_bounded(l, k0, k1)
}

/// Panel solve `L21 ← A21 L11⁻ᵀ` for rows `k1..n`, columns `k0..k1`.
fn panel_solve(l: &mut Matrix, k0: usize, k1: usize, n: usize) {
    // Copy the diagonal block (small) so we can mutate rows below freely.
    let nb = k1 - k0;
    let mut l11 = Matrix::zeros(nb, nb);
    for i in 0..nb {
        for j in 0..=i {
            l11.set(i, j, l.get(k0 + i, k0 + j));
        }
    }
    let cols = l.cols();
    let rows = l.as_mut_slice();
    rows[k1 * cols..n * cols]
        .par_chunks_mut(cols)
        .for_each(|row| {
            // Solve L11 xᵀ = rowᵀ over the panel columns (forward subst),
            // accumulating each partial sum as one row-slice dot.
            for j in 0..nb {
                let s = row[k0 + j] - crate::blas::dot(&l11.row(j)[..j], &row[k0..k0 + j]);
                row[k0 + j] = s / l11.get(j, j);
            }
        });
}

/// Trailing update `A22 ← A22 − L21 L21ᵀ` on the lower triangle, parallel
/// over trailing rows.
fn trailing_update(l: &mut Matrix, k0: usize, k1: usize, n: usize) {
    let cols = l.cols();
    // Snapshot the panel L21 (rows k1..n, cols k0..k1) — read-only below.
    let nb = k1 - k0;
    let mut panel = Matrix::zeros(n - k1, nb);
    for i in k1..n {
        panel.row_mut(i - k1).copy_from_slice(&l.row(i)[k0..k1]);
    }
    let data = l.as_mut_slice();
    data[k1 * cols..n * cols]
        .par_chunks_mut(cols)
        .enumerate()
        .for_each(|(ri, row)| {
            let i = k1 + ri;
            let pi = panel.row(ri);
            for j in k1..=i {
                row[j] -= crate::blas::dot(pi, panel.row(j - k1));
            }
        });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas::matmul;

    fn spd(n: usize) -> Matrix {
        // A = B Bᵀ + n·I with B a deterministic pseudo-random matrix.
        let b = Matrix::from_fn(n, n, |i, j| {
            (((i * 31 + j * 17 + 7) % 23) as f64 - 11.0) / 11.0
        });
        let mut a = matmul(&b, &b.transpose());
        a.add_diagonal(n as f64);
        a
    }

    #[test]
    fn factor_reconstructs() {
        let a = spd(12);
        let c = Cholesky::factor(&a).unwrap();
        let rec = matmul(c.l(), &c.l().transpose());
        for i in 0..12 {
            for j in 0..12 {
                assert!((rec.get(i, j) - a.get(i, j)).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn factor_and_inverse_match_reference_baselines() {
        // The vectorized factor/inverse differ from the retained scalar
        // baselines only by dot-product reduction order.
        let a = spd(40);
        let c = Cholesky::factor(&a).unwrap();
        let r = Cholesky::factor_reference(&a).unwrap();
        let ldiff = (0..40)
            .flat_map(|i| (0..40).map(move |j| (i, j)))
            .map(|(i, j)| (c.l().get(i, j) - r.l().get(i, j)).abs())
            .fold(0.0, f64::max);
        assert!(ldiff < 1e-12, "factor max diff {ldiff}");
        let inv = c.inverse();
        let rinv = r.inverse_reference();
        let idiff = inv
            .as_slice()
            .iter()
            .zip(rinv.as_slice())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max);
        assert!(idiff < 1e-10, "inverse max diff {idiff}");
    }

    #[test]
    fn parallel_matches_sequential() {
        let a = spd(150);
        let c1 = Cholesky::factor(&a).unwrap();
        let c2 = Cholesky::factor_parallel(&a, &CholeskyOptions { block: 32 }).unwrap();
        let diff = (0..150)
            .flat_map(|i| (0..150).map(move |j| (i, j)))
            .map(|(i, j)| (c1.l().get(i, j) - c2.l().get(i, j)).abs())
            .fold(0.0, f64::max);
        assert!(diff < 1e-9, "max diff {diff}");
    }

    #[test]
    fn parallel_handles_uneven_blocks() {
        let a = spd(37);
        let c = Cholesky::factor_parallel(&a, &CholeskyOptions { block: 16 }).unwrap();
        let rec = matmul(c.l(), &c.l().transpose());
        assert!((0..37).all(|i| (rec.get(i, i) - a.get(i, i)).abs() < 1e-9));
    }

    #[test]
    fn solve_known_system() {
        let a = spd(9);
        let c = Cholesky::factor(&a).unwrap();
        let x_true: Vec<f64> = (0..9).map(|i| (i as f64 - 4.0) / 3.0).collect();
        let mut b = vec![0.0; 9];
        for i in 0..9 {
            b[i] = (0..9).map(|j| a.get(i, j) * x_true[j]).sum();
        }
        let x = c.solve(&b);
        for i in 0..9 {
            assert!((x[i] - x_true[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn solve_matrix_matches_vector_solves() {
        let a = spd(7);
        let c = Cholesky::factor(&a).unwrap();
        let b = Matrix::from_fn(7, 3, |i, j| (i + j) as f64);
        let mut bm = b.clone();
        c.solve_matrix_in_place(&mut bm);
        for j in 0..3 {
            let col: Vec<f64> = b.col(j);
            let x = c.solve(&col);
            for i in 0..7 {
                assert!((bm.get(i, j) - x[i]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn forward_half_solve_gives_quadratic_form() {
        // ‖L⁻¹ b‖² per column must equal bᵀ A⁻¹ b from the full solve.
        let a = spd(11);
        let c = Cholesky::factor(&a).unwrap();
        let b = Matrix::from_fn(11, 4, |i, j| ((i * 5 + j * 3) % 9) as f64 - 4.0);
        let mut v = b.clone();
        c.forward_solve_matrix_in_place(&mut v);
        for j in 0..4 {
            let col: Vec<f64> = b.col(j);
            let x = c.solve(&col);
            let full: f64 = col.iter().zip(&x).map(|(p, q)| p * q).sum();
            let half: f64 = v.col(j).iter().map(|p| p * p).sum();
            assert!(
                (full - half).abs() <= 1e-10 * (1.0 + full.abs()),
                "col {j}: {full} vs {half}"
            );
        }
    }

    #[test]
    fn log_det_matches_lu_reference() {
        let a = spd(6);
        let c = Cholesky::factor(&a).unwrap();
        // Reference: product of eigen-free determinant via LU (use naive
        // expansion through our own LU once available; here compare against
        // 2*sum(log diag) identity on a diagonal matrix).
        let mut d = Matrix::zeros(4, 4);
        for i in 0..4 {
            d.set(i, i, (i + 1) as f64);
        }
        let cd = Cholesky::factor(&d).unwrap();
        let expect = (1.0_f64 * 2.0 * 3.0 * 4.0).ln();
        assert!((cd.log_det() - expect).abs() < 1e-12);
        assert!(c.log_det().is_finite());
    }

    #[test]
    fn inverse_is_inverse() {
        let a = spd(8);
        let c = Cholesky::factor(&a).unwrap();
        let inv = c.inverse();
        let prod = matmul(&a, &inv);
        for i in 0..8 {
            for j in 0..8 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((prod.get(i, j) - expect).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn inverse_lower_matches_inverse() {
        let a = spd(13);
        let c = Cholesky::factor(&a).unwrap();
        let full = c.inverse();
        let low = c.inverse_lower();
        for i in 0..13 {
            for j in 0..13 {
                let expect = if j <= i { full.get(i, j) } else { 0.0 };
                assert_eq!(low.get(i, j), expect);
            }
        }
    }

    fn max_l_diff(a: &Cholesky, b: &Cholesky) -> f64 {
        assert_eq!(a.dim(), b.dim());
        let n = a.dim();
        (0..n)
            .flat_map(|i| (0..n).map(move |j| (i, j)))
            .map(|(i, j)| (a.l().get(i, j) - b.l().get(i, j)).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn rank1_update_matches_refactorization() {
        let a = spd(20);
        let c = Cholesky::factor(&a).unwrap();
        let v: Vec<f64> = (0..20)
            .map(|i| ((i * 13 + 5) % 7) as f64 / 7.0 - 0.4)
            .collect();
        let up = c.rank1_update(&v);
        let mut avv = a.clone();
        for i in 0..20 {
            for j in 0..20 {
                avv.set(i, j, avv.get(i, j) + v[i] * v[j]);
            }
        }
        let direct = Cholesky::factor(&avv).unwrap();
        let diff = max_l_diff(&up, &direct);
        assert!(diff < 1e-10, "update vs refactor max diff {diff}");
        let rdiff = max_l_diff(&up, &c.rank1_update_reference(&v));
        assert!(rdiff < 1e-12, "update vs reference max diff {rdiff}");
    }

    #[test]
    fn downdate_update_round_trips() {
        let a = spd(24);
        let c = Cholesky::factor(&a).unwrap();
        let v: Vec<f64> = (0..24).map(|i| ((i * 7 + 3) % 11) as f64 / 11.0).collect();
        let round = c.rank1_update(&v).rank1_downdate(&v).unwrap();
        let diff = max_l_diff(&round, &c);
        assert!(diff < 1e-10, "round-trip max diff {diff}");
        let rref = c
            .rank1_update_reference(&v)
            .rank1_downdate_reference(&v)
            .unwrap();
        let rdiff = max_l_diff(&rref, &c);
        assert!(rdiff < 1e-10, "reference round-trip max diff {rdiff}");
    }

    #[test]
    fn downdate_non_psd_residual_is_typed() {
        // Subtracting 2·a₀a₀ᵀ where a₀ is scaled to dominate makes the
        // residual indefinite; the failure must surface as the typed error,
        // never a panic, and must leave the receiver usable.
        let a = spd(6);
        let c = Cholesky::factor(&a).unwrap();
        let big: Vec<f64> = (0..6).map(|i| a.get(i, 0) * 10.0).collect();
        assert!(matches!(
            c.rank1_downdate(&big),
            Err(LaError::NotPositiveDefinite { .. })
        ));
        assert!(matches!(
            c.rank1_downdate_reference(&big),
            Err(LaError::NotPositiveDefinite { .. })
        ));
        // NaN input takes the same typed path (GX101 idiom: !(d > 0.0)).
        let nan = vec![f64::NAN; 6];
        assert!(c.rank1_downdate(&nan).is_err());
        // Receiver untouched: solve still works.
        let _ = c.solve(&[1.0; 6]);
    }

    #[test]
    fn extend_row_matches_bordered_factorization() {
        let n = 30;
        let a = spd(n + 1);
        let head = a.submatrix(0, n, 0, n);
        let mut c = Cholesky::factor(&head).unwrap();
        let col: Vec<f64> = (0..n).map(|i| a.get(n, i)).collect();
        c = c.extend_row(&col, a.get(n, n)).unwrap();
        let direct = Cholesky::factor(&a).unwrap();
        let diff = max_l_diff(&c, &direct);
        assert!(diff < 1e-12, "extend vs direct factor max diff {diff}");
        let cref = Cholesky::factor(&head)
            .unwrap()
            .extend_row_reference(&col, a.get(n, n))
            .unwrap();
        let rdiff = max_l_diff(&c, &cref);
        assert!(rdiff < 1e-12, "extend vs reference max diff {rdiff}");
    }

    #[test]
    fn extend_row_duplicate_point_is_typed() {
        // Appending an exact duplicate of row 0 gives a zero Schur
        // complement: typed error, no panic, receiver untouched.
        let a = spd(5);
        let c = Cholesky::factor(&a).unwrap();
        let col: Vec<f64> = (0..5).map(|i| a.get(i, 0)).collect();
        assert!(matches!(
            c.extend_row(&col, a.get(0, 0)),
            Err(LaError::NotPositiveDefinite { pivot: 5 })
        ));
        assert!(c.extend_row_reference(&col, a.get(0, 0)).is_err());
        assert_eq!(c.dim(), 5);
    }

    #[test]
    fn remove_row_matches_submatrix_factorization() {
        let n = 18;
        let a = spd(n);
        let c = Cholesky::factor(&a).unwrap();
        for idx in [0, 7, n - 1] {
            let removed = c.remove_row(idx);
            let mut sub = Matrix::zeros(n - 1, n - 1);
            for i in 0..n - 1 {
                let si = if i < idx { i } else { i + 1 };
                for j in 0..n - 1 {
                    let sj = if j < idx { j } else { j + 1 };
                    sub.set(i, j, a.get(si, sj));
                }
            }
            let direct = Cholesky::factor(&sub).unwrap();
            let diff = max_l_diff(&removed, &direct);
            assert!(diff < 1e-10, "remove idx {idx} max diff {diff}");
        }
    }

    #[test]
    fn remove_then_extend_round_trips_last_row() {
        let n = 12;
        let a = spd(n);
        let c = Cholesky::factor(&a).unwrap();
        let col: Vec<f64> = (0..n - 1).map(|i| a.get(n - 1, i)).collect();
        let back = c
            .remove_row(n - 1)
            .extend_row(&col, a.get(n - 1, n - 1))
            .unwrap();
        let diff = max_l_diff(&back, &c);
        assert!(diff < 1e-10, "remove/extend round-trip max diff {diff}");
    }

    #[test]
    fn non_spd_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // indefinite
        assert!(matches!(
            Cholesky::factor(&a),
            Err(LaError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn jitter_recovers_semidefinite() {
        // Rank-1 PSD matrix: xxᵀ, singular but fixable with jitter.
        let x = [1.0, 2.0, 3.0];
        let a = Matrix::from_fn(3, 3, |i, j| x[i] * x[j]);
        assert!(Cholesky::factor(&a).is_err());
        let c = Cholesky::factor_with_jitter(&a, 0.0, 12).unwrap();
        assert!(c.jitter() > 0.0);
        // Solve should run without panicking.
        let _ = c.solve(&[1.0, 1.0, 1.0]);
    }

    #[test]
    fn jitter_zero_tries_propagates_error() {
        let a = Matrix::from_rows(&[&[0.0, 0.0], &[0.0, 0.0]]);
        assert!(Cholesky::factor_with_jitter(&a, 0.0, 0).is_err());
    }
}
