//! Journal format v2: a compressed binary snapshot for archives.
//!
//! JSONL journals (format v1) are the live write head: append-only,
//! line-oriented, recoverable after torn writes. Archived shards do not
//! need appendability — they are written once by `shard::split`,
//! `db_tool migrate-v2`, or compaction — so v2 trades line-oriented
//! repairability for size:
//!
//! * the problem name and signature are stored once in the header instead
//!   of on every record;
//! * machine identifiers are interned in a header string table and
//!   referenced by index;
//! * integers travel as LEB128 varints (seeds, attempts, categorical
//!   indices) or zigzag varints (tuning integers), floats as 8 LE bytes;
//! * every record payload carries a CRC32 so interior corruption is
//!   detected and skipped, and a truncated tail is dropped — the same
//!   recovery contract as [`crate::journal::load`].
//!
//! v2 files are written atomically ([`crate::fsio::atomic_write`]) and are
//! never appended to. The JSONL reader stays the migration path: `load`
//! returns the same `(Vec<DbEntry>, RecoveryReport)` shape, so shard-aware
//! readers and `db_tool merge` treat both formats uniformly.

use crate::fsio;
use crate::journal::{RecordError, RecordErrorKind, RecoveryReport};
use crate::record::{
    DbEntry, DbRecord, DbValue, FailKind, FailRecord, Provenance, RunStats, RunSummary,
};
use std::fs;
use std::io;
use std::path::Path;

/// Leading bytes of every v2 journal file.
pub const MAGIC: &[u8; 8] = b"GPTNDB2\n";

/// Format version byte following the magic.
pub const VERSION: u8 = 2;

/// Hard cap on a single record payload (defends length decoding against
/// corrupt headers before allocating).
const MAX_PAYLOAD: u64 = 1 << 28;

// Record tags. Unknown tags are counted and skipped (forward compat).
const TAG_EVAL: u8 = 0;
const TAG_RUN: u8 = 1;
const TAG_FAIL: u8 = 2;

// Value tags inside task/config vectors.
const VAL_REAL: u8 = 0;
const VAL_INT: u8 = 1;
const VAL_CAT: u8 = 2;

/// `true` when the file starts with the v2 magic. A missing or short file
/// is not v2.
pub fn is_v2(path: &Path) -> bool {
    use std::io::Read as _;
    let mut head = [0u8; 8];
    match fs::File::open(path) {
        Ok(mut f) => f.read_exact(&mut head).is_ok() && &head == MAGIC,
        Err(_) => false,
    }
}

/// Writes `entries` as a v2 archive at `path` (atomic snapshot). Every
/// entry must belong to `(problem, sig)` — a mismatched entry is an
/// `InvalidInput` error, mirroring the per-journal invariant of the
/// JSONL layout (file name embeds problem + signature).
pub fn write(path: &Path, problem: &str, sig: u64, entries: &[DbEntry]) -> io::Result<()> {
    let mut machines: Vec<String> = Vec::new();
    for e in entries {
        let (p, s, m) = entry_parts(e);
        if p != problem || s != sig {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("journal_v2::write: entry for {p}/{s:016x} does not belong to {problem}/{sig:016x}"),
            ));
        }
        if let Some(m) = m {
            if !machines.iter().any(|x| x == m) {
                machines.push(m.to_string());
            }
        }
    }
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    put_str(&mut out, problem);
    out.extend_from_slice(&sig.to_le_bytes());
    put_varint(&mut out, machines.len() as u64);
    for m in &machines {
        put_str(&mut out, m);
    }
    for e in entries {
        let payload = encode_entry(e, &machines);
        put_varint(&mut out, payload.len() as u64);
        out.extend_from_slice(&payload);
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
    }
    fsio::atomic_write(path, &out)
}

/// Loads every recoverable entry of a v2 archive. A missing file is an
/// empty archive; a corrupt record is skipped (CRC mismatch / bad tag →
/// `n_corrupt_interior` / `n_unknown_kind`); a truncated tail is dropped
/// (`dropped_torn_tail`). Only I/O errors and a bad header fail.
pub fn load(path: &Path) -> io::Result<(Vec<DbEntry>, RecoveryReport)> {
    let bytes = match fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            return Ok((Vec::new(), RecoveryReport::default()))
        }
        Err(e) => return Err(e),
    };
    let mut r = Reader {
        buf: &bytes,
        pos: 0,
    };
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, format!("journal_v2: {msg}"));
    if r.take(MAGIC.len()) != Some(MAGIC.as_slice()) {
        return Err(bad("bad magic"));
    }
    match r.u8() {
        Some(VERSION) => {}
        _ => return Err(bad("unsupported version")),
    }
    let problem = r.str().ok_or_else(|| bad("truncated header (problem)"))?;
    let sig = r
        .take(8)
        .and_then(|b| <[u8; 8]>::try_from(b).ok())
        .map(u64::from_le_bytes)
        .ok_or_else(|| bad("truncated header (sig)"))?;
    let n_machines = r
        .varint()
        .ok_or_else(|| bad("truncated header (machines)"))?;
    if n_machines > MAX_PAYLOAD {
        return Err(bad("implausible machine table"));
    }
    let mut machines = Vec::new();
    for _ in 0..n_machines {
        machines.push(r.str().ok_or_else(|| bad("truncated machine table"))?);
    }

    let mut entries = Vec::new();
    let mut report = RecoveryReport::default();
    while r.pos < r.buf.len() {
        // Byte offset of the record about to be decoded — reported with
        // any drop so operators can find the damage on disk.
        let record_at = r.pos as u64;
        let torn = |report: &mut RecoveryReport| {
            report.dropped_torn_tail = true;
            report.errors.push(RecordError {
                file: String::new(),
                offset: record_at,
                kind: RecordErrorKind::TornTail,
            });
        };
        let Some(len) = r.varint().filter(|&l| l <= MAX_PAYLOAD) else {
            torn(&mut report);
            break;
        };
        let Some(payload) = r.take(len as usize) else {
            torn(&mut report);
            break;
        };
        let Some(stored_crc) = r.take(4).and_then(|b| <[u8; 4]>::try_from(b).ok()) else {
            torn(&mut report);
            break;
        };
        let stored = u32::from_le_bytes(stored_crc);
        let computed = crc32(payload);
        if computed != stored {
            report.n_corrupt_interior += 1;
            report.errors.push(RecordError {
                file: String::new(),
                offset: record_at,
                kind: RecordErrorKind::CrcMismatch { stored, computed },
            });
            continue;
        }
        match decode_entry(payload, &problem, sig, &machines) {
            Some(e) => {
                report.n_loaded += 1;
                entries.push(e);
            }
            None => report.n_unknown_kind += 1,
        }
    }
    Ok((entries, report))
}

/// `(problem, sig, machine)` of any entry.
fn entry_parts(e: &DbEntry) -> (&str, u64, Option<&str>) {
    match e {
        DbEntry::Eval(r) => (&r.problem, r.sig, r.prov.machine.as_deref()),
        DbEntry::Run(r) => (&r.problem, r.sig, r.prov.machine.as_deref()),
        DbEntry::Fail(r) => (&r.problem, r.sig, r.prov.machine.as_deref()),
    }
}

fn encode_entry(e: &DbEntry, machines: &[String]) -> Vec<u8> {
    let mut out = Vec::new();
    match e {
        DbEntry::Eval(rec) => {
            out.push(TAG_EVAL);
            put_prov(&mut out, &rec.prov, machines);
            put_values(&mut out, &rec.task);
            put_values(&mut out, &rec.config);
            put_varint(&mut out, rec.outputs.len() as u64);
            for y in &rec.outputs {
                out.extend_from_slice(&y.to_le_bytes());
            }
        }
        DbEntry::Run(rec) => {
            out.push(TAG_RUN);
            put_prov(&mut out, &rec.prov, machines);
            put_stats(&mut out, &rec.stats);
        }
        DbEntry::Fail(rec) => {
            out.push(TAG_FAIL);
            put_prov(&mut out, &rec.prov, machines);
            put_values(&mut out, &rec.task);
            put_values(&mut out, &rec.config);
            out.push(match rec.kind {
                FailKind::Crashed => 0,
                FailKind::TimedOut => 1,
                FailKind::Invalid => 2,
                FailKind::Transient => 3,
            });
            put_varint(&mut out, rec.attempts);
            out.extend_from_slice(&rec.elapsed_secs.to_le_bytes());
        }
    }
    out
}

fn decode_entry(payload: &[u8], problem: &str, sig: u64, machines: &[String]) -> Option<DbEntry> {
    let mut r = Reader {
        buf: payload,
        pos: 0,
    };
    let tag = r.u8()?;
    let prov = get_prov(&mut r, machines)?;
    let e = match tag {
        TAG_EVAL => {
            let task = get_values(&mut r)?;
            let config = get_values(&mut r)?;
            let n = r.varint()?;
            if n > MAX_PAYLOAD {
                return None;
            }
            let mut outputs = Vec::new();
            for _ in 0..n {
                outputs.push(r.f64()?);
            }
            DbEntry::Eval(DbRecord {
                problem: problem.to_string(),
                sig,
                task,
                config,
                outputs,
                prov,
            })
        }
        TAG_RUN => DbEntry::Run(RunSummary {
            problem: problem.to_string(),
            sig,
            prov,
            stats: get_stats(&mut r)?,
        }),
        TAG_FAIL => {
            let task = get_values(&mut r)?;
            let config = get_values(&mut r)?;
            let kind = match r.u8()? {
                0 => FailKind::Crashed,
                1 => FailKind::TimedOut,
                2 => FailKind::Invalid,
                3 => FailKind::Transient,
                _ => return None,
            };
            DbEntry::Fail(FailRecord {
                problem: problem.to_string(),
                sig,
                task,
                config,
                kind,
                attempts: r.varint()?,
                elapsed_secs: r.f64()?,
                prov,
            })
        }
        _ => return None,
    };
    // Trailing bytes mean a writer newer than this reader extended the
    // record; treat as unknown rather than silently truncating fields.
    if r.pos != payload.len() {
        return None;
    }
    Some(e)
}

fn put_prov(out: &mut Vec<u8>, prov: &Provenance, machines: &[String]) {
    put_varint(out, prov.seed);
    put_str(out, &prov.run);
    let idx = prov
        .machine
        .as_deref()
        .and_then(|m| machines.iter().position(|x| x == m))
        .map(|i| i as u64 + 1)
        .unwrap_or(0);
    put_varint(out, idx);
}

fn get_prov(r: &mut Reader<'_>, machines: &[String]) -> Option<Provenance> {
    let seed = r.varint()?;
    let run = r.str()?;
    let idx = r.varint()?;
    let machine = if idx == 0 {
        None
    } else {
        Some(machines.get(idx as usize - 1)?.clone())
    };
    Some(Provenance { seed, run, machine })
}

fn put_values(out: &mut Vec<u8>, vs: &[DbValue]) {
    put_varint(out, vs.len() as u64);
    for v in vs {
        match v {
            DbValue::Real(x) => {
                out.push(VAL_REAL);
                out.extend_from_slice(&x.to_le_bytes());
            }
            DbValue::Int(i) => {
                out.push(VAL_INT);
                put_varint(out, zigzag(*i));
            }
            DbValue::Cat(c) => {
                out.push(VAL_CAT);
                put_varint(out, *c as u64);
            }
        }
    }
}

fn get_values(r: &mut Reader<'_>) -> Option<Vec<DbValue>> {
    let n = r.varint()?;
    if n > MAX_PAYLOAD {
        return None;
    }
    let mut vs = Vec::new();
    for _ in 0..n {
        vs.push(match r.u8()? {
            VAL_REAL => DbValue::Real(r.f64()?),
            VAL_INT => DbValue::Int(unzigzag(r.varint()?)),
            VAL_CAT => DbValue::Cat(usize::try_from(r.varint()?).ok()?),
            _ => return None,
        });
    }
    Some(vs)
}

fn put_stats(out: &mut Vec<u8>, s: &RunStats) {
    for x in [
        s.objective_virtual_secs,
        s.objective_wall_secs,
        s.modeling_wall_secs,
        s.search_wall_secs,
    ] {
        out.extend_from_slice(&x.to_le_bytes());
    }
    for n in [
        s.n_evals,
        s.n_crashed,
        s.n_timed_out,
        s.n_invalid,
        s.n_transient,
        s.n_retries,
    ] {
        put_varint(out, n);
    }
}

fn get_stats(r: &mut Reader<'_>) -> Option<RunStats> {
    Some(RunStats {
        objective_virtual_secs: r.f64()?,
        objective_wall_secs: r.f64()?,
        modeling_wall_secs: r.f64()?,
        search_wall_secs: r.f64()?,
        n_evals: r.varint()?,
        n_crashed: r.varint()?,
        n_timed_out: r.varint()?,
        n_invalid: r.varint()?,
        n_transient: r.varint()?,
        n_retries: r.varint()?,
    })
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn u8(&mut self) -> Option<u8> {
        let b = self.buf.get(self.pos).copied()?;
        self.pos += 1;
        Some(b)
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }

    fn varint(&mut self) -> Option<u64> {
        let mut x: u64 = 0;
        for shift in (0..64).step_by(7) {
            let b = self.u8()?;
            x |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Some(x);
            }
        }
        None
    }

    fn f64(&mut self) -> Option<f64> {
        self.take(8)
            .and_then(|b| <[u8; 8]>::try_from(b).ok())
            .map(f64::from_le_bytes)
    }

    fn str(&mut self) -> Option<String> {
        let n = self.varint()?;
        if n > MAX_PAYLOAD {
            return None;
        }
        let b = self.take(n as usize)?;
        std::str::from_utf8(b).ok().map(str::to_string)
    }
}

fn put_varint(out: &mut Vec<u8>, mut x: u64) {
    loop {
        let b = (x & 0x7f) as u8;
        x >>= 7;
        if x == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn zigzag(i: i64) -> u64 {
    ((i << 1) ^ (i >> 63)) as u64
}

fn unzigzag(u: u64) -> i64 {
    ((u >> 1) as i64) ^ -((u & 1) as i64)
}

/// CRC-32 (IEEE 802.3, reflected) over `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{DbRecord, FailRecord, Provenance, RunStats, RunSummary};

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!(
            "gptune-v2-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn sample_entries(problem: &str, sig: u64) -> Vec<DbEntry> {
        let prov = |m: Option<&str>| Provenance {
            seed: u64::MAX - 7,
            run: "seed42-eps8-d2".into(),
            machine: m.map(str::to_string),
        };
        vec![
            DbEntry::Eval(DbRecord {
                problem: problem.into(),
                sig,
                task: vec![DbValue::Int(-40), DbValue::Cat(3)],
                config: vec![DbValue::Real(0.125), DbValue::Int(i64::MIN + 1)],
                outputs: vec![1.5, f64::INFINITY, f64::NEG_INFINITY],
                prov: prov(Some("machA")),
            }),
            DbEntry::Run(RunSummary {
                problem: problem.into(),
                sig,
                prov: prov(None),
                stats: RunStats {
                    objective_virtual_secs: 1.0,
                    objective_wall_secs: 2.5,
                    modeling_wall_secs: 0.25,
                    search_wall_secs: 0.125,
                    n_evals: 8,
                    n_crashed: 1,
                    n_timed_out: 0,
                    n_invalid: 2,
                    n_transient: 0,
                    n_retries: 3,
                },
            }),
            DbEntry::Fail(FailRecord {
                problem: problem.into(),
                sig,
                task: vec![DbValue::Int(7)],
                config: vec![DbValue::Real(0.5)],
                kind: FailKind::TimedOut,
                attempts: 2,
                elapsed_secs: 3.25,
                prov: prov(Some("machA")),
            }),
        ]
    }

    #[test]
    fn roundtrip_identity() {
        let d = tmpdir("roundtrip");
        let path = d.join("a.gdb2");
        let entries = sample_entries("p", 0xdead_beef_cafe_f00d);
        write(&path, "p", 0xdead_beef_cafe_f00d, &entries).unwrap();
        let (back, report) = load(&path).unwrap();
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(back, entries);
        assert!(is_v2(&path));
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn nan_outputs_roundtrip_bitwise() {
        let d = tmpdir("nan");
        let path = d.join("a.gdb2");
        let mut entries = sample_entries("p", 1);
        if let Some(DbEntry::Eval(r)) = entries.first_mut() {
            r.outputs = vec![f64::NAN, -0.0];
        }
        write(&path, "p", 1, &entries).unwrap();
        let (back, _) = load(&path).unwrap();
        let Some(DbEntry::Eval(r)) = back.first() else {
            panic!("missing eval")
        };
        assert_eq!(
            r.outputs.iter().map(|y| y.to_bits()).collect::<Vec<_>>(),
            [f64::NAN.to_bits(), (-0.0f64).to_bits()]
        );
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn missing_file_is_empty() {
        let d = tmpdir("missing");
        let (entries, report) = load(&d.join("nope.gdb2")).unwrap();
        assert!(entries.is_empty() && report.is_clean());
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn mismatched_entry_rejected() {
        let d = tmpdir("mismatch");
        let entries = sample_entries("other", 2);
        let err = write(&d.join("a.gdb2"), "p", 1, &entries).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn truncated_tail_dropped() {
        let d = tmpdir("torn");
        let path = d.join("a.gdb2");
        let entries = sample_entries("p", 1);
        write(&path, "p", 1, &entries).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let (back, report) = load(&path).unwrap();
        assert_eq!(back.len(), entries.len() - 1);
        assert!(report.dropped_torn_tail);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn corrupt_interior_skipped() {
        let d = tmpdir("corrupt");
        let path = d.join("a.gdb2");
        let entries = sample_entries("p", 1);
        write(&path, "p", 1, &entries).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one byte inside the first record's payload (header is
        // magic+version+problem+sig+machine table; first payload starts
        // right after its varint length).
        let header_len = MAGIC.len() + 1 + (1 + 1) + 8 + (1 + 1 + 5);
        bytes[header_len + 3] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let (back, report) = load(&path).unwrap();
        assert_eq!(back.len(), entries.len() - 1);
        assert_eq!(report.n_corrupt_interior, 1);
        assert!(!report.dropped_torn_tail);
        // The drop is typed, with the record's byte offset and both CRCs.
        assert_eq!(report.errors.len(), 1);
        assert_eq!(report.errors[0].offset, header_len as u64);
        match report.errors[0].kind {
            RecordErrorKind::CrcMismatch { stored, computed } => assert_ne!(stored, computed),
            ref k => panic!("expected CrcMismatch, got {k:?}"),
        }
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn unknown_record_tag_skipped() {
        let d = tmpdir("unknown");
        let path = d.join("a.gdb2");
        write(&path, "p", 1, &sample_entries("p", 1)).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let payload = vec![99u8, 0, 0];
        bytes.push(payload.len() as u8);
        bytes.extend_from_slice(&payload);
        bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let (back, report) = load(&path).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(report.n_unknown_kind, 1);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn bad_magic_is_invalid_data() {
        let d = tmpdir("magic");
        let path = d.join("a.gdb2");
        std::fs::write(&path, b"not a v2 file at all").unwrap();
        let err = load(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(!is_v2(&path));
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn v2_smaller_than_jsonl() {
        let d = tmpdir("size");
        let sig = 42u64;
        let mut entries = Vec::new();
        for i in 0..64 {
            entries.push(DbEntry::Eval(DbRecord {
                problem: "p".into(),
                sig,
                task: vec![DbValue::Int(i)],
                config: vec![DbValue::Real(i as f64 / 64.0), DbValue::Cat(2)],
                outputs: vec![i as f64],
                prov: Provenance {
                    seed: 42,
                    run: "seed42-eps64-d1".into(),
                    machine: Some("long-machine-identifier".into()),
                },
            }));
        }
        let v1: usize = entries.iter().map(|e| e.to_line().len() + 1).sum();
        let path = d.join("a.gdb2");
        write(&path, "p", sig, &entries).unwrap();
        let v2 = std::fs::metadata(&path).unwrap().len() as usize;
        assert!(
            v2 * 2 < v1,
            "v2 ({v2}B) should be well under half of JSONL ({v1}B)"
        );
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn crc32_known_vector() {
        // IEEE CRC-32 of "123456789".
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
    }

    #[test]
    fn varint_extremes() {
        let mut buf = Vec::new();
        for x in [0u64, 1, 127, 128, u64::MAX] {
            buf.clear();
            put_varint(&mut buf, x);
            let mut r = Reader { buf: &buf, pos: 0 };
            assert_eq!(r.varint(), Some(x));
        }
        for i in [0i64, -1, 1, i64::MIN, i64::MAX] {
            assert_eq!(unzigzag(zigzag(i)), i);
        }
    }
}
