//! GPTune-rs core: the multitask-learning autotuner.
//!
//! This crate implements the paper's contribution:
//!
//! * [`problem`] — the tuning-problem abstraction: task space `IS`, tuning
//!   space `PS`, output space `OS` (dimension `γ`), the black-box objective,
//!   and optional coarse performance-model features `MS` (Sec. 2);
//! * [`mla`] — Algorithm 1: single-objective multitask Bayesian
//!   optimization (sampling → LCM modeling → EI/PSO search loop);
//! * [`mla_mo`] — Algorithm 2: the multi-objective extension (one LCM per
//!   objective, NSGA-II over the per-objective EIs, `k` evaluations per
//!   iteration, Pareto-front extraction);
//! * [`perfmodel`] — incorporation of coarse performance models (Sec. 3.3):
//!   feature enrichment `[x, ỹ(t,x)]` plus on-the-fly least-squares updates
//!   of the model hyperparameters (`t_flop, t_msg, t_vol` of Eq. 7);
//! * [`history`] — the in-memory archive/reuse records (goal 3 of the
//!   paper: "support archiving and reusing tuning data from multiple
//!   executions");
//! * [`db_bridge`] — the boundary to `gptune-db`, the crash-safe on-disk
//!   history database: problem signatures, warm-start preloading,
//!   checkpoint/resume, and end-of-run archiving;
//! * [`metrics`] — the evaluation metrics of Sec. 6: `WinTask` (final
//!   performance) and `stability` (anytime performance), plus Pareto
//!   utilities;
//! * [`session`] — the ask/tell (`suggest`/`report`) inversion of the MLA
//!   loop used by the `gptune-serve` layer: the caller owns evaluation,
//!   the session owns the archive and refits the surrogate lazily.

pub mod db_bridge;
pub mod history;
pub mod metrics;
pub mod mla;
pub mod mla_mo;
pub mod options;
pub mod perfmodel;
pub mod problem;
pub mod runlog;
pub mod session;
pub mod tla;

pub use db_bridge::{history_from_db, problem_signature};
pub use gptune_gp::{ModelState, RefitMode, RefitSchedule};
pub use history::History;
pub use metrics::{hypervolume_2d, mean_stability, stability, win_task};
pub use mla::{IterationStat, MlaResult, TaskResult};
pub use mla_mo::{MoMlaResult, MoTaskResult, ParetoPoint};
pub use options::{Acquisition, MlaOptions, SearchMethod};
pub use problem::TuningProblem;
pub use session::{ReportError, SessionSnapshot, TunerSession};
pub use tla::{predict_transfer_config, transfer_tune, transfer_tune_from_db};
