//! `gptune-cli` — tune any built-in simulated HPC application from the
//! shell. See `gptune::cli` for the testable implementation and
//! `gptune-cli --help` for usage.

use gptune::cli;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("apps") => {
            println!("available applications:");
            for name in cli::APP_NAMES {
                println!("  {name}");
            }
        }
        Some("tune") => match cli::parse_tune_args(&args[1..]) {
            Ok(parsed) => match cli::run_tune(&parsed) {
                Ok(log) => print!("{log}"),
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                }
            },
            Err(e) => {
                eprintln!("error: {e}\n\n{}", cli::usage());
                std::process::exit(2);
            }
        },
        Some("--help") | Some("-h") | None => print!("{}", cli::usage()),
        Some(other) => {
            eprintln!("error: unknown subcommand '{other}'\n\n{}", cli::usage());
            std::process::exit(2);
        }
    }
}
