//! Load generator for the gptune-serve suggest/report service.
//!
//! Drives ≥ 1000 concurrent tuning sessions against one in-process server
//! and records the result in `BENCH_serve.json`:
//!
//! * request latencies (p50/p99 per op) read from the `gptune-trace`
//!   histograms the server populates (`gptune.serve.latency_us.<op>`),
//!   not from client-side stopwatches;
//! * sustained throughput over the whole burst;
//! * a kill-the-server-mid-burst section: a write-ahead-journaled client
//!   keeps reporting while the server dies, a replacement comes up, and
//!   the replayed history must contain every journaled report
//!   (`lost_reports` must print 0).
//!
//! Usage: `serve_bench [output.json] [--smoke]` — `--smoke` shrinks the
//! fleet for the tier-1 gate while exercising every phase.

use gptune::serve::{serve, ProblemSpec, ServeClient, ServeOptions, SessionOptions};
use gptune::space::{Param, Value};
use gptune::trace::{self, Tracer};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;

fn spec_for(problem_idx: usize) -> ProblemSpec {
    ProblemSpec {
        name: format!("svc-{problem_idx}"),
        task_params: vec![Param::real("t", 0.0, 1.0)],
        tuning_params: vec![Param::real("x", 0.0, 1.0), Param::real("y", 0.0, 1.0)],
        tasks: vec![vec![Value::Real(0.25)], vec![Value::Real(0.75)]],
        n_objectives: 1,
    }
}

struct BurstStats {
    sessions: usize,
    peak_sessions: usize,
    requests: u64,
    errors: u64,
    wall_s: f64,
}

/// Opens `sessions` sessions across `threads` client connections, holds a
/// barrier while *all* of them are live, then runs a suggest/report loop
/// on each. Returns the burst statistics; latency lives in the tracer.
fn run_burst(
    sessions: usize,
    threads: usize,
    reports_per_session: usize,
    server_addr: std::net::SocketAddr,
    peak_probe: impl Fn() -> usize + Send + Sync,
) -> BurstStats {
    let all_open = Arc::new(Barrier::new(threads + 1));
    let failures = Arc::new(AtomicUsize::new(0));
    let start = Instant::now();
    let peak = std::thread::scope(|scope| {
        for worker in 0..threads {
            let all_open = Arc::clone(&all_open);
            let failures = Arc::clone(&failures);
            scope.spawn(move || {
                let mut client = match ServeClient::connect(server_addr) {
                    Ok(c) => c,
                    Err(_) => {
                        failures.fetch_add(1, Ordering::Relaxed);
                        all_open.wait();
                        return;
                    }
                };
                // Each thread owns a disjoint slice of the session ids;
                // one tenant per session keeps the server's table honest
                // about multi-tenancy.
                let mine: Vec<usize> = (0..sessions).filter(|s| s % threads == worker).collect();
                let mut keys = Vec::with_capacity(mine.len());
                for &s in &mine {
                    let tenant = format!("tenant-{s}");
                    let opts = SessionOptions {
                        seed: s as u64,
                        n_initial: Some(2),
                    };
                    match client.open_session(&tenant, &spec_for(s), &opts) {
                        Ok(key) => keys.push(key),
                        Err(_) => {
                            failures.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                // Every session in the fleet is open here.
                all_open.wait();
                for (i, _key) in keys.iter().enumerate() {
                    let s = mine[i];
                    let tenant = format!("tenant-{s}");
                    let opts = SessionOptions {
                        seed: s as u64,
                        n_initial: Some(2),
                    };
                    // Re-open is a cheap re-attach; it scopes the client
                    // to this session for the suggest/report loop.
                    if client.open_session(&tenant, &spec_for(s), &opts).is_err() {
                        failures.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    for r in 0..reports_per_session {
                        let task = r % 2;
                        match client.suggest(task) {
                            Ok(cfg) => {
                                let y = 1.0 + (s * 31 + r) as f64 / 97.0;
                                if client.report(task, &cfg, &[y]).is_err() {
                                    failures.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            Err(_) => {
                                failures.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                }
            });
        }
        // Main thread samples the session table while everything is open.
        all_open.wait();
        peak_probe()
    });
    let wall_s = start.elapsed().as_secs_f64();

    let m = trace::global().metrics();
    BurstStats {
        sessions,
        peak_sessions: peak,
        requests: m.counter("gptune.serve.requests").unwrap_or(0),
        errors: m.counter("gptune.serve.errors").unwrap_or(0)
            + failures.load(Ordering::Relaxed) as u64,
        wall_s,
    }
}

struct KillStats {
    journaled: usize,
    accepted_before_kill: usize,
    replayed: usize,
    recovered: usize,
    lost: i64,
}

/// The durability drill: journal-backed client reports in a tight burst,
/// the server is killed partway through, a replacement comes up, and the
/// WAL replay must restore every journaled report.
fn run_kill_drill(reports: usize, tmp: &std::path::Path) -> KillStats {
    let wal = tmp.join("serve_bench_wal.jsonl");
    let _ = std::fs::remove_file(&wal);
    let spec = spec_for(0);
    let opts = SessionOptions::default();

    let server = serve("127.0.0.1:0", ServeOptions::default()).expect("bind");
    let mut client = ServeClient::connect(server.local_addr())
        .expect("connect")
        .with_wal(&wal);
    client.open_session("dur", &spec, &opts).expect("open");

    // Burst of journaled reports; the server dies halfway.
    let mut accepted = 0usize;
    let mut journaled = 0usize;
    let mut server = Some(server);
    for r in 0..reports {
        if r == reports / 2 {
            server.take().unwrap().shutdown();
        }
        let cfg = vec![
            Value::Real((r as f64 + 0.5) / reports as f64),
            Value::Real(0.5),
        ];
        // The WAL append inside report() lands even when the send fails.
        journaled += 1;
        if client.report(r % 2, &cfg, &[r as f64]).is_ok() {
            accepted += 1;
        }
    }

    // Replacement server, fresh client, same journal.
    let server = serve("127.0.0.1:0", ServeOptions::default()).expect("rebind");
    let mut client2 = ServeClient::connect(server.local_addr())
        .expect("reconnect")
        .with_wal(&wal);
    client2.open_session("dur", &spec, &opts).expect("reopen");
    let (replayed, _dups) = client2.replay_wal().expect("replay");
    let recovered = client2.history().expect("history").len();
    server.shutdown();
    let _ = std::fs::remove_file(&wal);

    KillStats {
        journaled,
        accepted_before_kill: accepted,
        replayed,
        recovered,
        lost: journaled as i64 - recovered as i64,
    }
}

fn quantiles(op: &str) -> (u64, u64, u64) {
    let m = trace::global().metrics();
    match m.histogram(&format!("gptune.serve.latency_us.{op}")) {
        Some(h) => (h.count, h.p50(), h.p99()),
        None => (0, 0, 0),
    }
}

fn main() {
    let mut out_path = "BENCH_serve.json".to_string();
    let mut smoke = false;
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            out_path = arg;
        }
    }
    // The acceptance bar is ≥ 1000 *concurrent* sessions; smoke mode keeps
    // the same shape at gate-friendly scale.
    let (sessions, threads, reports_per_session, kill_reports) = if smoke {
        (32, 8, 2, 10)
    } else {
        (1024, 32, 3, 200)
    };

    trace::install(Tracer::ring(1 << 12));

    let server = serve(
        "127.0.0.1:0",
        ServeOptions {
            workers: threads,
            max_sessions: sessions + 8,
            ..ServeOptions::default()
        },
    )
    .expect("bind serve_bench server");
    let addr = server.local_addr();

    eprintln!("serve_bench: {sessions} sessions over {threads} client threads at {addr}");
    let burst = run_burst(sessions, threads, reports_per_session, addr, || {
        server.n_sessions()
    });
    let (sug_n, sug_p50, sug_p99) = quantiles("suggest");
    let (rep_n, rep_p50, rep_p99) = quantiles("report");
    let (open_n, open_p50, open_p99) = quantiles("open_session");
    server.shutdown();

    let kill = run_kill_drill(kill_reports, &std::env::temp_dir());

    let rps = burst.requests as f64 / burst.wall_s.max(1e-9);
    let json = format!(
        "{{\n  \"config\": {{\"sessions\": {}, \"client_threads\": {}, \
         \"reports_per_session\": {}, \"smoke\": {}}},\n  \
         \"burst\": {{\"peak_concurrent_sessions\": {}, \"requests\": {}, \
         \"errors\": {}, \"wall_s\": {:.3}, \"requests_per_s\": {:.0}}},\n  \
         \"latency_us\": {{\n    \
         \"open_session\": {{\"count\": {}, \"p50\": {}, \"p99\": {}}},\n    \
         \"suggest\": {{\"count\": {}, \"p50\": {}, \"p99\": {}}},\n    \
         \"report\": {{\"count\": {}, \"p50\": {}, \"p99\": {}}}\n  }},\n  \
         \"kill_drill\": {{\"journaled\": {}, \"accepted_before_kill\": {}, \
         \"replayed\": {}, \"recovered\": {}, \"lost_reports\": {}}}\n}}\n",
        burst.sessions,
        threads,
        reports_per_session,
        smoke,
        burst.peak_sessions,
        burst.requests,
        burst.errors,
        burst.wall_s,
        rps,
        open_n,
        open_p50,
        open_p99,
        sug_n,
        sug_p50,
        sug_p99,
        rep_n,
        rep_p50,
        rep_p99,
        kill.journaled,
        kill.accepted_before_kill,
        kill.replayed,
        kill.recovered,
        kill.lost,
    );
    std::fs::write(&out_path, &json).expect("write BENCH_serve.json");
    print!("{json}");

    let mut failed = Vec::new();
    if burst.peak_sessions < sessions {
        failed.push(format!(
            "peak concurrent sessions {} < fleet size {sessions}",
            burst.peak_sessions
        ));
    }
    if burst.errors > 0 {
        failed.push(format!("{} request errors during the burst", burst.errors));
    }
    if sug_n == 0 || rep_n == 0 || open_n == 0 {
        failed.push("latency histograms missing samples".to_string());
    }
    if kill.lost != 0 {
        failed.push(format!("{} reports lost across the kill", kill.lost));
    }
    if failed.is_empty() {
        eprintln!(
            "serve_bench: OK ({} concurrent sessions, 0 lost reports)",
            burst.peak_sessions
        );
    } else {
        for f in &failed {
            eprintln!("serve_bench: FAIL: {f}");
        }
        std::process::exit(1);
    }
}
