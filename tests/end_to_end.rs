//! End-to-end integration tests: the full MLA pipeline on the simulated
//! applications, spanning every crate in the workspace.

use gptune::apps::{AnalyticalApp, HpcApp, MachineModel, PdgeqrfApp};
use gptune::core::{mla, MlaOptions};
use gptune::problem_from_app;
use gptune::space::Value;
use std::sync::Arc;

fn fast_opts(budget: usize, seed: u64) -> MlaOptions {
    let mut o = MlaOptions::default().with_budget(budget).with_seed(seed);
    o.lcm.n_starts = 2;
    o.lcm.lbfgs.max_iters = 20;
    o.pso.particles = 25;
    o.pso.iters = 20;
    o
}

#[test]
fn analytical_multitask_finds_good_minima_on_easy_tasks() {
    let app: Arc<dyn HpcApp> = Arc::new(AnalyticalApp::new(0.0));
    let tasks: Vec<Vec<Value>> = [0.0, 0.5, 1.0]
        .iter()
        .map(|&t| vec![Value::Real(t)])
        .collect();
    let problem = problem_from_app(Arc::clone(&app), tasks.clone());
    let mut opts = fast_opts(24, 2);
    opts.log_objective = false;
    let r = mla::tune(&problem, &opts);

    for (i, tr) in r.per_task.iter().enumerate() {
        let t = tasks[i][0].as_real();
        let (_, y_true) = AnalyticalApp::true_minimum(t, 100_000);
        // Eq. 11 oscillates ~(t+2)^5 times on [0,1], so with ~24 samples a
        // tuner can only be expected to land in a good basin, not the
        // exact needle: require within 0.55 of the global minimum (the
        // objective's full range is ≈ 3.7).
        assert!(
            tr.best_value - y_true < 0.55,
            "task t={t}: found {} vs true {y_true}",
            tr.best_value
        );
    }
}

#[test]
fn mla_outperforms_pure_random_at_equal_budget() {
    // Aggregated over tasks and seeds to damp noise: MLA (half random,
    // half BO) must beat all-random sampling on the smooth QR surface.
    let app: Arc<dyn HpcApp> = Arc::new(PdgeqrfApp::new(MachineModel::cori_noiseless(4), 20_000));
    let tasks = vec![
        vec![Value::Int(8000), Value::Int(8000)],
        vec![Value::Int(12_000), Value::Int(6000)],
    ];
    let problem = problem_from_app(Arc::clone(&app), tasks);

    let mut mla_total = 0.0;
    let mut rand_total = 0.0;
    for seed in 0..3u64 {
        let opts = fast_opts(16, seed);
        let r = mla::tune(&problem, &opts);
        mla_total += r.per_task.iter().map(|t| t.best_value).sum::<f64>();

        let mut rand_opts = fast_opts(16, seed);
        rand_opts.n_initial = Some(16); // the whole budget is random
        let r2 = mla::tune(&problem, &rand_opts);
        rand_total += r2.per_task.iter().map(|t| t.best_value).sum::<f64>();
    }
    assert!(
        mla_total < rand_total,
        "MLA {mla_total} should beat random {rand_total}"
    );
}

#[test]
fn multitask_transfer_helps_low_budget_tasks() {
    // One "expensive" task gets only a handful of samples; sharing with 4
    // related tasks should still find a near-optimal block size.
    let app: Arc<dyn HpcApp> = Arc::new(PdgeqrfApp::new(MachineModel::cori_noiseless(4), 20_000));
    let tasks: Vec<Vec<Value>> = [4000i64, 6000, 8000, 10_000, 12_000]
        .iter()
        .map(|&n| vec![Value::Int(n), Value::Int(n)])
        .collect();
    let problem = problem_from_app(Arc::clone(&app), tasks.clone());
    let r = mla::tune(&problem, &fast_opts(10, 5));

    // Compare each task's best against a random baseline of the same size.
    let mut rand_opts = fast_opts(10, 5);
    rand_opts.n_initial = Some(10);
    let r2 = mla::tune(&problem, &rand_opts);
    let wins = (0..tasks.len())
        .filter(|&i| r.per_task[i].best_value <= r2.per_task[i].best_value)
        .count();
    assert!(wins >= 3, "MLA won only {wins}/5 tasks vs random");
}

#[test]
fn stats_accounting_consistent() {
    let app: Arc<dyn HpcApp> = Arc::new(AnalyticalApp::new(0.0));
    let problem = problem_from_app(Arc::clone(&app), vec![vec![Value::Real(1.0)]]);
    let mut opts = fast_opts(12, 9);
    opts.log_objective = false;
    opts.runs_per_eval = 2;
    let r = mla::tune(&problem, &opts);
    assert_eq!(r.stats.n_evals, 12);
    assert_eq!(r.per_task[0].samples.len(), 12);
    assert!(r.stats.total_secs() > 0.0);
}

#[test]
fn deterministic_given_seed() {
    let app: Arc<dyn HpcApp> = Arc::new(PdgeqrfApp::new(MachineModel::cori(2), 10_000));
    let problem = problem_from_app(
        Arc::clone(&app),
        vec![vec![Value::Int(5000), Value::Int(5000)]],
    );
    let a = mla::tune(&problem, &fast_opts(10, 77));
    let b = mla::tune(&problem, &fast_opts(10, 77));
    assert_eq!(a.per_task[0].best_value, b.per_task[0].best_value);
    assert_eq!(a.per_task[0].best_config, b.per_task[0].best_config);
}

#[test]
fn performance_model_never_hurts_much_and_often_helps() {
    // On the analytical function with the paper's noisy model feature, the
    // enriched tuner summed over hard tasks should beat the plain tuner.
    let app: Arc<dyn HpcApp> = Arc::new(AnalyticalApp::new(0.0));
    let tasks: Vec<Vec<Value>> = (0..6).map(|i| vec![Value::Real(1.5 * i as f64)]).collect();
    let problem = problem_from_app(Arc::clone(&app), tasks);
    let mut plain = fast_opts(12, 8);
    plain.log_objective = false;
    let mut enriched = plain.clone();
    enriched.use_model_features = true;

    let rp = mla::tune(&problem, &plain);
    let re = mla::tune(&problem, &enriched);
    let sum_plain: f64 = rp.per_task.iter().map(|t| t.best_value).sum();
    let sum_enriched: f64 = re.per_task.iter().map(|t| t.best_value).sum();
    assert!(
        sum_enriched <= sum_plain + 0.1,
        "enriched {sum_enriched} vs plain {sum_plain}"
    );
}
