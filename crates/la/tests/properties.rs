//! Property-based tests for the dense linear algebra kernels.

use gptune_la::{blas, qr, triangular, Cholesky, CholeskyOptions, Lu, Matrix};
use proptest::prelude::*;

/// Strategy: an n×n matrix with entries in [-1, 1].
fn square(n: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-1.0f64..1.0, n * n).prop_map(move |v| Matrix::from_vec(n, n, v))
}

/// Strategy: an SPD matrix A = B Bᵀ + n·I.
fn spd(n: usize) -> impl Strategy<Value = Matrix> {
    square(n).prop_map(move |b| {
        let mut a = blas::matmul(&b, &b.transpose());
        a.add_diagonal(n as f64);
        a
    })
}

fn max_abs_diff(a: &Matrix, b: &Matrix) -> f64 {
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn cholesky_reconstructs_spd(a in spd(8)) {
        let c = Cholesky::factor(&a).unwrap();
        let rec = blas::matmul(c.l(), &c.l().transpose());
        prop_assert!(max_abs_diff(&rec, &a) < 1e-8);
    }

    #[test]
    fn parallel_cholesky_agrees(a in spd(40)) {
        let c1 = Cholesky::factor(&a).unwrap();
        let c2 = Cholesky::factor_parallel(&a, &CholeskyOptions { block: 16 }).unwrap();
        prop_assert!(max_abs_diff(c1.l(), c2.l()) < 1e-8);
    }

    #[test]
    fn cholesky_solve_is_inverse(a in spd(7), x in proptest::collection::vec(-2.0f64..2.0, 7)) {
        let c = Cholesky::factor(&a).unwrap();
        let mut b = vec![0.0; 7];
        blas::gemv(1.0, &a, &x, 0.0, &mut b);
        let xs = c.solve(&b);
        for (u, v) in xs.iter().zip(&x) {
            prop_assert!((u - v).abs() < 1e-7, "{u} vs {v}");
        }
    }

    #[test]
    fn logdet_consistent_with_scaling(a in spd(6), s in 0.5f64..2.0) {
        // |sA| = s^n |A|  →  log|sA| = n ln s + log|A|.
        let c1 = Cholesky::factor(&a).unwrap();
        let mut sa = a.clone();
        sa.scale(s);
        let c2 = Cholesky::factor(&sa).unwrap();
        prop_assert!((c2.log_det() - (6.0 * s.ln() + c1.log_det())).abs() < 1e-8);
    }

    #[test]
    fn lu_solves_well_conditioned_systems(b in square(6), x in proptest::collection::vec(-2.0f64..2.0, 6)) {
        // Make it diagonally dominant so it is nonsingular.
        let mut a = b;
        a.add_diagonal(8.0);
        let lu = Lu::factor(&a).unwrap();
        let mut rhs = vec![0.0; 6];
        blas::gemv(1.0, &a, &x, 0.0, &mut rhs);
        let xs = lu.solve(&rhs);
        for (u, v) in xs.iter().zip(&x) {
            prop_assert!((u - v).abs() < 1e-8);
        }
    }

    #[test]
    fn qr_q_orthonormal_and_reconstructs(v in proptest::collection::vec(-1.0f64..1.0, 9 * 4)) {
        let mut a = Matrix::from_vec(9, 4, v);
        for i in 0..4 {
            a.add_at(i, i, 3.0); // ensure full rank
        }
        let f = qr::Qr::factor(&a);
        let q = f.q();
        let qtq = blas::matmul(&q.transpose(), &q);
        prop_assert!(max_abs_diff(&qtq, &Matrix::identity(4)) < 1e-9);
        let rec = blas::matmul(&q, &f.r());
        prop_assert!(max_abs_diff(&rec, &a) < 1e-9);
    }

    #[test]
    fn lstsq_residual_orthogonal_to_columns(
        v in proptest::collection::vec(-1.0f64..1.0, 10 * 3),
        b in proptest::collection::vec(-3.0f64..3.0, 10),
    ) {
        let mut a = Matrix::from_vec(10, 3, v);
        for i in 0..3 {
            a.add_at(i, i, 3.0);
        }
        let x = qr::lstsq(&a, &b).unwrap();
        let mut r = b.clone();
        for (i, ri) in r.iter_mut().enumerate() {
            let ax: f64 = (0..3).map(|j| a.get(i, j) * x[j]).sum();
            *ri -= ax;
        }
        for j in 0..3 {
            let d: f64 = (0..10).map(|i| a.get(i, j) * r[i]).sum();
            prop_assert!(d.abs() < 1e-7, "column {j}: {d}");
        }
    }

    #[test]
    fn lstsq_nonneg_never_negative(
        v in proptest::collection::vec(-1.0f64..1.0, 8 * 3),
        b in proptest::collection::vec(-3.0f64..3.0, 8),
    ) {
        let mut a = Matrix::from_vec(8, 3, v);
        for i in 0..3 {
            a.add_at(i, i, 2.0);
        }
        if let Ok(x) = qr::lstsq_nonneg(&a, &b) {
            prop_assert!(x.iter().all(|&c| c >= 0.0));
        }
    }

    #[test]
    fn triangular_inverse_roundtrip(v in proptest::collection::vec(0.5f64..2.0, 6 * 6)) {
        let mut l = Matrix::from_vec(6, 6, v);
        // Lower triangular with safe diagonal.
        for i in 0..6 {
            for j in (i + 1)..6 {
                l.set(i, j, 0.0);
            }
            l.add_at(i, i, 1.0);
        }
        let inv = triangular::invert_lower(&l);
        let prod = blas::matmul(&l, &inv);
        prop_assert!(max_abs_diff(&prod, &Matrix::identity(6)) < 1e-9);
    }

    #[test]
    fn gemm_associates_with_vectors(
        v in proptest::collection::vec(-1.0f64..1.0, 5 * 5),
        x in proptest::collection::vec(-1.0f64..1.0, 5),
    ) {
        // (A B) x == A (B x)
        let a = Matrix::from_vec(5, 5, v.clone());
        let b = Matrix::from_vec(5, 5, v.iter().rev().cloned().collect());
        let ab = blas::matmul(&a, &b);
        let mut lhs = vec![0.0; 5];
        blas::gemv(1.0, &ab, &x, 0.0, &mut lhs);
        let mut bx = vec![0.0; 5];
        blas::gemv(1.0, &b, &x, 0.0, &mut bx);
        let mut rhs = vec![0.0; 5];
        blas::gemv(1.0, &a, &bx, 0.0, &mut rhs);
        for (u, w) in lhs.iter().zip(&rhs) {
            prop_assert!((u - w).abs() < 1e-10);
        }
    }
}
