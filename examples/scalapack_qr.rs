//! Tuning ScaLAPACK PDGEQRF (simulated) with multitask learning and the
//! coarse communication-cost performance model of paper Eqs. 7–10.
//!
//! Mirrors the paper's artifact example 2 ("Tuning runtime of PDGEQRF"),
//! scaled to several random matrix shapes, and demonstrates the Sec. 3.3
//! performance-model incorporation: the same budget is spent with and
//! without the model, and the best runtimes are compared.
//!
//! Run with:
//! ```text
//! cargo run --release --example scalapack_qr
//! ```

use gptune::apps::{HpcApp, MachineModel, PdgeqrfApp};
use gptune::core::{mla, MlaOptions};
use gptune::problem_from_app;
use gptune::space::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn main() {
    let machine = MachineModel::cori(4); // 4 nodes = 128 cores
    let app: Arc<dyn HpcApp> = Arc::new(PdgeqrfApp::new(machine, 20_000));

    // 5 random tasks with m, n < 20000 (paper Sec. 6.4).
    let mut rng = StdRng::seed_from_u64(7);
    let tasks: Vec<Vec<Value>> = (0..5)
        .map(|_| {
            vec![
                Value::Int(rng.gen_range(1000..20_000)),
                Value::Int(rng.gen_range(1000..20_000)),
            ]
        })
        .collect();

    let problem = problem_from_app(Arc::clone(&app), tasks.clone());
    let budget = 10;

    let mut base = MlaOptions::default().with_budget(budget).with_seed(11);
    base.runs_per_eval = 3; // min-of-3 noise mitigation, as in the paper
    base.lcm.n_starts = 3;

    println!(
        "PDGEQRF multitask tuning: δ = {} tasks, ε_tot = {budget}, min-of-3 runs",
        tasks.len()
    );

    // Without the coarse performance model.
    let r_plain = mla::tune(&problem, &base);

    // With the Eq. 7 model and on-the-fly coefficient fitting.
    let mut with_model = base.clone();
    with_model.use_model_features = true;
    with_model.fit_model_coefficients = true;
    let r_model = mla::tune(&problem, &with_model);

    println!(
        "\n{:>8} {:>8} {:>14} {:>14} {:>8}",
        "m", "n", "best (plain)", "best (+model)", "ratio"
    );
    for (i, task) in tasks.iter().enumerate() {
        let a = r_plain.per_task[i].best_value;
        let b = r_model.per_task[i].best_value;
        println!(
            "{:>8} {:>8} {:>13.4}s {:>13.4}s {:>8.3}",
            task[0].as_int(),
            task[1].as_int(),
            a,
            b,
            a / b
        );
    }

    println!("\nBest configurations (+model):");
    for (i, task) in tasks.iter().enumerate() {
        println!(
            "  (m={}, n={}): {}",
            task[0].as_int(),
            task[1].as_int(),
            problem
                .tuning_space
                .format_config(&r_model.per_task[i].best_config)
        );
    }
    println!("\nplain:  {}", r_plain.stats.report());
    println!("+model: {}", r_model.stats.report());
}
