//! Master/worker executor mirroring GPTune's MPI spawning.

use crossbeam::channel::{unbounded, Receiver, Sender};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A spawned group of workers connected to the master by a channel pair.
///
/// The master (the thread that called [`WorkerGroup::spawn`]) submits jobs
/// through its end of the job channel; workers execute them and the results
/// flow back through per-batch return channels — the thread analogue of the
/// `SpawnedComm` / `ParentComm` inter-communicators in the paper's Fig. 1.
///
/// ```
/// use gptune_runtime::WorkerGroup;
///
/// let group = WorkerGroup::spawn(4);
/// let squares = group.map((0..10).collect(), |i: i64| i * i);
/// assert_eq!(squares[3], 9);
/// group.shutdown();
/// ```
pub struct WorkerGroup {
    job_tx: Sender<Job>,
    handles: Vec<JoinHandle<()>>,
    size: usize,
}

impl WorkerGroup {
    /// Spawns `n_workers` workers (at least 1).
    pub fn spawn(n_workers: usize) -> WorkerGroup {
        let n = n_workers.max(1);
        let (job_tx, job_rx) = unbounded::<Job>();
        let handles = (0..n)
            .map(|w| {
                let rx: Receiver<Job> = job_rx.clone();
                std::thread::Builder::new()
                    .name(format!("gptune-worker-{w}"))
                    .spawn(move || {
                        // Workers block on the job channel until the master
                        // drops its sender (≈ MPI_Finalize on the parent).
                        while let Ok(job) = rx.recv() {
                            job();
                        }
                    })
                    .expect("failed to spawn worker thread")
            })
            .collect();
        WorkerGroup {
            job_tx,
            handles,
            size: n,
        }
    }

    /// Number of workers in the group.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Evaluates `f` over `items` on the worker group, preserving input
    /// order in the returned vector. Blocks the master until the whole
    /// batch has been returned (the paper's "collect the returning values
    /// from the workers").
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(T) -> R + Send + Sync + 'static,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let f = Arc::new(f);
        let (res_tx, res_rx) = unbounded::<(usize, R)>();
        for (i, item) in items.into_iter().enumerate() {
            let f = Arc::clone(&f);
            let tx = res_tx.clone();
            self.job_tx
                .send(Box::new(move || {
                    let r = f(item);
                    // The master may have given up (it never does today,
                    // but a worker must not panic on a closed channel).
                    let _ = tx.send((i, r));
                }))
                .expect("worker group has shut down");
        }
        drop(res_tx);
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (i, r) = res_rx.recv().expect("worker died before returning");
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .map(|s| s.expect("all slots filled"))
            .collect()
    }

    /// Shuts the group down, joining all workers.
    pub fn shutdown(self) {
        drop(self.job_tx);
        for h in self.handles {
            let _ = h.join();
        }
    }
}

/// Runs `f` inside a dedicated rayon pool of `n_threads` workers.
///
/// Everything `f` does with rayon (parallel Cholesky trailing updates,
/// `par_iter` over L-BFGS restarts) is confined to that pool, so worker
/// counts are controlled exactly as GPTune controls its spawned MPI group
/// sizes. Panics from `f` propagate.
pub fn with_pool<R: Send>(n_threads: usize, f: impl FnOnce() -> R + Send) -> R {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(n_threads.max(1))
        .build()
        .expect("failed to build rayon pool");
    pool.install(f)
}

/// A monotonically increasing counter shared across workers — convenience
/// for tests and for capping concurrent evaluations.
#[derive(Debug, Default)]
pub struct SharedCounter(AtomicUsize);

impl SharedCounter {
    /// New counter at zero.
    pub fn new() -> Self {
        SharedCounter(AtomicUsize::new(0))
    }

    /// Increments and returns the previous value.
    pub fn bump(&self) -> usize {
        self.0.fetch_add(1, Ordering::Relaxed)
    }

    /// Current value.
    pub fn get(&self) -> usize {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn map_preserves_order() {
        let g = WorkerGroup::spawn(4);
        let out = g.map((0..100).collect(), |i: i32| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        g.shutdown();
    }

    #[test]
    fn map_actually_uses_multiple_workers() {
        let g = WorkerGroup::spawn(4);
        let names = Arc::new(Mutex::new(HashSet::new()));
        let names2 = Arc::clone(&names);
        let _ = g.map((0..64).collect::<Vec<i32>>(), move |_| {
            names2
                .lock()
                .unwrap()
                .insert(std::thread::current().name().unwrap_or("?").to_string());
            std::thread::sleep(std::time::Duration::from_millis(1));
        });
        let used = names.lock().unwrap().len();
        assert!(used >= 2, "only {used} workers used");
        g.shutdown();
    }

    #[test]
    fn empty_batch() {
        let g = WorkerGroup::spawn(2);
        let out: Vec<i32> = g.map(Vec::<i32>::new(), |x| x);
        assert!(out.is_empty());
        g.shutdown();
    }

    #[test]
    fn multiple_batches_sequentially() {
        let g = WorkerGroup::spawn(3);
        for batch in 0..5 {
            let out = g.map(vec![batch; 10], |x: i32| x + 1);
            assert!(out.iter().all(|&v| v == batch + 1));
        }
        g.shutdown();
    }

    #[test]
    fn with_pool_bounds_parallelism() {
        let threads = with_pool(3, rayon::current_num_threads);
        assert_eq!(threads, 3);
        let one = with_pool(1, rayon::current_num_threads);
        assert_eq!(one, 1);
    }

    #[test]
    fn with_pool_runs_parallel_work() {
        let sum: i64 = with_pool(4, || {
            use rayon::prelude::*;
            (0..1000i64).into_par_iter().sum()
        });
        assert_eq!(sum, 499_500);
    }

    #[test]
    fn shared_counter() {
        let c = Arc::new(SharedCounter::new());
        let g = WorkerGroup::spawn(4);
        let c2 = Arc::clone(&c);
        let _ = g.map((0..50).collect::<Vec<i32>>(), move |_| {
            c2.bump();
        });
        assert_eq!(c.get(), 50);
        g.shutdown();
    }
}
