//! obs_tool — a top-style live dashboard for a running gptune-serve server.
//!
//! Polls the server's `metrics` wire request (text exposition, decoded via
//! `gptune::trace::expo::parse`) and renders request rates, per-op
//! latency quantiles, resident-session pressure, robustness counters, and
//! model-health rows (refit mode mix, NLL drift events, censored
//! evaluations). Rates and quantiles come from the server's rolling
//! windows, so they describe the last ~2 minutes, not the whole uptime.
//!
//! ```text
//! obs_tool <addr> [--interval <secs>] [--once]
//! obs_tool --smoke <dir>
//! ```
//!
//! `--once` renders a single frame and exits: 0 when the server shows
//! traffic (non-zero request total), 2 when it answers but has seen
//! nothing — which is what the tier-1 smoke gate asserts on.
//!
//! `--smoke <dir>` is the self-contained variant the gate runs: it starts
//! an in-process server on an ephemeral port, drives a short burst
//! through a WAL-backed client carrying its own tracer, scrapes the live
//! server exactly as `--once` would, and dumps both sides' JSONL traces
//! (`client.jsonl`, `server.jsonl`) into `dir` for `trace_tool
//! correlate`.

use gptune::serve::ServeClient;
use gptune::trace::MetricsSnapshot;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = None;
    let mut interval = Duration::from_secs(2);
    let mut once = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--once" => once = true,
            "--smoke" => {
                let dir = it
                    .next()
                    .unwrap_or_else(|| usage("--smoke needs an output directory"));
                std::process::exit(smoke(std::path::Path::new(dir)));
            }
            "--interval" => {
                let secs: f64 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--interval needs a number of seconds"));
                interval = Duration::from_secs_f64(secs.max(0.1));
            }
            "--help" | "-h" => usage(""),
            other if addr.is_none() => addr = Some(other.to_string()),
            other => usage(&format!("unexpected argument: {other}")),
        }
    }
    let addr = addr.unwrap_or_else(|| usage("missing server address"));

    let mut client = match ServeClient::connect(&addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("obs_tool: cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    };
    loop {
        let snap = match client.metrics() {
            Ok(s) => s,
            Err(e) => {
                eprintln!("obs_tool: scrape failed: {e}");
                std::process::exit(1);
            }
        };
        if !once {
            // Clear screen and home the cursor, top(1)-style.
            print!("\x1b[2J\x1b[H");
        }
        let total = render(&addr, &snap);
        if once {
            if total == 0 {
                eprintln!("obs_tool: server is up but has served no requests");
                std::process::exit(2);
            }
            return;
        }
        std::thread::sleep(interval);
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("obs_tool: {err}");
    }
    eprintln!("usage: obs_tool <addr> [--interval <secs>] [--once]");
    eprintln!("       obs_tool --smoke <dir>");
    std::process::exit(if err.is_empty() { 0 } else { 1 });
}

/// Self-contained smoke run: server + client in one process, a real
/// scrape over the wire, and a pair of JSONL dumps for correlation.
/// Exit codes match `--once` (2 = server answered but showed no traffic).
fn smoke(dir: &std::path::Path) -> i32 {
    use gptune::serve::{serve, ProblemSpec, ServeClient, ServeOptions, SessionOptions};
    use gptune::space::{Param, Value};
    use gptune::trace::{jsonl, Tracer};

    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("obs_tool: cannot create {}: {e}", dir.display());
        return 1;
    }
    // The server records into the process-global tracer; the client gets
    // its own ring, standing in for a second process.
    drop(gptune::trace::install(Tracer::ring(1 << 14)));
    let server = match serve(
        "127.0.0.1:0",
        ServeOptions {
            workers: 2,
            ..ServeOptions::default()
        },
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("obs_tool: cannot start smoke server: {e}");
            return 1;
        }
    };
    let addr = server.local_addr().to_string();

    let client_tracer = Tracer::ring(1 << 14);
    let burst = || -> std::io::Result<()> {
        let spec = ProblemSpec {
            name: "obs_smoke".into(),
            task_params: vec![Param::real("t", 0.0, 1.0)],
            tuning_params: vec![Param::real("x", 0.0, 1.0)],
            tasks: vec![vec![Value::Real(0.5)]],
            n_objectives: 1,
        };
        let mut client = ServeClient::connect(&addr)?
            .with_tracer(client_tracer.clone())
            .with_wal(dir.join("client.wal"));
        client.open_session("obs_smoke", &spec, &SessionOptions::default())?;
        for i in 0..10u32 {
            if i % 3 == 0 {
                let _ = client.suggest(0)?;
            }
            let x = f64::from(i % 7) / 7.0;
            client.report(0, &[Value::Real(x)], &[(x - 0.3).abs()])?;
        }
        Ok(())
    };
    if let Err(e) = burst() {
        eprintln!("obs_tool: smoke traffic failed: {e}");
        return 1;
    }

    // Scrape over the wire with a fresh probe, exactly like `--once`.
    // The probe gets a throwaway tracer and its own rid seed: its rpc
    // spans must not leak into the server dump (the default tracer is
    // the global one), and its rids must not collide with the burst
    // client's (both would otherwise count up from the default seed).
    let total = match ServeClient::connect(&addr)
        .map(|p| p.with_tracer(Tracer::ring(64)).with_rid_seed(0xb0b5))
        .and_then(|mut probe| probe.metrics())
    {
        Ok(snap) => render(&addr, &snap),
        Err(e) => {
            eprintln!("obs_tool: smoke scrape failed: {e}");
            return 1;
        }
    };
    server.shutdown();

    let dump = |name: &str, data: &gptune::trace::TraceData| -> std::io::Result<()> {
        std::fs::write(dir.join(name), jsonl::to_string(data))
    };
    if let Err(e) = dump("client.jsonl", &client_tracer.drain())
        .and_then(|()| dump("server.jsonl", &gptune::trace::global().drain()))
    {
        eprintln!("obs_tool: cannot write smoke dumps: {e}");
        return 1;
    }
    if total == 0 {
        eprintln!("obs_tool: smoke server served the burst but reported no requests");
        return 2;
    }
    0
}

/// Renders one frame; returns the lifetime request total.
fn render(addr: &str, snap: &MetricsSnapshot) -> u64 {
    let total = snap.counter("gptune.serve.requests").unwrap_or(0);
    let errors = snap.counter("gptune.serve.errors").unwrap_or(0);
    let rate = snap
        .windowed
        .rate_per_sec("gptune.serve.requests")
        .unwrap_or(0.0);
    let sessions = snap.gauge("gptune.serve.sessions").unwrap_or(0.0);
    let uptime = snap.gauge("gptune.serve.uptime_secs").unwrap_or(0.0);
    let draining = snap.gauge("gptune.serve.draining").unwrap_or(0.0) > 0.5;
    let horizon = snap.windowed.horizon_ns as f64 / 1e9;

    println!(
        "gptune-serve {addr} — up {} — {} sessions{}",
        fmt_secs(uptime),
        sessions as u64,
        if draining { " — DRAINING" } else { "" }
    );
    println!(
        "requests {total} total ({errors} errors) | {rate:.1}/s over the last {}",
        fmt_secs(horizon)
    );

    println!(
        "\n{:<14} {:>9} {:>9} {:>8} {:>9} {:>9}",
        "op", "total", "windowed", "rate/s", "p50 us", "p99 us"
    );
    for (name, h) in &snap.histograms {
        let Some(op) = name.strip_prefix("gptune.serve.latency_us.") else {
            continue;
        };
        let (wcount, p50, p99) = snap
            .windowed
            .histogram(name)
            .map_or((0, 0, 0), |w| (w.count, w.p50(), w.p99()));
        let wrate = if horizon > 0.0 {
            wcount as f64 / horizon
        } else {
            0.0
        };
        println!(
            "{op:<14} {:>9} {wcount:>9} {wrate:>8.1} {p50:>9} {p99:>9}",
            h.count
        );
    }

    println!("\nrobustness (lifetime / windowed):");
    for kind in [
        "evictions",
        "restores",
        "sheds",
        "timeouts",
        "drains",
        "archive_errors",
    ] {
        let name = format!("gptune.serve.{kind}");
        let life = snap.counter(&name).unwrap_or(0);
        let win = snap.windowed.counter(&name).unwrap_or(0);
        if life > 0 || win > 0 {
            println!("  {kind:<15} {life:>9} / {win}");
        }
    }

    let full = snap.counter("gptune.gp.refit.full").unwrap_or(0);
    let incr = snap.counter("gptune.gp.refit.incremental").unwrap_or(0);
    let capped = snap.counter("gptune.gp.refit.capped").unwrap_or(0);
    let drift = snap.counter("gptune.gp.nll_drift_events").unwrap_or(0);
    let censored = snap.counter("gptune.core.evals_censored").unwrap_or(0);
    let reports = snap
        .histogram("gptune.serve.latency_us.report")
        .map_or(0, |h| h.count);
    println!("\nmodel health:");
    println!("  refits          {full} full / {incr} incremental / {capped} capped");
    println!("  nll drift       {drift} events");
    println!(
        "  censored evals  {censored} ({:.1}% of {reports} reports)",
        if reports > 0 {
            100.0 * censored as f64 / reports as f64
        } else {
            0.0
        }
    );

    let tenants = tenant_rows(snap);
    if !tenants.is_empty() {
        println!(
            "\n{:<20} {:>9} {:>12} {:>7}",
            "tenant", "requests", "over-budget", "sheds"
        );
        for (tenant, req, over, sheds) in tenants {
            println!("{tenant:<20} {req:>9} {over:>12} {sheds:>7}");
        }
    }
    total
}

/// Collects per-tenant SLO counters into (tenant, requests, over_budget,
/// sheds) rows, sorted by tenant name.
fn tenant_rows(snap: &MetricsSnapshot) -> Vec<(String, u64, u64, u64)> {
    let mut rows: std::collections::BTreeMap<String, (u64, u64, u64)> = Default::default();
    for (name, v) in &snap.counters {
        let Some(rest) = name.strip_prefix("gptune.serve.tenant.") else {
            continue;
        };
        // The tenant may itself contain dots; the kind is the last segment.
        let Some((tenant, kind)) = rest.rsplit_once('.') else {
            continue;
        };
        let row = rows.entry(tenant.to_string()).or_default();
        match kind {
            "requests" => row.0 = *v,
            "over_budget" => row.1 = *v,
            "sheds" => row.2 = *v,
            _ => {}
        }
    }
    rows.into_iter()
        .map(|(t, (a, b, c))| (t, a, b, c))
        .collect()
}

fn fmt_secs(s: f64) -> String {
    if s >= 3600.0 {
        format!("{:.1}h", s / 3600.0)
    } else if s >= 60.0 {
        format!("{:.1}m", s / 60.0)
    } else {
        format!("{s:.0}s")
    }
}
