//! Nelder–Mead downhill simplex on the unit hypercube — the canonical
//! *local* model-free technique of the OpenTuner ensemble (paper Sec. 5).

use crate::OptResult;

/// Nelder–Mead configuration (standard coefficients).
#[derive(Debug, Clone)]
pub struct NelderMeadOptions {
    /// Maximum objective evaluations.
    pub max_evals: usize,
    /// Initial simplex edge length (unit-box units).
    pub init_step: f64,
    /// Convergence tolerance on the simplex value spread.
    pub f_tol: f64,
}

impl Default for NelderMeadOptions {
    fn default() -> Self {
        NelderMeadOptions {
            max_evals: 400,
            init_step: 0.15,
            f_tol: 1e-10,
        }
    }
}

/// Minimizes `f` over `[0,1]^dim` from the given start point.
pub fn minimize(
    f: &mut dyn FnMut(&[f64]) -> f64,
    x0: &[f64],
    opts: &NelderMeadOptions,
) -> OptResult {
    let dim = x0.len();
    assert!(dim > 0);
    let (alpha, gamma, rho, sigma) = (1.0, 2.0, 0.5, 0.5);
    let mut evals = 0usize;
    let eval = |f: &mut dyn FnMut(&[f64]) -> f64, x: &[f64], evals: &mut usize| -> f64 {
        *evals += 1;
        let v = f(x);
        if v.is_nan() {
            f64::INFINITY
        } else {
            v
        }
    };

    // Initial simplex: x0 plus a step along each axis (reflected if at the
    // upper boundary).
    let mut simplex: Vec<Vec<f64>> = Vec::with_capacity(dim + 1);
    let mut start = x0.to_vec();
    crate::clamp_unit(&mut start);
    simplex.push(start.clone());
    for d in 0..dim {
        let mut p = start.clone();
        p[d] = if p[d] + opts.init_step <= 1.0 {
            p[d] + opts.init_step
        } else {
            p[d] - opts.init_step
        };
        simplex.push(p);
    }
    let mut vals: Vec<f64> = simplex.iter().map(|p| eval(f, p, &mut evals)).collect();

    while evals < opts.max_evals {
        // Order.
        let mut order: Vec<usize> = (0..=dim).collect();
        order.sort_by(|&a, &b| vals[a].total_cmp(&vals[b]));
        let best = order[0];
        let worst = order[dim];
        let second_worst = order[dim - 1];

        if (vals[worst] - vals[best]).abs() <= opts.f_tol * (1.0 + vals[best].abs()) {
            break;
        }

        // Centroid excluding the worst.
        let mut centroid = vec![0.0; dim];
        for (i, p) in simplex.iter().enumerate() {
            if i == worst {
                continue;
            }
            for d in 0..dim {
                centroid[d] += p[d];
            }
        }
        for c in &mut centroid {
            *c /= dim as f64;
        }

        let blend = |t: f64| -> Vec<f64> {
            centroid
                .iter()
                .zip(&simplex[worst])
                .map(|(c, w)| (c + t * (c - w)).clamp(0.0, 1.0))
                .collect()
        };

        // Reflection.
        let xr = blend(alpha);
        let fr = eval(f, &xr, &mut evals);
        if fr < vals[best] {
            // Expansion.
            let xe = blend(gamma);
            let fe = eval(f, &xe, &mut evals);
            if fe < fr {
                simplex[worst] = xe;
                vals[worst] = fe;
            } else {
                simplex[worst] = xr;
                vals[worst] = fr;
            }
        } else if fr < vals[second_worst] {
            simplex[worst] = xr;
            vals[worst] = fr;
        } else {
            // Contraction.
            let xc = blend(-rho);
            let fc = eval(f, &xc, &mut evals);
            if fc < vals[worst] {
                simplex[worst] = xc;
                vals[worst] = fc;
            } else {
                // Shrink toward the best.
                let best_point = simplex[best].clone();
                for i in 0..=dim {
                    if i == best {
                        continue;
                    }
                    for d in 0..dim {
                        simplex[i][d] = best_point[d] + sigma * (simplex[i][d] - best_point[d]);
                    }
                    vals[i] = eval(f, &simplex[i], &mut evals);
                }
            }
        }
    }

    let (bi, bv) = vals
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .unwrap();
    OptResult {
        x: simplex[bi].clone(),
        value: *bv,
        evals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_bowl() {
        let mut f = |x: &[f64]| (x[0] - 0.3).powi(2) + 2.0 * (x[1] - 0.7).powi(2);
        let r = minimize(&mut f, &[0.9, 0.1], &NelderMeadOptions::default());
        assert!(r.value < 1e-8, "value {}", r.value);
        assert!((r.x[0] - 0.3).abs() < 1e-3);
        assert!((r.x[1] - 0.7).abs() < 1e-3);
    }

    #[test]
    fn boundary_minimum() {
        let mut f = |x: &[f64]| -x[0] - x[1];
        let r = minimize(&mut f, &[0.5, 0.5], &NelderMeadOptions::default());
        assert!(r.x[0] > 0.99 && r.x[1] > 0.99);
    }

    #[test]
    fn start_near_upper_bound_builds_valid_simplex() {
        let mut f = |x: &[f64]| (x[0] - 0.95).powi(2);
        let r = minimize(&mut f, &[1.0], &NelderMeadOptions::default());
        assert!((r.x[0] - 0.95).abs() < 1e-3);
    }

    #[test]
    fn respects_eval_budget() {
        let mut n = 0usize;
        let mut f = |x: &[f64]| {
            n += 1;
            (x[0] - 0.5).powi(2)
        };
        let opts = NelderMeadOptions {
            max_evals: 30,
            f_tol: 0.0,
            ..Default::default()
        };
        let _ = minimize(&mut f, &[0.1], &opts);
        // The loop may finish its current step, so allow a small overshoot
        // (≤ dim+2 evals per iteration for 1-D shrink).
        assert!(n <= 30 + 4, "n = {n}");
    }

    #[test]
    fn nan_region_handled() {
        let mut f = |x: &[f64]| {
            if x[0] < 0.2 {
                f64::NAN
            } else {
                (x[0] - 0.4).powi(2)
            }
        };
        let r = minimize(&mut f, &[0.6], &NelderMeadOptions::default());
        assert!((r.x[0] - 0.4).abs() < 1e-3);
    }
}
