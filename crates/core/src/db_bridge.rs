//! Boundary between the tuner and the `gptune-db` storage layer.
//!
//! `gptune-db` is deliberately dependency-free, so it defines its own value
//! and stats types rather than depending on `gptune-space` /
//! `gptune-runtime`. This module converts at the boundary — `Value ↔
//! DbValue`, `PhaseStats ↔ RunStats` — and builds the derived identities
//! the archive is keyed on: the *problem signature* (a stable hash of the
//! problem's structure) and the deterministic *run id*. It also holds the
//! load/store glue the MLA loops use: warm-start preloading, checkpoint
//! construction, and end-of-run archiving.

use crate::history::History;
use crate::mla::{EvalFailure, Evaluations};
use crate::options::MlaOptions;
use crate::problem::TuningProblem;
use gptune_db::{
    fnv1a, Checkpoint, CheckpointKind, CkptFail, Db, DbEntry, DbRecord, DbValue, FailKind,
    FailRecord, Provenance, Query, RunStats, RunSummary,
};
use gptune_runtime::{FailureKind, PhaseStats};
use gptune_space::{Config, Param, ParamKind, Value};
use std::path::Path;
use std::time::Duration;

/// `gptune_space::Value` → storage value.
pub fn value_to_db(v: &Value) -> DbValue {
    match v {
        Value::Real(x) => DbValue::Real(*x),
        Value::Int(x) => DbValue::Int(*x),
        Value::Cat(i) => DbValue::Cat(*i),
    }
}

/// Storage value → `gptune_space::Value`.
pub fn db_to_value(v: &DbValue) -> Value {
    match v {
        DbValue::Real(x) => Value::Real(*x),
        DbValue::Int(x) => Value::Int(*x),
        DbValue::Cat(i) => Value::Cat(*i),
    }
}

/// Converts a configuration to its storage form.
pub fn config_to_db(c: &[Value]) -> Vec<DbValue> {
    c.iter().map(value_to_db).collect()
}

/// Converts a stored configuration back to space values.
pub fn db_to_config(c: &[DbValue]) -> Config {
    c.iter().map(db_to_value).collect()
}

/// Runtime failure classification → storage form.
pub fn failure_kind_to_db(k: FailureKind) -> FailKind {
    match k {
        FailureKind::Crashed => FailKind::Crashed,
        FailureKind::TimedOut => FailKind::TimedOut,
        FailureKind::Invalid => FailKind::Invalid,
        FailureKind::Transient => FailKind::Transient,
    }
}

/// Storage failure classification → runtime form.
pub fn db_to_failure_kind(k: FailKind) -> FailureKind {
    match k {
        FailKind::Crashed => FailureKind::Crashed,
        FailKind::TimedOut => FailureKind::TimedOut,
        FailKind::Invalid => FailureKind::Invalid,
        FailKind::Transient => FailureKind::Transient,
    }
}

/// Stable signature of a problem's *structure*: name, task space, tuning
/// space, and objective count — but **not** the selected tasks, so runs
/// over different task subsets of one problem share a journal (which is
/// what lets TLA transfer records across tasks). Two problems that share a
/// name but differ structurally get distinct journals.
pub fn problem_signature(problem: &TuningProblem) -> u64 {
    let mut text = String::new();
    text.push_str(&problem.name);
    text.push('\u{1f}');
    for p in problem.task_space.params() {
        push_param(&mut text, p);
    }
    text.push('\u{1f}');
    for p in problem.tuning_space.params() {
        push_param(&mut text, p);
    }
    text.push('\u{1f}');
    text.push_str(&problem.n_objectives.to_string());
    fnv1a(text.as_bytes())
}

/// Canonical text form of one parameter for signature hashing. Hand-rolled
/// (not `Debug`) so the signature is stable across compiler versions.
fn push_param(out: &mut String, p: &Param) {
    out.push('|');
    out.push_str(&p.name);
    match &p.kind {
        ParamKind::Real { low, high, log } => {
            out.push_str(&format!(":r[{low};{high};{log}]"));
        }
        ParamKind::Int { low, high, log } => {
            out.push_str(&format!(":i[{low};{high};{log}]"));
        }
        ParamKind::Categorical { choices } => {
            out.push_str(&format!(":c[{}]", choices.join(";")));
        }
    }
}

/// `PhaseStats` → plain-number storage stats.
pub fn stats_to_db(s: &PhaseStats) -> RunStats {
    RunStats {
        objective_virtual_secs: s.objective_virtual_secs,
        objective_wall_secs: s.objective_wall.as_secs_f64(),
        modeling_wall_secs: s.modeling_wall.as_secs_f64(),
        search_wall_secs: s.search_wall.as_secs_f64(),
        n_evals: s.n_evals as u64,
        n_crashed: s.n_crashed as u64,
        n_timed_out: s.n_timed_out as u64,
        n_invalid: s.n_invalid as u64,
        n_transient: s.n_transient as u64,
        n_retries: s.n_retries as u64,
    }
}

/// Storage stats → `PhaseStats` (used when resuming from a checkpoint).
pub fn stats_from_db(s: &RunStats) -> PhaseStats {
    let secs = |x: f64| Duration::from_secs_f64(x.max(0.0));
    PhaseStats {
        objective_virtual_secs: s.objective_virtual_secs,
        objective_wall: secs(s.objective_wall_secs),
        modeling_wall: secs(s.modeling_wall_secs),
        search_wall: secs(s.search_wall_secs),
        n_evals: s.n_evals as usize,
        n_crashed: s.n_crashed as usize,
        n_timed_out: s.n_timed_out as usize,
        n_invalid: s.n_invalid as usize,
        n_transient: s.n_transient as usize,
        n_retries: s.n_retries as usize,
    }
}

/// Deterministic run identifier: the same options always produce the same
/// id, so an interrupted run and its resumption archive as *one* run (and
/// re-archiving after a replayed resume deduplicates on merge).
pub fn run_id(opts: &MlaOptions, delta: usize) -> String {
    format!("seed{}-eps{}-d{delta}", opts.seed, opts.eps_total)
}

/// Provenance stamped on every record this run archives.
pub fn provenance(opts: &MlaOptions, delta: usize) -> Provenance {
    Provenance {
        seed: opts.seed,
        run: run_id(opts, delta),
        machine: opts.machine_id.clone(),
    }
}

/// Opens the archive configured in the options, if any. An unopenable
/// archive is a configuration error and panics loudly — silently tuning
/// without durability would defeat the point of asking for it.
// PANIC-SAFETY: deliberate fail-fast on a user configuration error; the
// run must not proceed without the durability the user asked for.
#[allow(clippy::panic)]
pub(crate) fn open_db(opts: &MlaOptions) -> Option<Db> {
    opts.db_path.as_ref().map(|p| {
        // Opening scans the journal and replays any interrupted write —
        // the recovery phase of the storage layer (gptune-db itself is
        // dependency-free, so its spans are emitted here at the bridge).
        let _span = gptune_trace::global().span("gptune.db.recover");
        Db::open(p).unwrap_or_else(|e| {
            panic!("gptune-db: cannot open archive at {}: {e}", p.display());
        })
    })
}

/// Builds a checkpoint of the in-flight MLA state.
#[allow(clippy::too_many_arguments)]
pub(crate) fn checkpoint_from_run(
    kind: CheckpointKind,
    sig: u64,
    opts: &MlaOptions,
    evals: &Evaluations,
    iteration: usize,
    eps: usize,
    n_preloaded: usize,
    stats: &PhaseStats,
) -> Checkpoint {
    Checkpoint {
        kind,
        sig,
        seed: opts.seed,
        eps_total: opts.eps_total,
        iteration,
        eps,
        n_preloaded,
        points: evals
            .points
            .iter()
            .map(|(t, c)| (*t, config_to_db(c)))
            .collect(),
        outputs: evals.outputs.clone(),
        stats: stats_to_db(stats),
        fails: evals
            .failures
            .iter()
            .map(|f| CkptFail {
                index: f.index,
                kind: failure_kind_to_db(f.kind),
                attempts: f.attempts as u64,
                elapsed_secs: f.elapsed_secs,
            })
            .collect(),
    }
}

/// Builds and atomically persists a checkpoint of the in-flight state.
/// Failure panics: the user asked for durability; losing it is loud.
#[allow(clippy::too_many_arguments)]
// PANIC-SAFETY: losing the ability to checkpoint mid-run is fatal by
// design — continuing would silently void the crash-resume guarantee.
#[allow(clippy::panic)]
pub(crate) fn write_checkpoint(
    db: &Db,
    kind: CheckpointKind,
    sig: u64,
    opts: &MlaOptions,
    evals: &Evaluations,
    iteration: usize,
    eps: usize,
    n_preloaded: usize,
    stats: &PhaseStats,
) {
    let ckpt = checkpoint_from_run(kind, sig, opts, evals, iteration, eps, n_preloaded, stats);
    let _span = gptune_trace::global()
        .span("gptune.db.checkpoint_save")
        .with("iteration", iteration as u64)
        .with("points", ckpt.points.len());
    db.save_checkpoint(&ckpt)
        .unwrap_or_else(|e| panic!("gptune-db: cannot write checkpoint: {e}"));
}

/// Loads the checkpoint keyed by `(sig, seed)`, spanning the read as
/// `gptune.db.checkpoint_load` (with the hit/miss outcome as a field).
pub(crate) fn load_checkpoint_traced(
    db: &Db,
    sig: u64,
    seed: u64,
) -> std::io::Result<Option<Checkpoint>> {
    let mut span = gptune_trace::global().span("gptune.db.checkpoint_load");
    let r = db.load_checkpoint(sig, seed);
    match &r {
        Ok(Some(c)) => {
            span.add("hit", true);
            span.add("iteration", c.iteration as u64);
            span.add("points", c.points.len());
        }
        _ => span.add("hit", false),
    }
    r
}

/// Rehydrates the evaluation archive from a checkpoint.
pub(crate) fn evals_from_checkpoint(ckpt: &Checkpoint) -> Evaluations {
    Evaluations {
        points: ckpt
            .points
            .iter()
            .map(|(t, c)| (*t, db_to_config(c)))
            .collect(),
        outputs: ckpt.outputs.clone(),
        failures: ckpt
            .fails
            .iter()
            .map(|f| EvalFailure {
                index: f.index,
                kind: db_to_failure_kind(f.kind),
                attempts: f.attempts as u32,
                elapsed_secs: f.elapsed_secs,
            })
            .collect(),
    }
}

/// A loaded checkpoint is only usable when it describes *this* run: same
/// loop kind, same budget, and task indices within range. (Signature and
/// seed already matched — they key the checkpoint file.)
pub(crate) fn checkpoint_matches(
    ckpt: &Checkpoint,
    kind: CheckpointKind,
    opts: &MlaOptions,
    delta: usize,
) -> bool {
    ckpt.kind == kind
        && ckpt.eps_total == opts.eps_total
        && ckpt.points.iter().all(|(t, _)| *t < delta)
        && ckpt.points.len() == ckpt.outputs.len()
}

/// Archived evaluations matching this problem's tasks, as
/// `(task_idx, config, outputs)` triples ready to preload (the MLA warm
/// start). Records with foreign tasks, wrong arity, or infeasible
/// configurations are skipped.
pub(crate) fn preload_from_db(
    db: &Db,
    problem: &TuningProblem,
    sig: u64,
) -> std::io::Result<Vec<(usize, Config, Vec<f64>)>> {
    let recs = db.query(
        &problem.name,
        sig,
        &Query {
            n_outputs: Some(problem.n_objectives),
            ..Default::default()
        },
    )?;
    let mut out = Vec::new();
    for r in recs {
        let task = db_to_config(&r.task);
        let Some(idx) = problem.tasks.iter().position(|t| t == &task) else {
            continue;
        };
        let cfg = db_to_config(&r.config);
        if cfg.len() == problem.beta() && problem.tuning_space.is_valid(&cfg) {
            out.push((idx, cfg, r.outputs));
        }
    }
    Ok(out)
}

/// Appends this run's fresh evaluations (skipping the `n_preloaded`
/// archived ones), its classified failure records, and a run summary to
/// the problem's journal. Returns the number of entries written.
///
/// Failure records make the fault knowledge durable: a later run that
/// reads the archive loads them via [`known_failures`] and never
/// re-executes a configuration recorded as crashing.
pub(crate) fn archive_run(
    db: &Db,
    problem: &TuningProblem,
    sig: u64,
    evals: &Evaluations,
    n_preloaded: usize,
    prov: &Provenance,
    stats: &PhaseStats,
) -> std::io::Result<usize> {
    let fresh = evals.points.len().saturating_sub(n_preloaded);
    let mut entries: Vec<DbEntry> = Vec::with_capacity(fresh + 1);
    for ((t, cfg), out) in evals
        .points
        .iter()
        .zip(&evals.outputs)
        .skip(n_preloaded.min(evals.points.len()))
    {
        entries.push(DbEntry::Eval(DbRecord {
            problem: problem.name.clone(),
            sig,
            task: config_to_db(&problem.tasks[*t]),
            config: config_to_db(cfg),
            outputs: out.clone(),
            prov: prov.clone(),
        }));
    }
    for f in &evals.failures {
        if f.index < n_preloaded || f.index >= evals.points.len() {
            continue;
        }
        let (t, cfg) = &evals.points[f.index];
        entries.push(DbEntry::Fail(FailRecord {
            problem: problem.name.clone(),
            sig,
            task: config_to_db(&problem.tasks[*t]),
            config: config_to_db(cfg),
            kind: failure_kind_to_db(f.kind),
            attempts: f.attempts as u64,
            elapsed_secs: f.elapsed_secs,
            prov: prov.clone(),
        }));
    }
    entries.push(DbEntry::Run(RunSummary {
        problem: problem.name.clone(),
        sig,
        prov: prov.clone(),
        stats: stats_to_db(stats),
    }));
    let _span = gptune_trace::global()
        .span("gptune.db.append")
        .with("entries", entries.len());
    db.append(&entries)
}

/// Archived failure records matching this problem's tasks, as
/// `(task_idx, config, kind)` triples — the skip set the evaluation layer
/// consults before executing a configuration. Records with foreign tasks
/// or wrong config arity are ignored.
pub(crate) fn known_failures(
    db: &Db,
    problem: &TuningProblem,
    sig: u64,
) -> std::io::Result<Vec<(usize, Config, FailureKind)>> {
    let recs = db.failures(&problem.name, sig)?;
    let mut out: Vec<(usize, Config, FailureKind)> = Vec::new();
    for r in recs {
        let task = db_to_config(&r.task);
        let Some(idx) = problem.tasks.iter().position(|t| t == &task) else {
            continue;
        };
        let cfg = db_to_config(&r.config);
        if cfg.len() != problem.beta() {
            continue;
        }
        if !out.iter().any(|(t, c, _)| *t == idx && *c == cfg) {
            out.push((idx, cfg, db_to_failure_kind(r.kind)));
        }
    }
    Ok(out)
}

/// Loads every archived evaluation of `problem` from a `gptune-db` archive
/// into a core [`History`] — the bridge that feeds archived data to
/// [`crate::tla::transfer_tune`] and [`crate::tla::predict_transfer_config`].
pub fn history_from_db(db_path: &Path, problem: &TuningProblem) -> std::io::Result<History> {
    let db = Db::open(db_path)?;
    let sig = problem_signature(problem);
    let recs = db.query(
        &problem.name,
        sig,
        &Query {
            n_outputs: Some(problem.n_objectives),
            ..Default::default()
        },
    )?;
    let mut h = History::new(&problem.name);
    for r in recs {
        h.push(db_to_config(&r.task), db_to_config(&r.config), r.outputs);
    }
    Ok(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gptune_space::{Param, Space};

    fn toy(name: &str) -> TuningProblem {
        let ts = Space::builder().param(Param::real("t", 0.0, 10.0)).build();
        let ps = Space::builder()
            .param(Param::real("x", 0.0, 1.0))
            .param(Param::int("b", 1, 64))
            .build();
        TuningProblem::new(
            name,
            ts,
            ps,
            vec![vec![Value::Real(1.0)], vec![Value::Real(2.0)]],
            |_, x, _| vec![x[0].as_real()],
        )
    }

    fn tmp_root(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("gptune_bridge_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn value_roundtrip() {
        for v in [Value::Real(0.25), Value::Int(-3), Value::Cat(2)] {
            assert_eq!(db_to_value(&value_to_db(&v)), v);
        }
    }

    #[test]
    fn signature_ignores_tasks_but_not_structure() {
        let a = toy("p");
        let mut b = toy("p");
        b.tasks = vec![vec![Value::Real(7.0)]];
        assert_eq!(problem_signature(&a), problem_signature(&b));

        let renamed = toy("q");
        assert_ne!(problem_signature(&a), problem_signature(&renamed));

        let wider = {
            let ts = Space::builder().param(Param::real("t", 0.0, 10.0)).build();
            let ps = Space::builder()
                .param(Param::real("x", 0.0, 2.0)) // different bound
                .param(Param::int("b", 1, 64))
                .build();
            TuningProblem::new("p", ts, ps, vec![vec![Value::Real(1.0)]], |_, x, _| {
                vec![x[0].as_real()]
            })
        };
        assert_ne!(problem_signature(&a), problem_signature(&wider));

        let mo = toy("p").with_objectives(2);
        assert_ne!(problem_signature(&a), problem_signature(&mo));
    }

    #[test]
    fn stats_roundtrip_through_db_form() {
        let s = PhaseStats {
            objective_virtual_secs: 12.5,
            objective_wall: Duration::from_millis(250),
            modeling_wall: Duration::from_millis(1500),
            search_wall: Duration::from_millis(750),
            n_evals: 14,
            n_crashed: 2,
            n_timed_out: 1,
            n_invalid: 3,
            n_transient: 4,
            n_retries: 9,
        };
        let back = stats_from_db(&stats_to_db(&s));
        assert_eq!(back.n_evals, 14);
        assert!((back.objective_virtual_secs - 12.5).abs() < 1e-12);
        assert!((back.modeling_wall.as_secs_f64() - 1.5).abs() < 1e-9);
        assert_eq!(back.n_crashed, 2);
        assert_eq!(back.n_timed_out, 1);
        assert_eq!(back.n_invalid, 3);
        assert_eq!(back.n_transient, 4);
        assert_eq!(back.n_retries, 9);
    }

    #[test]
    fn failure_kind_roundtrips_through_db_form() {
        for k in [
            FailureKind::Crashed,
            FailureKind::TimedOut,
            FailureKind::Invalid,
            FailureKind::Transient,
        ] {
            assert_eq!(db_to_failure_kind(failure_kind_to_db(k)), k);
        }
    }

    #[test]
    fn run_id_is_deterministic() {
        let o = MlaOptions::default().with_seed(9).with_budget(30);
        assert_eq!(run_id(&o, 2), run_id(&o, 2));
        assert_ne!(run_id(&o, 2), run_id(&o, 3));
        assert_eq!(run_id(&o, 2), "seed9-eps30-d2");
    }

    #[test]
    fn checkpoint_evals_roundtrip() {
        let evals = Evaluations {
            points: vec![
                (0, vec![Value::Real(0.5), Value::Int(8)]),
                (1, vec![Value::Real(0.75), Value::Int(16)]),
            ],
            outputs: vec![vec![1.0], vec![2.0]],
            failures: vec![EvalFailure {
                index: 1,
                kind: FailureKind::TimedOut,
                attempts: 2,
                elapsed_secs: 0.4,
            }],
        };
        let o = MlaOptions::default().with_seed(4).with_budget(10);
        let c = checkpoint_from_run(
            CheckpointKind::Mla,
            0xabc,
            &o,
            &evals,
            3,
            7,
            0,
            &PhaseStats::default(),
        );
        assert!(checkpoint_matches(&c, CheckpointKind::Mla, &o, 2));
        assert!(!checkpoint_matches(&c, CheckpointKind::MlaMo, &o, 2));
        assert!(!checkpoint_matches(&c, CheckpointKind::Mla, &o, 1));
        let other_budget = MlaOptions::default().with_seed(4).with_budget(12);
        assert!(!checkpoint_matches(
            &c,
            CheckpointKind::Mla,
            &other_budget,
            2
        ));
        let back = evals_from_checkpoint(&c);
        assert_eq!(back.points, evals.points);
        assert_eq!(back.outputs, evals.outputs);
        assert_eq!(back.failures, evals.failures);
    }

    #[test]
    fn archive_then_preload_and_history() {
        let root = tmp_root("arch");
        let db = Db::open(&root).unwrap();
        let p = toy("arch");
        let sig = problem_signature(&p);
        let evals = Evaluations {
            points: vec![
                (0, vec![Value::Real(0.5), Value::Int(8)]),
                (1, vec![Value::Real(0.25), Value::Int(4)]),
            ],
            outputs: vec![vec![1.5], vec![2.5]],
            failures: vec![],
        };
        let o = MlaOptions::default().with_seed(1).with_budget(2);
        let prov = provenance(&o, p.n_tasks());
        let n = archive_run(&db, &p, sig, &evals, 0, &prov, &PhaseStats::default()).unwrap();
        assert_eq!(n, 3, "2 evals + 1 run summary");

        let pre = preload_from_db(&db, &p, sig).unwrap();
        assert_eq!(pre.len(), 2);
        assert_eq!(pre[0].0, 0);
        assert_eq!(pre[1].2, vec![2.5]);

        let h = history_from_db(&root, &p).unwrap();
        assert_eq!(h.len(), 2);
        assert_eq!(h.best_for_task(&p.tasks[0]).unwrap().outputs[0], 1.5);

        // Preloaded records are excluded from a later archive pass.
        let n2 = archive_run(&db, &p, sig, &evals, 2, &prov, &PhaseStats::default()).unwrap();
        assert_eq!(n2, 1, "only the run summary");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn archive_persists_failures_and_known_failures_reloads_them() {
        let root = tmp_root("fails");
        let db = Db::open(&root).unwrap();
        let p = toy("fails");
        let sig = problem_signature(&p);
        let bad_cfg = vec![Value::Real(0.9), Value::Int(32)];
        let evals = Evaluations {
            points: vec![
                (0, vec![Value::Real(0.5), Value::Int(8)]),
                (1, bad_cfg.clone()),
            ],
            outputs: vec![vec![1.5], vec![f64::INFINITY]],
            failures: vec![EvalFailure {
                index: 1,
                kind: FailureKind::Crashed,
                attempts: 1,
                elapsed_secs: 0.01,
            }],
        };
        let o = MlaOptions::default().with_seed(1).with_budget(2);
        let prov = provenance(&o, p.n_tasks());
        let n = archive_run(&db, &p, sig, &evals, 0, &prov, &PhaseStats::default()).unwrap();
        assert_eq!(n, 4, "2 evals + 1 fail + 1 run summary");

        let known = known_failures(&db, &p, sig).unwrap();
        assert_eq!(known.len(), 1);
        assert_eq!(known[0].0, 1);
        assert_eq!(known[0].1, bad_cfg);
        assert_eq!(known[0].2, FailureKind::Crashed);

        // Failures pointing at preloaded points are not re-archived.
        let n2 = archive_run(&db, &p, sig, &evals, 2, &prov, &PhaseStats::default()).unwrap();
        assert_eq!(n2, 1, "only the run summary");
        let _ = std::fs::remove_dir_all(&root);
    }
}
