//! Fixture: GX301 lock discipline — no Mutex/RwLock guard held across a
//! channel send/recv or a join.

use std::sync::mpsc::Sender;
use std::sync::Mutex;

pub fn violation(m: &Mutex<u32>, tx: &Sender<u32>) {
    let guard = m.lock().unwrap();
    tx.send(*guard).ok(); // GX301: guard still live
}

pub fn clean_drop_first(m: &Mutex<u32>, tx: &Sender<u32>) {
    let guard = m.lock().unwrap();
    let v = *guard;
    drop(guard);
    tx.send(v).ok();
}

pub fn clean_scoped(m: &Mutex<u32>, tx: &Sender<u32>) {
    let v = {
        let guard = m.lock().unwrap();
        *guard
    };
    tx.send(v).ok();
}
