//! Triangular solves (forward/backward substitution).
//!
//! These are the building blocks of the Cholesky-based covariance solves in
//! the GP/LCM code: `Σ⁻¹ y` is computed as two triangular solves against the
//! Cholesky factor `L`.

use crate::ord::feq;
use crate::Matrix;

/// Solves `L x = b` in place where `L` is lower triangular (only the lower
/// triangle of `l` is referenced).
///
/// # Panics
/// Panics on dimension mismatch or zero diagonal (callers guarantee a
/// successfully factorized `L`).
pub fn solve_lower(l: &Matrix, b: &mut [f64]) {
    let n = l.rows();
    assert!(l.is_square() && b.len() == n, "solve_lower: dims");
    for i in 0..n {
        let row = l.row(i);
        let mut s = b[i];
        for (j, bj) in b[..i].iter().enumerate() {
            s -= row[j] * bj;
        }
        let d = row[i];
        assert!(!feq(d, 0.0), "solve_lower: zero diagonal at {i}");
        b[i] = s / d;
    }
}

/// Solves `Lᵀ x = b` in place where `L` is lower triangular.
pub fn solve_lower_transpose(l: &Matrix, b: &mut [f64]) {
    let n = l.rows();
    assert!(l.is_square() && b.len() == n, "solve_lower_transpose: dims");
    for i in (0..n).rev() {
        let mut s = b[i];
        for j in (i + 1)..n {
            s -= l.get(j, i) * b[j];
        }
        let d = l.get(i, i);
        assert!(!feq(d, 0.0), "solve_lower_transpose: zero diagonal at {i}");
        b[i] = s / d;
    }
}

/// Solves `U x = b` in place where `U` is upper triangular (only the upper
/// triangle of `u` is referenced).
pub fn solve_upper(u: &Matrix, b: &mut [f64]) {
    let n = u.rows();
    assert!(u.is_square() && b.len() == n, "solve_upper: dims");
    for i in (0..n).rev() {
        let row = u.row(i);
        let mut s = b[i];
        for j in (i + 1)..n {
            s -= row[j] * b[j];
        }
        let d = row[i];
        assert!(!feq(d, 0.0), "solve_upper: zero diagonal at {i}");
        b[i] = s / d;
    }
}

/// Solves `L X = B` column-block-wise, overwriting `B` with the solution.
/// This is the `trsm` used by the blocked Cholesky panel update.
pub fn solve_lower_matrix(l: &Matrix, b: &mut Matrix) {
    let n = l.rows();
    assert!(l.is_square() && b.rows() == n, "solve_lower_matrix: dims");
    for i in 0..n {
        let li = l.row(i).to_vec(); // copy row to sidestep borrow of b rows
        let diag = li[i];
        assert!(!feq(diag, 0.0), "solve_lower_matrix: zero diagonal at {i}");
        for j in 0..i {
            let lij = li[j];
            if feq(lij, 0.0) {
                continue;
            }
            let (bi, bj) = b.rows_mut_pair(i, j);
            for (x, y) in bi.iter_mut().zip(bj.iter()) {
                *x -= lij * y;
            }
        }
        for v in b.row_mut(i) {
            *v /= diag;
        }
    }
}

/// Solves `X Lᵀ = B` in place (right-side trsm with the transposed factor),
/// i.e. each row `x` of `X` satisfies `L x = b` for the matching row of `B`.
pub fn solve_lower_transpose_right(l: &Matrix, b: &mut Matrix) {
    let n = l.rows();
    assert!(
        l.is_square() && b.cols() == n,
        "solve_lower_transpose_right: dims"
    );
    for r in 0..b.rows() {
        let row = b.row_mut(r);
        // Solve L x = rowᵀ by forward substitution over columns.
        for i in 0..n {
            let mut s = row[i];
            for j in 0..i {
                s -= l.get(i, j) * row[j];
            }
            row[i] = s / l.get(i, i);
        }
    }
}

/// Inverts a lower-triangular matrix in place, returning a fresh matrix.
pub fn invert_lower(l: &Matrix) -> Matrix {
    let n = l.rows();
    assert!(l.is_square());
    let mut inv = Matrix::zeros(n, n);
    let mut e = vec![0.0; n];
    for j in 0..n {
        e.iter_mut().for_each(|v| *v = 0.0);
        e[j] = 1.0;
        solve_lower(l, &mut e);
        for i in j..n {
            inv.set(i, j, e[i]);
        }
    }
    inv
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas::matmul;

    fn lower3() -> Matrix {
        Matrix::from_rows(&[&[2.0, 0.0, 0.0], &[1.0, 3.0, 0.0], &[-1.0, 2.0, 4.0]])
    }

    #[test]
    fn solve_lower_known() {
        let l = lower3();
        // b = L * [1, 2, 3]^T
        let mut b = vec![2.0, 7.0, 15.0];
        solve_lower(&l, &mut b);
        assert!((b[0] - 1.0).abs() < 1e-14);
        assert!((b[1] - 2.0).abs() < 1e-14);
        assert!((b[2] - 3.0).abs() < 1e-14);
    }

    #[test]
    fn solve_lower_transpose_known() {
        let l = lower3();
        let lt = l.transpose();
        // b = L^T * x for x = [1, -1, 2]
        let x = [1.0, -1.0, 2.0];
        let mut b = vec![0.0; 3];
        for i in 0..3 {
            b[i] = (0..3).map(|j| lt.get(i, j) * x[j]).sum();
        }
        solve_lower_transpose(&l, &mut b);
        for i in 0..3 {
            assert!((b[i] - x[i]).abs() < 1e-13);
        }
    }

    #[test]
    fn solve_upper_known() {
        let u = lower3().transpose();
        let x = [2.0, 0.5, -1.0];
        let mut b = vec![0.0; 3];
        for i in 0..3 {
            b[i] = (0..3).map(|j| u.get(i, j) * x[j]).sum();
        }
        solve_upper(&u, &mut b);
        for i in 0..3 {
            assert!((b[i] - x[i]).abs() < 1e-13);
        }
    }

    #[test]
    fn solve_lower_matrix_matches_vector_solves() {
        let l = lower3();
        let x_true = Matrix::from_rows(&[&[1.0, 4.0], &[2.0, 5.0], &[3.0, 6.0]]);
        let mut b = matmul(&l, &x_true);
        solve_lower_matrix(&l, &mut b);
        for i in 0..3 {
            for j in 0..2 {
                assert!((b.get(i, j) - x_true.get(i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn solve_right_transpose() {
        let l = lower3();
        // X L^T = B with X known
        let x_true = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[0.0, -1.0, 1.0]]);
        let mut b = matmul(&x_true, &l.transpose());
        solve_lower_transpose_right(&l, &mut b);
        for i in 0..2 {
            for j in 0..3 {
                assert!((b.get(i, j) - x_true.get(i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn invert_lower_gives_identity() {
        let l = lower3();
        let inv = invert_lower(&l);
        let prod = matmul(&l, &inv);
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((prod.get(i, j) - expect).abs() < 1e-13);
            }
        }
        // Inverse of lower triangular is lower triangular.
        assert_eq!(inv.get(0, 1), 0.0);
        assert_eq!(inv.get(0, 2), 0.0);
        assert_eq!(inv.get(1, 2), 0.0);
    }

    #[test]
    #[should_panic]
    fn zero_diagonal_panics() {
        let l = Matrix::from_rows(&[&[1.0, 0.0], &[2.0, 0.0]]);
        let mut b = vec![1.0, 1.0];
        solve_lower(&l, &mut b);
    }
}
