//! Symmetric eigendecomposition by the cyclic Jacobi method.
//!
//! Used for diagnostics of the GP machinery: conditioning of LCM
//! covariance matrices (which drives the jitter retries) and PSD
//! verification in tests. Jacobi is slow (`O(n³)` per sweep) but simple,
//! unconditionally stable, and exact enough for matrices of the sizes the
//! tuner factorizes.

use crate::Matrix;

/// Eigendecomposition `A = V diag(λ) Vᵀ` of a symmetric matrix.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues, ascending.
    pub eigenvalues: Vec<f64>,
    /// Orthonormal eigenvectors as matrix columns, aligned with
    /// `eigenvalues`.
    pub eigenvectors: Matrix,
}

impl SymmetricEigen {
    /// Computes the decomposition (the strictly upper triangle of `a` is
    /// trusted; the lower is assumed symmetric).
    ///
    /// # Panics
    /// Panics if `a` is not square.
    pub fn new(a: &Matrix) -> SymmetricEigen {
        assert!(a.is_square(), "SymmetricEigen: matrix must be square");
        let n = a.rows();
        let mut m = a.clone();
        m.symmetrize();
        let mut v = Matrix::identity(n);

        const MAX_SWEEPS: usize = 64;
        for _ in 0..MAX_SWEEPS {
            let off = off_diagonal_norm(&m);
            if off < 1e-14 * m.norm_fro().max(1e-300) {
                break;
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = m.get(p, q);
                    if apq.abs() < 1e-300 {
                        continue;
                    }
                    let app = m.get(p, p);
                    let aqq = m.get(q, q);
                    // Rotation angle zeroing (p, q).
                    let theta = 0.5 * (aqq - app) / apq;
                    let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                    let c = 1.0 / (t * t + 1.0).sqrt();
                    let s = t * c;
                    rotate(&mut m, p, q, c, s);
                    rotate_columns(&mut v, p, q, c, s);
                }
            }
        }

        let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (m.get(i, i), i)).collect();
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
        let eigenvalues: Vec<f64> = pairs.iter().map(|(v, _)| *v).collect();
        let mut eigenvectors = Matrix::zeros(n, n);
        for (col, (_, old)) in pairs.iter().enumerate() {
            for r in 0..n {
                eigenvectors.set(r, col, v.get(r, *old));
            }
        }
        SymmetricEigen {
            eigenvalues,
            eigenvectors,
        }
    }

    /// Spectral condition number `λ_max / λ_min` (infinite when the
    /// smallest eigenvalue is ≤ 0).
    pub fn condition_number(&self) -> f64 {
        let min = *self.eigenvalues.first().expect("non-empty");
        let max = *self.eigenvalues.last().expect("non-empty");
        if min <= 0.0 {
            f64::INFINITY
        } else {
            max / min
        }
    }

    /// `true` iff all eigenvalues exceed `-tol` (numerically PSD).
    pub fn is_positive_semidefinite(&self, tol: f64) -> bool {
        self.eigenvalues.iter().all(|&l| l > -tol)
    }
}

/// Frobenius norm of the off-diagonal part.
fn off_diagonal_norm(m: &Matrix) -> f64 {
    let n = m.rows();
    let mut s = 0.0;
    for i in 0..n {
        for j in 0..n {
            if i != j {
                let v = m.get(i, j);
                s += v * v;
            }
        }
    }
    s.sqrt()
}

/// Applies the two-sided Jacobi rotation `J(p,q,θ)ᵀ M J(p,q,θ)` in place.
fn rotate(m: &mut Matrix, p: usize, q: usize, c: f64, s: f64) {
    let n = m.rows();
    for k in 0..n {
        let mkp = m.get(k, p);
        let mkq = m.get(k, q);
        m.set(k, p, c * mkp - s * mkq);
        m.set(k, q, s * mkp + c * mkq);
    }
    for k in 0..n {
        let mpk = m.get(p, k);
        let mqk = m.get(q, k);
        m.set(p, k, c * mpk - s * mqk);
        m.set(q, k, s * mpk + c * mqk);
    }
}

/// Applies the rotation to the eigenvector accumulator (columns p, q).
fn rotate_columns(v: &mut Matrix, p: usize, q: usize, c: f64, s: f64) {
    let n = v.rows();
    for k in 0..n {
        let vkp = v.get(k, p);
        let vkq = v.get(k, q);
        v.set(k, p, c * vkp - s * vkq);
        v.set(k, q, s * vkp + c * vkq);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas::matmul;

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let mut d = Matrix::zeros(4, 4);
        for (i, &v) in [4.0, 1.0, 3.0, 2.0].iter().enumerate() {
            d.set(i, i, v);
        }
        let e = SymmetricEigen::new(&d);
        assert_eq!(e.eigenvalues, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn known_2x2() {
        // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let e = SymmetricEigen::new(&a);
        assert!((e.eigenvalues[0] - 1.0).abs() < 1e-12);
        assert!((e.eigenvalues[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn reconstruction_and_orthogonality() {
        let b = Matrix::from_fn(6, 6, |i, j| (((i * 13 + j * 7) % 11) as f64 - 5.0) / 5.0);
        let mut a = matmul(&b, &b.transpose());
        a.add_diagonal(1.0);
        let e = SymmetricEigen::new(&a);
        // V Vᵀ = I.
        let vvt = matmul(&e.eigenvectors, &e.eigenvectors.transpose());
        for i in 0..6 {
            for j in 0..6 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((vvt.get(i, j) - expect).abs() < 1e-10);
            }
        }
        // A v_k = λ_k v_k.
        for k in 0..6 {
            let vk = e.eigenvectors.col(k);
            let mut av = vec![0.0; 6];
            crate::blas::gemv(1.0, &a, &vk, 0.0, &mut av);
            for i in 0..6 {
                assert!(
                    (av[i] - e.eigenvalues[k] * vk[i]).abs() < 1e-9,
                    "eigpair {k}"
                );
            }
        }
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let b = Matrix::from_fn(5, 5, |i, j| ((i + 2 * j) % 7) as f64 / 3.0);
        let mut a = matmul(&b, &b.transpose());
        a.add_diagonal(0.5);
        let e = SymmetricEigen::new(&a);
        let sum: f64 = e.eigenvalues.iter().sum();
        assert!((sum - a.trace()).abs() < 1e-9);
    }

    #[test]
    fn condition_number_and_psd() {
        let a = Matrix::from_rows(&[&[10.0, 0.0], &[0.0, 0.1]]);
        let e = SymmetricEigen::new(&a);
        assert!((e.condition_number() - 100.0).abs() < 1e-9);
        assert!(e.is_positive_semidefinite(1e-12));

        let indefinite = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        let e2 = SymmetricEigen::new(&indefinite);
        assert!(!e2.is_positive_semidefinite(1e-12));
        assert_eq!(e2.condition_number(), f64::INFINITY);
    }

    #[test]
    fn one_by_one() {
        let a = Matrix::from_rows(&[&[7.0]]);
        let e = SymmetricEigen::new(&a);
        assert_eq!(e.eigenvalues, vec![7.0]);
    }
}
