//! The metrics registry: counters, gauges, log2-bucketed histograms.
//!
//! All updates are relaxed atomics; registration (name → handle lookup)
//! takes a registry mutex, so callers fetch a handle once and reuse it in
//! loops. Names follow the `gptune.<crate>.<name>` scheme documented in
//! DESIGN.md §9 (and enforced by the GX602 lint). Maps are `BTreeMap` so
//! snapshots are deterministically ordered.
//!
//! Counters and histograms keep two views: exact lifetime totals, and —
//! when the registry was built with an enabled [`WindowSpec`] — rolling
//! per-window deltas (see [`crate::window`]) surfaced through
//! [`MetricsSnapshot::windowed`] so rates and quantiles can reflect the
//! last few minutes instead of the whole process lifetime.

use crate::window::{CounterRing, HistRing, WindowCtx, WindowSpec};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Number of log2 histogram buckets; bucket `i` covers values with `i`
/// significant bits (`[2^(i-1), 2^i)`), bucket 0 holds zeros, the last
/// bucket absorbs everything larger.
pub const N_BUCKETS: usize = 64;

/// A monotonic counter: an exact lifetime total plus optional rolling
/// window deltas.
#[derive(Debug)]
pub struct Counter {
    total: AtomicU64,
    ring: Option<CounterRing>,
}

impl std::fmt::Debug for CounterRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CounterRing").finish_non_exhaustive()
    }
}

impl std::fmt::Debug for HistRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HistRing").finish_non_exhaustive()
    }
}

impl Counter {
    fn new(ctx: Option<WindowCtx>) -> Self {
        Counter {
            total: AtomicU64::new(0),
            ring: ctx.map(CounterRing::new),
        }
    }

    fn add(&self, n: u64) {
        self.total.fetch_add(n, Ordering::Relaxed);
        if let Some(ring) = &self.ring {
            ring.add(n);
        }
    }
}

/// A log2-bucketed histogram of u64 samples (typically nanoseconds),
/// with an exact lifetime view plus optional rolling window deltas.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; N_BUCKETS],
    ring: Option<HistRing>,
}

impl Histogram {
    fn new(ctx: Option<WindowCtx>) -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            ring: ctx.map(HistRing::new),
        }
    }

    fn record(&self, v: u64) {
        let bits = (u64::BITS - v.leading_zeros()) as usize;
        let idx = bits.min(N_BUCKETS - 1);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        if let Some(b) = self.buckets.get(idx) {
            b.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(ring) = &self.ring {
            ring.record(v, idx);
        }
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then_some((i as u32, n))
                })
                .collect(),
        }
    }
}

/// Point-in-time view of one histogram: total count/sum plus the
/// non-empty `(bucket_index, count)` pairs. Bucket `i > 0` covers
/// `[2^(i-1), 2^i)`; bucket 0 holds exact zeros.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Arithmetic mean of the recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate `q`-quantile (`q ∈ [0, 1]`) from the log2 buckets.
    ///
    /// Locates the bucket holding the `⌈q·count⌉`-th smallest sample and
    /// interpolates within it, assuming the bucket's samples are evenly
    /// spread across `[2^(i-1), 2^i)` (midpoint convention: the k-th of
    /// n samples sits at `lo + width·(2k−1)/(2n)`). Exact for zeros
    /// (bucket 0) and for samples uniform within a bucket; in general the
    /// absolute error is below the bucket width, so the result is within
    /// a factor of 2 of the true quantile (the last bucket is unbounded
    /// and saturates to `u64::MAX`). Returns 0 when the histogram is
    /// empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(i, n) in &self.buckets {
            let before = seen;
            seen += n;
            if seen >= rank {
                return match i as usize {
                    0 => 0,
                    b if b >= N_BUCKETS - 1 => u64::MAX,
                    b => {
                        let lo = 1u64 << (b - 1);
                        let k = rank - before; // 1-based rank within the bucket
                        lo + ((lo as f64) * ((2 * k - 1) as f64) / ((2 * n) as f64)) as u64
                    }
                };
            }
        }
        u64::MAX
    }

    /// Median (`quantile(0.5)`).
    pub fn p50(&self) -> u64 {
        self.quantile(0.5)
    }

    /// 99th percentile (`quantile(0.99)`).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

/// Rolling-window view: counter and histogram deltas over the last
/// [`WindowedMetrics::horizon_ns`] nanoseconds. Empty (horizon 0) when
/// the registry's windows are disabled. Gauges are point-in-time and
/// have no windowed form.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WindowedMetrics {
    /// Wall-clock span the live windows cover, in nanoseconds (0 when
    /// windows are disabled).
    pub horizon_ns: u64,
    pub counters: Vec<(String, u64)>,
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl WindowedMetrics {
    /// Windowed delta of a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Windowed histogram snapshot by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Events per second for a counter over the window horizon (`None`
    /// when the counter is unknown or windows are disabled).
    pub fn rate_per_sec(&self, name: &str) -> Option<f64> {
        if self.horizon_ns == 0 {
            return None;
        }
        Some(self.counter(name)? as f64 * 1e9 / self.horizon_ns as f64)
    }
}

/// Point-in-time view of every registered metric, deterministically
/// ordered by name. `counters`/`gauges`/`histograms` are exact lifetime
/// values; `windowed` holds the rolling-window deltas.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, f64)>,
    pub histograms: Vec<(String, HistogramSnapshot)>,
    pub windowed: WindowedMetrics,
}

impl MetricsSnapshot {
    /// Value of a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Value of a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Histogram snapshot by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }
}

pub(crate) struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    window_ctx: Option<WindowCtx>,
}

impl Registry {
    pub(crate) fn new(epoch: Instant, windows: WindowSpec) -> Self {
        Registry {
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            window_ctx: WindowCtx::new(epoch, windows),
        }
    }

    // Lookups probe with `get` before falling back to `entry`: `entry`
    // would allocate an owned key on every call, and repeat lookups by
    // name (the common case on request paths) should not allocate.

    pub(crate) fn counter(&self, name: &str) -> CounterHandle {
        let mut map = self.counters.lock();
        if let Some(cell) = map.get(name) {
            return CounterHandle(Some(Arc::clone(cell)));
        }
        let cell = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Counter::new(self.window_ctx)));
        CounterHandle(Some(Arc::clone(cell)))
    }

    pub(crate) fn gauge(&self, name: &str) -> GaugeHandle {
        let mut map = self.gauges.lock();
        if let Some(cell) = map.get(name) {
            return GaugeHandle(Some(Arc::clone(cell)));
        }
        let cell = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0f64.to_bits())));
        GaugeHandle(Some(Arc::clone(cell)))
    }

    pub(crate) fn histogram(&self, name: &str) -> HistogramHandle {
        let mut map = self.histograms.lock();
        if let Some(cell) = map.get(name) {
            return HistogramHandle(Some(Arc::clone(cell)));
        }
        let cell = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::new(self.window_ctx)));
        HistogramHandle(Some(Arc::clone(cell)))
    }

    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        let counters = self.counters.lock();
        let histograms = self.histograms.lock();
        let windowed = match &self.window_ctx {
            Some(ctx) => WindowedMetrics {
                horizon_ns: ctx.horizon_ns(),
                counters: counters
                    .iter()
                    .filter_map(|(n, c)| c.ring.as_ref().map(|r| (n.clone(), r.merged())))
                    .collect(),
                histograms: histograms
                    .iter()
                    .filter_map(|(n, h)| h.ring.as_ref().map(|r| (n.clone(), r.merged())))
                    .collect(),
            },
            None => WindowedMetrics::default(),
        };
        MetricsSnapshot {
            counters: counters
                .iter()
                .map(|(n, c)| (n.clone(), c.total.load(Ordering::Relaxed)))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .iter()
                .map(|(n, v)| (n.clone(), f64::from_bits(v.load(Ordering::Relaxed))))
                .collect(),
            histograms: histograms
                .iter()
                .map(|(n, h)| (n.clone(), h.snapshot()))
                .collect(),
            windowed,
        }
    }
}

/// Monotonic counter handle; a disabled handle (from a disabled tracer)
/// is a no-op.
#[derive(Debug, Clone, Default)]
pub struct CounterHandle(pub(crate) Option<Arc<Counter>>);

impl CounterHandle {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.add(n);
        }
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }
}

/// f64 gauge handle (value stored as bits in an atomic); disabled handles
/// are no-ops.
#[derive(Debug, Clone, Default)]
pub struct GaugeHandle(pub(crate) Option<Arc<AtomicU64>>);

impl GaugeHandle {
    /// Overwrites the gauge value.
    pub fn set(&self, v: f64) {
        if let Some(g) = &self.0 {
            g.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Adds `delta` (CAS loop; lock-free).
    pub fn add(&self, delta: f64) {
        if let Some(g) = &self.0 {
            let mut cur = g.load(Ordering::Relaxed);
            loop {
                let next = (f64::from_bits(cur) + delta).to_bits();
                match g.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                    Ok(_) => break,
                    Err(actual) => cur = actual,
                }
            }
        }
    }
}

/// Histogram handle; disabled handles are no-ops.
#[derive(Debug, Clone, Default)]
pub struct HistogramHandle(pub(crate) Option<Arc<Histogram>>);

impl HistogramHandle {
    /// Records one sample.
    pub fn record(&self, v: u64) {
        if let Some(h) = &self.0 {
            h.record(v);
        }
    }

    /// Records a duration as nanoseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> Registry {
        Registry::new(Instant::now(), WindowSpec::disabled())
    }

    #[test]
    fn counter_and_gauge_roundtrip() {
        let r = registry();
        let c = r.counter("gptune.test.jobs");
        c.inc();
        c.add(4);
        // Second lookup hits the same atomic.
        r.counter("gptune.test.jobs").inc();
        let g = r.gauge("gptune.test.level");
        g.set(1.5);
        g.add(0.25);
        let s = r.snapshot();
        assert_eq!(s.counter("gptune.test.jobs"), Some(6));
        assert!((s.gauge("gptune.test.level").unwrap() - 1.75).abs() < 1e-12);
        assert_eq!(s.counter("missing"), None);
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let r = registry();
        let h = r.histogram("gptune.test.latency");
        h.record(0); // bucket 0
        h.record(1); // bucket 1: [1,2)
        h.record(3); // bucket 2: [2,4)
        h.record(3);
        h.record(1000); // bucket 10: [512,1024)
        let s = r.snapshot();
        let hs = s.histogram("gptune.test.latency").unwrap();
        assert_eq!(hs.count, 5);
        assert_eq!(hs.sum, 1007);
        assert_eq!(hs.buckets, vec![(0, 1), (1, 1), (2, 2), (10, 1)]);
        assert!((hs.mean() - 201.4).abs() < 1e-9);
    }

    #[test]
    fn quantiles_from_log2_buckets() {
        let r = registry();
        let h = r.histogram("q");
        // 90 small samples in bucket 3 ([4,8)), 10 big in bucket 10
        // ([512,1024)); interpolation spreads each bucket's samples
        // evenly across it.
        for _ in 0..90 {
            h.record(5);
        }
        for _ in 0..10 {
            h.record(1000);
        }
        let s = r.snapshot();
        let hs = s.histogram("q").unwrap();
        assert_eq!(hs.p50(), 6, "median interpolates within [4,8)");
        assert_eq!(hs.quantile(0.9), 7, "upper edge of the [4,8) bucket");
        assert_eq!(hs.p99(), 947, "tail interpolates within [512,1024)");
        assert_eq!(hs.quantile(1.0), 998);
        assert_eq!(hs.quantile(0.0), 4, "rank clamps to the first sample");
    }

    #[test]
    fn quantile_is_exact_for_uniform_samples() {
        // 1..=1024 fills buckets uniformly, so the even-spread
        // interpolation recovers the true order statistics exactly — the
        // old bucket-upper-bound answer was 1023 for the median.
        let r = registry();
        let h = r.histogram("u");
        for v in 1..=1024u64 {
            h.record(v);
        }
        let s = r.snapshot();
        let hs = s.histogram("u").unwrap();
        assert_eq!(hs.p50(), 512);
        assert_eq!(hs.p99(), 1014);
        assert_eq!(hs.quantile(0.25), 256);
        // The top sample (1024) sits alone in [1024,2048): interpolation
        // places it mid-bucket — within the documented 2× bound.
        assert_eq!(hs.quantile(1.0), 1536);
    }

    #[test]
    fn quantile_edge_cases() {
        let empty = HistogramSnapshot::default();
        assert_eq!(empty.quantile(0.5), 0);
        let r = registry();
        let h = r.histogram("z");
        h.record(0);
        h.record(u64::MAX);
        let s = r.snapshot();
        let hs = s.histogram("z").unwrap();
        assert_eq!(hs.p50(), 0, "zeros are exact");
        assert_eq!(hs.quantile(1.0), u64::MAX, "overflow bucket saturates");
    }

    #[test]
    fn histogram_extreme_values_stay_in_range() {
        let r = registry();
        let h = r.histogram("x");
        h.record(u64::MAX);
        let s = r.snapshot();
        let hs = s.histogram("x").unwrap();
        assert_eq!(hs.count, 1);
        assert_eq!(hs.buckets.len(), 1);
        assert_eq!(hs.buckets[0].0, (N_BUCKETS - 1) as u32);
    }

    #[test]
    fn disabled_windows_yield_an_empty_windowed_view() {
        let r = registry();
        r.counter("c").add(5);
        r.histogram("h").record(7);
        let s = r.snapshot();
        assert_eq!(s.windowed, WindowedMetrics::default());
        assert_eq!(s.windowed.rate_per_sec("c"), None);
    }

    #[test]
    fn windowed_view_tracks_recent_activity_and_expires() {
        let spec = WindowSpec {
            width: Duration::from_millis(2),
            count: 3,
        };
        let r = Registry::new(Instant::now(), spec);
        let c = r.counter("gptune.test.reqs");
        let h = r.histogram("gptune.test.lat");
        c.add(4);
        h.record(100);
        let s = r.snapshot();
        assert_eq!(s.windowed.counter("gptune.test.reqs"), Some(4));
        assert_eq!(s.windowed.histogram("gptune.test.lat").unwrap().count, 1);
        assert!(s.windowed.horizon_ns > 0);
        assert!(s.windowed.rate_per_sec("gptune.test.reqs").unwrap() > 0.0);
        // Past the 6ms horizon the windowed view empties while the
        // lifetime totals persist.
        std::thread::sleep(Duration::from_millis(10));
        let s = r.snapshot();
        assert_eq!(s.counter("gptune.test.reqs"), Some(4));
        assert_eq!(s.histogram("gptune.test.lat").unwrap().count, 1);
        assert_eq!(s.windowed.counter("gptune.test.reqs"), Some(0));
        assert_eq!(s.windowed.histogram("gptune.test.lat").unwrap().count, 0);
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        let r = std::sync::Arc::new(registry());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let r = std::sync::Arc::clone(&r);
            handles.push(std::thread::spawn(move || {
                let c = r.counter("n");
                let g = r.gauge("sum");
                let h = r.histogram("lat");
                for i in 0..1000u64 {
                    c.inc();
                    g.add(0.5);
                    h.record(i);
                }
            }));
        }
        for t in handles {
            t.join().unwrap();
        }
        let s = r.snapshot();
        assert_eq!(s.counter("n"), Some(8000));
        assert!((s.gauge("sum").unwrap() - 4000.0).abs() < 1e-9);
        assert_eq!(s.histogram("lat").unwrap().count, 8000);
    }
}
