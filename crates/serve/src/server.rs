//! The multi-tenant suggest/report server.
//!
//! A bounded pool of acceptor threads (mirroring `gptune-runtime`'s fixed
//! worker groups) shares one `TcpListener`; each thread accepts a
//! connection and serves it inline, so at most `workers` connections are
//! live at once and the rest queue in the kernel backlog. Every
//! tenant/problem pair maps to one [`TunerSession`] in a shared session
//! table; connections are stateless beyond the frames they carry, so a
//! client can disconnect and re-attach to its session at will.
//!
//! # Lock discipline (GX302)
//!
//! The session table mutex guards *only* table lookups: handlers lock the
//! table, clone the session's `Arc`, and drop the guard before doing any
//! work — never blocking I/O or a surrogate refit while the table is
//! locked. Per-session mutexes serialize work within one session while
//! leaving other tenants untouched.

use crate::protocol::{err_response, ok_response, read_json, write_json, Request, SessionOptions};
use crate::spec::{config_to_json, ProblemSpec};
use gptune_core::{MlaOptions, ReportError, TunerSession};
use gptune_db::json::Json;
use std::collections::BTreeMap;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Acceptor-pool size — the concurrent-connection bound.
    pub workers: usize,
    /// Maximum live sessions across all tenants.
    pub max_sessions: usize,
    /// Initial-design size per task when the client doesn't pick one.
    pub default_n_initial: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: 8,
            max_sessions: 4096,
            default_n_initial: 4,
        }
    }
}

/// Maps the client-visible [`SessionOptions`] onto serving-appropriate
/// tuner options: single-start LCM fits and a small acquisition search,
/// so a suggest call stays interactive even as histories grow.
pub fn serving_mla_options(opts: &SessionOptions, defaults: &ServeOptions) -> MlaOptions {
    let mut mla = MlaOptions::default().with_seed(opts.seed);
    mla.n_initial = Some(opts.n_initial.unwrap_or(defaults.default_n_initial).max(1));
    mla.lcm.n_starts = 1;
    mla.pso.particles = 12;
    mla.pso.iters = 15;
    mla.eval_workers = 1;
    mla.model_workers = 1;
    mla.search_workers = 1;
    mla
}

struct SessionEntry {
    tenant: String,
    session: TunerSession,
}

struct ServerState {
    sessions: Mutex<BTreeMap<String, Arc<Mutex<SessionEntry>>>>,
    conns: Mutex<Vec<TcpStream>>,
    stop: AtomicBool,
    opts: ServeOptions,
}

impl ServerState {
    fn session_gauge(&self) {
        let n = self.sessions.lock().unwrap().len();
        gptune_trace::global()
            .gauge("gptune.serve.sessions")
            .set(n as f64);
    }
}

/// A running server: its bound address plus the handles needed to stop it.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves `:0` ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of live sessions.
    pub fn n_sessions(&self) -> usize {
        self.state.sessions.lock().unwrap().len()
    }

    /// Stops accepting, severs live connections, and joins the pool.
    /// Sessions are dropped with the server — durability is the *client's*
    /// job (its write-ahead journal replays on reconnect), which is what
    /// the kill-mid-burst test exercises.
    pub fn shutdown(self) {
        self.state.stop.store(true, Ordering::SeqCst);
        // Sever in-flight connections mid-frame…
        for c in self.state.conns.lock().unwrap().iter() {
            let _ = c.shutdown(Shutdown::Both);
        }
        // …and poke every acceptor blocked in accept().
        for _ in 0..self.threads.len() {
            let _ = TcpStream::connect(self.addr);
        }
        for t in self.threads {
            let _ = t.join();
        }
    }
}

/// Binds `addr` and starts the acceptor pool. `addr` may use port 0 to
/// let the OS choose; read the result back via
/// [`ServerHandle::local_addr`].
pub fn serve(addr: impl ToSocketAddrs, opts: ServeOptions) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let state = Arc::new(ServerState {
        sessions: Mutex::new(BTreeMap::new()),
        conns: Mutex::new(Vec::new()),
        stop: AtomicBool::new(false),
        opts: opts.clone(),
    });
    let mut threads = Vec::with_capacity(opts.workers.max(1));
    for worker in 0..opts.workers.max(1) {
        let listener = listener.try_clone()?;
        let state = Arc::clone(&state);
        threads.push(
            std::thread::Builder::new()
                .name(format!("gptune-serve-{worker}"))
                .spawn(move || acceptor_loop(&listener, &state))
                .expect("spawn acceptor"),
        );
    }
    Ok(ServerHandle {
        addr,
        state,
        threads,
    })
}

fn acceptor_loop(listener: &TcpListener, state: &Arc<ServerState>) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => {
                if state.stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if state.stop.load(Ordering::SeqCst) {
            return;
        }
        if let Ok(clone) = stream.try_clone() {
            state.conns.lock().unwrap().push(clone);
        }
        let _ = handle_conn(stream, state);
        if state.stop.load(Ordering::SeqCst) {
            return;
        }
    }
}

/// Serves one connection until clean EOF or a transport error.
fn handle_conn(mut stream: TcpStream, state: &Arc<ServerState>) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    loop {
        let Some(frame) = read_json(&mut stream)? else {
            return Ok(());
        };
        if state.stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        let response = handle_frame(&frame, state);
        write_json(&mut stream, &response)?;
    }
}

fn handle_frame(frame: &Json, state: &Arc<ServerState>) -> Json {
    let tracer = gptune_trace::global();
    let start = Instant::now();
    let (op, response) = match Request::from_json(frame) {
        Ok(req) => {
            let op = req.op();
            (op, dispatch(req, state))
        }
        Err(e) => ("parse_error", err_response(e)),
    };
    let micros = start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
    tracer
        .histogram(&format!("gptune.serve.latency_us.{op}"))
        .record(micros);
    tracer.counter("gptune.serve.requests").add(1);
    if !crate::protocol::is_ok(&response) {
        tracer.counter("gptune.serve.errors").add(1);
    }
    let mut span = tracer.span("gptune.serve.request");
    span.add("op", op);
    span.add("us", micros as i64);
    drop(span);
    response
}

/// Looks up a session by key: lock the table, clone the `Arc`, drop the
/// guard. All real work happens outside the table lock.
fn lookup(state: &ServerState, key: &str) -> Result<Arc<Mutex<SessionEntry>>, Json> {
    let table = state.sessions.lock().unwrap();
    let found = table.get(key).cloned();
    drop(table);
    found.ok_or_else(|| err_response(format!("no such session {key:?}")))
}

fn dispatch(req: Request, state: &Arc<ServerState>) -> Json {
    let tracer = gptune_trace::global();
    match req {
        Request::Ping => ok_response(vec![("pong".into(), Json::Bool(true))]),

        Request::OpenSession { tenant, spec, opts } => {
            if tenant.is_empty() || tenant.contains('/') {
                return err_response("tenant must be non-empty and slash-free");
            }
            tracer
                .counter(&format!("gptune.serve.tenant.{tenant}.requests"))
                .add(1);
            let key = format!("{tenant}/{}", spec.name);
            // Re-attach to an existing session first — replayed
            // open_session frames after a reconnect are idempotent.
            {
                let table = state.sessions.lock().unwrap();
                let existing = table.get(&key).cloned();
                drop(table);
                if let Some(entry) = existing {
                    let guard = entry.lock().unwrap();
                    if guard.tenant != tenant {
                        return err_response("session key collision across tenants");
                    }
                    if ProblemSpec::of(guard.session.problem()) != spec {
                        return err_response(format!(
                            "session {key:?} already open with a different spec"
                        ));
                    }
                    return open_ok(&key, guard.session.n_reports(), true);
                }
            }
            // Build the session with no locks held (initial-design
            // sampling is compute, but still not table-lock work).
            let problem = match spec.to_problem() {
                Ok(p) => p,
                Err(e) => return err_response(e),
            };
            let session = TunerSession::new(problem, serving_mla_options(&opts, &state.opts));
            let entry = Arc::new(Mutex::new(SessionEntry {
                tenant: tenant.clone(),
                session,
            }));
            let mut table = state.sessions.lock().unwrap();
            if table.contains_key(&key) {
                // Lost a race to a concurrent open — adopt the winner.
                let existing = table.get(&key).cloned().unwrap();
                drop(table);
                let guard = existing.lock().unwrap();
                return open_ok(&key, guard.session.n_reports(), true);
            }
            if table.len() >= state.opts.max_sessions {
                return err_response("session table full");
            }
            table.insert(key.clone(), entry);
            drop(table);
            state.session_gauge();
            open_ok(&key, 0, false)
        }

        Request::Suggest { session, task } => {
            let entry = match lookup(state, &session) {
                Ok(e) => e,
                Err(resp) => return resp,
            };
            let mut guard = entry.lock().unwrap();
            match guard.session.suggest(task) {
                Some(config) => ok_response(vec![("config".into(), config_to_json(&config))]),
                None => err_response(format!("task {task} out of range")),
            }
        }

        Request::Report {
            session,
            task,
            config,
            outputs,
        } => {
            let entry = match lookup(state, &session) {
                Ok(e) => e,
                Err(resp) => return resp,
            };
            let mut guard = entry.lock().unwrap();
            match guard.session.report(task, config, outputs) {
                Ok(()) => ok_response(vec![(
                    "n".into(),
                    Json::from_u64(guard.session.n_reports() as u64),
                )]),
                // Duplicates are a *success* for the protocol: the client's
                // write-ahead journal replays whole bursts after a
                // disconnect, and replayed reports must be absorbed
                // silently for at-least-once delivery to look exactly-once.
                Err(ReportError::Duplicate) => ok_response(vec![
                    ("n".into(), Json::from_u64(guard.session.n_reports() as u64)),
                    ("duplicate".into(), Json::Bool(true)),
                ]),
                Err(e) => err_response(format!("report rejected: {e}")),
            }
        }

        Request::History { session } => {
            let entry = match lookup(state, &session) {
                Ok(e) => e,
                Err(resp) => return resp,
            };
            let guard = entry.lock().unwrap();
            let rows: Vec<Json> = guard
                .session
                .history()
                .map(|(t, c, o)| {
                    Json::Obj(vec![
                        ("task".into(), Json::from_u64(t as u64)),
                        ("config".into(), config_to_json(c)),
                        (
                            "outputs".into(),
                            Json::Arr(o.iter().map(|y| Json::from_f64(*y)).collect()),
                        ),
                    ])
                })
                .collect();
            ok_response(vec![
                ("n".into(), Json::from_u64(rows.len() as u64)),
                ("history".into(), Json::Arr(rows)),
            ])
        }

        Request::Close { session } => {
            let removed = {
                let mut table = state.sessions.lock().unwrap();
                table.remove(&session)
            };
            state.session_gauge();
            match removed {
                Some(_) => ok_response(vec![("closed".into(), Json::Bool(true))]),
                None => err_response(format!("no such session {session:?}")),
            }
        }
    }
}

fn open_ok(key: &str, n_reports: usize, reattached: bool) -> Json {
    ok_response(vec![
        ("session".into(), Json::Str(key.to_string())),
        ("n_reports".into(), Json::from_u64(n_reports as u64)),
        ("reattached".into(), Json::Bool(reattached)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{error_of, is_ok};
    use gptune_space::{Param, Value};

    fn spec(name: &str) -> ProblemSpec {
        ProblemSpec {
            name: name.into(),
            task_params: vec![Param::real("t", 0.0, 1.0)],
            tuning_params: vec![Param::real("x", 0.0, 1.0)],
            tasks: vec![vec![Value::Real(0.25)], vec![Value::Real(0.75)]],
            n_objectives: 1,
        }
    }

    fn roundtrip(stream: &mut TcpStream, req: &Request) -> Json {
        write_json(stream, &req.to_json()).unwrap();
        read_json(stream).unwrap().expect("response")
    }

    fn start() -> ServerHandle {
        serve(
            "127.0.0.1:0",
            ServeOptions {
                workers: 2,
                ..ServeOptions::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn ping_and_full_session_lifecycle() {
        let server = start();
        let mut c = TcpStream::connect(server.local_addr()).unwrap();

        assert!(is_ok(&roundtrip(&mut c, &Request::Ping)));

        let open = roundtrip(
            &mut c,
            &Request::OpenSession {
                tenant: "acme".into(),
                spec: spec("toy"),
                opts: SessionOptions {
                    seed: 7,
                    n_initial: Some(2),
                },
            },
        );
        assert!(is_ok(&open), "{open}");
        let key = open.get("session").unwrap().as_str().unwrap().to_string();
        assert_eq!(key, "acme/toy");
        assert_eq!(server.n_sessions(), 1);

        // Suggest → report → history for both tasks.
        for task in 0..2usize {
            let s = roundtrip(
                &mut c,
                &Request::Suggest {
                    session: key.clone(),
                    task,
                },
            );
            assert!(is_ok(&s), "{s}");
            let config = crate::spec::config_from_json(s.get("config").unwrap()).unwrap();
            let r = roundtrip(
                &mut c,
                &Request::Report {
                    session: key.clone(),
                    task,
                    config,
                    outputs: vec![1.0 + task as f64],
                },
            );
            assert!(is_ok(&r), "{r}");
        }
        let h = roundtrip(
            &mut c,
            &Request::History {
                session: key.clone(),
            },
        );
        assert!(is_ok(&h));
        assert_eq!(h.get("n").unwrap().as_u64(), Some(2));
        assert_eq!(h.get("history").unwrap().as_arr().unwrap().len(), 2);

        let cl = roundtrip(
            &mut c,
            &Request::Close {
                session: key.clone(),
            },
        );
        assert!(is_ok(&cl));
        assert_eq!(server.n_sessions(), 0);
        // Requests against a closed session fail cleanly.
        let s = roundtrip(
            &mut c,
            &Request::Suggest {
                session: key,
                task: 0,
            },
        );
        assert!(!is_ok(&s));
        assert!(error_of(&s).contains("no such session"));

        server.shutdown();
    }

    #[test]
    fn duplicate_reports_are_absorbed() {
        let server = start();
        let mut c = TcpStream::connect(server.local_addr()).unwrap();
        let open = roundtrip(
            &mut c,
            &Request::OpenSession {
                tenant: "t".into(),
                spec: spec("p"),
                opts: SessionOptions::default(),
            },
        );
        let key = open.get("session").unwrap().as_str().unwrap().to_string();
        let report = Request::Report {
            session: key.clone(),
            task: 0,
            config: vec![Value::Real(0.5)],
            outputs: vec![3.0],
        };
        let first = roundtrip(&mut c, &report);
        assert!(is_ok(&first));
        assert!(first.get("duplicate").is_none());
        let second = roundtrip(&mut c, &report);
        assert!(is_ok(&second), "replayed report must succeed: {second}");
        assert_eq!(second.get("duplicate").unwrap().as_bool(), Some(true));
        assert_eq!(
            second.get("n").unwrap().as_u64(),
            Some(1),
            "not double-counted"
        );
        // A genuinely bad report still fails.
        let bad = roundtrip(
            &mut c,
            &Request::Report {
                session: key,
                task: 99,
                config: vec![Value::Real(0.5)],
                outputs: vec![3.0],
            },
        );
        assert!(!is_ok(&bad));
        server.shutdown();
    }

    #[test]
    fn reopen_reattaches_and_mismatched_spec_is_rejected() {
        let server = start();
        let mut c = TcpStream::connect(server.local_addr()).unwrap();
        let open = |c: &mut TcpStream, sp: ProblemSpec| {
            roundtrip(
                c,
                &Request::OpenSession {
                    tenant: "t".into(),
                    spec: sp,
                    opts: SessionOptions::default(),
                },
            )
        };
        let first = open(&mut c, spec("p"));
        assert!(is_ok(&first));
        assert_eq!(first.get("reattached").unwrap().as_bool(), Some(false));
        let key = first.get("session").unwrap().as_str().unwrap().to_string();
        roundtrip(
            &mut c,
            &Request::Report {
                session: key,
                task: 0,
                config: vec![Value::Real(0.5)],
                outputs: vec![1.0],
            },
        );
        // Same spec from a new connection: re-attach, history intact.
        let mut c2 = TcpStream::connect(server.local_addr()).unwrap();
        let again = open(&mut c2, spec("p"));
        assert!(is_ok(&again));
        assert_eq!(again.get("reattached").unwrap().as_bool(), Some(true));
        assert_eq!(again.get("n_reports").unwrap().as_u64(), Some(1));
        // Same name, different structure: reject.
        let mut other = spec("p");
        other.n_objectives = 2;
        let clash = open(&mut c2, other);
        assert!(!is_ok(&clash));
        assert!(error_of(&clash).contains("different spec"));
        server.shutdown();
    }

    #[test]
    fn tenants_are_isolated() {
        let server = start();
        let mut a = TcpStream::connect(server.local_addr()).unwrap();
        let mut b = TcpStream::connect(server.local_addr()).unwrap();
        for (c, tenant) in [(&mut a, "alpha"), (&mut b, "beta")] {
            let open = roundtrip(
                c,
                &Request::OpenSession {
                    tenant: tenant.into(),
                    spec: spec("shared"),
                    opts: SessionOptions::default(),
                },
            );
            assert!(is_ok(&open));
        }
        assert_eq!(server.n_sessions(), 2);
        roundtrip(
            &mut a,
            &Request::Report {
                session: "alpha/shared".into(),
                task: 0,
                config: vec![Value::Real(0.1)],
                outputs: vec![1.0],
            },
        );
        let h = roundtrip(
            &mut b,
            &Request::History {
                session: "beta/shared".into(),
            },
        );
        assert_eq!(
            h.get("n").unwrap().as_u64(),
            Some(0),
            "no cross-tenant leak"
        );
        server.shutdown();
    }

    #[test]
    fn malformed_frames_get_error_responses() {
        let server = start();
        let mut c = TcpStream::connect(server.local_addr()).unwrap();
        crate::protocol::write_frame(&mut c, b"{\"op\":\"warp\"}").unwrap();
        let resp = read_json(&mut c).unwrap().unwrap();
        assert!(!is_ok(&resp));
        // The connection survives a bad request.
        assert!(is_ok(&roundtrip(&mut c, &Request::Ping)));
        server.shutdown();
    }

    #[test]
    fn shutdown_severs_live_connections() {
        let server = start();
        let mut c = TcpStream::connect(server.local_addr()).unwrap();
        assert!(is_ok(&roundtrip(&mut c, &Request::Ping)));
        server.shutdown();
        // The next exchange on the severed stream fails or hits EOF.
        let dead = write_json(&mut c, &Request::Ping.to_json())
            .and_then(|()| read_json(&mut c))
            .map(|r| r.is_none());
        assert!(matches!(dead, Ok(true) | Err(_)));
    }
}
