//! gptune-trace: structured span tracing, metrics, and Chrome-trace export.
//!
//! The paper reports tuner time as a three-bucket breakdown (objective /
//! modeling / search); diagnosing *why* a bucket is slow needs per-span,
//! per-worker timelines. This crate provides the instrumentation substrate
//! for the whole workspace:
//!
//! * **Spans** — RAII guards carrying a static name plus key/value
//!   [`Field`]s; dropping (or [`Span::finish`]ing) one records a complete
//!   event with nanosecond start/duration into a lock-sharded in-memory
//!   ring buffer.
//! * **Instant events** — zero-duration markers (fault events: retries,
//!   timeouts, worker replacement) rendered as arrows on the timeline.
//! * **Metrics** — a registry of monotonic counters, f64 gauges, and
//!   log2-bucketed histograms, all updated with relaxed atomics.
//! * **Sinks** — [`Tracer::drain`] yields the ring contents as a
//!   [`TraceData`]; [`jsonl`] serializes it one JSON object per line and
//!   [`chrome`] exports the Chrome trace-event format that
//!   `chrome://tracing` and [Perfetto](https://ui.perfetto.dev) open
//!   directly, with one track per worker thread plus dedicated tracks for
//!   the master's modeling/search phases.
//!
//! Tracing is **disabled by default and zero-cost when off**:
//! [`Tracer::disabled`] carries no allocation, takes no clock readings,
//! and every recording call is a branch on `Option::None`. Production
//! entry points read the process-global tracer ([`global`]) which starts
//! disabled; tests and tools [`install`] an enabled one.
//!
//! Metric names follow `gptune.<crate>.<name>` (see DESIGN.md §9 for the
//! full taxonomy).

pub mod chrome;
pub mod expo;
pub mod jsonl;
pub mod metrics;
pub mod tracer;
pub mod window;

pub use metrics::{
    CounterHandle, GaugeHandle, HistogramHandle, HistogramSnapshot, MetricsSnapshot,
    WindowedMetrics,
};
pub use tracer::{Event, EventKind, Field, InstantEvent, Name, Span, TraceData, Tracer};
pub use window::WindowSpec;

use parking_lot::RwLock;

static GLOBAL: RwLock<Tracer> = RwLock::new(Tracer::disabled());

/// Installs `tracer` as the process-global tracer and returns the previous
/// one. The global starts as [`Tracer::disabled`]; runtime/core/gp/db
/// instrumentation reads it via [`global`], so installing an enabled
/// tracer turns on collection for every subsystem at once.
pub fn install(tracer: Tracer) -> Tracer {
    std::mem::replace(&mut *GLOBAL.write(), tracer)
}

/// A cheap clone of the process-global tracer (an `Option<Arc>`).
///
/// Call once per batch/operation and reuse the handle; the clone holds the
/// ring buffer alive even if another tracer is installed afterwards.
pub fn global() -> Tracer {
    GLOBAL.read().clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_starts_disabled_and_install_swaps() {
        // Serialize against other tests that touch the global.
        let prev = install(Tracer::ring(16));
        assert!(global().enabled());
        let mine = install(prev);
        assert!(mine.enabled());
    }
}
