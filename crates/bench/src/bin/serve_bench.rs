//! Load generator for the gptune-serve suggest/report service.
//!
//! Drives ≥ 1000 concurrent tuning sessions against one in-process server
//! and records the result in `BENCH_serve.json`:
//!
//! * request latencies (p50/p99 per op) read from the `gptune-trace`
//!   histograms the server populates (`gptune.serve.latency_us.<op>`),
//!   not from client-side stopwatches;
//! * sustained throughput over the whole burst;
//! * a kill-the-server-mid-burst section: a write-ahead-journaled client
//!   keeps reporting while the server dies, a replacement comes up, and
//!   the replayed history must contain every journaled report
//!   (`lost_reports` must print 0);
//! * an archive drill: the server journals every acknowledged report into
//!   a session archive, dies mid-burst, and the replacement recovers the
//!   session from the archive alone — no client WAL, no replay — with a
//!   bit-identical sorted history versus an uninterrupted run;
//! * an eviction drill: ≥ 1024 logical sessions share a resident table
//!   capped far below the fleet size; the cap must hold throughout and
//!   every evicted session must come back from the archive intact.
//!
//! Usage: `serve_bench [output.json] [--smoke]` — `--smoke` shrinks the
//! fleet for the tier-1 gate while exercising every phase.

use gptune::serve::{serve, BackoffPolicy, ProblemSpec, ServeClient, ServeOptions, SessionOptions};
use gptune::space::{Param, Value};
use gptune::trace::{self, Tracer};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;

fn spec_for(problem_idx: usize) -> ProblemSpec {
    ProblemSpec {
        name: format!("svc-{problem_idx}"),
        task_params: vec![Param::real("t", 0.0, 1.0)],
        tuning_params: vec![Param::real("x", 0.0, 1.0), Param::real("y", 0.0, 1.0)],
        tasks: vec![vec![Value::Real(0.25)], vec![Value::Real(0.75)]],
        n_objectives: 1,
    }
}

struct BurstStats {
    sessions: usize,
    peak_sessions: usize,
    requests: u64,
    errors: u64,
    wall_s: f64,
}

/// Opens `sessions` sessions across `threads` client connections, holds a
/// barrier while *all* of them are live, then runs a suggest/report loop
/// on each. Returns the burst statistics; latency lives in the tracer.
fn run_burst(
    sessions: usize,
    threads: usize,
    reports_per_session: usize,
    server_addr: std::net::SocketAddr,
    peak_probe: impl Fn() -> usize + Send + Sync,
) -> BurstStats {
    let all_open = Arc::new(Barrier::new(threads + 1));
    let failures = Arc::new(AtomicUsize::new(0));
    let start = Instant::now();
    let peak = std::thread::scope(|scope| {
        for worker in 0..threads {
            let all_open = Arc::clone(&all_open);
            let failures = Arc::clone(&failures);
            scope.spawn(move || {
                let mut client = match ServeClient::connect(server_addr) {
                    Ok(c) => c,
                    Err(_) => {
                        failures.fetch_add(1, Ordering::Relaxed);
                        all_open.wait();
                        return;
                    }
                };
                // Each thread owns a disjoint slice of the session ids;
                // one tenant per session keeps the server's table honest
                // about multi-tenancy.
                let mine: Vec<usize> = (0..sessions).filter(|s| s % threads == worker).collect();
                let mut keys = Vec::with_capacity(mine.len());
                for &s in &mine {
                    let tenant = format!("tenant-{s}");
                    let opts = SessionOptions {
                        seed: s as u64,
                        n_initial: Some(2),
                    };
                    match client.open_session(&tenant, &spec_for(s), &opts) {
                        Ok(key) => keys.push(key),
                        Err(_) => {
                            failures.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                // Every session in the fleet is open here.
                all_open.wait();
                for (i, _key) in keys.iter().enumerate() {
                    let s = mine[i];
                    let tenant = format!("tenant-{s}");
                    let opts = SessionOptions {
                        seed: s as u64,
                        n_initial: Some(2),
                    };
                    // Re-open is a cheap re-attach; it scopes the client
                    // to this session for the suggest/report loop.
                    if client.open_session(&tenant, &spec_for(s), &opts).is_err() {
                        failures.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    for r in 0..reports_per_session {
                        let task = r % 2;
                        match client.suggest(task) {
                            Ok(cfg) => {
                                let y = 1.0 + (s * 31 + r) as f64 / 97.0;
                                if client.report(task, &cfg, &[y]).is_err() {
                                    failures.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            Err(_) => {
                                failures.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                }
            });
        }
        // Main thread samples the session table while everything is open.
        all_open.wait();
        peak_probe()
    });
    let wall_s = start.elapsed().as_secs_f64();

    let m = trace::global().metrics();
    BurstStats {
        sessions,
        peak_sessions: peak,
        requests: m.counter("gptune.serve.requests").unwrap_or(0),
        errors: m.counter("gptune.serve.errors").unwrap_or(0)
            + failures.load(Ordering::Relaxed) as u64,
        wall_s,
    }
}

struct KillStats {
    journaled: usize,
    accepted_before_kill: usize,
    replayed: usize,
    recovered: usize,
    lost: i64,
}

/// The durability drill: journal-backed client reports in a tight burst,
/// the server is killed partway through, a replacement comes up, and the
/// WAL replay must restore every journaled report.
fn run_kill_drill(reports: usize, tmp: &std::path::Path) -> KillStats {
    let wal = tmp.join("serve_bench_wal.jsonl");
    let _ = std::fs::remove_file(&wal);
    let spec = spec_for(0);
    let opts = SessionOptions::default();

    let server = serve("127.0.0.1:0", ServeOptions::default()).expect("bind");
    // Half the burst lands on a dead server by design: a tight backoff
    // keeps the expected failures from dominating the drill's wall time.
    let impatient = BackoffPolicy {
        max_retries: 1,
        base_ms: 1,
        cap_ms: 2,
        ..BackoffPolicy::default()
    };
    let mut client = ServeClient::connect(server.local_addr())
        .expect("connect")
        .with_wal(&wal)
        .with_backoff(impatient);
    client.open_session("dur", &spec, &opts).expect("open");

    // Burst of journaled reports; the server dies halfway.
    let mut accepted = 0usize;
    let mut journaled = 0usize;
    let mut server = Some(server);
    for r in 0..reports {
        if r == reports / 2 {
            server.take().unwrap().shutdown();
        }
        let cfg = vec![
            Value::Real((r as f64 + 0.5) / reports as f64),
            Value::Real(0.5),
        ];
        // The WAL append inside report() lands even when the send fails.
        journaled += 1;
        if client.report(r % 2, &cfg, &[r as f64]).is_ok() {
            accepted += 1;
        }
    }

    // Replacement server, fresh client, same journal.
    let server = serve("127.0.0.1:0", ServeOptions::default()).expect("rebind");
    let mut client2 = ServeClient::connect(server.local_addr())
        .expect("reconnect")
        .with_wal(&wal);
    client2.open_session("dur", &spec, &opts).expect("reopen");
    let (replayed, _dups) = client2.replay_wal().expect("replay");
    let recovered = client2.history().expect("history").len();
    server.shutdown();
    let _ = std::fs::remove_file(&wal);

    KillStats {
        journaled,
        accepted_before_kill: accepted,
        replayed,
        recovered,
        lost: journaled as i64 - recovered as i64,
    }
}

/// Client-chosen deterministic config for report `i`: faulted and clean
/// runs report the exact same rows, so histories compare bit for bit.
fn config_at(i: usize) -> Vec<Value> {
    vec![
        Value::Real(((i * 37 + 11) % 101) as f64 / 101.0),
        Value::Real(((i * 53 + 29) % 97) as f64 / 97.0),
    ]
}

fn sort_key(row: &(usize, Vec<Value>, Vec<f64>)) -> String {
    format!("{}|{:?}|{:?}", row.0, row.1, row.2)
}

struct ArchiveStats {
    accepted_before_kill: usize,
    recovered_at_restart: usize,
    final_rows: usize,
    lost: i64,
    bit_identical: bool,
}

/// The server-side durability drill: every acknowledged report is
/// journaled into the session archive before the ack, so a kill-restart
/// recovers the session from disk alone — the replacement client carries
/// no WAL and replays nothing.
fn run_archive_drill(reports: usize, kill_at: usize, tmp: &std::path::Path) -> ArchiveStats {
    let root = tmp.join(format!("serve_bench_archive_{}", std::process::id()));
    let clean_root = tmp.join(format!("serve_bench_archive_clean_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let _ = std::fs::remove_dir_all(&clean_root);
    let spec = spec_for(0);
    let sess = SessionOptions::default();
    let opts = |archive: &std::path::Path| ServeOptions {
        workers: 2,
        archive: Some(archive.to_path_buf()),
        ..ServeOptions::default()
    };

    let server = serve("127.0.0.1:0", opts(&root)).expect("bind archive drill");
    let mut client = ServeClient::connect(server.local_addr()).expect("connect");
    client.open_session("archive", &spec, &sess).expect("open");
    let mut accepted = 0usize;
    for r in 0..kill_at {
        if client.report(r % 2, &config_at(r), &[r as f64]).is_ok() {
            accepted += 1;
        }
    }
    // Kill — not drain. Only the per-report journal and the open-time
    // meta stamp exist on disk.
    server.shutdown();

    // Replacement on a fresh port, same archive, brand-new client.
    let server = serve("127.0.0.1:0", opts(&root)).expect("rebind archive drill");
    let mut client = ServeClient::connect(server.local_addr()).expect("reconnect");
    client
        .open_session("archive", &spec, &sess)
        .expect("reopen");
    let recovered = client.history().expect("history").len();
    for r in kill_at..reports {
        let _ = client.report(r % 2, &config_at(r), &[r as f64]);
    }
    let mut got: Vec<String> = client
        .history()
        .expect("final history")
        .iter()
        .map(sort_key)
        .collect();
    got.sort();
    server.shutdown();

    // Ground truth: the same burst against an uninterrupted server.
    let clean = serve("127.0.0.1:0", opts(&clean_root)).expect("bind clean");
    let mut c2 = ServeClient::connect(clean.local_addr()).expect("connect clean");
    c2.open_session("archive", &spec, &sess)
        .expect("open clean");
    for r in 0..reports {
        let _ = c2.report(r % 2, &config_at(r), &[r as f64]);
    }
    let mut expected: Vec<String> = c2
        .history()
        .expect("clean history")
        .iter()
        .map(sort_key)
        .collect();
    expected.sort();
    clean.shutdown();
    let _ = std::fs::remove_dir_all(&root);
    let _ = std::fs::remove_dir_all(&clean_root);

    ArchiveStats {
        accepted_before_kill: accepted,
        recovered_at_restart: recovered,
        final_rows: got.len(),
        lost: accepted as i64 - recovered as i64,
        bit_identical: got == expected,
    }
}

struct EvictStats {
    logical: usize,
    cap: usize,
    peak_resident: usize,
    missing_rows: usize,
}

/// The memory-pressure drill: far more logical sessions than the resident
/// cap allows. The table must stay under the cap while sessions are
/// opened and reported into, and every evicted session must restore from
/// the archive with its history intact when revisited.
fn run_eviction_drill(logical: usize, cap: usize, tmp: &std::path::Path) -> EvictStats {
    let root = tmp.join(format!("serve_bench_evict_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let server = serve(
        "127.0.0.1:0",
        ServeOptions {
            workers: 4,
            archive: Some(root.clone()),
            max_resident_sessions: cap,
            ..ServeOptions::default()
        },
    )
    .expect("bind eviction drill");
    let mut client = ServeClient::connect(server.local_addr()).expect("connect");
    let sess = SessionOptions::default();
    let mut peak = 0usize;
    let mut missing = 0usize;
    for i in 0..logical {
        if client.open_session("fleet", &spec_for(i), &sess).is_err() {
            missing += 1;
            continue;
        }
        if client.report(0, &config_at(i), &[i as f64]).is_err() {
            missing += 1;
        }
        peak = peak.max(server.n_sessions());
    }
    // Revisit every session: the evicted ones must restore transparently.
    for i in 0..logical {
        let ok = client
            .open_session("fleet", &spec_for(i), &sess)
            .and_then(|_| client.history())
            .map(|h| {
                h.len() == 1 && sort_key(&h[0]) == sort_key(&(0, config_at(i), vec![i as f64]))
            })
            .unwrap_or(false);
        if !ok {
            missing += 1;
        }
        peak = peak.max(server.n_sessions());
    }
    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
    EvictStats {
        logical,
        cap,
        peak_resident: peak,
        missing_rows: missing,
    }
}

fn quantiles(op: &str) -> (u64, u64, u64) {
    let m = trace::global().metrics();
    match m.histogram(&format!("gptune.serve.latency_us.{op}")) {
        Some(h) => (h.count, h.p50(), h.p99()),
        None => (0, 0, 0),
    }
}

fn main() {
    let mut out_path = "BENCH_serve.json".to_string();
    let mut smoke = false;
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            out_path = arg;
        }
    }
    // The acceptance bar is ≥ 1000 *concurrent* sessions (and ≥ 1024
    // *logical* sessions through the eviction drill); smoke mode keeps
    // the same shape at gate-friendly scale.
    let (sessions, threads, reports_per_session, kill_reports) = if smoke {
        (32, 8, 2, 10)
    } else {
        (1024, 32, 3, 200)
    };
    let (archive_reports, archive_kill_at, evict_logical, evict_cap) = if smoke {
        (12, 7, 64, 8)
    } else {
        (200, 101, 1024, 64)
    };

    trace::install(Tracer::ring(1 << 12));

    let server = serve(
        "127.0.0.1:0",
        ServeOptions {
            workers: threads,
            max_sessions: sessions + 8,
            ..ServeOptions::default()
        },
    )
    .expect("bind serve_bench server");
    let addr = server.local_addr();

    eprintln!("serve_bench: {sessions} sessions over {threads} client threads at {addr}");
    let burst = run_burst(sessions, threads, reports_per_session, addr, || {
        server.n_sessions()
    });
    let (sug_n, sug_p50, sug_p99) = quantiles("suggest");
    let (rep_n, rep_p50, rep_p99) = quantiles("report");
    let (open_n, open_p50, open_p99) = quantiles("open_session");
    // Drain rather than kill: exercises the graceful path (flush + typed
    // `draining` errors) and the `gptune.serve.drains` counter.
    server.drain();

    let kill = run_kill_drill(kill_reports, &std::env::temp_dir());
    let archive = run_archive_drill(archive_reports, archive_kill_at, &std::env::temp_dir());
    let evict = run_eviction_drill(evict_logical, evict_cap, &std::env::temp_dir());

    let m = trace::global().metrics();
    let counter = |name: &str| m.counter(name).unwrap_or(0);
    let rps = burst.requests as f64 / burst.wall_s.max(1e-9);
    let json = format!(
        "{{\n  \"config\": {{\"sessions\": {}, \"client_threads\": {}, \
         \"reports_per_session\": {}, \"smoke\": {}}},\n  \
         \"burst\": {{\"peak_concurrent_sessions\": {}, \"requests\": {}, \
         \"errors\": {}, \"wall_s\": {:.3}, \"requests_per_s\": {:.0}}},\n  \
         \"latency_us\": {{\n    \
         \"open_session\": {{\"count\": {}, \"p50\": {}, \"p99\": {}}},\n    \
         \"suggest\": {{\"count\": {}, \"p50\": {}, \"p99\": {}}},\n    \
         \"report\": {{\"count\": {}, \"p50\": {}, \"p99\": {}}}\n  }},\n  \
         \"kill_drill\": {{\"journaled\": {}, \"accepted_before_kill\": {}, \
         \"replayed\": {}, \"recovered\": {}, \"lost_reports\": {}}},\n  \
         \"archive_drill\": {{\"reports\": {}, \"accepted_before_kill\": {}, \
         \"recovered_at_restart\": {}, \"final_rows\": {}, \
         \"lost_reports\": {}, \"bit_identical\": {}}},\n  \
         \"eviction_drill\": {{\"logical_sessions\": {}, \"resident_cap\": {}, \
         \"peak_resident\": {}, \"missing_rows\": {}}},\n  \
         \"robustness_counters\": {{\"evictions\": {}, \"restores\": {}, \
         \"sheds\": {}, \"timeouts\": {}, \"drains\": {}, \
         \"archive_errors\": {}}}\n}}\n",
        burst.sessions,
        threads,
        reports_per_session,
        smoke,
        burst.peak_sessions,
        burst.requests,
        burst.errors,
        burst.wall_s,
        rps,
        open_n,
        open_p50,
        open_p99,
        sug_n,
        sug_p50,
        sug_p99,
        rep_n,
        rep_p50,
        rep_p99,
        kill.journaled,
        kill.accepted_before_kill,
        kill.replayed,
        kill.recovered,
        kill.lost,
        archive_reports,
        archive.accepted_before_kill,
        archive.recovered_at_restart,
        archive.final_rows,
        archive.lost,
        archive.bit_identical,
        evict.logical,
        evict.cap,
        evict.peak_resident,
        evict.missing_rows,
        counter("gptune.serve.evictions"),
        counter("gptune.serve.restores"),
        counter("gptune.serve.sheds"),
        counter("gptune.serve.timeouts"),
        counter("gptune.serve.drains"),
        counter("gptune.serve.archive_errors"),
    );
    std::fs::write(&out_path, &json).expect("write BENCH_serve.json");
    print!("{json}");

    let mut failed = Vec::new();
    if burst.peak_sessions < sessions {
        failed.push(format!(
            "peak concurrent sessions {} < fleet size {sessions}",
            burst.peak_sessions
        ));
    }
    if burst.errors > 0 {
        failed.push(format!("{} request errors during the burst", burst.errors));
    }
    if sug_n == 0 || rep_n == 0 || open_n == 0 {
        failed.push("latency histograms missing samples".to_string());
    }
    if kill.lost != 0 {
        failed.push(format!("{} reports lost across the kill", kill.lost));
    }
    if archive.lost != 0 {
        failed.push(format!(
            "{} acknowledged reports lost across the archive kill-restart",
            archive.lost
        ));
    }
    if !archive.bit_identical {
        failed.push("post-recovery history differs from the uninterrupted run".to_string());
    }
    if archive.final_rows != archive_reports {
        failed.push(format!(
            "archive drill ended with {} rows, expected {archive_reports}",
            archive.final_rows
        ));
    }
    if evict.peak_resident > evict.cap {
        failed.push(format!(
            "resident session table peaked at {} over the cap of {}",
            evict.peak_resident, evict.cap
        ));
    }
    if evict.missing_rows > 0 {
        failed.push(format!(
            "{} of {} logical sessions lost data under eviction pressure",
            evict.missing_rows, evict.logical
        ));
    }
    if failed.is_empty() {
        eprintln!(
            "serve_bench: OK ({} concurrent sessions, {} logical under a cap of {}, 0 lost reports)",
            burst.peak_sessions, evict.logical, evict.cap
        );
    } else {
        for f in &failed {
            eprintln!("serve_bench: FAIL: {f}");
        }
        std::process::exit(1);
    }
}
