//! Fill-reducing orderings.
//!
//! SuperLU_DIST's `COLPERM` choices map onto these algorithm families:
//! `NATURAL` (identity), bandwidth-reducing (reverse Cuthill–McKee, a
//! stand-in for the cheap orderings), and greedy minimum degree (the
//! MMD/COLAMD family). Nested dissection (METIS) is approximated by
//! minimum degree here — on the geometric graphs of interest their fill
//! quality is close, and both are far ahead of natural order.

use crate::pattern::SparsePattern;
use std::collections::VecDeque;

/// Identity permutation (SuperLU's `NATURAL`).
pub fn natural_order(n: usize) -> Vec<usize> {
    (0..n).collect()
}

/// Reverse Cuthill–McKee: BFS from a pseudo-peripheral vertex, visiting
/// neighbors by increasing degree, then reverse — a classical
/// bandwidth/profile reducer.
pub fn reverse_cuthill_mckee(pattern: &SparsePattern) -> Vec<usize> {
    let n = pattern.n();
    let mut order = Vec::with_capacity(n);
    let mut visited = vec![false; n];

    // Handle disconnected graphs: restart from the unvisited vertex of
    // minimum degree.
    while order.len() < n {
        let start = (0..n)
            .filter(|&v| !visited[v])
            .min_by_key(|&v| pattern.neighbors(v).len())
            .expect("unvisited vertex exists");
        let root = pseudo_peripheral(pattern, start, &visited);
        let mut queue = VecDeque::new();
        visited[root] = true;
        queue.push_back(root);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            let mut next: Vec<usize> = pattern
                .neighbors(v)
                .iter()
                .copied()
                .filter(|&u| !visited[u])
                .collect();
            next.sort_by_key(|&u| pattern.neighbors(u).len());
            for u in next {
                visited[u] = true;
                queue.push_back(u);
            }
        }
    }
    order.reverse();
    order
}

/// Finds an approximate pseudo-peripheral vertex by repeated BFS to the
/// farthest level.
fn pseudo_peripheral(pattern: &SparsePattern, start: usize, global_visited: &[bool]) -> usize {
    let n = pattern.n();
    let mut current = start;
    let mut last_ecc = 0usize;
    for _ in 0..4 {
        // BFS levels from `current`, restricted to the unvisited component.
        let mut level = vec![usize::MAX; n];
        level[current] = 0;
        let mut queue = VecDeque::new();
        queue.push_back(current);
        let mut far = current;
        while let Some(v) = queue.pop_front() {
            for &u in pattern.neighbors(v) {
                if !global_visited[u] && level[u] == usize::MAX {
                    level[u] = level[v] + 1;
                    if level[u] > level[far] {
                        far = u;
                    }
                    queue.push_back(u);
                }
            }
        }
        if level[far] <= last_ecc {
            break;
        }
        last_ecc = level[far];
        current = far;
    }
    current
}

/// Greedy minimum-degree ordering with explicit clique formation.
///
/// At each step the vertex of minimum current degree is eliminated and its
/// neighborhood turned into a clique (the structural effect of Gaussian
/// elimination). This is the textbook algorithm behind MMD/AMD; explicit
/// cliques make it `O(fill)` memory — fine for the fill-reducing regimes
/// it produces, which is exactly where it gets used.
pub fn minimum_degree(pattern: &SparsePattern) -> Vec<usize> {
    let n = pattern.n();
    let mut adj: Vec<std::collections::BTreeSet<usize>> = (0..n)
        .map(|i| pattern.neighbors(i).iter().copied().collect())
        .collect();
    let mut eliminated = vec![false; n];
    let mut order = Vec::with_capacity(n);

    // Degree bucket structure would be faster; a linear scan per step is
    // O(n²) bookkeeping, acceptable for the symbolic-calibration sizes.
    for _ in 0..n {
        let v = (0..n)
            .filter(|&v| !eliminated[v])
            .min_by_key(|&v| adj[v].len())
            .expect("vertex remains");
        order.push(v);
        eliminated[v] = true;
        let neigh: Vec<usize> = adj[v].iter().copied().collect();
        // Form the clique among v's remaining neighbors.
        for (a_idx, &a) in neigh.iter().enumerate() {
            adj[a].remove(&v);
            for &b in &neigh[a_idx + 1..] {
                if a != b {
                    adj[a].insert(b);
                    adj[b].insert(a);
                }
            }
        }
        adj[v].clear();
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_permutation(p: &[usize], n: usize) -> bool {
        let mut seen = vec![false; n];
        p.len() == n
            && p.iter().all(|&v| {
                if v < n && !seen[v] {
                    seen[v] = true;
                    true
                } else {
                    false
                }
            })
    }

    #[test]
    fn natural_is_identity() {
        assert_eq!(natural_order(4), vec![0, 1, 2, 3]);
    }

    #[test]
    fn rcm_is_a_permutation() {
        let p = SparsePattern::grid2d(7, 5);
        let ord = reverse_cuthill_mckee(&p);
        assert!(is_permutation(&ord, p.n()));
    }

    #[test]
    fn rcm_reduces_bandwidth_on_shuffled_path() {
        // A path graph labelled badly: RCM should recover a near-path
        // labelling with bandwidth 1 (vs large for the bad labelling).
        let n = 50;
        // Edges of a path over a "bit-reversal-ish" shuffle.
        let shuffle: Vec<usize> = (0..n).map(|i| (i * 23) % n).collect();
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (shuffle[i], shuffle[i + 1])).collect();
        let p = SparsePattern::from_edges(n, &edges);
        let bandwidth = |pat: &SparsePattern| {
            (0..pat.n())
                .flat_map(|i| pat.neighbors(i).iter().map(move |&j| i.abs_diff(j)))
                .max()
                .unwrap_or(0)
        };
        let before = bandwidth(&p);
        let after = bandwidth(&p.permute(&reverse_cuthill_mckee(&p)));
        assert!(after <= 2, "RCM bandwidth {after}");
        assert!(before > 5, "shuffle was not bad enough: {before}");
    }

    #[test]
    fn rcm_handles_disconnected_graphs() {
        let p = SparsePattern::from_edges(6, &[(0, 1), (3, 4)]);
        let ord = reverse_cuthill_mckee(&p);
        assert!(is_permutation(&ord, 6));
    }

    #[test]
    fn minimum_degree_is_a_permutation() {
        let p = SparsePattern::grid2d(6, 6);
        let ord = minimum_degree(&p);
        assert!(is_permutation(&ord, 36));
    }

    #[test]
    fn minimum_degree_eliminates_leaves_first() {
        // Star graph: all leaves (degree 1) must precede the hub.
        let edges: Vec<(usize, usize)> = (1..8).map(|i| (0, i)).collect();
        let p = SparsePattern::from_edges(8, &edges);
        let ord = minimum_degree(&p);
        // Once one leaf remains the hub ties it on degree, so the hub may
        // come second-to-last — but never earlier.
        let hub_pos = ord.iter().position(|&v| v == 0).unwrap();
        assert!(hub_pos >= ord.len() - 2, "hub at {hub_pos} in {ord:?}");
    }
}
