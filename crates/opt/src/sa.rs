//! Simulated annealing (Kirkpatrick et al. 1983) on the unit hypercube —
//! another OpenTuner-ensemble technique (paper Sec. 5).

use crate::OptResult;
use rand::Rng;

/// SA configuration with geometric cooling.
#[derive(Debug, Clone)]
pub struct SaOptions {
    /// Total number of proposal steps.
    pub iters: usize,
    /// Initial temperature.
    pub t_start: f64,
    /// Final temperature.
    pub t_end: f64,
    /// Proposal standard deviation at the start (shrinks with temperature).
    pub step: f64,
}

impl Default for SaOptions {
    fn default() -> Self {
        SaOptions {
            iters: 500,
            t_start: 1.0,
            t_end: 1e-3,
            step: 0.25,
        }
    }
}

/// Minimizes `f` over `[0,1]^dim` starting from `x0` (or the box centre).
pub fn minimize(
    f: &mut dyn FnMut(&[f64]) -> f64,
    dim: usize,
    x0: Option<&[f64]>,
    opts: &SaOptions,
    rng: &mut impl Rng,
) -> OptResult {
    let mut x: Vec<f64> = match x0 {
        Some(s) => {
            let mut p = s.to_vec();
            crate::clamp_unit(&mut p);
            p
        }
        None => vec![0.5; dim],
    };
    let mut fx = nanproof(f(&x));
    let mut evals = 1usize;
    let mut best = x.clone();
    let mut best_val = fx;

    let cool = (opts.t_end / opts.t_start).powf(1.0 / opts.iters.max(1) as f64);
    let mut temp = opts.t_start;
    for _ in 0..opts.iters {
        let scale = opts.step * (temp / opts.t_start).sqrt().max(0.05);
        let cand: Vec<f64> = x
            .iter()
            .map(|&v| (v + crate::ga::gaussian(rng) * scale).clamp(0.0, 1.0))
            .collect();
        let fc = nanproof(f(&cand));
        evals += 1;
        let accept = fc <= fx || rng.gen::<f64>() < ((fx - fc) / temp).exp();
        if accept {
            x = cand;
            fx = fc;
            if fx < best_val {
                best_val = fx;
                best.clone_from(&x);
            }
        }
        temp *= cool;
    }

    OptResult {
        x: best,
        value: best_val,
        evals,
    }
}

fn nanproof(v: f64) -> f64 {
    if v.is_nan() {
        f64::INFINITY
    } else {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sphere() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut f = |x: &[f64]| x.iter().map(|v| (v - 0.25) * (v - 0.25)).sum::<f64>();
        let r = minimize(&mut f, 2, None, &SaOptions::default(), &mut rng);
        assert!(r.value < 5e-3, "value {}", r.value);
    }

    #[test]
    fn best_ever_returned_not_current() {
        let mut rng = StdRng::seed_from_u64(8);
        // Narrow well at 0.5 the walker will visit then possibly leave;
        // best-ever bookkeeping must retain it.
        let mut f = |x: &[f64]| {
            let d = (x[0] - 0.5).abs();
            if d < 0.02 {
                -1.0
            } else {
                d
            }
        };
        let r = minimize(&mut f, 1, Some(&[0.5]), &SaOptions::default(), &mut rng);
        assert_eq!(r.value, -1.0);
    }

    #[test]
    fn eval_count() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut n = 0usize;
        let mut f = |_: &[f64]| {
            n += 1;
            0.0
        };
        let r = minimize(
            &mut f,
            1,
            None,
            &SaOptions {
                iters: 37,
                ..Default::default()
            },
            &mut rng,
        );
        assert_eq!(r.evals, n);
        assert_eq!(n, 38);
    }
}
