//! Linear Coregionalization Model — the multitask GP at the core of MLA.
//!
//! Implements the paper's Eqs. 1–6: covariance assembly (Eq. 4), marginal
//! log-likelihood with full analytic gradients, prediction (Eqs. 5–6), and
//! multi-start L-BFGS hyperparameter fitting (Sec. 3.1 "Modeling phase" /
//! Sec. 4.3). Hyperparameters with positivity constraints (lengthscales,
//! `b`, `d`) are optimized in log space, so the inner optimization is
//! unconstrained.

use crate::kernel::{ArdKernel, KernelKind};
use gptune_la::blas;
use gptune_la::ord::feq;
use gptune_la::{Cholesky, CholeskyOptions, Matrix};
use gptune_opt::lbfgs::{self, LbfgsOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Matrix size above which the blocked rayon-parallel Cholesky is used.
const PARALLEL_CHOL_THRESHOLD: usize = 192;

/// LCM hyperparameters (paper Eq. 4).
#[derive(Debug, Clone)]
pub struct LcmHyperparams {
    /// Number of latent GPs `Q ≤ δ`.
    pub q: usize,
    /// Number of tasks `δ`.
    pub n_tasks: usize,
    /// Input dimension `β` (tuning space, possibly enriched with
    /// performance-model features per Sec. 3.3).
    pub dim: usize,
    /// Per-latent-function ARD lengthscales `l_d^q`, indexed `[q][d]`.
    pub lengthscales: Vec<Vec<f64>>,
    /// Task mixing coefficients `a_{i,q}`, indexed `[q][i]`.
    pub a: Vec<Vec<f64>>,
    /// Per-task diagonal regularization `b_{i,q} ≥ 0`, indexed `[q][i]`.
    pub b: Vec<Vec<f64>>,
    /// Per-task noise `d_i ≥ 0`.
    pub d: Vec<f64>,
}

impl LcmHyperparams {
    /// Number of scalar degrees of freedom.
    pub fn n_params(&self) -> usize {
        self.q * (self.dim + 2 * self.n_tasks) + self.n_tasks
    }

    /// Packs into the unconstrained optimization vector:
    /// `[log l | a | log b]` per latent function, then `log d`.
    pub fn pack(&self) -> Vec<f64> {
        let mut theta = Vec::with_capacity(self.n_params());
        for q in 0..self.q {
            theta.extend(self.lengthscales[q].iter().map(|l| l.ln()));
            theta.extend(self.a[q].iter().copied());
            theta.extend(self.b[q].iter().map(|b| b.max(1e-300).ln()));
        }
        theta.extend(self.d.iter().map(|d| d.max(1e-300).ln()));
        theta
    }

    /// Inverse of [`pack`](Self::pack).
    pub fn unpack(q: usize, n_tasks: usize, dim: usize, theta: &[f64]) -> LcmHyperparams {
        assert_eq!(
            theta.len(),
            q * (dim + 2 * n_tasks) + n_tasks,
            "unpack: arity"
        );
        let mut it = theta.iter().copied();
        let mut take = |n: usize| -> Vec<f64> { (0..n).map(|_| it.next().unwrap()).collect() };
        let mut lengthscales = Vec::with_capacity(q);
        let mut a = Vec::with_capacity(q);
        let mut b = Vec::with_capacity(q);
        for _ in 0..q {
            lengthscales.push(take(dim).into_iter().map(f64::exp).collect());
            a.push(take(n_tasks));
            b.push(take(n_tasks).into_iter().map(f64::exp).collect());
        }
        let d = take(n_tasks).into_iter().map(f64::exp).collect();
        LcmHyperparams {
            q,
            n_tasks,
            dim,
            lengthscales,
            a,
            b,
            d,
        }
    }

    /// Random initial guess for one multi-start restart.
    pub fn random_init(q: usize, n_tasks: usize, dim: usize, rng: &mut impl Rng) -> LcmHyperparams {
        let mut lengthscales = Vec::with_capacity(q);
        let mut a = Vec::with_capacity(q);
        let mut b = Vec::with_capacity(q);
        for _ in 0..q {
            lengthscales.push(
                (0..dim)
                    .map(|_| 10f64.powf(rng.gen_range(-1.0..0.3)))
                    .collect(),
            );
            a.push((0..n_tasks).map(|_| rng.gen_range(-1.0..1.0)).collect());
            b.push(
                (0..n_tasks)
                    .map(|_| 10f64.powf(rng.gen_range(-4.0..-1.0)))
                    .collect(),
            );
        }
        let d = (0..n_tasks)
            .map(|_| 10f64.powf(rng.gen_range(-4.0..-1.0)))
            .collect();
        LcmHyperparams {
            q,
            n_tasks,
            dim,
            lengthscales,
            a,
            b,
            d,
        }
    }
}

/// Options for [`LcmModel::fit`].
#[derive(Debug, Clone)]
pub struct LcmFitOptions {
    /// Number of latent functions `Q` (clamped to `δ`).
    pub q: usize,
    /// Latent kernel family (the paper uses the Gaussian/SE kernel of
    /// Eq. 3; Matérn 5/2 is available for ablations).
    pub kernel: KernelKind,
    /// Number of random L-BFGS restarts (`n_start` in Sec. 4.3), run in
    /// parallel on the ambient rayon pool.
    pub n_starts: usize,
    /// Inner L-BFGS configuration.
    pub lbfgs: LbfgsOptions,
    /// Base RNG seed for the restarts (restart `k` uses `seed + k`).
    pub seed: u64,
    /// Run the fit through the pre-refactor naive likelihood instead of the
    /// distance-cached one. For equivalence tests and before/after
    /// benchmarks only — never faster, never more accurate.
    pub reference_impl: bool,
    /// Subset-of-data approximation: cap the active training set at this
    /// many points. When the history exceeds the cap, a farthest-point
    /// subset (seeded with each task's incumbent) is fitted instead, so
    /// fit and prediction cost stop growing with history size. `None`
    /// uses every point (exact).
    pub max_active_set: Option<usize>,
}

impl Default for LcmFitOptions {
    fn default() -> Self {
        LcmFitOptions {
            q: 2,
            kernel: KernelKind::SquaredExponential,
            n_starts: 4,
            lbfgs: LbfgsOptions {
                max_iters: 80,
                grad_tol: 1e-5,
                f_tol: 1e-9,
                ..Default::default()
            },
            seed: 0,
            reference_impl: false,
            max_active_set: None,
        }
    }
}

/// Posterior prediction at one point (paper Eqs. 5–6).
#[derive(Debug, Clone, Copy)]
pub struct Prediction {
    /// Posterior mean `μ*`.
    pub mean: f64,
    /// Posterior variance `σ*²` (non-negative).
    pub variance: f64,
}

/// A fitted multitask LCM surrogate.
#[derive(Debug, Clone)]
pub struct LcmModel {
    hp: LcmHyperparams,
    kernel: KernelKind,
    /// Sample inputs in normalized coordinates.
    xs: Vec<Vec<f64>>,
    /// Task index of each sample.
    task_of: Vec<usize>,
    /// Standardized outputs.
    y_std_vals: Vec<f64>,
    /// Output standardization: `y_raw = y_std · scale + shift`.
    shift: f64,
    scale: f64,
    chol: Cholesky,
    alpha: Vec<f64>,
    nll: f64,
    /// The Q latent kernels at the fitted lengthscales, cached so predict
    /// paths stop cloning lengthscale vectors per call.
    kernels: Vec<ArdKernel>,
    /// Per-latent task-pair coefficients `a_{t,q} a_{t',q} + δ_{t,t'} b_{t,q}`,
    /// flattened `t·T + t'` (one `T×T` block per latent function).
    coeffs: Vec<Vec<f64>>,
    /// Per-task prior variance `Σ_q (a² + b)` — latent variance excluding
    /// observation noise `d`, so EI reasons about `f`, not `y`.
    prior_var: Vec<f64>,
}

/// Internal: training data shared between likelihood evaluations.
struct LcmData<'a> {
    xs: &'a [Vec<f64>],
    task_of: &'a [usize],
    y: &'a [f64],
    n_tasks: usize,
    dim: usize,
    kernel: KernelKind,
}

impl LcmModel {
    /// Fits an LCM to multitask data.
    ///
    /// * `xs` — sample inputs, already normalized to the unit cube;
    /// * `task_of` — task index (`< n_tasks`) per sample;
    /// * `y` — raw objective values (standardized internally).
    ///
    /// # Panics
    /// Panics on arity mismatches or empty data.
    pub fn fit(
        xs: &[Vec<f64>],
        task_of: &[usize],
        y: &[f64],
        n_tasks: usize,
        opts: &LcmFitOptions,
    ) -> LcmModel {
        Self::fit_impl(xs, task_of, y, n_tasks, opts, None, None)
    }

    /// The full fit path behind [`fit`](Self::fit), with two extra inputs
    /// used by the incremental-refit machinery:
    ///
    /// * `warm` — a packed hyperparameter vector that replaces restart 0's
    ///   random initialization (warm-started re-optimization). Ignored when
    ///   its arity does not match the current `q`/`n_tasks`/`dim`.
    /// * `cache` — a pre-built [`DistanceCache`] over exactly `xs`, grown
    ///   incrementally by the caller so repeated full refits skip the
    ///   O(n²·dim) rebuild.
    ///
    /// With both `None` this is bit-identical to [`fit`](Self::fit).
    pub(crate) fn fit_impl(
        xs: &[Vec<f64>],
        task_of: &[usize],
        y: &[f64],
        n_tasks: usize,
        opts: &LcmFitOptions,
        warm: Option<&[f64]>,
        cache: Option<&DistanceCache>,
    ) -> LcmModel {
        let n = xs.len();
        assert!(n > 0, "LcmModel::fit: empty data");
        assert_eq!(task_of.len(), n);
        assert_eq!(y.len(), n);
        assert!(task_of.iter().all(|&t| t < n_tasks));
        let dim = xs[0].len();
        assert!(xs.iter().all(|x| x.len() == dim));
        let q = opts.q.clamp(1, n_tasks);

        // Subset-of-data approximation: fit on a farthest-point subset when
        // the history exceeds the cap (the distance cache is over the full
        // history, so the subset fit rebuilds its own).
        if let Some(cap) = opts.max_active_set {
            if cap > 0 && n > cap {
                let idx = select_active_set(xs, task_of, y, n_tasks, cap);
                let sub_xs: Vec<Vec<f64>> = idx.iter().map(|&i| xs[i].clone()).collect();
                let sub_tasks: Vec<usize> = idx.iter().map(|&i| task_of[i]).collect();
                let sub_y: Vec<f64> = idx.iter().map(|&i| y[i]).collect();
                let inner = LcmFitOptions {
                    max_active_set: None,
                    ..opts.clone()
                };
                return Self::fit_impl(&sub_xs, &sub_tasks, &sub_y, n_tasks, &inner, warm, None);
            }
        }

        let (cleaned, shift, scale) = clean_and_standardize(y);
        let y_std_vals: Vec<f64> = cleaned.iter().map(|v| (v - shift) / scale).collect();

        let data = LcmData {
            xs,
            task_of,
            y: &y_std_vals,
            n_tasks,
            dim,
            kernel: opts.kernel,
        };

        // Theta-independent pairwise squared differences, computed once and
        // shared read-only by every restart and every L-BFGS iteration —
        // or reused from the caller's incrementally grown cache.
        let built;
        let dists = match cache {
            Some(c) => {
                debug_assert_eq!(c.n(), n, "fit_impl: distance cache size mismatch");
                c
            }
            None => {
                built = DistanceCache::build(xs);
                &built
            }
        };
        // A warm start must match the current packing arity to be usable.
        let warm = warm.filter(|w| w.len() == q * (dim + 2 * n_tasks) + n_tasks);
        // Restarts run in parallel, so each inner likelihood keeps its
        // Cholesky sequential to avoid oversubscribing the rayon pool; a
        // single-restart fit may use the blocked parallel factorization.
        let n_starts = opts.n_starts.max(1);
        let tracer = gptune_trace::global();
        let mut fit_span = tracer
            .span("gptune.gp.fit")
            .with("n", n)
            .with("dim", dim)
            .with("n_tasks", n_tasks)
            .with("q", q)
            .with("restarts", n_starts)
            .with("warm", warm.is_some());
        let ctx = FitCtx {
            data: &data,
            dists,
            parallel_chol: n_starts == 1,
        };
        let objective = |theta: &[f64], grad: &mut [f64]| -> f64 {
            if opts.reference_impl {
                nll_and_grad_reference(&data, q, theta, grad)
            } else {
                nll_and_grad(&ctx, q, theta, grad)
            }
        };

        // Multi-start L-BFGS over the packed hyperparameters, in parallel.
        let results: Vec<(f64, Vec<f64>)> = (0..n_starts)
            .into_par_iter()
            .map(|k| {
                let restart_span = tracer.span("gptune.gp.fit_restart").with("restart", k);
                let mut rng = StdRng::seed_from_u64(opts.seed.wrapping_add(k as u64));
                // Restart 0 takes the warm-start vector when one is given
                // (the previous fit's optimum); the rest stay random.
                let init = match (k, warm) {
                    (0, Some(w)) => w.to_vec(),
                    _ => LcmHyperparams::random_init(q, n_tasks, dim, &mut rng).pack(),
                };
                let r = lbfgs::minimize(|theta, grad| objective(theta, grad), &init, &opts.lbfgs);
                drop(restart_span.with("nll", r.value));
                (r.value, r.x)
            })
            .collect();

        let (best_nll, best_theta) = results
            .into_iter()
            .filter(|(v, _)| v.is_finite())
            .min_by(|a, b| a.0.total_cmp(&b.0))
            .unwrap_or_else(|| {
                // All restarts diverged: fall back to a fixed default.
                let hp = LcmHyperparams {
                    q,
                    n_tasks,
                    dim,
                    lengthscales: vec![vec![0.3; dim]; q],
                    a: vec![vec![1.0; n_tasks]; q],
                    b: vec![vec![1e-3; n_tasks]; q],
                    d: vec![1e-3; n_tasks],
                };
                let theta = hp.pack();
                let mut g = vec![0.0; theta.len()];
                let v = objective(&theta, &mut g);
                (v, theta)
            });

        fit_span.add("best_nll", best_nll);
        let hp = LcmHyperparams::unpack(q, n_tasks, dim, &best_theta);
        let kernels: Vec<ArdKernel> = (0..q)
            .map(|qq| ArdKernel::with_kind(opts.kernel, hp.lengthscales[qq].clone()))
            .collect();
        let coeffs = task_coeffs(&hp);
        let packed: Vec<PackedKernel> = kernels.iter().map(|k| dists.packed(k)).collect();
        let sigma = assemble_covariance(task_of, n_tasks, &coeffs, &packed, &hp.d);
        // The final factorization runs with no restarts in flight, so the
        // blocked rayon-parallel Cholesky is safe (and worthwhile) at large n.
        let chol = if n >= PARALLEL_CHOL_THRESHOLD {
            Cholesky::factor_with_jitter_parallel(&sigma, 0.0, 12, &CholeskyOptions::default())
        } else {
            Cholesky::factor_with_jitter(&sigma, 0.0, 12)
        }
        .expect("LCM covariance not factorizable even with jitter");
        let alpha = chol.solve(&y_std_vals);
        let prior_var: Vec<f64> = (0..n_tasks)
            .map(|task| {
                (0..q)
                    .map(|qq| hp.a[qq][task] * hp.a[qq][task] + hp.b[qq][task])
                    .sum()
            })
            .collect();

        LcmModel {
            hp,
            kernel: opts.kernel,
            xs: xs.to_vec(),
            task_of: task_of.to_vec(),
            y_std_vals,
            shift,
            scale,
            chol,
            alpha,
            nll: best_nll,
            kernels,
            coeffs,
            prior_var,
        }
    }

    /// The fitted hyperparameters.
    pub fn hyperparams(&self) -> &LcmHyperparams {
        &self.hp
    }

    /// Negative log marginal likelihood at the fitted hyperparameters
    /// (standardized outputs).
    pub fn nll(&self) -> f64 {
        self.nll
    }

    /// Number of training samples.
    pub fn n_samples(&self) -> usize {
        self.xs.len()
    }

    /// The latent kernel family this model was fitted with.
    pub fn kernel_kind(&self) -> KernelKind {
        self.kernel
    }

    /// Output standardization `(shift, scale)`: `y_raw = y_std·scale + shift`.
    pub fn standardization(&self) -> (f64, f64) {
        (self.shift, self.scale)
    }

    /// Training inputs (normalized coordinates), in insertion order.
    pub fn training_xs(&self) -> &[Vec<f64>] {
        &self.xs
    }

    /// Task index of each training sample.
    pub fn training_tasks(&self) -> &[usize] {
        &self.task_of
    }

    /// Standardized training outputs.
    pub fn y_standardized(&self) -> &[f64] {
        &self.y_std_vals
    }

    /// Builds a model at *fixed* hyperparameters — no optimization, just
    /// covariance assembly, factorization, and the solve. This is the
    /// from-scratch baseline the incremental extension is pinned against,
    /// and the reconstruction path for snapshot restore.
    ///
    /// `standardization` fixes the output `(shift, scale)` (so predictions
    /// are comparable with a model fitted on a prefix of the data); `None`
    /// recomputes both from `y` exactly like [`fit`](Self::fit).
    pub fn from_hyperparams(
        xs: &[Vec<f64>],
        task_of: &[usize],
        y: &[f64],
        n_tasks: usize,
        kernel: KernelKind,
        hp: LcmHyperparams,
        standardization: Option<(f64, f64)>,
    ) -> LcmModel {
        let n = xs.len();
        assert!(n > 0, "LcmModel::from_hyperparams: empty data");
        assert_eq!(task_of.len(), n);
        assert_eq!(y.len(), n);
        assert!(task_of.iter().all(|&t| t < n_tasks));
        assert_eq!(hp.n_tasks, n_tasks, "from_hyperparams: task arity");
        assert!(
            xs.iter().all(|x| x.len() == hp.dim),
            "from_hyperparams: dim mismatch"
        );

        let (cleaned, own_shift, own_scale) = clean_and_standardize(y);
        let (shift, scale) = standardization.unwrap_or((own_shift, own_scale));
        let y_std_vals: Vec<f64> = cleaned.iter().map(|v| (v - shift) / scale).collect();

        let kernels: Vec<ArdKernel> = (0..hp.q)
            .map(|qq| ArdKernel::with_kind(kernel, hp.lengthscales[qq].clone()))
            .collect();
        let coeffs = task_coeffs(&hp);
        let dists = DistanceCache::build(xs);
        let packed: Vec<PackedKernel> = kernels.iter().map(|k| dists.packed(k)).collect();
        let sigma = assemble_covariance(task_of, n_tasks, &coeffs, &packed, &hp.d);
        let chol = if n >= PARALLEL_CHOL_THRESHOLD {
            Cholesky::factor_with_jitter_parallel(&sigma, 0.0, 12, &CholeskyOptions::default())
        } else {
            Cholesky::factor_with_jitter(&sigma, 0.0, 12)
        }
        .expect("LCM covariance not factorizable even with jitter");
        let alpha = chol.solve(&y_std_vals);
        let prior_var: Vec<f64> = (0..n_tasks)
            .map(|task| {
                (0..hp.q)
                    .map(|qq| hp.a[qq][task] * hp.a[qq][task] + hp.b[qq][task])
                    .sum()
            })
            .collect();
        let nll = nll_from_chol(&chol, &y_std_vals, &alpha);

        LcmModel {
            hp,
            kernel,
            xs: xs.to_vec(),
            task_of: task_of.to_vec(),
            y_std_vals,
            shift,
            scale,
            chol,
            alpha,
            nll,
            kernels,
            coeffs,
            prior_var,
        }
    }

    /// Appends new observations *without* re-optimizing hyperparameters:
    /// each point extends the stored Cholesky factor with one
    /// cross-covariance column in O(n²) ([`Cholesky::extend_row`]) instead
    /// of refactoring in O(n³). The output standardization is kept fixed,
    /// so predictions remain on the same scale as the last full fit.
    ///
    /// All-or-nothing: on error (a new point makes the covariance
    /// numerically non-PSD, e.g. an exact duplicate under a tiny noise
    /// term) the model is left untouched and the caller should fall back
    /// to a full refit.
    ///
    /// # Panics
    /// Panics on arity mismatches or non-finite outputs — censoring of
    /// failed evaluations is the caller's job (a non-finite `y` changes
    /// the censoring penalty, which requires a full refit anyway).
    pub fn extend(
        &mut self,
        xs_new: &[Vec<f64>],
        tasks_new: &[usize],
        y_new: &[f64],
    ) -> Result<(), gptune_la::LaError> {
        let m = xs_new.len();
        assert_eq!(tasks_new.len(), m);
        assert_eq!(y_new.len(), m);
        assert!(tasks_new.iter().all(|&t| t < self.hp.n_tasks));
        assert!(xs_new.iter().all(|x| x.len() == self.hp.dim));
        assert!(
            y_new.iter().all(|v| v.is_finite()),
            "LcmModel::extend: non-finite output (needs a full refit)"
        );
        if m == 0 {
            return Ok(());
        }
        let t = self.hp.n_tasks;
        // Staged: all factor extensions run on temporaries and commit only
        // after every point succeeded, so an Err leaves `self` untouched.
        let mut chol = self.chol.clone();
        let mut staged_xs: Vec<Vec<f64>> = Vec::with_capacity(m);
        let mut staged_tasks: Vec<usize> = Vec::with_capacity(m);
        for (x, &task) in xs_new.iter().zip(tasks_new) {
            // Cross covariance against every point already in the factor
            // (committed and staged), mirroring `assemble_covariance`.
            let mut k = Vec::with_capacity(self.xs.len() + staged_xs.len());
            for (xp, &tp) in self
                .xs
                .iter()
                .zip(&self.task_of)
                .chain(staged_xs.iter().zip(&staged_tasks))
            {
                let mut s = 0.0;
                for (kern, cq) in self.kernels.iter().zip(&self.coeffs) {
                    let coeff = cq[task * t + tp];
                    if !feq(coeff, 0.0) {
                        s += coeff * kern.eval(x, xp);
                    }
                }
                k.push(s);
            }
            // Diagonal entry: latent variance + noise + the fixed nugget,
            // plus whatever jitter the factorization applied to Σ's
            // diagonal, so the extended factor stays consistent.
            let mut kappa = 0.0;
            for (kern, cq) in self.kernels.iter().zip(&self.coeffs) {
                let coeff = cq[task * t + task];
                if !feq(coeff, 0.0) {
                    kappa += coeff * kern.eval(x, x);
                }
            }
            kappa += self.hp.d[task] + 1e-10;
            kappa += chol.jitter();
            chol = chol.extend_row(&k, kappa)?;
            staged_xs.push(x.clone());
            staged_tasks.push(task);
        }
        self.chol = chol;
        self.xs.extend(staged_xs);
        self.task_of.extend(staged_tasks);
        self.y_std_vals
            .extend(y_new.iter().map(|v| (v - self.shift) / self.scale));
        self.alpha = self.chol.solve(&self.y_std_vals);
        self.nll = nll_from_chol(&self.chol, &self.y_std_vals, &self.alpha);
        Ok(())
    }

    /// Removes one training point, shrinking the stored factor in O(n²)
    /// via [`Cholesky::remove_row`] (a rank-1 *update* on the trailing
    /// block, so it cannot fail). Used by the capped incremental path to
    /// evict a point before admitting a new one.
    ///
    /// # Panics
    /// Panics when `idx` is out of range or the model would become empty.
    pub fn remove(&mut self, idx: usize) {
        assert!(idx < self.xs.len(), "LcmModel::remove: index out of range");
        assert!(self.xs.len() > 1, "LcmModel::remove: would empty the model");
        self.chol = self.chol.remove_row(idx);
        self.xs.remove(idx);
        self.task_of.remove(idx);
        self.y_std_vals.remove(idx);
        self.alpha = self.chol.solve(&self.y_std_vals);
        self.nll = nll_from_chol(&self.chol, &self.y_std_vals, &self.alpha);
    }

    /// Negative log marginal likelihood recomputed from the *stored*
    /// factor (rather than the optimizer's last likelihood evaluation) —
    /// the apples-to-apples quantity for comparing an incrementally
    /// extended model against a from-scratch rebuild.
    pub fn nll_from_factor(&self) -> f64 {
        nll_from_chol(&self.chol, &self.y_std_vals, &self.alpha)
    }

    /// Posterior prediction for `task` at normalized point `x`
    /// (paper Eqs. 5–6), in the raw output scale.
    ///
    /// Uses the per-fit cached kernels, task coefficients, and prior
    /// variances — no per-call allocation beyond the `k*` vector.
    pub fn predict(&self, task: usize, x: &[f64]) -> Prediction {
        assert!(task < self.hp.n_tasks, "predict: task out of range");
        assert_eq!(x.len(), self.hp.dim, "predict: dim mismatch");
        let n = self.xs.len();
        let t = self.hp.n_tasks;

        // Cross covariance k* between (task, x) and every training point.
        let mut kstar = vec![0.0; n];
        for (p, xp) in self.xs.iter().enumerate() {
            let tp = self.task_of[p];
            let mut s = 0.0;
            for (kern, cq) in self.kernels.iter().zip(&self.coeffs) {
                let coeff = cq[task * t + tp];
                if !feq(coeff, 0.0) {
                    s += coeff * kern.eval(x, xp);
                }
            }
            kstar[p] = s;
        }

        let mean_std: f64 = kstar.iter().zip(&self.alpha).map(|(k, a)| k * a).sum();
        let v = self.chol.solve(&kstar);
        let reduction: f64 = kstar.iter().zip(&v).map(|(k, s)| k * s).sum();
        let var_std = (self.prior_var[task] - reduction).max(1e-12);

        Prediction {
            mean: mean_std * self.scale + self.shift,
            variance: var_std * self.scale * self.scale,
        }
    }

    /// Pre-refactor per-point prediction — re-derives the Q kernels and
    /// task coefficients on every call. Retained verbatim as the
    /// equivalence and benchmark baseline for the cached
    /// [`predict`](Self::predict) / [`predict_batch`](Self::predict_batch)
    /// paths.
    pub fn predict_reference(&self, task: usize, x: &[f64]) -> Prediction {
        assert!(task < self.hp.n_tasks, "predict: task out of range");
        assert_eq!(x.len(), self.hp.dim, "predict: dim mismatch");
        let n = self.xs.len();
        let kernels: Vec<ArdKernel> = (0..self.hp.q)
            .map(|q| ArdKernel::with_kind(self.kernel, self.hp.lengthscales[q].clone()))
            .collect();

        // Cross covariance k* between (task, x) and every training point.
        let mut kstar = vec![0.0; n];
        for (p, xp) in self.xs.iter().enumerate() {
            let tp = self.task_of[p];
            let mut s = 0.0;
            for q in 0..self.hp.q {
                let coeff = self.hp.a[q][task] * self.hp.a[q][tp]
                    + if tp == task { self.hp.b[q][task] } else { 0.0 };
                if !feq(coeff, 0.0) {
                    s += coeff * kernels[q].eval(x, xp);
                }
            }
            kstar[p] = s;
        }

        // Prior variance at (task, x): Σ_q (a² + b)  (latent variance; the
        // observation noise d is excluded so EI reasons about f, not y).
        let prior: f64 = (0..self.hp.q)
            .map(|q| self.hp.a[q][task] * self.hp.a[q][task] + self.hp.b[q][task])
            .sum();

        let mean_std: f64 = kstar.iter().zip(&self.alpha).map(|(k, a)| k * a).sum();
        let v = self.chol.solve(&kstar);
        let reduction: f64 = kstar.iter().zip(&v).map(|(k, s)| k * s).sum();
        let var_std = (prior - reduction).max(1e-12);

        Prediction {
            mean: mean_std * self.scale + self.shift,
            variance: var_std * self.scale * self.scale,
        }
    }

    /// Batched posterior prediction for `task` at many candidate points —
    /// the candidate-scoring hot path of the search phase.
    ///
    /// Builds the `n × m` cross-covariance once, computes all means with a
    /// single `Kᵀα` product, and replaces `m` independent BLAS-2 triangular
    /// solves with one blocked multi-RHS *forward* solve (BLAS-3 shape):
    /// the variance reduction `k*ᵀ Σ⁻¹ k*` is accumulated as `‖L⁻¹ k*‖²`
    /// column sums, so the backward substitution never runs. Candidate
    /// chunks are processed in parallel on the ambient rayon pool.
    ///
    /// Matches per-point [`predict`](Self::predict) to ≤ 1e-12 relative;
    /// the only difference is the summation order of that quadratic form.
    pub fn predict_batch(&self, task: usize, xs: &[Vec<f64>]) -> Vec<Prediction> {
        assert!(task < self.hp.n_tasks, "predict_batch: task out of range");
        assert!(
            xs.iter().all(|x| x.len() == self.hp.dim),
            "predict_batch: dim mismatch"
        );
        if xs.is_empty() {
            return Vec::new();
        }
        let _batch_span = gptune_trace::global()
            .span("gptune.gp.predict_batch")
            .with("m", xs.len())
            .with("n", self.xs.len());
        // Chunked so one RHS panel stays cache-resident
        // (n × 64 × 8 B = 128 KiB at n = 256).
        const CHUNK: usize = 64;
        let chunks: Vec<&[Vec<f64>]> = xs.chunks(CHUNK).collect();
        let per: Vec<Vec<Prediction>> = chunks
            .into_par_iter()
            .map(|c| self.predict_chunk(task, c))
            .collect();
        per.into_iter().flatten().collect()
    }

    fn predict_chunk(&self, task: usize, chunk: &[Vec<f64>]) -> Vec<Prediction> {
        let n = self.xs.len();
        let t = self.hp.n_tasks;
        let m = chunk.len();

        // K* (n × m): row p holds the cross covariance of training point p
        // against every candidate in the chunk.
        let mut kstar = Matrix::zeros(n, m);
        for (p, xp) in self.xs.iter().enumerate() {
            let tp = self.task_of[p];
            let row = kstar.row_mut(p);
            for (kern, cq) in self.kernels.iter().zip(&self.coeffs) {
                let coeff = cq[task * t + tp];
                if feq(coeff, 0.0) {
                    continue;
                }
                for (s, x) in row.iter_mut().zip(chunk) {
                    *s += coeff * kern.eval(x, xp);
                }
            }
        }

        // Means for the whole chunk: one K*ᵀ α product.
        let mut means = vec![0.0; m];
        blas::gemv_t(1.0, &kstar, &self.alpha, 0.0, &mut means);

        // Variances: forward half-solve V = L⁻¹ K* only — the reduction
        // k*ᵀ Σ⁻¹ k* equals ‖L⁻¹ k*‖², so the backward substitution never
        // runs. Column sums of squares are accumulated row-wise (stride-1
        // over the chunk).
        let mut v = kstar;
        self.chol.forward_solve_matrix_in_place(&mut v);
        let mut reduction = vec![0.0; m];
        for p in 0..n {
            for (r, &vv) in reduction.iter_mut().zip(v.row(p)) {
                *r += vv * vv;
            }
        }

        let prior = self.prior_var[task];
        means
            .iter()
            .zip(&reduction)
            .map(|(mean_std, red)| {
                let var_std = (prior - red).max(1e-12);
                Prediction {
                    mean: mean_std * self.scale + self.shift,
                    variance: var_std * self.scale * self.scale,
                }
            })
            .collect()
    }

    /// Best observed (raw) output for a task, if it has samples.
    pub fn best_observed(&self, task: usize) -> Option<f64> {
        self.task_of
            .iter()
            .zip(&self.y_std_vals)
            .filter(|(t, _)| **t == task)
            .map(|(_, y)| y * self.scale + self.shift)
            .min_by(|a, b| a.total_cmp(b))
    }

    /// Leave-one-out cross-validation diagnostics (Sundararajan–Keerthi):
    /// with `K = Σ` and `α = K⁻¹y`, the LOO residual of point `i` is
    /// `α_i / [K⁻¹]_{ii}` and its predictive variance `1/[K⁻¹]_{ii}` —
    /// computed from the stored factorization without refitting.
    ///
    /// Returns `(rmse, mean_standardized_sq)` in the *standardized* output
    /// scale: `rmse` is the LOO prediction error, and
    /// `mean_standardized_sq` is the mean of squared standardized residuals,
    /// which should be ≈ 1 for a well-calibrated model (≫ 1 =
    /// overconfident, ≪ 1 = underconfident).
    pub fn loo_diagnostics(&self) -> (f64, f64) {
        let n = self.xs.len();
        let kinv = self.chol.inverse_lower();
        let mut sq_err = 0.0;
        let mut std_sq = 0.0;
        for i in 0..n {
            let kii = kinv.get(i, i).max(1e-300);
            let residual = self.alpha[i] / kii;
            let variance = 1.0 / kii;
            sq_err += residual * residual;
            std_sq += residual * residual / variance.max(1e-300);
        }
        ((sq_err / n as f64).sqrt(), std_sq / n as f64)
    }

    /// Spectral condition number of the fitted covariance matrix — large
    /// values explain jitter retries and unstable hyperparameter fits.
    pub fn covariance_condition_number(&self) -> f64 {
        // Reconstruct Σ = L Lᵀ from the stored factor and diagonalize.
        let l = self.chol.l();
        let n = l.rows();
        let mut sigma = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut v = 0.0;
                for k in 0..=j {
                    v += l.get(i, k) * l.get(j, k);
                }
                sigma.set(i, j, v);
                sigma.set(j, i, v);
            }
        }
        gptune_la::SymmetricEigen::new(&sigma).condition_number()
    }

    /// Log marginal likelihood and gradient at arbitrary packed
    /// hyperparameters — exposed for tests and diagnostics.
    pub fn nll_at(
        xs: &[Vec<f64>],
        task_of: &[usize],
        y: &[f64],
        n_tasks: usize,
        q: usize,
        theta: &[f64],
        grad: &mut [f64],
    ) -> f64 {
        Self::nll_at_with_kernel(
            xs,
            task_of,
            y,
            n_tasks,
            q,
            KernelKind::SquaredExponential,
            theta,
            grad,
        )
    }

    /// [`LcmModel::nll_at`] with an explicit kernel family.
    #[allow(clippy::too_many_arguments)]
    pub fn nll_at_with_kernel(
        xs: &[Vec<f64>],
        task_of: &[usize],
        y: &[f64],
        n_tasks: usize,
        q: usize,
        kernel: KernelKind,
        theta: &[f64],
        grad: &mut [f64],
    ) -> f64 {
        let dim = xs[0].len();
        let data = LcmData {
            xs,
            task_of,
            y,
            n_tasks,
            dim,
            kernel,
        };
        let dists = DistanceCache::build(xs);
        // Standalone main-thread call: the parallel Cholesky is allowed.
        let ctx = FitCtx {
            data: &data,
            dists: &dists,
            parallel_chol: true,
        };
        nll_and_grad(&ctx, q, theta, grad)
    }

    /// Pre-refactor naive likelihood+gradient (squared-exponential kernel),
    /// retained as the ≤1e-12 equivalence baseline and benchmark "before"
    /// for the distance-cached path.
    pub fn nll_at_reference(
        xs: &[Vec<f64>],
        task_of: &[usize],
        y: &[f64],
        n_tasks: usize,
        q: usize,
        theta: &[f64],
        grad: &mut [f64],
    ) -> f64 {
        Self::nll_at_reference_with_kernel(
            xs,
            task_of,
            y,
            n_tasks,
            q,
            KernelKind::SquaredExponential,
            theta,
            grad,
        )
    }

    /// [`LcmModel::nll_at_reference`] with an explicit kernel family.
    #[allow(clippy::too_many_arguments)]
    pub fn nll_at_reference_with_kernel(
        xs: &[Vec<f64>],
        task_of: &[usize],
        y: &[f64],
        n_tasks: usize,
        q: usize,
        kernel: KernelKind,
        theta: &[f64],
        grad: &mut [f64],
    ) -> f64 {
        let dim = xs[0].len();
        let data = LcmData {
            xs,
            task_of,
            y,
            n_tasks,
            dim,
            kernel,
        };
        nll_and_grad_reference(&data, q, theta, grad)
    }
}

/// Replaces non-finite outputs by the worst finite value (so the model
/// treats failed runs as very bad, mirroring GPTune's handling) and
/// returns the cleaned values with their mean/std standardization.
fn clean_and_standardize(y: &[f64]) -> (Vec<f64>, f64, f64) {
    let n = y.len();
    let finite: Vec<f64> = y.iter().copied().filter(|v| v.is_finite()).collect();
    assert!(!finite.is_empty(), "LcmModel: all outputs non-finite");
    let worst = finite.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let cleaned: Vec<f64> = y
        .iter()
        .map(|&v| if v.is_finite() { v } else { worst })
        .collect();
    let shift = cleaned.iter().sum::<f64>() / n as f64;
    let var = cleaned
        .iter()
        .map(|v| (v - shift) * (v - shift))
        .sum::<f64>()
        / n as f64;
    let scale = var.sqrt().max(1e-12);
    (cleaned, shift, scale)
}

/// NLL from a factor and its solve: `½ yᵀα + ½ log|Σ| + ½ n·ln 2π`.
fn nll_from_chol(chol: &Cholesky, y: &[f64], alpha: &[f64]) -> f64 {
    0.5 * y.iter().zip(alpha).map(|(a, b)| a * b).sum::<f64>()
        + 0.5 * chol.log_det()
        + 0.5 * y.len() as f64 * (2.0 * std::f64::consts::PI).ln()
}

/// Squared Euclidean distance between two (normalized) input points.
pub(crate) fn sqdist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Farthest-point subset selection for the subset-of-data approximation:
/// seeds with each task's incumbent (best cleaned output), then greedily
/// adds the point with the largest min-distance to the selected set.
/// Ties break toward the lowest index; the result is sorted ascending so
/// the subset preserves data order. Deterministic, O(cap·n·dim).
fn select_active_set(
    xs: &[Vec<f64>],
    task_of: &[usize],
    y: &[f64],
    n_tasks: usize,
    cap: usize,
) -> Vec<usize> {
    let n = xs.len();
    debug_assert!(cap > 0 && cap < n);
    let (cleaned, _, _) = clean_and_standardize(y);
    let mut selected = vec![false; n];
    let mut order: Vec<usize> = Vec::with_capacity(cap);
    for t in 0..n_tasks {
        let mut best: Option<usize> = None;
        for i in 0..n {
            if task_of[i] == t && best.is_none_or(|b| cleaned[i] < cleaned[b]) {
                best = Some(i);
            }
        }
        if let Some(i) = best {
            if order.len() < cap && !selected[i] {
                selected[i] = true;
                order.push(i);
            }
        }
    }
    if order.is_empty() {
        selected[0] = true;
        order.push(0);
    }
    let mut mind = vec![f64::INFINITY; n];
    for i in 0..n {
        if !selected[i] {
            for &j in &order {
                let d = sqdist(&xs[i], &xs[j]);
                if d < mind[i] {
                    mind[i] = d;
                }
            }
        }
    }
    while order.len() < cap {
        let mut pick: Option<usize> = None;
        let mut best_d = -1.0;
        for i in 0..n {
            if !selected[i] && mind[i] > best_d {
                best_d = mind[i];
                pick = Some(i);
            }
        }
        let Some(p) = pick else { break };
        selected[p] = true;
        order.push(p);
        for i in 0..n {
            if !selected[i] {
                let d = sqdist(&xs[i], &xs[p]);
                if d < mind[i] {
                    mind[i] = d;
                }
            }
        }
    }
    order.sort_unstable();
    order
}

/// Packed per-pair, per-dimension squared coordinate differences
/// `(x_{i,d} − x_{j,d})²` for all pairs `j ≤ i` — computed once per fit and
/// shared read-only across all rayon restarts and every L-BFGS iteration
/// (the distances are theta-independent; only the `1/l²` weights change).
///
/// Layout: pair-major, pairs ordered row-by-row `(i, j ≤ i)`, so pair
/// `p(i, j) = i(i+1)/2 + j` owns the `dim` contiguous entries
/// `d2[p·dim .. (p+1)·dim]`, and the pairs of row `i` are contiguous —
/// aligning packed traversal with `Matrix` row slices of `W`.
#[derive(Clone)]
pub(crate) struct DistanceCache {
    n: usize,
    dim: usize,
    d2: Vec<f64>,
}

/// Packed lower-triangle kernel values for one latent ARD kernel:
/// `r2[p] = Σ_d d2[p][d]/l_d²` and `k[p] = k(r2[p])`, pair order as in
/// [`DistanceCache`]. Keeping `r2` alongside `k` lets the Matérn gradient
/// prefactor reuse it instead of re-deriving distances.
struct PackedKernel {
    r2: Vec<f64>,
    k: Vec<f64>,
}

impl DistanceCache {
    pub(crate) fn build(xs: &[Vec<f64>]) -> DistanceCache {
        let n = xs.len();
        let dim = if n > 0 { xs[0].len() } else { 0 };
        let mut d2 = Vec::with_capacity(n * (n + 1) / 2 * dim);
        for (i, xi) in xs.iter().enumerate() {
            for xj in xs.iter().take(i + 1) {
                for dd in 0..dim {
                    let t = xi[dd] - xj[dd];
                    d2.push(t * t);
                }
            }
        }
        DistanceCache { n, dim, d2 }
    }

    /// Number of points the cache currently covers.
    pub(crate) fn n(&self) -> usize {
        self.n
    }

    /// Grows the cache in place to cover `xs` (whose first `self.n` rows
    /// must be the points it was built over): appends the pair rows
    /// `(i, j ≤ i)` for `i ∈ [self.n, xs.len())` — (n+1)·dim entries per
    /// new point, identical values and order to a fresh `build`.
    pub(crate) fn append(&mut self, xs: &[Vec<f64>]) {
        assert!(xs.len() >= self.n, "DistanceCache::append: shrinking");
        if self.n == 0 {
            *self = DistanceCache::build(xs);
            return;
        }
        assert!(xs.iter().all(|x| x.len() == self.dim));
        self.d2
            .reserve((xs.len() * (xs.len() + 1) / 2 - self.n * (self.n + 1) / 2) * self.dim);
        for i in self.n..xs.len() {
            let xi = &xs[i];
            for xj in xs.iter().take(i + 1) {
                for dd in 0..self.dim {
                    let t = xi[dd] - xj[dd];
                    self.d2.push(t * t);
                }
            }
        }
        self.n = xs.len();
    }

    #[inline]
    fn n_pairs(&self) -> usize {
        self.n * (self.n + 1) / 2
    }

    /// Evaluates one latent kernel over all cached pairs: a weighted dot of
    /// the cached squared differences with `1/l²` replaces the per-pair
    /// distance rebuild of the naive path.
    fn packed(&self, kern: &ArdKernel) -> PackedKernel {
        let inv_l2 = kern.inv_lengthscales_sq();
        let np = self.n_pairs();
        let mut r2 = vec![0.0; np];
        let mut k = vec![0.0; np];
        for p in 0..np {
            let d2p = &self.d2[p * self.dim..(p + 1) * self.dim];
            let mut s = 0.0;
            for (a, b) in d2p.iter().zip(&inv_l2) {
                s += a * b;
            }
            r2[p] = s;
            k[p] = kern.eval_r2(s);
        }
        PackedKernel { r2, k }
    }
}

/// Task-pair coefficients `c_q(t, t') = a_{t,q} a_{t',q} + δ_{t,t'} b_{t,q}`
/// (paper Eq. 4), one flattened `T×T` block per latent function.
fn task_coeffs(hp: &LcmHyperparams) -> Vec<Vec<f64>> {
    let t = hp.n_tasks;
    (0..hp.q)
        .map(|qq| {
            let mut c = vec![0.0; t * t];
            for ti in 0..t {
                for tj in 0..t {
                    c[ti * t + tj] =
                        hp.a[qq][ti] * hp.a[qq][tj] + if ti == tj { hp.b[qq][ti] } else { 0.0 };
                }
            }
            c
        })
        .collect()
}

/// Assembles the `N × N` LCM covariance (paper Eq. 4) from packed per-pair
/// kernel values — the single covariance-assembly routine shared by the
/// final fit factorization and every likelihood evaluation.
fn assemble_covariance(
    task_of: &[usize],
    n_tasks: usize,
    coeffs: &[Vec<f64>],
    packed: &[PackedKernel],
    d: &[f64],
) -> Matrix {
    let n = task_of.len();
    let mut sigma = Matrix::zeros(n, n);
    for i in 0..n {
        let ti = task_of[i];
        let base = i * (i + 1) / 2;
        let row = &mut sigma.row_mut(i)[..=i];
        for (cq, pk) in coeffs.iter().zip(packed) {
            let crow = &cq[ti * n_tasks..(ti + 1) * n_tasks];
            let krow = &pk.k[base..=base + i];
            for ((s, &kv), &tj) in row.iter_mut().zip(krow).zip(&task_of[..=i]) {
                *s += crow[tj] * kv;
            }
        }
        row[i] += d[ti] + 1e-10;
    }
    // Mirror the lower triangle.
    for i in 0..n {
        for j in 0..i {
            let v = sigma.get(i, j);
            sigma.set(j, i, v);
        }
    }
    sigma
}

/// Shared per-fit context for likelihood evaluations: the training data,
/// the distance cache, and whether this evaluation may use the blocked
/// parallel Cholesky (only when no parallel restarts are in flight, to
/// avoid oversubscribing the rayon pool).
struct FitCtx<'a> {
    data: &'a LcmData<'a>,
    dists: &'a DistanceCache,
    parallel_chol: bool,
}

/// Distance-cached negative log marginal likelihood and gradient w.r.t. the
/// packed hyperparameters. Returns `+∞` (with NaN gradient) when the
/// covariance is not factorizable, which the L-BFGS line search treats as a
/// barrier.
///
/// Matches [`nll_and_grad_reference`] to ≤1e-12 (relative); the only
/// numerical differences are benign reassociations — `r²` as a weighted dot
/// of cached `(Δx)²` with `1/l²`, and per-latent gradient blocks reduced
/// from `M_q = W ∘ K_q` instead of element-at-a-time double loops.
fn nll_and_grad(ctx: &FitCtx<'_>, q: usize, theta: &[f64], grad: &mut [f64]) -> f64 {
    let data = ctx.data;
    let n = data.xs.len();
    let t = data.n_tasks;
    let hp = LcmHyperparams::unpack(q, t, data.dim, theta);

    // Guard against absurd hyperparameters that would overflow the kernel.
    if hp
        .lengthscales
        .iter()
        .flatten()
        .any(|&l| !(1e-6..=1e6).contains(&l))
        || hp.d.iter().chain(hp.b.iter().flatten()).any(|&v| v > 1e12)
    {
        grad.iter_mut().for_each(|g| *g = f64::NAN);
        return f64::INFINITY;
    }

    let kernels: Vec<ArdKernel> = (0..q)
        .map(|qq| ArdKernel::with_kind(data.kernel, hp.lengthscales[qq].clone()))
        .collect();
    let packed: Vec<PackedKernel> = kernels.iter().map(|k| ctx.dists.packed(k)).collect();
    let coeffs = task_coeffs(&hp);
    let sigma = assemble_covariance(data.task_of, t, &coeffs, &packed, &hp.d);

    let chol = if ctx.parallel_chol && n >= PARALLEL_CHOL_THRESHOLD {
        Cholesky::factor_parallel(&sigma, &CholeskyOptions::default())
    } else {
        Cholesky::factor(&sigma)
    };
    let chol = match chol {
        Ok(c) => c,
        Err(_) => {
            grad.iter_mut().for_each(|g| *g = f64::NAN);
            return f64::INFINITY;
        }
    };

    let alpha = chol.solve(data.y);
    let nll = 0.5 * data.y.iter().zip(&alpha).map(|(a, b)| a * b).sum::<f64>()
        + 0.5 * chol.log_det()
        + 0.5 * n as f64 * (2.0 * std::f64::consts::PI).ln();

    // W = Σ⁻¹ − α αᵀ, lower triangle only: `grad_block` and the noise
    // gradient below read just `w.row(i)[..=i]` and the diagonal, so the
    // upper mirror (and half the rank-1 update) is never materialized.
    let mut w = chol.inverse_lower();
    for (i, &ai) in alpha.iter().enumerate() {
        for (wv, &aj) in w.row_mut(i)[..=i].iter_mut().zip(&alpha[..=i]) {
            *wv -= ai * aj;
        }
    }

    grad.iter_mut().for_each(|g| *g = 0.0);
    let block = data.dim + 2 * t;
    // Per-latent (q, dim) gradient blocks in parallel; each block is an
    // independent single pass over the packed pairs, so results are
    // deterministic regardless of rayon scheduling.
    let blocks: Vec<Vec<f64>> = (0..q)
        .into_par_iter()
        .map(|qq| {
            grad_block(
                data,
                ctx.dists,
                &hp,
                qq,
                &kernels[qq],
                &packed[qq],
                &coeffs[qq],
                &w,
            )
        })
        .collect();
    for (qq, blk) in blocks.iter().enumerate() {
        grad[qq * block..(qq + 1) * block].copy_from_slice(blk);
    }
    // ∂Σ/∂ log d_r = d_r on the diagonal of task r.
    let wdiag = w.diagonal();
    let off = q * block;
    for r in 0..t {
        let mut g = 0.0;
        for (i, &ti) in data.task_of.iter().enumerate() {
            if ti == r {
                g += wdiag[i];
            }
        }
        grad[off + r] = 0.5 * g * hp.d[r];
    }

    nll
}

/// One latent function's gradient block `[∂/∂log l | ∂/∂a | ∂/∂log b]`,
/// reduced in a single pass over the packed lower-triangle pairs with
/// `M_q = W ∘ K_q` formed on the fly from row slices:
///
/// * lengthscales — `∂/∂log l_d = (Σ_p W c g(r²,k) · d2_p[d]) / l_d²`, the
///   diagonal included for free (its `d2` is zero and `g` is finite at 0);
/// * `a` — row sums `S[i][t'] = Σ_{j: t_j = t'} M_ij` give
///   `∂/∂a_r = Σ_{i: t_i = r} (S[i]·a_q)`;
/// * `b` — `∂/∂log b_r = 0.5 b_r Σ_{i: t_i = r} S[i][r]`.
#[allow(clippy::too_many_arguments)]
fn grad_block(
    data: &LcmData<'_>,
    dists: &DistanceCache,
    hp: &LcmHyperparams,
    qq: usize,
    kern: &ArdKernel,
    pk: &PackedKernel,
    cq: &[f64],
    w: &Matrix,
) -> Vec<f64> {
    let n = data.xs.len();
    let t = data.n_tasks;
    let dim = data.dim;
    let inv_l2 = kern.inv_lengthscales_sq();
    let mut gl = vec![0.0; dim];
    let mut srow = vec![0.0; n * t];
    for i in 0..n {
        let ti = data.task_of[i];
        let base = i * (i + 1) / 2;
        let wrow = &w.row(i)[..=i];
        let krow = &pk.k[base..=base + i];
        let r2row = &pk.r2[base..=base + i];
        let crow = &cq[ti * t..(ti + 1) * t];
        let d2row = &dists.d2[base * dim..(base + i + 1) * dim];
        for j in 0..=i {
            let tj = data.task_of[j];
            let wij = wrow[j];
            let kv = krow[j];
            let m = wij * kv;
            srow[i * t + tj] += m;
            if i != j {
                srow[j * t + ti] += m;
            }
            let s = wij * crow[tj] * kern.grad_factor_r2(r2row[j], kv);
            let d2p = &d2row[j * dim..(j + 1) * dim];
            for (g, &d2v) in gl.iter_mut().zip(d2p) {
                *g += s * d2v;
            }
        }
    }
    let mut blk = vec![0.0; dim + 2 * t];
    // Off-diagonal pairs appear twice in the full sum; the ×2 cancels the
    // 0.5 of the gradient formula, and z_d² = d2_d / l_d².
    for dd in 0..dim {
        blk[dd] = gl[dd] * inv_l2[dd];
    }
    let aq = &hp.a[qq];
    let mut gb = vec![0.0; t];
    for i in 0..n {
        let ti = data.task_of[i];
        let si = &srow[i * t..(i + 1) * t];
        let v: f64 = si.iter().zip(aq).map(|(s, a)| s * a).sum();
        blk[dim + ti] += v;
        gb[ti] += si[ti];
    }
    for r in 0..t {
        blk[dim + t + r] = 0.5 * gb[r] * hp.b[qq][r];
    }
    blk
}

/// Pre-refactor naive likelihood+gradient — retained verbatim as the
/// equivalence baseline and benchmark "before" for [`nll_and_grad`]. Every
/// distance, kernel value, and gradient term is re-derived pair-by-pair
/// with per-element matrix access, and the factorization/inverse go through
/// the retained scalar baselines ([`Cholesky::factor_reference`],
/// [`Cholesky::inverse_reference`]) rather than the vectorized kernels.
fn nll_and_grad_reference(data: &LcmData<'_>, q: usize, theta: &[f64], grad: &mut [f64]) -> f64 {
    let n = data.xs.len();
    let hp = LcmHyperparams::unpack(q, data.n_tasks, data.dim, theta);

    // Guard against absurd hyperparameters that would overflow the kernel.
    if hp
        .lengthscales
        .iter()
        .flatten()
        .any(|&l| !(1e-6..=1e6).contains(&l))
        || hp.d.iter().chain(hp.b.iter().flatten()).any(|&v| v > 1e12)
    {
        grad.iter_mut().for_each(|g| *g = f64::NAN);
        return f64::INFINITY;
    }

    // Per-latent kernel matrices (symmetric, stored dense).
    let kernels: Vec<ArdKernel> = (0..q)
        .map(|qq| ArdKernel::with_kind(data.kernel, hp.lengthscales[qq].clone()))
        .collect();
    let kmats: Vec<Matrix> = kernels
        .iter()
        .map(|kern| {
            let mut k = Matrix::zeros(n, n);
            for i in 0..n {
                for j in 0..=i {
                    let v = kern.eval(&data.xs[i], &data.xs[j]);
                    k.set(i, j, v);
                    k.set(j, i, v);
                }
            }
            k
        })
        .collect();

    // Σ assembly from the cached K_q.
    let mut sigma = Matrix::zeros(n, n);
    for qq in 0..q {
        for i in 0..n {
            let ti = data.task_of[i];
            for j in 0..=i {
                let tj = data.task_of[j];
                let coeff = hp.a[qq][ti] * hp.a[qq][tj] + if ti == tj { hp.b[qq][ti] } else { 0.0 };
                if !feq(coeff, 0.0) {
                    sigma.add_at(i, j, coeff * kmats[qq].get(i, j));
                }
            }
        }
    }
    for i in 0..n {
        for j in 0..i {
            let v = sigma.get(i, j);
            sigma.set(j, i, v);
        }
        sigma.add_at(i, i, hp.d[data.task_of[i]] + 1e-10);
    }

    // Pre-vectorization scalar factorization and inverse, so the baseline
    // stays the code the workspace actually ran before this refactor.
    let chol = match Cholesky::factor_reference(&sigma) {
        Ok(c) => c,
        Err(_) => {
            grad.iter_mut().for_each(|g| *g = f64::NAN);
            return f64::INFINITY;
        }
    };

    let alpha = chol.solve(data.y);
    let nll = 0.5 * data.y.iter().zip(&alpha).map(|(a, b)| a * b).sum::<f64>()
        + 0.5 * chol.log_det()
        + 0.5 * n as f64 * (2.0 * std::f64::consts::PI).ln();

    // W = Σ⁻¹ − α αᵀ; gradient of NLL w.r.t. θ_k is 0.5 Σ_ij W_ij ∂Σ_ij.
    let sinv = chol.inverse_reference();
    let mut w = sinv;
    for i in 0..n {
        for j in 0..n {
            w.add_at(i, j, -alpha[i] * alpha[j]);
        }
    }

    grad.iter_mut().for_each(|g| *g = 0.0);
    let mut off = 0;
    for qq in 0..q {
        let kq = &kmats[qq];
        // ∂Σ/∂ log l_d^q = coeff(i,j) · ∂K_q(i,j)/∂ log l_d (kernel-specific).
        let kern = &kernels[qq];
        for dd in 0..data.dim {
            let mut g = 0.0;
            for i in 0..n {
                let ti = data.task_of[i];
                for j in 0..i {
                    let tj = data.task_of[j];
                    let coeff =
                        hp.a[qq][ti] * hp.a[qq][tj] + if ti == tj { hp.b[qq][ti] } else { 0.0 };
                    if feq(coeff, 0.0) {
                        continue;
                    }
                    let dk = kern.grad_log_lengthscale(&data.xs[i], &data.xs[j], dd, kq.get(i, j));
                    // Off-diagonal pairs appear twice in the full sum.
                    g += w.get(i, j) * coeff * dk;
                }
                // Diagonal contribution has zero distance → zero gradient.
            }
            grad[off + dd] = 0.5 * 2.0 * g;
        }
        // ∂Σ/∂ a_{r,q} = (δ_{i,r} a_{j,q} + δ_{j,r} a_{i,q}) K_q(i,j).
        for r in 0..data.n_tasks {
            let mut g = 0.0;
            for i in 0..n {
                let ti = data.task_of[i];
                for j in 0..n {
                    let tj = data.task_of[j];
                    let da = if ti == r { hp.a[qq][tj] } else { 0.0 }
                        + if tj == r { hp.a[qq][ti] } else { 0.0 };
                    if !feq(da, 0.0) {
                        g += w.get(i, j) * da * kq.get(i, j);
                    }
                }
            }
            grad[off + data.dim + r] = 0.5 * g;
        }
        // ∂Σ/∂ log b_{r,q} = δ_{i,j-tasks} b_{r,q} K_q(i,j) on same-task pairs.
        for r in 0..data.n_tasks {
            let br = hp.b[qq][r];
            let mut g = 0.0;
            for i in 0..n {
                if data.task_of[i] != r {
                    continue;
                }
                for j in 0..n {
                    if data.task_of[j] != r {
                        continue;
                    }
                    g += w.get(i, j) * kq.get(i, j);
                }
            }
            grad[off + data.dim + data.n_tasks + r] = 0.5 * g * br;
        }
        off += data.dim + 2 * data.n_tasks;
    }
    // ∂Σ/∂ log d_r = d_r on the diagonal of task r.
    for r in 0..data.n_tasks {
        let dr = hp.d[r];
        let mut g = 0.0;
        for i in 0..n {
            if data.task_of[i] == r {
                g += w.get(i, i);
            }
        }
        grad[off + r] = 0.5 * g * dr;
    }

    nll
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_multitask_data(per_task: usize) -> (Vec<Vec<f64>>, Vec<usize>, Vec<f64>) {
        // Two related tasks: y = sin(2πx) + task·0.5, sampled on a grid.
        let mut xs = Vec::new();
        let mut tasks = Vec::new();
        let mut ys = Vec::new();
        for t in 0..2usize {
            for j in 0..per_task {
                let x = (j as f64 + 0.5) / per_task as f64;
                xs.push(vec![x]);
                tasks.push(t);
                ys.push((2.0 * std::f64::consts::PI * x).sin() + t as f64 * 0.5);
            }
        }
        (xs, tasks, ys)
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let (xs, tasks, ys) = toy_multitask_data(5);
        // Standardize y like fit does, so scales are sane.
        let mean = ys.iter().sum::<f64>() / ys.len() as f64;
        let std = (ys.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / ys.len() as f64).sqrt();
        let y: Vec<f64> = ys.iter().map(|v| (v - mean) / std).collect();

        let q = 2;
        let hp = LcmHyperparams {
            q,
            n_tasks: 2,
            dim: 1,
            lengthscales: vec![vec![0.3], vec![0.7]],
            a: vec![vec![0.8, -0.5], vec![0.2, 0.9]],
            b: vec![vec![0.01, 0.02], vec![0.03, 0.015]],
            d: vec![0.05, 0.04],
        };
        let theta = hp.pack();
        let mut grad = vec![0.0; theta.len()];
        let f0 = LcmModel::nll_at(&xs, &tasks, &y, 2, q, &theta, &mut grad);
        assert!(f0.is_finite());

        let h = 1e-6;
        for k in 0..theta.len() {
            let mut tp = theta.clone();
            tp[k] += h;
            let mut tm = theta.clone();
            tm[k] -= h;
            let mut dummy = vec![0.0; theta.len()];
            let fp = LcmModel::nll_at(&xs, &tasks, &y, 2, q, &tp, &mut dummy);
            let fm = LcmModel::nll_at(&xs, &tasks, &y, 2, q, &tm, &mut dummy);
            let fd = (fp - fm) / (2.0 * h);
            assert!(
                (grad[k] - fd).abs() < 1e-4 * (1.0 + fd.abs()),
                "param {k}: analytic {} vs fd {fd}",
                grad[k]
            );
        }
    }

    #[test]
    fn matern_gradient_matches_finite_differences() {
        let (xs, tasks, ys) = toy_multitask_data(5);
        let mean = ys.iter().sum::<f64>() / ys.len() as f64;
        let std = (ys.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / ys.len() as f64).sqrt();
        let y: Vec<f64> = ys.iter().map(|v| (v - mean) / std).collect();
        let hp = LcmHyperparams {
            q: 1,
            n_tasks: 2,
            dim: 1,
            lengthscales: vec![vec![0.35]],
            a: vec![vec![0.8, -0.5]],
            b: vec![vec![0.01, 0.02]],
            d: vec![0.05, 0.04],
        };
        let theta = hp.pack();
        let mut grad = vec![0.0; theta.len()];
        let f0 = LcmModel::nll_at_with_kernel(
            &xs,
            &tasks,
            &y,
            2,
            1,
            KernelKind::Matern52,
            &theta,
            &mut grad,
        );
        assert!(f0.is_finite());
        let h = 1e-6;
        for k in 0..theta.len() {
            let mut tp = theta.clone();
            tp[k] += h;
            let mut tm = theta.clone();
            tm[k] -= h;
            let mut dummy = vec![0.0; theta.len()];
            let fp = LcmModel::nll_at_with_kernel(
                &xs,
                &tasks,
                &y,
                2,
                1,
                KernelKind::Matern52,
                &tp,
                &mut dummy,
            );
            let fm = LcmModel::nll_at_with_kernel(
                &xs,
                &tasks,
                &y,
                2,
                1,
                KernelKind::Matern52,
                &tm,
                &mut dummy,
            );
            let fd = (fp - fm) / (2.0 * h);
            assert!(
                (grad[k] - fd).abs() < 1e-4 * (1.0 + fd.abs()),
                "param {k}: analytic {} vs fd {fd}",
                grad[k]
            );
        }
    }

    #[test]
    fn fit_with_matern_kernel_interpolates() {
        let (xs, tasks, ys) = toy_multitask_data(10);
        let opts = LcmFitOptions {
            kernel: KernelKind::Matern52,
            ..Default::default()
        };
        let model = LcmModel::fit(&xs, &tasks, &ys, 2, &opts);
        for (i, x) in xs.iter().enumerate() {
            let p = model.predict(tasks[i], x);
            assert!(
                (p.mean - ys[i]).abs() < 0.2,
                "at {x:?}: {} vs {}",
                p.mean,
                ys[i]
            );
        }
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let hp = LcmHyperparams {
            q: 2,
            n_tasks: 3,
            dim: 2,
            lengthscales: vec![vec![0.3, 1.2], vec![0.7, 0.1]],
            a: vec![vec![0.8, -0.5, 0.1], vec![0.2, 0.9, -1.3]],
            b: vec![vec![0.01, 0.02, 0.5], vec![0.03, 0.015, 0.2]],
            d: vec![0.05, 0.04, 0.001],
        };
        let theta = hp.pack();
        assert_eq!(theta.len(), hp.n_params());
        let back = LcmHyperparams::unpack(2, 3, 2, &theta);
        for q in 0..2 {
            for d in 0..2 {
                assert!((back.lengthscales[q][d] - hp.lengthscales[q][d]).abs() < 1e-12);
            }
            for t in 0..3 {
                assert!((back.a[q][t] - hp.a[q][t]).abs() < 1e-12);
                assert!((back.b[q][t] - hp.b[q][t]).abs() < 1e-12);
            }
        }
        for t in 0..3 {
            assert!((back.d[t] - hp.d[t]).abs() < 1e-12);
        }
    }

    #[test]
    fn fit_interpolates_smooth_function() {
        let (xs, tasks, ys) = toy_multitask_data(10);
        let model = LcmModel::fit(&xs, &tasks, &ys, 2, &LcmFitOptions::default());
        // Predict near training points: error and variance should be small.
        for (i, x) in xs.iter().enumerate() {
            let p = model.predict(tasks[i], x);
            assert!(
                (p.mean - ys[i]).abs() < 0.15,
                "at x={:?}: pred {} vs true {}",
                x,
                p.mean,
                ys[i]
            );
        }
        // Far from data (extrapolating in-between is fine; check variance
        // at a training point is below variance at a fresh midpoint).
        let p_train = model.predict(0, &xs[3]);
        let p_new = model.predict(0, &[xs[3][0] + 0.049]);
        assert!(p_train.variance <= p_new.variance + 1e-9);
    }

    #[test]
    fn multitask_transfers_information() {
        // Task 0 densely sampled; task 1 has only 3 samples of the SAME
        // function. LCM prediction on task 1 should beat a constant-mean
        // baseline thanks to transfer through the shared latent GP.
        let f = |x: f64| (2.0 * std::f64::consts::PI * x).sin();
        let mut xs = Vec::new();
        let mut tasks = Vec::new();
        let mut ys = Vec::new();
        for j in 0..12 {
            let x = (j as f64 + 0.5) / 12.0;
            xs.push(vec![x]);
            tasks.push(0usize);
            ys.push(f(x));
        }
        for &x in &[0.1, 0.5, 0.9] {
            xs.push(vec![x]);
            tasks.push(1usize);
            ys.push(f(x));
        }
        let model = LcmModel::fit(&xs, &tasks, &ys, 2, &LcmFitOptions::default());
        let mut err = 0.0;
        let mut base = 0.0;
        let y1mean = (f(0.1) + f(0.5) + f(0.9)) / 3.0;
        for j in 0..20 {
            let x = (j as f64 + 0.5) / 20.0;
            let p = model.predict(1, &[x]);
            err += (p.mean - f(x)).powi(2);
            base += (y1mean - f(x)).powi(2);
        }
        assert!(err < base * 0.5, "transfer err {err} vs baseline {base}");
    }

    #[test]
    fn handles_non_finite_outputs() {
        let (xs, tasks, mut ys) = toy_multitask_data(6);
        ys[3] = f64::INFINITY;
        ys[7] = f64::NAN;
        let model = LcmModel::fit(&xs, &tasks, &ys, 2, &LcmFitOptions::default());
        let p = model.predict(0, &[0.5]);
        assert!(p.mean.is_finite());
        assert!(p.variance.is_finite() && p.variance >= 0.0);
    }

    #[test]
    fn best_observed_tracks_minimum() {
        let (xs, tasks, ys) = toy_multitask_data(8);
        let model = LcmModel::fit(&xs, &tasks, &ys, 2, &LcmFitOptions::default());
        let m0 = model.best_observed(0).unwrap();
        let true_min = ys
            .iter()
            .zip(&tasks)
            .filter(|(_, t)| **t == 0)
            .map(|(y, _)| *y)
            .fold(f64::INFINITY, f64::min);
        assert!((m0 - true_min).abs() < 1e-9 * (1.0 + true_min.abs()));
    }

    #[test]
    fn single_point_single_task() {
        let model = LcmModel::fit(
            &[vec![0.5]],
            &[0],
            &[3.0],
            1,
            &LcmFitOptions {
                n_starts: 1,
                ..Default::default()
            },
        );
        let p = model.predict(0, &[0.5]);
        assert!((p.mean - 3.0).abs() < 0.5);
    }

    #[test]
    fn loo_diagnostics_sane_on_smooth_data() {
        let (xs, tasks, ys) = toy_multitask_data(12);
        let model = LcmModel::fit(&xs, &tasks, &ys, 2, &LcmFitOptions::default());
        let (rmse, calib) = model.loo_diagnostics();
        // Smooth noiseless data: LOO error well under the unit output std.
        assert!(rmse < 0.6, "rmse {rmse}");
        assert!(calib.is_finite() && calib > 0.0, "calibration {calib}");
        // LOO must be worse on pure-noise data than on smooth data.
        let noise_y: Vec<f64> = (0..ys.len())
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let noisy = LcmModel::fit(&xs, &tasks, &noise_y, 2, &LcmFitOptions::default());
        let (rmse_noise, _) = noisy.loo_diagnostics();
        assert!(rmse_noise > rmse, "{rmse_noise} vs {rmse}");
    }

    #[test]
    fn condition_number_reported() {
        let (xs, tasks, ys) = toy_multitask_data(6);
        let model = LcmModel::fit(&xs, &tasks, &ys, 2, &LcmFitOptions::default());
        let cond = model.covariance_condition_number();
        assert!(cond >= 1.0 && cond.is_finite(), "cond {cond}");
    }

    #[test]
    fn q_clamped_to_task_count() {
        let (xs, tasks, ys) = toy_multitask_data(4);
        let model = LcmModel::fit(
            &xs,
            &tasks,
            &ys,
            2,
            &LcmFitOptions {
                q: 10,
                ..Default::default()
            },
        );
        assert_eq!(model.hyperparams().q, 2);
    }
}
