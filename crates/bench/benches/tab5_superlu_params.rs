//! Table 5 — default vs single-objective-optimal SuperLU_DIST parameters
//! on the matrix Si2 (paper Sec. 6.7).
//!
//! Paper: with ε_tot = 80 on 8 Cori nodes, the time-optimal and
//! memory-optimal configurations differ vastly from the defaults
//! (COLPERM 4→2, NSUP 128→295 for time / 128→31 for memory, …), and tuning
//! achieves "83% improvement in time or 93% improvement in memory".
//!
//! This harness runs the same protocol: single-objective MLA once per
//! objective with ε_tot = 80, then prints the three parameter rows and the
//! achieved (time, memory) of each.

use gptune::apps::{HpcApp, MachineModel, SuperluApp};
use gptune::core::{mla, MlaOptions};
use gptune::problem_from_app_objective;
use gptune::space::Value;
use gptune_bench::banner;
use std::sync::Arc;

fn fmt_config(c: &[Value]) -> String {
    format!(
        "{:>8} {:>6} {:>6} {:>6} {:>6} {:>6}",
        c[0].as_cat(),
        c[1].as_int(),
        c[2].as_int(),
        c[3].as_int(),
        c[4].as_int(),
        c[5].as_int()
    )
}

fn main() {
    banner(
        "Table 5 — SuperLU_DIST default vs tuned parameters (Si2)",
        "ε_tot=80, 8 Cori nodes; separate time-optimal and memory-optimal rows",
        "identical protocol on the simulated SuperLU_DIST",
    );

    let app: Arc<dyn HpcApp> = Arc::new(SuperluApp::new(MachineModel::cori(8)));
    let tasks = SuperluApp::tasks(1); // Si2
    let default_cfg = app.default_config().unwrap();
    let default_out = app.evaluate(&tasks[0], &default_cfg, 0);

    let mut opts = MlaOptions::default().with_budget(80).with_seed(55);
    opts.lcm.n_starts = 3;
    opts.lcm.lbfgs.max_iters = 25;

    let mut rows: Vec<(String, Vec<Value>, Vec<f64>)> =
        vec![("Default".into(), default_cfg.clone(), default_out.clone())];
    for (idx, label) in [(0usize, "Time"), (1usize, "Memory")] {
        let problem = problem_from_app_objective(Arc::clone(&app), tasks.clone(), idx);
        let r = mla::tune(&problem, &opts);
        let cfg = r.per_task[0].best_config.clone();
        let out = app.evaluate(&tasks[0], &cfg, 0);
        rows.push((label.to_string(), cfg, out));
    }

    println!(
        "\n{:<10} {:>8} {:>6} {:>6} {:>6} {:>6} {:>6} | {:>10} {:>12}",
        "", "COLPERM", "LOOK", "p", "p_r", "NSUP", "NREL", "time (s)", "memory (MB)"
    );
    for (label, cfg, out) in &rows {
        println!(
            "{:<10} {} | {:>10.4} {:>12.2}",
            label,
            fmt_config(cfg),
            out[0],
            out[1]
        );
    }

    let t_impr = 100.0 * (1.0 - rows[1].2[0] / rows[0].2[0]);
    let m_impr = 100.0 * (1.0 - rows[2].2[1] / rows[0].2[1]);
    println!(
        "\nimprovement vs default: time {:.0}% (paper: 83%), memory {:.0}% (paper: 93%)",
        t_impr, m_impr
    );
    println!("\nShape check vs paper: the tuned rows differ sharply from the defaults, the");
    println!("time-optimal NSUP is much larger than the memory-optimal NSUP, and both tuned");
    println!("rows improve their own objective substantially over the default.");
}
