//! The held-while-acquiring lock-order graph and its cycle detection.
//!
//! Nodes are named locks; an edge `a -> b` means some call path acquires
//! `b` while holding `a`. Each edge keeps the first witness chain found
//! (deterministic: functions are visited in file order). A cycle in this
//! graph is a potential deadlock (GX701); a self-loop is a double-acquire
//! of a non-reentrant lock (GX703).

use crate::summary::Chain;
use std::collections::BTreeMap;

/// One held-while-acquiring edge with its witness acquisition path.
#[derive(Debug, Clone)]
pub struct Edge {
    pub from: String,
    pub to: String,
    /// Chain from the function that holds `from` down to the acquisition
    /// of `to`.
    pub witness: Chain,
}

/// The workspace lock-order graph.
#[derive(Debug, Default)]
pub struct LockGraph {
    /// Keyed `(from, to)`; first witness wins.
    edges: BTreeMap<(String, String), Chain>,
}

impl LockGraph {
    /// Records `from -> to` unless an identical edge already has a
    /// witness. Self-loops are stored too — they are GX703's evidence.
    pub fn add(&mut self, from: &str, to: &str, witness: Chain) {
        self.edges
            .entry((from.to_string(), to.to_string()))
            .or_insert(witness);
    }

    /// All edges, sorted by `(from, to)`.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.edges.iter().map(|((from, to), witness)| Edge {
            from: from.clone(),
            to: to.clone(),
            witness: witness.clone(),
        })
    }

    /// Witness for one edge, if present.
    pub fn witness(&self, from: &str, to: &str) -> Option<&Chain> {
        self.edges.get(&(from.to_string(), to.to_string()))
    }

    /// All node names, sorted.
    pub fn nodes(&self) -> Vec<String> {
        let mut nodes: Vec<String> = self
            .edges
            .keys()
            .flat_map(|(a, b)| [a.clone(), b.clone()])
            .collect();
        nodes.sort();
        nodes.dedup();
        nodes
    }

    /// Elementary cycles (length ≥ 2), each reported once, rooted at its
    /// lexicographically smallest node. Self-loops are excluded — GX703
    /// reads them straight off the edge set.
    pub fn cycles(&self) -> Vec<Vec<String>> {
        let nodes = self.nodes();
        let succ = |n: &str| -> Vec<String> {
            self.edges
                .keys()
                .filter(|(a, _)| a == n)
                .map(|(_, b)| b.clone())
                .collect()
        };
        let mut cycles = Vec::new();
        for start in &nodes {
            let mut path = vec![start.clone()];
            dfs(start, start, &succ, &mut path, &mut cycles);
        }
        cycles
    }

    /// Self-loop edges `a -> a` (double-acquire witnesses).
    pub fn self_loops(&self) -> Vec<(String, Chain)> {
        self.edges
            .iter()
            .filter(|((a, b), _)| a == b)
            .map(|((a, _), w)| (a.clone(), w.clone()))
            .collect()
    }
}

/// DFS enumerating elementary cycles through `start`, visiting only
/// nodes lexicographically greater than `start` (so each cycle is found
/// exactly once, rooted at its smallest node). Path length capped at 8.
fn dfs(
    start: &str,
    at: &str,
    succ: &dyn Fn(&str) -> Vec<String>,
    path: &mut Vec<String>,
    cycles: &mut Vec<Vec<String>>,
) {
    if path.len() > 8 {
        return;
    }
    for next in succ(at) {
        if next == start && path.len() >= 2 {
            cycles.push(path.clone());
        } else if next.as_str() > start && !path.contains(&next) {
            path.push(next.clone());
            dfs(start, &next, succ, path, cycles);
            path.pop();
        }
    }
}

/// Text rendering of the graph: one line per edge with its witness.
pub fn render_text(graph: &LockGraph) -> String {
    let mut out = String::from("lock-order graph (held -> acquired):\n");
    let edges: Vec<Edge> = graph.edges().collect();
    if edges.is_empty() {
        out.push_str("  (no held-while-acquiring edges)\n");
        return out;
    }
    for e in &edges {
        out.push_str(&format!("  {} -> {}\n", e.from, e.to));
        for f in &e.witness {
            out.push_str(&format!("      via {f}\n"));
        }
    }
    out
}

/// DOT rendering for `dot -Tsvg` consumption.
pub fn render_dot(graph: &LockGraph) -> String {
    let mut out = String::from("digraph lock_order {\n  rankdir=LR;\n");
    for n in graph.nodes() {
        out.push_str(&format!("  \"{n}\";\n"));
    }
    for e in graph.edges() {
        let label = e
            .witness
            .first()
            .map(|f| format!("{}:{}", f.path, f.line))
            .unwrap_or_default();
        out.push_str(&format!(
            "  \"{}\" -> \"{}\" [label=\"{label}\"];\n",
            e.from, e.to
        ));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::Frame;

    fn frame(func: &str) -> Chain {
        vec![Frame {
            path: "crates/x/src/a.rs".into(),
            line: 1,
            func: func.into(),
            what: "acquires".into(),
        }]
    }

    #[test]
    fn two_cycle_found_once() {
        let mut g = LockGraph::default();
        g.add("a", "b", frame("f"));
        g.add("b", "a", frame("g"));
        g.add("a", "c", frame("h"));
        let cycles = g.cycles();
        assert_eq!(cycles, vec![vec!["a".to_string(), "b".to_string()]]);
    }

    #[test]
    fn three_cycle_rooted_at_smallest() {
        let mut g = LockGraph::default();
        g.add("b", "c", frame("f"));
        g.add("c", "a", frame("g"));
        g.add("a", "b", frame("h"));
        let cycles = g.cycles();
        assert_eq!(
            cycles,
            vec![vec!["a".to_string(), "b".to_string(), "c".to_string()]]
        );
    }

    #[test]
    fn self_loops_are_not_cycles() {
        let mut g = LockGraph::default();
        g.add("a", "a", frame("f"));
        assert!(g.cycles().is_empty());
        assert_eq!(g.self_loops().len(), 1);
    }

    #[test]
    fn acyclic_graph_is_clean() {
        let mut g = LockGraph::default();
        g.add("sessions", "entry", frame("f"));
        g.add("entry", "db_advisory", frame("g"));
        assert!(g.cycles().is_empty());
    }
}
