//! Quickstart: multitask tuning of the paper's analytical objective
//! (Eq. 11) — the "Minimizing the analytical function" example of the
//! paper's artifact (Appendix A.4, example 1), extended to several tasks.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use gptune::apps::{AnalyticalApp, HpcApp};
use gptune::core::{mla, MlaOptions};
use gptune::problem_from_app;
use gptune::space::Value;
use std::sync::Arc;

fn main() {
    // Four tasks of increasing difficulty (larger t → wilder objective;
    // the oscillation frequency grows like (t+2)^5, which is why the
    // paper's Fig. 4 brings in performance models for the large-t tasks).
    let tasks: Vec<Vec<Value>> = [0.0, 0.5, 1.0, 1.5]
        .iter()
        .map(|&t| vec![Value::Real(t)])
        .collect();

    let app: Arc<dyn HpcApp> = Arc::new(AnalyticalApp::new(0.0));
    let problem = problem_from_app(Arc::clone(&app), tasks.clone());

    let mut opts = MlaOptions::default().with_budget(24).with_seed(42);
    opts.log_objective = false; // the analytical objective is not a runtime
    opts.lcm.n_starts = 4;

    println!("GPTune-rs quickstart: multitask MLA on the Eq. 11 analytical function");
    println!(
        "δ = {} tasks, ε_tot = {} evaluations per task\n",
        tasks.len(),
        opts.eps_total
    );

    let result = mla::tune(&problem, &opts);

    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>9}",
        "t", "x_opt", "y_found", "y_true", "gap"
    );
    for tr in &result.per_task {
        let t = tr.task[0].as_real();
        let (_, y_true) = AnalyticalApp::true_minimum(t, 100_000);
        println!(
            "{:>6.1} {:>12.6} {:>12.6} {:>12.6} {:>9.4}",
            t,
            tr.best_config[0].as_real(),
            tr.best_value,
            y_true,
            tr.best_value - y_true
        );
    }
    println!("\n{}", result.stats.report());
}
