//! Property-based tests for the optimizer substrate.

use gptune_opt::nsga2::{crowding_distance, dominates, non_dominated_sort, pareto_front_indices};
use gptune_opt::{de, ga, nelder_mead, pso, random_search, sa};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn objvecs(n: usize, m: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(proptest::collection::vec(0.0f64..10.0, m), n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dominance_is_strict_partial_order(objs in objvecs(8, 3)) {
        for a in &objs {
            // Irreflexive.
            prop_assert!(!dominates(a, a));
            for b in &objs {
                // Asymmetric.
                if dominates(a, b) {
                    prop_assert!(!dominates(b, a));
                }
                for c in &objs {
                    // Transitive.
                    if dominates(a, b) && dominates(b, c) {
                        prop_assert!(dominates(a, c));
                    }
                }
            }
        }
    }

    #[test]
    fn sort_partitions_and_ranks_correctly(objs in objvecs(20, 2)) {
        let fronts = non_dominated_sort(&objs);
        // Partition.
        let mut all: Vec<usize> = fronts.iter().flatten().cloned().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..objs.len()).collect::<Vec<_>>());
        // Front 0 is mutually non-dominated and undominated globally.
        for &i in &fronts[0] {
            for (j, o) in objs.iter().enumerate() {
                if i != j {
                    prop_assert!(!dominates(o, &objs[i]), "{j} dominates front-0 member {i}");
                }
            }
        }
        // Every member of front k>0 is dominated by someone in front k−1.
        for k in 1..fronts.len() {
            for &i in &fronts[k] {
                let dominated_by_prev = fronts[k - 1]
                    .iter()
                    .any(|&p| dominates(&objs[p], &objs[i]));
                prop_assert!(dominated_by_prev, "front {k} member {i} not dominated by front {}", k - 1);
            }
        }
    }

    #[test]
    fn pareto_front_indices_are_front_zero(objs in objvecs(15, 3)) {
        let mut a = pareto_front_indices(&objs);
        let mut b = non_dominated_sort(&objs).remove(0);
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn crowding_nonnegative_with_infinite_extremes(objs in objvecs(10, 2)) {
        let front = pareto_front_indices(&objs);
        let cd = crowding_distance(&objs, &front);
        prop_assert_eq!(cd.len(), front.len());
        for v in &cd {
            prop_assert!(*v >= 0.0 || v.is_infinite());
            prop_assert!(!v.is_nan());
        }
        if front.len() >= 2 {
            prop_assert!(cd.iter().any(|v| v.is_infinite()));
        }
    }

    #[test]
    fn optimizers_stay_in_unit_box(seed in 0u64..100, target in 0.0f64..1.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut f = |x: &[f64]| (x[0] - target).powi(2) + (x[1] - target).powi(2);
        let check = |x: &[f64]| x.iter().all(|v| (0.0..=1.0).contains(v));

        let r = pso::minimize(&mut f, 2, &[], &pso::PsoOptions { particles: 10, iters: 5, ..Default::default() }, &mut rng);
        prop_assert!(check(&r.x));
        let r = de::minimize(&mut f, 2, &[], &de::DeOptions { population: 8, generations: 5, ..Default::default() }, &mut rng);
        prop_assert!(check(&r.x));
        let r = ga::minimize(&mut f, 2, &[], &ga::GaOptions { population: 8, generations: 5, ..Default::default() }, &mut rng);
        prop_assert!(check(&r.x));
        let r = sa::minimize(&mut f, 2, None, &sa::SaOptions { iters: 30, ..Default::default() }, &mut rng);
        prop_assert!(check(&r.x));
        let r = nelder_mead::minimize(&mut f, &[0.5, 0.5], &nelder_mead::NelderMeadOptions { max_evals: 40, ..Default::default() });
        prop_assert!(check(&r.x));
        let r = random_search::random_search(&mut f, 2, 20, &mut rng);
        prop_assert!(check(&r.x));
    }

    #[test]
    fn optimizer_result_never_worse_than_seed(seed in 0u64..60) {
        // With the incumbent injected, PSO/DE/GA must return a value no
        // worse than the seed's.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut f = |x: &[f64]| (x[0] - 0.37).powi(2);
        let seed_pt = vec![0.37];
        let seed_val = f(&seed_pt);

        let r = pso::minimize(&mut f, 1, std::slice::from_ref(&seed_pt), &pso::PsoOptions { particles: 6, iters: 4, ..Default::default() }, &mut rng);
        prop_assert!(r.value <= seed_val + 1e-15);
        let r = de::minimize(&mut f, 1, std::slice::from_ref(&seed_pt), &de::DeOptions { population: 6, generations: 4, ..Default::default() }, &mut rng);
        prop_assert!(r.value <= seed_val + 1e-15);
        let r = ga::minimize(&mut f, 1, std::slice::from_ref(&seed_pt), &ga::GaOptions { population: 6, generations: 4, elites: 1, ..Default::default() }, &mut rng);
        prop_assert!(r.value <= seed_val + 1e-15);
    }
}
