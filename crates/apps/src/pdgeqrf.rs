//! ScaLAPACK PDGEQRF (dense QR factorization) simulator.
//!
//! Task `t = [m, n]`, tuning `x = [b_r, b_c, p, p_r]` exactly as in paper
//! Sec. 6.2, with the process-grid constraint `p_r ≤ p` and derived
//! quantities `p_c = ⌊p/p_r⌋`, `nthreads = ⌊p_max/p⌋` (Sec. 2).
//!
//! The *coarse* performance model exposed through
//! [`HpcApp::model_features`] is the paper's own Eqs. 8–10 (flop count,
//! message count, message volume from the communication-avoiding QR
//! analysis of Demmel et al.). The *true* simulated runtime layers on the
//! effects the coarse model misses — block-size BLAS-efficiency ramps,
//! panel/trailing load imbalance, sub-linear thread scaling and run-to-run
//! noise — so tuning the simulator reproduces the structure of tuning the
//! real code: a non-trivial optimum in `(b_r, b_c, p, p_r)` that the coarse
//! model predicts only approximately.

use crate::{noise, HpcApp, MachineModel};
use gptune_space::{Config, Param, Space, Value};

/// PDGEQRF simulator bound to a machine.
pub struct PdgeqrfApp {
    machine: MachineModel,
    task_space: Space,
    tuning_space: Space,
}

impl PdgeqrfApp {
    /// Creates the app on the given machine; matrix dimensions may range up
    /// to `max_dim` (the paper uses `m, n < 20000` or `< 40000`).
    pub fn new(machine: MachineModel, max_dim: i64) -> PdgeqrfApp {
        let p_max = machine.total_cores() as i64;
        let task_space = Space::builder()
            .param(Param::int("m", 128, max_dim))
            .param(Param::int("n", 128, max_dim))
            .build();
        let tuning_space = Space::builder()
            .param(Param::int_log("b_r", 4, 512))
            .param(Param::int_log("b_c", 4, 512))
            .param(Param::int_log("p", 1, p_max))
            .param(Param::int_log("p_r", 1, p_max))
            .constraint("p_r<=p", |c| c[3].as_int() <= c[2].as_int())
            .build();
        PdgeqrfApp {
            machine,
            task_space,
            tuning_space,
        }
    }

    /// The machine this instance simulates.
    pub fn machine(&self) -> &MachineModel {
        &self.machine
    }

    /// Classical QR flop count `2mn² − 2n³/3` (used to sort tasks in
    /// Fig. 5 left).
    pub fn flops(m: f64, n: f64) -> f64 {
        2.0 * m * n * n - 2.0 * n * n * n / 3.0
    }

    /// Eqs. 8–10 cost terms `(C_flop, C_msg, C_vol)` with `b = b_r`.
    ///
    /// The CAQR analysis behind Eqs. 8–10 assumes a tall matrix (`m ≥ n`);
    /// for wide inputs the same work is done on the transposed problem
    /// (the LQ-equivalent factorization), so dimensions are swapped first —
    /// without this the flop term goes negative when `n > 3m`.
    pub fn cost_terms(m: f64, n: f64, b_r: f64, p: f64, p_r: f64) -> (f64, f64, f64) {
        let (m, n) = if m >= n { (m, n) } else { (n, m) };
        let p_c = (p / p_r).floor().max(1.0);
        let log_pr = p_r.max(2.0).log2();
        let log_pc = p_c.max(2.0).log2();
        let c_flop = 2.0 * n * n * (3.0 * m - n) / (3.0 * 2.0 * p)
            + b_r * n * n / (2.0 * p_c)
            + 3.0 * b_r * n * (2.0 * m - n) / (2.0 * p_r)
            + b_r * b_r * n / (3.0 * p_r);
        let c_msg = 3.0 * n * log_pr + 2.0 * n / b_r * log_pc;
        let c_vol = (n * n / p_c + b_r * n) * log_pr
            + ((m * n - n * n / 2.0) / p_r + b_r * n / 2.0) * log_pc;
        (c_flop, c_msg, c_vol)
    }

    /// Deterministic (noise-free) simulated runtime.
    pub fn runtime_model(&self, m: f64, n: f64, b_r: f64, b_c: f64, p: f64, p_r: f64) -> f64 {
        let p_max = self.machine.total_cores() as f64;
        let p_c = (p / p_r).floor().max(1.0);
        let nthreads = (p_max / p).floor().max(1.0);
        let (c_flop, c_msg, c_vol) = Self::cost_terms(m, n, b_r, p, p_r);
        // Imbalance reasoning below also assumes the tall orientation.
        let (m, n) = if m >= n { (m, n) } else { (n, m) };

        // Effects the coarse model does not capture:
        // 1. BLAS-3 efficiency ramps with the blocking factors.
        let eff_b = self.machine.block_efficiency((b_r * b_c).sqrt());
        // 2. Threaded BLAS inside each process scales sub-linearly.
        let eff_t = self.machine.thread_efficiency(nthreads as usize);
        // 3. Block-cyclic load imbalance grows when blocks are large
        //    relative to the local matrix.
        let imbalance = (1.0 + b_r * p_r / m) * (1.0 + b_c * p_c / n);
        // 4. Very tall/flat grids pay extra synchronization on the long
        //    dimension (collectives over more ranks per column/row).
        let aspect = 1.0 + 0.02 * ((p_r / p_c).ln()).abs();

        let t_comp = c_flop / (self.machine.flop_rate * eff_b * eff_t) * imbalance;
        let t_comm = (c_msg * self.machine.latency + c_vol * 8.0 * self.machine.time_per_word)
            * aspect
            * nthreads.sqrt(); // idle threads don't help communication
        t_comp + t_comm
    }
}

impl HpcApp for PdgeqrfApp {
    fn name(&self) -> &str {
        "pdgeqrf"
    }

    fn task_space(&self) -> &Space {
        &self.task_space
    }

    fn tuning_space(&self) -> &Space {
        &self.tuning_space
    }

    fn evaluate(&self, task: &[Value], config: &[Value], seed: u64) -> Vec<f64> {
        if !self.tuning_space.is_valid(config) {
            return vec![f64::INFINITY];
        }
        let (m, n) = (task[0].as_int() as f64, task[1].as_int() as f64);
        let b_r = config[0].as_int() as f64;
        let b_c = config[1].as_int() as f64;
        let p = config[2].as_int() as f64;
        let p_r = config[3].as_int() as f64;
        let t = self.runtime_model(m, n, b_r, b_c, p, p_r);
        let f = noise::lognormal_factor(
            noise::hash_point(task, config, seed),
            self.machine.noise_sigma,
        );
        vec![t * f]
    }

    fn model_features(&self, task: &[Value], config: &[Value]) -> Option<Vec<f64>> {
        let (m, n) = (task[0].as_int() as f64, task[1].as_int() as f64);
        let b_r = config[0].as_int() as f64;
        let p = config[2].as_int() as f64;
        let p_r = config[3].as_int() as f64;
        let (c_flop, c_msg, c_vol) = Self::cost_terms(m, n, b_r, p, p_r);
        Some(vec![c_flop, c_msg, c_vol])
    }

    fn default_config(&self) -> Option<Config> {
        // ScaLAPACK-ish defaults: 32×32 blocks, all processes, square-ish grid.
        let p = self.machine.total_cores() as i64;
        let p_r = (p as f64).sqrt() as i64;
        Some(vec![
            Value::Int(32),
            Value::Int(32),
            Value::Int(p),
            Value::Int(p_r.max(1)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app() -> PdgeqrfApp {
        PdgeqrfApp::new(MachineModel::cori_noiseless(4), 40000)
    }

    fn cfg(b_r: i64, b_c: i64, p: i64, p_r: i64) -> Vec<Value> {
        vec![
            Value::Int(b_r),
            Value::Int(b_c),
            Value::Int(p),
            Value::Int(p_r),
        ]
    }

    #[test]
    fn bigger_problems_take_longer() {
        let a = app();
        let c = cfg(64, 64, 128, 8);
        let small = a.evaluate(&[Value::Int(2000), Value::Int(2000)], &c, 0)[0];
        let large = a.evaluate(&[Value::Int(16000), Value::Int(16000)], &c, 0)[0];
        assert!(large > small * 8.0, "small {small} large {large}");
    }

    #[test]
    fn parallelism_helps_large_problems() {
        let a = app();
        let t = vec![Value::Int(20000), Value::Int(20000)];
        let serial = a.evaluate(&t, &cfg(64, 64, 1, 1), 0)[0];
        let parallel = a.evaluate(&t, &cfg(64, 64, 128, 16), 0)[0];
        assert!(
            parallel < serial / 4.0,
            "serial {serial} parallel {parallel}"
        );
    }

    #[test]
    fn block_size_has_interior_optimum() {
        let a = app();
        let t = vec![Value::Int(10000), Value::Int(10000)];
        let tiny = a.evaluate(&t, &cfg(4, 4, 128, 8), 0)[0];
        let mid = a.evaluate(&t, &cfg(64, 64, 128, 8), 0)[0];
        let huge = a.evaluate(&t, &cfg(512, 512, 128, 8), 0)[0];
        assert!(mid < tiny, "mid {mid} tiny {tiny}");
        assert!(mid < huge, "mid {mid} huge {huge}");
    }

    #[test]
    fn grid_shape_matters() {
        let a = app();
        let t = vec![Value::Int(20000), Value::Int(20000)];
        let square = a.evaluate(&t, &cfg(64, 64, 128, 8), 0)[0]; // 8x16
        let degenerate = a.evaluate(&t, &cfg(64, 64, 128, 128), 0)[0]; // 128x1
        assert!(square < degenerate, "square {square} vs row {degenerate}");
    }

    #[test]
    fn constraint_violation_infinite() {
        let a = app();
        let t = vec![Value::Int(4000), Value::Int(4000)];
        let y = a.evaluate(&t, &cfg(64, 64, 8, 16), 0);
        assert!(y[0].is_infinite());
    }

    #[test]
    fn noise_seeded_and_reproducible() {
        let a = PdgeqrfApp::new(MachineModel::cori(4), 40000);
        let t = vec![Value::Int(8000), Value::Int(8000)];
        let c = cfg(64, 64, 128, 8);
        let y1 = a.evaluate(&t, &c, 42)[0];
        let y2 = a.evaluate(&t, &c, 42)[0];
        let y3 = a.evaluate(&t, &c, 43)[0];
        assert_eq!(y1, y2);
        assert_ne!(y1, y3);
        let base = app().evaluate(&t, &c, 0)[0];
        assert!((y1 / base - 1.0).abs() < 0.5, "noise within bounds");
    }

    #[test]
    fn model_features_are_eqs_8_to_10() {
        let a = app();
        let t = vec![Value::Int(10000), Value::Int(5000)];
        let c = cfg(32, 32, 64, 8);
        let f = a.model_features(&t, &c).unwrap();
        assert_eq!(f.len(), 3);
        let (cf, cm, cv) = PdgeqrfApp::cost_terms(10000.0, 5000.0, 32.0, 64.0, 8.0);
        assert_eq!(f, vec![cf, cm, cv]);
        assert!(cf > 0.0 && cm > 0.0 && cv > 0.0);
    }

    #[test]
    fn coarse_model_correlates_with_truth() {
        // Spearman-ish check: ranking by coarse model total (unit machine
        // coefficients) should broadly agree with the true runtime ranking.
        let a = app();
        let t = vec![Value::Int(12000), Value::Int(9000)];
        let configs: Vec<Vec<Value>> = vec![
            cfg(8, 8, 128, 8),
            cfg(32, 32, 128, 8),
            cfg(64, 64, 128, 16),
            cfg(256, 256, 128, 64),
            cfg(64, 64, 32, 4),
            cfg(16, 16, 64, 64),
        ];
        let mut truth: Vec<f64> = Vec::new();
        let mut coarse: Vec<f64> = Vec::new();
        for c in &configs {
            truth.push(a.evaluate(&t, c, 0)[0]);
            let f = a.model_features(&t, c).unwrap();
            coarse.push(
                f[0] / a.machine.flop_rate
                    + f[1] * a.machine.latency
                    + f[2] * 8.0 * a.machine.time_per_word,
            );
        }
        // Pearson correlation of log values.
        let lt: Vec<f64> = truth.iter().map(|v| v.ln()).collect();
        let lc: Vec<f64> = coarse.iter().map(|v| v.ln()).collect();
        let n = lt.len() as f64;
        let mt = lt.iter().sum::<f64>() / n;
        let mc = lc.iter().sum::<f64>() / n;
        let num: f64 = lt.iter().zip(&lc).map(|(a, b)| (a - mt) * (b - mc)).sum();
        let da: f64 = lt.iter().map(|a| (a - mt) * (a - mt)).sum::<f64>().sqrt();
        let db: f64 = lc.iter().map(|b| (b - mc) * (b - mc)).sum::<f64>().sqrt();
        let corr = num / (da * db);
        assert!(
            corr > 0.6,
            "corr {corr}: coarse model should be informative"
        );
    }

    #[test]
    fn default_config_valid() {
        let a = app();
        let d = a.default_config().unwrap();
        assert!(a.tuning_space().is_valid(&d));
    }

    #[test]
    fn wide_matrices_have_positive_cost() {
        // Regression: n ≫ m used to drive Eq. 8's flop term negative.
        let a = app();
        for (m, n) in [(5046i64, 17322i64), (1000, 39_000), (128, 40_000)] {
            let t = vec![Value::Int(m), Value::Int(n)];
            for c in [cfg(64, 64, 128, 8), cfg(4, 512, 32, 32), cfg(512, 4, 1, 1)] {
                let y = a.evaluate(&t, &c, 0)[0];
                assert!(y.is_finite() && y > 0.0, "(m={m}, n={n}) cfg {c:?} -> {y}");
            }
            // Transpose symmetry of the cost model.
            let tt = vec![Value::Int(n), Value::Int(m)];
            let c = cfg(64, 64, 128, 8);
            assert!(a.evaluate(&t, &c, 0)[0].is_finite());
            let (f1, g1, v1) = PdgeqrfApp::cost_terms(m as f64, n as f64, 64.0, 128.0, 8.0);
            let (f2, g2, v2) = PdgeqrfApp::cost_terms(n as f64, m as f64, 64.0, 128.0, 8.0);
            assert_eq!((f1, g1, v1), (f2, g2, v2));
            let _ = tt;
        }
    }
}
