//! Particle Swarm Optimization on the unit hypercube.
//!
//! The paper's search phase (Sec. 3.1) maximizes the Expected-Improvement
//! acquisition with PSO: "we can generate large numbers of samples and use
//! global, evolutionary algorithms such as PSO to optimize the EI". The EI
//! surface is cheap, so a moderately sized swarm with a few dozen iterations
//! is plenty.

use crate::{clamp_unit, OptResult};
use rand::Rng;

/// PSO configuration (standard inertia-weight PSO with velocity clamping).
#[derive(Debug, Clone)]
pub struct PsoOptions {
    /// Number of particles.
    pub particles: usize,
    /// Number of iterations.
    pub iters: usize,
    /// Inertia weight at the first iteration (decays linearly to `w_end`).
    pub w_start: f64,
    /// Inertia weight at the last iteration.
    pub w_end: f64,
    /// Cognitive acceleration (pull toward the particle's own best).
    pub c1: f64,
    /// Social acceleration (pull toward the swarm's best).
    pub c2: f64,
    /// Maximum velocity per dimension (fraction of the unit box).
    pub v_max: f64,
}

impl Default for PsoOptions {
    fn default() -> Self {
        PsoOptions {
            particles: 40,
            iters: 50,
            w_start: 0.9,
            w_end: 0.4,
            c1: 1.5,
            c2: 1.5,
            v_max: 0.25,
        }
    }
}

/// Minimizes `f` over `[0,1]^dim` with PSO.
///
/// `seeds` optionally injects known-good starting points (GPTune seeds the
/// swarm with the incumbent best sample so the acquisition search never
/// regresses). Remaining particles are placed uniformly at random.
///
/// ```
/// use gptune_opt::pso::{minimize, PsoOptions};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let mut f = |x: &[f64]| (x[0] - 0.3_f64).powi(2);
/// let r = minimize(&mut f, 1, &[], &PsoOptions::default(), &mut rng);
/// assert!((r.x[0] - 0.3).abs() < 0.02);
/// ```
pub fn minimize(
    f: &mut dyn FnMut(&[f64]) -> f64,
    dim: usize,
    seeds: &[Vec<f64>],
    opts: &PsoOptions,
    rng: &mut impl Rng,
) -> OptResult {
    assert!(dim > 0, "pso: dim must be positive");
    let np = opts.particles.max(2);
    let mut evals = 0usize;

    let (mut pos, mut vel) = init_swarm(dim, seeds, np, opts, rng);

    let mut pbest = pos.clone();
    let mut pbest_val: Vec<f64> = pos
        .iter()
        .map(|p| {
            evals += 1;
            sanitize(f(p))
        })
        .collect();

    let (mut gbest_idx, _) = pbest_val
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .unwrap();
    let mut gbest = pbest[gbest_idx].clone();
    let mut gbest_val = pbest_val[gbest_idx];

    for it in 0..opts.iters {
        let w = opts.w_start + (opts.w_end - opts.w_start) * it as f64 / opts.iters.max(1) as f64;
        for i in 0..np {
            for d in 0..dim {
                let r1 = rng.gen::<f64>();
                let r2 = rng.gen::<f64>();
                let v = w * vel[i][d]
                    + opts.c1 * r1 * (pbest[i][d] - pos[i][d])
                    + opts.c2 * r2 * (gbest[d] - pos[i][d]);
                vel[i][d] = v.clamp(-opts.v_max, opts.v_max);
                pos[i][d] = (pos[i][d] + vel[i][d]).clamp(0.0, 1.0);
            }
            let val = sanitize(f(&pos[i]));
            evals += 1;
            if val < pbest_val[i] {
                pbest_val[i] = val;
                pbest[i].clone_from(&pos[i]);
                if val < gbest_val {
                    gbest_val = val;
                    gbest.clone_from(&pos[i]);
                    gbest_idx = i;
                }
            }
        }
    }
    let _ = gbest_idx;

    OptResult {
        x: gbest,
        value: gbest_val,
        evals,
    }
}

/// Batched-evaluation PSO with *synchronous* best updates.
///
/// Unlike [`minimize`] — which updates the swarm best as soon as any
/// particle improves, so later particles in the same iteration already
/// chase the newer best — this variant moves the whole swarm against the
/// previous iteration's bests and evaluates all positions with one call to
/// `f`. That is what lets the GP search phase score a full swarm through
/// one blocked BLAS-3 batched prediction instead of per-particle
/// triangular solves. Initialization and per-dimension RNG draws follow the
/// exact same order as [`minimize`], so both variants consume identical
/// random streams.
///
/// `f` receives the whole swarm and must return one value per position, in
/// order.
pub fn minimize_batch(
    f: &mut dyn FnMut(&[Vec<f64>]) -> Vec<f64>,
    dim: usize,
    seeds: &[Vec<f64>],
    opts: &PsoOptions,
    rng: &mut impl Rng,
) -> OptResult {
    assert!(dim > 0, "pso: dim must be positive");
    let np = opts.particles.max(2);
    let mut evals = 0usize;

    let (mut pos, mut vel) = init_swarm(dim, seeds, np, opts, rng);

    let mut pbest = pos.clone();
    let vals = f(&pos);
    assert_eq!(vals.len(), np, "pso: batch objective arity mismatch");
    evals += np;
    let mut pbest_val: Vec<f64> = vals.into_iter().map(sanitize).collect();

    let (mut gbest_idx, _) = pbest_val
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .unwrap();
    let mut gbest = pbest[gbest_idx].clone();
    let mut gbest_val = pbest_val[gbest_idx];

    for it in 0..opts.iters {
        let w = opts.w_start + (opts.w_end - opts.w_start) * it as f64 / opts.iters.max(1) as f64;
        for i in 0..np {
            for d in 0..dim {
                let r1 = rng.gen::<f64>();
                let r2 = rng.gen::<f64>();
                let v = w * vel[i][d]
                    + opts.c1 * r1 * (pbest[i][d] - pos[i][d])
                    + opts.c2 * r2 * (gbest[d] - pos[i][d]);
                vel[i][d] = v.clamp(-opts.v_max, opts.v_max);
                pos[i][d] = (pos[i][d] + vel[i][d]).clamp(0.0, 1.0);
            }
        }
        let vals = f(&pos);
        assert_eq!(vals.len(), np, "pso: batch objective arity mismatch");
        evals += np;
        for (i, val) in vals.into_iter().map(sanitize).enumerate() {
            if val < pbest_val[i] {
                pbest_val[i] = val;
                pbest[i].clone_from(&pos[i]);
                if val < gbest_val {
                    gbest_val = val;
                    gbest.clone_from(&pos[i]);
                    gbest_idx = i;
                }
            }
        }
    }
    let _ = gbest_idx;

    OptResult {
        x: gbest,
        value: gbest_val,
        evals,
    }
}

/// Seeded positions plus random fill, and random initial velocities — the
/// RNG call order shared by [`minimize`] and [`minimize_batch`].
fn init_swarm(
    dim: usize,
    seeds: &[Vec<f64>],
    np: usize,
    opts: &PsoOptions,
    rng: &mut impl Rng,
) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
    let mut pos: Vec<Vec<f64>> = Vec::with_capacity(np);
    for s in seeds.iter().take(np) {
        assert_eq!(s.len(), dim, "pso: seed dimension mismatch");
        let mut p = s.clone();
        clamp_unit(&mut p);
        pos.push(p);
    }
    while pos.len() < np {
        pos.push((0..dim).map(|_| rng.gen::<f64>()).collect());
    }
    let vel: Vec<Vec<f64>> = (0..np)
        .map(|_| {
            (0..dim)
                .map(|_| (rng.gen::<f64>() - 0.5) * opts.v_max)
                .collect()
        })
        .collect();
    (pos, vel)
}

/// NaN-proofing: swarm logic needs totally ordered values.
fn sanitize(v: f64) -> f64 {
    if v.is_nan() {
        f64::INFINITY
    } else {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sphere_minimum_found() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut f = |x: &[f64]| x.iter().map(|v| (v - 0.3) * (v - 0.3)).sum::<f64>();
        let r = minimize(&mut f, 4, &[], &PsoOptions::default(), &mut rng);
        assert!(r.value < 1e-4, "value {}", r.value);
        for xi in &r.x {
            assert!((xi - 0.3).abs() < 0.02);
        }
    }

    #[test]
    fn multimodal_rastrigin_like() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut f = |x: &[f64]| {
            x.iter()
                .map(|&v| {
                    let z = (v - 0.7) * 10.0;
                    z * z - 8.0 * (2.0 * std::f64::consts::PI * z).cos() + 8.0
                })
                .sum::<f64>()
        };
        let r = minimize(
            &mut f,
            2,
            &[],
            &PsoOptions {
                particles: 80,
                iters: 120,
                ..Default::default()
            },
            &mut rng,
        );
        assert!((r.x[0] - 0.7).abs() < 0.05, "x0 {}", r.x[0]);
        assert!((r.x[1] - 0.7).abs() < 0.05, "x1 {}", r.x[1]);
    }

    #[test]
    fn seed_is_never_lost() {
        // Objective where the seed is already the global optimum on a
        // plateau — result must not be worse than the seeded value.
        let mut rng = StdRng::seed_from_u64(3);
        let seed = vec![0.123, 0.456];
        let mut f = |x: &[f64]| {
            let d: f64 = x
                .iter()
                .zip(&[0.123, 0.456])
                .map(|(a, b)| (a - b).abs())
                .sum();
            if d < 1e-12 {
                -10.0
            } else {
                0.0
            }
        };
        let r = minimize(
            &mut f,
            2,
            std::slice::from_ref(&seed),
            &PsoOptions::default(),
            &mut rng,
        );
        assert_eq!(r.value, -10.0);
        assert_eq!(r.x, seed);
    }

    #[test]
    fn stays_in_unit_box() {
        let mut rng = StdRng::seed_from_u64(4);
        // Pull hard toward a corner outside the box.
        let mut f = |x: &[f64]| x.iter().map(|v| (v - 2.0) * (v - 2.0)).sum::<f64>();
        let r = minimize(&mut f, 3, &[], &PsoOptions::default(), &mut rng);
        for xi in &r.x {
            assert!((0.0..=1.0).contains(xi));
            assert!((xi - 1.0).abs() < 1e-9, "should press against upper bound");
        }
    }

    #[test]
    fn nan_objective_does_not_poison() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut f = |x: &[f64]| {
            if x[0] < 0.5 {
                f64::NAN
            } else {
                (x[0] - 0.8) * (x[0] - 0.8)
            }
        };
        let r = minimize(&mut f, 1, &[], &PsoOptions::default(), &mut rng);
        assert!(r.value.is_finite());
        assert!((r.x[0] - 0.8).abs() < 0.05);
    }

    #[test]
    fn eval_budget_accounting() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut count = 0usize;
        let mut f = |_: &[f64]| {
            count += 1;
            1.0
        };
        let opts = PsoOptions {
            particles: 10,
            iters: 5,
            ..Default::default()
        };
        let r = minimize(&mut f, 2, &[], &opts, &mut rng);
        assert_eq!(r.evals, count);
        assert_eq!(count, 10 + 10 * 5);
    }

    #[test]
    fn batch_sphere_minimum_found() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut f = |xs: &[Vec<f64>]| {
            xs.iter()
                .map(|x| x.iter().map(|v| (v - 0.3) * (v - 0.3)).sum::<f64>())
                .collect::<Vec<f64>>()
        };
        let r = minimize_batch(&mut f, 4, &[], &PsoOptions::default(), &mut rng);
        assert!(r.value < 1e-4, "value {}", r.value);
        for xi in &r.x {
            assert!((xi - 0.3).abs() < 0.02);
        }
    }

    #[test]
    fn batch_seed_is_never_lost() {
        let mut rng = StdRng::seed_from_u64(3);
        let seed = vec![0.123, 0.456];
        let mut f = |xs: &[Vec<f64>]| {
            xs.iter()
                .map(|x| {
                    let d: f64 = x
                        .iter()
                        .zip(&[0.123, 0.456])
                        .map(|(a, b)| (a - b).abs())
                        .sum();
                    if d < 1e-12 {
                        -10.0
                    } else {
                        0.0
                    }
                })
                .collect::<Vec<f64>>()
        };
        let r = minimize_batch(
            &mut f,
            2,
            std::slice::from_ref(&seed),
            &PsoOptions::default(),
            &mut rng,
        );
        assert_eq!(r.value, -10.0);
        assert_eq!(r.x, seed);
    }

    #[test]
    fn batch_eval_budget_accounting() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut count = 0usize;
        let mut f = |xs: &[Vec<f64>]| {
            count += xs.len();
            vec![1.0; xs.len()]
        };
        let opts = PsoOptions {
            particles: 10,
            iters: 5,
            ..Default::default()
        };
        let r = minimize_batch(&mut f, 2, &[], &opts, &mut rng);
        assert_eq!(r.evals, count);
        assert_eq!(count, 10 + 10 * 5);
    }

    #[test]
    fn batch_and_scalar_consume_identical_rng_streams() {
        // Same seed → same draws in both variants, so swapping one for the
        // other never perturbs downstream RNG consumers.
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        let mut f = |x: &[f64]| (x[0] - 0.4_f64).powi(2);
        let mut fb = |xs: &[Vec<f64>]| {
            xs.iter()
                .map(|x| (x[0] - 0.4_f64).powi(2))
                .collect::<Vec<f64>>()
        };
        let opts = PsoOptions {
            particles: 8,
            iters: 6,
            ..Default::default()
        };
        let _ = minimize(&mut f, 1, &[], &opts, &mut r1);
        let _ = minimize_batch(&mut fb, 1, &[], &opts, &mut r2);
        assert_eq!(r1.gen::<u64>(), r2.gen::<u64>());
    }
}
