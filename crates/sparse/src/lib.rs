//! Sparse-matrix symbolic analysis for GPTune-rs.
//!
//! SuperLU_DIST's tuning landscape (paper Secs. 6.6–6.7) is dominated by
//! *fill-in*: the column permutation (`COLPERM`) decides how many nonzeros
//! the LU factors acquire, which drives both factorization time and
//! memory. Rather than hard-coding fill factors, this crate computes them
//! the way a sparse direct solver's symbolic phase does:
//!
//! * [`pattern`] — symmetric sparsity patterns in CSR-like form, plus
//!   generators for the structures the PARSEC matrices exhibit
//!   (geometric/electronic-structure graphs, grid Laplacians);
//! * [`ordering`] — fill-reducing permutations: natural, reverse
//!   Cuthill–McKee, and greedy minimum degree;
//! * [`symbolic`] — elimination trees and exact Cholesky fill counts
//!   (row-subtree traversal, `O(|L|)` time and `O(n)` space, so even
//!   catastrophic orderings can be *counted* without materialising the
//!   factor).
//!
//! The SuperLU_DIST simulator can calibrate its per-ordering fill
//! multipliers against these computations (see
//! `gptune_apps::superlu`), and the substrate is independently useful for
//! studying ordering quality.

pub mod ordering;
pub mod pattern;
pub mod symbolic;

pub use ordering::{minimum_degree, natural_order, reverse_cuthill_mckee};
pub use pattern::SparsePattern;
pub use symbolic::{elimination_tree, fill_count, SymbolicStats};
