//! Deterministic Prometheus-style text exposition of a
//! [`MetricsSnapshot`], plus the matching parser.
//!
//! The `metrics` wire request of gptune-serve returns this format and
//! `obs_tool` parses it back, so encode → parse must round-trip exactly.
//! The grammar (documented in DESIGN.md §9):
//!
//! * Comment lines start with `#`; `# TYPE <family> <kind>` declares a
//!   family as `counter`, `gauge`, or `histogram` before its samples.
//! * Sample lines are `<family>[suffix]{labels} <value>`. Counters use
//!   the `_total` suffix; histograms emit cumulative `_bucket` lines
//!   (log2 upper bounds: `le="0"`, `le="2"`, `le="4"`, …, `le="+Inf"`)
//!   plus `_sum` and `_count`; gauges are bare.
//! * The family name is the metric name sanitized to
//!   `[A-Za-z0-9_:]` (every other byte becomes `_`); the **exact**
//!   original name rides in the `name` label, escaped Prometheus-style
//!   (`\\`, `\"`, `\n`). Identity lives in the label, so hostile names
//!   (quotes, backslashes, newlines, non-ASCII) survive the round trip
//!   even when sanitization collides.
//! * Rolling-window deltas carry a `window="1"` label; the reserved
//!   bare sample `gptune_window_horizon_ns` reports the wall-clock span
//!   the windows cover (0 = windows disabled).
//!
//! Output order is fully deterministic: lifetime counters, gauges,
//! histograms (each name-sorted, inherited from the registry's
//! `BTreeMap`), then the window horizon and the windowed deltas.

use crate::metrics::{HistogramSnapshot, MetricsSnapshot, WindowedMetrics, N_BUCKETS};
use std::fmt::Write as _;

/// Reserved sample name carrying [`WindowedMetrics::horizon_ns`].
pub const HORIZON_SAMPLE: &str = "gptune_window_horizon_ns";

/// Sanitizes a metric name into a Prometheus family name.
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        if ok && !(i == 0 && c.is_ascii_digit()) {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escapes a label value (`\` → `\\`, `"` → `\"`, newline → `\n`).
fn label_escape(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn labels(name: &str, windowed: bool, le: Option<&str>) -> String {
    let mut out = format!("{{name=\"{}\"", label_escape(name));
    if let Some(le) = le {
        let _ = write!(out, ",le=\"{le}\"");
    }
    if windowed {
        out.push_str(",window=\"1\"");
    }
    out.push('}');
    out
}

/// The sample-line idents a family of a given kind will occupy.
fn kind_idents(fam: &str, kind: &str) -> Vec<String> {
    match kind {
        "counter" => vec![format!("{fam}_total")],
        "gauge" => vec![fam.to_string()],
        _ => vec![
            format!("{fam}_bucket"),
            format!("{fam}_sum"),
            format!("{fam}_count"),
        ],
    }
}

/// Allocates collision-free family names. The same (sanitized name,
/// kind) pair reuses its family — same-kind sanitization collisions
/// deliberately share one family, identity riding in the `name` label —
/// but a family claimed by a *different* kind, or any clash between
/// sample idents (a gauge sanitized to an existing `<counter>_total`,
/// say), grows trailing underscores until every line in the document
/// classifies unambiguously. Deterministic because encode order is.
#[derive(Default)]
struct Families {
    declared: Vec<(String, &'static str)>,
    idents: Vec<String>,
}

impl Families {
    fn declare(&mut self, out: &mut String, name: &str, kind: &'static str) -> String {
        let mut fam = sanitize(name);
        loop {
            if self.declared.iter().any(|(f, k)| *f == fam && *k == kind) {
                return fam; // TYPE already emitted for this family
            }
            let clash = fam == HORIZON_SAMPLE
                || self.declared.iter().any(|(f, _)| *f == fam)
                || kind_idents(&fam, kind)
                    .iter()
                    .any(|i| self.idents.contains(i));
            if clash {
                fam.push('_');
                continue;
            }
            let _ = writeln!(out, "# TYPE {fam} {kind}");
            self.idents.extend(kind_idents(&fam, kind));
            self.declared.push((fam.clone(), kind));
            return fam;
        }
    }
}

fn encode_counters(
    out: &mut String,
    counters: &[(String, u64)],
    windowed: bool,
    seen: &mut Families,
) {
    for (name, v) in counters {
        let fam = seen.declare(out, name, "counter");
        let _ = writeln!(out, "{fam}_total{} {v}", labels(name, windowed, None));
    }
}

fn encode_histograms(
    out: &mut String,
    histograms: &[(String, HistogramSnapshot)],
    windowed: bool,
    seen: &mut Families,
) {
    for (name, h) in histograms {
        let fam = seen.declare(out, name, "histogram");
        let mut cum = 0u64;
        let mut saw_inf = false;
        for &(i, n) in &h.buckets {
            cum += n;
            let le = match i as usize {
                0 => "0".to_string(),
                b if b >= N_BUCKETS - 1 => {
                    saw_inf = true;
                    "+Inf".to_string()
                }
                b => (1u64 << b).to_string(),
            };
            let _ = writeln!(
                out,
                "{fam}_bucket{} {cum}",
                labels(name, windowed, Some(&le))
            );
        }
        if !saw_inf {
            let _ = writeln!(
                out,
                "{fam}_bucket{} {cum}",
                labels(name, windowed, Some("+Inf"))
            );
        }
        let _ = writeln!(out, "{fam}_sum{} {}", labels(name, windowed, None), h.sum);
        let _ = writeln!(
            out,
            "{fam}_count{} {}",
            labels(name, windowed, None),
            h.count
        );
    }
}

/// Encodes a snapshot as deterministic exposition text.
pub fn encode(m: &MetricsSnapshot) -> String {
    let mut out = String::new();
    out.push_str("# gptune-trace exposition v1\n");
    let mut seen = Families::default();
    encode_counters(&mut out, &m.counters, false, &mut seen);
    for (name, v) in &m.gauges {
        let fam = seen.declare(&mut out, name, "gauge");
        let _ = writeln!(out, "{fam}{} {v}", labels(name, false, None));
    }
    encode_histograms(&mut out, &m.histograms, false, &mut seen);
    let _ = writeln!(out, "{HORIZON_SAMPLE} {}", m.windowed.horizon_ns);
    encode_counters(&mut out, &m.windowed.counters, true, &mut seen);
    encode_histograms(&mut out, &m.windowed.histograms, true, &mut seen);
    out
}

/// One parsed sample line.
struct Sample {
    family: String,
    labels: Vec<(String, String)>,
    value: String,
}

impl Sample {
    fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

fn parse_labels(s: &str) -> Result<(Vec<(String, String)>, &str), String> {
    // `s` starts just after `{`; returns labels plus the rest after `}`.
    let mut labels = Vec::new();
    let mut chars = s.char_indices().peekable();
    loop {
        let mut key = String::new();
        for (_, c) in chars.by_ref() {
            if c == '=' {
                break;
            }
            key.push(c);
        }
        match chars.next() {
            Some((_, '"')) => {}
            _ => return Err(format!("label {key}: expected opening quote")),
        }
        let mut val = String::new();
        let mut closed = false;
        while let Some((_, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, '\\')) => val.push('\\'),
                    Some((_, '"')) => val.push('"'),
                    Some((_, 'n')) => val.push('\n'),
                    other => return Err(format!("bad escape {other:?} in label {key}")),
                },
                '"' => {
                    closed = true;
                    break;
                }
                c => val.push(c),
            }
        }
        if !closed {
            return Err(format!("unterminated label value for {key}"));
        }
        labels.push((key, val));
        match chars.next() {
            Some((_, ',')) => continue,
            Some((i, '}')) => return Ok((labels, &s[i + 1..])),
            other => return Err(format!("expected , or }} after label, got {other:?}")),
        }
    }
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let (ident_end, has_labels) = match line.find(['{', ' ']) {
        Some(i) => (i, line.as_bytes().get(i) == Some(&b'{')),
        None => return Err(format!("malformed sample line: {line:?}")),
    };
    let family = line[..ident_end].to_string();
    let (labels, rest) = if has_labels {
        parse_labels(&line[ident_end + 1..])?
    } else {
        (Vec::new(), &line[ident_end..])
    };
    Ok(Sample {
        family,
        labels,
        value: rest.trim().to_string(),
    })
}

fn bucket_index(le: &str) -> Result<usize, String> {
    match le {
        "0" => Ok(0),
        "+Inf" => Ok(N_BUCKETS - 1),
        v => {
            let bound: u64 = v.parse().map_err(|e| format!("bad le {v:?}: {e}"))?;
            if !bound.is_power_of_two() {
                return Err(format!("le {v:?} is not a power of two"));
            }
            Ok(bound.trailing_zeros() as usize)
        }
    }
}

#[derive(Default)]
struct PartialHist {
    buckets: Vec<(u32, u64)>,
    cum: u64,
    sum: u64,
    count: u64,
}

#[derive(Default)]
struct Section {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    hists: Vec<(String, PartialHist)>,
}

impl Section {
    fn hist(&mut self, name: &str) -> &mut PartialHist {
        if let Some(i) = self.hists.iter().position(|(n, _)| n == name) {
            &mut self.hists[i].1
        } else {
            self.hists.push((name.to_string(), PartialHist::default()));
            let last = self.hists.len() - 1;
            &mut self.hists[last].1
        }
    }
}

/// Parses exposition text back into a [`MetricsSnapshot`];
/// `parse(&encode(m))` reconstructs `m` exactly.
pub fn parse(text: &str) -> Result<MetricsSnapshot, String> {
    let mut kinds: Vec<(String, String)> = Vec::new();
    let mut horizon_ns = 0u64;
    let mut lifetime = Section::default();
    let mut windowed = Section::default();
    for line in text.lines() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let mut parts = rest.split_whitespace();
            if parts.next() == Some("TYPE") {
                if let (Some(fam), Some(kind)) = (parts.next(), parts.next()) {
                    kinds.push((fam.to_string(), kind.to_string()));
                }
            }
            continue;
        }
        let sample = parse_sample(line)?;
        if sample.family == HORIZON_SAMPLE && sample.labels.is_empty() {
            horizon_ns = sample
                .value
                .parse()
                .map_err(|e| format!("bad horizon: {e}"))?;
            continue;
        }
        let section = if sample.label("window") == Some("1") {
            &mut windowed
        } else {
            &mut lifetime
        };
        let name = sample
            .label("name")
            .ok_or_else(|| format!("sample {} has no name label", sample.family))?
            .to_string();
        // Exact family match wins (a gauge sanitized to `…_sum` must not
        // be mistaken for a histogram component); otherwise classify by
        // the histogram/counter suffix.
        let kind_of = |fam: &str| {
            kinds
                .iter()
                .find(|(f, _)| f == fam)
                .map(|(_, k)| k.as_str())
        };
        if kind_of(&sample.family) == Some("gauge") {
            let v: f64 = sample
                .value
                .parse()
                .map_err(|e| format!("bad gauge {name:?}: {e}"))?;
            section.gauges.push((name, v));
        } else if let Some(fam) = sample.family.strip_suffix("_total") {
            if kind_of(fam) != Some("counter") {
                return Err(format!("undeclared counter family {fam:?}"));
            }
            let v: u64 = sample
                .value
                .parse()
                .map_err(|e| format!("bad counter {name:?}: {e}"))?;
            section.counters.push((name, v));
        } else if let Some(fam) = sample.family.strip_suffix("_bucket") {
            if kind_of(fam) != Some("histogram") {
                return Err(format!("undeclared histogram family {fam:?}"));
            }
            let le = sample
                .label("le")
                .ok_or_else(|| format!("bucket of {name:?} has no le label"))?;
            let idx = bucket_index(le)?;
            let cum: u64 = sample
                .value
                .parse()
                .map_err(|e| format!("bad bucket of {name:?}: {e}"))?;
            let h = section.hist(&name);
            let delta = cum
                .checked_sub(h.cum)
                .ok_or_else(|| format!("non-monotonic buckets for {name:?}"))?;
            h.cum = cum;
            if delta > 0 {
                h.buckets.push((idx as u32, delta));
            }
        } else if let Some(fam) = sample.family.strip_suffix("_sum") {
            if kind_of(fam) != Some("histogram") {
                return Err(format!("undeclared histogram family {fam:?}"));
            }
            section.hist(&name).sum = sample
                .value
                .parse()
                .map_err(|e| format!("bad sum of {name:?}: {e}"))?;
        } else if let Some(fam) = sample.family.strip_suffix("_count") {
            if kind_of(fam) != Some("histogram") {
                return Err(format!("undeclared histogram family {fam:?}"));
            }
            section.hist(&name).count = sample
                .value
                .parse()
                .map_err(|e| format!("bad count of {name:?}: {e}"))?;
        } else {
            return Err(format!("unclassifiable sample {:?}", sample.family));
        }
    }
    let finish = |s: Section| -> (
        Vec<(String, u64)>,
        Vec<(String, f64)>,
        Vec<(String, HistogramSnapshot)>,
    ) {
        let hists = s
            .hists
            .into_iter()
            .map(|(n, h)| {
                (
                    n,
                    HistogramSnapshot {
                        count: h.count,
                        sum: h.sum,
                        buckets: h.buckets,
                    },
                )
            })
            .collect();
        (s.counters, s.gauges, hists)
    };
    let (counters, gauges, histograms) = finish(lifetime);
    let (wc, _, wh) = finish(windowed);
    Ok(MetricsSnapshot {
        counters,
        gauges,
        histograms,
        windowed: WindowedMetrics {
            horizon_ns,
            counters: wc,
            histograms: wh,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> MetricsSnapshot {
        MetricsSnapshot {
            counters: vec![
                ("gptune.serve.requests".into(), 42),
                ("gptune.serve.sheds".into(), 0),
            ],
            gauges: vec![
                ("gptune.serve.sessions".into(), 3.0),
                ("gptune.test.frac".into(), 0.125),
            ],
            histograms: vec![(
                "gptune.serve.latency_us.suggest".into(),
                HistogramSnapshot {
                    count: 7,
                    sum: 5130,
                    buckets: vec![(0, 1), (3, 4), (10, 2)],
                },
            )],
            windowed: WindowedMetrics {
                horizon_ns: 115_000_000_000,
                counters: vec![("gptune.serve.requests".into(), 9)],
                histograms: vec![(
                    "gptune.serve.latency_us.suggest".into(),
                    HistogramSnapshot {
                        count: 2,
                        sum: 1030,
                        buckets: vec![(10, 2)],
                    },
                )],
            },
        }
    }

    #[test]
    fn encode_is_deterministic_and_roundtrips() {
        let m = sample_snapshot();
        let text = encode(&m);
        assert_eq!(text, encode(&m), "same snapshot → identical text");
        let back = parse(&text).unwrap();
        assert_eq!(back, m);
        assert_eq!(encode(&back), text);
    }

    #[test]
    fn exposition_shape_is_prometheus_like() {
        let text = encode(&sample_snapshot());
        assert!(text.contains("# TYPE gptune_serve_requests counter"));
        assert!(text.contains("gptune_serve_requests_total{name=\"gptune.serve.requests\"} 42"));
        assert!(text.contains("gptune_serve_sessions{name=\"gptune.serve.sessions\"} 3"));
        assert!(text.contains(
            "gptune_serve_latency_us_suggest_bucket{name=\"gptune.serve.latency_us.suggest\",le=\"8\"} 5"
        ));
        assert!(text.contains(",le=\"+Inf\"} 7"));
        assert!(text.contains("gptune_window_horizon_ns 115000000000"));
        assert!(text.contains(
            "gptune_serve_requests_total{name=\"gptune.serve.requests\",window=\"1\"} 9"
        ));
    }

    #[test]
    fn hostile_metric_names_roundtrip() {
        let hostile = [
            "he said \"hi\"",
            "back\\slash\\",
            "smörgås.δέλτα.метрика",
            "new\nline",
            "trailing space ",
            "{weird}=chars,le=\"0\"",
        ];
        let mut m = MetricsSnapshot::default();
        for (i, name) in hostile.iter().enumerate() {
            m.counters.push((name.to_string(), i as u64 + 1));
            m.histograms.push((
                name.to_string(),
                HistogramSnapshot {
                    count: 1,
                    sum: 9,
                    buckets: vec![(4, 1)],
                },
            ));
        }
        m.counters.sort();
        m.histograms.sort_by(|a, b| a.0.cmp(&b.0));
        let text = encode(&m);
        let back = parse(&text).unwrap();
        assert_eq!(back, m, "hostile names survive encode → parse");
        // Escaping is deterministic: same input, same bytes.
        assert_eq!(text, encode(&parse(&text).unwrap()));
    }

    #[test]
    fn sanitization_collisions_keep_identity_via_the_name_label() {
        let m = MetricsSnapshot {
            counters: vec![("a.b".into(), 1), ("a:b".into(), 2), ("a_b".into(), 3)],
            ..Default::default()
        };
        let back = parse(&encode(&m)).unwrap();
        assert_eq!(back.counter("a.b"), Some(1));
        assert_eq!(back.counter("a:b"), Some(2));
        assert_eq!(back.counter("a_b"), Some(3));
    }

    #[test]
    fn cross_kind_family_collisions_stay_unambiguous() {
        // A counter and a histogram sharing one sanitized name must get
        // distinct families, and a gauge whose family equals an existing
        // counter's `_total` ident must shift out of its way.
        let m = MetricsSnapshot {
            counters: vec![("shared.name".into(), 3), ("x".into(), 7)],
            gauges: vec![("x_total".into(), 1.5)],
            histograms: vec![(
                "shared.name".into(),
                HistogramSnapshot {
                    count: 1,
                    sum: 9,
                    buckets: vec![(4, 1)],
                },
            )],
            ..Default::default()
        };
        let text = encode(&m);
        let back = parse(&text).unwrap();
        assert_eq!(back, m, "cross-kind collisions survive the round trip");
        assert_eq!(encode(&back), text);
        assert_eq!(back.counter("x"), Some(7));
        assert_eq!(back.gauge("x_total"), Some(1.5));
    }

    #[test]
    fn gauge_sanitized_to_sum_suffix_stays_a_gauge() {
        let m = MetricsSnapshot {
            gauges: vec![("gptune.test.latency_sum".into(), 1.5)],
            ..Default::default()
        };
        let back = parse(&encode(&m)).unwrap();
        assert_eq!(back.gauge("gptune.test.latency_sum"), Some(1.5));
        assert!(back.histograms.is_empty());
    }

    #[test]
    fn nonfinite_gauges_roundtrip() {
        let m = MetricsSnapshot {
            gauges: vec![
                ("inf".into(), f64::INFINITY),
                ("ninf".into(), f64::NEG_INFINITY),
            ],
            ..Default::default()
        };
        let back = parse(&encode(&m)).unwrap();
        assert_eq!(back.gauge("inf"), Some(f64::INFINITY));
        assert_eq!(back.gauge("ninf"), Some(f64::NEG_INFINITY));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("not a metric line").is_err());
        assert!(parse("x_total{name=\"x\"} notanumber").is_err());
        assert!(parse("# TYPE h histogram\nh_bucket{name=\"h\",le=\"3\"} 1").is_err());
        assert!(parse("x_total{name=\"x} 1").is_err());
        // Buckets must be cumulative.
        assert!(parse(
            "# TYPE h histogram\nh_bucket{name=\"h\",le=\"2\"} 5\nh_bucket{name=\"h\",le=\"4\"} 3"
        )
        .is_err());
    }

    #[test]
    fn empty_snapshot_roundtrips() {
        let m = MetricsSnapshot::default();
        assert_eq!(parse(&encode(&m)).unwrap(), m);
    }
}
