//! Property-based tests for the GP/LCM substrate.

use gptune_gp::gp::{erfc, expected_improvement, norm_cdf};
use gptune_gp::{LcmFitOptions, LcmModel, Prediction, SeArdKernel};
use gptune_la::{Cholesky, Matrix};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn kernel_gram_matrix_is_psd(
        xs in proptest::collection::vec(proptest::collection::vec(0.0f64..=1.0, 2), 2..12),
        l in 0.05f64..2.0,
    ) {
        let k = SeArdKernel::isotropic(2, l);
        let n = xs.len();
        let mut gram = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                gram.set(i, j, k.eval(&xs[i], &xs[j]));
            }
        }
        // PSD up to jitter (duplicate points make it singular but not
        // indefinite): the jittered Cholesky must succeed.
        prop_assert!(Cholesky::factor_with_jitter(&gram, 1e-10, 12).is_ok());
    }

    #[test]
    fn kernel_bounded_and_peaked_at_zero_distance(
        x in proptest::collection::vec(0.0f64..=1.0, 3),
        y in proptest::collection::vec(0.0f64..=1.0, 3),
        l in 0.05f64..2.0,
    ) {
        let k = SeArdKernel::isotropic(3, l);
        let v = k.eval(&x, &y);
        prop_assert!((0.0..=1.0).contains(&v));
        prop_assert!(v <= k.eval(&x, &x));
    }

    #[test]
    fn ei_nonnegative_and_monotone_in_best(mean in -5.0f64..5.0, var in 1e-6f64..4.0, best in -5.0f64..5.0) {
        let p = Prediction { mean, variance: var };
        let ei = expected_improvement(&p, best);
        prop_assert!(ei >= 0.0);
        prop_assert!(ei.is_finite());
        // A worse incumbent (larger best) can only increase EI.
        let ei2 = expected_improvement(&p, best + 1.0);
        prop_assert!(ei2 >= ei - 1e-12);
    }

    #[test]
    fn norm_cdf_monotone_bounded(a in -6.0f64..6.0, b in -6.0f64..6.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let ca = norm_cdf(lo);
        let cb = norm_cdf(hi);
        prop_assert!((0.0..=1.0).contains(&ca));
        prop_assert!((0.0..=1.0).contains(&cb));
        prop_assert!(cb >= ca - 1e-12);
        prop_assert!((erfc(a) - (2.0 - erfc(-a))).abs() < 1e-6);
    }

    #[test]
    fn lcm_predictions_finite_with_sane_variance(
        raw in proptest::collection::vec((0.0f64..=1.0, 0.0f64..=1.0), 6..14),
        q in 1usize..3,
    ) {
        // Two tasks, alternating assignment, smooth outputs.
        let xs: Vec<Vec<f64>> = raw.iter().map(|(x, _)| vec![*x]).collect();
        let task_of: Vec<usize> = (0..xs.len()).map(|i| i % 2).collect();
        let y: Vec<f64> = raw
            .iter()
            .enumerate()
            .map(|(i, (x, n))| (4.0 * x).sin() + 0.3 * (i % 2) as f64 + 0.05 * n)
            .collect();
        let opts = LcmFitOptions {
            q,
            n_starts: 1,
            ..Default::default()
        };
        let model = LcmModel::fit(&xs, &task_of, &y, 2, &opts);
        for probe in [0.0, 0.25, 0.5, 0.75, 1.0] {
            for t in 0..2 {
                let p = model.predict(t, &[probe]);
                prop_assert!(p.mean.is_finite());
                prop_assert!(p.variance.is_finite() && p.variance >= 0.0);
            }
        }
        // Predictive mean near a training point should be closer to that
        // training value than to the data's extreme range bound.
        let p = model.predict(task_of[0], &xs[0]);
        let ymin = y.iter().cloned().fold(f64::INFINITY, f64::min);
        let ymax = y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(p.mean >= ymin - (ymax - ymin) - 1.0);
        prop_assert!(p.mean <= ymax + (ymax - ymin) + 1.0);
    }

    #[test]
    fn lcm_gradient_is_consistent_everywhere(seed_vals in proptest::collection::vec(0.1f64..0.9, 4)) {
        // Random small dataset, random-but-reasonable hyperparameters: the
        // analytic gradient must match finite differences.
        let xs: Vec<Vec<f64>> = seed_vals.iter().map(|v| vec![*v]).collect();
        let task_of = vec![0usize, 1, 0, 1];
        let y = vec![0.1, 0.6, -0.2, 0.9];
        let hp = gptune_gp::LcmHyperparams {
            q: 1,
            n_tasks: 2,
            dim: 1,
            lengthscales: vec![vec![0.4]],
            a: vec![vec![0.7, -0.3]],
            b: vec![vec![0.02, 0.05]],
            d: vec![0.03, 0.02],
        };
        let theta = hp.pack();
        let mut grad = vec![0.0; theta.len()];
        let f0 = LcmModel::nll_at(&xs, &task_of, &y, 2, 1, &theta, &mut grad);
        prop_assert!(f0.is_finite());
        let h = 1e-6;
        for k in 0..theta.len() {
            let mut tp = theta.clone();
            tp[k] += h;
            let mut tm = theta.clone();
            tm[k] -= h;
            let mut dummy = vec![0.0; theta.len()];
            let fp = LcmModel::nll_at(&xs, &task_of, &y, 2, 1, &tp, &mut dummy);
            let fm = LcmModel::nll_at(&xs, &task_of, &y, 2, 1, &tm, &mut dummy);
            let fd = (fp - fm) / (2.0 * h);
            prop_assert!((grad[k] - fd).abs() < 1e-3 * (1.0 + fd.abs()),
                "param {k}: {} vs {fd}", grad[k]);
        }
    }
}
