//! Baseline tuners GPTune is compared against (paper Secs. 5–6.6).
//!
//! * [`OpenTunerLike`] — a faithful stand-in for OpenTuner: an AUC
//!   multi-armed bandit adaptively allocates evaluations across an ensemble
//!   of model-free techniques (random, mutation, crossover, differential
//!   step, simplex reflection, annealed jitter) that all share one results
//!   database;
//! * [`HpBandSterLike`] — HpBandSter with the multi-armed-bandit/hyperband
//!   feature disabled (as configured in the paper's comparison): a Tree
//!   Parzen Estimator proposes each next configuration;
//! * [`SingleTaskGpTuner`] — GPTune's own Bayesian optimization with
//!   `δ = 1` (single-task learning), the reference point for the
//!   multitask-vs-single-task studies (Fig. 5, Table 3);
//! * [`SurfLike`] — SuRf (Sec. 5): random-forest surrogate search with
//!   native categorical handling;
//! * [`RandomTuner`] — uniform random sampling, the floor.
//!
//! All baselines are single-task (the paper runs OpenTuner/HpBandSter
//! "separately on each task" because they do not support multitask
//! learning) and share the [`Tuner`] interface.

pub mod hpbandster;
pub mod opentuner;
pub mod random;
pub mod single_task;
pub mod surf;

pub use hpbandster::HpBandSterLike;
pub use opentuner::OpenTunerLike;
pub use random::RandomTuner;
pub use single_task::SingleTaskGpTuner;
pub use surf::SurfLike;

use gptune_core::TuningProblem;
use gptune_space::{sampling, Config, Space};
use rand::rngs::StdRng;
use rand::Rng;

/// Outcome of one baseline tuning run on one task.
#[derive(Debug, Clone)]
pub struct TunerRun {
    /// All `(config, objective)` evaluations in order.
    pub samples: Vec<(Config, f64)>,
    /// Best configuration found.
    pub best_config: Config,
    /// Best finite objective found (`INFINITY` if all runs failed).
    pub best_value: f64,
}

impl TunerRun {
    /// Builds a run summary from the raw sample list.
    pub fn from_samples(samples: Vec<(Config, f64)>) -> TunerRun {
        assert!(!samples.is_empty(), "TunerRun: no samples");
        let (best_config, best_value) = samples
            .iter()
            .filter(|(_, y)| y.is_finite())
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(c, y)| (c.clone(), *y))
            .unwrap_or_else(|| (samples[0].0.clone(), f64::INFINITY));
        TunerRun {
            samples,
            best_config,
            best_value,
        }
    }

    /// The observation sequence (for the stability metric).
    pub fn trajectory(&self) -> Vec<f64> {
        self.samples.iter().map(|(_, y)| *y).collect()
    }
}

/// A single-task tuner with a fixed evaluation budget `ε_tot`.
pub trait Tuner {
    /// Display name.
    fn name(&self) -> &str;

    /// Tunes task `task_idx` of `problem` with `budget` evaluations.
    fn tune_task(
        &self,
        problem: &TuningProblem,
        task_idx: usize,
        budget: usize,
        seed: u64,
    ) -> TunerRun;
}

/// Draws one feasible configuration uniformly at random (with rejection).
pub(crate) fn random_valid(space: &Space, rng: &mut StdRng, tries: usize) -> Option<Config> {
    for _ in 0..tries {
        let u: Vec<f64> = (0..space.dim()).map(|_| rng.gen::<f64>()).collect();
        let cfg = space.denormalize(&u);
        if space.is_valid(&cfg) {
            return Some(cfg);
        }
    }
    None
}

/// Snaps a normalized point to a feasible, non-duplicate configuration,
/// jittering then falling back to random. Shared by all proposal-based
/// baselines.
pub(crate) fn repair(
    space: &Space,
    u: &[f64],
    existing: &[(Config, f64)],
    rng: &mut StdRng,
) -> Config {
    let dup = |cfg: &Config| existing.iter().any(|(c, _)| c == cfg);
    let mut cfg = space.denormalize(u);
    let mut tries = 0;
    while (!space.is_valid(&cfg) || dup(&cfg)) && tries < 60 {
        let jittered: Vec<f64> = u
            .iter()
            .map(|v| (v + rng.gen_range(-0.1..0.1)).clamp(0.0, 1.0))
            .collect();
        cfg = space.denormalize(&jittered);
        tries += 1;
    }
    if !space.is_valid(&cfg) || dup(&cfg) {
        if let Some(c) = random_valid(space, rng, 500) {
            if !dup(&c) {
                return c;
            }
        }
    }
    cfg
}

/// Shared initial design: a small LHS like every real tuner uses.
pub(crate) fn initial_design(space: &Space, n: usize, rng: &mut StdRng) -> Vec<Config> {
    sampling::sample_space(space, n, rng, 200)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gptune_space::{Param, Value};
    use rand::SeedableRng;

    #[test]
    fn tuner_run_summary() {
        let samples = vec![
            (vec![Value::Real(0.1)], 3.0),
            (vec![Value::Real(0.2)], f64::INFINITY),
            (vec![Value::Real(0.3)], 1.0),
        ];
        let run = TunerRun::from_samples(samples);
        assert_eq!(run.best_value, 1.0);
        assert_eq!(run.best_config, vec![Value::Real(0.3)]);
        assert_eq!(run.trajectory().len(), 3);
    }

    #[test]
    fn tuner_run_all_failed() {
        let samples = vec![(vec![Value::Real(0.1)], f64::INFINITY)];
        let run = TunerRun::from_samples(samples);
        assert!(run.best_value.is_infinite());
    }

    #[test]
    fn repair_avoids_duplicates() {
        let space = Space::builder().param(Param::int("x", 0, 3)).build();
        let mut rng = StdRng::seed_from_u64(1);
        let existing = vec![(vec![Value::Int(1)], 1.0)];
        let cfg = repair(&space, &[0.375], &existing, &mut rng); // would snap to 1
        assert_ne!(cfg, vec![Value::Int(1)]);
        assert!(space.is_valid(&cfg));
    }

    #[test]
    fn random_valid_respects_constraints() {
        let space = Space::builder()
            .param(Param::int("a", 0, 9))
            .param(Param::int("b", 0, 9))
            .constraint("a<b", |c| c[0].as_int() < c[1].as_int())
            .build();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let c = random_valid(&space, &mut rng, 100).unwrap();
            assert!(c[0].as_int() < c[1].as_int());
        }
    }
}
