//! The analytical test objective of paper Eq. 11.
//!
//! ```text
//! y(t, x) = 1 + e^{−(x+1)^{t+1}} · cos(2πx) · Σ_{i=1}^{5} sin(2πx (t+2)^i)
//! ```
//!
//! A highly non-convex 1-D family: larger `t` produces faster oscillation
//! and a harder global-optimization problem (paper Fig. 2). Used by the
//! parallel-scaling experiment (Fig. 3) and the performance-model study
//! (Fig. 4 left).

use crate::{noise, HpcApp, MachineModel};
use gptune_space::{Param, Space, Value};

/// The sequential analytical application (`β = 1` in Table 2).
pub struct AnalyticalApp {
    task_space: Space,
    tuning_space: Space,
    noise_sigma: f64,
}

impl AnalyticalApp {
    /// Creates the app with the given multiplicative noise σ (0 = exact).
    pub fn new(noise_sigma: f64) -> AnalyticalApp {
        AnalyticalApp {
            task_space: Space::builder().param(Param::real("t", 0.0, 10.0)).build(),
            tuning_space: Space::builder().param(Param::real("x", 0.0, 1.0)).build(),
            noise_sigma,
        }
    }

    /// The exact objective of Eq. 11 (no noise).
    pub fn exact(t: f64, x: f64) -> f64 {
        let two_pi = 2.0 * std::f64::consts::PI;
        let mut s = 0.0;
        for i in 1..=5 {
            s += (two_pi * x * (t + 2.0).powi(i)).sin();
        }
        1.0 + (-(x + 1.0).powf(t + 1.0)).exp() * (two_pi * x).cos() * s
    }

    /// Brute-force reference minimum over a dense grid (for ratio-to-true
    /// reporting in Fig. 4).
    pub fn true_minimum(t: f64, grid: usize) -> (f64, f64) {
        let mut best = (0.0, f64::INFINITY);
        for j in 0..=grid {
            let x = j as f64 / grid as f64;
            let y = Self::exact(t, x);
            if y < best.1 {
                best = (x, y);
            }
        }
        best
    }
}

impl HpcApp for AnalyticalApp {
    fn name(&self) -> &str {
        "analytical"
    }

    fn task_space(&self) -> &Space {
        &self.task_space
    }

    fn tuning_space(&self) -> &Space {
        &self.tuning_space
    }

    fn evaluate(&self, task: &[Value], config: &[Value], seed: u64) -> Vec<f64> {
        let t = task[0].as_real();
        let x = config[0].as_real();
        let y = Self::exact(t, x);
        let f = noise::lognormal_factor(noise::hash_point(task, config, seed), self.noise_sigma);
        // The objective can be near zero or negative-adjacent; apply noise
        // additively scaled by |y| to stay well-defined.
        vec![y * f]
    }

    /// The noisy coarse model of Sec. 6.4:
    /// `ỹ(t,x) = (1 + 0.1·r(x))·y(t,x)`, `r ~ N(0,1)` (seeded by `x` only,
    /// matching the paper's `r(x)` notation).
    fn model_features(&self, task: &[Value], config: &[Value]) -> Option<Vec<f64>> {
        let t = task[0].as_real();
        let x = config[0].as_real();
        let y = Self::exact(t, x);
        let r = noise::standard_normal(noise::hash_point(&[], config, 0xfeed));
        Some(vec![(1.0 + 0.1 * r) * y])
    }
}

/// Builds the `δ = 20` task list `t = 0, 0.5, …, 9.5` used in Sec. 6.4.
pub fn default_tasks() -> Vec<Vec<Value>> {
    (0..20).map(|i| vec![Value::Real(i as f64 * 0.5)]).collect()
}

/// Reuses the Cori machine type so callers can size worker pools uniformly.
pub fn machine() -> MachineModel {
    MachineModel::cori_noiseless(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_matches_formula_at_zero() {
        // x = 0: cos(0)=1, all sin(0)=0 → y = 1.
        for &t in &[0.0, 1.0, 5.0] {
            assert!((AnalyticalApp::exact(t, 0.0) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn objective_in_plausible_range() {
        // The envelope e^{-(x+1)^{t+1}} ≤ e^{-1}; |cos·Σsin| ≤ 5 → y ∈ [1−5e⁻¹, 1+5e⁻¹].
        for j in 0..200 {
            let x = j as f64 / 199.0;
            for &t in &[0.0, 2.0, 4.5, 8.0] {
                let y = AnalyticalApp::exact(t, x);
                assert!(y > 1.0 - 5.0 / std::f64::consts::E - 1e-9);
                assert!(y < 1.0 + 5.0 / std::f64::consts::E + 1e-9);
            }
        }
    }

    #[test]
    fn harder_for_larger_t() {
        // Count sign changes of dy/dx as a proxy for multimodality. The
        // envelope confines the action to small x for large t, so sample
        // densely near 0 where the oscillations live.
        let wiggles = |t: f64| {
            let n = 20_000;
            let mut count = 0;
            let mut prev = AnalyticalApp::exact(t, 0.0);
            let mut prev_up = false;
            let mut first = true;
            for j in 1..n {
                let y = AnalyticalApp::exact(t, 0.3 * j as f64 / (n - 1) as f64);
                let up = y > prev;
                if !first && up != prev_up {
                    count += 1;
                }
                prev = y;
                prev_up = up;
                first = false;
            }
            count
        };
        assert!(
            wiggles(4.0) > wiggles(0.5),
            "{} vs {}",
            wiggles(4.0),
            wiggles(0.5)
        );
    }

    #[test]
    fn true_minimum_below_function_values() {
        let (xmin, ymin) = AnalyticalApp::true_minimum(3.0, 4000);
        assert!((0.0..=1.0).contains(&xmin));
        for j in 0..100 {
            let x = j as f64 / 99.0;
            assert!(AnalyticalApp::exact(3.0, x) >= ymin - 1e-9);
        }
    }

    #[test]
    fn evaluate_noiseless_matches_exact() {
        let app = AnalyticalApp::new(0.0);
        let y = app.evaluate(&[Value::Real(2.0)], &[Value::Real(0.25)], 1)[0];
        assert_eq!(y, AnalyticalApp::exact(2.0, 0.25));
    }

    #[test]
    fn model_features_noisy_but_correlated() {
        let app = AnalyticalApp::new(0.0);
        let t = vec![Value::Real(4.0)];
        let mut num = 0.0;
        let mut den_a = 0.0;
        let mut den_b = 0.0;
        for j in 0..50 {
            let x = vec![Value::Real(j as f64 / 49.0)];
            let y = AnalyticalApp::exact(4.0, j as f64 / 49.0);
            let m = app.model_features(&t, &x).unwrap()[0];
            num += y * m;
            den_a += y * y;
            den_b += m * m;
        }
        let corr = num / (den_a.sqrt() * den_b.sqrt());
        assert!(corr > 0.95, "corr {corr}");
    }

    #[test]
    fn default_tasks_are_twenty() {
        let t = default_tasks();
        assert_eq!(t.len(), 20);
        assert_eq!(t[0][0].as_real(), 0.0);
        assert_eq!(t[19][0].as_real(), 9.5);
    }
}
