// GX701 clean fixture: both paths acquire in the same committed order
// (sessions before inflight), so the lock graph has edges but no cycle.

fn session_then_inflight(s: &ServerState) {
    let table = s.sessions.lock().unwrap();
    bump_inflight(s);
    drop(table);
}

fn bump_inflight(s: &ServerState) {
    let mut counts = s.inflight.lock().unwrap();
    counts.bump();
}

fn also_ordered(s: &ServerState) {
    let table = s.sessions.lock().unwrap();
    let counts = s.inflight.lock().unwrap();
    counts.merge(&table);
}
