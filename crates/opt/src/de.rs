//! Differential evolution (DE/rand/1/bin) on the unit hypercube.
//!
//! One of the model-free global techniques in the OpenTuner-style ensemble
//! (paper Sec. 5 groups it with the "global approaches").

use crate::OptResult;
use rand::Rng;

/// DE configuration.
#[derive(Debug, Clone)]
pub struct DeOptions {
    /// Population size.
    pub population: usize,
    /// Number of generations.
    pub generations: usize,
    /// Differential weight `F`.
    pub f_weight: f64,
    /// Crossover probability `CR`.
    pub crossover: f64,
}

impl Default for DeOptions {
    fn default() -> Self {
        DeOptions {
            population: 30,
            generations: 50,
            f_weight: 0.7,
            crossover: 0.9,
        }
    }
}

/// Minimizes `f` over `[0,1]^dim` with DE/rand/1/bin.
pub fn minimize(
    f: &mut dyn FnMut(&[f64]) -> f64,
    dim: usize,
    seeds: &[Vec<f64>],
    opts: &DeOptions,
    rng: &mut impl Rng,
) -> OptResult {
    let np = opts.population.max(4);
    let mut evals = 0usize;
    let mut pop: Vec<Vec<f64>> = seeds
        .iter()
        .take(np)
        .map(|s| {
            let mut p = s.clone();
            crate::clamp_unit(&mut p);
            p
        })
        .collect();
    while pop.len() < np {
        pop.push((0..dim).map(|_| rng.gen::<f64>()).collect());
    }
    let mut vals: Vec<f64> = pop
        .iter()
        .map(|p| {
            evals += 1;
            nanproof(f(p))
        })
        .collect();

    for _ in 0..opts.generations {
        for i in 0..np {
            // Pick three distinct indices ≠ i.
            let mut pick = || loop {
                let k = rng.gen_range(0..np);
                if k != i {
                    return k;
                }
            };
            let (a, b, c) = (pick(), pick(), pick());
            let jrand = rng.gen_range(0..dim);
            let mut trial = pop[i].clone();
            for d in 0..dim {
                if d == jrand || rng.gen::<f64>() < opts.crossover {
                    trial[d] =
                        (pop[a][d] + opts.f_weight * (pop[b][d] - pop[c][d])).clamp(0.0, 1.0);
                }
            }
            let tv = nanproof(f(&trial));
            evals += 1;
            if tv <= vals[i] {
                pop[i] = trial;
                vals[i] = tv;
            }
        }
    }

    let (bi, bv) = vals
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .unwrap();
    OptResult {
        x: pop[bi].clone(),
        value: *bv,
        evals,
    }
}

fn nanproof(v: f64) -> f64 {
    if v.is_nan() {
        f64::INFINITY
    } else {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sphere() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut f = |x: &[f64]| x.iter().map(|v| (v - 0.6) * (v - 0.6)).sum::<f64>();
        let r = minimize(&mut f, 3, &[], &DeOptions::default(), &mut rng);
        assert!(r.value < 1e-4, "value {}", r.value);
    }

    #[test]
    fn respects_bounds_and_seeds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut f = |x: &[f64]| -x[0]; // push to upper bound
        let r = minimize(&mut f, 1, &[vec![0.2]], &DeOptions::default(), &mut rng);
        assert!(r.x[0] <= 1.0 && r.x[0] > 0.95);
    }

    #[test]
    fn nan_tolerated() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut f = |x: &[f64]| if x[0] < 0.3 { f64::NAN } else { x[0] };
        let r = minimize(&mut f, 1, &[], &DeOptions::default(), &mut rng);
        assert!(r.value.is_finite());
        assert!(r.x[0] >= 0.3);
    }
}
