//! Protocol chaos suite for gptune-serve.
//!
//! Every test drives a real client against a real server through the
//! deterministic [`ChaosProxy`], or kills the server outright, and then
//! proves the robustness contracts:
//!
//! * **zero lost reports** — every acknowledged report is present in the
//!   final history, whatever the proxy tore, reset, delayed, or
//!   duplicated in between;
//! * **bit-identical history** — the sorted post-recovery history equals
//!   the history of an unfaulted run of the same workload;
//! * **server-side durability** — a kill-restart mid-burst recovers the
//!   session from the archive alone: no client WAL, no re-open required;
//! * **frame hygiene** — torn prefixes, mid-frame EOFs, and oversized
//!   length words kill one connection, never the server.

use gptune::serve::{
    serve, BackoffPolicy, ChaosProxy, FaultSpec, ProblemSpec, ServeClient, ServeOptions,
    SessionOptions,
};
use gptune::space::{Param, Value};
use std::io::Write;
use std::net::TcpStream;
use std::path::PathBuf;

fn tmp_root(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("gptune_it_chaos_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn spec(name: &str) -> ProblemSpec {
    ProblemSpec {
        name: name.into(),
        task_params: vec![Param::real("t", 0.0, 1.0)],
        tuning_params: vec![Param::real("x", 0.0, 1.0), Param::real("y", 0.0, 1.0)],
        tasks: vec![vec![Value::Real(0.2)], vec![Value::Real(0.8)]],
        n_objectives: 1,
    }
}

/// The reported configs are client-chosen and deterministic, so faulted
/// and unfaulted runs report the exact same rows and the histories are
/// comparable bit for bit.
fn config_at(i: usize) -> Vec<Value> {
    vec![
        Value::Real(((i * 37 + 11) % 101) as f64 / 101.0),
        Value::Real(((i * 53 + 29) % 97) as f64 / 97.0),
    ]
}

fn measure(i: usize, task: usize) -> f64 {
    ((i * 37 + 11) % 101) as f64 * 0.01 + task as f64
}

fn sort_key(row: &(usize, Vec<Value>, Vec<f64>)) -> String {
    format!("{}|{:?}|{:?}", row.0, row.1, row.2)
}

fn patient_backoff() -> BackoffPolicy {
    BackoffPolicy {
        max_retries: 10,
        base_ms: 2,
        cap_ms: 50,
        jitter_seed: 0xc4a05,
    }
}

/// Runs the canonical workload — `n` deterministic reports across both
/// tasks plus interleaved suggests — against `addr`, retrying through
/// the client's backoff. Returns the sorted final history.
fn run_workload(addr: std::net::SocketAddr, n: usize) -> Vec<String> {
    let mut client = ServeClient::connect(addr)
        .unwrap()
        .with_backoff(patient_backoff());
    client
        .open_session("chaos", &spec("burst"), &SessionOptions::default())
        .unwrap();
    for i in 0..n {
        let task = i % 2;
        // Exercise the suggest path too (its result is deliberately not
        // reported: retried suggests may advance the design stream).
        if i % 3 == 0 {
            let _ = client.suggest(task);
        }
        client
            .report(task, &config_at(i), &[measure(i, task)])
            .unwrap();
    }
    let mut rows: Vec<String> = client.history().unwrap().iter().map(sort_key).collect();
    rows.sort();
    rows
}

#[test]
fn chaos_burst_loses_nothing_and_history_is_bit_identical() {
    const N: usize = 24;
    // Ground truth: the same workload with no proxy and no faults.
    let clean_root = tmp_root("clean");
    let clean_server = serve(
        "127.0.0.1:0",
        ServeOptions {
            workers: 4,
            archive: Some(clean_root.clone()),
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let expected = run_workload(clean_server.local_addr(), N);
    clean_server.shutdown();

    // The faulted run: resets, duplicates, and delays on a seeded
    // schedule between client and server.
    let root = tmp_root("burst");
    let server = serve(
        "127.0.0.1:0",
        ServeOptions {
            workers: 4,
            archive: Some(root.clone()),
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let proxy = ChaosProxy::launch(
        server.local_addr(),
        FaultSpec {
            seed: 20260809,
            reset_every: 7,
            duplicate_every: 5,
            delay_every: 3,
            delay_ms: 2,
            ..FaultSpec::default()
        },
    )
    .unwrap();
    let got = run_workload(proxy.local_addr(), N);
    let counts = proxy.counts();
    assert!(
        counts.resets > 0 && counts.duplicated > 0 && counts.delayed > 0,
        "the schedule must actually inject faults: {counts:?}"
    );
    assert_eq!(got.len(), N, "a report was lost or double-counted");
    assert_eq!(got, expected, "chaos changed the stored history");
    proxy.shutdown();
    server.shutdown();
    let _ = std::fs::remove_dir_all(&clean_root);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn torn_frames_through_the_proxy_never_kill_the_server() {
    let server = serve(
        "127.0.0.1:0",
        ServeOptions {
            workers: 2,
            ..ServeOptions::default()
        },
    )
    .unwrap();
    // Tear or oversize a steady fraction of frames: each hit kills that
    // connection mid-frame and the client's backoff reconnects through a
    // fresh proxy connection. (The period must leave room for the
    // open+report pair to land on one connection, so not every-other.)
    for fault in [
        FaultSpec {
            tear_every: 4,
            ..FaultSpec::default()
        },
        FaultSpec {
            oversize_every: 5,
            ..FaultSpec::default()
        },
    ] {
        let proxy = ChaosProxy::launch(server.local_addr(), fault).unwrap();
        let mut client = ServeClient::connect(proxy.local_addr())
            .unwrap()
            .with_backoff(patient_backoff());
        client
            .open_session("chaos", &spec("torn"), &SessionOptions::default())
            .unwrap();
        for i in 0..6 {
            client
                .report(i % 2, &config_at(i), &[measure(i, i % 2)])
                .unwrap();
        }
        assert_eq!(client.history().unwrap().len(), 6);
        let counts = proxy.counts();
        assert!(counts.torn > 0 || counts.oversized > 0, "{counts:?}");
        proxy.shutdown();
        // Clear the session so the next fault flavor starts fresh.
        let mut direct = ServeClient::connect(server.local_addr()).unwrap();
        direct
            .open_session("chaos", &spec("torn"), &SessionOptions::default())
            .unwrap();
        direct.close().unwrap();
    }
    server.shutdown();
}

#[test]
fn kill_restart_mid_burst_recovers_from_the_archive_without_wal() {
    const N: usize = 16;
    const KILL_AT: usize = 9;
    let root = tmp_root("killrestart");
    let opts = || ServeOptions {
        workers: 2,
        archive: Some(root.clone()),
        ..ServeOptions::default()
    };
    let server = serve("127.0.0.1:0", opts()).unwrap();
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    client
        .open_session("chaos", &spec("burst"), &SessionOptions::default())
        .unwrap();
    for i in 0..KILL_AT {
        client
            .report(i % 2, &config_at(i), &[measure(i, i % 2)])
            .unwrap();
    }
    // Kill — not drain. Nothing is flushed; only the per-report journal
    // and the open-time meta exist on disk.
    server.shutdown();

    // The replacement binds a fresh port against the same archive. A
    // brand-new client (no WAL, nothing replayed) picks the session up.
    let server = serve("127.0.0.1:0", opts()).unwrap();
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    let key = client
        .open_session("chaos", &spec("burst"), &SessionOptions::default())
        .unwrap();
    assert_eq!(key, "chaos/burst");
    assert_eq!(
        client.history().unwrap().len(),
        KILL_AT,
        "acknowledged reports must survive the kill"
    );
    for i in KILL_AT..N {
        client
            .report(i % 2, &config_at(i), &[measure(i, i % 2)])
            .unwrap();
    }
    let mut got: Vec<String> = client.history().unwrap().iter().map(sort_key).collect();
    got.sort();

    // Ground truth: the same N reports against an uninterrupted server.
    let clean_root = tmp_root("killclean");
    let clean = serve(
        "127.0.0.1:0",
        ServeOptions {
            workers: 2,
            archive: Some(clean_root.clone()),
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let mut c2 = ServeClient::connect(clean.local_addr()).unwrap();
    c2.open_session("chaos", &spec("burst"), &SessionOptions::default())
        .unwrap();
    for i in 0..N {
        c2.report(i % 2, &config_at(i), &[measure(i, i % 2)])
            .unwrap();
    }
    let mut expected: Vec<String> = c2.history().unwrap().iter().map(sort_key).collect();
    expected.sort();

    assert_eq!(got, expected, "post-recovery history must be bit-identical");
    clean.shutdown();
    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
    let _ = std::fs::remove_dir_all(&clean_root);
}

#[test]
fn raw_frame_attacks_kill_one_connection_not_the_server() {
    let server = serve(
        "127.0.0.1:0",
        ServeOptions {
            workers: 2,
            io_timeout: Some(std::time::Duration::from_millis(200)),
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let attacks: Vec<Vec<u8>> = vec![
        vec![0, 0],                    // torn length prefix, then EOF
        vec![0xff, 0xff, 0xff, 0xff],  // length word far past the cap
        vec![0, 0, 0, 16, b'{', b'"'], // mid-frame EOF
        vec![0, 0, 0, 0],              // zero-length frame, then EOF
    ];
    for attack in attacks {
        let mut s = TcpStream::connect(server.local_addr()).unwrap();
        s.write_all(&attack).unwrap();
        s.flush().unwrap();
        drop(s); // EOF at an awkward boundary
                 // The server must still answer a well-formed client afterwards.
        let mut client = ServeClient::connect(server.local_addr()).unwrap();
        client.ping().unwrap();
    }
    server.shutdown();
}

#[test]
fn eviction_pressure_with_many_logical_sessions_keeps_history_intact() {
    let root = tmp_root("evictmany");
    let server = serve(
        "127.0.0.1:0",
        ServeOptions {
            workers: 4,
            archive: Some(root.clone()),
            max_resident_sessions: 4,
            ..ServeOptions::default()
        },
    )
    .unwrap();
    const LOGICAL: usize = 32;
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    for i in 0..LOGICAL {
        client
            .open_session("t", &spec(&format!("s{i}")), &SessionOptions::default())
            .unwrap();
        client.report(0, &config_at(i), &[measure(i, 0)]).unwrap();
        assert!(
            server.n_sessions() <= 4,
            "resident table exceeded the cap at session {i}"
        );
    }
    // Revisit every session (restores the evicted ones) and check its row.
    for i in 0..LOGICAL {
        client
            .open_session("t", &spec(&format!("s{i}")), &SessionOptions::default())
            .unwrap();
        let h = client.history().unwrap();
        assert_eq!(h.len(), 1, "session s{i} lost its report");
        assert_eq!(
            sort_key(&h[0]),
            sort_key(&(0, config_at(i), vec![measure(i, 0)]))
        );
        assert!(server.n_sessions() <= 4);
    }
    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}
