//! Advisory file locking for shared archives.
//!
//! Multiple tuner processes may append to one journal. Rather than relying
//! on platform-specific `flock`, the lock is a *lockfile*: `<path>.lock`
//! created with `O_CREAT|O_EXCL` (atomic on every platform std supports).
//! Whoever creates the file owns the lock; dropping the guard removes it.
//!
//! Crash recovery: a holder that dies leaves the lockfile behind, so
//! acquisition treats a lockfile older than `stale_after` as abandoned and
//! breaks it. The lockfile records the owner PID and a timestamp for
//! debugging.

use std::fs::{self, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant, SystemTime};

/// How lock acquisition behaves under contention.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LockOptions {
    /// Give up after this long waiting for the lock.
    pub timeout: Duration,
    /// Delay between acquisition attempts.
    pub retry_every: Duration,
    /// Break a lockfile whose mtime is older than this (holder presumed
    /// dead).
    pub stale_after: Duration,
}

impl Default for LockOptions {
    fn default() -> Self {
        LockOptions {
            timeout: Duration::from_secs(10),
            retry_every: Duration::from_millis(2),
            stale_after: Duration::from_secs(30),
        }
    }
}

/// An acquired advisory lock. Released (lockfile removed) on drop.
#[derive(Debug)]
pub struct FileLock {
    lock_path: PathBuf,
}

impl FileLock {
    /// Acquires the advisory lock guarding `resource` (the lockfile is
    /// `<resource>.lock`), waiting up to `opts.timeout`.
    pub fn acquire(resource: &Path, opts: &LockOptions) -> io::Result<FileLock> {
        let lock_path = lock_path_for(resource);
        if let Some(d) = lock_path.parent().filter(|p| !p.as_os_str().is_empty()) {
            fs::create_dir_all(d)?;
        }
        let start = Instant::now();
        loop {
            match OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&lock_path)
            {
                Ok(mut f) => {
                    let stamp = SystemTime::now()
                        .duration_since(SystemTime::UNIX_EPOCH)
                        .map(|d| d.as_secs())
                        .unwrap_or(0);
                    let _ = writeln!(f, "pid={} t={stamp}", std::process::id());
                    let _ = f.sync_data();
                    return Ok(FileLock { lock_path });
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    // Contended: break stale locks, otherwise wait and retry.
                    if is_stale(&lock_path, opts.stale_after) {
                        // Racy removal is fine: whoever wins create_new next
                        // owns the lock; losers keep retrying.
                        let _ = fs::remove_file(&lock_path);
                        continue;
                    }
                    if start.elapsed() >= opts.timeout {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            format!("lock {} held too long", lock_path.display()),
                        ));
                    }
                    std::thread::sleep(opts.retry_every);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// The lockfile path (for diagnostics).
    pub fn path(&self) -> &Path {
        &self.lock_path
    }
}

impl Drop for FileLock {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.lock_path);
    }
}

/// Lockfile path guarding `resource`.
pub fn lock_path_for(resource: &Path) -> PathBuf {
    let mut name = resource
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "resource".to_string());
    name.push_str(".lock");
    resource.with_file_name(name)
}

fn is_stale(lock_path: &Path, stale_after: Duration) -> bool {
    match fs::metadata(lock_path).and_then(|m| m.modified()) {
        Ok(mtime) => match SystemTime::now().duration_since(mtime) {
            Ok(age) => age > stale_after,
            Err(_) => false, // mtime in the future: clock skew, not stale
        },
        Err(_) => false, // vanished: next create_new attempt resolves it
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("gptune_db_lock_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn acquire_release_reacquire() {
        let d = tmpdir("basic");
        let r = d.join("journal.jsonl");
        let l = FileLock::acquire(&r, &LockOptions::default()).unwrap();
        assert!(l.path().exists());
        drop(l);
        let l2 = FileLock::acquire(&r, &LockOptions::default()).unwrap();
        drop(l2);
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn contention_times_out() {
        let d = tmpdir("timeout");
        let r = d.join("j.jsonl");
        let _held = FileLock::acquire(&r, &LockOptions::default()).unwrap();
        let fast = LockOptions {
            timeout: Duration::from_millis(40),
            retry_every: Duration::from_millis(5),
            stale_after: Duration::from_secs(60),
        };
        let e = FileLock::acquire(&r, &fast).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::TimedOut);
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn stale_lock_is_broken() {
        let d = tmpdir("stale");
        let r = d.join("j.jsonl");
        // Simulate a dead holder's leftover lockfile.
        fs::write(lock_path_for(&r), "pid=0 t=0").unwrap();
        std::thread::sleep(Duration::from_millis(30));
        let opts = LockOptions {
            timeout: Duration::from_millis(500),
            retry_every: Duration::from_millis(2),
            stale_after: Duration::from_millis(10),
        };
        let l = FileLock::acquire(&r, &opts).unwrap();
        drop(l);
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn mutual_exclusion_across_threads() {
        let d = tmpdir("mutex");
        let r = Arc::new(d.join("j.jsonl"));
        let inside = Arc::new(AtomicUsize::new(0));
        let max_seen = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let r = Arc::clone(&r);
            let inside = Arc::clone(&inside);
            let max_seen = Arc::clone(&max_seen);
            handles.push(std::thread::spawn(move || {
                for _ in 0..20 {
                    let _l = FileLock::acquire(&r, &LockOptions::default()).unwrap();
                    let now = inside.fetch_add(1, Ordering::SeqCst) + 1;
                    max_seen.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_micros(200));
                    inside.fetch_sub(1, Ordering::SeqCst);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(max_seen.load(Ordering::SeqCst), 1, "lock not exclusive");
        let _ = fs::remove_dir_all(&d);
    }
}
