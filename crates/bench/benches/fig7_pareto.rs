//! Fig. 7 — multi-objective tuning of SuperLU_DIST: Pareto fronts of
//! (factorization time, memory) on 8 Cori nodes (paper Sec. 6.7).
//!
//! **Left**: matrix Si2 single-task: the multi-objective front, with the
//! default configuration and the two single-objective optima overlaid.
//! Paper: the single-objective minima lie on/near the front; the default
//! is far from optimal in both dimensions.
//!
//! **Right**: 8 PARSEC matrices, multitask (δ = 8) vs single-task
//! (δ = 1 per matrix) multi-objective tuning. Paper: "very few data points
//! returned by the single-task tuner Pareto-dominate over those returned
//! by the multitask tuner".
//!
//! This harness keeps ε_tot = 80 on the left and uses ε_tot = 40 on the
//! right (8 matrices × 2 tuners at laptop scale).

use gptune::apps::{HpcApp, MachineModel, SuperluApp, PARSEC_MATRICES};
use gptune::core::{metrics, mla, mla_mo, MlaOptions};
use gptune::opt::nsga2::dominates;
use gptune::{problem_from_app, problem_from_app_objective};
use gptune_bench::banner;
use std::sync::Arc;

fn opts(budget: usize, seed: u64) -> MlaOptions {
    let mut o = MlaOptions::default().with_budget(budget).with_seed(seed);
    o.lcm.n_starts = 2;
    o.lcm.lbfgs.max_iters = 20;
    o.k_per_iter = 4;
    o
}

fn main() {
    banner(
        "Fig. 7 — Pareto fronts of (time, memory) for SuperLU_DIST",
        "left: Si2, ε_tot=80; right: 8 PARSEC matrices, multitask vs single-task",
        "left identical; right ε_tot=40 per matrix",
    );

    let app: Arc<dyn HpcApp> = Arc::new(SuperluApp::new(MachineModel::cori(8)));

    // ---------------- Left: Si2 ----------------
    let tasks = SuperluApp::tasks(1);
    let mo_problem = problem_from_app(Arc::clone(&app), tasks.clone());
    let r = mla_mo::tune_multiobjective(&mo_problem, &opts(80, 81));
    let mut front = r.per_task[0].pareto_front.clone();
    front.sort_by(|a, b| a.objectives[0].partial_cmp(&b.objectives[0]).unwrap());

    let default_cfg = app.default_config().unwrap();
    let default_out = app.evaluate(&tasks[0], &default_cfg, 0);

    println!("\n[left] Si2 — log-scale landmarks:");
    println!(
        "  default          : time {:>9.4}s  mem {:>9.2} MB",
        default_out[0], default_out[1]
    );
    for (idx, label) in [(0usize, "time-only optim"), (1usize, "memory-only opt")] {
        let so = problem_from_app_objective(Arc::clone(&app), tasks.clone(), idx);
        let sr = mla::tune(&so, &opts(80, 83));
        let out = app.evaluate(&tasks[0], &sr.per_task[0].best_config, 0);
        let on_front = !front.iter().any(|p| dominates(&p.objectives, &out));
        println!(
            "  {label}  : time {:>9.4}s  mem {:>9.2} MB   ({})",
            out[0],
            out[1],
            if on_front {
                "on/near the multi-objective front"
            } else {
                "dominated by the front"
            }
        );
    }
    println!("  multi-objective front ({} points):", front.len());
    for p in &front {
        println!(
            "    time {:>9.4}s  mem {:>9.2} MB",
            p.objectives[0], p.objectives[1]
        );
    }
    let dominated_default = front.iter().any(|p| dominates(&p.objectives, &default_out));
    println!(
        "  default dominated by the front: {}",
        if dominated_default {
            "yes (as in the paper)"
        } else {
            "no"
        }
    );

    // ---------------- Right: 8 matrices, multitask vs single-task ----------------
    println!("\n[right] 8 PARSEC matrices, multitask (δ=8) vs single-task fronts, ε_tot=40:");
    let all_tasks = SuperluApp::tasks(8);
    let mt_problem = problem_from_app(Arc::clone(&app), all_tasks.clone());
    let mt = mla_mo::tune_multiobjective(&mt_problem, &opts(40, 85));

    println!(
        "{:<10} {:>9} {:>9} | {:>10} {:>10} | {:>8} {:>8}",
        "matrix", "|front M|", "|front S|", "S dom M", "M dom S", "HV(M)", "HV(S)"
    );
    let mut total_s_dom = 0usize;
    let mut total_m_dom = 0usize;
    let mut hv_wins_m = 0usize;
    for (i, name) in PARSEC_MATRICES.iter().map(|m| m.name).enumerate() {
        let st_problem = problem_from_app(Arc::clone(&app), vec![all_tasks[i].clone()]);
        let st = mla_mo::tune_multiobjective(&st_problem, &opts(40, 87 + i as u64));
        let mfront = &mt.per_task[i].pareto_front;
        let sfront = &st.per_task[0].pareto_front;
        // Count cross-dominations.
        let s_dom = sfront
            .iter()
            .filter(|s| {
                mfront
                    .iter()
                    .any(|m| dominates(&s.objectives, &m.objectives))
            })
            .count();
        let m_dom = mfront
            .iter()
            .filter(|m| {
                sfront
                    .iter()
                    .any(|s| dominates(&m.objectives, &s.objectives))
            })
            .count();
        total_s_dom += s_dom;
        total_m_dom += m_dom;
        // Hypervolume in a shared reference box (joint nadir × 1.1).
        let all_pts: Vec<&gptune::core::ParetoPoint> = mfront.iter().chain(sfront.iter()).collect();
        let reference = [
            1.1 * all_pts
                .iter()
                .map(|p| p.objectives[0])
                .fold(0.0f64, f64::max),
            1.1 * all_pts
                .iter()
                .map(|p| p.objectives[1])
                .fold(0.0f64, f64::max),
        ];
        let hv = |front: &[gptune::core::ParetoPoint]| {
            let objs: Vec<Vec<f64>> = front.iter().map(|p| p.objectives.clone()).collect();
            metrics::hypervolume_2d(&objs, &reference)
        };
        let hv_m = hv(mfront);
        let hv_s = hv(sfront);
        if hv_m >= hv_s {
            hv_wins_m += 1;
        }
        println!(
            "{:<10} {:>9} {:>9} | {:>10} {:>10} | {:>8.3} {:>8.3}",
            name,
            mfront.len(),
            sfront.len(),
            s_dom,
            m_dom,
            hv_m / (reference[0] * reference[1]),
            hv_s / (reference[0] * reference[1])
        );
    }
    println!("  multitask wins the (normalized) hypervolume on {hv_wins_m}/8 matrices");
    println!(
        "\n  totals: single-task points dominating multitask: {total_s_dom}; multitask dominating single-task: {total_m_dom}"
    );
    println!("\nShape check vs paper: the single-objective optima sit on/near the Si2 front,");
    println!("the default is dominated, and few single-task points dominate multitask points.");
}
