// GX703 clean fixture: the victim is picked under the same guard the
// caller already holds (passed down), never by re-locking.

fn evict(s: &ServerState) {
    let mut table = s.sessions.lock().unwrap();
    let victim = pick_victim(&table);
    table.remove(victim);
}

fn pick_victim(table: &SessionTable) -> u64 {
    table.oldest()
}
