//! Product spaces with normalization and constraints.

use crate::param::{Param, Value};
use std::fmt;
use std::sync::Arc;

/// A concrete point of a [`Space`]: one [`Value`] per parameter, in
/// declaration order.
pub type Config = Vec<Value>;

/// A named constraint predicate over a full configuration.
///
/// Mirrors GPTune's user-specified constraints (e.g. `p_r ≤ p` for valid
/// ScaLAPACK process grids). Constraints see the *denormalized* values.
/// Boxed predicate type of a [`Constraint`].
type Predicate = Arc<dyn Fn(&[Value]) -> bool + Send + Sync>;

#[derive(Clone)]
pub struct Constraint {
    /// Name used in diagnostics.
    pub name: String,
    pred: Predicate,
}

impl Constraint {
    /// Creates a named constraint from a predicate.
    pub fn new(
        name: impl Into<String>,
        pred: impl Fn(&[Value]) -> bool + Send + Sync + 'static,
    ) -> Self {
        Constraint {
            name: name.into(),
            pred: Arc::new(pred),
        }
    }

    /// Evaluates the predicate.
    pub fn check(&self, config: &[Value]) -> bool {
        (self.pred)(config)
    }
}

impl fmt::Debug for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Constraint({})", self.name)
    }
}

/// A product space of typed parameters with optional constraints.
///
/// All surrogate modelling and acquisition-function search in GPTune-rs
/// happens in the normalized unit hypercube; `Space` owns the mapping
/// between unit coordinates and concrete configurations.
///
/// ```
/// use gptune_space::{Param, Space, Value};
///
/// // The ScaLAPACK process-grid space of the paper's Table 1.
/// let ps = Space::builder()
///     .param(Param::int_log("p", 1, 64))
///     .param(Param::int_log("p_r", 1, 64))
///     .constraint("p_r<=p", |c| c[1].as_int() <= c[0].as_int())
///     .build();
/// let cfg = vec![Value::Int(32), Value::Int(4)];
/// assert!(ps.is_valid(&cfg));
/// let u = ps.normalize(&cfg);            // unit-cube coordinates
/// assert_eq!(ps.denormalize(&u), cfg);   // round-trips exactly
/// ```
#[derive(Debug, Clone)]
pub struct Space {
    params: Vec<Param>,
    constraints: Vec<Constraint>,
}

impl Space {
    /// Builder entry point.
    pub fn builder() -> SpaceBuilder {
        SpaceBuilder {
            params: Vec::new(),
            constraints: Vec::new(),
        }
    }

    /// Dimension of the space (the paper's `β` for `PS`, `α` for `IS`).
    pub fn dim(&self) -> usize {
        self.params.len()
    }

    /// The parameter descriptors.
    pub fn params(&self) -> &[Param] {
        &self.params
    }

    /// The constraint list.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Index of the parameter with the given name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.params.iter().position(|p| p.name == name)
    }

    /// Maps a configuration to unit coordinates.
    ///
    /// # Panics
    /// Panics if `config` has the wrong arity or mismatched kinds.
    pub fn normalize(&self, config: &[Value]) -> Vec<f64> {
        assert_eq!(config.len(), self.dim(), "Space::normalize: arity");
        self.params
            .iter()
            .zip(config)
            .map(|(p, v)| p.normalize(v))
            .collect()
    }

    /// Maps unit coordinates to a configuration (without constraint check).
    pub fn denormalize(&self, u: &[f64]) -> Config {
        assert_eq!(u.len(), self.dim(), "Space::denormalize: arity");
        self.params
            .iter()
            .zip(u)
            .map(|(p, &ui)| p.denormalize(ui))
            .collect()
    }

    /// `true` iff every value is in its domain and all constraints hold.
    pub fn is_valid(&self, config: &[Value]) -> bool {
        config.len() == self.dim()
            && self.params.iter().zip(config).all(|(p, v)| p.contains(v))
            && self.constraints.iter().all(|c| c.check(config))
    }

    /// Names of constraints violated by `config` (empty = feasible).
    pub fn violated_constraints(&self, config: &[Value]) -> Vec<&str> {
        self.constraints
            .iter()
            .filter(|c| !c.check(config))
            .map(|c| c.name.as_str())
            .collect()
    }

    /// Euclidean distance between two configurations in normalized space.
    pub fn distance(&self, a: &[Value], b: &[Value]) -> f64 {
        let ua = self.normalize(a);
        let ub = self.normalize(b);
        ua.iter()
            .zip(&ub)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
    }

    /// Formats a configuration with parameter names for logs.
    pub fn format_config(&self, config: &[Value]) -> String {
        let mut s = String::from("{");
        for (i, (p, v)) in self.params.iter().zip(config).enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            match (&p.kind, v) {
                (crate::ParamKind::Categorical { choices }, Value::Cat(c)) => {
                    s.push_str(&format!("{}={}", p.name, choices[*c]));
                }
                _ => s.push_str(&format!("{}={}", p.name, v)),
            }
        }
        s.push('}');
        s
    }
}

/// Builder for [`Space`].
pub struct SpaceBuilder {
    params: Vec<Param>,
    constraints: Vec<Constraint>,
}

impl SpaceBuilder {
    /// Adds a parameter.
    pub fn param(mut self, p: Param) -> Self {
        assert!(
            !self.params.iter().any(|q| q.name == p.name),
            "duplicate parameter name '{}'",
            p.name
        );
        self.params.push(p);
        self
    }

    /// Adds a constraint predicate over the full configuration.
    pub fn constraint(
        mut self,
        name: impl Into<String>,
        pred: impl Fn(&[Value]) -> bool + Send + Sync + 'static,
    ) -> Self {
        self.constraints.push(Constraint::new(name, pred));
        self
    }

    /// Finalizes the space.
    pub fn build(self) -> Space {
        assert!(
            !self.params.is_empty(),
            "Space must have at least one parameter"
        );
        Space {
            params: self.params,
            constraints: self.constraints,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Param;

    fn grid_space() -> Space {
        // ScaLAPACK-like: p total processes, p_r row processes, p_r ≤ p.
        Space::builder()
            .param(Param::int("p", 1, 64))
            .param(Param::int("p_r", 1, 64))
            .constraint("p_r<=p", |c| c[1].as_int() <= c[0].as_int())
            .build()
    }

    #[test]
    fn dim_and_lookup() {
        let s = grid_space();
        assert_eq!(s.dim(), 2);
        assert_eq!(s.index_of("p_r"), Some(1));
        assert_eq!(s.index_of("nope"), None);
    }

    #[test]
    fn normalize_denormalize_roundtrip() {
        let s = grid_space();
        let c = vec![Value::Int(32), Value::Int(8)];
        let u = s.normalize(&c);
        assert_eq!(s.denormalize(&u), c);
    }

    #[test]
    fn constraint_enforced() {
        let s = grid_space();
        assert!(s.is_valid(&[Value::Int(16), Value::Int(4)]));
        assert!(!s.is_valid(&[Value::Int(4), Value::Int(16)]));
        assert_eq!(
            s.violated_constraints(&[Value::Int(4), Value::Int(16)]),
            vec!["p_r<=p"]
        );
    }

    #[test]
    fn invalid_arity_or_domain_rejected() {
        let s = grid_space();
        assert!(!s.is_valid(&[Value::Int(16)]));
        assert!(!s.is_valid(&[Value::Int(999), Value::Int(1)]));
    }

    #[test]
    fn distance_is_metric_like() {
        let s = grid_space();
        let a = vec![Value::Int(1), Value::Int(1)];
        let b = vec![Value::Int(64), Value::Int(1)];
        assert_eq!(s.distance(&a, &a), 0.0);
        let d = s.distance(&a, &b);
        assert!(d > 0.9 && d <= 1.0 + 1e-12);
        assert!((s.distance(&a, &b) - s.distance(&b, &a)).abs() < 1e-15);
    }

    #[test]
    fn format_config_names_categoricals() {
        let s = Space::builder()
            .param(Param::categorical(
                "COLPERM",
                &["NATURAL", "MMD_AT_PLUS_A", "METIS"],
            ))
            .param(Param::int("NSUP", 16, 256))
            .build();
        let txt = s.format_config(&[Value::Cat(2), Value::Int(128)]);
        assert!(txt.contains("COLPERM=METIS"));
        assert!(txt.contains("NSUP=128"));
    }

    #[test]
    #[should_panic]
    fn duplicate_param_name_panics() {
        let _ = Space::builder()
            .param(Param::int("p", 1, 2))
            .param(Param::int("p", 1, 2));
    }
}
